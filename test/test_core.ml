(* Tests for Dlink_core: the trampoline-skip mechanism end to end.

   The central invariants from the paper:
   - the first two invocations of a library call execute the trampoline
     (lazy resolution, then ABTB training); every later one is skipped;
   - a store to a GOT slot guarding a live ABTB entry clears the table
     (Bloom filter, no false negatives), so the mechanism never
     misspeculates even when libraries are rebound;
   - enhanced execution is architecturally identical to base execution;
   - context switches flush the ABTB unless ASIDs retain it. *)

module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
module Loader = Dlink_linker.Loader
module Space = Dlink_linker.Space
module Image = Dlink_linker.Image
module Memory = Dlink_mach.Memory
module Process = Dlink_mach.Process
module C = Dlink_uarch.Counters
module Config = Dlink_uarch.Config
open Dlink_core
module Skip = Dlink_pipeline.Skip
module Profile = Dlink_pipeline.Profile

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let func ?(exported = true) fname body = { Objfile.fname; exported; body }

let app_main body = Objfile.create_exn ~name:"app" [ func ~exported:false "main" body ]

let libx ?(extra = []) () =
  Objfile.create_exn ~name:"libx"
    ([
       func "f" [ Body.Compute 6 ];
       func "g" [ Body.Compute 3; Body.Touch { loads = 1; stores = 1 } ];
     ]
    @ extra)

let call_n_times sym n = List.init n (fun _ -> Body.Call_import sym)

let verify_cfg = { Skip.default_config with verify_targets = true }

let make_sim ?(skip_cfg = verify_cfg) ?mode body =
  let mode = Option.value mode ~default:Sim.Enhanced in
  Sim.create ~skip_cfg ~mode [ app_main body; libx () ]

(* ---------------- skip behaviour ---------------- *)

let call_main_n sim n =
  for _ = 1 to n do
    Sim.call sim ~mname:"app" ~fname:"main"
  done

let test_skip_after_two_invocations () =
  (* One call site executed ten times: the first execution resolves lazily,
     the second trains the ABTB and the site's BTB entry, the remaining
     eight are skipped. *)
  let sim = make_sim [ Body.Call_import "f" ] in
  call_main_n sim 10;
  let c = Sim.counters sim in
  checki "ten calls" 10 c.C.tramp_calls;
  checki "eight skipped" 8 c.C.tramp_skips;
  checki "resolver once" 1 c.C.resolver_runs

let test_no_skip_in_base_mode () =
  let sim = make_sim ~mode:Sim.Base [ Body.Call_import "f" ] in
  call_main_n sim 10;
  let c = Sim.counters sim in
  checki "no skips" 0 c.C.tramp_skips;
  (* Steady-state trampolines execute: 5 stub instructions on the first
     call, 1 on each subsequent. *)
  checki "tramp instrs" (5 + 9) c.C.tramp_instructions

let test_skip_reduces_retired_instructions () =
  let run mode =
    let sim = make_sim ~mode [ Body.Call_import "f" ] in
    call_main_n sim 50;
    (Sim.counters sim).C.instructions
  in
  checkb "enhanced retires fewer" true (run Sim.Enhanced < run Sim.Base)

let test_two_call_sites_same_trampoline () =
  (* Two call sites to the same import: each site needs one trampoline
     execution to train its own BTB entry, after which both skip via the
     shared ABTB entry. *)
  let sim = make_sim [ Body.Call_import "f"; Body.Call_import "f" ] in
  call_main_n sim 5;
  checkb "most skipped" true ((Sim.counters sim).C.tramp_skips >= 7)

let test_distinct_trampolines_tracked () =
  let body = call_n_times "f" 3 @ call_n_times "g" 3 in
  let sim = make_sim ~mode:Sim.Base body in
  Sim.call sim ~mname:"app" ~fname:"main";
  checki "two distinct" 2 (Profile.distinct_trampolines (Sim.profile sim))

let test_eager_mode_skips_resolver_but_not_trampoline () =
  let sim = make_sim ~mode:Sim.Eager (call_n_times "f" 5) in
  Sim.call sim ~mname:"app" ~fname:"main";
  let c = Sim.counters sim in
  checki "no resolver" 0 c.C.resolver_runs;
  checki "trampoline each call" 5 c.C.tramp_instructions

let test_static_and_patched_have_no_trampolines () =
  List.iter
    (fun mode ->
      let sim = make_sim ~mode (call_n_times "f" 5) in
      Sim.call sim ~mname:"app" ~fname:"main";
      checki "no tramp instrs" 0 (Sim.counters sim).C.tramp_instructions)
    [ Sim.Static; Sim.Patched ]

(* ---------------- architectural equivalence ---------------- *)

let arch_fingerprint_of mode body =
  let sim = make_sim ~mode body in
  Sim.call sim ~mname:"app" ~fname:"main";
  Process.arch_fingerprint (Sim.process sim)

let test_arch_equivalence_base_enhanced () =
  let body =
    [
      Body.Compute 3;
      Body.Loop
        {
          mean_iters = 25.0;
          body =
            [
              Body.Touch { loads = 2; stores = 2 };
              Body.Call_import "f";
              Body.If { p = 0.5; then_ = [ Body.Call_import "g" ]; else_ = [] };
            ];
        };
    ]
  in
  checki "identical architectural state"
    (arch_fingerprint_of Sim.Base body)
    (arch_fingerprint_of Sim.Enhanced body)

let test_verify_targets_never_fires () =
  (* With verification on, any skip to a stale target would raise. *)
  let sim = make_sim [ Body.Call_import "f"; Body.Call_import "g" ] in
  call_main_n sim 200;
  checkb "no misspeculation" true ((Sim.counters sim).C.tramp_skips > 300)

(* ---------------- GOT stores and the Bloom filter ---------------- *)

let got_slot_of sim sym =
  let linked = Sim.linked sim in
  let app = Option.get (Space.image_by_name linked.Loader.space "app") in
  Option.get (Image.got_slot app sym)

let test_got_store_clears_abtb () =
  let sim = make_sim (call_n_times "f" 10) in
  Sim.call sim ~mname:"app" ~fname:"main";
  let skip = Option.get (Sim.skip sim) in
  checkb "abtb populated" true (Dlink_uarch.Abtb.valid_count (Skip.abtb skip) > 0);
  (* Simulate a library rebind: store to the guarded GOT slot. *)
  let clears_before = (Sim.counters sim).C.abtb_clears in
  Skip.on_retire skip
    {
      Dlink_mach.Event.pc = 0;
      size = 4;
      in_plt = false;
      load = None;
      load2 = None;
      store = Some (got_slot_of sim "f");
      branch = None;
    };
  checki "cleared" (clears_before + 1) (Sim.counters sim).C.abtb_clears;
  checki "table empty" 0 (Dlink_uarch.Abtb.valid_count (Skip.abtb skip))

let test_library_rebinding_is_safe () =
  (* Rebind "f" to "g" mid-run by writing the GOT through simulated code is
     not expressible in the body IR, so emulate the coherence event
     directly: after the clear, the next call must re-execute the
     trampoline and bind to the new target with no misspeculation. *)
  let sim = make_sim (call_n_times "f" 6) in
  Sim.call sim ~mname:"app" ~fname:"main";
  let skip = Option.get (Sim.skip sim) in
  let linked = Sim.linked sim in
  let g = Option.get (Loader.func_addr linked ~mname:"libx" ~fname:"g") in
  let slot = got_slot_of sim "f" in
  (* The rebinding store, observed architecturally and by the skip logic. *)
  Memory.write (Process.memory (Sim.process sim)) slot g;
  Skip.on_retire skip
    {
      Dlink_mach.Event.pc = 0;
      size = 4;
      in_plt = false;
      load = None;
      load2 = None;
      store = Some slot;
      branch = None;
    };
  (* Subsequent calls route to g via the trampoline; verify_targets would
     raise if a stale skip happened. *)
  Sim.call sim ~mname:"app" ~fname:"main";
  checkb "ran safely" true ((Sim.counters sim).C.instructions > 0)

let test_false_clear_classification () =
  let cfg = { verify_cfg with bloom_granularity = Skip.Slot; bloom_bits = 16 } in
  (* A tiny slot-granular filter guarantees false positives from ordinary
     data stores. *)
  let body =
    [
      Body.Loop
        {
          mean_iters = 50.0;
          body = [ Body.Touch { loads = 0; stores = 4 }; Body.Call_import "f" ];
        };
    ]
  in
  let sim = make_sim ~skip_cfg:cfg body in
  Sim.call sim ~mname:"app" ~fname:"main";
  let c = Sim.counters sim in
  checkb "false clears observed" true (c.C.abtb_false_clears > 0);
  checkb "false clears counted within clears" true
    (c.C.abtb_false_clears <= c.C.abtb_clears)

let test_page_granularity_ignores_data_stores () =
  let body =
    [
      Body.Loop
        {
          mean_iters = 50.0;
          body = [ Body.Touch { loads = 0; stores = 4 }; Body.Call_import "f" ];
        };
    ]
  in
  let sim = make_sim ~skip_cfg:{ verify_cfg with bloom_bits = 65536 } body in
  Sim.call sim ~mname:"app" ~fname:"main";
  checki "no clears" 0 (Sim.counters sim).C.abtb_clears

(* ---------------- fall-through filter ---------------- *)

let test_fallthrough_filter_prevents_startup_clear () =
  let run filter =
    let cfg = { verify_cfg with filter_fallthrough = filter } in
    let sim = make_sim ~skip_cfg:cfg (call_n_times "f" 4) in
    Sim.call sim ~mname:"app" ~fname:"main";
    (Sim.counters sim).C.abtb_clears
  in
  checki "filtered: no startup clear" 0 (run true);
  (* Unfiltered: the lazy first execution inserts trampoline->push-stub and
     the resolver's GOT store clears the table once (§3.2). *)
  checki "unfiltered: one clear" 1 (run false)

let test_unfiltered_still_skips_eventually () =
  let cfg = { verify_cfg with filter_fallthrough = false } in
  let sim = make_sim ~skip_cfg:cfg [ Body.Call_import "f" ] in
  call_main_n sim 10;
  checkb "skips recover" true ((Sim.counters sim).C.tramp_skips >= 7)

(* ---------------- context switches ---------------- *)

let test_context_switch_flushes_abtb () =
  let sim = make_sim (call_n_times "f" 10) in
  Sim.call sim ~mname:"app" ~fname:"main";
  let skip = Option.get (Sim.skip sim) in
  Sim.context_switch sim;
  checki "abtb flushed" 0 (Dlink_uarch.Abtb.valid_count (Skip.abtb skip))

let test_context_switch_with_asid_retains_abtb () =
  let sim = make_sim (call_n_times "f" 10) in
  Sim.call sim ~mname:"app" ~fname:"main";
  let skip = Option.get (Sim.skip sim) in
  let n = Dlink_uarch.Abtb.valid_count (Skip.abtb skip) in
  checkb "entries trained" true (n > 0);
  Sim.context_switch ~retain_asid:true sim;
  checki "abtb retained" n (Dlink_uarch.Abtb.valid_count (Skip.abtb skip))

let test_got_store_still_clears_after_asid_switch () =
  (* ASID retention must not weaken the Bloom guard: a rebinding store
     after the switch still hits the filter and clears the ABTB. *)
  let sim = make_sim (call_n_times "f" 10) in
  Sim.call sim ~mname:"app" ~fname:"main";
  let skip = Option.get (Sim.skip sim) in
  Sim.context_switch ~retain_asid:true sim;
  checkb "entries survived the switch" true
    (Dlink_uarch.Abtb.valid_count (Skip.abtb skip) > 0);
  let clears_before = (Sim.counters sim).C.abtb_clears in
  let linked = Sim.linked sim in
  let appimg = Option.get (Space.image_by_name linked.Loader.space "app") in
  let slot = Option.get (Image.got_slot appimg "f") in
  Skip.on_retire skip
    {
      Dlink_mach.Event.pc = 0;
      size = 4;
      in_plt = false;
      load = None;
      load2 = None;
      store = Some slot;
      branch = None;
    };
  checki "abtb cleared" 0 (Dlink_uarch.Abtb.valid_count (Skip.abtb skip));
  checki "clear counted" (clears_before + 1) (Sim.counters sim).C.abtb_clears

(* ---------------- ASLR ---------------- *)

let test_aslr_does_not_affect_mechanism () =
  (* §2.1: ASLR is one of the benefits dynamic linking must keep.  The
     mechanism works on whatever virtual addresses the loader picked, so
     skip counts are identical across layouts. *)
  let skips aslr_seed =
    let sim =
      Sim.create ~skip_cfg:verify_cfg ?aslr_seed ~mode:Sim.Enhanced
        [ app_main [ Body.Call_import "f" ]; libx () ]
    in
    call_main_n sim 20;
    (Sim.counters sim).C.tramp_skips
  in
  let reference = skips None in
  List.iter
    (fun seed -> checki "same skips under ASLR" reference (skips (Some seed)))
    [ 1; 2; 3 ]

(* ---------------- profile ---------------- *)

let test_profile_counts_and_stream () =
  let body = call_n_times "f" 7 @ call_n_times "g" 3 in
  let sim =
    Sim.create ~record_stream:true ~mode:Sim.Base [ app_main body; libx () ]
  in
  Sim.call sim ~mname:"app" ~fname:"main";
  let p = Sim.profile sim in
  checki "total calls" 10 (Profile.tramp_calls p);
  checki "stream length" 10 (Array.length (Profile.stream p));
  (match Profile.counts p with
  | (_, c1) :: (_, c2) :: _ ->
      checki "top count" 7 c1;
      checki "second count" 3 c2
  | _ -> Alcotest.fail "expected two trampolines");
  match Profile.rank_frequency p with
  | (r1, f1) :: _ ->
      checkb "rank starts at 1" true (r1 = 1.0);
      checkb "descending" true (f1 = 7.0)
  | [] -> Alcotest.fail "empty rank frequency"

let test_profile_reset () =
  let sim =
    Sim.create ~record_stream:true ~mode:Sim.Base
      [ app_main (call_n_times "f" 3); libx () ]
  in
  Sim.call sim ~mname:"app" ~fname:"main";
  Profile.reset (Sim.profile sim);
  checki "reset" 0 (Profile.tramp_calls (Sim.profile sim))

(* ---------------- ABTB sweep (Figure 5 infrastructure) ---------------- *)

let test_sweep_monotone_in_capacity () =
  (* A cyclic stream over 8 distinct trampolines. *)
  let stream = Array.init 800 (fun i -> 16 * (i mod 8)) in
  let pcts =
    List.map (fun e -> Abtb_sweep.replay ~entries:e stream) [ 1; 2; 4; 8; 16 ]
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  checkb "monotone" true (non_decreasing pcts);
  checkb "full capacity near 100%" true (List.nth pcts 3 > 98.0)

let test_sweep_empty_stream () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Abtb_sweep.replay ~entries:16 [||])

let test_sweep_cold_misses_bound_hit_rate () =
  (* Every element distinct: nothing can ever hit. *)
  let stream = Array.init 100 (fun i -> i * 32) in
  Alcotest.(check (float 1e-9)) "all cold" 0.0 (Abtb_sweep.replay ~entries:256 stream)

let test_sweep_default_sizes () =
  checki "paper x-axis" 9 (List.length Abtb_sweep.default_sizes);
  checki "max 256" 256 (List.nth Abtb_sweep.default_sizes 8)

(* ---------------- COW prefork model ---------------- *)

let test_cow_first_write_copies_once () =
  let c = Cow.create ~processes:3 in
  Cow.write c ~pid:0 ~page:7;
  Cow.write c ~pid:0 ~page:7;
  checki "one copy" 1 (Cow.private_copies c);
  Cow.write c ~pid:1 ~page:7;
  checki "per-process copies" 2 (Cow.private_copies c);
  checki "bytes" (2 * 4096) (Cow.wasted_bytes c)

let test_cow_rejects_bad_pid () =
  let c = Cow.create ~processes:2 in
  Alcotest.check_raises "bad pid" (Invalid_argument "Cow.write: bad pid") (fun () ->
      Cow.write c ~pid:2 ~page:0)

let test_cow_growth_monotone_and_bounded () =
  (* Schedule: 4 sites on 3 distinct pages, touched across a 100-call run. *)
  let site_order = [ (4096, 1); (4100, 2); (8192, 10); (999_424, 60) ] in
  let points =
    Cow.lazy_patching_growth ~site_order ~total_calls:100 ~processes:10 ~samples:5
  in
  let pages = List.map (fun g -> g.Cow.pages_per_process) points in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  checkb "monotone" true (mono pages);
  checki "final page count" 3 (List.nth pages 4);
  let last = List.nth points 4 in
  checkb "family waste = procs x pages" true
    (abs_float (last.Cow.wasted_mb -. (3.0 *. 10.0 *. 4096.0 /. 1048576.0)) < 1e-9)

let test_profile_site_first_touch_order () =
  let sim =
    Sim.create ~mode:Sim.Base
      [ app_main [ Body.Call_import "f"; Body.Call_import "g" ]; libx () ]
  in
  call_main_n sim 3;
  let order = Profile.site_first_touch (Sim.profile sim) in
  checki "two sites" 2 (List.length order);
  (match order with
  | (_, i1) :: (_, i2) :: _ ->
      checkb "first-touch indices ordered" true (i1 < i2)
  | _ -> Alcotest.fail "expected two sites");
  checkb "sites are code addresses" true
    (List.for_all
       (fun (site, _) ->
         Dlink_linker.Space.image_at (Sim.linked sim).Loader.space site <> None)
       order)

(* ---------------- memory savings ---------------- *)

let test_memsave_after_fork_scales_with_processes () =
  let r = Memory_savings.analyze ~patched_pages:280 ~processes:450
      Memory_savings.Patch_after_fork in
  checki "copied" (280 * 450) r.Memory_savings.copied_pages_total;
  checkb "~0.5GB" true (r.Memory_savings.wasted_bytes > 400_000_000)

let test_memsave_before_fork_shares () =
  let r = Memory_savings.analyze ~patched_pages:280 ~processes:450
      Memory_savings.Patch_before_fork in
  checki "one copy" 280 r.Memory_savings.copied_pages_total

let test_memsave_hardware_is_free () =
  let r = Memory_savings.analyze ~patched_pages:280 ~processes:450 Memory_savings.Hardware in
  checki "zero" 0 r.Memory_savings.wasted_bytes

let test_memsave_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Memory_savings.analyze: negative input")
    (fun () ->
      ignore
        (Memory_savings.analyze ~patched_pages:(-1) ~processes:1 Memory_savings.Hardware))

(* ---------------- experiment runner ---------------- *)

let tiny_workload () =
  let objs = [ app_main (call_n_times "f" 5); libx () ] in
  {
    Workload.wname = "tiny";
    objs;
    request_type_names = [| "only" |];
    gen_request = (fun _ -> { Workload.rtype = 0; mname = "app"; fname = "main" });
    default_requests = 20;
    warmup_requests = 2;
    us_scale = 1.0;
    ghz = 3.0;
    func_align = 16;
  }

let test_experiment_runs_and_measures () =
  let r = Experiment.run ~mode:Sim.Base (tiny_workload ()) in
  checki "requests" 20 r.Experiment.requests;
  let _, lat = r.Experiment.latencies_us.(0) in
  checki "latencies per request" 20 (Array.length lat);
  checkb "positive latency" true (Array.for_all (fun x -> x > 0.0) lat);
  checkb "pki positive" true (Experiment.tramp_pki r > 0.0)

let test_experiment_warmup_excluded () =
  let w = { (tiny_workload ()) with warmup_requests = 10 } in
  let r = Experiment.run ~requests:5 ~mode:Sim.Base w in
  (* Resolution happened during warmup, so no resolver runs in window. *)
  checki "no resolver in window" 0 r.Experiment.counters.C.resolver_runs;
  checki "five requests" 5 r.Experiment.requests

let test_experiment_compare_modes () =
  let base, enh = Experiment.compare_modes (tiny_workload ()) in
  checkb "enhanced cheaper or equal" true
    (enh.Experiment.counters.C.instructions <= base.Experiment.counters.C.instructions)

let test_experiment_context_switch_option () =
  let r =
    Experiment.run ~context_switch_every:2 ~mode:Sim.Enhanced (tiny_workload ())
  in
  checkb "still correct" true (r.Experiment.counters.C.instructions > 0)

let test_mean_latency_unknown_type_raises () =
  let r = Experiment.run ~mode:Sim.Base (tiny_workload ()) in
  checkb "raises" true
    (try
       ignore (Experiment.mean_latency_us r "nope");
       false
     with Not_found -> true)

(* ---------------- property tests ---------------- *)

let body_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Body.Compute n) (int_range 1 8);
        map2 (fun l s -> Body.Touch { loads = l; stores = s }) (int_range 0 2)
          (int_range 0 2);
        oneofl [ Body.Call_import "f"; Body.Call_import "g" ];
      ]
  in
  let block = list_size (int_range 1 6) leaf in
  map2
    (fun blk wrap ->
      if wrap then [ Body.Loop { mean_iters = 8.0; body = blk } ] else blk)
    block bool

let qcheck_tests =
  [
    QCheck.Test.make ~name:"enhanced always architecturally equivalent to base"
      ~count:40 (QCheck.make body_gen)
      (fun body ->
        arch_fingerprint_of Sim.Base body = arch_fingerprint_of Sim.Enhanced body);
    QCheck.Test.make ~name:"all modes architecturally equivalent" ~count:25
      (QCheck.make body_gen)
      (fun body ->
        let fp = arch_fingerprint_of Sim.Base body in
        List.for_all
          (fun mode -> arch_fingerprint_of mode body = fp)
          [ Sim.Eager; Sim.Enhanced ]);
    QCheck.Test.make ~name:"skips never exceed trampoline calls" ~count:40
      (QCheck.make body_gen)
      (fun body ->
        let sim = make_sim body in
        Sim.call sim ~mname:"app" ~fname:"main";
        let c = Sim.counters sim in
        c.C.tramp_skips <= c.C.tramp_calls);
    QCheck.Test.make ~name:"enhanced retires no more than base" ~count:30
      (QCheck.make body_gen)
      (fun body ->
        let instrs mode =
          let sim = make_sim ~mode body in
          Sim.call sim ~mname:"app" ~fname:"main";
          (Sim.counters sim).C.instructions
        in
        instrs Sim.Enhanced <= instrs Sim.Base);
  ]

let () =
  Alcotest.run "dlink_core"
    [
      ( "skip",
        [
          Alcotest.test_case "skip after two invocations" `Quick test_skip_after_two_invocations;
          Alcotest.test_case "no skip in base" `Quick test_no_skip_in_base_mode;
          Alcotest.test_case "fewer retired instructions" `Quick
            test_skip_reduces_retired_instructions;
          Alcotest.test_case "two call sites" `Quick test_two_call_sites_same_trampoline;
          Alcotest.test_case "distinct trampolines" `Quick test_distinct_trampolines_tracked;
          Alcotest.test_case "eager mode" `Quick test_eager_mode_skips_resolver_but_not_trampoline;
          Alcotest.test_case "static/patched no trampolines" `Quick
            test_static_and_patched_have_no_trampolines;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "base = enhanced arch state" `Quick
            test_arch_equivalence_base_enhanced;
          Alcotest.test_case "verified skips" `Quick test_verify_targets_never_fires;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "GOT store clears ABTB" `Quick test_got_store_clears_abtb;
          Alcotest.test_case "library rebinding safe" `Quick test_library_rebinding_is_safe;
          Alcotest.test_case "false clears classified" `Quick test_false_clear_classification;
          Alcotest.test_case "page granularity precise" `Quick
            test_page_granularity_ignores_data_stores;
        ] );
      ( "fallthrough",
        [
          Alcotest.test_case "filter prevents startup clear" `Quick
            test_fallthrough_filter_prevents_startup_clear;
          Alcotest.test_case "unfiltered recovers" `Quick test_unfiltered_still_skips_eventually;
        ] );
      ( "context",
        [
          Alcotest.test_case "switch flushes" `Quick test_context_switch_flushes_abtb;
          Alcotest.test_case "asid retains" `Quick test_context_switch_with_asid_retains_abtb;
          Alcotest.test_case "got store clears after asid switch" `Quick
            test_got_store_still_clears_after_asid_switch;
        ] );
      ("aslr", [ Alcotest.test_case "mechanism layout-blind" `Quick
                   test_aslr_does_not_affect_mechanism ]);
      ( "profile",
        [
          Alcotest.test_case "counts and stream" `Quick test_profile_counts_and_stream;
          Alcotest.test_case "reset" `Quick test_profile_reset;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "monotone" `Quick test_sweep_monotone_in_capacity;
          Alcotest.test_case "empty stream" `Quick test_sweep_empty_stream;
          Alcotest.test_case "cold misses" `Quick test_sweep_cold_misses_bound_hit_rate;
          Alcotest.test_case "default sizes" `Quick test_sweep_default_sizes;
        ] );
      ( "cow",
        [
          Alcotest.test_case "copy once per process" `Quick
            test_cow_first_write_copies_once;
          Alcotest.test_case "bad pid" `Quick test_cow_rejects_bad_pid;
          Alcotest.test_case "growth curve" `Quick test_cow_growth_monotone_and_bounded;
          Alcotest.test_case "site first touch" `Quick
            test_profile_site_first_touch_order;
        ] );
      ( "memsave",
        [
          Alcotest.test_case "after fork" `Quick test_memsave_after_fork_scales_with_processes;
          Alcotest.test_case "before fork" `Quick test_memsave_before_fork_shares;
          Alcotest.test_case "hardware free" `Quick test_memsave_hardware_is_free;
          Alcotest.test_case "rejects negative" `Quick test_memsave_rejects_negative;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "runs and measures" `Quick test_experiment_runs_and_measures;
          Alcotest.test_case "warmup excluded" `Quick test_experiment_warmup_excluded;
          Alcotest.test_case "compare modes" `Quick test_experiment_compare_modes;
          Alcotest.test_case "context switch option" `Quick test_experiment_context_switch_option;
          Alcotest.test_case "unknown type raises" `Quick test_mean_latency_unknown_type_raises;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
