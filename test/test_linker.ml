(* Tests for Dlink_linker: layout, PLT/GOT synthesis, binding modes. *)

module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
open Dlink_linker

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let func ?(exported = true) fname body = { Objfile.fname; exported; body }

let app_calling imports =
  Objfile.create_exn ~name:"app"
    [ func ~exported:false "main" (List.map (fun s -> Body.Call_import s) imports) ]

let lib name exports =
  Objfile.create_exn ~name
    (List.map (fun e -> func e [ Body.Compute 4 ]) exports)

let two_module () = [ app_calling [ "f"; "g" ]; lib "libx" [ "f"; "g" ] ]

let load_with mode objs =
  Loader.load_exn ~opts:{ Loader.default_options with mode } objs

(* ---------------- layout ---------------- *)

let test_layout_sections_ordered () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  Array.iter
    (fun (img : Image.t) ->
      checkb "text < plt" true (img.text.base + img.text.size <= img.plt.base);
      checkb "plt < got" true (img.plt.base + img.plt.size <= img.got.base);
      checkb "got < data" true (img.got.base + img.got.size <= img.data.base))
    (Space.images t.Loader.space)

let test_layout_got_page_separated_from_data () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  Array.iter
    (fun (img : Image.t) ->
      if img.got.size > 0 && img.data.size > 0 then
        checkb "distinct pages" true
          (Dlink_isa.Addr.page_of (img.got.base + img.got.size - 1)
          <> Dlink_isa.Addr.page_of img.data.base))
    (Space.images t.Loader.space)

let test_layout_func_align_respected () =
  let opts = { Loader.default_options with func_align = 256 } in
  let t = Loader.load_exn ~opts (two_module ()) in
  Array.iter
    (fun (img : Image.t) ->
      Hashtbl.iter
        (fun _ addr -> checki "aligned" 0 ((addr - img.text.base) mod 256))
        img.funcs)
    (Space.images t.Loader.space)

let test_layout_includes_ld_so () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  checkb "ld_so mapped" true (Space.image_by_name t.Loader.space "__ld_so" <> None);
  checkb "resolver entry fetches" true
    (Space.fetch t.Loader.space t.Loader.resolver_entry <> None)

(* ---------------- PLT/GOT ---------------- *)

let test_plt_entries_are_16_bytes_apart () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  let f = Option.get (Image.plt_entry app "f")
  and g = Option.get (Image.plt_entry app "g") in
  checki "16B apart" 16 (abs (f - g));
  checkb "registered" true (Loader.is_plt_entry t f && Loader.is_plt_entry t g)

let test_plt_entry_shape () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  let entry = Option.get (Image.plt_entry app "f") in
  let slot = Option.get (Image.got_slot app "f") in
  (match Image.fetch app entry with
  | Some (Dlink_isa.Insn.Jmp_mem s) -> checki "jmp through own slot" slot s
  | _ -> Alcotest.fail "expected jmp_mem");
  (match Image.fetch app (entry + 6) with
  | Some (Dlink_isa.Insn.Push_info _) -> ()
  | _ -> Alcotest.fail "expected push");
  match Image.fetch app (entry + 11) with
  | Some (Dlink_isa.Insn.Jmp plt0) -> checki "jmp to plt0" app.Image.plt.base plt0
  | _ -> Alcotest.fail "expected jmp to plt0"

let test_got_lazy_points_into_plt_stub () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  let entry = Option.get (Image.plt_entry app "f") in
  let slot = Option.get (Image.got_slot app "f") in
  let init = List.assoc slot t.Loader.init_mem in
  checki "slot -> push in stub" (entry + 6) init

let test_got_eager_resolved () =
  let t = load_with Mode.Eager_binding (two_module ()) in
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  let slot = Option.get (Image.got_slot app "f") in
  let init = List.assoc slot t.Loader.init_mem in
  checki "slot -> function" (Option.get (Loader.func_addr t ~mname:"libx" ~fname:"f")) init

let test_got1_holds_resolver () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  let init = List.assoc (app.Image.got.base + 8) t.Loader.init_mem in
  checki "got[1] = resolver" t.Loader.resolver_entry init

let test_static_has_no_plt () =
  let t = load_with Mode.Static_link (two_module ()) in
  Array.iter
    (fun (img : Image.t) -> checki "no plt" 0 img.plt.size)
    (Space.images t.Loader.space);
  (* Calls are lowered to direct calls at the final target. *)
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  let main = Option.get (Image.func_addr app "main") in
  match Image.fetch app main with
  | Some (Dlink_isa.Insn.Call target) ->
      checki "direct to function"
        (Option.get (Loader.func_addr t ~mname:"libx" ~fname:"f"))
        target
  | _ -> Alcotest.fail "expected direct call"

let test_plt_order_deterministic () =
  let entry_of t name =
    let app = Option.get (Space.image_by_name t.Loader.space "app") in
    Option.get (Image.plt_entry app name) - app.Image.plt.base
  in
  let t1 = load_with Mode.Lazy_binding (two_module ()) in
  let t2 = load_with Mode.Lazy_binding (two_module ()) in
  checki "same shuffled slot" (entry_of t1 "f") (entry_of t2 "f")

(* ---------------- binding modes / errors ---------------- *)

let test_duplicate_module_rejected () =
  checkb "dup" true
    (Result.is_error (Loader.load [ lib "m" [ "a" ]; lib "m" [ "b" ] ]))

let test_reserved_name_rejected () =
  checkb "reserved" true (Result.is_error (Loader.load [ lib "__ld_so" [ "a" ] ]))

let test_undefined_import_rejected () =
  checkb "undefined" true (Result.is_error (Loader.load [ app_calling [ "nope" ] ]))

let test_extra_imports_may_dangle () =
  let app =
    Objfile.create_exn ~name:"app" ~extra_imports:[ "phantom1"; "phantom2" ]
      [ func ~exported:false "main" [ Body.Call_import "f" ] ]
  in
  checkb "loads" true (Result.is_ok (Loader.load [ app; lib "libx" [ "f" ] ]))

let test_empty_input_rejected () =
  checkb "empty" true (Result.is_error (Loader.load []))

let test_interposition_first_wins () =
  let objs = [ app_calling [ "f" ]; lib "liba" [ "f" ]; lib "libb" [ "f" ] ] in
  let t = load_with Mode.Static_link objs in
  let f_a = Option.get (Loader.func_addr t ~mname:"liba" ~fname:"f") in
  checki "liba wins" f_a (Option.get (Linkmap.lookup_addr t.Loader.linkmap "f"))

let test_patched_records_sites () =
  let t = load_with Mode.Patched (two_module ()) in
  checki "two call sites" 2 (List.length t.Loader.patch_sites);
  checkb "pages counted" true (Loader.patched_pages t >= 1);
  (* PLT/GOT sections still exist under patched mode. *)
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  checkb "plt present" true (app.Image.plt.size > 0)

let test_lazy_has_no_patch_sites () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  checki "none" 0 (List.length t.Loader.patch_sites)

(* ---------------- ASLR ---------------- *)

let test_aslr_deterministic_by_seed () =
  let load seed =
    Loader.load_exn
      ~opts:{ Loader.default_options with aslr_seed = Some seed }
      (two_module ())
  in
  let base t =
    (Option.get (Space.image_by_name t.Loader.space "libx")).Image.text.base
  in
  checki "same seed same layout" (base (load 1)) (base (load 1));
  checkb "different seed different layout" true (base (load 1) <> base (load 2))

(* A seeded layout is pinned byte-for-byte: ASLR, section placement, PLT
   slot shuffling and GOT packing all feed the address-reuse reasoning in
   Dynload, so an accidental layout change must fail loudly rather than
   silently shifting every downstream trace. *)
let test_golden_layout_aslr_seed7 () =
  let t =
    Loader.load_exn
      ~opts:{ Loader.default_options with aslr_seed = Some 7 }
      (two_module ())
  in
  let b = Buffer.create 256 in
  Array.iter
    (fun (img : Image.t) ->
      Buffer.add_string b
        (Printf.sprintf "%s text=%#x plt=%#x got=%#x\n" img.Image.name
           img.Image.text.base img.Image.plt.base img.Image.got.base))
    (Space.images t.Loader.space);
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  Buffer.add_string b
    (Printf.sprintf "app:f plt=%#x got=%#x\n"
       (Option.get (Image.plt_entry app "f"))
       (Option.get (Image.got_slot app "f")));
  Alcotest.(check string) "golden layout (aslr_seed=7)"
    "app text=0x400000 plt=0x400010 got=0x401000\n\
     libx text=0x488000 plt=0x488040 got=0x489000\n\
     __ld_so text=0x522000 plt=0x522130 got=0x522130\n\
     app:f plt=0x400030 got=0x401020\n"
    (Buffer.contents b)

(* ---------------- space ---------------- *)

let test_space_lookup_boundaries () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  checkb "first byte" true (Space.image_at t.Loader.space app.Image.text.base <> None);
  checkb "below app" true (Space.image_at t.Loader.space (app.Image.text.base - 1) = None)

let test_space_rejects_overlap () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let imgs = Array.to_list (Space.images t.Loader.space) in
  match imgs with
  | a :: _ ->
      let clone = { a with Image.name = "clone" } in
      checkb "overlap raises" true
        (try
           ignore (Space.create [ a; clone ]);
           false
         with Invalid_argument _ -> true)
  | [] -> Alcotest.fail "no images"

let test_in_any_plt_got () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  let entry = Option.get (Image.plt_entry app "f") in
  let slot = Option.get (Image.got_slot app "f") in
  checkb "plt addr" true (Loader.in_any_plt t entry);
  checkb "got addr" true (Loader.in_any_got t slot);
  checkb "text not plt" false (Loader.in_any_plt t app.Image.text.base)

(* ---------------- codegen ---------------- *)

let test_codegen_size_matches_assembly () =
  let body =
    [
      Body.Compute 3;
      Body.Loop { mean_iters = 2.0; body = [ Body.Touch { loads = 1; stores = 1 } ] };
      Body.If { p = 0.5; then_ = [ Body.Compute 1 ]; else_ = [ Body.Compute 2 ] };
      Body.Call_import "x";
    ]
  in
  let asm = Dlink_isa.Asm.create () in
  Codegen.lower_body asm Codegen.sizing_ctx body;
  checki "sizes agree" (Dlink_isa.Asm.size asm) (Codegen.function_size body)

let test_linkmap_basics () =
  let m = Linkmap.create () in
  Linkmap.define m ~symbol:"s" ~addr:100 ~image_id:0 ();
  Linkmap.define m ~symbol:"s" ~addr:200 ~image_id:1 ();
  checki "first wins" 100 (Option.get (Linkmap.lookup_addr m "s"));
  checkb "missing" true (Linkmap.lookup m "t" = None);
  Alcotest.(check (list string)) "symbols" [ "s" ] (Linkmap.symbols m)

(* ---------------- symbol versioning ---------------- *)

let test_linkmap_default_version_beats_nondefault () =
  let m = Linkmap.create () in
  Linkmap.define m ~symbol:"digest@v1" ~addr:100 ~image_id:0 ();
  Linkmap.define m ~symbol:"digest@@v2" ~addr:200 ~image_id:1 ();
  checki "bare binds default" 200 (Option.get (Linkmap.lookup_addr m "digest"));
  checki "exact v1" 100 (Option.get (Linkmap.lookup_addr m "digest@v1"));
  checki "exact v2" 200 (Option.get (Linkmap.lookup_addr m "digest@v2"))

let test_linkmap_preload_beats_default () =
  let m = Linkmap.create () in
  Linkmap.define m ~symbol:"f@@v2" ~addr:100 ~image_id:0 ();
  Linkmap.define m ~preload:true ~symbol:"f" ~addr:300 ~image_id:1 ();
  checki "preload wins bare" 300 (Option.get (Linkmap.lookup_addr m "f"));
  (* The unversioned interposer also satisfies versioned references. *)
  checki "preload wins versioned" 300
    (Option.get (Linkmap.lookup_addr m "f@v2"))

let test_linkmap_unversioned_satisfies_version_request () =
  let m = Linkmap.create () in
  Linkmap.define m ~symbol:"g" ~addr:50 ~image_id:0 ();
  checki "fallback" 50 (Option.get (Linkmap.lookup_addr m "g@v9"));
  checkb "unknown base still missing" true (Linkmap.lookup m "h@v9" = None)

let test_linkmap_undefine_image () =
  let m = Linkmap.create () in
  Linkmap.define m ~symbol:"a" ~addr:1 ~image_id:0 ();
  Linkmap.define m ~symbol:"a" ~addr:2 ~image_id:1 ();
  Linkmap.define m ~symbol:"b" ~addr:3 ~image_id:1 ();
  Alcotest.(check (list string))
    "changed names" [ "a"; "b" ]
    (Linkmap.undefine_image m ~image_id:1);
  checki "a falls back to image 0" 1 (Option.get (Linkmap.lookup_addr m "a"));
  checkb "b gone" true (Linkmap.lookup m "b" = None);
  Alcotest.(check (list string)) "symbols pruned" [ "a" ] (Linkmap.symbols m)

(* ---------------- dump ---------------- *)

let string_contains haystack needle =
  let n = String.length needle and l = String.length haystack in
  let rec go i = i + n <= l && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_dump_layout_mentions_all_modules () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let s = Dump.layout t in
  List.iter
    (fun m -> checkb (m ^ " listed") true (string_contains s m))
    [ "app"; "libx"; "__ld_so"; "heap"; "stack" ]

let test_dump_disassembly_shows_plt () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  let s = Dump.disassemble_image app in
  checkb "has plt annotation" true (string_contains s "[plt]");
  checkb "labels functions" true (string_contains s "main:");
  checkb "labels plt entries" true (string_contains s "@plt")

let test_dump_function_listing () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  match Dump.disassemble_function t ~mname:"app" ~fname:"main" with
  | Some s -> checkb "non-empty" true (String.length s > 0)
  | None -> Alcotest.fail "function not found"

let test_dump_unknown_function () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  checkb "none" true (Dump.disassemble_function t ~mname:"app" ~fname:"ghost" = None)

let test_dump_got_classifies_lazy_stubs () =
  let t = load_with Mode.Lazy_binding (two_module ()) in
  let app = Option.get (Space.image_by_name t.Loader.space "app") in
  let s = Dump.got_contents t app in
  checkb "resolver slot" true (string_contains s "resolver");
  checkb "lazy stubs" true (string_contains s "plt stub")

(* ---------------- property tests ---------------- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"random module sets load without overlap" ~count:60
      QCheck.(pair (int_range 1 6) (int_range 1 8))
      (fun (n_libs, n_syms) ->
        let libs =
          List.init n_libs (fun i ->
              lib
                (Printf.sprintf "lib%d" i)
                (List.init n_syms (fun j -> Printf.sprintf "s%d_%d" i j)))
        in
        let imports =
          List.concat_map
            (fun i -> List.init n_syms (fun j -> Printf.sprintf "s%d_%d" i j))
            (List.init n_libs (fun i -> i))
        in
        match Loader.load (app_calling imports :: libs) with
        | Error _ -> false
        | Ok t ->
            (* Space.create already rejects overlap; check fetchability. *)
            Array.for_all
              (fun (img : Image.t) ->
                Hashtbl.fold
                  (fun _ addr acc -> acc && Image.fetch img addr <> None)
                  img.Image.funcs true)
              (Space.images t.Loader.space));
    QCheck.Test.make ~name:"every import has plt entry and got slot" ~count:60
      (QCheck.int_range 1 10)
      (fun n_syms ->
        let syms = List.init n_syms (fun i -> Printf.sprintf "s%d" i) in
        let t = load_with Mode.Lazy_binding [ app_calling syms; lib "l" syms ] in
        let app = Option.get (Space.image_by_name t.Loader.space "app") in
        List.for_all
          (fun s -> Image.plt_entry app s <> None && Image.got_slot app s <> None)
          syms);
  ]

let () =
  Alcotest.run "dlink_linker"
    [
      ( "layout",
        [
          Alcotest.test_case "sections ordered" `Quick test_layout_sections_ordered;
          Alcotest.test_case "got/data page split" `Quick test_layout_got_page_separated_from_data;
          Alcotest.test_case "func align" `Quick test_layout_func_align_respected;
          Alcotest.test_case "ld_so mapped" `Quick test_layout_includes_ld_so;
        ] );
      ( "plt_got",
        [
          Alcotest.test_case "entries 16B apart" `Quick test_plt_entries_are_16_bytes_apart;
          Alcotest.test_case "entry shape" `Quick test_plt_entry_shape;
          Alcotest.test_case "lazy GOT init" `Quick test_got_lazy_points_into_plt_stub;
          Alcotest.test_case "eager GOT init" `Quick test_got_eager_resolved;
          Alcotest.test_case "got[1] resolver" `Quick test_got1_holds_resolver;
          Alcotest.test_case "static no plt" `Quick test_static_has_no_plt;
          Alcotest.test_case "plt order deterministic" `Quick test_plt_order_deterministic;
        ] );
      ( "modes_errors",
        [
          Alcotest.test_case "duplicate module" `Quick test_duplicate_module_rejected;
          Alcotest.test_case "reserved name" `Quick test_reserved_name_rejected;
          Alcotest.test_case "undefined import" `Quick test_undefined_import_rejected;
          Alcotest.test_case "extra imports dangle" `Quick test_extra_imports_may_dangle;
          Alcotest.test_case "empty rejected" `Quick test_empty_input_rejected;
          Alcotest.test_case "interposition" `Quick test_interposition_first_wins;
          Alcotest.test_case "patched sites" `Quick test_patched_records_sites;
          Alcotest.test_case "lazy no sites" `Quick test_lazy_has_no_patch_sites;
        ] );
      ( "aslr",
        [
          Alcotest.test_case "seeded" `Quick test_aslr_deterministic_by_seed;
          Alcotest.test_case "golden layout" `Quick test_golden_layout_aslr_seed7;
        ] );
      ( "versioning",
        [
          Alcotest.test_case "default beats non-default" `Quick
            test_linkmap_default_version_beats_nondefault;
          Alcotest.test_case "preload beats default" `Quick
            test_linkmap_preload_beats_default;
          Alcotest.test_case "unversioned fallback" `Quick
            test_linkmap_unversioned_satisfies_version_request;
          Alcotest.test_case "undefine image" `Quick test_linkmap_undefine_image;
        ] );
      ( "space",
        [
          Alcotest.test_case "boundaries" `Quick test_space_lookup_boundaries;
          Alcotest.test_case "overlap rejected" `Quick test_space_rejects_overlap;
          Alcotest.test_case "in_any_plt/got" `Quick test_in_any_plt_got;
        ] );
      ( "dump",
        [
          Alcotest.test_case "layout lists modules" `Quick
            test_dump_layout_mentions_all_modules;
          Alcotest.test_case "disassembly" `Quick test_dump_disassembly_shows_plt;
          Alcotest.test_case "function listing" `Quick test_dump_function_listing;
          Alcotest.test_case "unknown function" `Quick test_dump_unknown_function;
          Alcotest.test_case "got classification" `Quick
            test_dump_got_classifies_lazy_stubs;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "size matches" `Quick test_codegen_size_matches_assembly;
          Alcotest.test_case "linkmap" `Quick test_linkmap_basics;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
