(* Tests for the paper's related mechanisms and alternate design:
   GNU ifuncs (§2.4.1), C++-style virtual dispatch (§2.4.2), and the
   explicit-invalidation coherence mode (§3.4). *)

module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
module Loader = Dlink_linker.Loader
module Space = Dlink_linker.Space
module Image = Dlink_linker.Image
module Memory = Dlink_mach.Memory
module Process = Dlink_mach.Process
module C = Dlink_uarch.Counters
open Dlink_core
module Skip = Dlink_pipeline.Skip

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let func ?(exported = true) fname body = { Objfile.fname; exported; body }

(* libstring exports an ifunc "copy" with three implementations
   (best-first: avx, sse, generic). *)
let libstring () =
  Objfile.create_exn ~name:"libstring"
    ~ifuncs:[ { Objfile.iname = "copy"; candidates = [ "copy_avx"; "copy_sse"; "copy_generic" ] } ]
    [
      func "copy_avx" [ Body.Compute 2 ];
      func "copy_sse" [ Body.Compute 5 ];
      func "copy_generic" [ Body.Compute 11 ];
    ]

let app_calling_copy n =
  Objfile.create_exn ~name:"app"
    [ func ~exported:false "main" (List.init n (fun _ -> Body.Call_import "copy")) ]

let load_hw hw_level objs =
  Loader.load_exn ~opts:{ Loader.default_options with hw_level } objs

(* ---------------- ifunc ---------------- *)

let test_ifunc_validation () =
  checkb "empty candidates" true
    (Result.is_error
       (Objfile.create ~name:"m"
          ~ifuncs:[ { Objfile.iname = "i"; candidates = [] } ]
          [ func "f" [] ]));
  checkb "unknown candidate" true
    (Result.is_error
       (Objfile.create ~name:"m"
          ~ifuncs:[ { Objfile.iname = "i"; candidates = [ "ghost" ] } ]
          [ func "f" [] ]));
  checkb "name collision" true
    (Result.is_error
       (Objfile.create ~name:"m"
          ~ifuncs:[ { Objfile.iname = "f"; candidates = [ "f" ] } ]
          [ func "f" [] ]))

let test_ifunc_exported () =
  let t = libstring () in
  checkb "ifunc in exports" true (List.mem "copy" (Objfile.exports t))

let resolved_copy hw_level =
  let linked = load_hw hw_level [ app_calling_copy 1; libstring () ] in
  Option.get (Dlink_linker.Linkmap.lookup_addr linked.Loader.linkmap "copy")

let test_ifunc_selects_by_hw_level () =
  let linked = load_hw 99 [ app_calling_copy 1; libstring () ] in
  let addr_of f = Option.get (Loader.func_addr linked ~mname:"libstring" ~fname:f) in
  checki "best hw -> avx" (addr_of "copy_avx") (resolved_copy 99);
  checki "mid hw -> sse" (addr_of "copy_sse") (resolved_copy 1);
  checki "no features -> generic" (addr_of "copy_generic") (resolved_copy 0)

let test_ifunc_lazy_resolution_binds_choice () =
  let linked = load_hw 0 [ app_calling_copy 3; libstring () ] in
  let p = Process.create linked in
  Process.call p (Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main"));
  let app = Option.get (Space.image_by_name linked.Loader.space "app") in
  let slot = Option.get (Image.got_slot app "copy") in
  let generic =
    Option.get (Loader.func_addr linked ~mname:"libstring" ~fname:"copy_generic")
  in
  checki "GOT bound to selected impl" generic (Memory.read (Process.memory p) slot)

let test_ifunc_calls_are_skipped_like_plt_calls () =
  let skip_cfg = { Skip.default_config with verify_targets = true } in
  let sim = Sim.create ~skip_cfg ~mode:Sim.Enhanced [ app_calling_copy 1; libstring () ] in
  for _ = 1 to 10 do
    Sim.call sim ~mname:"app" ~fname:"main"
  done;
  let c = Sim.counters sim in
  checki "ifunc calls counted" 10 c.C.tramp_calls;
  checki "skipped after training" 8 c.C.tramp_skips

let test_ifunc_hw_levels_give_different_work () =
  let retired hw_level =
    let linked = load_hw hw_level [ app_calling_copy 4; libstring () ] in
    let p = Process.create linked in
    Process.call p (Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main"));
    Process.retired p
  in
  (* The generic implementation executes more instructions than AVX. *)
  checkb "generic slower" true (retired 0 > retired 99)

(* ---------------- virtual dispatch ---------------- *)

let shapes () =
  Objfile.create_exn ~name:"libshapes"
    [
      func "circle_area" [ Body.Compute 4 ];
      func "square_area" [ Body.Compute 7 ];
    ]

let app_virtual calls =
  Objfile.create_exn ~name:"app"
    ~vtables:[ { Objfile.vname = "shape_vt"; entries = [ "circle_area"; "square_area" ] } ]
    [
      func ~exported:false "main"
        (List.concat_map
           (fun slot -> [ Body.Call_virtual { vtable = "shape_vt"; slot } ])
           calls);
    ]

let test_vtable_validation () =
  checkb "unknown vtable" true
    (Result.is_error
       (Objfile.create ~name:"m"
          [ func "f" [ Body.Call_virtual { vtable = "ghost"; slot = 0 } ] ]));
  checkb "slot out of range" true
    (Result.is_error
       (Objfile.create ~name:"m"
          ~vtables:[ { Objfile.vname = "v"; entries = [ "f" ] } ]
          [ func "f" [ Body.Call_virtual { vtable = "v"; slot = 1 } ] ]))

let test_vtable_relocated_at_load () =
  let linked = Loader.load_exn [ app_virtual [ 0 ]; shapes () ] in
  let app = Option.get (Space.image_by_name linked.Loader.space "app") in
  let base = Option.get (Image.vtable_base app "shape_vt") in
  checkb "vtable in data section" true
    (base >= app.Image.data.base && base < app.Image.data.base + app.Image.data.size);
  let circle =
    Option.get (Loader.func_addr linked ~mname:"libshapes" ~fname:"circle_area")
  in
  let square =
    Option.get (Loader.func_addr linked ~mname:"libshapes" ~fname:"square_area")
  in
  checki "slot 0" circle (List.assoc base linked.Loader.init_mem);
  checki "slot 1" square (List.assoc (base + 8) linked.Loader.init_mem)

let test_vtable_undefined_entry_rejected () =
  let app =
    Objfile.create_exn ~name:"app"
      ~vtables:[ { Objfile.vname = "v"; entries = [ "nowhere" ] } ]
      [ func ~exported:false "main" [ Body.Call_virtual { vtable = "v"; slot = 0 } ] ]
  in
  checkb "load fails" true (Result.is_error (Loader.load [ app ]))

let test_virtual_dispatch_executes_target () =
  (* Distinct slots execute different amounts of work. *)
  let retired calls =
    let linked = Loader.load_exn [ app_virtual calls; shapes () ] in
    let p = Process.create linked in
    Process.call p (Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main"));
    Process.retired p
  in
  checkb "square does more work" true (retired [ 1 ] > retired [ 0 ])

let test_virtual_calls_do_not_engage_skip_hardware () =
  (* §2.4.2: the instruction sequence differs from PLT calls, so the
     mechanism neither counts nor skips them. *)
  let skip_cfg = { Skip.default_config with verify_targets = true } in
  let sim = Sim.create ~skip_cfg ~mode:Sim.Enhanced [ app_virtual [ 0; 1; 0 ]; shapes () ] in
  for _ = 1 to 10 do
    Sim.call sim ~mname:"app" ~fname:"main"
  done;
  let c = Sim.counters sim in
  checki "no trampoline calls" 0 c.C.tramp_calls;
  checki "no skips" 0 c.C.tramp_skips;
  checki "nothing inserted in ABTB" 0
    (Dlink_uarch.Abtb.valid_count (Skip.abtb (Option.get (Sim.skip sim))))

let test_virtual_and_plt_mix_arch_equivalent () =
  let app =
    Objfile.create_exn ~name:"app"
      ~vtables:[ { Objfile.vname = "vt"; entries = [ "circle_area" ] } ]
      [
        func ~exported:false "main"
          [
            Body.Loop
              {
                mean_iters = 10.0;
                body =
                  [
                    Body.Call_import "square_area";
                    Body.Call_virtual { vtable = "vt"; slot = 0 };
                    Body.Touch { loads = 1; stores = 1 };
                  ];
              };
          ];
      ]
  in
  let fp mode =
    let sim = Sim.create ~mode [ app; shapes () ] in
    Sim.call sim ~mname:"app" ~fname:"main";
    Process.arch_fingerprint (Sim.process sim)
  in
  checki "base = enhanced" (fp Sim.Base) (fp Sim.Enhanced)

let test_vtable_area_disjoint_from_touch_region () =
  (* Touch stores must never overwrite relocated vtable slots. *)
  let app =
    Objfile.create_exn ~name:"app" ~data_bytes:256
      ~vtables:[ { Objfile.vname = "vt"; entries = [ "circle_area" ] } ]
      [
        func ~exported:false "main"
          [
            Body.Loop
              {
                mean_iters = 60.0;
                body =
                  [
                    Body.Touch { loads = 0; stores = 4 };
                    Body.Call_virtual { vtable = "vt"; slot = 0 };
                  ];
              };
          ];
      ]
  in
  let linked = Loader.load_exn [ app; shapes () ] in
  let p = Process.create linked in
  (* If a Touch store clobbered the vtable, the virtual call would jump to
     a garbage hash value and fault. *)
  Process.call p (Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main"));
  checkb "survived" true (Process.retired p > 0)

(* ---------------- explicit invalidation (§3.4) ---------------- *)

let explicit_cfg =
  {
    Skip.default_config with
    coherence = Skip.Explicit_invalidate;
    verify_targets = true;
  }

let libx () =
  Objfile.create_exn ~name:"libx"
    [ func "f" [ Body.Compute 5 ]; func "f2" [ Body.Compute 9 ] ]

let app_f () =
  Objfile.create_exn ~name:"app"
    [ func ~exported:false "main" [ Body.Call_import "f" ] ]

let rebind_f sim =
  let linked = Sim.linked sim in
  let app = Option.get (Space.image_by_name linked.Loader.space "app") in
  let slot = Option.get (Image.got_slot app "f") in
  let f2 = Option.get (Loader.func_addr linked ~mname:"libx" ~fname:"f2") in
  Memory.write (Process.memory (Sim.process sim)) slot f2;
  (* The store retires like any other. *)
  Option.iter
    (fun skip ->
      Skip.on_retire skip
        {
          Dlink_mach.Event.pc = 0;
          size = 4;
          in_plt = false;
          load = None;
          load2 = None;
          store = Some slot;
          branch = None;
        })
    (Sim.skip sim)

let test_explicit_mode_skips_normally () =
  let sim = Sim.create ~skip_cfg:explicit_cfg ~mode:Sim.Enhanced [ app_f (); libx () ] in
  for _ = 1 to 10 do
    Sim.call sim ~mname:"app" ~fname:"main"
  done;
  checki "skips" 8 (Sim.counters sim).C.tramp_skips

let test_explicit_mode_misspeculates_without_flush () =
  let sim = Sim.create ~skip_cfg:explicit_cfg ~mode:Sim.Enhanced [ app_f (); libx () ] in
  for _ = 1 to 5 do
    Sim.call sim ~mname:"app" ~fname:"main"
  done;
  rebind_f sim;
  (* No explicit invalidate: the stale ABTB entry now disagrees with the
     GOT, and the next skip is a misspeculation. *)
  checkb "misspeculation detected" true
    (try
       Sim.call sim ~mname:"app" ~fname:"main";
       false
     with Skip.Misspeculation _ -> true)

let test_explicit_mode_safe_with_flush () =
  let sim = Sim.create ~skip_cfg:explicit_cfg ~mode:Sim.Enhanced [ app_f (); libx () ] in
  for _ = 1 to 5 do
    Sim.call sim ~mname:"app" ~fname:"main"
  done;
  rebind_f sim;
  Option.iter Skip.flush (Sim.skip sim);
  Sim.call sim ~mname:"app" ~fname:"main";
  checkb "safe after explicit invalidate" true true

let test_bloom_mode_needs_no_flush () =
  (* Same scenario under the primary design: the store clears automatically. *)
  let cfg = { Skip.default_config with verify_targets = true } in
  let sim = Sim.create ~skip_cfg:cfg ~mode:Sim.Enhanced [ app_f (); libx () ] in
  for _ = 1 to 5 do
    Sim.call sim ~mname:"app" ~fname:"main"
  done;
  rebind_f sim;
  Sim.call sim ~mname:"app" ~fname:"main";
  checkb "transparent" true ((Sim.counters sim).C.abtb_clears >= 1)

let () =
  Alcotest.run "dlink_extensions"
    [
      ( "ifunc",
        [
          Alcotest.test_case "validation" `Quick test_ifunc_validation;
          Alcotest.test_case "exported" `Quick test_ifunc_exported;
          Alcotest.test_case "hw-level selection" `Quick test_ifunc_selects_by_hw_level;
          Alcotest.test_case "lazy binding binds choice" `Quick
            test_ifunc_lazy_resolution_binds_choice;
          Alcotest.test_case "skipped like PLT calls" `Quick
            test_ifunc_calls_are_skipped_like_plt_calls;
          Alcotest.test_case "levels change work" `Quick
            test_ifunc_hw_levels_give_different_work;
        ] );
      ( "virtual",
        [
          Alcotest.test_case "validation" `Quick test_vtable_validation;
          Alcotest.test_case "relocated at load" `Quick test_vtable_relocated_at_load;
          Alcotest.test_case "undefined entry rejected" `Quick
            test_vtable_undefined_entry_rejected;
          Alcotest.test_case "dispatch executes target" `Quick
            test_virtual_dispatch_executes_target;
          Alcotest.test_case "does not engage skip hardware" `Quick
            test_virtual_calls_do_not_engage_skip_hardware;
          Alcotest.test_case "mixed arch equivalence" `Quick
            test_virtual_and_plt_mix_arch_equivalent;
          Alcotest.test_case "vtable/touch disjoint" `Quick
            test_vtable_area_disjoint_from_touch_region;
        ] );
      ( "explicit_invalidate",
        [
          Alcotest.test_case "skips normally" `Quick test_explicit_mode_skips_normally;
          Alcotest.test_case "misspeculates without flush" `Quick
            test_explicit_mode_misspeculates_without_flush;
          Alcotest.test_case "safe with flush" `Quick test_explicit_mode_safe_with_flush;
          Alcotest.test_case "bloom needs no flush" `Quick test_bloom_mode_needs_no_flush;
        ] );
    ]
