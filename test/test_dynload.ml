(* Tests for the runtime dynamic-loading stack: Dynload semantics, the
   churn driver, stable linking, and the churn differential oracle. *)

module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
module C = Dlink_uarch.Counters
module Kernel = Dlink_pipeline.Kernel
module Process = Dlink_mach.Process
module Memory = Dlink_mach.Memory
module Churn = Dlink_core.Churn
module CO = Dlink_fault.Churn_oracle
module W = Dlink_workloads
open Dlink_linker

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let func ?(exported = true) fname body = { Objfile.fname; exported; body }

let scen = W.Churn.scenario ()

let call_entry (m : Churn.machine) i =
  let mname = scen.Churn.plugins.(i).Objfile.name in
  let addr =
    Option.get
      (Loader.func_addr m.Churn.linked ~mname ~fname:(scen.Churn.entry i))
  in
  Process.call m.Churn.process addr

let resolver_runs (m : Churn.machine) =
  (Kernel.counters m.Churn.kernel).C.resolver_runs

(* ---------------- dlopen / dlclose ---------------- *)

let test_reopen_reuses_base () =
  let m = Churn.make_machine ~link_mode:Mode.Stable_linking scen in
  let d = m.Churn.dynload in
  let h1 = Dynload.dlopen d scen.Churn.plugins.(0) in
  let b1 = Dynload.base_of d h1 in
  call_entry m 0;
  Dynload.dlclose d h1;
  checkb "closed" true (not (Dynload.is_open d h1));
  let h2 = Dynload.dlopen d scen.Churn.plugins.(0) in
  checki "base reused first-fit" b1 (Dynload.base_of d h2);
  checkb "fresh handle" true (h1 <> h2);
  (* Stable linking: the reopened module replays its GOT snapshot, so the
     first call after reopen never enters the resolver. *)
  let r0 = resolver_runs m in
  call_entry m 0;
  checki "no resolver after reopen" r0 (resolver_runs m);
  let s = Dynload.stats d in
  checkb "snapshot used" true (s.Dynload.stable_hits > 0);
  checki "no stale snapshot entries" 0 s.Dynload.stable_misses;
  checki "one reopen counted" 1 s.Dynload.reopens

let test_lazy_reopen_pays_resolver () =
  let m = Churn.make_machine ~link_mode:Mode.Lazy_binding scen in
  let d = m.Churn.dynload in
  let h = Dynload.dlopen d scen.Churn.plugins.(0) in
  call_entry m 0;
  let r_first = resolver_runs m in
  Dynload.dlclose d h;
  ignore (Dynload.dlopen d scen.Churn.plugins.(0) : Dynload.handle);
  call_entry m 0;
  checkb "lazy reopen re-resolves" true (resolver_runs m > r_first)

let test_refcount () =
  let m = Churn.make_machine ~link_mode:Mode.Lazy_binding scen in
  let d = m.Churn.dynload in
  let h = Dynload.dlopen d scen.Churn.plugins.(1) in
  let h' = Dynload.dlopen d scen.Churn.plugins.(1) in
  checkb "same handle" true (h = h');
  Dynload.dlclose d h;
  checkb "still open after one close" true (Dynload.is_open d h);
  Dynload.dlclose d h;
  checkb "closed after second" true (not (Dynload.is_open d h));
  checkb "double close raises" true
    (try
       Dynload.dlclose d h;
       false
     with Invalid_argument _ -> true)

let test_dlsym_tracks_open_set () =
  let m = Churn.make_machine ~link_mode:Mode.Lazy_binding scen in
  let d = m.Churn.dynload in
  let entry0 = scen.Churn.entry 0 in
  checkb "absent before open" true (Dynload.dlsym d entry0 = None);
  let h = Dynload.dlopen d scen.Churn.plugins.(0) in
  checkb "present while open" true (Dynload.dlsym d entry0 <> None);
  Dynload.dlclose d h;
  checkb "absent after close" true (Dynload.dlsym d entry0 = None)

(* ---------------- cross-module rebinding at dlclose ---------------- *)

(* pa imports pb's export: closing pb must rewrite pa's bound GOT slot
   back to the lazy stub (the binding is gone from the link map), and a
   reopened pb must let pa's next call re-resolve against the new map. *)
let rebind_scenario () =
  let base =
    [ Objfile.create_exn ~name:"app" [ func ~exported:false "main" [ Body.Compute 4 ] ] ]
  in
  let pb = Objfile.create_exn ~name:"pb" [ func "b_fn" [ Body.Compute 4 ] ] in
  let pa = Objfile.create_exn ~name:"pa" [ func "a_main" [ Body.Call_import "b_fn" ] ] in
  ( {
      Churn.sname = "rebind";
      base_objs = base;
      plugins = [| pb; pa |];
      n_resident = 2;
      preload = [];
      entry = (fun i -> if i = 0 then "b_fn" else "a_main");
      func_align = 16;
    },
    pa,
    pb )

let test_dlclose_rebinds_other_modules () =
  let rscen, pa, pb = rebind_scenario () in
  let m = Churn.make_machine ~link_mode:Mode.Lazy_binding rscen in
  let d = m.Churn.dynload in
  let hb = Dynload.dlopen d pb in
  ignore (Dynload.dlopen d pa : Dynload.handle);
  let a_entry =
    Option.get (Loader.func_addr m.Churn.linked ~mname:"pa" ~fname:"a_main")
  in
  Process.call m.Churn.process a_entry;
  let img_a = Option.get (Space.image_by_name m.Churn.linked.Loader.space "pa") in
  let slot = Option.get (Image.got_slot img_a "b_fn") in
  let mem = Process.memory m.Churn.process in
  checki "bound into pb" (Option.get (Dynload.dlsym d "b_fn")) (Memory.read mem slot);
  Dynload.dlclose d hb;
  checkb "rebind counted" true ((Dynload.stats d).Dynload.rebinds > 0);
  let stub = Option.get (Image.plt_entry img_a "b_fn") + 6 in
  checki "slot back to lazy stub" stub (Memory.read mem slot);
  (* Reopen the provider: the stub path re-resolves on the next call. *)
  ignore (Dynload.dlopen d pb : Dynload.handle);
  Process.call m.Churn.process a_entry;
  checki "rebound to reopened pb"
    (Option.get (Dynload.dlsym d "b_fn"))
    (Memory.read mem slot)

let test_deferred_invalidation_flushes_fifo () =
  let rscen, pa, pb = rebind_scenario () in
  let m = Churn.make_machine ~link_mode:Mode.Lazy_binding rscen in
  let d = m.Churn.dynload in
  let hb = Dynload.dlopen d pb in
  ignore (Dynload.dlopen d pa : Dynload.handle);
  let a_entry =
    Option.get (Loader.func_addr m.Churn.linked ~mname:"pa" ~fname:"a_main")
  in
  Process.call m.Churn.process a_entry;
  let img_a = Option.get (Space.image_by_name m.Churn.linked.Loader.space "pa") in
  let slot = Option.get (Image.got_slot img_a "b_fn") in
  let mem = Process.memory m.Churn.process in
  let bound = Memory.read mem slot in
  Dynload.dlclose ~defer_invalidate:true d hb;
  checki "one pending" 1 (Dynload.pending_invalidations d);
  (* The hazard window: mapping gone, stale binding still live. *)
  checki "stale binding survives unmap" bound (Memory.read mem slot);
  Dynload.flush_pending d;
  checki "flushed" 0 (Dynload.pending_invalidations d);
  let stub = Option.get (Image.plt_entry img_a "b_fn") + 6 in
  checki "slot rewritten at flush" stub (Memory.read mem slot)

(* Two providers closed (deferred) within one scheduling quantum must
   flush in close order at the next quantum boundary — the soak loop
   calls [flush_pending] at each op, so a LIFO queue would replay the
   unload hazards backwards.  Eager binding writes resolved addresses at
   dlopen, so the consumer's slots point into the providers without
   running any code, and a recording [store] observes the flush order
   directly. *)
let test_deferred_invalidations_flush_in_close_order () =
  let app =
    Objfile.create_exn ~name:"app" [ func ~exported:false "main" [ Body.Compute 4 ] ]
  in
  let pb = Objfile.create_exn ~name:"pb" [ func "b_fn" [ Body.Compute 4 ] ] in
  let pc = Objfile.create_exn ~name:"pc" [ func "c_fn" [ Body.Compute 4 ] ] in
  let pa =
    Objfile.create_exn ~name:"pa"
      [ func "a_main" [ Body.Call_import "b_fn"; Body.Call_import "c_fn" ] ]
  in
  let opts = { Loader.default_options with Loader.mode = Mode.Eager_binding } in
  let linked = Loader.load_exn ~opts [ app ] in
  let mem : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let writes = ref [] in
  let store a v =
    writes := a :: !writes;
    Hashtbl.replace mem a v
  in
  let read a = Option.value (Hashtbl.find_opt mem a) ~default:0 in
  let d = Dynload.create ~store ~read linked in
  let hb = Dynload.dlopen d pb in
  let hc = Dynload.dlopen d pc in
  ignore (Dynload.dlopen d pa : Dynload.handle);
  let img_a = Option.get (Space.image_by_name linked.Loader.space "pa") in
  let slot_b = Option.get (Image.got_slot img_a "b_fn") in
  let slot_c = Option.get (Image.got_slot img_a "c_fn") in
  checki "b bound eagerly" (Option.get (Dynload.dlsym d "b_fn")) (read slot_b);
  checki "c bound eagerly" (Option.get (Dynload.dlsym d "c_fn")) (read slot_c);
  let bound_b = read slot_b and bound_c = read slot_c in
  Dynload.dlclose ~defer_invalidate:true d hb;
  Dynload.dlclose ~defer_invalidate:true d hc;
  checki "two pending" 2 (Dynload.pending_invalidations d);
  (* The quantum in between: both mappings are gone, both stale bindings
     are still live. *)
  checki "b's stale binding survives" bound_b (read slot_b);
  checki "c's stale binding survives" bound_c (read slot_c);
  writes := [];
  Dynload.flush_pending d;
  checki "queue drained" 0 (Dynload.pending_invalidations d);
  checkb "both slots invalidated" true
    (read slot_b <> bound_b && read slot_c <> bound_c);
  let order = List.rev !writes in
  let pos slot =
    let rec go i = function
      | [] -> Alcotest.failf "slot 0x%x never rewritten" slot
      | a :: _ when a = slot -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  checkb "FIFO: first close flushes first" true (pos slot_b < pos slot_c);
  (* Flushing an empty queue at the next boundary is a no-op. *)
  writes := [];
  Dynload.flush_pending d;
  checki "no writes on empty flush" 0 (List.length !writes)

(* ---------------- grace-period unmap and the ABA hazard ---------------- *)

module Coherence = Dlink_mach.Coherence

let test_aba_reuse_discards_delayed_invalidation () =
  (* The first-fit ABA hazard at unit level: an invalidation delayed past
     its module's dlclose must not be applied once the address range
     belongs to a new mapping.  The generation stamp is the defence. *)
  let m = Churn.make_machine ~link_mode:Mode.Lazy_binding scen in
  let d = m.Churn.dynload in
  let bus = Coherence.create () in
  let delivered = ref 0 in
  Coherence.subscribe bus ~core:1 (fun ~src:_ _addr -> incr delivered);
  Coherence.set_validate bus
    (Some
       (fun ~src:_ ~stamp addr ->
         (match Dynload.generation_at d addr with Some g -> g | None -> -1)
         = stamp));
  let h1 = Dynload.dlopen d scen.Churn.plugins.(0) in
  let base = Dynload.base_of d h1 in
  let g1 = Option.get (Dynload.generation_at d base) in
  Coherence.set_fault bus (Some (fun ~src:_ _ -> Coherence.Delay));
  Coherence.publish ~stamp:g1 bus ~src:0 base;
  Coherence.set_fault bus None;
  checki "invalidation parked in flight" 1 (Coherence.pending bus);
  Dynload.dlclose d h1;
  let h2 = Dynload.dlopen d scen.Churn.plugins.(0) in
  checki "range reused first-fit" base (Dynload.base_of d h2);
  let g2 = Option.get (Dynload.generation_at d base) in
  checkb "generation advanced across close/reopen" true (g2 > g1);
  ignore (Coherence.drain bus : int);
  checki "stale invalidation not applied" 0 !delivered;
  checki "counted as an ABA discard" 1 (Coherence.stale_discards bus);
  checki "resolved, not parked" 0 (Coherence.pending bus);
  (* A message stamped with the live generation goes through. *)
  Coherence.publish ~stamp:g2 bus ~src:0 base;
  checki "fresh invalidation applied" 1 !delivered

let test_unmap_grace_period_and_force () =
  let m = Churn.make_machine ~link_mode:Mode.Lazy_binding scen in
  let d = m.Churn.dynload in
  let bus = Coherence.create () in
  Coherence.subscribe bus ~core:1 (fun ~src:_ _ -> ());
  let timeouts = ref 0 in
  Coherence.set_on_timeout bus
    (Some (fun ~core:_ ~src:_ _addr -> incr timeouts));
  Dynload.set_unmap_barrier d
    (Some
       (fun ~span_base:_ ~span_end:_ ~complete -> Coherence.fence bus ~complete));
  let park_message addr =
    Coherence.set_fault bus (Some (fun ~src:_ _ -> Coherence.Delay));
    Coherence.publish bus ~src:0 addr;
    Coherence.set_fault bus None
  in
  let h = Dynload.dlopen d scen.Churn.plugins.(0) in
  let base = Dynload.base_of d h in
  park_message base;
  Dynload.dlclose d h;
  checkb "handle closed immediately" true (not (Dynload.is_open d h));
  checki "unmap parked on the barrier" 1 (Dynload.retiring_count d);
  checki "grace period counted" 1 (Dynload.stats d).Dynload.grace_unmaps;
  (* Natural completion: the drain delivers the laggard, every ack
     arrives, and the unmap lands without forcing anyone. *)
  ignore (Coherence.drain bus : int);
  checki "grace period over" 0 (Dynload.retiring_count d);
  checki "nothing forced" 0 (Dynload.stats d).Dynload.forced_unmaps;
  checki "nobody timed out" 0 !timeouts;
  (* Reuse pressure: a dlopen of the retiring module forces the barrier
     rather than waiting for a drain that may never come. *)
  let h2 = Dynload.dlopen d scen.Churn.plugins.(0) in
  park_message base;
  Dynload.dlclose d h2;
  checki "second grace period" 1 (Dynload.retiring_count d);
  let h3 = Dynload.dlopen d scen.Churn.plugins.(0) in
  checki "reopen forced the unmap" 1 (Dynload.stats d).Dynload.forced_unmaps;
  checki "laggard core timed out" 1 !timeouts;
  checki "range reusable after the forced unmap" base (Dynload.base_of d h3);
  checki "nothing retiring" 0 (Dynload.retiring_count d);
  (* Teardown: force_retiring resolves whatever is still waiting. *)
  park_message base;
  Dynload.dlclose d h3;
  checki "one forced at teardown" 1 (Dynload.force_retiring d);
  checki "teardown force counted" 2 (Dynload.stats d).Dynload.forced_unmaps;
  checki "idempotent" 0 (Dynload.force_retiring d)

(* ---------------- churn driver and stable linking ---------------- *)

let test_stable_beats_lazy_resolver_runs () =
  let lazy_c =
    Churn.run_cell ~link_mode:Mode.Lazy_binding ~rate:200 ~calls:800 ~seed:5 scen
  in
  let stable_c =
    Churn.run_cell ~link_mode:Mode.Stable_linking ~rate:200 ~calls:800 ~seed:5
      scen
  in
  let lr = lazy_c.Churn.counters.C.resolver_runs
  and sr = stable_c.Churn.counters.C.resolver_runs in
  checkb "churn happened" true (lazy_c.Churn.churn_events > 0);
  checkb "lazy pays the resolver" true (lr > 100);
  checkb "stable mostly skips it" true (sr * 10 < lr);
  checkb "snapshots actually hit" true (stable_c.Churn.stable_hits > 0);
  checki "no stale snapshot entries" 0 stable_c.Churn.stable_misses;
  checki "opens balance closes" stable_c.Churn.opens stable_c.Churn.closes

let test_run_cell_deterministic () =
  let run () =
    let c =
      Churn.run_cell ~link_mode:Mode.Stable_linking ~rate:150 ~calls:300
        ~seed:11 scen
    in
    ( c.Churn.churn_events,
      c.Churn.counters.C.instructions,
      c.Churn.counters.C.abtb_clears,
      c.Churn.counters.C.tramp_skips,
      c.Churn.stable_hits )
  in
  checkb "bit-identical reruns" true (run () = run ())

(* ---------------- churn differential oracle ---------------- *)

let test_churn_oracle_clean_without_faults () =
  List.iter
    (fun link_mode ->
      let r = CO.run ~link_mode ~rate:200 ~ops:400 ~seed:9 scen in
      checkb "churned" true (r.CO.churn_events > 0);
      checki "no mis-skips" 0 r.CO.mis_skips;
      checki "nothing unclassified" 0 r.CO.unclassified;
      checkb "skips happened" true (r.CO.skips > 0))
    [ Mode.Lazy_binding; Mode.Eager_binding; Mode.Stable_linking ]

let test_churn_oracle_classifies_unload_faults () =
  let plan =
    match
      Dlink_fault.Plan.of_string "seed=1;60:unload_inflight;140:stale_unload*1"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let r =
    CO.run ~plan ~link_mode:Mode.Lazy_binding ~rate:250 ~ops:400 ~seed:9 scen
  in
  checkb "faults armed and injected" true (r.CO.faults_injected > 0);
  (* Whatever the stale entries cause must be classified: a divergence
     the taxonomy cannot attribute would show up here. *)
  checki "nothing unclassified" 0 r.CO.unclassified

(* ---------------- property tests ---------------- *)

let qcheck_tests =
  [
    (* Precedence is an invariant of the definitions, not of the order
       they arrived in: preload > default > non-default under every
       interleaving. *)
    QCheck.Test.make ~name:"versioning precedence is order-independent"
      ~count:100
      QCheck.(pair bool (int_range 0 5))
      (fun (have_preload, rot) ->
        let m = Linkmap.create () in
        let defs =
          [
            (fun id -> Linkmap.define m ~symbol:"f@v1" ~addr:1000 ~image_id:id ());
            (fun id -> Linkmap.define m ~symbol:"f@@v2" ~addr:2000 ~image_id:id ());
          ]
          @
          if have_preload then
            [
              (fun id ->
                Linkmap.define m ~preload:true ~symbol:"f" ~addr:3000
                  ~image_id:id ());
            ]
          else []
        in
        let n = List.length defs in
        let rot = rot mod n in
        let defs = List.filteri (fun i _ -> i >= rot) defs
                   @ List.filteri (fun i _ -> i < rot) defs in
        List.iteri (fun i f -> f i) defs;
        Linkmap.lookup_addr m "f" = Some (if have_preload then 3000 else 2000)
        && Linkmap.lookup_addr m "f@v1"
           = Some (if have_preload then 3000 else 1000)
        && Linkmap.lookup_addr m "f@v2"
           = Some (if have_preload then 3000 else 2000));
    (* open -> call -> close cycles under stable linking are idempotent:
       the base is reused, the snapshot replays, and no cycle after the
       first runs the resolver. *)
    QCheck.Test.make ~name:"stable open/close/open cycles are idempotent"
      ~count:8
      QCheck.(pair (int_range 0 5) (int_range 1 3))
      (fun (pi, cycles) ->
        let m = Churn.make_machine ~link_mode:Mode.Stable_linking scen in
        let d = m.Churn.dynload in
        let h0 = Dynload.dlopen d scen.Churn.plugins.(pi) in
        let base0 = Dynload.base_of d h0 in
        call_entry m pi;
        Dynload.dlclose d h0;
        let r0 = resolver_runs m in
        let ok = ref true in
        for _ = 1 to cycles do
          let h = Dynload.dlopen d scen.Churn.plugins.(pi) in
          if Dynload.base_of d h <> base0 then ok := false;
          call_entry m pi;
          Dynload.dlclose d h
        done;
        !ok
        && resolver_runs m = r0
        && (Dynload.stats d).Dynload.stable_misses = 0);
  ]

let () =
  Alcotest.run "dlink_dynload"
    [
      ( "dlopen_dlclose",
        [
          Alcotest.test_case "stable reopen reuses base, skips resolver" `Quick
            test_reopen_reuses_base;
          Alcotest.test_case "lazy reopen re-resolves" `Quick
            test_lazy_reopen_pays_resolver;
          Alcotest.test_case "refcount" `Quick test_refcount;
          Alcotest.test_case "dlsym visibility" `Quick test_dlsym_tracks_open_set;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "dlclose rebinds other modules" `Quick
            test_dlclose_rebinds_other_modules;
          Alcotest.test_case "deferred invalidation" `Quick
            test_deferred_invalidation_flushes_fifo;
          Alcotest.test_case "deferred invalidations flush in close order"
            `Quick test_deferred_invalidations_flush_in_close_order;
        ] );
      ( "grace_period",
        [
          Alcotest.test_case "ABA reuse discards delayed invalidation" `Quick
            test_aba_reuse_discards_delayed_invalidation;
          Alcotest.test_case "unmap grace period and force" `Quick
            test_unmap_grace_period_and_force;
        ] );
      ( "churn_driver",
        [
          Alcotest.test_case "stable beats lazy on resolver runs" `Quick
            test_stable_beats_lazy_resolver_runs;
          Alcotest.test_case "run_cell deterministic" `Quick
            test_run_cell_deterministic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean plan, every mode" `Quick
            test_churn_oracle_clean_without_faults;
          Alcotest.test_case "unload faults classified" `Quick
            test_churn_oracle_classifies_unload_faults;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
