(* Tests for Dlink_fault: fault-plan serialization, the skip unit's
   quarantine fallback, the differential oracle, and the fuzz driver.

   The invariants:
   - a fault plan's textual form is a complete reproducer: to_string and
     of_string are inverses and the whole pipeline is a pure function of
     (workload, plan), so equal inputs give bit-identical reports;
   - with no faults injected, the oracle observes zero divergences on
     every stock workload;
   - only [Got_rewrite] — the one fault that bypasses the retire
     stream — can produce a mis-skip, and a detected mis-skip always
     quarantines the offending ABTB set and recovers by cooldown;
   - a failing trial shrinks to a minimal single-event reproducer. *)

module C = Dlink_uarch.Counters
module Abtb = Dlink_uarch.Abtb
module Addr = Dlink_isa.Addr
module Skip = Dlink_pipeline.Skip
module P = Dlink_fault.Plan
module O = Dlink_fault.Oracle
module F = Dlink_fault.Fuzz
module Reg = Dlink_workloads.Registry

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let wl name = (Option.get (Reg.find name)) ?seed:None ()
let synth seed = Dlink_workloads.Synth.workload ~seed ()

(* ---------------- plans ---------------- *)

let test_plan_round_trip () =
  for seed = 1 to 5 do
    let p = P.generate ~coherence:true ~seed ~budget:300 ~faults:10 () in
    match P.of_string (P.to_string p) with
    | Ok p' -> checkb "round trip" true (p = p')
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done;
  checkb "empty plan round trips" true
    (P.of_string (P.to_string (P.empty 7)) = Ok (P.empty 7))

let test_plan_parse_errors () =
  List.iter
    (fun s ->
      checkb (Printf.sprintf "%S rejected" s) true
        (Result.is_error (P.of_string s)))
    [
      "";
      "nonsense";
      "seed=x";
      "seed=1;zz:bloom_flip";
      "seed=1;5:bogus";
      "seed=1;-2:got_rewrite";
      "seed=1;3:suppress_clear*0";
      "seed=1;3:bloom_flip*2";
      "seed=1;3:reorder_msgs*0";
      "seed=1;3:reorder_msgs*-1";
    ]

let test_plan_coherence_actions () =
  (* The bus fault actions parse, round-trip, and carry their counts. *)
  let p =
    Result.get_ok
      (P.of_string "seed=4;10:drop_msgs*2;20:delay_msgs*5;30:reorder_msgs*3")
  in
  checkb "actions decoded" true
    (List.map (fun e -> e.P.action) p.P.events
    = [ P.Drop_msgs 2; P.Delay_msgs 5; P.Reorder_msgs 3 ]);
  checkb "round trips" true (P.of_string (P.to_string p) = Ok p)

let test_plan_accessors () =
  let p =
    {
      P.seed = 9;
      events =
        [
          { P.at = 4; action = P.Bloom_flip };
          { P.at = 2; action = P.Spurious_clear };
          { P.at = 4; action = P.Suppress_clear 3 };
        ];
    }
  in
  (* Construction does not sort, but generate/of_string do — go through
     the parser to get the canonical form. *)
  let p = Result.get_ok (P.of_string (P.to_string p)) in
  checkb "sorted by request index" true
    (List.map (fun e -> e.P.at) p.P.events = [ 2; 4; 4 ]);
  checki "two actions at request 4" 2 (List.length (P.actions_at p 4));
  checki "none at request 3" 0 (List.length (P.actions_at p 3));
  checkb "no rewrite scheduled" false (P.has_rewrite p);
  checkb "rewrite detected" true
    (P.has_rewrite
       { P.seed = 0; events = [ { P.at = 0; action = P.Got_rewrite } ] })

let test_plan_churn_actions () =
  (* Churn actions only enter generated plans when asked for, round-trip
     through the textual form, and are flagged for the churn oracle. *)
  let has_unload (p : P.t) =
    List.exists
      (fun e ->
        match e.P.action with
        | P.Stale_unload _ | P.Unload_inflight -> true
        | _ -> false)
      p.P.events
  in
  let some_churn = ref false in
  for seed = 1 to 8 do
    let plain = P.generate ~seed ~budget:300 ~faults:10 () in
    checkb "plain plans never carry unload actions" false (has_unload plain);
    let churny = P.generate ~churn:true ~seed ~budget:300 ~faults:10 () in
    if has_unload churny then some_churn := true;
    checkb "hazard flag agrees" (has_unload churny)
      (P.has_unload_hazard churny);
    match P.of_string (P.to_string churny) with
    | Ok p' -> checkb "churn plan round trips" true (churny = p')
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done;
  checkb "churn actions drawn somewhere in 8 seeds" true !some_churn

(* ---------------- skip unit: validation and quarantine ---------------- *)

let make_skip ?(window = 2) () =
  let counters = C.create () in
  let btb = Hashtbl.create 8 in
  let config = { Skip.default_config with Skip.quarantine_window = window } in
  let skip =
    Skip.create ~config ~counters
      ~btb_update:(fun pc tgt -> Hashtbl.replace btb pc tgt)
      ~btb_predict:(fun pc ->
        match Hashtbl.find_opt btb pc with Some t -> t | None -> Addr.none)
      ~on_stale_prediction:(fun () -> ())
      ~read_got:(fun _ -> 0)
      ()
  in
  (skip, counters, btb)

let test_config_validation () =
  let expect_invalid name config =
    match
      Skip.create ~config ~counters:(C.create ())
        ~btb_update:(fun _ _ -> ())
        ~btb_predict:(fun _ -> Addr.none)
        ~on_stale_prediction:(fun () -> ())
        ~read_got:(fun _ -> 0)
        ()
    with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  let d = Skip.default_config in
  expect_invalid "zero entries" { d with Skip.abtb_entries = 0 };
  expect_invalid "zero ways" { d with Skip.abtb_ways = Some 0 };
  expect_invalid "bloom bits not a power of two" { d with Skip.bloom_bits = 3 };
  expect_invalid "zero bloom bits" { d with Skip.bloom_bits = 0 };
  expect_invalid "zero hashes" { d with Skip.bloom_hashes = 0 };
  expect_invalid "nine hashes" { d with Skip.bloom_hashes = 9 };
  expect_invalid "negative window" { d with Skip.quarantine_window = -1 }

let test_quarantine_fallback_and_release () =
  let skip, counters, btb = make_skip ~window:2 () in
  let site = 0x100 and tramp = 0x1000 and func = 0x4000 in
  Hashtbl.replace btb site func;
  Abtb.insert (Skip.abtb skip) ~asid:0 tramp { Abtb.func; got_slot = 0x9000 };
  checki "clean skip" func (Skip.on_fetch_call skip ~pc:site ~arch_target:tramp);
  Skip.report_mis_skip skip ~tramp;
  checki "mis-skip counted" 1 counters.C.mis_skips;
  checki "quarantine entry counted" 1 counters.C.quarantine_entries;
  checki "one set serving a sentence" 1 (Skip.quarantined_sets skip);
  checkb "offending set evicted" true
    (Abtb.lookup (Skip.abtb skip) tramp = None);
  (* Re-inserts are allowed during the sentence so service can resume
     with warm entries on release — but skips stay suppressed. *)
  Abtb.insert (Skip.abtb skip) ~asid:0 tramp { Abtb.func; got_slot = 0x9000 };
  checki "1st opportunity falls back to trampoline" tramp
    (Skip.on_fetch_call skip ~pc:site ~arch_target:tramp);
  checki "2nd opportunity falls back to trampoline" tramp
    (Skip.on_fetch_call skip ~pc:site ~arch_target:tramp);
  checki "released after the window" func
    (Skip.on_fetch_call skip ~pc:site ~arch_target:tramp);
  checki "sentence served" 0 (Skip.quarantined_sets skip);
  (* A second report for the same set must not double-count the entry. *)
  Skip.report_mis_skip skip ~tramp;
  Skip.report_mis_skip skip ~tramp;
  checki "entries counted once per sentence" 2 counters.C.quarantine_entries;
  checki "every mis-skip counted" 3 counters.C.mis_skips

let test_quarantine_disabled () =
  let skip, counters, btb = make_skip ~window:0 () in
  let site = 0x100 and tramp = 0x1000 and func = 0x4000 in
  Hashtbl.replace btb site func;
  Abtb.insert (Skip.abtb skip) ~asid:0 tramp { Abtb.func; got_slot = 0x9000 };
  Skip.report_mis_skip skip ~tramp;
  checki "mis-skip still counted" 1 counters.C.mis_skips;
  checki "no quarantine entry" 0 counters.C.quarantine_entries;
  checki "no set quarantined" 0 (Skip.quarantined_sets skip);
  Abtb.insert (Skip.abtb skip) ~asid:0 tramp { Abtb.func; got_slot = 0x9000 };
  checki "skips resume immediately" func
    (Skip.on_fetch_call skip ~pc:site ~arch_target:tramp)

(* ---------------- differential oracle ---------------- *)

let test_oracle_clean_on_stock_workloads () =
  List.iter
    (fun name ->
      let r = O.run ~requests:150 (wl name) in
      checki (name ^ ": no mis-skips") 0 r.O.mis_skips;
      checki (name ^ ": no unclassified divergences") 0 r.O.unclassified;
      checki (name ^ ": no faults injected") 0 r.O.faults_injected;
      checkb (name ^ ": the DUT skipped") true (r.O.skips > 0))
    [ "apache"; "memcached"; "mysql"; "firefox"; "synth" ]

let test_oracle_deterministic () =
  let go () =
    F.run ~workload:(synth 11) ~seed:11 ~budget:120 ~faults:5 ()
  in
  let a = go () and b = go () in
  checkb "equal plans" true (a.F.plan = b.F.plan);
  checkb "bit-identical reports" true (a.F.report = b.F.report);
  checkb "same verdict" true (a.F.failures = b.F.failures)

let test_rewrite_detected_and_recovered () =
  (* The CI reproducer: seed 42 draws a Got_rewrite whose stale binding
     the DUT skips to before the next natural clear. *)
  let t = F.run ~workload:(synth 42) ~seed:42 ~budget:200 ~faults:8 () in
  checkb "all properties hold" true (t.F.failures = []);
  let r = t.F.report in
  checkb "plan contains the rewrite" true (P.has_rewrite t.F.plan);
  checkb "mis-skip detected" true (r.O.mis_skips >= 1);
  checkb "offender quarantined" true (r.O.quarantine_entries >= 1);
  checki "no unclassified divergences" 0 r.O.unclassified;
  checki "cooldown is mis-skip-free" 0 r.O.cooldown_mis_skips;
  checkb "service resumed after quarantine" true (r.O.cooldown_skips > 0);
  (match r.O.divergences with
  | d :: _ -> checkb "divergence classified as mis-skip" true d.O.mis_skip
  | [] -> Alcotest.fail "expected a recorded divergence");
  checkb "counters agree with the report" true
    (r.O.counters.C.mis_skips = r.O.mis_skips)

let test_benign_faults_stay_benign () =
  (* Everything except Got_rewrite flows through the retire stream, so
     none of it can make the DUT retire a stale target. *)
  let events =
    [
      { P.at = 10; action = P.Bloom_flip };
      { P.at = 25; action = P.Suppress_clear 2 };
      { P.at = 40; action = P.Spurious_clear };
      { P.at = 55; action = P.Asid_reuse };
      { P.at = 70; action = P.Asid_reuse };
    ]
  in
  let plan = { P.seed = 3; events } in
  let r = O.run ~plan ~requests:120 ~cooldown:40 (synth 3) in
  checki "faults were injected" (List.length events) r.O.faults_injected;
  checki "no mis-skips" 0 r.O.mis_skips;
  checki "no unclassified divergences" 0 r.O.unclassified;
  checki "no quarantine" 0 r.O.quarantine_entries

(* ---------------- fuzz driver ---------------- *)

let test_fuzz_seeds_pass () =
  for seed = 1 to 4 do
    let t = F.run ~workload:(synth seed) ~seed ~budget:120 ~faults:5 () in
    if t.F.failures <> [] then
      Alcotest.failf "seed %d: %s (plan %s)" seed
        (String.concat "; " t.F.failures)
        (P.to_string t.F.plan)
  done

let test_shrink_to_minimal_plan () =
  (* Disabling quarantine breaks the "every mis-skip quarantines"
     property; the shrinker must isolate the one Got_rewrite event. *)
  let skip_cfg = { Skip.default_config with Skip.quarantine_window = 0 } in
  let workload () = synth 42 in
  let t = F.run ~skip_cfg ~workload:(workload ()) ~seed:42 ~budget:200 ~faults:8 () in
  checkb "window 0 fails a property" true (t.F.failures <> []);
  let s = F.shrink ~skip_cfg ~workload:(workload ()) ~budget:200 t in
  checkb "shrunk plan still fails" true (s.F.failures <> []);
  checki "minimal plan is a single event" 1 (List.length s.F.plan.P.events);
  checkb "the culprit is the rewrite" true (P.has_rewrite s.F.plan);
  (* The printed form replays to the same verdict. *)
  let replayed = Result.get_ok (P.of_string (P.to_string s.F.plan)) in
  let r = F.trial ~skip_cfg ~workload:(workload ()) ~budget:200 replayed in
  checkb "reproducer replays" true (r.F.failures = s.F.failures)

let test_saved_reproducer_replays () =
  (* Regression pin for the unified pipeline kernel: this is the ddmin
     output of [test_shrink_to_minimal_plan], saved as the textual
     reproducer a bug report would carry.  Replaying it must keep
     producing the identical mis-skip/lost-skip classification, because
     the differential run drives the same kernel generate mode does — if
     the classification drifts, the kernel and the oracle have diverged. *)
  let saved = "seed=42;101:got_rewrite" in
  let plan = Result.get_ok (P.of_string saved) in
  let skip_cfg = { Skip.default_config with Skip.quarantine_window = 0 } in
  let t = F.trial ~skip_cfg ~workload:(synth 42) ~budget:200 plan in
  checkb "still fails the quarantine property" true
    (List.mem "mis-skip detected but no ABTB set was quarantined" t.F.failures);
  checki "exactly one mis-skip" 1 t.F.report.O.mis_skips;
  checki "lost-skip classification is stable" 248 t.F.report.O.lost_skips;
  checki "no unclassified divergences" 0 t.F.report.O.unclassified;
  checki "the one fault fired" 1 t.F.report.O.faults_injected;
  checki "cooldown is mis-skip-free" 0 t.F.report.O.cooldown_mis_skips

(* ---------------- pinned soak reproducer ---------------- *)

module S = Dlink_fault.Soak
module I = Dlink_fault.Invariant

let test_saved_soak_reproducer_replays () =
  (* Regression pin for the soak harness: this is the ddmin output of
     `dlinksim soak --check` on a five-event chaos plan — the shrinker
     isolated the one Got_rewrite.  Replaying it must keep producing the
     identical catch: ten stale skips, all on the same core, every other
     soak property intact.  If the classification drifts, the soak
     topology and the invariant checker have diverged. *)
  let saved = "seed=5;900:got_rewrite" in
  let plan = Result.get_ok (P.of_string saved) in
  let params = { S.default_params with S.rate = 50; ops = 2000; seed = 42 } in
  let scen = Dlink_workloads.Churn.scenario () in
  let r = S.run ~plan params scen in
  checkb "the violation is still caught" true (S.failed ~plan r);
  checki "exactly ten stale skips" 10 r.S.violations;
  checki "all classified stale-skip" 10 r.S.stale_skips;
  checki "no unmapped fetches" 0 r.S.fetch_unmapped;
  checki "no stale messages applied" 0 r.S.stale_messages;
  checki "no crashes" 0 r.S.crashes;
  checki "the one fault fired" 1 r.S.faults_injected;
  checkb "first violation op recorded" true (r.S.first_violation_op <> None);
  (match r.S.recorded with
  | I.Stale_skip { core; _ } :: _ -> checki "caught on core 2" 2 core
  | _ -> Alcotest.fail "expected a recorded stale-skip violation");
  checkb "properties beyond the seeded violation hold" true
    (S.check ~plan r = [])

let () =
  Alcotest.run "dlink_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "round trip" `Quick test_plan_round_trip;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "accessors" `Quick test_plan_accessors;
          Alcotest.test_case "churn actions" `Quick test_plan_churn_actions;
          Alcotest.test_case "coherence actions" `Quick
            test_plan_coherence_actions;
        ] );
      ( "skip hardening",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "quarantine fallback and release" `Quick
            test_quarantine_fallback_and_release;
          Alcotest.test_case "quarantine disabled" `Quick
            test_quarantine_disabled;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean on stock workloads" `Slow
            test_oracle_clean_on_stock_workloads;
          Alcotest.test_case "deterministic" `Quick test_oracle_deterministic;
          Alcotest.test_case "rewrite detected and recovered" `Quick
            test_rewrite_detected_and_recovered;
          Alcotest.test_case "benign faults stay benign" `Quick
            test_benign_faults_stay_benign;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "seeds pass" `Quick test_fuzz_seeds_pass;
          Alcotest.test_case "shrinks to a minimal plan" `Quick
            test_shrink_to_minimal_plan;
          Alcotest.test_case "saved reproducer replays" `Quick
            test_saved_reproducer_replays;
        ] );
      ( "soak reproducer",
        [
          Alcotest.test_case "saved soak reproducer replays" `Quick
            test_saved_soak_reproducer_replays;
        ] );
    ]
