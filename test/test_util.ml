(* Tests for Dlink_util: RNG, samplers, site hashing, rendering. *)

module Rng = Dlink_util.Rng
module Sampler = Dlink_util.Sampler
module Site_hash = Dlink_util.Site_hash
module Table = Dlink_util.Table
module Plot = Dlink_util.Ascii_plot

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- Rng ---------------- *)

let test_rng_determinism () =
  let a = Rng.create 1234 and b = Rng.create 1234 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  checkb "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    checkb "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 7 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng 5 9 in
    checkb "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1_000 do
    let v = Rng.float rng 2.5 in
    checkb "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bool_frequency () =
  let rng = Rng.create 11 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bool rng 0.25 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  checkb "p=0.25 within 2%" true (abs_float (freq -. 0.25) < 0.02)

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  checkb "split streams differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_exponential_mean () =
  let rng = Rng.create 17 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~mean:4.0
  done;
  let mean = !acc /. float_of_int n in
  checkb "exponential mean ~4" true (abs_float (mean -. 4.0) < 0.2)

let test_rng_normal_moments () =
  let rng = Rng.create 23 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.normal rng ~mu:10.0 ~sigma:2.0
  done;
  let mean = !acc /. float_of_int n in
  checkb "normal mean ~10" true (abs_float (mean -. 10.0) < 0.1)

let test_shuffle_is_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_pick_member () =
  let rng = Rng.create 13 in
  let a = [| 2; 4; 6 |] in
  for _ = 1 to 100 do
    checkb "member" true (Array.mem (Rng.pick rng a) a)
  done

(* ---------------- Zipf ---------------- *)

let test_zipf_pmf_sums_to_one () =
  let z = Sampler.Zipf.create ~n:50 ~s:1.3 in
  let total = ref 0.0 in
  for k = 0 to 49 do
    total := !total +. Sampler.Zipf.pmf z k
  done;
  checkb "pmf sums to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_zipf_monotone_pmf () =
  let z = Sampler.Zipf.create ~n:20 ~s:1.0 in
  for k = 1 to 19 do
    checkb "pmf decreasing" true (Sampler.Zipf.pmf z k <= Sampler.Zipf.pmf z (k - 1))
  done

let test_zipf_uniform_when_s_zero () =
  let z = Sampler.Zipf.create ~n:10 ~s:0.0 in
  for k = 0 to 9 do
    checkb "uniform pmf" true (abs_float (Sampler.Zipf.pmf z k -. 0.1) < 1e-9)
  done

let test_zipf_sample_bounds () =
  let z = Sampler.Zipf.create ~n:33 ~s:1.5 in
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let k = Sampler.Zipf.sample z rng in
    checkb "rank in range" true (k >= 0 && k < 33)
  done

let test_zipf_sample_frequency_matches_pmf () =
  let z = Sampler.Zipf.create ~n:10 ~s:1.2 in
  let rng = Rng.create 99 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Sampler.Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 9 do
    let freq = float_of_int counts.(k) /. float_of_int n in
    checkb "frequency ~ pmf" true (abs_float (freq -. Sampler.Zipf.pmf z k) < 0.01)
  done

let test_zipf_rejects_bad_args () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Sampler.Zipf.create ~n:0 ~s:1.0))

(* ---------------- Categorical ---------------- *)

let test_categorical_respects_weights () =
  let c = Sampler.Categorical.create [ ("a", 3.0); ("b", 1.0) ] in
  let rng = Rng.create 5 in
  let a = ref 0 in
  let n = 40_000 in
  for _ = 1 to n do
    if Sampler.Categorical.sample c rng = "a" then incr a
  done;
  let freq = float_of_int !a /. float_of_int n in
  checkb "weight 3:1" true (abs_float (freq -. 0.75) < 0.02)

let test_categorical_zero_weight_never_sampled () =
  let c = Sampler.Categorical.create [ ("x", 0.0); ("y", 1.0) ] in
  let rng = Rng.create 5 in
  for _ = 1 to 1_000 do
    check Alcotest.string "only y" "y" (Sampler.Categorical.sample c rng)
  done

let test_categorical_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Categorical.create: empty")
    (fun () -> ignore (Sampler.Categorical.create []))

(* ---------------- Site_hash ---------------- *)

let test_site_hash_nonnegative () =
  for i = -50 to 50 do
    for j = -50 to 50 do
      checkb "non-negative" true (Site_hash.mix2 i j >= 0)
    done
  done

let test_site_hash_deterministic () =
  checki "stable" (Site_hash.mix2 42 7) (Site_hash.mix2 42 7)

let test_site_hash_bernoulli_frequency () =
  let hits = ref 0 in
  let n = 100_000 in
  for count = 0 to n - 1 do
    if Site_hash.bernoulli ~site:3 ~count ~p:0.7 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  checkb "p=0.7" true (abs_float (freq -. 0.7) < 0.01)

let test_site_hash_index_bounds () =
  for count = 0 to 10_000 do
    let i = Site_hash.index ~site:9 ~count 37 in
    checkb "in range" true (i >= 0 && i < 37)
  done

(* ---------------- Table / Plot ---------------- *)

let test_table_renders_aligned () =
  let t = Table.create ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "xxx"; "y" ];
  let s = Table.render t in
  checkb "has separator" true (String.length s > 0 && String.contains s '-')

let test_table_pads_short_rows () =
  let t = Table.create ~headers:[ "a"; "b"; "c" ] in
  Table.add_row t [ "1" ];
  ignore (Table.render t)

let test_table_rejects_long_rows () =
  let t = Table.create ~headers:[ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_fmt_pct () =
  check Alcotest.string "percent" "+4.00%" (Table.fmt_pct 0.04)

let test_plot_empty_series () =
  let s = Plot.line_chart ~title:"t" [ { Plot.label = "x"; points = [] } ] in
  checkb "renders" true (String.length s > 0)

let test_plot_log_scale () =
  let s =
    Plot.line_chart ~log_x:true ~log_y:true ~title:"t"
      [ { Plot.label = "x"; points = [ (1.0, 10.0); (100.0, 1000.0) ] } ]
  in
  checkb "renders" true (String.length s > 0)

(* ---------------- property tests ---------------- *)

(* ---------------- Json ---------------- *)

module Json = Dlink_util.Json

let checks = Alcotest.(check string)

let test_json_escapes_specials () =
  checks "quote+backslash" "\"a\\\"b\\\\c\""
    (Json.to_string (Json.String "a\"b\\c"));
  checks "whitespace escapes" "\"x\\ny\\rz\\tw\""
    (Json.to_string (Json.String "x\ny\rz\tw"));
  checks "control chars" "\"\\u0001\\u001f\""
    (Json.to_string (Json.String "\x01\x1f"))

let test_json_string_roundtrip () =
  let cases =
    [
      "plain";
      "he said \"hi\"";
      "back\\slash";
      "line1\nline2\r\ttabbed";
      "\x01\x02\x1f control soup";
      "mixed \"q\" \\ \n \x03 end";
      "";
    ]
  in
  List.iter
    (fun s ->
      match Json.of_string (Json.to_string (Json.String s)) with
      | Ok (Json.String s') -> checks "string round-trip" s s'
      | Ok _ -> Alcotest.fail "parsed to non-string"
      | Error e -> Alcotest.fail e)
    cases

let test_json_value_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
        ("count", Json.Int (-42));
        ("big", Json.Int max_int);
        ("ratio", Json.Float 1.5);
        ("whole", Json.Float 2.0);
        ("name", Json.String "tricky \"name\"\\\n");
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ( "nested",
          Json.List [ Json.Obj [ ("k", Json.List [ Json.Int 1; Json.Null ]) ] ] );
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> checkb "value round-trip" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_parse_errors () =
  let bad = [ "{"; "[1,"; "tru"; "\"open"; "1 2"; "{\"k\" 1}"; "\"\\q\"" ] in
  List.iter
    (fun s -> checkb s true (Result.is_error (Json.of_string s)))
    bad;
  (* high \u escapes are out of the emitter's range and rejected *)
  checkb "\\u1234 rejected" true
    (Result.is_error (Json.of_string "\"\\u1234\""))

let test_json_nonfinite_floats () =
  (* Non-finite floats have no JSON spelling; the emitter writes [null]
     so a diverged latency or rate never produces an unparseable dump. *)
  checks "nan" "null" (Json.to_string (Json.Float Float.nan));
  checks "inf" "null" (Json.to_string (Json.Float Float.infinity));
  checks "-inf" "null" (Json.to_string (Json.Float Float.neg_infinity));
  let v = Json.Obj [ ("p99", Json.Float Float.nan); ("n", Json.Int 0) ] in
  checkb "round-trips as null" true
    (Json.of_string (Json.to_string v)
    = Ok (Json.Obj [ ("p99", Json.Null); ("n", Json.Int 0) ]))

let test_json_parses_plain () =
  checkb "ws tolerant" true
    (Json.of_string "  { \"a\" : [ 1 , 2.5 , null ] }  "
    = Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]) ]))

let qcheck_tests =
  [
    QCheck.Test.make ~name:"rng int always within bound" ~count:1000
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    QCheck.Test.make ~name:"zipf cdf sample matches rank range" ~count:500
      QCheck.(pair (int_range 1 200) (int_range 0 30))
      (fun (n, seed) ->
        let z = Sampler.Zipf.create ~n ~s:1.1 in
        let rng = Rng.create seed in
        let k = Sampler.Zipf.sample z rng in
        k >= 0 && k < n);
    QCheck.Test.make ~name:"site hash index within bound" ~count:1000
      QCheck.(triple small_int small_int (int_range 1 500))
      (fun (site, count, n) ->
        let i = Site_hash.index ~site ~count n in
        i >= 0 && i < n);
    QCheck.Test.make ~name:"bernoulli deterministic" ~count:500
      QCheck.(pair small_int small_int)
      (fun (site, count) ->
        Site_hash.bernoulli ~site ~count ~p:0.5
        = Site_hash.bernoulli ~site ~count ~p:0.5);
  ]

let () =
  Alcotest.run "dlink_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects non-positive" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bool frequency" `Quick test_rng_bool_frequency;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "pick member" `Quick test_pick_member;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "pmf monotone" `Quick test_zipf_monotone_pmf;
          Alcotest.test_case "uniform when s=0" `Quick test_zipf_uniform_when_s_zero;
          Alcotest.test_case "sample bounds" `Quick test_zipf_sample_bounds;
          Alcotest.test_case "sample frequency" `Slow test_zipf_sample_frequency_matches_pmf;
          Alcotest.test_case "rejects bad args" `Quick test_zipf_rejects_bad_args;
        ] );
      ( "categorical",
        [
          Alcotest.test_case "respects weights" `Quick test_categorical_respects_weights;
          Alcotest.test_case "zero weight" `Quick test_categorical_zero_weight_never_sampled;
          Alcotest.test_case "rejects empty" `Quick test_categorical_rejects_empty;
        ] );
      ( "site_hash",
        [
          Alcotest.test_case "non-negative" `Quick test_site_hash_nonnegative;
          Alcotest.test_case "deterministic" `Quick test_site_hash_deterministic;
          Alcotest.test_case "bernoulli frequency" `Quick test_site_hash_bernoulli_frequency;
          Alcotest.test_case "index bounds" `Quick test_site_hash_index_bounds;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "table aligned" `Quick test_table_renders_aligned;
          Alcotest.test_case "table pads" `Quick test_table_pads_short_rows;
          Alcotest.test_case "table rejects long" `Quick test_table_rejects_long_rows;
          Alcotest.test_case "fmt_pct" `Quick test_fmt_pct;
          Alcotest.test_case "plot empty" `Quick test_plot_empty_series;
          Alcotest.test_case "plot log" `Quick test_plot_log_scale;
        ] );
      ( "json",
        [
          Alcotest.test_case "escapes specials" `Quick test_json_escapes_specials;
          Alcotest.test_case "string round-trip" `Quick test_json_string_roundtrip;
          Alcotest.test_case "value round-trip" `Quick test_json_value_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "plain json" `Quick test_json_parses_plain;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"random string round-trip" ~count:500
               QCheck.string (fun s ->
                 Json.of_string (Json.to_string (Json.String s))
                 = Ok (Json.String s)));
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
