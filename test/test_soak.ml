(* Tests for the multi-core soak/chaos harness and the multi-core
   differential oracle.

   The invariants:
   - a soak is a pure function of its arguments: equal params and plan
     give bit-identical reports;
   - a [cores = 1] soak retires counters bit-identical to the equivalent
     churn-grid cell, so multi-core soaks stay comparable to the perf
     grid (crosscheck);
   - a clean soak — no fault plan — finishes with zero violations, zero
     crashes, a fully conserved bus, and nothing left in flight;
   - every seeded fault class ends either recovered (retry, epoch-guard
     discard, timeout-degrade) or caught as a classified violation,
     never as a silent wrong-target skip;
   - a failing plan ddmin-shrinks to a minimal sub-plan that still
     fails. *)

module C = Dlink_uarch.Counters
module P = Dlink_fault.Plan
module S = Dlink_fault.Soak
module I = Dlink_fault.Invariant
module CO = Dlink_fault.Churn_oracle
module Policy = Dlink_pipeline.Policy
module Mode = Dlink_linker.Mode

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let scen = Dlink_workloads.Churn.scenario ()

let plan_exn s =
  match P.of_string s with Ok p -> p | Error e -> Alcotest.fail e

let params ?(cores = 4) ?(rate = 100) ?(ops = 1500) ?(seed = 7) () =
  { S.default_params with S.cores; rate; ops; seed }

(* ---------------- determinism and bit-identity ---------------- *)

let test_soak_deterministic () =
  let go () = S.run (params ()) scen in
  checkb "bit-identical reports" true (go () = go ())

let test_crosscheck_matches_churn_cell () =
  (* The request loop mirrors Churn.run_cell draw for draw; the
     crosscheck runs both at cores=1 and compares full counter sets. *)
  match S.crosscheck (params ~seed:11 ()) scen with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ---------------- clean-run safety ---------------- *)

let test_clean_soak_no_violations () =
  let r = S.run (params ()) scen in
  checkb "the soak exercised churn" true (r.S.churn_events > 0);
  checkb "the thread migrated" true (r.S.migrations > 0);
  checkb "invariants were checked" true (r.S.checks > 0);
  checki "no violations" 0 r.S.violations;
  checki "no crashes" 0 r.S.crashes;
  checkb "bus carried traffic" true (r.S.bus.S.published > 0);
  checki "everything acked" r.S.bus.S.published r.S.bus.S.acked;
  checki "nothing unresolved" 0 r.S.bus.S.unresolved;
  checki "nothing retiring after quiesce" 0 r.S.retiring;
  checki "four per-core counter sets" 4 (Array.length r.S.per_core);
  checkb "every core retired work" true
    (Array.for_all (fun c -> c.C.instructions > 0) r.S.per_core);
  checkb "clean-plan properties all hold" true (S.check r = [])

(* ---------------- seeded fault classes ---------------- *)

let test_dropped_invalidations_recovered_by_retry () =
  let plan = plan_exn "seed=3;200:drop_msgs*2" in
  (* quantum 1: the bus drains every op, so the retry reaches the parked
     message before any unmap fence can force it out as a timeout. *)
  let r = S.run ~plan { (params ()) with S.quantum = 1 } scen in
  checkb "drops were injected" true (r.S.bus.S.dropped > 0);
  checkb "the bus retried" true (r.S.bus.S.retries > 0);
  checki "every message got through" 0 r.S.bus.S.timeouts;
  checki "no violations" 0 r.S.violations;
  checkb "recovered, not failed" false (S.failed ~plan r);
  checkb "seeded-plan properties hold" true (S.check ~plan r = [])

let test_drop_burst_times_out_and_degrades () =
  (* A burst larger than the retry budget can absorb: laggard cores are
     timed out and degraded (whole-core flush + skip suppression), which
     keeps them correct — zero violations — at the cost of skips. *)
  let plan = plan_exn "seed=3;100:drop_msgs*400" in
  let r = S.run ~plan (params ()) scen in
  checkb "messages timed out" true (r.S.bus.S.timeouts > 0);
  checkb "timed-out cores degraded" true (r.S.counters.C.timeout_degrades > 0);
  checki "degradation kept execution correct" 0 r.S.violations;
  checki "no crashes" 0 r.S.crashes;
  checkb "conservation holds under the burst" true (S.check ~plan r = [])

let test_delay_reorder_recovered_in_order () =
  (* Delayed and reordered messages drain at quantum boundaries (or are
     timed out by a forced unmap fence); either way no stale state is
     trusted and no violation escapes. *)
  let plan = plan_exn "seed=3;150:delay_msgs*30;400:reorder_msgs*30" in
  let r = S.run ~plan (params ()) scen in
  checki "no violations" 0 r.S.violations;
  checkb "properties hold" true (S.check ~plan r = [])

let test_got_rewrite_caught_as_stale_skip () =
  (* The one fault that bypasses the retire stream (and hence the Bloom
     filter and the bus).  Low churn rate widens the stale window so the
     skip unit actually consumes the poisoned entry — and the checker
     must catch every such skip. *)
  let plan = plan_exn "seed=5;900:got_rewrite" in
  let r = S.run ~plan (params ~rate:50 ~ops:2000 ~seed:42 ()) scen in
  checkb "caught" true (S.failed ~plan r);
  checkb "classified as stale skips" true (r.S.stale_skips > 0);
  checki "every violation is the stale skip" r.S.violations r.S.stale_skips;
  checkb "first violation op recorded" true (r.S.first_violation_op <> None);
  (match r.S.recorded with
  | I.Stale_skip _ :: _ -> ()
  | _ -> Alcotest.fail "expected a recorded stale-skip violation");
  checkb "properties beyond the seeded violation hold" true
    (S.check ~plan r = [])

(* ---------------- shrinking ---------------- *)

let test_shrink_isolates_the_culprit () =
  let plan =
    plan_exn "seed=5;400:bloom_flip;500:spurious_clear;700:drop_msgs*2;900:got_rewrite"
  in
  let p = params ~rate:50 ~ops:2000 ~seed:42 () in
  let r = S.run ~plan p scen in
  checkb "full plan fails" true (S.failed ~plan r);
  let shrunk, sr = S.shrink p ~plan scen in
  checkb "shrunk plan still fails" true (S.failed ~plan:shrunk sr);
  checki "minimal plan is a single event" 1 (List.length shrunk.P.events);
  checkb "the culprit is the rewrite" true (P.has_rewrite shrunk);
  (* The printed form replays to the same report. *)
  let replayed = plan_exn (P.to_string shrunk) in
  checkb "reproducer replays bit-identically" true
    (S.run ~plan:replayed p scen = sr)

(* ---------------- multi-core differential oracle ---------------- *)

let run_multi ?plan ~rate ~ops ~seed () =
  CO.run_multi ?plan ~cores:4 ~quantum:64 ~policy:Policy.Asid_shared_guard
    ~link_mode:Mode.Lazy_binding ~rate ~ops ~seed scen

let test_run_multi_clean () =
  let r = run_multi ~rate:150 ~ops:800 ~seed:9 () in
  checkb "churned" true (r.CO.m_churn_events > 0);
  checkb "migrated" true (r.CO.m_migrations > 0);
  checki "no mis-skips" 0 r.CO.m_mis_skips;
  checki "nothing unclassified" 0 r.CO.m_unclassified;
  checki "no stale-unload divergences" 0 r.CO.m_stale_unload;
  checki "four per-core classifications" 4 (Array.length r.CO.m_per_core)

let test_run_multi_classifies_rewrite_per_core () =
  let plan = plan_exn "seed=5;900:got_rewrite" in
  let r = run_multi ~plan ~rate:50 ~ops:2000 ~seed:42 () in
  checkb "divergences observed" true (r.CO.m_mis_skips > 0);
  let per_core_sum =
    Array.fold_left (fun a c -> a + c.CO.c_mis_skips) 0 r.CO.m_per_core
  in
  checki "per-core mis-skips sum to the system total" r.CO.m_mis_skips
    per_core_sum

let () =
  Alcotest.run "dlink_soak"
    [
      ( "identity",
        [
          Alcotest.test_case "deterministic" `Quick test_soak_deterministic;
          Alcotest.test_case "cores=1 bit-identical to churn cell" `Quick
            test_crosscheck_matches_churn_cell;
        ] );
      ( "clean",
        [
          Alcotest.test_case "clean 4-core soak holds every invariant" `Quick
            test_clean_soak_no_violations;
        ] );
      ( "fault classes",
        [
          Alcotest.test_case "drop recovered by retry" `Quick
            test_dropped_invalidations_recovered_by_retry;
          Alcotest.test_case "drop burst times out and degrades" `Quick
            test_drop_burst_times_out_and_degrades;
          Alcotest.test_case "delay and reorder recovered" `Quick
            test_delay_reorder_recovered_in_order;
          Alcotest.test_case "got rewrite caught as stale skip" `Quick
            test_got_rewrite_caught_as_stale_skip;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "isolates the culprit event" `Slow
            test_shrink_isolates_the_culprit;
        ] );
      ( "multi-core oracle",
        [
          Alcotest.test_case "clean plan is divergence-free" `Quick
            test_run_multi_clean;
          Alcotest.test_case "rewrite classified per core" `Quick
            test_run_multi_classifies_rewrite_per_core;
        ] );
    ]
