(* Tests for Dlink_stats: summaries, histograms, CDFs, rates, and the
   log-bucket latency recorder (pinned against a naive sort-the-samples
   reference: exact below [small_cap], bucket-bounded beyond). *)

module Summary = Dlink_stats.Summary
module Histogram = Dlink_stats.Histogram
module Cdf = Dlink_stats.Cdf
module Rates = Dlink_stats.Rates
module Latency = Dlink_stats.Latency

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

(* ---------------- Summary ---------------- *)

let test_summary_mean () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "mean" 2.5 (Summary.mean s)

let test_summary_minmax () =
  let s = Summary.of_array [| 5.0; -1.0; 3.0 |] in
  checkf "min" (-1.0) (Summary.min s);
  checkf "max" 5.0 (Summary.max s)

let test_summary_stddev () =
  let s = Summary.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  checkf "stddev" 2.0 (Summary.stddev s)

let test_summary_percentile_endpoints () =
  let s = Summary.of_array [| 10.0; 20.0; 30.0 |] in
  checkf "p0" 10.0 (Summary.percentile s 0.0);
  checkf "p100" 30.0 (Summary.percentile s 100.0);
  checkf "p50" 20.0 (Summary.percentile s 50.0)

let test_summary_percentile_interpolates () =
  let s = Summary.of_array [| 0.0; 10.0 |] in
  checkf "p25" 2.5 (Summary.percentile s 25.0)

let test_summary_empty_raises () =
  let s = Summary.create () in
  Alcotest.check_raises "empty mean" (Invalid_argument "Summary.mean: empty accumulator")
    (fun () -> ignore (Summary.mean s))

let test_summary_percentile_range () =
  let s = Summary.of_array [| 1.0 |] in
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Summary.percentile: p out of range") (fun () ->
      ignore (Summary.percentile s 101.0))

let test_summary_incremental () =
  let s = Summary.create () in
  for i = 1 to 1000 do
    Summary.add s (float_of_int i)
  done;
  checki "count" 1000 (Summary.count s);
  checkf "mean" 500.5 (Summary.mean s)

let test_summary_cache_invalidation () =
  let s = Summary.create () in
  Summary.add s 5.0;
  checkf "p50 before" 5.0 (Summary.percentile s 50.0);
  Summary.add s 1.0;
  checkf "min after add" 1.0 (Summary.percentile s 0.0)

(* ---------------- Histogram ---------------- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add h 0.5;
  Histogram.add h 9.5;
  Histogram.add h 5.0;
  let bins = Histogram.bins h in
  let count_at i = let _, _, c = List.nth bins i in c in
  checki "bin0" 1 (count_at 0);
  checki "bin5" 1 (count_at 5);
  checki "bin9" 1 (count_at 9);
  checki "total" 3 (Histogram.total h)

let test_histogram_under_overflow () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h (-1.0);
  Histogram.add h 2.0;
  checki "under" 1 (Histogram.underflow h);
  checki "over" 1 (Histogram.overflow h);
  checki "total includes both" 2 (Histogram.total h)

let test_histogram_fractions_sum () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 1.0; 2.0; 3.0; 7.0; 8.0 ];
  let sum = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 (Histogram.fractions h) in
  checkf "fractions sum to 1" 1.0 sum

let test_histogram_peak () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 4.1; 4.2; 4.3; 8.0 ];
  checkf "peak center" 4.5 (Histogram.peak_center h)

let test_histogram_rejects_bad_args () =
  Alcotest.check_raises "hi<=lo" (Invalid_argument "Histogram.create: hi must exceed lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

let test_histogram_boundary_value () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add h 10.0;
  checki "hi is overflow" 1 (Histogram.overflow h)

(* ---------------- Cdf ---------------- *)

let test_cdf_eval () =
  let c = Cdf.of_samples [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "below" 0.0 (Cdf.eval c 0.5);
  checkf "middle" 0.5 (Cdf.eval c 2.0);
  checkf "above" 1.0 (Cdf.eval c 10.0)

let test_cdf_quantile () =
  let c = Cdf.of_samples [| 10.0; 20.0; 30.0; 40.0 |] in
  checkf "q0.5" 20.0 (Cdf.quantile c 0.5);
  checkf "q1" 40.0 (Cdf.quantile c 1.0);
  checkf "q0" 10.0 (Cdf.quantile c 0.0)

let test_cdf_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Cdf.of_samples: empty") (fun () ->
      ignore (Cdf.of_samples [||]))

let test_cdf_points_reach_one () =
  let c = Cdf.of_samples (Array.init 1000 float_of_int) in
  let points = Cdf.points ~max_points:50 c in
  let _, last = List.nth points (List.length points - 1) in
  checkf "last fraction 1" 1.0 last;
  checkb "downsampled" true (List.length points <= 60)

let test_cdf_unsorted_input () =
  let c = Cdf.of_samples [| 3.0; 1.0; 2.0 |] in
  checkf "min" 1.0 (Cdf.min_value c);
  checkf "max" 3.0 (Cdf.max_value c)

(* ---------------- Latency ---------------- *)

(* The naive reference the recorder is pinned against: sort the samples,
   take the ceil-rank element — the same convention {!Cdf} uses, restated
   independently so a convention change in either place trips the pin. *)
let naive_quantile samples q =
  let a = Array.copy samples in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  let rank = if rank < 1 then 1 else rank in
  a.(rank - 1)

let record_all l samples =
  Array.iter (Latency.record l) samples;
  l

let test_latency_empty () =
  let l = Latency.create () in
  checki "count" 0 (Latency.count l);
  checkb "mean nan" true (Float.is_nan (Latency.mean l));
  checkb "p50 nan" true (Float.is_nan (Latency.p50 l))

let test_latency_small_exact () =
  (* Below small_cap the recorder answers from the verbatim samples, so
     every quantile equals the naive reference exactly. *)
  let samples = [| 5.0; 1.0; 9.0; 3.0; 7.0; 2.0; 8.0; 4.0; 6.0; 10.0 |] in
  let l = record_all (Latency.create ()) samples in
  checkf "p50" (naive_quantile samples 0.5) (Latency.p50 l);
  checkf "p99" (naive_quantile samples 0.99) (Latency.p99 l);
  checkf "p999" (naive_quantile samples 0.999) (Latency.p999 l);
  checkf "mean" 5.5 (Latency.mean l);
  checkf "min" 1.0 (Latency.min_value l);
  checkf "max" 10.0 (Latency.max_value l)

let test_latency_large_bucketed () =
  (* Past small_cap the answer comes from the bucket walk: within one
     bucket ratio of the naive reference, extremes exact via the clamp. *)
  let n = 2000 in
  let samples = Array.init n (fun i -> 0.5 +. (0.01 *. float_of_int i)) in
  let l = record_all (Latency.create ()) samples in
  let ratio = Float.pow 10.0 (1.0 /. 32.0) in
  List.iter
    (fun q ->
      let exact = naive_quantile samples q in
      let got = Latency.quantile l q in
      checkb
        (Printf.sprintf "q%.3f within bucket ratio" q)
        true
        (got >= exact /. ratio && got <= exact *. ratio))
    [ 0.5; 0.9; 0.99; 0.999 ];
  checkf "min exact" 0.5 (Latency.min_value l);
  checkf "max exact" (0.5 +. (0.01 *. float_of_int (n - 1)))
    (Latency.max_value l);
  let p100 = Latency.quantile l 1.0 in
  checkb "p100 bounded by max" true
    (p100 <= Latency.max_value l && p100 >= Latency.max_value l /. ratio)

let test_latency_rejects_bad () =
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Latency.record: sample must be finite and non-negative")
    (fun () -> Latency.record (Latency.create ()) (-1.0));
  Alcotest.check_raises "nan sample"
    (Invalid_argument "Latency.record: sample must be finite and non-negative")
    (fun () -> Latency.record (Latency.create ()) Float.nan);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Latency.quantile: q out of range") (fun () ->
      ignore (Latency.quantile (Latency.create ()) 1.5));
  Alcotest.check_raises "bad lo"
    (Invalid_argument "Latency.create: lo must be positive") (fun () ->
      ignore (Latency.create ~lo:0.0 ()))

let test_latency_buckets_sum () =
  let samples = Array.init 700 (fun i -> 1.0 +. float_of_int (i mod 37)) in
  let l = record_all (Latency.create ()) samples in
  let total =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Latency.buckets l)
  in
  checki "bucket counts sum to count" (Latency.count l) total;
  List.iter
    (fun (lo, hi, _) -> checkb "bucket edges ordered" true (lo < hi))
    (Latency.buckets l)

(* Merging two recorders must be indistinguishable from one recorder fed
   the concatenated stream — the property the segmented replay driver
   relies on when it combines per-segment recorders. *)
let test_latency_merge_matches_concat () =
  let xs =
    Array.init 40 (fun i -> 0.001 *. float_of_int (1 + (i * 37 mod 97)))
  in
  let ys =
    Array.init 50 (fun i -> 0.002 *. float_of_int (1 + (i * 53 mod 83)))
  in
  let a = record_all (Latency.create ()) xs in
  let b = record_all (Latency.create ()) ys in
  let one = record_all (record_all (Latency.create ()) xs) ys in
  Latency.merge ~into:a b;
  checki "count" (Latency.count one) (Latency.count a);
  checkf "mean" (Latency.mean one) (Latency.mean a);
  (* 90 combined samples fit small_cap, so quantiles stay exact — the
     merged windows hold the same sample multiset. *)
  List.iter
    (fun q ->
      checkb
        (Printf.sprintf "q%.2f exact" q)
        true
        (Latency.quantile one q = Latency.quantile a q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  checkb "extremes" true
    (Latency.min_value one = Latency.min_value a
    && Latency.max_value one = Latency.max_value a);
  checkb "buckets" true (Latency.buckets one = Latency.buckets a);
  checkb "src untouched" true (Latency.count b = 50)

let test_latency_merge_large_bucketed () =
  (* Past small_cap the exact windows are gone; bucket counts must still
     match the single-recorder run exactly, so quantiles (bucket walk)
     are bit-identical too. *)
  let mk () = Latency.create ~small_cap:16 () in
  let xs =
    Array.init 300 (fun i -> 0.0005 *. float_of_int (1 + (i * 311 mod 1009)))
  in
  let ys =
    Array.init 200 (fun i -> 0.0007 *. float_of_int (1 + (i * 173 mod 661)))
  in
  let a = record_all (mk ()) xs in
  let b = record_all (mk ()) ys in
  let one = record_all (record_all (mk ()) xs) ys in
  Latency.merge ~into:a b;
  checki "count" 500 (Latency.count a);
  checkb "buckets identical" true (Latency.buckets one = Latency.buckets a);
  List.iter
    (fun q ->
      checkb
        (Printf.sprintf "q%.3f bucket-identical" q)
        true
        (Latency.quantile one q = Latency.quantile a q))
    [ 0.5; 0.99; 0.999 ];
  checkb "extremes" true
    (Latency.min_value one = Latency.min_value a
    && Latency.max_value one = Latency.max_value a)

let test_latency_merge_empty () =
  let a = Latency.create () and b = Latency.create () in
  Latency.record a 0.5;
  Latency.merge ~into:a b;
  checki "empty src is a no-op" 1 (Latency.count a);
  let c = Latency.create () in
  Latency.merge ~into:c a;
  checki "into empty copies" 1 (Latency.count c);
  checkf "value survives" 0.5 (Latency.quantile c 0.5)

let test_latency_merge_rejects_geometry () =
  List.iter
    (fun src ->
      match Latency.merge ~into:(Latency.create ()) src with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "geometry mismatch should raise")
    [
      Latency.create ~lo:1e-2 ();
      Latency.create ~bins_per_decade:16 ();
      Latency.create ~decades:5 ();
      Latency.create ~small_cap:17 ();
    ]

(* ---------------- Rates ---------------- *)

let test_rates_pki () =
  checkf "pki" 2.0 (Rates.pki ~count:20 ~instructions:10_000);
  checkf "pki zero denom" 0.0 (Rates.pki ~count:5 ~instructions:0)

let test_rates_change () =
  checkf "change" (-0.1) (Rates.change ~base:10.0 ~enhanced:9.0);
  checkf "change zero base" 0.0 (Rates.change ~base:0.0 ~enhanced:5.0)

let test_rates_speedup () =
  checkf "speedup" 2.0 (Rates.speedup ~base:10.0 ~enhanced:5.0)

(* ---------------- property tests ---------------- *)

let nonempty_floats =
  QCheck.(list_of_size (Gen.int_range 1 200) (float_range (-1000.0) 1000.0))

let qcheck_tests =
  [
    QCheck.Test.make ~name:"percentile monotone in p" ~count:200 nonempty_floats
      (fun l ->
        let s = Summary.of_array (Array.of_list l) in
        let p25 = Summary.percentile s 25.0
        and p50 = Summary.percentile s 50.0
        and p75 = Summary.percentile s 75.0 in
        p25 <= p50 && p50 <= p75);
    QCheck.Test.make ~name:"cdf eval within [0,1] and monotone" ~count:200
      QCheck.(pair nonempty_floats (float_range (-2000.0) 2000.0))
      (fun (l, x) ->
        let c = Cdf.of_samples (Array.of_list l) in
        let v = Cdf.eval c x and v' = Cdf.eval c (x +. 10.0) in
        v >= 0.0 && v <= 1.0 && v <= v');
    QCheck.Test.make ~name:"cdf quantile within sample range" ~count:200
      QCheck.(pair nonempty_floats (float_range 0.0 1.0))
      (fun (l, q) ->
        let c = Cdf.of_samples (Array.of_list l) in
        let v = Cdf.quantile c q in
        v >= Cdf.min_value c && v <= Cdf.max_value c);
    QCheck.Test.make ~name:"histogram total equals adds" ~count:200 nonempty_floats
      (fun l ->
        let h = Histogram.create ~lo:(-100.0) ~hi:100.0 ~bins:16 in
        List.iter (Histogram.add h) l;
        Histogram.total h = List.length l);
    QCheck.Test.make ~name:"summary mean within [min,max]" ~count:200 nonempty_floats
      (fun l ->
        let s = Summary.of_array (Array.of_list l) in
        Summary.mean s >= Summary.min s -. 1e-9
        && Summary.mean s <= Summary.max s +. 1e-9);
    (* The latency recorder's small-n path must agree with the naive
       sort-the-samples reference bit for bit: both are ceil-rank, and
       list sizes stay below small_cap (512). *)
    QCheck.Test.make ~name:"latency small-n quantiles exact" ~count:200
      QCheck.(
        pair
          (list_of_size (Gen.int_range 1 400) (float_range 0.001 5000.0))
          (float_range 0.0 1.0))
      (fun (l, q) ->
        let samples = Array.of_list l in
        let lat = record_all (Latency.create ()) samples in
        Latency.quantile lat q = naive_quantile samples q);
    (* Past small_cap the bucket walk answers within one bucket ratio of
       the reference (and exactly at the clamped extremes). *)
    QCheck.Test.make ~name:"latency large-n quantiles bucket-bounded"
      ~count:50
      QCheck.(
        pair
          (list_of_size (Gen.int_range 600 1500) (float_range 0.01 1000.0))
          (float_range 0.0 1.0))
      (fun (l, q) ->
        let samples = Array.of_list l in
        let lat = record_all (Latency.create ()) samples in
        let exact = naive_quantile samples q in
        let got = Latency.quantile lat q in
        let ratio = Float.pow 10.0 (1.0 /. 32.0) in
        got >= exact /. ratio && got <= exact *. ratio);
    QCheck.Test.make ~name:"latency mean/count match reference" ~count:200
      QCheck.(list_of_size (Gen.int_range 1 1000) (float_range 0.0 100.0))
      (fun l ->
        let samples = Array.of_list l in
        let lat = record_all (Latency.create ()) samples in
        let n = Array.length samples in
        let sum = Array.fold_left ( +. ) 0.0 samples in
        Latency.count lat = n
        && Float.abs (Latency.mean lat -. (sum /. float_of_int n)) < 1e-6);
  ]

let () =
  Alcotest.run "dlink_stats"
    [
      ( "summary",
        [
          Alcotest.test_case "mean" `Quick test_summary_mean;
          Alcotest.test_case "min/max" `Quick test_summary_minmax;
          Alcotest.test_case "stddev" `Quick test_summary_stddev;
          Alcotest.test_case "percentile endpoints" `Quick test_summary_percentile_endpoints;
          Alcotest.test_case "percentile interpolation" `Quick test_summary_percentile_interpolates;
          Alcotest.test_case "empty raises" `Quick test_summary_empty_raises;
          Alcotest.test_case "percentile range" `Quick test_summary_percentile_range;
          Alcotest.test_case "incremental" `Quick test_summary_incremental;
          Alcotest.test_case "sorted cache invalidation" `Quick test_summary_cache_invalidation;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "under/overflow" `Quick test_histogram_under_overflow;
          Alcotest.test_case "fractions sum" `Quick test_histogram_fractions_sum;
          Alcotest.test_case "peak" `Quick test_histogram_peak;
          Alcotest.test_case "rejects bad args" `Quick test_histogram_rejects_bad_args;
          Alcotest.test_case "hi boundary overflows" `Quick test_histogram_boundary_value;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "eval" `Quick test_cdf_eval;
          Alcotest.test_case "quantile" `Quick test_cdf_quantile;
          Alcotest.test_case "empty rejected" `Quick test_cdf_empty_rejected;
          Alcotest.test_case "points reach one" `Quick test_cdf_points_reach_one;
          Alcotest.test_case "unsorted input" `Quick test_cdf_unsorted_input;
        ] );
      ( "latency",
        [
          Alcotest.test_case "empty" `Quick test_latency_empty;
          Alcotest.test_case "small-n exact" `Quick test_latency_small_exact;
          Alcotest.test_case "large-n bucketed" `Quick test_latency_large_bucketed;
          Alcotest.test_case "rejects bad args" `Quick test_latency_rejects_bad;
          Alcotest.test_case "bucket counts sum" `Quick test_latency_buckets_sum;
          Alcotest.test_case "merge = concat (exact)" `Quick
            test_latency_merge_matches_concat;
          Alcotest.test_case "merge = concat (bucketed)" `Quick
            test_latency_merge_large_bucketed;
          Alcotest.test_case "merge empty" `Quick test_latency_merge_empty;
          Alcotest.test_case "merge rejects geometry" `Quick
            test_latency_merge_rejects_geometry;
        ] );
      ( "rates",
        [
          Alcotest.test_case "pki" `Quick test_rates_pki;
          Alcotest.test_case "change" `Quick test_rates_change;
          Alcotest.test_case "speedup" `Quick test_rates_speedup;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
