(* Tests for the packed trace subsystem: format round-trips, the trace
   cache, the parallel map, and the zero-allocation property of the
   replay fast path.  The generate/replay golden-equivalence contract
   lives in test_pipeline.ml as one matrix over event source and
   topology. *)

module Addr = Dlink_isa.Addr
module Event = Dlink_mach.Event
module Kind = Dlink_mach.Event.Kind
module Counters = Dlink_uarch.Counters
module Sim = Dlink_core.Sim
module Registry = Dlink_workloads.Registry
module Trace = Dlink_trace.Trace
module Tcache = Dlink_trace.Cache
module Replay = Dlink_trace.Replay
module Parallel = Dlink_util.Parallel
module Dpool = Dlink_util.Dpool
module Json = Dlink_util.Json

let wl name =
  match Registry.find name with
  | Some f -> f ()
  | None -> Alcotest.failf "unknown workload %s" name

(* --- format round-trips ------------------------------------------------ *)

let ev ?(size = 4) ?(in_plt = false) ?load ?load2 ?store ?branch pc =
  { Event.pc; size; in_plt; load; load2; store; branch }

let test_manual_round_trip () =
  let w = Trace.Writer.create () in
  (* Request 0: a PLT call whose continuation pcs are all derivable. *)
  let e1 =
    ev 0x1000
      ~branch:(Event.Call_direct { target = 0x2000; arch_target = 0x2000 })
  in
  let e2 =
    ev 0x2000 ~size:2 ~in_plt:true ~load:0x9000
      ~branch:(Event.Jump_indirect { target = 0x3000; slot = 0x9000 })
  in
  let e3 = ev 0x3000 ~size:1 ~store:0x9100 in
  (* Request 1: explicit pc (discontinuity), redirected call, cond branch. *)
  let e4 =
    ev 0x5000
      ~branch:(Event.Call_direct { target = 0x7000; arch_target = 0x6000 })
  in
  let e5 =
    ev 0x7000 ~size:3 ~load:0x100 ~load2:0x200
      ~branch:(Event.Cond_branch { target = 0x1000; taken = false })
  in
  let e6 = ev 0x7003 ~branch:(Event.Return { target = 0x5004 }) in
  Trace.Writer.start_request w ~rtype:1;
  Trace.Writer.add w ~plt_call:true e1;
  Trace.Writer.add w e2;
  Trace.Writer.add w ~got_store:true e3;
  Trace.Writer.start_request w ~rtype:0;
  Trace.Writer.add w e4;
  Trace.Writer.add w e5;
  Trace.Writer.add w e6;
  let tr = Trace.Writer.finish w ~warmup:1 in
  Alcotest.(check int) "n_events" 6 (Trace.n_events tr);
  Alcotest.(check int) "n_requests" 2 (Trace.n_requests tr);
  Alcotest.(check int) "warmup" 1 (Trace.warmup tr);
  Alcotest.(check int) "measured" 1 (Trace.measured_requests tr);
  Alcotest.(check int) "rtype 0" 1 (Trace.request_rtype tr 0);
  Alcotest.(check int) "rtype 1" 0 (Trace.request_rtype tr 1);
  Alcotest.(check int) "events in req 0" 3 (Trace.request_events tr 0);
  Alcotest.(check int) "events in req 1" 3 (Trace.request_events tr 1);
  Alcotest.(check bool) "decode" true
    (Trace.to_events tr = [ e1; e2; e3; e4; e5; e6 ]);
  Alcotest.(check bool) "storage bytes" true (Trace.storage_bytes tr > 0);
  (* The side flags survive through the cursor. *)
  let c = Trace.Cursor.create tr in
  Trace.Cursor.seek_request c 0;
  Trace.Cursor.advance c;
  Alcotest.(check bool) "e1 plt_call" true c.Trace.Cursor.plt_call;
  Alcotest.(check bool) "e1 no got_store" false c.Trace.Cursor.got_store;
  Alcotest.(check bool) "peek sees plt" true (Trace.Cursor.peek_in_plt c);
  Alcotest.(check bool) "event rebuild" true (Trace.Cursor.event c = e1);
  Trace.Cursor.advance c;
  Alcotest.(check int) "e2 load" 0x9000 c.Trace.Cursor.load;
  Alcotest.(check int) "e2 load2 absent" Addr.none c.Trace.Cursor.load2;
  Trace.Cursor.advance c;
  Alcotest.(check bool) "e3 got_store" true c.Trace.Cursor.got_store;
  Alcotest.(check int) "e3 store" 0x9100 c.Trace.Cursor.store;
  Alcotest.(check int) "e3 no branch" Kind.none c.Trace.Cursor.kind;
  (* Seeking straight into request 1 works without replaying request 0. *)
  let c2 = Trace.Cursor.create tr in
  Trace.Cursor.seek_request c2 1;
  Trace.Cursor.advance c2;
  Alcotest.(check int) "seek pc" 0x5000 c2.Trace.Cursor.pc;
  Alcotest.(check int) "redirect target" 0x7000 c2.Trace.Cursor.target;
  Alcotest.(check int) "redirect aux" 0x6000 c2.Trace.Cursor.aux

let test_writer_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "add outside request" (fun () ->
      Trace.Writer.add (Trace.Writer.create ()) (ev 0x1000));
  expect_invalid "size above 15" (fun () ->
      let w = Trace.Writer.create () in
      Trace.Writer.start_request w ~rtype:0;
      Trace.Writer.add w (ev ~size:16 0x1000));
  expect_invalid "warmup beyond requests" (fun () ->
      let w = Trace.Writer.create () in
      Trace.Writer.start_request w ~rtype:0;
      Trace.Writer.add w (ev 0x1000);
      ignore (Trace.Writer.finish w ~warmup:2))

let addr_gen = QCheck.Gen.int_range 0 0x3FFF_FFFF

let branch_gen =
  QCheck.Gen.(
    oneof
      [
        return None;
        map (fun t -> Some (Event.Jump_direct { target = t })) addr_gen;
        map (fun t -> Some (Event.Jump_resolver { target = t })) addr_gen;
        map (fun t -> Some (Event.Return { target = t })) addr_gen;
        map
          (fun (t, s) -> Some (Event.Call_indirect { target = t; slot = s }))
          (pair addr_gen addr_gen);
        map
          (fun (t, s) -> Some (Event.Jump_indirect { target = t; slot = s }))
          (pair addr_gen addr_gen);
        map
          (fun (t, k) -> Some (Event.Cond_branch { target = t; taken = k }))
          (pair addr_gen bool);
        map
          (fun t -> Some (Event.Call_direct { target = t; arch_target = t }))
          addr_gen;
        map
          (fun (t, a) ->
            Some (Event.Call_direct { target = t; arch_target = a }))
          (pair addr_gen addr_gen);
      ])

let event_gen =
  QCheck.Gen.(
    addr_gen >>= fun pc ->
    int_range 1 15 >>= fun size ->
    bool >>= fun in_plt ->
    opt addr_gen >>= fun load ->
    opt addr_gen >>= fun load2 ->
    opt addr_gen >>= fun store ->
    branch_gen >>= fun branch ->
    return { Event.pc; size; in_plt; load; load2; store; branch })

let requests_gen =
  QCheck.Gen.(
    list_size (int_range 1 20)
      (pair (int_range 0 3) (list_size (int_range 1 25) event_gen)))

let qcheck_tests =
  [
    QCheck.Test.make ~name:"pack/decode round-trip" ~count:150
      (QCheck.make requests_gen) (fun reqs ->
        let w = Trace.Writer.create () in
        List.iter
          (fun (rtype, evs) ->
            Trace.Writer.start_request w ~rtype;
            List.iter (fun e -> Trace.Writer.add w e) evs)
          reqs;
        let tr = Trace.Writer.finish w ~warmup:0 in
        Trace.to_events tr = List.concat_map snd reqs
        && Trace.n_requests tr = List.length reqs
        && List.for_all2
             (fun (rtype, evs) r ->
               Trace.request_rtype tr r = rtype
               && Trace.request_events tr r = List.length evs)
             reqs
             (List.init (List.length reqs) Fun.id));
  ]

(* --- trace cache ------------------------------------------------------- *)

let test_cache () =
  Tcache.clear ();
  let w = wl "synth" in
  let misses0 = Tcache.misses () in
  let t1 = Tcache.get ~requests:20 ~mode:Sim.Base w in
  Alcotest.(check int) "first get records" (misses0 + 1) (Tcache.misses ());
  let hits0 = Tcache.hits () in
  (* Enhanced normalizes onto the Base entry, and a shorter request count
     is a prefix hit on the same physical trace. *)
  let t2 = Tcache.get ~requests:10 ~mode:Sim.Enhanced w in
  Alcotest.(check bool) "prefix hit is physical" true (t1 == t2);
  Alcotest.(check int) "hit counted" (hits0 + 1) (Tcache.hits ());
  Alcotest.(check int) "no extra miss" (misses0 + 1) (Tcache.misses ());
  (* Asking for more re-records at the larger count. *)
  let t3 = Tcache.get ~requests:35 ~mode:Sim.Base w in
  Alcotest.(check bool) "longer run re-records" true (t3 != t1);
  Alcotest.(check bool) "re-record covers request" true
    (Trace.measured_requests t3 >= 35);
  let t4 = Tcache.get ~requests:20 ~mode:Sim.Base w in
  Alcotest.(check bool) "replacement serves prefix" true (t3 == t4);
  (* Distinct key components get distinct traces. *)
  let t5 = Tcache.get ~seed:7 ~requests:20 ~mode:Sim.Base w in
  let t6 = Tcache.get ~aslr_seed:9 ~requests:20 ~mode:Sim.Base w in
  let t7 = Tcache.get ~requests:20 ~mode:Sim.Static w in
  Alcotest.(check bool) "seed keys" true (t5 != t3);
  Alcotest.(check bool) "aslr keys" true (t6 != t3 && t6 != t5);
  Alcotest.(check bool) "link mode keys" true (t7 != t3);
  Alcotest.(check bool) "footprint positive" true (Tcache.footprint_bytes () > 0);
  Tcache.clear ();
  Alcotest.(check int) "clear empties footprint" 0 (Tcache.footprint_bytes ())

(* --- parallel map and atomic json -------------------------------------- *)

let test_parallel_map () =
  let xs = List.init 37 Fun.id in
  let f x = (x * x) - 3 in
  let expect = List.map f xs in
  Alcotest.(check (list int)) "jobs=1" expect (Parallel.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "jobs=2" expect (Parallel.map ~jobs:2 f xs);
  Alcotest.(check (list int)) "jobs=4" expect (Parallel.map ~jobs:4 f xs);
  Alcotest.(check (list int))
    "more jobs than items" [ 0; 1; 2 ]
    (Parallel.map ~jobs:8 Fun.id [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:3 f []);
  Alcotest.(check bool) "default_jobs positive" true (Parallel.default_jobs () >= 1);
  match Parallel.map ~jobs:2 (fun x -> if x = 5 then failwith "boom" else x) xs with
  | _ -> Alcotest.fail "worker exception should surface as Failure"
  | exception Failure _ -> ()

let test_dpool_map () =
  let xs = List.init 37 Fun.id in
  let f x = (x * x) - 3 in
  let expect = List.map f xs in
  Alcotest.(check (list int)) "jobs=1" expect (Dpool.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "jobs=2" expect (Dpool.map ~jobs:2 f xs);
  Alcotest.(check (list int)) "jobs=4" expect (Dpool.map ~jobs:4 f xs);
  Alcotest.(check (list int))
    "more jobs than items" [ 0; 1; 2 ]
    (Dpool.map ~jobs:8 Fun.id [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "empty" [] (Dpool.map ~jobs:3 f []);
  Alcotest.(check bool) "default_jobs positive" true (Dpool.default_jobs () >= 1);
  (* Domains share the heap, so — unlike the fork pool — results may be
     closures. *)
  let gs = Dpool.map ~jobs:2 (fun x () -> x + 1) xs in
  Alcotest.(check (list int))
    "closures cross domains"
    (List.map (fun x -> x + 1) xs)
    (List.map (fun g -> g ()) gs);
  match Dpool.map ~jobs:2 (fun x -> if x = 5 then failwith "boom" else x) xs with
  | _ -> Alcotest.fail "domain exception should surface as Failure"
  | exception Failure _ -> ()

(* run_ordered feeds the consumer on the calling domain in strict index
   order whatever the worker count or backpressure window — the property
   the segmented serving driver's queue arithmetic depends on. *)
let test_dpool_run_ordered () =
  List.iter
    (fun (jobs, window) ->
      let n = 200 in
      let seen = ref [] in
      Dpool.run_ordered ~jobs ?window
        ~produce:(fun i -> (i * i) - 3)
        ~consume:(fun i v -> seen := (i, v) :: !seen)
        n;
      let seen = List.rev !seen in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d all consumed" jobs)
        n (List.length seen);
      List.iteri
        (fun k (i, v) ->
          Alcotest.(check int) "strict index order" k i;
          Alcotest.(check int) "value matches producer" ((k * k) - 3) v)
        seen)
    [ (1, None); (2, None); (4, None); (4, Some 1); (9, Some 64); (3, Some 2) ];
  let hits = ref 0 in
  Dpool.run_ordered ~jobs:4 ~produce:Fun.id
    ~consume:(fun _ _ -> incr hits)
    0;
  Alcotest.(check int) "n=0 consumes nothing" 0 !hits;
  Dpool.run_ordered ~jobs:4
    ~produce:(fun i -> i + 5)
    ~consume:(fun i v ->
      Alcotest.(check int) "n=1 inline" 0 i;
      Alcotest.(check int) "n=1 value" 5 v)
    1;
  (match
     Dpool.run_ordered ~jobs:2
       ~produce:(fun i -> if i = 7 then failwith "boom" else i)
       ~consume:(fun _ _ -> ())
       20
   with
  | () -> Alcotest.fail "producer exception should surface"
  | exception Failure _ -> ());
  match
    Dpool.run_ordered ~jobs:2 ~produce:Fun.id
      ~consume:(fun i _ -> if i = 5 then failwith "sink")
      20
  with
  | () -> Alcotest.fail "consumer exception should surface"
  | exception Failure _ -> ()

let test_json_atomic () =
  let path = Filename.temp_file "dlink_trace_test" ".json" in
  let v = Json.Obj [ ("sim_mips", Json.Float 12.5); ("ok", Json.Bool true) ] in
  Json.write_file path v;
  Alcotest.(check bool) "written" true (Sys.file_exists path);
  Alcotest.(check bool) "no temp residue" false (Sys.file_exists (path ^ ".tmp"));
  (match Json.of_string (In_channel.with_open_text path In_channel.input_all) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "unparseable json: %s" e);
  Sys.remove path

(* --- allocation-free replay ------------------------------------------- *)

let test_zero_alloc () =
  Tcache.clear ();
  let w = wl "synth" in
  let tr = Tcache.get ~warmup:4 ~requests:300 ~mode:Sim.Base w in
  let measure mode n =
    (* One throwaway run per size triggers any one-time lazy setup. *)
    ignore (Replay.replay_counters ~mode ~requests:n tr);
    let before = Gc.minor_words () in
    ignore (Replay.replay_counters ~mode ~requests:n tr);
    Gc.minor_words () -. before
  in
  (* Machine construction allocates the same amount for both run lengths,
     so the delta isolates per-request allocation: 200 extra requests of a
     truly allocation-free loop add ~nothing. *)
  let d100 = measure Sim.Base 100 in
  let d300 = measure Sim.Base 300 in
  if Float.abs (d300 -. d100) > 512.0 then
    Alcotest.failf "base replay allocates per request: 100->%.0f 300->%.0f words"
      d100 d300;
  (* Enhanced replay allocates only on the skip controller's bookkeeping
     paths (ABTB inserts and filter-driven clears), exactly as generate
     mode does — never per retired event.  Bound the words per control
     event; a per-event leak would blow through this by orders of
     magnitude. *)
  let e100 = measure Sim.Enhanced 100 in
  let e300 = measure Sim.Enhanced 300 in
  let c100 = Replay.replay_counters ~mode:Sim.Enhanced ~requests:100 tr in
  let c300 = Replay.replay_counters ~mode:Sim.Enhanced ~requests:300 tr in
  let control =
    c300.Counters.abtb_inserts - c100.Counters.abtb_inserts
    + (c300.Counters.abtb_clears - c100.Counters.abtb_clears)
  in
  let events =
    let sum = ref 0 in
    for r = 104 to 303 do
      sum := !sum + Trace.request_events tr r
    done;
    !sum
  in
  let per_control = (e300 -. e100) /. float_of_int (max 1 control) in
  let per_event = (e300 -. e100) /. float_of_int (max 1 events) in
  if per_control > 96.0 || per_event > 1.0 then
    Alcotest.failf
      "enhanced replay allocates too much: %.1f words/control-event (%d), \
       %.3f words/event (%d)"
      per_control control per_event events

(* Same property under the domain pool: each domain replays the shared
   trace with its own kernel, and minor-heap accounting is per-domain, so
   the measured words are that domain's replay loop alone.  A 300-request
   replay must not allocate measurably more than a 100-request one. *)
let test_domain_zero_alloc () =
  Tcache.clear ();
  let w = wl "synth" in
  let tr = Tcache.get ~warmup:4 ~requests:300 ~mode:Sim.Base w in
  let deltas =
    Dpool.map ~jobs:2
      (fun n ->
        ignore (Replay.replay_counters ~mode:Sim.Base ~requests:n tr);
        let before = Gc.minor_words () in
        ignore (Replay.replay_counters ~mode:Sim.Base ~requests:n tr);
        Gc.minor_words () -. before)
      [ 100; 300 ]
  in
  match deltas with
  | [ d100; d300 ] ->
      if Float.abs (d300 -. d100) > 512.0 then
        Alcotest.failf
          "domain replay allocates per request: 100->%.0f 300->%.0f words"
          d100 d300
  | _ -> Alcotest.fail "dpool dropped a result"

let () =
  Alcotest.run "trace"
    [
      ( "format",
        [
          Alcotest.test_case "manual round-trip" `Quick test_manual_round_trip;
          Alcotest.test_case "writer validation" `Quick test_writer_validation;
        ] );
      ("cache", [ Alcotest.test_case "keying and prefix" `Quick test_cache ]);
      ( "infra",
        [
          Alcotest.test_case "parallel map" `Quick test_parallel_map;
          Alcotest.test_case "domain pool map" `Quick test_dpool_map;
          Alcotest.test_case "domain pool ordered" `Quick test_dpool_run_ordered;
          Alcotest.test_case "atomic json" `Quick test_json_atomic;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "replay is allocation-free" `Quick test_zero_alloc;
          Alcotest.test_case "domain replay is allocation-free" `Quick
            test_domain_zero_alloc;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
