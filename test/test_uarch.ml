(* Tests for Dlink_uarch: tables, caches, TLBs, predictors, Bloom, ABTB,
   counters, and the accounting engine. *)

open Dlink_uarch
module Event = Dlink_mach.Event

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- Assoc_table ---------------- *)

let test_assoc_hit_after_insert () =
  let t = Assoc_table.create ~sets:4 ~ways:2 in
  Assoc_table.insert t ~tag:0 10 "a";
  Alcotest.(check (option string)) "hit" (Some "a") (Assoc_table.find t 10)

let test_assoc_lru_eviction_order () =
  (* One set, two ways: the least recently used key is evicted. *)
  let t = Assoc_table.create ~sets:1 ~ways:2 in
  Assoc_table.insert t ~tag:0 1 ();
  Assoc_table.insert t ~tag:0 2 ();
  ignore (Assoc_table.find t 1);
  (* 2 is now LRU *)
  Assoc_table.insert t ~tag:0 3 ();
  checkb "1 kept" true (Assoc_table.probe t 1 <> None);
  checkb "2 evicted" true (Assoc_table.probe t 2 = None);
  checkb "3 present" true (Assoc_table.probe t 3 <> None)

let test_assoc_probe_does_not_refresh () =
  let t = Assoc_table.create ~sets:1 ~ways:2 in
  Assoc_table.insert t ~tag:0 1 ();
  Assoc_table.insert t ~tag:0 2 ();
  ignore (Assoc_table.probe t 1);
  (* probe must NOT refresh: 1 is still LRU *)
  Assoc_table.insert t ~tag:0 3 ();
  checkb "1 evicted" true (Assoc_table.probe t 1 = None)

let test_assoc_set_isolation () =
  (* Keys in different sets never evict each other. *)
  let t = Assoc_table.create ~sets:2 ~ways:1 in
  Assoc_table.insert t ~tag:0 0 ();
  Assoc_table.insert t ~tag:0 1 ();
  checkb "both live" true (Assoc_table.probe t 0 <> None && Assoc_table.probe t 1 <> None)

let test_assoc_touch () =
  let t = Assoc_table.create ~sets:2 ~ways:2 in
  checkb "miss inserts" false (Assoc_table.touch t ~tag:0 5 ());
  checkb "hit" true (Assoc_table.touch t ~tag:0 5 ())

let test_assoc_overwrite () =
  let t = Assoc_table.create ~sets:2 ~ways:2 in
  Assoc_table.insert t ~tag:0 5 "a";
  Assoc_table.insert t ~tag:0 5 "b";
  Alcotest.(check (option string)) "overwritten" (Some "b") (Assoc_table.find t 5);
  checki "single entry" 1 (Assoc_table.valid_count t)

let test_assoc_clear () =
  let t = Assoc_table.create ~sets:2 ~ways:2 in
  Assoc_table.insert t ~tag:0 5 ();
  Assoc_table.clear t;
  checki "empty" 0 (Assoc_table.valid_count t)

let test_assoc_rejects_bad_geometry () =
  Alcotest.check_raises "non-pow2"
    (Invalid_argument "Assoc_table.create: sets must be a power of two") (fun () ->
      ignore (Assoc_table.create ~sets:3 ~ways:1))

(* ---------------- Cache ---------------- *)

let test_cache_hit_miss () =
  let c = Cache.create ~name:"t" ~size_bytes:4096 ~ways:2 in
  checkb "cold miss" false (Cache.access c 0x1000);
  checkb "warm hit" true (Cache.access c 0x1000);
  checkb "same line" true (Cache.access c 0x103F);
  checkb "next line misses" false (Cache.access c 0x1040)

let test_cache_capacity_eviction () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:1 in
  (* 16 lines direct mapped; address + 1024 maps to the same set. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 1024);
  checkb "conflict evicted" false (Cache.access c 0)

let test_cache_flush () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:2 in
  ignore (Cache.access c 0);
  Cache.flush c;
  checkb "cold again" false (Cache.access c 0)

(* ---------------- Tlb ---------------- *)

let test_tlb_page_granularity () =
  let t = Tlb.create ~name:"t" ~entries:8 ~ways:2 in
  ignore (Tlb.access t ~asid:0 0x1000);
  checkb "same page hits" true (Tlb.access t ~asid:0 0x1FFF);
  checkb "next page misses" false (Tlb.access t ~asid:0 0x2000)

let test_tlb_capacity () =
  let t = Tlb.create ~name:"t" ~entries:4 ~ways:4 in
  for i = 0 to 3 do
    ignore (Tlb.access t ~asid:0 (i * 4096 * 4))
  done;
  (* All four entries map to set 0 region...: fully assoc when ways=4, sets=1 *)
  ignore (Tlb.access t ~asid:0 (100 * 4096));
  checkb "evicted oldest" false (Tlb.access t ~asid:0 0)

(* ---------------- Btb / Direction / Ras ---------------- *)

let test_btb_predict_update () =
  let b = Btb.create ~sets:16 ~ways:2 in
  checkb "cold" true (Btb.predict b 0x400 = None);
  Btb.update b 0x400 0x500;
  Alcotest.(check (option int)) "trained" (Some 0x500) (Btb.predict b 0x400)

let test_btb_retarget () =
  let b = Btb.create ~sets:16 ~ways:2 in
  Btb.update b 0x400 0x500;
  Btb.update b 0x400 0x600;
  Alcotest.(check (option int)) "retargeted" (Some 0x600) (Btb.predict b 0x400)

let test_direction_learns_bias () =
  let d = Direction.create ~table_bits:10 ~history_bits:0 in
  for _ = 1 to 10 do
    Direction.update d 0x40 true
  done;
  checkb "learned taken" true (Direction.predict d 0x40)

let test_direction_learns_alternating_with_history () =
  let d = Direction.create ~table_bits:12 ~history_bits:4 in
  (* Strictly alternating pattern is learnable with history. *)
  let taken = ref false in
  for _ = 1 to 200 do
    taken := not !taken;
    Direction.update d 0x40 !taken
  done;
  let correct = ref 0 in
  for _ = 1 to 100 do
    taken := not !taken;
    if Direction.predict d 0x40 = !taken then incr correct;
    Direction.update d 0x40 !taken
  done;
  checkb "alternation learned" true (!correct > 90)

let test_ras_lifo () =
  let r = Ras.create ~depth:4 in
  Ras.push r 1;
  Ras.push r 2;
  Alcotest.(check (option int)) "pop 2" (Some 2) (Ras.pop r);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ras.pop r);
  Alcotest.(check (option int)) "empty" None (Ras.pop r)

let test_ras_overflow_wraps () =
  let r = Ras.create ~depth:2 in
  Ras.push r 1;
  Ras.push r 2;
  Ras.push r 3;
  (* 1 overwritten *)
  Alcotest.(check (option int)) "3" (Some 3) (Ras.pop r);
  Alcotest.(check (option int)) "2" (Some 2) (Ras.pop r);
  Alcotest.(check (option int)) "1 lost" None (Ras.pop r)

(* ---------------- Bloom ---------------- *)

let test_bloom_membership () =
  let b = Bloom.create ~bits:1024 ~hashes:2 in
  checkb "empty" false (Bloom.mem b ~asid:0 0x1234);
  Bloom.add b ~asid:0 0x1234;
  checkb "added" true (Bloom.mem b ~asid:0 0x1234)

let test_bloom_clear () =
  let b = Bloom.create ~bits:1024 ~hashes:2 in
  Bloom.add b ~asid:0 0x10;
  Bloom.clear b;
  checkb "cleared" false (Bloom.mem b ~asid:0 0x10);
  checki "no bits" 0 (Bloom.bits_set b)

let test_bloom_fp_rate_reasonable () =
  let b = Bloom.create ~bits:4096 ~hashes:2 in
  for i = 1 to 20 do
    Bloom.add b ~asid:0 (i * 8192)
  done;
  let fp = ref 0 in
  for i = 1000 to 2000 do
    if Bloom.mem b ~asid:0 (i * 7919) then incr fp
  done;
  checkb "few false positives" true (!fp < 10)

let test_bloom_clear_bit () =
  (* The fault injector's SRAM-bit-flip primitive: clearing every bit of
     the field is equivalent to a full clear, and clearing an already-zero
     bit is a no-op on the census. *)
  let b = Bloom.create ~bits:64 ~hashes:2 in
  Bloom.add b ~asid:0 0xdead;
  let set = Bloom.bits_set b in
  checkb "something set" true (set > 0);
  Bloom.clear_bit b 0;
  for i = 0 to 63 do
    Bloom.clear_bit b i
  done;
  checki "all bits cleared" 0 (Bloom.bits_set b);
  checkb "membership gone" false (Bloom.mem b ~asid:0 0xdead);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bloom.clear_bit: index out of range") (fun () ->
      Bloom.clear_bit b 64)

let test_bloom_rejects_bad_args () =
  Alcotest.check_raises "bits"
    (Invalid_argument "Bloom.create: bits must be a positive power of two") (fun () ->
      ignore (Bloom.create ~bits:1000 ~hashes:2))

(* ---------------- Abtb ---------------- *)

let test_abtb_insert_lookup () =
  let a = Abtb.create ~entries:4 () in
  Abtb.insert a ~asid:0 0x100 { Abtb.func = 0x200; got_slot = 0x300 };
  (match Abtb.lookup a 0x100 with
  | Some { Abtb.func; got_slot } ->
      checki "func" 0x200 func;
      checki "slot" 0x300 got_slot
  | None -> Alcotest.fail "missing");
  checkb "other misses" true (Abtb.lookup a 0x101 = None)

let test_abtb_lru_capacity () =
  let a = Abtb.create ~entries:2 () in
  Abtb.insert a ~asid:0 1 { Abtb.func = 1; got_slot = 1 };
  Abtb.insert a ~asid:0 2 { Abtb.func = 2; got_slot = 2 };
  ignore (Abtb.lookup a 1);
  Abtb.insert a ~asid:0 3 { Abtb.func = 3; got_slot = 3 };
  checkb "2 evicted" true (Abtb.lookup a 2 = None);
  checkb "1 retained" true (Abtb.lookup a 1 <> None)

let test_abtb_clear () =
  let a = Abtb.create ~entries:4 () in
  Abtb.insert a ~asid:0 1 { Abtb.func = 1; got_slot = 1 };
  Abtb.clear a;
  checki "empty" 0 (Abtb.valid_count a)

let test_abtb_storage_cost () =
  (* Paper §5.3: 12 bytes per entry; 256 entries < 1.5KB claim is loose,
     exactly 3KB at 12B/entry — we report the exact figure. *)
  let a = Abtb.create ~entries:256 () in
  checki "12B/entry" (256 * 12) (Abtb.storage_bytes a)

let test_abtb_clear_set () =
  (* Quarantine eviction granularity: clearing one set removes exactly its
     occupants and nothing else. *)
  let a = Abtb.create ~ways:1 ~entries:4 () in
  Abtb.insert a ~asid:0 0 { Abtb.func = 10; got_slot = 10 };
  Abtb.insert a ~asid:0 1 { Abtb.func = 11; got_slot = 11 };
  let s0 = Abtb.set_index a 0 and s1 = Abtb.set_index a 1 in
  checkb "direct-mapped: distinct sets" true (s0 <> s1);
  checki "four sets" 4 (Abtb.n_sets a);
  Abtb.clear_set a s0;
  checkb "victim gone" true (Abtb.lookup a 0 = None);
  checkb "other set untouched" true (Abtb.lookup a 1 <> None);
  checki "one survivor" 1 (Abtb.valid_count a);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Assoc_table.clear_set: no such set") (fun () ->
      Abtb.clear_set a 4)

(* ---------------- Counters ---------------- *)

let test_counters_diff () =
  let a = Counters.create () in
  a.Counters.instructions <- 100;
  a.Counters.cycles <- 300;
  let snap = Counters.copy a in
  a.Counters.instructions <- 150;
  a.Counters.cycles <- 450;
  let d = Counters.diff ~after:a ~before:snap in
  checki "instr delta" 50 d.Counters.instructions;
  checki "cycle delta" 150 d.Counters.cycles

let test_counters_pki () =
  let c = Counters.create () in
  c.Counters.instructions <- 2000;
  Alcotest.(check (float 1e-9)) "pki" 5.0 (Counters.pki c 10)

let test_counters_reset () =
  let c = Counters.create () in
  c.Counters.branches <- 5;
  Counters.reset c;
  checki "reset" 0 c.Counters.branches

(* ---------------- Engine ---------------- *)

let plain_event ?load ?store ?branch pc =
  { Event.pc; size = 4; in_plt = false; load; load2 = None; store; branch }

let test_engine_counts_instructions_and_misses () =
  let e = Engine.create Config.small in
  Engine.retire e (plain_event 0x1000);
  Engine.retire e (plain_event 0x1000);
  let c = Engine.counters e in
  checki "two instructions" 2 c.Counters.instructions;
  checki "one icache miss" 1 c.Counters.icache_misses;
  checki "one itlb miss" 1 c.Counters.itlb_misses;
  checkb "cycles include penalties" true (c.Counters.cycles > 2)

let test_engine_data_accesses () =
  let e = Engine.create Config.small in
  Engine.retire e (plain_event ~load:0x8000 0x1000);
  Engine.retire e (plain_event ~store:0x8000 0x1004);
  let c = Engine.counters e in
  checki "one dcache miss (second hits)" 1 c.Counters.dcache_misses;
  checki "one dtlb miss" 1 c.Counters.dtlb_misses

let test_engine_cond_misprediction () =
  let e = Engine.create Config.small in
  (* Initial 2-bit counters are weakly not-taken: a taken branch mispredicts. *)
  Engine.retire e
    (plain_event ~branch:(Event.Cond_branch { target = 0x2000; taken = true }) 0x1000);
  checki "mispredicted" 1 (Engine.counters e).Counters.branch_mispredictions

let test_engine_indirect_learns () =
  let e = Engine.create Config.small in
  let ev = plain_event ~branch:(Event.Jump_indirect { target = 0x2000; slot = 0x30 }) 0x1000 in
  Engine.retire e ev;
  let m1 = (Engine.counters e).Counters.branch_mispredictions in
  Engine.retire e ev;
  let m2 = (Engine.counters e).Counters.branch_mispredictions in
  checki "first mispredicts" 1 m1;
  checki "second predicted" 1 m2

let test_engine_return_uses_ras () =
  let e = Engine.create Config.small in
  (* Call pushes pc+size; matching return is predicted. *)
  Engine.retire e
    (plain_event ~branch:(Event.Call_direct { target = 0x2000; arch_target = 0x2000 }) 0x1000);
  let before = (Engine.counters e).Counters.branch_mispredictions in
  Engine.retire e (plain_event ~branch:(Event.Return { target = 0x1004 }) 0x2000);
  checki "return predicted" before (Engine.counters e).Counters.branch_mispredictions

let test_engine_redirected_call_with_stale_btb_mispredicts () =
  let e = Engine.create Config.small in
  (* A redirected (skipped) call whose BTB does not hold the function is a
     genuine misprediction. *)
  Engine.retire e
    (plain_event ~branch:(Event.Call_direct { target = 0x3000; arch_target = 0x2000 }) 0x1000);
  checki "mispredict" 1 (Engine.counters e).Counters.branch_mispredictions;
  (* Next time the BTB holds the function address: no mispredict. *)
  Engine.retire e
    (plain_event ~branch:(Event.Call_direct { target = 0x3000; arch_target = 0x2000 }) 0x1000);
  checki "then predicted" 1 (Engine.counters e).Counters.branch_mispredictions

let test_engine_direct_call_miss_is_bubble_not_mispredict () =
  let e = Engine.create Config.small in
  Engine.retire e
    (plain_event ~branch:(Event.Call_direct { target = 0x2000; arch_target = 0x2000 }) 0x1000);
  let c = Engine.counters e in
  checki "no mispredict" 0 c.Counters.branch_mispredictions;
  checki "btb fill" 1 c.Counters.btb_misses

let test_engine_btb_external_update () =
  let e = Engine.create Config.small in
  Engine.btb_update e 0x1000 0x5000;
  Alcotest.(check (option int)) "visible" (Some 0x5000) (Engine.btb_predict e 0x1000)

let test_engine_context_switch_flushes_tlbs () =
  let e = Engine.create Config.small in
  Engine.retire e (plain_event 0x1000);
  Engine.context_switch e;
  Engine.retire e (plain_event 0x1000);
  checki "itlb misses twice" 2 (Engine.counters e).Counters.itlb_misses

let test_engine_plt_instructions_counted () =
  let e = Engine.create Config.small in
  Engine.retire e { (plain_event 0x1000) with Event.in_plt = true };
  checki "tramp instr" 1 (Engine.counters e).Counters.tramp_instructions

let test_engine_cycle_arithmetic_exact () =
  (* One plain instruction on a cold machine: 1 base cycle + ITLB walk +
     L1I miss that also misses L2 (memory latency). *)
  let cfg = Config.small in
  let e = Engine.create cfg in
  Engine.retire e (plain_event 0x1000);
  let expected =
    1 + cfg.Config.penalties.tlb_miss + cfg.Config.penalties.l2_miss
  in
  checki "cold fetch cost" expected (Engine.counters e).Counters.cycles;
  (* Same instruction again: everything hits, exactly one cycle. *)
  Engine.retire e (plain_event 0x1000);
  checki "warm fetch cost" (expected + 1) (Engine.counters e).Counters.cycles

let test_engine_l2_absorbs_l1_misses () =
  let cfg = Config.small in
  let e = Engine.create cfg in
  (* Three addresses mapping to the same 2-way L1 set force a conflict
     eviction; the larger L2 keeps all three, so re-access costs only the
     L1-miss (L2-hit) penalty. *)
  let a = 0x10000 in
  let b = a + (4 * 1024) and c = a + (8 * 1024) in
  Engine.retire e (plain_event a);
  Engine.retire e (plain_event b);
  Engine.retire e (plain_event c);
  let before = (Engine.counters e).Counters.cycles in
  Engine.retire e (plain_event a);
  let cost = (Engine.counters e).Counters.cycles - before in
  checki "L2 hit after L1 conflict" (1 + cfg.Config.penalties.l1_miss) cost

(* ---------------- reference models for the O(1) flash clear ---------- *)

(* A naive eager-clear copy of the pre-epoch Assoc_table — same geometry,
   same true-LRU replacement, but [clear]/[clear ~tag] physically walk the
   slots.  The qcheck sequences below drive it in lock-step with the
   generation-stamped implementation and assert observational identity,
   including which way the victim scan picks. *)
module Ref_table = struct
  type t = {
    sets : int;
    ways : int;
    keys : int array;
    tags : int array;
    values : int array;
    stamps : int array;
    mutable tick : int;
  }

  let create ~sets ~ways =
    let n = sets * ways in
    {
      sets;
      ways;
      keys = Array.make n (-1);
      tags = Array.make n 0;
      values = Array.make n 0;
      stamps = Array.make n 0;
      tick = 0;
    }

  let set_of t key = key land (t.sets - 1)

  let next_tick t =
    t.tick <- t.tick + 1;
    t.tick

  let find_slot t key tag =
    let base = set_of t key * t.ways in
    let rec go w =
      if w >= t.ways then -1
      else if t.keys.(base + w) = key && t.tags.(base + w) = tag then base + w
      else go (w + 1)
    in
    go 0

  let find t ~tag key =
    let i = find_slot t key tag in
    if i < 0 then None
    else begin
      t.stamps.(i) <- next_tick t;
      Some t.values.(i)
    end

  let probe t ~tag key =
    let i = find_slot t key tag in
    if i < 0 then None else Some t.values.(i)

  let victim_slot t key =
    let base = set_of t key * t.ways in
    let rec free w =
      if w >= t.ways then -1
      else if t.keys.(base + w) = -1 then base + w
      else free (w + 1)
    in
    let i = free 0 in
    if i >= 0 then i
    else begin
      let best = ref base in
      for w = 1 to t.ways - 1 do
        if t.stamps.(base + w) < t.stamps.(!best) then best := base + w
      done;
      !best
    end

  let insert t ~tag key v =
    let i = find_slot t key tag in
    let i = if i >= 0 then i else victim_slot t key in
    t.keys.(i) <- key;
    t.tags.(i) <- tag;
    t.values.(i) <- v;
    t.stamps.(i) <- next_tick t

  let touch t ~tag key v =
    let i = find_slot t key tag in
    if i >= 0 then begin
      t.stamps.(i) <- next_tick t;
      true
    end
    else begin
      insert t ~tag key v;
      false
    end

  let invalidate t i =
    t.keys.(i) <- -1;
    t.tags.(i) <- 0;
    t.values.(i) <- 0;
    t.stamps.(i) <- 0

  let clear ?tag t =
    match tag with
    | None ->
        for i = 0 to Array.length t.keys - 1 do
          invalidate t i
        done;
        t.tick <- 0
    | Some tag ->
        Array.iteri
          (fun i k -> if k >= 0 && t.tags.(i) = tag then invalidate t i)
          t.keys

  let clear_set t s =
    for w = 0 to t.ways - 1 do
      invalidate t ((s * t.ways) + w)
    done

  let valid_count ?tag t =
    let n = ref 0 in
    Array.iteri
      (fun i k ->
        if k >= 0 && match tag with None -> true | Some tag -> t.tags.(i) = tag
        then incr n)
      t.keys;
    !n
end

(* Bool-array Bloom reference with the packed filter's mixer copied
   verbatim — both must probe identical bit positions, so any divergence
   is in the bit storage (the word-packed, generation-stamped part). *)
module Ref_bloom = struct
  type t = { bits : bool array; hashes : int; mutable set_bits : int }

  let create ~bits ~hashes =
    { bits = Array.make bits false; hashes; set_bits = 0 }

  let mix x =
    let x = x lxor (x lsr 30) in
    let x = x * 0x4be98134a5976fd3 in
    let x = x lxor (x lsr 29) in
    let x = x * 0x3bbf2a98b9367f05 in
    (x lxor (x lsr 32)) land max_int

  let mix2 a b = mix (a + (b * 0x1e3779b97f4a7c15))

  let bit_pos t ~asid a k =
    let v = if asid = 0 then a else mix2 a asid in
    mix2 v (k + 1) land (Array.length t.bits - 1)

  let add t ~asid a =
    for k = 0 to t.hashes - 1 do
      let i = bit_pos t ~asid a k in
      if not t.bits.(i) then begin
        t.bits.(i) <- true;
        t.set_bits <- t.set_bits + 1
      end
    done

  let mem t ~asid a =
    let rec go k = k >= t.hashes || (t.bits.(bit_pos t ~asid a k) && go (k + 1)) in
    go 0

  let clear t =
    Array.fill t.bits 0 (Array.length t.bits) false;
    t.set_bits <- 0

  let clear_bit t i =
    if t.bits.(i) then begin
      t.bits.(i) <- false;
      t.set_bits <- t.set_bits - 1
    end

  let bits_set t = t.set_bits
end

type table_op =
  | Insert of int * int * int
  | Find of int * int
  | Probe of int * int
  | Touch of int * int * int
  | Clear
  | Clear_tag of int
  | Clear_set of int

let table_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun k tag v -> Insert (k, tag, v)) (int_range 0 31) (int_range 0 3) (int_range 0 1000));
        (4, map2 (fun k tag -> Find (k, tag)) (int_range 0 31) (int_range 0 3));
        (2, map2 (fun k tag -> Probe (k, tag)) (int_range 0 31) (int_range 0 3));
        (4, map3 (fun k tag v -> Touch (k, tag, v)) (int_range 0 31) (int_range 0 3) (int_range 0 1000));
        (1, return Clear);
        (2, map (fun tag -> Clear_tag tag) (int_range 0 3));
        (1, map (fun s -> Clear_set s) (int_range 0 3));
      ])

let table_op_print = function
  | Insert (k, tag, v) -> Printf.sprintf "insert k=%d tag=%d v=%d" k tag v
  | Find (k, tag) -> Printf.sprintf "find k=%d tag=%d" k tag
  | Probe (k, tag) -> Printf.sprintf "probe k=%d tag=%d" k tag
  | Touch (k, tag, v) -> Printf.sprintf "touch k=%d tag=%d v=%d" k tag v
  | Clear -> "clear"
  | Clear_tag tag -> Printf.sprintf "clear ~tag:%d" tag
  | Clear_set s -> Printf.sprintf "clear_set %d" s

type bloom_op = Badd of int * int | Bmem of int * int | Bclear | Bclear_bit of int

let bloom_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun asid a -> Badd (asid, a)) (int_range 0 3) (int_range 0 100_000));
        (5, map2 (fun asid a -> Bmem (asid, a)) (int_range 0 3) (int_range 0 100_000));
        (1, return Bclear);
        (2, map (fun i -> Bclear_bit i) (int_range 0 255));
      ])

let bloom_op_print = function
  | Badd (asid, a) -> Printf.sprintf "add asid=%d a=%d" asid a
  | Bmem (asid, a) -> Printf.sprintf "mem asid=%d a=%d" asid a
  | Bclear -> "clear"
  | Bclear_bit i -> Printf.sprintf "clear_bit %d" i

(* Deterministic check that the lazy reclamation hands out flash-cleared
   ways in way order, ahead of any LRU decision — the property that makes
   victim choice identical to an eager clear. *)
let test_assoc_clear_tag_way_order () =
  let t = Assoc_table.create ~sets:1 ~ways:4 in
  Assoc_table.insert t ~tag:0 0 "a";
  Assoc_table.insert t ~tag:1 4 "b";
  Assoc_table.insert t ~tag:0 8 "c";
  Assoc_table.insert t ~tag:1 12 "d";
  Assoc_table.clear ~tag:1 t;
  checki "two live after tag clear" 2 (Assoc_table.valid_count t);
  (* e must reclaim b's way (first stale in way order), f then d's. *)
  Assoc_table.insert t ~tag:0 16 "e";
  Assoc_table.insert t ~tag:0 20 "f";
  checkb "a kept" true (Assoc_table.probe t 0 <> None);
  checkb "c kept" true (Assoc_table.probe t 8 <> None);
  checkb "e present" true (Assoc_table.probe t 16 <> None);
  checkb "f present" true (Assoc_table.probe t 20 <> None);
  checkb "b gone" true (Assoc_table.probe t ~tag:1 4 = None);
  checkb "d gone" true (Assoc_table.probe t ~tag:1 12 = None)

let test_assoc_flash_clear_behaves_like_fresh () =
  let t = Assoc_table.create ~sets:2 ~ways:2 in
  for k = 0 to 7 do
    Assoc_table.insert t ~tag:0 k k
  done;
  Assoc_table.clear t;
  checki "empty after flash clear" 0 (Assoc_table.valid_count t);
  (* LRU behaviour starts over exactly as in a fresh table. *)
  Assoc_table.insert t ~tag:0 0 10;
  Assoc_table.insert t ~tag:0 2 11;
  ignore (Assoc_table.find t 0);
  Assoc_table.insert t ~tag:0 4 12;
  checkb "0 kept" true (Assoc_table.probe t 0 <> None);
  checkb "2 evicted" true (Assoc_table.probe t 2 = None);
  checkb "4 present" true (Assoc_table.probe t 4 <> None)

let equivalence_qcheck_tests =
  [
    QCheck.Test.make ~name:"epoch table equals eager reference" ~count:500
      (QCheck.make
         ~print:(fun ops -> String.concat "; " (List.map table_op_print ops))
         QCheck.Gen.(list_size (int_range 1 200) table_op_gen))
      (fun ops ->
        let t = Assoc_table.create ~sets:4 ~ways:2 in
        let r = Ref_table.create ~sets:4 ~ways:2 in
        List.for_all
          (fun op ->
            match op with
            | Insert (k, tag, v) ->
                Assoc_table.insert t ~tag k v;
                Ref_table.insert r ~tag k v;
                true
            | Find (k, tag) -> Assoc_table.find t ~tag k = Ref_table.find r ~tag k
            | Probe (k, tag) ->
                Assoc_table.probe t ~tag k = Ref_table.probe r ~tag k
            | Touch (k, tag, v) ->
                Assoc_table.touch t ~tag k v = Ref_table.touch r ~tag k v
            | Clear ->
                Assoc_table.clear t;
                Ref_table.clear r;
                true
            | Clear_tag tag ->
                Assoc_table.clear ~tag t;
                Ref_table.clear ~tag r;
                true
            | Clear_set s ->
                Assoc_table.clear_set t s;
                Ref_table.clear_set r s;
                true)
          ops
        && Assoc_table.valid_count t = Ref_table.valid_count r
        && List.for_all
             (fun tag ->
               Assoc_table.valid_count ~tag t = Ref_table.valid_count ~tag r)
             [ 0; 1; 2; 3 ]);
    QCheck.Test.make ~name:"packed bloom equals bool-array reference" ~count:500
      (QCheck.make
         ~print:(fun ops -> String.concat "; " (List.map bloom_op_print ops))
         QCheck.Gen.(list_size (int_range 1 200) bloom_op_gen))
      (fun ops ->
        let b = Bloom.create ~bits:256 ~hashes:3 in
        let r = Ref_bloom.create ~bits:256 ~hashes:3 in
        List.for_all
          (fun op ->
            (match op with
            | Badd (asid, a) ->
                Bloom.add b ~asid a;
                Ref_bloom.add r ~asid a;
                true
            | Bmem (asid, a) -> Bloom.mem b ~asid a = Ref_bloom.mem r ~asid a
            | Bclear ->
                Bloom.clear b;
                Ref_bloom.clear r;
                true
            | Bclear_bit i ->
                Bloom.clear_bit b i;
                Ref_bloom.clear_bit r i;
                true)
            && Bloom.bits_set b = Ref_bloom.bits_set r)
          ops);
  ]

(* ---------------- property tests ---------------- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"bloom has no false negatives" ~count:200
      QCheck.(list_of_size (QCheck.Gen.int_range 1 64) (int_range 0 1_000_000))
      (fun addrs ->
        let b = Bloom.create ~bits:4096 ~hashes:3 in
        List.iter (Bloom.add b ~asid:0) addrs;
        List.for_all (Bloom.mem b ~asid:0) addrs);
    QCheck.Test.make ~name:"assoc table holds at most capacity" ~count:200
      QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (int_range 0 1000))
      (fun keys ->
        let t = Assoc_table.create ~sets:4 ~ways:2 in
        List.iter (fun k -> Assoc_table.insert t ~tag:0 k ()) keys;
        Assoc_table.valid_count t <= Assoc_table.capacity t);
    QCheck.Test.make ~name:"most recent key always present" ~count:200
      QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (int_range 0 1000))
      (fun keys ->
        let t = Assoc_table.create ~sets:2 ~ways:2 in
        List.iter (fun k -> Assoc_table.insert t ~tag:0 k ()) keys;
        match List.rev keys with
        | last :: _ -> Assoc_table.probe t last <> None
        | [] -> true);
    QCheck.Test.make ~name:"cache access idempotent on hit" ~count:200
      (QCheck.int_range 0 100_000)
      (fun addr ->
        let c = Cache.create ~name:"t" ~size_bytes:4096 ~ways:4 in
        ignore (Cache.access c addr);
        Cache.access c addr && Cache.access c addr);
    QCheck.Test.make ~name:"ras pop returns last push" ~count:200
      QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_range 0 1_000_000))
      (fun pushes ->
        let r = Ras.create ~depth:16 in
        List.iter (Ras.push r) pushes;
        match List.rev pushes with
        | last :: _ -> Ras.pop r = Some last
        | [] -> true);
  ]

let () =
  Alcotest.run "dlink_uarch"
    [
      ( "assoc_table",
        [
          Alcotest.test_case "hit after insert" `Quick test_assoc_hit_after_insert;
          Alcotest.test_case "LRU eviction" `Quick test_assoc_lru_eviction_order;
          Alcotest.test_case "probe no refresh" `Quick test_assoc_probe_does_not_refresh;
          Alcotest.test_case "set isolation" `Quick test_assoc_set_isolation;
          Alcotest.test_case "touch" `Quick test_assoc_touch;
          Alcotest.test_case "overwrite" `Quick test_assoc_overwrite;
          Alcotest.test_case "clear" `Quick test_assoc_clear;
          Alcotest.test_case "clear ~tag way order" `Quick
            test_assoc_clear_tag_way_order;
          Alcotest.test_case "flash clear like fresh" `Quick
            test_assoc_flash_clear_behaves_like_fresh;
          Alcotest.test_case "bad geometry" `Quick test_assoc_rejects_bad_geometry;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "conflict eviction" `Quick test_cache_capacity_eviction;
          Alcotest.test_case "flush" `Quick test_cache_flush;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "page granularity" `Quick test_tlb_page_granularity;
          Alcotest.test_case "capacity" `Quick test_tlb_capacity;
        ] );
      ( "predictors",
        [
          Alcotest.test_case "btb predict/update" `Quick test_btb_predict_update;
          Alcotest.test_case "btb retarget" `Quick test_btb_retarget;
          Alcotest.test_case "direction bias" `Quick test_direction_learns_bias;
          Alcotest.test_case "direction alternation" `Quick
            test_direction_learns_alternating_with_history;
          Alcotest.test_case "ras lifo" `Quick test_ras_lifo;
          Alcotest.test_case "ras overflow" `Quick test_ras_overflow_wraps;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "membership" `Quick test_bloom_membership;
          Alcotest.test_case "clear" `Quick test_bloom_clear;
          Alcotest.test_case "fp rate" `Quick test_bloom_fp_rate_reasonable;
          Alcotest.test_case "clear bit" `Quick test_bloom_clear_bit;
          Alcotest.test_case "bad args" `Quick test_bloom_rejects_bad_args;
        ] );
      ( "abtb",
        [
          Alcotest.test_case "insert/lookup" `Quick test_abtb_insert_lookup;
          Alcotest.test_case "LRU capacity" `Quick test_abtb_lru_capacity;
          Alcotest.test_case "clear" `Quick test_abtb_clear;
          Alcotest.test_case "clear set" `Quick test_abtb_clear_set;
          Alcotest.test_case "storage cost" `Quick test_abtb_storage_cost;
        ] );
      ( "counters",
        [
          Alcotest.test_case "diff" `Quick test_counters_diff;
          Alcotest.test_case "pki" `Quick test_counters_pki;
          Alcotest.test_case "reset" `Quick test_counters_reset;
        ] );
      ( "engine",
        [
          Alcotest.test_case "instr and fetch misses" `Quick
            test_engine_counts_instructions_and_misses;
          Alcotest.test_case "data accesses" `Quick test_engine_data_accesses;
          Alcotest.test_case "cond misprediction" `Quick test_engine_cond_misprediction;
          Alcotest.test_case "indirect learns" `Quick test_engine_indirect_learns;
          Alcotest.test_case "return uses RAS" `Quick test_engine_return_uses_ras;
          Alcotest.test_case "stale-BTB skip mispredicts" `Quick
            test_engine_redirected_call_with_stale_btb_mispredicts;
          Alcotest.test_case "direct miss is bubble" `Quick
            test_engine_direct_call_miss_is_bubble_not_mispredict;
          Alcotest.test_case "external BTB update" `Quick test_engine_btb_external_update;
          Alcotest.test_case "context switch flushes TLBs" `Quick
            test_engine_context_switch_flushes_tlbs;
          Alcotest.test_case "plt instructions counted" `Quick
            test_engine_plt_instructions_counted;
          Alcotest.test_case "cycle arithmetic exact" `Quick
            test_engine_cycle_arithmetic_exact;
          Alcotest.test_case "L2 absorbs L1 misses" `Quick
            test_engine_l2_absorbs_l1_misses;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ( "flash-clear equivalence",
        List.map QCheck_alcotest.to_alcotest equivalence_qcheck_tests );
    ]
