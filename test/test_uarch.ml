(* Tests for Dlink_uarch: tables, caches, TLBs, predictors, Bloom, ABTB,
   counters, and the accounting engine. *)

open Dlink_uarch
module Event = Dlink_mach.Event

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- Assoc_table ---------------- *)

let test_assoc_hit_after_insert () =
  let t = Assoc_table.create ~sets:4 ~ways:2 in
  Assoc_table.insert t ~tag:0 10 "a";
  Alcotest.(check (option string)) "hit" (Some "a") (Assoc_table.find t 10)

let test_assoc_lru_eviction_order () =
  (* One set, two ways: the least recently used key is evicted. *)
  let t = Assoc_table.create ~sets:1 ~ways:2 in
  Assoc_table.insert t ~tag:0 1 ();
  Assoc_table.insert t ~tag:0 2 ();
  ignore (Assoc_table.find t 1);
  (* 2 is now LRU *)
  Assoc_table.insert t ~tag:0 3 ();
  checkb "1 kept" true (Assoc_table.probe t 1 <> None);
  checkb "2 evicted" true (Assoc_table.probe t 2 = None);
  checkb "3 present" true (Assoc_table.probe t 3 <> None)

let test_assoc_probe_does_not_refresh () =
  let t = Assoc_table.create ~sets:1 ~ways:2 in
  Assoc_table.insert t ~tag:0 1 ();
  Assoc_table.insert t ~tag:0 2 ();
  ignore (Assoc_table.probe t 1);
  (* probe must NOT refresh: 1 is still LRU *)
  Assoc_table.insert t ~tag:0 3 ();
  checkb "1 evicted" true (Assoc_table.probe t 1 = None)

let test_assoc_set_isolation () =
  (* Keys in different sets never evict each other. *)
  let t = Assoc_table.create ~sets:2 ~ways:1 in
  Assoc_table.insert t ~tag:0 0 ();
  Assoc_table.insert t ~tag:0 1 ();
  checkb "both live" true (Assoc_table.probe t 0 <> None && Assoc_table.probe t 1 <> None)

let test_assoc_touch () =
  let t = Assoc_table.create ~sets:2 ~ways:2 in
  checkb "miss inserts" false (Assoc_table.touch t ~tag:0 5 ());
  checkb "hit" true (Assoc_table.touch t ~tag:0 5 ())

let test_assoc_overwrite () =
  let t = Assoc_table.create ~sets:2 ~ways:2 in
  Assoc_table.insert t ~tag:0 5 "a";
  Assoc_table.insert t ~tag:0 5 "b";
  Alcotest.(check (option string)) "overwritten" (Some "b") (Assoc_table.find t 5);
  checki "single entry" 1 (Assoc_table.valid_count t)

let test_assoc_clear () =
  let t = Assoc_table.create ~sets:2 ~ways:2 in
  Assoc_table.insert t ~tag:0 5 ();
  Assoc_table.clear t;
  checki "empty" 0 (Assoc_table.valid_count t)

let test_assoc_rejects_bad_geometry () =
  Alcotest.check_raises "non-pow2"
    (Invalid_argument "Assoc_table.create: sets must be a power of two") (fun () ->
      ignore (Assoc_table.create ~sets:3 ~ways:1))

(* ---------------- Cache ---------------- *)

let test_cache_hit_miss () =
  let c = Cache.create ~name:"t" ~size_bytes:4096 ~ways:2 in
  checkb "cold miss" false (Cache.access c 0x1000);
  checkb "warm hit" true (Cache.access c 0x1000);
  checkb "same line" true (Cache.access c 0x103F);
  checkb "next line misses" false (Cache.access c 0x1040)

let test_cache_capacity_eviction () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:1 in
  (* 16 lines direct mapped; address + 1024 maps to the same set. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 1024);
  checkb "conflict evicted" false (Cache.access c 0)

let test_cache_flush () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:2 in
  ignore (Cache.access c 0);
  Cache.flush c;
  checkb "cold again" false (Cache.access c 0)

(* ---------------- Tlb ---------------- *)

let test_tlb_page_granularity () =
  let t = Tlb.create ~name:"t" ~entries:8 ~ways:2 in
  ignore (Tlb.access t ~asid:0 0x1000);
  checkb "same page hits" true (Tlb.access t ~asid:0 0x1FFF);
  checkb "next page misses" false (Tlb.access t ~asid:0 0x2000)

let test_tlb_capacity () =
  let t = Tlb.create ~name:"t" ~entries:4 ~ways:4 in
  for i = 0 to 3 do
    ignore (Tlb.access t ~asid:0 (i * 4096 * 4))
  done;
  (* All four entries map to set 0 region...: fully assoc when ways=4, sets=1 *)
  ignore (Tlb.access t ~asid:0 (100 * 4096));
  checkb "evicted oldest" false (Tlb.access t ~asid:0 0)

(* ---------------- Btb / Direction / Ras ---------------- *)

let test_btb_predict_update () =
  let b = Btb.create ~sets:16 ~ways:2 in
  checkb "cold" true (Btb.predict b 0x400 = None);
  Btb.update b 0x400 0x500;
  Alcotest.(check (option int)) "trained" (Some 0x500) (Btb.predict b 0x400)

let test_btb_retarget () =
  let b = Btb.create ~sets:16 ~ways:2 in
  Btb.update b 0x400 0x500;
  Btb.update b 0x400 0x600;
  Alcotest.(check (option int)) "retargeted" (Some 0x600) (Btb.predict b 0x400)

let test_direction_learns_bias () =
  let d = Direction.create ~table_bits:10 ~history_bits:0 in
  for _ = 1 to 10 do
    Direction.update d 0x40 true
  done;
  checkb "learned taken" true (Direction.predict d 0x40)

let test_direction_learns_alternating_with_history () =
  let d = Direction.create ~table_bits:12 ~history_bits:4 in
  (* Strictly alternating pattern is learnable with history. *)
  let taken = ref false in
  for _ = 1 to 200 do
    taken := not !taken;
    Direction.update d 0x40 !taken
  done;
  let correct = ref 0 in
  for _ = 1 to 100 do
    taken := not !taken;
    if Direction.predict d 0x40 = !taken then incr correct;
    Direction.update d 0x40 !taken
  done;
  checkb "alternation learned" true (!correct > 90)

let test_ras_lifo () =
  let r = Ras.create ~depth:4 in
  Ras.push r 1;
  Ras.push r 2;
  Alcotest.(check (option int)) "pop 2" (Some 2) (Ras.pop r);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ras.pop r);
  Alcotest.(check (option int)) "empty" None (Ras.pop r)

let test_ras_overflow_wraps () =
  let r = Ras.create ~depth:2 in
  Ras.push r 1;
  Ras.push r 2;
  Ras.push r 3;
  (* 1 overwritten *)
  Alcotest.(check (option int)) "3" (Some 3) (Ras.pop r);
  Alcotest.(check (option int)) "2" (Some 2) (Ras.pop r);
  Alcotest.(check (option int)) "1 lost" None (Ras.pop r)

(* ---------------- Bloom ---------------- *)

let test_bloom_membership () =
  let b = Bloom.create ~bits:1024 ~hashes:2 in
  checkb "empty" false (Bloom.mem b ~asid:0 0x1234);
  Bloom.add b ~asid:0 0x1234;
  checkb "added" true (Bloom.mem b ~asid:0 0x1234)

let test_bloom_clear () =
  let b = Bloom.create ~bits:1024 ~hashes:2 in
  Bloom.add b ~asid:0 0x10;
  Bloom.clear b;
  checkb "cleared" false (Bloom.mem b ~asid:0 0x10);
  checki "no bits" 0 (Bloom.bits_set b)

let test_bloom_fp_rate_reasonable () =
  let b = Bloom.create ~bits:4096 ~hashes:2 in
  for i = 1 to 20 do
    Bloom.add b ~asid:0 (i * 8192)
  done;
  let fp = ref 0 in
  for i = 1000 to 2000 do
    if Bloom.mem b ~asid:0 (i * 7919) then incr fp
  done;
  checkb "few false positives" true (!fp < 10)

let test_bloom_clear_bit () =
  (* The fault injector's SRAM-bit-flip primitive: clearing every bit of
     the field is equivalent to a full clear, and clearing an already-zero
     bit is a no-op on the census. *)
  let b = Bloom.create ~bits:64 ~hashes:2 in
  Bloom.add b ~asid:0 0xdead;
  let set = Bloom.bits_set b in
  checkb "something set" true (set > 0);
  Bloom.clear_bit b 0;
  for i = 0 to 63 do
    Bloom.clear_bit b i
  done;
  checki "all bits cleared" 0 (Bloom.bits_set b);
  checkb "membership gone" false (Bloom.mem b ~asid:0 0xdead);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bloom.clear_bit: index out of range") (fun () ->
      Bloom.clear_bit b 64)

let test_bloom_rejects_bad_args () =
  Alcotest.check_raises "bits"
    (Invalid_argument "Bloom.create: bits must be a positive power of two") (fun () ->
      ignore (Bloom.create ~bits:1000 ~hashes:2))

(* ---------------- Abtb ---------------- *)

let test_abtb_insert_lookup () =
  let a = Abtb.create ~entries:4 () in
  Abtb.insert a ~asid:0 0x100 { Abtb.func = 0x200; got_slot = 0x300 };
  (match Abtb.lookup a 0x100 with
  | Some { Abtb.func; got_slot } ->
      checki "func" 0x200 func;
      checki "slot" 0x300 got_slot
  | None -> Alcotest.fail "missing");
  checkb "other misses" true (Abtb.lookup a 0x101 = None)

let test_abtb_lru_capacity () =
  let a = Abtb.create ~entries:2 () in
  Abtb.insert a ~asid:0 1 { Abtb.func = 1; got_slot = 1 };
  Abtb.insert a ~asid:0 2 { Abtb.func = 2; got_slot = 2 };
  ignore (Abtb.lookup a 1);
  Abtb.insert a ~asid:0 3 { Abtb.func = 3; got_slot = 3 };
  checkb "2 evicted" true (Abtb.lookup a 2 = None);
  checkb "1 retained" true (Abtb.lookup a 1 <> None)

let test_abtb_clear () =
  let a = Abtb.create ~entries:4 () in
  Abtb.insert a ~asid:0 1 { Abtb.func = 1; got_slot = 1 };
  Abtb.clear a;
  checki "empty" 0 (Abtb.valid_count a)

let test_abtb_storage_cost () =
  (* Paper §5.3: 12 bytes per entry; 256 entries < 1.5KB claim is loose,
     exactly 3KB at 12B/entry — we report the exact figure. *)
  let a = Abtb.create ~entries:256 () in
  checki "12B/entry" (256 * 12) (Abtb.storage_bytes a)

let test_abtb_clear_set () =
  (* Quarantine eviction granularity: clearing one set removes exactly its
     occupants and nothing else. *)
  let a = Abtb.create ~ways:1 ~entries:4 () in
  Abtb.insert a ~asid:0 0 { Abtb.func = 10; got_slot = 10 };
  Abtb.insert a ~asid:0 1 { Abtb.func = 11; got_slot = 11 };
  let s0 = Abtb.set_index a 0 and s1 = Abtb.set_index a 1 in
  checkb "direct-mapped: distinct sets" true (s0 <> s1);
  checki "four sets" 4 (Abtb.n_sets a);
  Abtb.clear_set a s0;
  checkb "victim gone" true (Abtb.lookup a 0 = None);
  checkb "other set untouched" true (Abtb.lookup a 1 <> None);
  checki "one survivor" 1 (Abtb.valid_count a);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Assoc_table.clear_set: no such set") (fun () ->
      Abtb.clear_set a 4)

(* ---------------- Counters ---------------- *)

let test_counters_diff () =
  let a = Counters.create () in
  a.Counters.instructions <- 100;
  a.Counters.cycles <- 300;
  let snap = Counters.copy a in
  a.Counters.instructions <- 150;
  a.Counters.cycles <- 450;
  let d = Counters.diff ~after:a ~before:snap in
  checki "instr delta" 50 d.Counters.instructions;
  checki "cycle delta" 150 d.Counters.cycles

let test_counters_pki () =
  let c = Counters.create () in
  c.Counters.instructions <- 2000;
  Alcotest.(check (float 1e-9)) "pki" 5.0 (Counters.pki c 10)

let test_counters_reset () =
  let c = Counters.create () in
  c.Counters.branches <- 5;
  Counters.reset c;
  checki "reset" 0 c.Counters.branches

(* ---------------- Engine ---------------- *)

let plain_event ?load ?store ?branch pc =
  { Event.pc; size = 4; in_plt = false; load; load2 = None; store; branch }

let test_engine_counts_instructions_and_misses () =
  let e = Engine.create Config.small in
  Engine.retire e (plain_event 0x1000);
  Engine.retire e (plain_event 0x1000);
  let c = Engine.counters e in
  checki "two instructions" 2 c.Counters.instructions;
  checki "one icache miss" 1 c.Counters.icache_misses;
  checki "one itlb miss" 1 c.Counters.itlb_misses;
  checkb "cycles include penalties" true (c.Counters.cycles > 2)

let test_engine_data_accesses () =
  let e = Engine.create Config.small in
  Engine.retire e (plain_event ~load:0x8000 0x1000);
  Engine.retire e (plain_event ~store:0x8000 0x1004);
  let c = Engine.counters e in
  checki "one dcache miss (second hits)" 1 c.Counters.dcache_misses;
  checki "one dtlb miss" 1 c.Counters.dtlb_misses

let test_engine_cond_misprediction () =
  let e = Engine.create Config.small in
  (* Initial 2-bit counters are weakly not-taken: a taken branch mispredicts. *)
  Engine.retire e
    (plain_event ~branch:(Event.Cond_branch { target = 0x2000; taken = true }) 0x1000);
  checki "mispredicted" 1 (Engine.counters e).Counters.branch_mispredictions

let test_engine_indirect_learns () =
  let e = Engine.create Config.small in
  let ev = plain_event ~branch:(Event.Jump_indirect { target = 0x2000; slot = 0x30 }) 0x1000 in
  Engine.retire e ev;
  let m1 = (Engine.counters e).Counters.branch_mispredictions in
  Engine.retire e ev;
  let m2 = (Engine.counters e).Counters.branch_mispredictions in
  checki "first mispredicts" 1 m1;
  checki "second predicted" 1 m2

let test_engine_return_uses_ras () =
  let e = Engine.create Config.small in
  (* Call pushes pc+size; matching return is predicted. *)
  Engine.retire e
    (plain_event ~branch:(Event.Call_direct { target = 0x2000; arch_target = 0x2000 }) 0x1000);
  let before = (Engine.counters e).Counters.branch_mispredictions in
  Engine.retire e (plain_event ~branch:(Event.Return { target = 0x1004 }) 0x2000);
  checki "return predicted" before (Engine.counters e).Counters.branch_mispredictions

let test_engine_redirected_call_with_stale_btb_mispredicts () =
  let e = Engine.create Config.small in
  (* A redirected (skipped) call whose BTB does not hold the function is a
     genuine misprediction. *)
  Engine.retire e
    (plain_event ~branch:(Event.Call_direct { target = 0x3000; arch_target = 0x2000 }) 0x1000);
  checki "mispredict" 1 (Engine.counters e).Counters.branch_mispredictions;
  (* Next time the BTB holds the function address: no mispredict. *)
  Engine.retire e
    (plain_event ~branch:(Event.Call_direct { target = 0x3000; arch_target = 0x2000 }) 0x1000);
  checki "then predicted" 1 (Engine.counters e).Counters.branch_mispredictions

let test_engine_direct_call_miss_is_bubble_not_mispredict () =
  let e = Engine.create Config.small in
  Engine.retire e
    (plain_event ~branch:(Event.Call_direct { target = 0x2000; arch_target = 0x2000 }) 0x1000);
  let c = Engine.counters e in
  checki "no mispredict" 0 c.Counters.branch_mispredictions;
  checki "btb fill" 1 c.Counters.btb_misses

let test_engine_btb_external_update () =
  let e = Engine.create Config.small in
  Engine.btb_update e 0x1000 0x5000;
  Alcotest.(check (option int)) "visible" (Some 0x5000) (Engine.btb_predict e 0x1000)

let test_engine_context_switch_flushes_tlbs () =
  let e = Engine.create Config.small in
  Engine.retire e (plain_event 0x1000);
  Engine.context_switch e;
  Engine.retire e (plain_event 0x1000);
  checki "itlb misses twice" 2 (Engine.counters e).Counters.itlb_misses

let test_engine_plt_instructions_counted () =
  let e = Engine.create Config.small in
  Engine.retire e { (plain_event 0x1000) with Event.in_plt = true };
  checki "tramp instr" 1 (Engine.counters e).Counters.tramp_instructions

let test_engine_cycle_arithmetic_exact () =
  (* One plain instruction on a cold machine: 1 base cycle + ITLB walk +
     L1I miss that also misses L2 (memory latency). *)
  let cfg = Config.small in
  let e = Engine.create cfg in
  Engine.retire e (plain_event 0x1000);
  let expected =
    1 + cfg.Config.penalties.tlb_miss + cfg.Config.penalties.l2_miss
  in
  checki "cold fetch cost" expected (Engine.counters e).Counters.cycles;
  (* Same instruction again: everything hits, exactly one cycle. *)
  Engine.retire e (plain_event 0x1000);
  checki "warm fetch cost" (expected + 1) (Engine.counters e).Counters.cycles

let test_engine_l2_absorbs_l1_misses () =
  let cfg = Config.small in
  let e = Engine.create cfg in
  (* Three addresses mapping to the same 2-way L1 set force a conflict
     eviction; the larger L2 keeps all three, so re-access costs only the
     L1-miss (L2-hit) penalty. *)
  let a = 0x10000 in
  let b = a + (4 * 1024) and c = a + (8 * 1024) in
  Engine.retire e (plain_event a);
  Engine.retire e (plain_event b);
  Engine.retire e (plain_event c);
  let before = (Engine.counters e).Counters.cycles in
  Engine.retire e (plain_event a);
  let cost = (Engine.counters e).Counters.cycles - before in
  checki "L2 hit after L1 conflict" (1 + cfg.Config.penalties.l1_miss) cost

(* ---------------- property tests ---------------- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"bloom has no false negatives" ~count:200
      QCheck.(list_of_size (QCheck.Gen.int_range 1 64) (int_range 0 1_000_000))
      (fun addrs ->
        let b = Bloom.create ~bits:4096 ~hashes:3 in
        List.iter (Bloom.add b ~asid:0) addrs;
        List.for_all (Bloom.mem b ~asid:0) addrs);
    QCheck.Test.make ~name:"assoc table holds at most capacity" ~count:200
      QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (int_range 0 1000))
      (fun keys ->
        let t = Assoc_table.create ~sets:4 ~ways:2 in
        List.iter (fun k -> Assoc_table.insert t ~tag:0 k ()) keys;
        Assoc_table.valid_count t <= Assoc_table.capacity t);
    QCheck.Test.make ~name:"most recent key always present" ~count:200
      QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (int_range 0 1000))
      (fun keys ->
        let t = Assoc_table.create ~sets:2 ~ways:2 in
        List.iter (fun k -> Assoc_table.insert t ~tag:0 k ()) keys;
        match List.rev keys with
        | last :: _ -> Assoc_table.probe t last <> None
        | [] -> true);
    QCheck.Test.make ~name:"cache access idempotent on hit" ~count:200
      (QCheck.int_range 0 100_000)
      (fun addr ->
        let c = Cache.create ~name:"t" ~size_bytes:4096 ~ways:4 in
        ignore (Cache.access c addr);
        Cache.access c addr && Cache.access c addr);
    QCheck.Test.make ~name:"ras pop returns last push" ~count:200
      QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_range 0 1_000_000))
      (fun pushes ->
        let r = Ras.create ~depth:16 in
        List.iter (Ras.push r) pushes;
        match List.rev pushes with
        | last :: _ -> Ras.pop r = Some last
        | [] -> true);
  ]

let () =
  Alcotest.run "dlink_uarch"
    [
      ( "assoc_table",
        [
          Alcotest.test_case "hit after insert" `Quick test_assoc_hit_after_insert;
          Alcotest.test_case "LRU eviction" `Quick test_assoc_lru_eviction_order;
          Alcotest.test_case "probe no refresh" `Quick test_assoc_probe_does_not_refresh;
          Alcotest.test_case "set isolation" `Quick test_assoc_set_isolation;
          Alcotest.test_case "touch" `Quick test_assoc_touch;
          Alcotest.test_case "overwrite" `Quick test_assoc_overwrite;
          Alcotest.test_case "clear" `Quick test_assoc_clear;
          Alcotest.test_case "bad geometry" `Quick test_assoc_rejects_bad_geometry;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "conflict eviction" `Quick test_cache_capacity_eviction;
          Alcotest.test_case "flush" `Quick test_cache_flush;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "page granularity" `Quick test_tlb_page_granularity;
          Alcotest.test_case "capacity" `Quick test_tlb_capacity;
        ] );
      ( "predictors",
        [
          Alcotest.test_case "btb predict/update" `Quick test_btb_predict_update;
          Alcotest.test_case "btb retarget" `Quick test_btb_retarget;
          Alcotest.test_case "direction bias" `Quick test_direction_learns_bias;
          Alcotest.test_case "direction alternation" `Quick
            test_direction_learns_alternating_with_history;
          Alcotest.test_case "ras lifo" `Quick test_ras_lifo;
          Alcotest.test_case "ras overflow" `Quick test_ras_overflow_wraps;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "membership" `Quick test_bloom_membership;
          Alcotest.test_case "clear" `Quick test_bloom_clear;
          Alcotest.test_case "fp rate" `Quick test_bloom_fp_rate_reasonable;
          Alcotest.test_case "clear bit" `Quick test_bloom_clear_bit;
          Alcotest.test_case "bad args" `Quick test_bloom_rejects_bad_args;
        ] );
      ( "abtb",
        [
          Alcotest.test_case "insert/lookup" `Quick test_abtb_insert_lookup;
          Alcotest.test_case "LRU capacity" `Quick test_abtb_lru_capacity;
          Alcotest.test_case "clear" `Quick test_abtb_clear;
          Alcotest.test_case "clear set" `Quick test_abtb_clear_set;
          Alcotest.test_case "storage cost" `Quick test_abtb_storage_cost;
        ] );
      ( "counters",
        [
          Alcotest.test_case "diff" `Quick test_counters_diff;
          Alcotest.test_case "pki" `Quick test_counters_pki;
          Alcotest.test_case "reset" `Quick test_counters_reset;
        ] );
      ( "engine",
        [
          Alcotest.test_case "instr and fetch misses" `Quick
            test_engine_counts_instructions_and_misses;
          Alcotest.test_case "data accesses" `Quick test_engine_data_accesses;
          Alcotest.test_case "cond misprediction" `Quick test_engine_cond_misprediction;
          Alcotest.test_case "indirect learns" `Quick test_engine_indirect_learns;
          Alcotest.test_case "return uses RAS" `Quick test_engine_return_uses_ras;
          Alcotest.test_case "stale-BTB skip mispredicts" `Quick
            test_engine_redirected_call_with_stale_btb_mispredicts;
          Alcotest.test_case "direct miss is bubble" `Quick
            test_engine_direct_call_miss_is_bubble_not_mispredict;
          Alcotest.test_case "external BTB update" `Quick test_engine_btb_external_update;
          Alcotest.test_case "context switch flushes TLBs" `Quick
            test_engine_context_switch_flushes_tlbs;
          Alcotest.test_case "plt instructions counted" `Quick
            test_engine_plt_instructions_counted;
          Alcotest.test_case "cycle arithmetic exact" `Quick
            test_engine_cycle_arithmetic_exact;
          Alcotest.test_case "L2 absorbs L1 misses" `Quick
            test_engine_l2_absorbs_l1_misses;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
