(* Parameterized equivalence matrix for the unified pipeline kernel.

   The kernel (lib/pipeline) is parameterized over an event source — live
   workload generation vs a packed-trace cursor — and a topology — a
   single-process machine vs the ASID-tagged multi-core scheduler.  Each
   cell of this matrix runs the generate-mode driver and the replay
   driver for one topology and asserts every observable (counters,
   binding profiles, latencies, switches) is bit-identical.  Together the
   cells cover all four former execution paths (Experiment.run,
   Trace.Replay, Sched.Scheduler, Trace.Sched_replay) with one
   parameterized suite, replacing the per-path golden tests that
   predated the unification. *)

module Counters = Dlink_uarch.Counters
module Sim = Dlink_core.Sim
module Skip = Dlink_pipeline.Skip
module Experiment = Dlink_core.Experiment
module Registry = Dlink_workloads.Registry
module Scheduler = Dlink_sched.Scheduler
module Policy = Dlink_sched.Policy
module Quantum_sweep = Dlink_sched.Quantum_sweep
module Tcache = Dlink_trace.Cache
module Replay = Dlink_trace.Replay
module Sched_replay = Dlink_trace.Sched_replay

let wl name =
  match Registry.find name with
  | Some f -> f ()
  | None -> Alcotest.failf "unknown workload %s" name

let mode_name = function
  | Sim.Base -> "base"
  | Sim.Enhanced -> "enhanced"
  | Sim.Eager -> "eager"
  | Sim.Static -> "static"
  | Sim.Patched -> "patched"
  | Sim.Stable -> "stable"

let all_modes =
  [ Sim.Base; Sim.Enhanced; Sim.Eager; Sim.Static; Sim.Patched; Sim.Stable ]

let check_counters msg (a : Counters.t) (b : Counters.t) =
  if a <> b then
    Alcotest.failf "%s: counters differ@.generate: %a@.replay:   %a" msg
      Counters.pp a Counters.pp b

(* Everything in an [Experiment.run] except host wall-clock throughput
   must be bit-identical between the two event sources. *)
let check_run msg (a : Experiment.run) (b : Experiment.run) =
  let open Experiment in
  check_counters msg a.counters b.counters;
  Alcotest.(check string) (msg ^ ": workload") a.workload_name b.workload_name;
  Alcotest.(check int) (msg ^ ": requests") a.requests b.requests;
  Alcotest.(check int) (msg ^ ": tramp_calls") a.tramp_calls b.tramp_calls;
  Alcotest.(check int)
    (msg ^ ": distinct_trampolines")
    a.distinct_trampolines b.distinct_trampolines;
  Alcotest.(check bool)
    (msg ^ ": rank_frequency")
    true
    (a.rank_frequency = b.rank_frequency);
  Alcotest.(check bool)
    (msg ^ ": tramp_stream")
    true
    (a.tramp_stream = b.tramp_stream);
  Alcotest.(check bool)
    (msg ^ ": latencies_us")
    true
    (a.latencies_us = b.latencies_us)

(* --- single-process topology: Experiment.run vs Trace.Replay ----------- *)

(* One matrix cell: the same configuration driven once from the live
   workload generator and once from the packed-trace cursor. *)
let single_cell ?skip_cfg ?context_switch_every ?retain_asid ~mode msg w =
  let gen =
    Experiment.run ?skip_cfg ?context_switch_every ?retain_asid ~requests:40
      ~warmup:6 ~record_stream:true ~mode w
  in
  let rep =
    Replay.run ?skip_cfg ?context_switch_every ?retain_asid ~requests:40
      ~warmup:6 ~record_stream:true ~mode w
  in
  check_run msg gen rep

let test_single name () =
  Tcache.clear ();
  let w = wl name in
  List.iter
    (fun mode -> single_cell ~mode (Printf.sprintf "%s/%s" name (mode_name mode)) w)
    all_modes

(* Configuration variants exercise the kernel's instrumentation points:
   context switches (flush vs ASID retention), Bloom granularity and
   coherence modes, and a tiny set-associative ABTB. *)
let test_single_variants () =
  Tcache.clear ();
  let w = wl "synth" in
  single_cell ~context_switch_every:7 ~mode:Sim.Enhanced "switch/flush" w;
  single_cell ~context_switch_every:7 ~retain_asid:true ~mode:Sim.Enhanced
    "switch/retain" w;
  single_cell ~context_switch_every:5 ~mode:Sim.Base "switch/base" w;
  single_cell
    ~skip_cfg:
      {
        Skip.default_config with
        bloom_granularity = Skip.Slot;
        bloom_bits = 4096;
      }
    ~mode:Sim.Enhanced "slot-granularity bloom" w;
  single_cell
    ~skip_cfg:{ Skip.default_config with coherence = Skip.Explicit_invalidate }
    ~mode:Sim.Enhanced "explicit invalidate" w;
  single_cell
    ~skip_cfg:{ Skip.default_config with abtb_entries = 8; abtb_ways = Some 2 }
    ~mode:Sim.Enhanced "tiny set-associative abtb" w

let test_single_fallback () =
  Tcache.clear ();
  let w = wl "synth" in
  let cfg = { Skip.default_config with verify_targets = true } in
  Alcotest.(check bool)
    "verify_targets is not replayable" false
    (Replay.compatible ~skip_cfg:cfg ~mode:Sim.Enhanced ());
  Alcotest.(check bool)
    "no-filter-fallthrough is not replayable" false
    (Replay.compatible
       ~skip_cfg:{ Skip.default_config with filter_fallthrough = false }
       ~mode:Sim.Enhanced ());
  Alcotest.(check bool)
    "base always replayable" true
    (Replay.compatible ~skip_cfg:cfg ~mode:Sim.Base ());
  (* The fallback path must forward every parameter to Experiment.run. *)
  let gen =
    Experiment.run ~skip_cfg:cfg ~requests:30 ~warmup:4 ~mode:Sim.Enhanced w
  in
  let rep =
    Replay.run ~skip_cfg:cfg ~requests:30 ~warmup:4 ~mode:Sim.Enhanced w
  in
  check_run "fallback" gen rep;
  (match
     Replay.run ~skip_cfg:cfg ~aslr_seed:3 ~requests:10 ~mode:Sim.Enhanced w
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "aslr_seed with incompatible config should raise");
  (* ASLR-randomized replay is deterministic per seed. *)
  let a = Replay.run ~aslr_seed:11 ~requests:20 ~warmup:2 ~mode:Sim.Enhanced w in
  let b = Replay.run ~aslr_seed:11 ~requests:20 ~warmup:2 ~mode:Sim.Enhanced w in
  check_run "aslr determinism" a b;
  Alcotest.(check int) "aslr run length" 20 a.Experiment.requests

(* --- multi-core topology: Sched.Scheduler vs Trace.Sched_replay -------- *)

let multi_workloads () = [ wl "apache"; wl "memcached"; wl "synth" ]

let test_multi policy () =
  Tcache.clear ();
  let ws = multi_workloads () in
  let msg what = Printf.sprintf "%s under %s" what (Policy.to_string policy) in
  let sched = Scheduler.create ~requests:24 ~policy ~quantum:5 ~cores:2 ws in
  Scheduler.run sched;
  let pairs =
    List.map
      (fun w -> (w, Tcache.get ~warmup:0 ~requests:24 ~mode:Sim.Enhanced w))
      ws
  in
  let r = Sched_replay.run ~requests:24 ~policy ~quantum:5 ~cores:2 pairs in
  check_counters (msg "system counters")
    (Scheduler.system_counters sched)
    r.Sched_replay.system;
  Alcotest.(check int)
    (msg "switches")
    (Scheduler.switches sched)
    r.Sched_replay.switches;
  List.iter2
    (fun proc (pname, pc, lats) ->
      Alcotest.(check string) (msg "proc name") (Scheduler.name proc) pname;
      check_counters (msg ("proc " ^ pname)) (Scheduler.proc_counters proc) pc;
      Alcotest.(check bool)
        (msg ("latencies " ^ pname))
        true
        (Scheduler.latencies_us proc = lats))
    (Scheduler.procs sched) r.Sched_replay.per_proc

let test_multi_sweep () =
  Tcache.clear ();
  let ws = [ wl "synth"; wl "memcached" ] in
  let quanta = [ 2; 6 ] in
  let real =
    Quantum_sweep.sweep ~requests:20 ~cores:2 ~quanta ~policies:Policy.all ws
  in
  let rep =
    Sched_replay.sweep ~requests:20 ~cores:2 ~quanta ~policies:Policy.all ws
  in
  Alcotest.(check int) "points" (List.length real) (List.length rep);
  List.iter2
    (fun (a : Quantum_sweep.point) (b : Quantum_sweep.point) ->
      if a <> b then
        Alcotest.failf "sweep point differs at quantum %d / %s" a.quantum
          (Policy.to_string a.policy))
    real rep

let () =
  Alcotest.run "pipeline"
    [
      ( "single topology",
        List.map
          (fun name ->
            Alcotest.test_case ("generate=replay " ^ name) `Quick
              (test_single name))
          Registry.names
        @ [
            Alcotest.test_case "variants" `Quick test_single_variants;
            Alcotest.test_case "fallback" `Quick test_single_fallback;
          ] );
      ( "multi topology",
        List.map
          (fun p ->
            Alcotest.test_case
              ("generate=replay " ^ Policy.to_string p)
              `Quick (test_multi p))
          Policy.all
        @ [ Alcotest.test_case "quantum sweep" `Quick test_multi_sweep ] );
    ]
