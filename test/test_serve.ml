(* Serving-stack tests: arrival processes, the bounded admission queue,
   open-loop cells (generate vs replay bit-identity, determinism), the
   multi-core open-loop topology, and the kernel's request-boundary tap. *)

module Rng = Dlink_util.Rng
module Arrival = Dlink_util.Arrival
module Latency = Dlink_stats.Latency
module Sim = Dlink_core.Sim
module Serve = Dlink_core.Serve
module Workload = Dlink_core.Workload
module Registry = Dlink_workloads.Registry
module Scheduler = Dlink_sched.Scheduler
module Policy = Dlink_sched.Policy
module Kernel = Dlink_pipeline.Kernel
module Tcache = Dlink_trace.Cache
module Serve_replay = Dlink_trace.Serve_replay

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let wl name =
  match Registry.find name with
  | Some f -> f ()
  | None -> Alcotest.failf "unknown workload %s" name

(* ---------------- arrivals ---------------- *)

let test_arrival_deterministic () =
  List.iter
    (fun p ->
      let a = Arrival.times ~seed:7 ~mean_gap:100.0 ~n:500 p in
      let b = Arrival.times ~seed:7 ~mean_gap:100.0 ~n:500 p in
      checkb (Arrival.to_string p ^ " same seed same times") true (a = b);
      let c = Arrival.times ~seed:8 ~mean_gap:100.0 ~n:500 p in
      checkb (Arrival.to_string p ^ " different seed differs") true (a <> c))
    [ Arrival.Poisson; Arrival.default_mmpp ]

let test_arrival_sorted_nonneg () =
  List.iter
    (fun p ->
      let a = Arrival.times ~seed:3 ~mean_gap:50.0 ~n:2000 p in
      checki "length" 2000 (Array.length a);
      Array.iteri
        (fun i x ->
          checkb "non-negative" true (x >= 0);
          if i > 0 then checkb "sorted" true (x >= a.(i - 1)))
        a)
    [ Arrival.Poisson; Arrival.default_mmpp ]

let test_arrival_mean_gap () =
  List.iter
    (fun p ->
      let n = 20_000 in
      let a = Arrival.times ~seed:11 ~mean_gap:200.0 ~n p in
      let mean = float_of_int a.(n - 1) /. float_of_int n in
      checkb
        (Printf.sprintf "%s long-run mean gap ~200 (got %.1f)"
           (Arrival.to_string p) mean)
        true
        (abs_float (mean -. 200.0) < 20.0))
    [ Arrival.Poisson; Arrival.default_mmpp ]

let test_arrival_rejects_bad () =
  checkb "bad name" true (Arrival.of_string "uniform" = None);
  (match Arrival.times ~seed:1 ~mean_gap:0.0 ~n:3 Arrival.Poisson with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mean_gap 0 should raise");
  match Arrival.times ~seed:1 ~mean_gap:Float.nan ~n:3 Arrival.Poisson with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan mean_gap should raise"

(* ---------------- queue engine ---------------- *)

(* Constant service against a hand-computable arrival pattern. *)
let test_queue_hand_example () =
  (* service 10; arrivals at 0,2,4,100: three back-to-back, then idle. *)
  let qs =
    Serve.simulate_queue ~arrivals:[| 0; 2; 4; 100 |] ~queue_cap:8
      ~service:(fun ~nth:_ ~req:_ -> 10)
  in
  checki "served" 4 qs.Serve.q_served;
  checki "dropped" 0 qs.Serve.q_dropped;
  checkb "latencies" true (qs.Serve.q_lat_cycles = [| 10; 18; 26; 10 |]);
  checkb "waits" true (qs.Serve.q_wait_cycles = [| 0; 8; 16; 0 |]);
  checki "busy" 40 qs.Serve.q_busy;
  checki "span" 110 qs.Serve.q_span

let test_queue_drops_when_full () =
  (* cap 1: while request 0 is in service (0..100), arrivals 1,2,3 come;
     1 queues, 2 and 3 find the queue full and drop. *)
  let qs =
    Serve.simulate_queue ~arrivals:[| 0; 10; 20; 30 |] ~queue_cap:1
      ~service:(fun ~nth:_ ~req:_ -> 100)
  in
  checki "served" 2 qs.Serve.q_served;
  checki "dropped" 2 qs.Serve.q_dropped;
  checkb "served reqs" true (qs.Serve.q_reqs = [| 0; 1 |])

let test_queue_wait_plus_service () =
  let rng = Rng.create 5 in
  let arr = Arrival.times ~seed:9 ~mean_gap:30.0 ~n:300 Arrival.Poisson in
  let services = Array.init 300 (fun _ -> 1 + Rng.int rng 60) in
  let qs =
    Serve.simulate_queue ~arrivals:arr ~queue_cap:16
      ~service:(fun ~nth:_ ~req -> services.(req))
  in
  checki "conservation" 300 (qs.Serve.q_served + qs.Serve.q_dropped);
  Array.iteri
    (fun i r ->
      checki "lat = wait + service"
        (qs.Serve.q_wait_cycles.(i) + services.(r))
        qs.Serve.q_lat_cycles.(i))
    qs.Serve.q_reqs

(* ---------------- cells: generate vs replay, determinism ------------- *)

let mk_cfg ?(mode = Sim.Enhanced) ?(load = 0.9) ?(flush = Serve.No_flush)
    ?(arrival = Arrival.Poisson) () =
  {
    Serve.mode;
    load;
    arrival;
    flush;
    flush_every = 7;
    requests = 60;
    queue_cap = 8;
    seed = 5;
  }

let test_cell_generate_replay_identical () =
  Tcache.clear ();
  let w = wl "synth" in
  let mean_service = Serve.calibrate_generate ~requests:60 w in
  checki "calibrations agree" mean_service
    (Serve_replay.calibrate ~requests:60 w);
  List.iter
    (fun (mode, flush, arrival) ->
      let cfg = mk_cfg ~mode ~flush ~arrival () in
      let g = Serve.run_cell_generate ~mean_service ~cfg w in
      let r = Serve_replay.run_cell ~mean_service ~cfg w in
      let msg =
        Printf.sprintf "%s/%s/%s" (Sim.mode_to_string mode)
          (Serve.flush_to_string flush)
          (Arrival.to_string arrival)
      in
      checkb (msg ^ ": lat_cycles bit-identical") true
        (g.Serve.lat_cycles = r.Serve.lat_cycles);
      checki (msg ^ ": served") g.Serve.served r.Serve.served;
      checki (msg ^ ": dropped") g.Serve.dropped r.Serve.dropped;
      checkb (msg ^ ": counters") true (g.Serve.counters = r.Serve.counters);
      checkb (msg ^ ": p99 identical") true (g.Serve.p99_us = r.Serve.p99_us))
    [
      (Sim.Base, Serve.No_flush, Arrival.Poisson);
      (Sim.Enhanced, Serve.No_flush, Arrival.Poisson);
      (Sim.Enhanced, Serve.Flush, Arrival.default_mmpp);
      (Sim.Eager, Serve.Asid, Arrival.Poisson);
      (Sim.Stable, Serve.No_flush, Arrival.default_mmpp);
    ]

let test_cell_deterministic () =
  Tcache.clear ();
  let w = wl "synth" in
  let cfg = mk_cfg () in
  let a = Serve_replay.run_cell ~cfg w in
  let b = Serve_replay.run_cell ~cfg w in
  checkb "same seed, identical latency vector" true
    (a.Serve.lat_cycles = b.Serve.lat_cycles);
  let c = Serve_replay.run_cell ~cfg:{ cfg with Serve.seed = 6 } w in
  checkb "different seed, different arrivals" true
    (a.Serve.lat_cycles <> c.Serve.lat_cycles)

let test_cell_saturation_and_validation () =
  Tcache.clear ();
  let w = wl "synth" in
  (* Far past saturation with a tiny queue: drops must appear, and the
     queue bound caps waiting, so latency stays below cap * max service. *)
  let cfg =
    { (mk_cfg ~load:3.0 ()) with Serve.queue_cap = 2; requests = 80 }
  in
  let c = Serve_replay.run_cell ~cfg w in
  checkb "overload drops" true (c.Serve.dropped > 0);
  checki "conservation" 80 (c.Serve.served + c.Serve.dropped);
  checkb "util near 1" true (c.Serve.util > 0.8);
  (match Serve.run_cell_generate ~cfg:{ cfg with Serve.load = 0.0 } w with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "load 0 should raise");
  match Serve.run_cell_generate ~cfg:{ cfg with Serve.queue_cap = 0 } w with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "queue_cap 0 should raise"

let test_sweep_jobs_deterministic () =
  Tcache.clear ();
  let w = wl "synth" in
  let cfg = { Serve.default_config with Serve.requests = 40; seed = 9 } in
  let loads = [ 0.7; 1.1 ] in
  let modes = [ Sim.Base; Sim.Enhanced ] in
  let flushes = [ Serve.No_flush; Serve.Flush ] in
  let seq = Serve_replay.sweep ~jobs:1 ~cfg ~loads ~modes ~flushes w in
  let par = Serve_replay.sweep ~jobs:4 ~cfg ~loads ~modes ~flushes w in
  checki "cells" 8 (List.length seq);
  List.iter2
    (fun (a : Serve.cell) (b : Serve.cell) ->
      checkb "sweep order and latencies independent of jobs" true
        (Serve.cell_label a = Serve.cell_label b
        && a.Serve.lat_cycles = b.Serve.lat_cycles))
    seq par

(* ---------------- boundary tap ---------------- *)

let test_boundary_tap_counts () =
  Tcache.clear ();
  let w = wl "synth" in
  let count = ref 0 and rtypes = ref [] in
  let cfg = mk_cfg () in
  let mean_service = Serve.calibrate_generate ~requests:60 w in
  (* The generate driver announces warmup + served requests with their
     request-type ids through the kernel tap.  We can't pre-install the
     tap on a driver-owned kernel, so go through Sim directly. *)
  let sim =
    Sim.create ~func_align:w.Workload.func_align ~mode:Sim.Enhanced
      w.Workload.objs
  in
  Kernel.set_boundary_tap (Sim.kernel sim)
    (Some
       (fun ~rtype ->
         incr count;
         rtypes := rtype :: !rtypes));
  let n_rt = Array.length w.Workload.request_type_names in
  for i = 0 to 9 do
    let rq = w.Workload.gen_request i in
    Kernel.note_boundary (Sim.kernel sim) ~rtype:rq.Workload.rtype;
    Sim.call sim ~mname:rq.Workload.mname ~fname:rq.Workload.fname
  done;
  checki "one boundary per request" 10 !count;
  List.iter
    (fun rt -> checkb "rtype in range" true (rt >= 0 && rt < n_rt))
    !rtypes;
  ignore mean_service;
  ignore cfg

(* ---------------- multi-core open loop ---------------- *)

let test_multi_open_loop () =
  let ws = [ wl "synth"; wl "memcached" ] in
  let requests = 30 in
  let sched =
    Scheduler.create ~requests ~policy:Policy.Asid ~quantum:4 ~cores:2 ws
  in
  let arr0 = Arrival.times ~seed:1 ~mean_gap:2000.0 ~n:requests Arrival.Poisson in
  let arr1 =
    Arrival.times ~seed:2 ~mean_gap:3000.0 ~n:requests Arrival.default_mmpp
  in
  Scheduler.set_open_loop sched ~pid:0 ~arrivals:arr0 ~queue_cap:4;
  Scheduler.set_open_loop sched ~pid:1 ~arrivals:arr1 ~queue_cap:4;
  Scheduler.run sched;
  checkb "finished" true (Scheduler.finished sched);
  List.iter
    (fun p ->
      let lats = Scheduler.latencies_cycles p in
      checki "served + dropped = requests" requests
        (Array.length lats + Scheduler.drops p);
      Array.iter (fun l -> checkb "latency positive" true (l > 0)) lats)
    (Scheduler.procs sched)

let test_multi_open_loop_deterministic () =
  let run () =
    let ws = [ wl "synth" ] in
    let sched =
      Scheduler.create ~requests:25 ~policy:Policy.Flush ~quantum:3 ~cores:1 ws
    in
    let arr = Arrival.times ~seed:4 ~mean_gap:1500.0 ~n:25 Arrival.Poisson in
    Scheduler.set_open_loop sched ~pid:0 ~arrivals:arr ~queue_cap:3;
    Scheduler.run sched;
    Scheduler.latencies_cycles (Scheduler.proc sched 0)
  in
  checkb "same config, identical open-loop latencies" true (run () = run ())

let test_multi_open_loop_rejects_bad () =
  let sched =
    Scheduler.create ~requests:10 ~policy:Policy.Asid ~quantum:2 ~cores:1
      [ wl "synth" ]
  in
  (match
     Scheduler.set_open_loop sched ~pid:0 ~arrivals:[| 0; 1 |] ~queue_cap:4
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch should raise");
  (match
     Scheduler.set_open_loop sched ~pid:0 ~arrivals:(Array.make 10 0)
       ~queue_cap:0
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "queue_cap 0 should raise");
  match
    Scheduler.set_open_loop sched ~pid:0 ~arrivals:[| 5; 3; 1; 0; 0; 0; 0; 0; 0; 0 |]
      ~queue_cap:4
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsorted arrivals should raise"

let () =
  Alcotest.run "serve"
    [
      ( "arrivals",
        [
          Alcotest.test_case "deterministic" `Quick test_arrival_deterministic;
          Alcotest.test_case "sorted non-negative" `Quick
            test_arrival_sorted_nonneg;
          Alcotest.test_case "mean gap" `Slow test_arrival_mean_gap;
          Alcotest.test_case "rejects bad specs" `Quick test_arrival_rejects_bad;
        ] );
      ( "queue",
        [
          Alcotest.test_case "hand example" `Quick test_queue_hand_example;
          Alcotest.test_case "drops when full" `Quick test_queue_drops_when_full;
          Alcotest.test_case "wait + service" `Quick test_queue_wait_plus_service;
        ] );
      ( "cells",
        [
          Alcotest.test_case "generate = replay" `Quick
            test_cell_generate_replay_identical;
          Alcotest.test_case "deterministic" `Quick test_cell_deterministic;
          Alcotest.test_case "saturation + validation" `Quick
            test_cell_saturation_and_validation;
          Alcotest.test_case "sweep jobs-independent" `Quick
            test_sweep_jobs_deterministic;
        ] );
      ( "boundaries",
        [ Alcotest.test_case "tap counts" `Quick test_boundary_tap_counts ] );
      ( "multi open loop",
        [
          Alcotest.test_case "serves with drops" `Quick test_multi_open_loop;
          Alcotest.test_case "deterministic" `Quick
            test_multi_open_loop_deterministic;
          Alcotest.test_case "rejects bad args" `Quick
            test_multi_open_loop_rejects_bad;
        ] );
    ]
