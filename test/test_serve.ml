(* Serving-stack tests: arrival processes (open and closed loop), the
   bounded admission queue and its push-based streaming mirror, cells
   (generate vs replay vs streaming bit-identity, snapshot-segmented
   parallel replay, determinism), the multi-core open-loop topology, and
   the kernel's request-boundary tap. *)

module Rng = Dlink_util.Rng
module Arrival = Dlink_util.Arrival
module Latency = Dlink_stats.Latency
module Counters = Dlink_uarch.Counters
module Sim = Dlink_core.Sim
module Serve = Dlink_core.Serve
module Workload = Dlink_core.Workload
module Registry = Dlink_workloads.Registry
module Scheduler = Dlink_sched.Scheduler
module Policy = Dlink_sched.Policy
module Kernel = Dlink_pipeline.Kernel
module Tcache = Dlink_trace.Cache
module Replay = Dlink_trace.Replay
module Segmented = Dlink_trace.Segmented
module Serve_replay = Dlink_trace.Serve_replay

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let wl name =
  match Registry.find name with
  | Some f -> f ()
  | None -> Alcotest.failf "unknown workload %s" name

(* ---------------- arrivals ---------------- *)

let test_arrival_deterministic () =
  List.iter
    (fun p ->
      let a = Arrival.times ~seed:7 ~mean_gap:100.0 ~n:500 p in
      let b = Arrival.times ~seed:7 ~mean_gap:100.0 ~n:500 p in
      checkb (Arrival.to_string p ^ " same seed same times") true (a = b);
      let c = Arrival.times ~seed:8 ~mean_gap:100.0 ~n:500 p in
      checkb (Arrival.to_string p ^ " different seed differs") true (a <> c))
    [ Arrival.Poisson; Arrival.default_mmpp ]

let test_arrival_sorted_nonneg () =
  List.iter
    (fun p ->
      let a = Arrival.times ~seed:3 ~mean_gap:50.0 ~n:2000 p in
      checki "length" 2000 (Array.length a);
      Array.iteri
        (fun i x ->
          checkb "non-negative" true (x >= 0);
          if i > 0 then checkb "sorted" true (x >= a.(i - 1)))
        a)
    [ Arrival.Poisson; Arrival.default_mmpp ]

let test_arrival_mean_gap () =
  List.iter
    (fun p ->
      let n = 20_000 in
      let a = Arrival.times ~seed:11 ~mean_gap:200.0 ~n p in
      let mean = float_of_int a.(n - 1) /. float_of_int n in
      checkb
        (Printf.sprintf "%s long-run mean gap ~200 (got %.1f)"
           (Arrival.to_string p) mean)
        true
        (abs_float (mean -. 200.0) < 20.0))
    [ Arrival.Poisson; Arrival.default_mmpp ]

let test_arrival_rejects_bad () =
  checkb "bad name" true (Arrival.of_string "uniform" = None);
  (match Arrival.times ~seed:1 ~mean_gap:0.0 ~n:3 Arrival.Poisson with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mean_gap 0 should raise");
  match Arrival.times ~seed:1 ~mean_gap:Float.nan ~n:3 Arrival.Poisson with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan mean_gap should raise"

let test_closed_arrival_spec () =
  (match Arrival.of_string "closed:32" with
  | Some (Arrival.Closed { clients = 32 }) -> ()
  | _ -> Alcotest.fail "closed:32 should parse");
  checkb "round-trips" true
    (Arrival.of_string (Arrival.to_string (Arrival.Closed { clients = 7 }))
    = Some (Arrival.Closed { clients = 7 }));
  checkb "closed:0 rejected" true (Arrival.of_string "closed:0" = None);
  checkb "closed:-3 rejected" true (Arrival.of_string "closed:-3" = None);
  checkb "closed:x rejected" true (Arrival.of_string "closed:x" = None);
  (* Closed arrivals are coupled to completions: only the streaming queue
     engine can generate them, never the standalone arrival API. *)
  (match
     Arrival.times ~seed:1 ~mean_gap:10.0 ~n:5 (Arrival.Closed { clients = 4 })
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "times on closed should raise");
  match Arrival.gen ~seed:1 ~mean_gap:10.0 (Arrival.Closed { clients = 4 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gen on closed should raise"

(* ---------------- queue engine ---------------- *)

(* Constant service against a hand-computable arrival pattern. *)
let test_queue_hand_example () =
  (* service 10; arrivals at 0,2,4,100: three back-to-back, then idle. *)
  let qs =
    Serve.simulate_queue ~arrivals:[| 0; 2; 4; 100 |] ~queue_cap:8
      ~service:(fun ~nth:_ ~req:_ -> 10)
  in
  checki "served" 4 qs.Serve.q_served;
  checki "dropped" 0 qs.Serve.q_dropped;
  checkb "latencies" true (qs.Serve.q_lat_cycles = [| 10; 18; 26; 10 |]);
  checkb "waits" true (qs.Serve.q_wait_cycles = [| 0; 8; 16; 0 |]);
  checki "busy" 40 qs.Serve.q_busy;
  checki "span" 110 qs.Serve.q_span

let test_queue_drops_when_full () =
  (* cap 1: while request 0 is in service (0..100), arrivals 1,2,3 come;
     1 queues, 2 and 3 find the queue full and drop. *)
  let qs =
    Serve.simulate_queue ~arrivals:[| 0; 10; 20; 30 |] ~queue_cap:1
      ~service:(fun ~nth:_ ~req:_ -> 100)
  in
  checki "served" 2 qs.Serve.q_served;
  checki "dropped" 2 qs.Serve.q_dropped;
  checkb "served reqs" true (qs.Serve.q_reqs = [| 0; 1 |])

let test_queue_wait_plus_service () =
  let rng = Rng.create 5 in
  let arr = Arrival.times ~seed:9 ~mean_gap:30.0 ~n:300 Arrival.Poisson in
  let services = Array.init 300 (fun _ -> 1 + Rng.int rng 60) in
  let qs =
    Serve.simulate_queue ~arrivals:arr ~queue_cap:16
      ~service:(fun ~nth:_ ~req -> services.(req))
  in
  checki "conservation" 300 (qs.Serve.q_served + qs.Serve.q_dropped);
  Array.iteri
    (fun i r ->
      checki "lat = wait + service"
        (qs.Serve.q_wait_cycles.(i) + services.(r))
        qs.Serve.q_lat_cycles.(i))
    qs.Serve.q_reqs

(* ---------------- cells: generate vs replay, determinism ------------- *)

let mk_cfg ?(mode = Sim.Enhanced) ?(load = 0.9) ?(flush = Serve.No_flush)
    ?(arrival = Arrival.Poisson) () =
  {
    Serve.mode;
    load;
    arrival;
    flush;
    flush_every = 7;
    requests = 60;
    queue_cap = 8;
    seed = 5;
  }

let test_cell_generate_replay_identical () =
  Tcache.clear ();
  let w = wl "synth" in
  let mean_service = Serve.calibrate_generate ~requests:60 w in
  checki "calibrations agree" mean_service
    (Serve_replay.calibrate ~requests:60 w);
  List.iter
    (fun (mode, flush, arrival) ->
      let cfg = mk_cfg ~mode ~flush ~arrival () in
      let g = Serve.run_cell_generate ~mean_service ~cfg w in
      let r = Serve_replay.run_cell ~mean_service ~cfg w in
      let msg =
        Printf.sprintf "%s/%s/%s" (Sim.mode_to_string mode)
          (Serve.flush_to_string flush)
          (Arrival.to_string arrival)
      in
      checkb (msg ^ ": lat_cycles bit-identical") true
        (g.Serve.lat_cycles = r.Serve.lat_cycles);
      checki (msg ^ ": served") g.Serve.served r.Serve.served;
      checki (msg ^ ": dropped") g.Serve.dropped r.Serve.dropped;
      checkb (msg ^ ": counters") true (g.Serve.counters = r.Serve.counters);
      checkb (msg ^ ": p99 identical") true (g.Serve.p99_us = r.Serve.p99_us))
    [
      (Sim.Base, Serve.No_flush, Arrival.Poisson);
      (Sim.Enhanced, Serve.No_flush, Arrival.Poisson);
      (Sim.Enhanced, Serve.Flush, Arrival.default_mmpp);
      (Sim.Eager, Serve.Asid, Arrival.Poisson);
      (Sim.Stable, Serve.No_flush, Arrival.default_mmpp);
    ]

let test_cell_deterministic () =
  Tcache.clear ();
  let w = wl "synth" in
  let cfg = mk_cfg () in
  let a = Serve_replay.run_cell ~cfg w in
  let b = Serve_replay.run_cell ~cfg w in
  checkb "same seed, identical latency vector" true
    (a.Serve.lat_cycles = b.Serve.lat_cycles);
  let c = Serve_replay.run_cell ~cfg:{ cfg with Serve.seed = 6 } w in
  checkb "different seed, different arrivals" true
    (a.Serve.lat_cycles <> c.Serve.lat_cycles)

let test_cell_saturation_and_validation () =
  Tcache.clear ();
  let w = wl "synth" in
  (* Far past saturation with a tiny queue: drops must appear, and the
     queue bound caps waiting, so latency stays below cap * max service. *)
  let cfg =
    { (mk_cfg ~load:3.0 ()) with Serve.queue_cap = 2; requests = 80 }
  in
  let c = Serve_replay.run_cell ~cfg w in
  checkb "overload drops" true (c.Serve.dropped > 0);
  checki "conservation" 80 (c.Serve.served + c.Serve.dropped);
  checkb "util near 1" true (c.Serve.util > 0.8);
  (match Serve.run_cell_generate ~cfg:{ cfg with Serve.load = 0.0 } w with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "load 0 should raise");
  match Serve.run_cell_generate ~cfg:{ cfg with Serve.queue_cap = 0 } w with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "queue_cap 0 should raise"

let test_sweep_jobs_deterministic () =
  Tcache.clear ();
  let w = wl "synth" in
  let cfg = { Serve.default_config with Serve.requests = 40; seed = 9 } in
  let loads = [ 0.7; 1.1 ] in
  let modes = [ Sim.Base; Sim.Enhanced ] in
  let flushes = [ Serve.No_flush; Serve.Flush ] in
  let seq = Serve_replay.sweep ~jobs:1 ~cfg ~loads ~modes ~flushes w in
  let par = Serve_replay.sweep ~jobs:4 ~cfg ~loads ~modes ~flushes w in
  checki "cells" 8 (List.length seq);
  List.iter2
    (fun (a : Serve.cell) (b : Serve.cell) ->
      checkb "sweep order and latencies independent of jobs" true
        (Serve.cell_label a = Serve.cell_label b
        && a.Serve.lat_cycles = b.Serve.lat_cycles))
    seq par

(* ---------------- streaming engine and cells ---------------- *)

(* The streaming driver must reproduce the array driver exactly — same
   latency vector, same order-sensitive fingerprint, same counters —
   across modes, flush policies, and arrival processes.  For the
   Base/No_flush row this also exercises the snapshot-segmented measured
   pass (the default streaming path segments even at jobs = 1). *)
let test_stream_matches_generate () =
  Tcache.clear ();
  let w = wl "synth" in
  List.iter
    (fun (mode, flush, arrival) ->
      let cfg = mk_cfg ~mode ~flush ~arrival () in
      let g = Serve.run_cell_generate ~cfg w in
      let s = Serve.run_cell_stream ~cfg w in
      let msg =
        Printf.sprintf "%s/%s/%s" (Sim.mode_to_string mode)
          (Serve.flush_to_string flush)
          (Arrival.to_string arrival)
      in
      checkb (msg ^ ": lat_cycles") true
        (g.Serve.lat_cycles = s.Serve.lat_cycles);
      checkb (msg ^ ": fingerprint") true
        (g.Serve.lat_fingerprint = s.Serve.lat_fingerprint);
      checkb (msg ^ ": counters") true (g.Serve.counters = s.Serve.counters);
      checki (msg ^ ": served") g.Serve.served s.Serve.served;
      checki (msg ^ ": dropped") g.Serve.dropped s.Serve.dropped;
      checki (msg ^ ": mean service") g.Serve.mean_service_cycles
        s.Serve.mean_service_cycles;
      checkb (msg ^ ": quantiles") true
        (g.Serve.p50_us = s.Serve.p50_us
        && g.Serve.p99_us = s.Serve.p99_us
        && g.Serve.p999_us = s.Serve.p999_us))
    [
      (Sim.Base, Serve.No_flush, Arrival.Poisson);
      (Sim.Enhanced, Serve.No_flush, Arrival.default_mmpp);
      (Sim.Enhanced, Serve.Flush, Arrival.Poisson);
      (Sim.Eager, Serve.Asid, Arrival.Poisson);
      (Sim.Stable, Serve.No_flush, Arrival.Poisson);
    ]

let test_closed_cell () =
  Tcache.clear ();
  let w = wl "synth" in
  let cfg =
    {
      (mk_cfg ~arrival:(Arrival.Closed { clients = 4 }) ()) with
      Serve.requests = 80;
    }
  in
  let a = Serve.run_cell_stream ~cfg w in
  checki "population bound serves everything" 80 a.Serve.served;
  checki "closed loop never drops" 0 a.Serve.dropped;
  checki "latencies materialized below cap" 80
    (Array.length a.Serve.lat_cycles);
  Array.iter
    (fun l -> checkb "latency positive" true (l > 0))
    a.Serve.lat_cycles;
  let b = Serve.run_cell_stream ~cfg w in
  checkb "deterministic" true
    (a.Serve.lat_cycles = b.Serve.lat_cycles
    && a.Serve.lat_fingerprint = b.Serve.lat_fingerprint);
  let r = Serve_replay.run_cell ~cfg w in
  checkb "replay mirror identical" true
    (a.Serve.lat_cycles = r.Serve.lat_cycles
    && a.Serve.lat_fingerprint = r.Serve.lat_fingerprint
    && a.Serve.counters = r.Serve.counters);
  match Serve.run_cell_generate ~cfg w with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "array driver cannot run closed cells"

let test_closed_jobs_invariant () =
  let w = wl "synth" in
  let cfg =
    {
      (mk_cfg ~mode:Sim.Base ~arrival:(Arrival.Closed { clients = 6 }) ()) with
      Serve.requests = 200;
    }
  in
  let a = Serve.run_cell_stream ~jobs:1 ~cfg w in
  let b = Serve.run_cell_stream ~jobs:4 ~cfg w in
  checkb "different segmentations" true
    (b.Serve.segments > 1 && a.Serve.segments <> b.Serve.segments);
  checkb "bit-identical across jobs" true
    (a.Serve.lat_fingerprint = b.Serve.lat_fingerprint
    && a.Serve.lat_cycles = b.Serve.lat_cycles
    && a.Serve.counters = b.Serve.counters
    && a.Serve.span_us = b.Serve.span_us)

(* Snapshot-segmented generate-side replay: every (jobs, segment) choice
   must match the sequential array driver bit for bit. *)
let test_segmented_stream_identity () =
  let w = wl "synth" in
  let cfg =
    { (mk_cfg ~mode:Sim.Base ~load:1.1 ()) with Serve.requests = 300 }
  in
  let g = Serve.run_cell_generate ~cfg w in
  let s37 = Serve.run_cell_stream ~jobs:1 ~segment:37 ~cfg w in
  checki "explicit segment geometry" 9 s37.Serve.segments;
  List.iter
    (fun (s : Serve.cell) ->
      checkb "matches generate bit for bit" true
        (s.Serve.lat_cycles = g.Serve.lat_cycles
        && s.Serve.lat_fingerprint = g.Serve.lat_fingerprint
        && s.Serve.counters = g.Serve.counters
        && s.Serve.p999_us = g.Serve.p999_us))
    [
      s37;
      Serve.run_cell_stream ~jobs:4 ~cfg w;
      Serve.run_cell_stream ~jobs:3 ~segment:100 ~cfg w;
    ];
  (* Same invariant on the realistic memcached stream. *)
  let wm = wl "memcached" in
  let cfgm = { (mk_cfg ~mode:Sim.Base ()) with Serve.requests = 90 } in
  let gm = Serve.run_cell_generate ~cfg:cfgm wm in
  let sm = Serve.run_cell_stream ~jobs:4 ~cfg:cfgm wm in
  checkb "memcached segmented = generate" true
    (sm.Serve.segments > 1
    && sm.Serve.lat_cycles = gm.Serve.lat_cycles
    && sm.Serve.lat_fingerprint = gm.Serve.lat_fingerprint
    && sm.Serve.counters = gm.Serve.counters)

let test_replay_segmented_jobs () =
  Tcache.clear ();
  let w = wl "synth" in
  let cfg = { (mk_cfg ~mode:Sim.Enhanced ()) with Serve.requests = 120 } in
  let a = Serve_replay.run_cell ~cfg w in
  checki "sequential path unsegmented" 1 a.Serve.segments;
  let b = Serve_replay.run_cell ~jobs:4 ~cfg w in
  let c = Serve_replay.run_cell ~jobs:1 ~segment:17 ~cfg w in
  checkb "parallel path segmented" true (b.Serve.segments > 1);
  checki "explicit segment geometry" 8 c.Serve.segments;
  List.iter
    (fun (s : Serve.cell) ->
      checkb "segmented replay = sequential replay" true
        (s.Serve.lat_cycles = a.Serve.lat_cycles
        && s.Serve.lat_fingerprint = a.Serve.lat_fingerprint
        && s.Serve.counters = a.Serve.counters))
    [ b; c ]

(* ---------------- segmented trace replay ---------------- *)

let test_segmented_replay_matches_sequential () =
  Tcache.clear ();
  let w = wl "synth" in
  let n = 100 in
  List.iter
    (fun mode ->
      let tr = Tcache.get ~requests:n ~mode w in
      let seq = Replay.replay_counters ~mode ~requests:n tr in
      let p = Segmented.plan ~segment:13 ~requests:n ~mode tr in
      checki "segments" 8 (Segmented.seg_count p);
      checki "requests covered" n (Segmented.requests p);
      let services = Array.make n (-1) in
      let order_ok = ref true and last = ref (-1) in
      let merged, recorder =
        Segmented.replay ~jobs:4
          ~consume:(fun ~req ~service ->
            if req <> !last + 1 then order_ok := false;
            last := req;
            services.(req) <- service)
          p tr
      in
      checkb "consume in strict index order" true (!order_ok && !last = n - 1);
      checkb "merged counters = sequential replay" true (merged = seq);
      checki "recorder count" n (Latency.count recorder);
      checki "services sum to measured cycles" seq.Counters.cycles
        (Array.fold_left ( + ) 0 services))
    [ Sim.Base; Sim.Enhanced ]

let test_segmented_plan_rejects_bad () =
  Tcache.clear ();
  let w = wl "synth" in
  let tr = Tcache.get ~requests:20 ~mode:Sim.Base w in
  (match Segmented.plan ~segment:0 ~requests:20 ~mode:Sim.Base tr with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "segment 0 should raise");
  match Segmented.plan ~requests:21 ~mode:Sim.Base tr with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "requests beyond the trace should raise"

(* ---------------- properties ---------------- *)

let qcheck_tests =
  [
    (* The push-based streaming engine is a drop-in mirror of the array
       queue engine: identical served set, per-request latency and wait,
       drops, busy time, and span, for random cells. *)
    QCheck.Test.make ~name:"stream_queue mirrors run_queue" ~count:150
      QCheck.(
        quad (int_range 0 150) (int_range 1 12) (int_range 0 10_000)
          (triple (int_range 5 80) (int_range 0 3) bool))
      (fun (n, cap, seed, (mean_service, li, bursty)) ->
        let load = [| 0.5; 0.9; 1.2; 2.5 |].(li) in
        let arrival =
          if bursty then Arrival.default_mmpp else Arrival.Poisson
        in
        let cfg =
          {
            (mk_cfg ~load ~arrival ()) with
            Serve.requests = n;
            queue_cap = cap;
            seed;
          }
        in
        let rng = Rng.create (seed + 77) in
        let services = Array.init n (fun _ -> Rng.int rng 200) in
        let qs = Serve.run_queue ~cfg ~mean_service ~services in
        let got = ref [] in
        let sq =
          Serve.stream_queue ~cfg ~mean_service ~sink:(fun ~req ~lat ~wait ->
              got := (req, lat, wait) :: !got)
        in
        Array.iteri
          (fun req service -> Serve.stream_push sq ~req ~service)
          services;
        let got = Array.of_list (List.rev !got) in
        got
        = Array.init qs.Serve.q_served (fun i ->
              ( qs.Serve.q_reqs.(i),
                qs.Serve.q_lat_cycles.(i),
                qs.Serve.q_wait_cycles.(i) ))
        && Serve.stream_served sq = qs.Serve.q_served
        && Serve.stream_dropped sq = qs.Serve.q_dropped
        && Serve.stream_busy_cycles sq = qs.Serve.q_busy
        && Serve.stream_span_cycles sq = qs.Serve.q_span);
    (* Snapshot/restore is exact: resuming a restored fresh simulator
       replays the suffix bit-identically — per-request cycles, measured
       counters, and the full state fingerprint — across every link mode
       and around (ASID-tagged or full) context switches. *)
    QCheck.Test.make ~name:"sim snapshot/restore resumes bit-identically"
      ~count:12
      QCheck.(
        quad (int_range 0 5) (int_range 0 25) (int_range 1 20) (int_range 0 2))
      (fun (mi, pre, post, sw) ->
        let mode = List.nth Sim.all_modes mi in
        let w = wl "synth" in
        let make () =
          Sim.create ~func_align:w.Workload.func_align ~mode w.Workload.objs
        in
        let call sim i =
          let rq = w.Workload.gen_request i in
          Kernel.note_boundary (Sim.kernel sim) ~rtype:rq.Workload.rtype;
          Sim.call sim ~mname:rq.Workload.mname ~fname:rq.Workload.fname
        in
        let sim = make () in
        for i = 0 to pre - 1 do
          call sim i
        done;
        (match sw with
        | 1 -> Sim.context_switch sim
        | 2 -> Sim.context_switch ~retain_asid:true sim
        | _ -> ());
        Sim.mark_measurement_start sim;
        let snap = Sim.snapshot sim in
        let tail sim =
          let c = Sim.counters sim in
          let services = Array.make post 0 in
          for i = 0 to post - 1 do
            let before = c.Counters.cycles in
            call sim (pre + i);
            services.(i) <- c.Counters.cycles - before
          done;
          ( services,
            Sim.state_fingerprint sim,
            (Sim.measured_counters sim).Counters.cycles )
        in
        let a = tail sim in
        let sim2 = make () in
        Sim.restore sim2 snap;
        a = tail sim2);
  ]

(* ---------------- boundary tap ---------------- *)

let test_boundary_tap_counts () =
  Tcache.clear ();
  let w = wl "synth" in
  let count = ref 0 and rtypes = ref [] in
  let cfg = mk_cfg () in
  let mean_service = Serve.calibrate_generate ~requests:60 w in
  (* The generate driver announces warmup + served requests with their
     request-type ids through the kernel tap.  We can't pre-install the
     tap on a driver-owned kernel, so go through Sim directly. *)
  let sim =
    Sim.create ~func_align:w.Workload.func_align ~mode:Sim.Enhanced
      w.Workload.objs
  in
  Kernel.set_boundary_tap (Sim.kernel sim)
    (Some
       (fun ~rtype ->
         incr count;
         rtypes := rtype :: !rtypes));
  let n_rt = Array.length w.Workload.request_type_names in
  for i = 0 to 9 do
    let rq = w.Workload.gen_request i in
    Kernel.note_boundary (Sim.kernel sim) ~rtype:rq.Workload.rtype;
    Sim.call sim ~mname:rq.Workload.mname ~fname:rq.Workload.fname
  done;
  checki "one boundary per request" 10 !count;
  List.iter
    (fun rt -> checkb "rtype in range" true (rt >= 0 && rt < n_rt))
    !rtypes;
  ignore mean_service;
  ignore cfg

(* ---------------- multi-core open loop ---------------- *)

let test_multi_open_loop () =
  let ws = [ wl "synth"; wl "memcached" ] in
  let requests = 30 in
  let sched =
    Scheduler.create ~requests ~policy:Policy.Asid ~quantum:4 ~cores:2 ws
  in
  let arr0 = Arrival.times ~seed:1 ~mean_gap:2000.0 ~n:requests Arrival.Poisson in
  let arr1 =
    Arrival.times ~seed:2 ~mean_gap:3000.0 ~n:requests Arrival.default_mmpp
  in
  Scheduler.set_open_loop sched ~pid:0 ~arrivals:arr0 ~queue_cap:4;
  Scheduler.set_open_loop sched ~pid:1 ~arrivals:arr1 ~queue_cap:4;
  Scheduler.run sched;
  checkb "finished" true (Scheduler.finished sched);
  List.iter
    (fun p ->
      let lats = Scheduler.latencies_cycles p in
      checki "served + dropped = requests" requests
        (Array.length lats + Scheduler.drops p);
      Array.iter (fun l -> checkb "latency positive" true (l > 0)) lats)
    (Scheduler.procs sched)

let test_multi_open_loop_deterministic () =
  let run () =
    let ws = [ wl "synth" ] in
    let sched =
      Scheduler.create ~requests:25 ~policy:Policy.Flush ~quantum:3 ~cores:1 ws
    in
    let arr = Arrival.times ~seed:4 ~mean_gap:1500.0 ~n:25 Arrival.Poisson in
    Scheduler.set_open_loop sched ~pid:0 ~arrivals:arr ~queue_cap:3;
    Scheduler.run sched;
    Scheduler.latencies_cycles (Scheduler.proc sched 0)
  in
  checkb "same config, identical open-loop latencies" true (run () = run ())

let test_multi_open_loop_rejects_bad () =
  let sched =
    Scheduler.create ~requests:10 ~policy:Policy.Asid ~quantum:2 ~cores:1
      [ wl "synth" ]
  in
  (match
     Scheduler.set_open_loop sched ~pid:0 ~arrivals:[| 0; 1 |] ~queue_cap:4
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch should raise");
  (match
     Scheduler.set_open_loop sched ~pid:0 ~arrivals:(Array.make 10 0)
       ~queue_cap:0
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "queue_cap 0 should raise");
  match
    Scheduler.set_open_loop sched ~pid:0 ~arrivals:[| 5; 3; 1; 0; 0; 0; 0; 0; 0; 0 |]
      ~queue_cap:4
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsorted arrivals should raise"

let () =
  Alcotest.run "serve"
    [
      ( "arrivals",
        [
          Alcotest.test_case "deterministic" `Quick test_arrival_deterministic;
          Alcotest.test_case "sorted non-negative" `Quick
            test_arrival_sorted_nonneg;
          Alcotest.test_case "mean gap" `Slow test_arrival_mean_gap;
          Alcotest.test_case "rejects bad specs" `Quick test_arrival_rejects_bad;
          Alcotest.test_case "closed-loop spec" `Quick test_closed_arrival_spec;
        ] );
      ( "queue",
        [
          Alcotest.test_case "hand example" `Quick test_queue_hand_example;
          Alcotest.test_case "drops when full" `Quick test_queue_drops_when_full;
          Alcotest.test_case "wait + service" `Quick test_queue_wait_plus_service;
        ] );
      ( "cells",
        [
          Alcotest.test_case "generate = replay" `Quick
            test_cell_generate_replay_identical;
          Alcotest.test_case "deterministic" `Quick test_cell_deterministic;
          Alcotest.test_case "saturation + validation" `Quick
            test_cell_saturation_and_validation;
          Alcotest.test_case "sweep jobs-independent" `Quick
            test_sweep_jobs_deterministic;
        ] );
      ( "stream",
        [
          Alcotest.test_case "stream = generate" `Quick
            test_stream_matches_generate;
          Alcotest.test_case "closed-loop cell" `Quick test_closed_cell;
          Alcotest.test_case "closed-loop jobs-invariant" `Quick
            test_closed_jobs_invariant;
          Alcotest.test_case "segmented stream identity" `Quick
            test_segmented_stream_identity;
          Alcotest.test_case "segmented replay cell" `Quick
            test_replay_segmented_jobs;
        ] );
      ( "segmented",
        [
          Alcotest.test_case "matches sequential replay" `Quick
            test_segmented_replay_matches_sequential;
          Alcotest.test_case "rejects bad plans" `Quick
            test_segmented_plan_rejects_bad;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ( "boundaries",
        [ Alcotest.test_case "tap counts" `Quick test_boundary_tap_counts ] );
      ( "multi open loop",
        [
          Alcotest.test_case "serves with drops" `Quick test_multi_open_loop;
          Alcotest.test_case "deterministic" `Quick
            test_multi_open_loop_deterministic;
          Alcotest.test_case "rejects bad args" `Quick
            test_multi_open_loop_rejects_bad;
        ] );
    ]
