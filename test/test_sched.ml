(* Tests for Dlink_sched: deterministic multi-process scheduling with
   flush / ASID / shared-guard context-switch policies.

   The invariants:
   - the scheduler is a pure function of the workload seeds: the same
     configuration produces bit-identical counters on every run;
   - per-quantum counter attribution is complete: per-process counters
     sum to the system counters for every in-quantum event;
   - ASID retention recovers trampoline skips that flushing destroys at
     short quanta;
   - under [Asid_shared_guard], a GOT rebinding store retired by one
     core's process clears the sibling core's guarded entries via the
     coherence bus. *)

module C = Dlink_uarch.Counters
module Coherence = Dlink_mach.Coherence
module Image = Dlink_linker.Image
module Space = Dlink_linker.Space
module Loader = Dlink_linker.Loader
module Policy = Dlink_sched.Policy
module Sched = Dlink_sched.Scheduler
module Qs = Dlink_sched.Quantum_sweep
module W = Dlink_workloads.Registry

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let workloads names =
  List.map (fun n -> (Option.get (W.find n)) ?seed:None ()) names

let mix3 () = workloads [ "apache"; "memcached"; "mysql" ]

let run_mix ?(requests = 100) ?(cores = 1) ~policy ~quantum names =
  let sched = Sched.create ~requests ~policy ~quantum ~cores (workloads names) in
  Sched.run sched;
  sched

(* ---------------- policy ---------------- *)

let test_policy_round_trip () =
  List.iter
    (fun p ->
      Alcotest.(check (option string))
        "round trip" (Some (Policy.to_string p))
        (Option.map Policy.to_string (Policy.of_string (Policy.to_string p))))
    Policy.all;
  checkb "unknown rejected" true (Policy.of_string "bogus" = None)

(* ---------------- determinism ---------------- *)

let test_same_seed_identical_counters () =
  let run () =
    let sched =
      Sched.create ~requests:80 ~policy:Policy.Asid ~quantum:7 ~cores:2
        (mix3 ())
    in
    Sched.run sched;
    ( Sched.system_counters sched,
      List.map (fun p -> C.copy (Sched.proc_counters p)) (Sched.procs sched) )
  in
  let sys1, procs1 = run () in
  let sys2, procs2 = run () in
  checkb "system counters bit-identical" true (sys1 = sys2);
  checkb "per-process counters bit-identical" true (procs1 = procs2)

let test_determinism_across_policies () =
  (* Architectural work is policy-independent: every policy retires the
     same requests, so resolver runs and GOT stores match exactly. *)
  let totals policy =
    let sched = run_mix ~policy ~quantum:5 [ "apache"; "memcached"; "mysql" ] in
    let c = Sched.system_counters sched in
    (c.C.resolver_runs, c.C.got_stores)
  in
  let reference = totals Policy.Flush in
  List.iter
    (fun p -> checkb "same architectural work" true (totals p = reference))
    [ Policy.Asid; Policy.Asid_shared_guard ]

(* ---------------- scheduling accounting ---------------- *)

let test_attribution_is_complete () =
  let sched = run_mix ~policy:Policy.Flush ~quantum:9 [ "apache"; "memcached" ] in
  let sys = Sched.system_counters sched in
  let sum f =
    List.fold_left (fun acc p -> acc + f (Sched.proc_counters p)) 0
      (Sched.procs sched)
  in
  checki "instructions attributed" sys.C.instructions
    (sum (fun c -> c.C.instructions));
  checki "tramp calls attributed" sys.C.tramp_calls
    (sum (fun c -> c.C.tramp_calls));
  checki "tramp skips attributed" sys.C.tramp_skips
    (sum (fun c -> c.C.tramp_skips))

let test_quanta_and_requests () =
  let sched = run_mix ~requests:95 ~policy:Policy.Flush ~quantum:10 [ "memcached"; "mysql" ] in
  List.iter
    (fun p ->
      checki "all requests ran" 95 (Sched.requests_done p);
      checki "quantum respected" 10 (Sched.quanta p);
      checki "one latency per request" 95 (Array.length (Sched.latencies_us p)))
    (Sched.procs sched);
  checkb "finished" true (Sched.finished sched)

let test_cores_clamped () =
  let sched = run_mix ~cores:8 ~policy:Policy.Flush ~quantum:5 [ "memcached"; "mysql" ] in
  checki "cores clamped to process count" 2 (Sched.n_cores sched)

(* ---------------- flush vs ASID ---------------- *)

let test_asid_recovers_skips_at_short_quanta () =
  let skips policy =
    let sched =
      run_mix ~requests:120 ~policy ~quantum:1 [ "apache"; "memcached"; "mysql" ]
    in
    (Sched.system_counters sched).C.tramp_skips
  in
  let flush = skips Policy.Flush and asid = skips Policy.Asid in
  checkb
    (Printf.sprintf "asid (%d) skips more than flush (%d)" asid flush)
    true (asid > flush)

let test_single_process_policies_agree () =
  (* With one process there are no switches, so policy is irrelevant. *)
  let counters policy =
    let sched = run_mix ~policy ~quantum:5 [ "memcached" ] in
    Sched.system_counters sched
  in
  let reference = counters Policy.Flush in
  List.iter
    (fun p -> checkb "identical counters" true (counters p = reference))
    [ Policy.Asid; Policy.Asid_shared_guard ]

(* ---------------- cross-core coherence ---------------- *)

let lowest_got_slot sched pid =
  let linked = Sched.proc_linked (Sched.proc sched pid) in
  Array.fold_left
    (fun acc (img : Image.t) ->
      Hashtbl.fold
        (fun _ a acc ->
          match acc with None -> Some a | Some b -> Some (min a b))
        img.Image.got_slots acc)
    None
    (Space.images linked.Loader.space)
  |> Option.get

let test_cross_process_store_clears_sibling () =
  (* Two identical processes on two cores: no ASLR means their address
     spaces share a layout, so process 1's GOT slots alias process 0's in
     the sibling's Bloom filter.  The rebinding store must reach core 0
     over the bus and clear its tables. *)
  let sched =
    Sched.create ~requests:100 ~policy:Policy.Asid_shared_guard ~quantum:10
      ~cores:2
      (workloads [ "memcached"; "memcached" ])
  in
  Sched.run sched;
  let core0_clears_before = (Sched.core_counters (Sched.core sched 0)).C.abtb_clears in
  let invals_before =
    (Sched.system_counters sched).C.coherence_invalidations
  in
  Sched.retire_got_store sched ~pid:1 (lowest_got_slot sched 1);
  let core0_clears_after = (Sched.core_counters (Sched.core sched 0)).C.abtb_clears in
  let invals_after = (Sched.system_counters sched).C.coherence_invalidations in
  checkb "bus carried traffic" true (Coherence.published (Sched.bus sched) > 0);
  checki "sibling core cleared its ABTB" (core0_clears_before + 1)
    core0_clears_after;
  checki "invalidation counted" (invals_before + 1) invals_after

let test_flush_policy_publishes_nothing () =
  let sched =
    Sched.create ~requests:60 ~policy:Policy.Flush ~quantum:10 ~cores:2
      (workloads [ "memcached"; "memcached" ])
  in
  Sched.run sched;
  Sched.retire_got_store sched ~pid:1 (lowest_got_slot sched 1);
  checki "no bus traffic under flush" 0 (Coherence.published (Sched.bus sched));
  checki "no coherence invalidations" 0
    (Sched.system_counters sched).C.coherence_invalidations

(* ---------------- coherence bus unit ---------------- *)

let test_bus_delivery_order_and_self_exclusion () =
  let bus = Coherence.create () in
  let seen = ref [] in
  (* Subscribe out of order: delivery must still be ascending by core. *)
  List.iter
    (fun core ->
      Coherence.subscribe bus ~core (fun ~src addr ->
          seen := (core, src, addr) :: !seen))
    [ 2; 0; 1 ];
  Coherence.publish bus ~src:1 0xBEEF;
  Alcotest.(check (list (triple int int int)))
    "ascending order, publisher excluded"
    [ (0, 1, 0xBEEF); (2, 1, 0xBEEF) ]
    (List.rev !seen);
  checki "published" 1 (Coherence.published bus);
  checki "delivered" 2 (Coherence.delivered bus);
  checkb "duplicate core rejected" true
    (try
       Coherence.subscribe bus ~core:2 (fun ~src:_ _ -> ());
       false
     with Invalid_argument _ -> true)

(* ---------------- injected bus faults ---------------- *)

let test_bus_drop_retries_and_recovers () =
  (* A dropped message is no longer lost: it is parked and retried at the
     next drain, where the fault hook (its credits spent) lets it through. *)
  let bus = Coherence.create () in
  let seen = ref [] in
  List.iter
    (fun core ->
      Coherence.subscribe bus ~core (fun ~src:_ addr -> seen := (core, addr) :: !seen))
    [ 0; 1 ];
  let fates = ref [ Coherence.Drop; Coherence.Delay; Coherence.Deliver ] in
  Coherence.set_fault bus
    (Some
       (fun ~src:_ _ ->
         match !fates with
         | [] -> Coherence.Deliver
         | f :: rest ->
             fates := rest;
             f));
  Coherence.publish bus ~src:0 0xA;
  Coherence.publish bus ~src:0 0xB;
  Coherence.publish bus ~src:0 0xC;
  checki "published counts all three" 3 (Coherence.published bus);
  checki "one dropped attempt" 1 (Coherence.dropped bus);
  checki "dropped and delayed both pending" 2 (Coherence.pending bus);
  checkb "only the delivered one arrived" true (!seen = [ (1, 0xC) ]);
  checki "drain releases both parked messages" 2 (Coherence.drain bus);
  Alcotest.(check (list (pair int int)))
    "recovery preserves publication order" [ (1, 0xC); (1, 0xA); (1, 0xB) ]
    (List.rev !seen);
  checki "the drop cost one retry" 1 (Coherence.retries bus);
  checki "nothing left pending" 0 (Coherence.pending bus);
  checki "no timeout" 0 (Coherence.timeouts bus);
  checki "all three acked" 3 (Coherence.acked bus);
  Coherence.set_fault bus None;
  Coherence.publish bus ~src:0 0xD;
  checkb "normal delivery after hook removal" true (List.mem (1, 0xD) !seen)

let test_bus_drop_burst_times_out () =
  (* A message that keeps drawing Drop past the retry limit is abandoned:
     the destination core is notified through on_timeout so it can degrade
     instead of silently running on stale state. *)
  let bus = Coherence.create ~retry_limit:2 () in
  let seen = ref [] in
  let timed_out = ref [] in
  List.iter
    (fun core ->
      Coherence.subscribe bus ~core (fun ~src:_ addr -> seen := (core, addr) :: !seen))
    [ 0; 1; 2 ];
  Coherence.set_on_timeout bus
    (Some (fun ~core ~src addr -> timed_out := (core, src, addr) :: !timed_out));
  Coherence.set_fault bus (Some (fun ~src:_ _ -> Coherence.Drop));
  Coherence.publish bus ~src:1 0xDEAD;
  checki "parked after the publish-time drop" 1 (Coherence.pending bus);
  (* Backoff doubles the wait between retries; drain until resolution. *)
  let rec pump n = if n > 0 && Coherence.pending bus > 0 then begin ignore (Coherence.drain bus); pump (n - 1) end in
  pump 32;
  checki "message timed out" 1 (Coherence.timeouts bus);
  checki "nothing pending after timeout" 0 (Coherence.pending bus);
  checkb "never delivered" true (!seen = []);
  Alcotest.(check (list (triple int int int)))
    "both destination cores notified, ascending"
    [ (0, 1, 0xDEAD); (2, 1, 0xDEAD) ]
    (List.rev !timed_out);
  (* attempts: 1 at publish + retry_limit retries before abandoning *)
  checki "bounded retries" 2 (Coherence.retries bus);
  checki "dropped counts every lost attempt" 3 (Coherence.dropped bus)

let test_bus_delay_drains_in_order () =
  (* The old wart — delayed messages replayed most-recent-first — is gone:
     a plain Delay drains in publication order. *)
  let bus = Coherence.create () in
  let seen = ref [] in
  Coherence.subscribe bus ~core:1 (fun ~src:_ addr -> seen := addr :: !seen);
  Coherence.set_fault bus (Some (fun ~src:_ _ -> Coherence.Delay));
  Coherence.publish bus ~src:0 0xA;
  Coherence.publish bus ~src:0 0xB;
  checki "both held" 2 (Coherence.pending bus);
  checki "both drained" 2 (Coherence.drain bus);
  Alcotest.(check (list int))
    "drain replays in publication order" [ 0xA; 0xB ]
    (List.rev !seen);
  checki "no reorders counted" 0 (Coherence.reorders bus)

let test_bus_reorder_fate () =
  (* Out-of-order replay is still available, but only as the explicit
     Reorder fate — and it is counted. *)
  let bus = Coherence.create () in
  let seen = ref [] in
  Coherence.subscribe bus ~core:1 (fun ~src:_ addr -> seen := addr :: !seen);
  Coherence.set_fault bus (Some (fun ~src:_ _ -> Coherence.Reorder));
  Coherence.publish bus ~src:0 0xA;
  Coherence.publish bus ~src:0 0xB;
  Coherence.set_fault bus None;
  checki "both drained" 2 (Coherence.drain bus);
  Alcotest.(check (list int))
    "reorder fate replays most-recent-first" [ 0xB; 0xA ]
    (List.rev !seen);
  checki "reorders counted" 2 (Coherence.reorders bus)

let test_bus_validate_discards_stale () =
  (* The epoch guard: a message whose stamp no longer matches the live
     generation of its address is discarded, not applied. *)
  let bus = Coherence.create () in
  let seen = ref [] in
  Coherence.subscribe bus ~core:1 (fun ~src:_ addr -> seen := addr :: !seen);
  let live_gen = ref 7 in
  Coherence.set_validate bus
    (Some (fun ~src:_ ~stamp _addr -> stamp = !live_gen));
  Coherence.publish ~stamp:7 bus ~src:0 0xA;
  checkb "fresh message applied" true (!seen = [ 0xA ]);
  (* Delay the next message past a generation bump: ABA in miniature. *)
  Coherence.set_fault bus (Some (fun ~src:_ _ -> Coherence.Delay));
  Coherence.publish ~stamp:7 bus ~src:0 0xB;
  Coherence.set_fault bus None;
  live_gen := 8;
  checki "drain delivers nothing" 0 (Coherence.drain bus);
  checkb "stale message never applied" true (!seen = [ 0xA ]);
  checki "stale discard counted" 1 (Coherence.stale_discards bus)

let test_bus_fence () =
  let bus = Coherence.create () in
  Coherence.subscribe bus ~core:1 (fun ~src:_ _ -> ());
  (* Nothing in flight: the fence completes synchronously. *)
  let fired = ref 0 in
  let _force = Coherence.fence bus ~complete:(fun () -> incr fired) in
  checki "empty fence completes immediately" 1 !fired;
  (* With a delayed message in flight, completion waits for the drain. *)
  Coherence.set_fault bus (Some (fun ~src:_ _ -> Coherence.Delay));
  Coherence.publish bus ~src:0 0xA;
  Coherence.set_fault bus None;
  let fired2 = ref 0 in
  let force2 = Coherence.fence bus ~complete:(fun () -> incr fired2) in
  checki "fence waits for the in-flight message" 0 !fired2;
  (* Traffic published after the fence does not hold it up. *)
  ignore (Coherence.drain bus);
  checki "fence completes once the message resolves" 1 !fired2;
  force2 ();
  checki "forcing a completed fence is a no-op" 1 !fired2;
  (* Forcing an unresolved fence times out the laggards and completes. *)
  let timed_out = ref 0 in
  Coherence.set_on_timeout bus (Some (fun ~core:_ ~src:_ _ -> incr timed_out));
  Coherence.set_fault bus (Some (fun ~src:_ _ -> Coherence.Delay));
  Coherence.publish bus ~src:0 0xB;
  Coherence.set_fault bus None;
  let fired3 = ref 0 in
  let force3 = Coherence.fence bus ~complete:(fun () -> incr fired3) in
  checki "unresolved fence not yet complete" 0 !fired3;
  force3 ();
  checki "forced fence completes" 1 !fired3;
  checki "laggard timed out by force" 1 !timed_out;
  checki "laggard removed from flight" 0 (Coherence.pending bus)

let test_scheduler_drains_delayed_messages () =
  (* Every coherence message is delayed by the fault hook; the scheduler's
     quantum-boundary drain must still deliver all of them by completion. *)
  let sched =
    Sched.create ~requests:60 ~policy:Policy.Asid_shared_guard ~quantum:10
      ~cores:2
      (workloads [ "memcached"; "memcached" ])
  in
  Coherence.set_fault (Sched.bus sched) (Some (fun ~src:_ _ -> Coherence.Delay));
  Sched.run sched;
  let bus = Sched.bus sched in
  checkb "messages were published" true (Coherence.published bus > 0);
  checki "no message outlives a quantum" 0 (Coherence.pending bus);
  checkb "delayed messages eventually delivered" true
    (Coherence.delivered bus > 0);
  checki "none dropped" 0 (Coherence.dropped bus)

(* ---------------- ASID reuse / rollover ---------------- *)

module Assoc = Dlink_uarch.Assoc_table
module Tlb = Dlink_uarch.Tlb

let test_assoc_tag_reuse_requires_flush () =
  let t = Assoc.create ~sets:4 ~ways:2 in
  Assoc.insert t ~tag:5 0x40 "old";
  (* An ASID counter that rolled over hands tag 5 to a new address space.
     The stale entry is still physically present — visible if software
     skips the flush — so the reuse protocol must clear the tag first. *)
  checkb "stale entry physically present" true
    (Assoc.find t ~tag:5 0x40 = Some "old");
  Assoc.clear ~tag:5 t;
  checkb "no resurrection after rollover flush" true
    (Assoc.find t ~tag:5 0x40 = None);
  Assoc.insert t ~tag:5 0x40 "new";
  checkb "new owner's entry visible" true (Assoc.find t ~tag:5 0x40 = Some "new");
  checki "old entry gone from census" 1 (Assoc.valid_count ~tag:5 t)

let test_tlb_asid_rollover () =
  let tlb = Tlb.create ~name:"dtlb" ~entries:8 ~ways:2 in
  ignore (Tlb.access ~asid:7 tlb 0x1000);
  checkb "present for owner" true (Tlb.present ~asid:7 tlb 0x1000);
  checkb "invisible to another asid" false (Tlb.present ~asid:8 tlb 0x1000);
  Tlb.flush ~asid:7 tlb;
  checkb "rollover flush prevents resurrection" false
    (Tlb.present ~asid:7 tlb 0x1000);
  (* Flushing one tag must not disturb other address spaces. *)
  ignore (Tlb.access ~asid:3 tlb 0x2000);
  Tlb.flush ~asid:7 tlb;
  checkb "other asid untouched" true (Tlb.present ~asid:3 tlb 0x2000)

(* ---------------- quantum sweep ---------------- *)

let test_sweep_shape () =
  let points =
    Qs.sweep ~requests:40 ~quanta:[ 2; 8 ]
      ~policies:[ Policy.Flush; Policy.Asid ]
      (workloads [ "memcached" ])
  in
  checki "quanta x policies" 4 (List.length points);
  Alcotest.(check (list (pair int string)))
    "ordered by quantum then policy"
    [ (2, "flush"); (2, "asid"); (8, "flush"); (8, "asid") ]
    (List.map (fun p -> (p.Qs.quantum, Policy.to_string p.Qs.policy)) points);
  List.iter
    (fun p ->
      checkb "skip_pct in range" true (p.Qs.skip_pct >= 0.0 && p.Qs.skip_pct <= 100.0);
      checkb "cpi positive" true (p.Qs.cpi > 0.0))
    points

(* ---------------- runner ---------------- *)

let () =
  Alcotest.run "dlink_sched"
    [
      ( "policy",
        [ Alcotest.test_case "round trip" `Quick test_policy_round_trip ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, identical counters" `Quick
            test_same_seed_identical_counters;
          Alcotest.test_case "architectural work is policy-independent" `Quick
            test_determinism_across_policies;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "attribution is complete" `Quick
            test_attribution_is_complete;
          Alcotest.test_case "quanta and requests" `Quick test_quanta_and_requests;
          Alcotest.test_case "cores clamped" `Quick test_cores_clamped;
        ] );
      ( "policies",
        [
          Alcotest.test_case "asid recovers skips at short quanta" `Quick
            test_asid_recovers_skips_at_short_quanta;
          Alcotest.test_case "single process: policies agree" `Quick
            test_single_process_policies_agree;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "cross-process store clears sibling" `Quick
            test_cross_process_store_clears_sibling;
          Alcotest.test_case "flush publishes nothing" `Quick
            test_flush_policy_publishes_nothing;
          Alcotest.test_case "bus order and self-exclusion" `Quick
            test_bus_delivery_order_and_self_exclusion;
          Alcotest.test_case "drop retries and recovers" `Quick
            test_bus_drop_retries_and_recovers;
          Alcotest.test_case "drop burst times out" `Quick
            test_bus_drop_burst_times_out;
          Alcotest.test_case "delay drains in order" `Quick
            test_bus_delay_drains_in_order;
          Alcotest.test_case "reorder fate" `Quick test_bus_reorder_fate;
          Alcotest.test_case "epoch guard discards stale" `Quick
            test_bus_validate_discards_stale;
          Alcotest.test_case "fence" `Quick test_bus_fence;
          Alcotest.test_case "scheduler drains delayed messages" `Quick
            test_scheduler_drains_delayed_messages;
        ] );
      ( "asid reuse",
        [
          Alcotest.test_case "tag reuse requires flush" `Quick
            test_assoc_tag_reuse_requires_flush;
          Alcotest.test_case "tlb asid rollover" `Quick test_tlb_asid_rollover;
        ] );
      ( "sweep",
        [ Alcotest.test_case "shape" `Quick test_sweep_shape ] );
    ]
