(* dlinksim — command-line driver for the dynamic-linking architecture
   simulator.

   Subcommands:
     run       run one workload under one mode and print counters
     compare   base vs enhanced vs patched for one workload
     sweep     Figure 5 ABTB-size sweep for one workload
     profile   Table 2/3 + Figure 4 opportunity profile
     memsave   §5.5 memory-overhead model
     multi     multi-process scheduler: flush vs ASID context switching
     fuzz      seeded fault-injection stress with a differential oracle
     churn     dlopen/dlclose rotation: clear rate, skip rate, stable linking
     serve     open-loop serving cells: offered load vs goodput and tail latency
     list      available workloads *)

module C = Dlink_uarch.Counters
module E = Dlink_core.Experiment
module Sim = Dlink_core.Sim
module Sweep = Dlink_core.Abtb_sweep
module Memsave = Dlink_core.Memory_savings
module Table = Dlink_util.Table
open Cmdliner

let fmt = Table.fmt_float

let workload_conv =
  let parse s =
    match Dlink_workloads.Registry.find s with
    | Some _ -> Ok s
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown workload %s (try: %s)" s
               (String.concat ", " Dlink_workloads.Registry.names)))
  in
  Arg.conv (parse, Format.pp_print_string)

(* Modes travel through cmdliner as plain strings and are validated in
   the actions: a typo'd name exits 2 with the full list, rather than the
   generic conversion-failure exit. *)
let resolve_mode s =
  match Sim.mode_of_string s with
  | Some m -> m
  | None ->
      Printf.eprintf "dlinksim: unknown mode %s (valid: %s)\n" s
        (String.concat ", " Sim.mode_names);
      exit 2

let workload_arg =
  Arg.(
    required
    & pos 0 (some workload_conv) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,list)).")

let mode_arg =
  Arg.(
    value
    & opt string "base"
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Simulation mode: base, enhanced, eager, static, patched or stable.")

let requests_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n"; "requests" ] ~docv:"N" ~doc:"Number of measured requests.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Workload generator seed.")

let get_workload name seed =
  let gen = Option.get (Dlink_workloads.Registry.find name) in
  gen ?seed ()

let print_counters (c : C.t) =
  let t = Table.create ~headers:[ "Counter"; "total"; "PKI" ] in
  let row lbl v = Table.add_row t [ lbl; string_of_int v; fmt (C.pki c v) ] in
  Table.add_row t [ "instructions"; string_of_int c.C.instructions; "" ];
  Table.add_row t [ "cycles"; string_of_int c.C.cycles; "" ];
  Table.add_row t
    [
      "CPI";
      fmt ~decimals:3 (float_of_int c.C.cycles /. float_of_int (max 1 c.C.instructions));
      "";
    ];
  row "icache misses" c.C.icache_misses;
  row "dcache misses" c.C.dcache_misses;
  row "l2 misses" c.C.l2_misses;
  row "itlb misses" c.C.itlb_misses;
  row "dtlb misses" c.C.dtlb_misses;
  row "branches" c.C.branches;
  row "branch mispredictions" c.C.branch_mispredictions;
  row "btb fill bubbles" c.C.btb_misses;
  row "trampoline instructions" c.C.tramp_instructions;
  row "trampoline calls" c.C.tramp_calls;
  row "trampoline skips" c.C.tramp_skips;
  row "abtb clears" c.C.abtb_clears;
  row "got stores" c.C.got_stores;
  row "resolver runs" c.C.resolver_runs;
  row "mis skips" c.C.mis_skips;
  row "lost skips" c.C.lost_skips;
  row "quarantined sets" c.C.quarantine_entries;
  row "timeout degrades" c.C.timeout_degrades;
  row "faults injected" c.C.fault_injected;
  Table.print t

let counters_json (c : C.t) =
  let module J = Dlink_util.Json in
  J.Obj
    [
      ("instructions", J.Int c.C.instructions);
      ("cycles", J.Int c.C.cycles);
      ("icache_misses", J.Int c.C.icache_misses);
      ("dcache_misses", J.Int c.C.dcache_misses);
      ("l2_misses", J.Int c.C.l2_misses);
      ("itlb_misses", J.Int c.C.itlb_misses);
      ("dtlb_misses", J.Int c.C.dtlb_misses);
      ("branches", J.Int c.C.branches);
      ("branch_mispredictions", J.Int c.C.branch_mispredictions);
      ("btb_misses", J.Int c.C.btb_misses);
      ("tramp_instructions", J.Int c.C.tramp_instructions);
      ("tramp_calls", J.Int c.C.tramp_calls);
      ("tramp_skips", J.Int c.C.tramp_skips);
      ("abtb_hits", J.Int c.C.abtb_hits);
      ("abtb_inserts", J.Int c.C.abtb_inserts);
      ("abtb_clears", J.Int c.C.abtb_clears);
      ("abtb_false_clears", J.Int c.C.abtb_false_clears);
      ("coherence_invalidations", J.Int c.C.coherence_invalidations);
      ("got_stores", J.Int c.C.got_stores);
      ("resolver_runs", J.Int c.C.resolver_runs);
      ("mis_skips", J.Int c.C.mis_skips);
      ("lost_skips", J.Int c.C.lost_skips);
      ("quarantine_entries", J.Int c.C.quarantine_entries);
      ("timeout_degrades", J.Int c.C.timeout_degrades);
      ("fault_injected", J.Int c.C.fault_injected);
    ]

let run_cmd =
  let action name mode_str requests seed =
    let mode = resolve_mode mode_str in
    let w = get_workload name seed in
    (* Replays the cached packed trace (recording it on first use);
       counters are bit-identical to generate-mode execution. *)
    let run = Dlink_trace.Replay.run ?requests ?seed ~mode w in
    Printf.printf "workload=%s mode=%s requests=%d\n" name (Sim.mode_to_string mode)
      run.E.requests;
    print_counters run.E.counters;
    let t = Table.create ~headers:[ "Request type"; "count"; "mean us"; "p95 us" ] in
    Array.iter
      (fun (rt, samples) ->
        if Array.length samples > 0 then begin
          let s = Dlink_stats.Summary.of_array samples in
          Table.add_row t
            [
              rt;
              string_of_int (Array.length samples);
              fmt ~decimals:1 (Dlink_stats.Summary.mean s);
              fmt ~decimals:1 (Dlink_stats.Summary.percentile s 95.0);
            ]
        end)
      run.E.latencies_us;
    Table.print ~title:"Latencies" t
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one workload under one mode")
    Term.(const action $ workload_arg $ mode_arg $ requests_arg $ seed_arg)

let compare_cmd =
  let action name requests seed =
    let w = get_workload name seed in
    let runs =
      (* One packed trace serves Base and Enhanced; Patched records its
         own (different link image). *)
      List.map
        (fun mode -> (mode, Dlink_trace.Replay.run ?requests ?seed ~mode w))
        [ Sim.Base; Sim.Enhanced; Sim.Patched ]
    in
    let t =
      Table.create
        ~headers:
          ("Counter (PKI)" :: List.map (fun (m, _) -> Sim.mode_to_string m) runs)
    in
    let row lbl f =
      Table.add_row t (lbl :: List.map (fun (_, r) -> fmt (f r.E.counters)) runs)
    in
    row "trampoline instrs" (fun c -> C.pki c c.C.tramp_instructions);
    row "icache misses" (fun c -> C.pki c c.C.icache_misses);
    row "dcache misses" (fun c -> C.pki c c.C.dcache_misses);
    row "itlb misses" (fun c -> C.pki c c.C.itlb_misses);
    row "dtlb misses" (fun c -> C.pki c c.C.dtlb_misses);
    row "branch mispredictions" (fun c -> C.pki c c.C.branch_mispredictions);
    Table.print ~title:("Mode comparison: " ^ name) t;
    let base = List.assoc Sim.Base runs in
    List.iter
      (fun (m, r) ->
        if m <> Sim.Base then
          Printf.printf "%s cycle improvement over base: %s\n"
            (Sim.mode_to_string m)
            (Table.fmt_pct
               (float_of_int (base.E.counters.C.cycles - r.E.counters.C.cycles)
               /. float_of_int base.E.counters.C.cycles)))
      runs
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare base/enhanced/patched")
    Term.(const action $ workload_arg $ requests_arg $ seed_arg)

let sweep_cmd =
  let action name requests seed =
    let w = get_workload name seed in
    let run = E.run ?requests ~record_stream:true ~mode:Sim.Base w in
    let t = Table.create ~headers:[ "ABTB entries"; "% skipped" ] in
    List.iter
      (fun p ->
        Table.add_row t [ string_of_int p.Sweep.entries; fmt p.Sweep.skipped_pct ])
      (Sweep.sweep run.E.tramp_stream);
    Table.print ~title:("Figure 5 sweep: " ^ name) t
  in
  Cmd.v (Cmd.info "sweep" ~doc:"ABTB size sweep (Figure 5)")
    Term.(const action $ workload_arg $ requests_arg $ seed_arg)

let profile_cmd =
  let action name requests seed =
    let w = get_workload name seed in
    let run = E.run ?requests ~mode:Sim.Base w in
    Printf.printf "workload=%s\n" name;
    Printf.printf "trampoline instructions PKI (Table 2): %s\n"
      (fmt (E.tramp_pki run));
    Printf.printf "distinct trampolines (Table 3): %d\n" run.E.distinct_trampolines;
    Printf.printf "trampoline calls: %d\n" run.E.tramp_calls;
    let t = Table.create ~headers:[ "rank"; "calls" ] in
    List.iteri
      (fun i (rank, calls) ->
        if i < 10 || i mod 100 = 0 then
          Table.add_row t [ fmt ~decimals:0 rank; fmt ~decimals:0 calls ])
      run.E.rank_frequency;
    Table.print ~title:"Figure 4 rank-frequency (sampled)" t
  in
  Cmd.v (Cmd.info "profile" ~doc:"Opportunity profile (Tables 2-3, Figure 4)")
    Term.(const action $ workload_arg $ requests_arg $ seed_arg)

let memsave_cmd =
  let action name seed processes =
    let w = get_workload name seed in
    let sim = Sim.create ~mode:Sim.Patched w.Dlink_core.Workload.objs in
    let pages = Dlink_linker.Loader.patched_pages (Sim.linked sim) in
    Printf.printf "patched call sites: %d on %d pages\n"
      (List.length (Sim.linked sim).Dlink_linker.Loader.patch_sites)
      pages;
    let t =
      Table.create ~headers:[ "Strategy"; "copied pages"; "wasted MB" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            Memsave.strategy_to_string r.Memsave.strategy;
            string_of_int r.Memsave.copied_pages_total;
            fmt (float_of_int r.Memsave.wasted_bytes /. 1048576.0);
          ])
      (Memsave.analyze_all ~patched_pages:pages ~processes);
    Table.print ~title:"Section 5.5 memory overhead" t
  in
  let processes =
    Arg.(value & opt int 450 & info [ "processes" ] ~doc:"Concurrent server processes.")
  in
  Cmd.v (Cmd.info "memsave" ~doc:"Memory-overhead model (Section 5.5)")
    Term.(const action $ workload_arg $ seed_arg $ processes)

let dump_cmd =
  let action name seed module_opt =
    let w = get_workload name seed in
    let linked =
      Dlink_linker.Loader.load_exn
        ~opts:
          {
            Dlink_linker.Loader.default_options with
            func_align = w.Dlink_core.Workload.func_align;
          }
        w.Dlink_core.Workload.objs
    in
    print_string (Dlink_linker.Dump.layout linked);
    match module_opt with
    | None -> ()
    | Some mname -> (
        match Dlink_linker.Space.image_by_name linked.Dlink_linker.Loader.space mname with
        | None -> Printf.eprintf "no module %s\n" mname
        | Some img ->
            print_newline ();
            print_string (Dlink_linker.Dump.disassemble_image ~max_insns:120 img);
            print_newline ();
            print_string (Dlink_linker.Dump.got_contents linked img))
  in
  let module_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "module" ] ~docv:"NAME" ~doc:"Also disassemble this module.")
  in
  Cmd.v (Cmd.info "dump" ~doc:"Memory map and disassembly of a loaded workload")
    Term.(const action $ workload_arg $ seed_arg $ module_arg)

let trace_cmd =
  let action name seed limit =
    let w = get_workload name seed in
    let linked =
      Dlink_linker.Loader.load_exn
        ~opts:
          {
            Dlink_linker.Loader.default_options with
            func_align = w.Dlink_core.Workload.func_align;
          }
        w.Dlink_core.Workload.objs
    in
    let printed = ref 0 in
    let hooks =
      {
        Dlink_mach.Process.default_hooks with
        on_retire =
          (fun ev ->
            if !printed < limit then begin
              incr printed;
              Format.printf "%a@." Dlink_mach.Event.pp ev
            end);
      }
    in
    let p = Dlink_mach.Process.create ~hooks linked in
    let req = w.Dlink_core.Workload.gen_request 0 in
    let addr =
      Option.get
        (Dlink_linker.Loader.func_addr linked ~mname:req.Dlink_core.Workload.mname
           ~fname:req.Dlink_core.Workload.fname)
    in
    Dlink_mach.Process.call p addr;
    Printf.printf "(request retired %d instructions; %d shown)\n"
      (Dlink_mach.Process.retired p) !printed
  in
  let limit_arg =
    Arg.(value & opt int 100 & info [ "limit" ] ~docv:"N" ~doc:"Events to print.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the first retired instructions of a request")
    Term.(const action $ workload_arg $ seed_arg $ limit_arg)

let mix_conv =
  let parse s =
    let names = String.split_on_char ',' s in
    let bad =
      List.filter (fun n -> Dlink_workloads.Registry.find n = None) names
    in
    if names = [] || bad <> [] then
      Error
        (`Msg
          (Printf.sprintf "unknown workload(s) %s (try: %s)"
             (String.concat ", " bad)
             (String.concat ", " Dlink_workloads.Registry.names)))
    else Ok names
  in
  Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (String.concat "," l))

let policy_conv =
  let parse s =
    match Dlink_sched.Policy.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg ("unknown policy " ^ s ^ " (flush, asid, asid-shared-guard)"))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Dlink_sched.Policy.to_string p))

let multi_cmd =
  let module Sched = Dlink_sched.Scheduler in
  let module Qs = Dlink_sched.Quantum_sweep in
  let action mix policy quantum cores requests seed sweep jobs =
    if quantum <= 0 then begin
      prerr_endline "dlinksim: --quantum must be positive";
      exit 2
    end;
    if cores <= 0 then begin
      prerr_endline "dlinksim: --cores must be positive";
      exit 2
    end;
    (match jobs with
    | Some j when j <= 0 ->
        prerr_endline "dlinksim: --jobs must be positive";
        exit 2
    | _ -> ());
    let workloads = List.map (fun n -> get_workload n seed) mix in
    if sweep then begin
      (* Each workload is recorded once, then every (quantum, policy)
         combination replays the packed traces — across --jobs forked
         workers when given.  Points are identical to [Qs.sweep]. *)
      let points =
        Dlink_trace.Sched_replay.sweep ?requests ?jobs ~cores
          ~policies:Dlink_sched.Policy.all workloads
      in
      Table.print
        ~title:(Printf.sprintf "Quantum sweep: %s on %d core(s)"
                  (String.concat "+" mix) cores)
        (Qs.table points);
      print_newline ();
      print_string (Qs.plot points)
    end
    else begin
      let sched = Sched.create ?requests ~policy ~quantum ~cores workloads in
      Sched.run sched;
      Printf.printf "mix=%s policy=%s quantum=%d cores=%d switches=%d\n"
        (String.concat "+" mix)
        (Dlink_sched.Policy.to_string policy)
        quantum (Sched.n_cores sched) (Sched.switches sched);
      let t =
        Table.create
          ~headers:
            [
              "pid"; "workload"; "requests"; "quanta"; "skip %"; "CPI";
              "abtb clears"; "mean us"; "p95 us";
            ]
      in
      List.iter
        (fun p ->
          let c = Sched.proc_counters p in
          let s = Dlink_stats.Summary.of_array (Sched.latencies_us p) in
          Table.add_row t
            [
              string_of_int (Sched.pid p);
              Sched.name p;
              string_of_int (Sched.requests_done p);
              string_of_int (Sched.quanta p);
              fmt
                (100.0 *. float_of_int c.C.tramp_skips
                /. float_of_int (max 1 c.C.tramp_calls));
              fmt ~decimals:3
                (float_of_int c.C.cycles /. float_of_int (max 1 c.C.instructions));
              string_of_int c.C.abtb_clears;
              fmt ~decimals:1 (Dlink_stats.Summary.mean s);
              fmt ~decimals:1 (Dlink_stats.Summary.percentile s 95.0);
            ])
        (Sched.procs sched);
      Table.print ~title:"Per-process" t;
      print_newline ();
      print_counters (Sched.system_counters sched);
      let sys = Sched.system_counters sched in
      if sys.C.coherence_invalidations > 0 then
        Printf.printf "coherence invalidations: %d\n" sys.C.coherence_invalidations
    end
  in
  let mix_arg =
    Arg.(
      required
      & pos 0 (some mix_conv) None
      & info [] ~docv:"MIX" ~doc:"Comma-separated workload mix, e.g. apache,memcached,mysql.")
  in
  let policy_arg =
    Arg.(
      value
      & opt policy_conv Dlink_sched.Policy.Flush
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Context-switch policy: flush, asid or asid-shared-guard.")
  in
  let quantum_arg =
    Arg.(
      value
      & opt int 10
      & info [ "q"; "quantum" ] ~docv:"Q" ~doc:"Scheduling quantum in requests.")
  in
  let cores_arg =
    Arg.(
      value
      & opt int 1
      & info [ "cores" ] ~docv:"N" ~doc:"Number of simulated cores.")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Run the flush-vs-ASID quantum sweep instead of a single run.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Forked worker processes for $(b,--sweep): each (quantum, \
             policy) point replays the cached traces in parallel.")
  in
  Cmd.v
    (Cmd.info "multi" ~doc:"Multi-process scheduling: flush vs ASID-tagged ABTB")
    Term.(
      const action $ mix_arg $ policy_arg $ quantum_arg $ cores_arg
      $ requests_arg $ seed_arg $ sweep_arg $ jobs_arg)

let fuzz_cmd =
  let module F = Dlink_fault.Fuzz in
  let module P = Dlink_fault.Plan in
  let module O = Dlink_fault.Oracle in
  let action name seed budget faults plan_str cooldown window json_path =
    if budget <= 0 then begin
      prerr_endline "dlinksim: --budget must be positive";
      exit 2
    end;
    if faults < 0 then begin
      prerr_endline "dlinksim: --faults must be non-negative";
      exit 2
    end;
    if window < 0 then begin
      prerr_endline "dlinksim: --window must be non-negative";
      exit 2
    end;
    let w = get_workload name (Some seed) in
    let skip_cfg =
      { Dlink_pipeline.Skip.default_config with quarantine_window = window }
    in
    let plan =
      match plan_str with
      | None -> P.generate ~seed ~budget ~faults ()
      | Some s -> (
          match P.of_string s with
          | Ok p -> p
          | Error e ->
              Printf.eprintf "dlinksim: bad --plan: %s\n" e;
              exit 2)
    in
    let t = F.trial ~skip_cfg ?cooldown ~workload:w ~budget plan in
    let r = t.F.report in
    Printf.printf "workload=%s seed=%d budget=%d cooldown=%d events=%d\n" name
      seed budget r.O.cooldown_requests
      (List.length plan.P.events);
    Printf.printf "plan: %s\n" (P.to_string plan);
    let tbl = Table.create ~headers:[ "Oracle"; "count" ] in
    let row lbl v = Table.add_row tbl [ lbl; string_of_int v ] in
    row "requests" (r.O.requests + r.O.cooldown_requests);
    row "faults injected" r.O.faults_injected;
    row "trampoline skips" r.O.skips;
    row "mis skips" r.O.mis_skips;
    row "lost skips" r.O.lost_skips;
    row "unclassified" r.O.unclassified;
    row "quarantined sets" r.O.quarantine_entries;
    row "cooldown skips" r.O.cooldown_skips;
    row "cooldown mis skips" r.O.cooldown_mis_skips;
    Table.print tbl;
    List.iter
      (fun (d : O.divergence) ->
        Printf.printf "%s request %d: site %s tramp %s ref->%s dut->%s\n"
          (if d.O.mis_skip then "mis-skip" else "unclassified")
          d.O.request
          (Dlink_isa.Addr.to_hex d.O.site)
          (Dlink_isa.Addr.to_hex d.O.arch_target)
          (Dlink_isa.Addr.to_hex d.O.ref_dest)
          (Dlink_isa.Addr.to_hex d.O.dut_dest))
      r.O.divergences;
    let shrunk =
      if t.F.failures = [] then None
      else Some (F.shrink ~skip_cfg ?cooldown ~workload:w ~budget t)
    in
    (match json_path with
    | None -> ()
    | Some path ->
        let module J = Dlink_util.Json in
        J.write_file path
          (J.Obj
             [
               ("workload", J.String name);
               ("seed", J.Int seed);
               ("budget", J.Int budget);
               ("cooldown", J.Int r.O.cooldown_requests);
               ("plan", J.String (P.to_string plan));
               ( "failures",
                 J.List (List.map (fun f -> J.String f) t.F.failures) );
               ( "minimal_plan",
                 match shrunk with
                 | None -> J.Null
                 | Some s -> J.String (P.to_string s.F.plan) );
               ("mis_skips", J.Int r.O.mis_skips);
               ("lost_skips", J.Int r.O.lost_skips);
               ("unclassified", J.Int r.O.unclassified);
               ("quarantine_entries", J.Int r.O.quarantine_entries);
               ("cooldown_skips", J.Int r.O.cooldown_skips);
               ("cooldown_mis_skips", J.Int r.O.cooldown_mis_skips);
               ("counters", counters_json r.O.counters);
             ]));
    match t.F.failures with
    | [] ->
        if r.O.mis_skips > 0 then
          Printf.printf
            "ok: %d mis-skip(s) detected, quarantined, and recovered from\n"
            r.O.mis_skips
        else print_endline "ok: all robustness properties hold"
    | failures ->
        List.iter (fun f -> Printf.printf "FAIL: %s\n" f) failures;
        (match shrunk with
        | Some s ->
            Printf.printf "minimal failing plan (%d of %d events): %s\n"
              (List.length s.F.plan.P.events)
              (List.length plan.P.events)
              (P.to_string s.F.plan);
            let window_flag =
              if
                window
                = Dlink_pipeline.Skip.default_config
                    .Dlink_pipeline.Skip.quarantine_window
              then ""
              else Printf.sprintf " --window %d" window
            in
            Printf.printf
              "replay with: dlinksim fuzz %s --budget %d%s --plan '%s'\n" name
              budget window_flag
              (P.to_string s.F.plan)
        | None -> ());
        exit 1
  in
  let fuzz_workload_arg =
    Arg.(
      value
      & pos 0 workload_conv "synth"
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload name (see $(b,list)); defaults to $(b,synth).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Plan and workload seed.")
  in
  let budget_arg =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~docv:"N" ~doc:"Requests executed under fault injection.")
  in
  let faults_arg =
    Arg.(
      value & opt int 8
      & info [ "faults" ] ~docv:"N" ~doc:"Fault events drawn into the plan.")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:"Replay an explicit fault plan (seed=S;AT:ACTION;...) instead of generating one.")
  in
  let cooldown_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cooldown" ] ~docv:"N"
          ~doc:"Fault-free recovery requests after the budget (default max 50 budget/4).")
  in
  let window_arg =
    Arg.(
      value
      & opt int Dlink_pipeline.Skip.default_config.Dlink_pipeline.Skip.quarantine_window
      & info [ "window" ] ~docv:"N"
          ~doc:"Quarantine window: skip opportunities suppressed per quarantined ABTB set.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the outcome as JSON.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Randomized fault injection checked by a differential oracle")
    Term.(
      const action $ fuzz_workload_arg $ seed_arg $ budget_arg $ faults_arg
      $ plan_arg $ cooldown_arg $ window_arg $ json_arg)

let churn_cmd =
  let module Ch = Dlink_core.Churn in
  let module CO = Dlink_fault.Churn_oracle in
  let module Mode = Dlink_linker.Mode in
  (* Only PLT-routed modes have runtime churn to measure: static and
     patched lower imports to direct calls at load time, which a module
     mapped after load cannot use. *)
  let churn_modes = [ "lazy"; "eager"; "stable" ] in
  let action rates_str modes_str calls seed check json_path =
    if calls <= 0 then begin
      prerr_endline "dlinksim: --calls must be positive";
      exit 2
    end;
    let rates =
      List.map
        (fun s ->
          match int_of_string_opt (String.trim s) with
          | Some r when r >= 0 && r <= 1000 -> r
          | _ ->
              Printf.eprintf
                "dlinksim: bad --rates entry %s (want integers in 0..1000)\n"
                (String.trim s);
              exit 2)
        (String.split_on_char ',' rates_str)
    in
    let modes =
      List.map
        (fun s ->
          let s = String.trim s in
          match Mode.of_string s with
          | Some m when List.mem s churn_modes -> m
          | Some _ ->
              Printf.eprintf
                "dlinksim: link mode %s has no runtime churn (valid: %s)\n" s
                (String.concat ", " churn_modes);
              exit 2
          | None ->
              Printf.eprintf "dlinksim: unknown link mode %s (valid: %s)\n" s
                (String.concat ", " churn_modes);
              exit 2)
        (String.split_on_char ',' modes_str)
    in
    let scen = Dlink_workloads.Churn.scenario ~seed () in
    let cells =
      List.concat_map
        (fun m ->
          List.map
            (fun rate -> Ch.run_cell ~link_mode:m ~rate ~calls ~seed scen)
            rates)
        modes
    in
    let t =
      Table.create
        ~headers:
          [
            "mode"; "rate"; "churn"; "opens"; "closes"; "rebinds";
            "stable hit/miss"; "resolver runs"; "clears/1k"; "skip rate";
            "sim MIPS";
          ]
    in
    List.iter
      (fun (c : Ch.cell) ->
        Table.add_row t
          [
            Mode.to_string c.Ch.link_mode;
            string_of_int c.Ch.rate;
            string_of_int c.Ch.churn_events;
            string_of_int c.Ch.opens;
            string_of_int c.Ch.closes;
            string_of_int c.Ch.rebinds;
            Printf.sprintf "%d/%d" c.Ch.stable_hits c.Ch.stable_misses;
            string_of_int c.Ch.counters.C.resolver_runs;
            fmt (Ch.clear_rate c);
            fmt ~decimals:3 (Ch.skip_rate c);
            fmt ~decimals:1 c.Ch.sim_mips;
          ])
      cells;
    Table.print
      ~title:
        (Printf.sprintf "Module churn: %d calls, seed %d (rate = events/1000 calls)"
           calls seed)
      t;
    (match json_path with
    | None -> ()
    | Some path ->
        let module J = Dlink_util.Json in
        let cell_json (c : Ch.cell) =
          J.Obj
            [
              ("link_mode", J.String (Mode.to_string c.Ch.link_mode));
              ("rate", J.Int c.Ch.rate);
              ("calls", J.Int c.Ch.calls);
              ("churn_events", J.Int c.Ch.churn_events);
              ("opens", J.Int c.Ch.opens);
              ("closes", J.Int c.Ch.closes);
              ("rebinds", J.Int c.Ch.rebinds);
              ("stable_hits", J.Int c.Ch.stable_hits);
              ("stable_misses", J.Int c.Ch.stable_misses);
              ("resolver_runs", J.Int c.Ch.counters.C.resolver_runs);
              ("abtb_clears", J.Int c.Ch.counters.C.abtb_clears);
              ("clear_rate", J.Float (Ch.clear_rate c));
              ("skip_rate", J.Float (Ch.skip_rate c));
              ("sim_mips", J.Float c.Ch.sim_mips);
              ("counters", counters_json c.Ch.counters);
            ]
        in
        let doc =
          J.Obj
            [
              ("workload", J.String Dlink_workloads.Churn.name);
              ("calls", J.Int calls);
              ("seed", J.Int seed);
              ("cells", J.List (List.map cell_json cells));
            ]
        in
        if path = "-" then print_endline (J.to_string doc)
        else J.write_file path doc);
    if check then begin
      let orate =
        match List.fold_left max 0 rates with 0 -> 200 | r -> r
      in
      let bad = ref false in
      List.iter
        (fun m ->
          let r =
            CO.run ~link_mode:m ~rate:orate ~ops:(min calls 1500) ~seed scen
          in
          Printf.printf
            "oracle %-6s churn=%d skips=%d resolver=%d mis=%d lost=%d \
             unclassified=%d\n"
            (Mode.to_string m) r.CO.churn_events r.CO.skips r.CO.resolver_runs
            r.CO.mis_skips r.CO.lost_skips r.CO.unclassified;
          if r.CO.mis_skips > 0 || r.CO.unclassified > 0 then bad := true)
        modes;
      if !bad then begin
        prerr_endline
          "dlinksim: churn oracle diverged under a fault-free plan";
        exit 1
      end
      else print_endline "ok: churn oracle clean in every requested mode"
    end
  in
  let rates_arg =
    Arg.(
      value
      & opt string "0,100,300"
      & info [ "rates" ] ~docv:"R1,R2,.."
          ~doc:"Churn rates to sweep, in events per 1000 calls.")
  in
  let modes_arg =
    Arg.(
      value
      & opt string "lazy,eager,stable"
      & info [ "modes" ] ~docv:"M1,M2,.."
          ~doc:"Link modes to sweep: lazy, eager or stable.")
  in
  let calls_arg =
    Arg.(
      value & opt int 2000
      & info [ "calls" ] ~docv:"N" ~doc:"Measured plugin calls per cell.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Scenario and rotation seed.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also run the differential churn oracle (fault-free plan) in \
             every requested mode and fail on any divergence.")
  in
  let json_arg =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write cells as JSON to FILE ($(b,-) or bare flag: stdout).")
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:"dlopen/dlclose churn sweep: ABTB clears vs skips vs throughput")
    Term.(
      const action $ rates_arg $ modes_arg $ calls_arg $ seed_arg $ check_arg
      $ json_arg)

let soak_cmd =
  let module Soak = Dlink_fault.Soak in
  let module Plan = Dlink_fault.Plan in
  let module Mode = Dlink_linker.Mode in
  let module Policy = Dlink_pipeline.Policy in
  let soak_modes = [ "lazy"; "eager"; "stable" ] in
  let action cores quantum policy_str mode_str rate ops events seed seeds jobs
      faults plan_str check json_path repro_path =
    if cores <= 0 then begin
      prerr_endline "dlinksim: --cores must be positive";
      exit 2
    end;
    if quantum <= 0 then begin
      prerr_endline "dlinksim: --quantum must be positive";
      exit 2
    end;
    if rate < 0 || rate > 1000 then begin
      prerr_endline "dlinksim: --rate must be in 0..1000";
      exit 2
    end;
    if seeds <= 0 then begin
      prerr_endline "dlinksim: --seeds must be positive";
      exit 2
    end;
    (match jobs with
    | Some j when j <= 0 ->
        prerr_endline "dlinksim: --jobs must be positive";
        exit 2
    | _ -> ());
    let policy =
      match Policy.of_string policy_str with
      | Some p -> p
      | None ->
          Printf.eprintf "dlinksim: unknown policy %s (valid: %s)\n" policy_str
            (String.concat ", " (List.map Policy.to_string Policy.all));
          exit 2
    in
    let link_mode =
      match Mode.of_string mode_str with
      | Some m when List.mem mode_str soak_modes -> m
      | Some _ ->
          Printf.eprintf
            "dlinksim: link mode %s has no runtime churn (valid: %s)\n" mode_str
            (String.concat ", " soak_modes);
          exit 2
      | None ->
          Printf.eprintf "dlinksim: unknown link mode %s (valid: %s)\n" mode_str
            (String.concat ", " soak_modes);
          exit 2
    in
    let plan_for seed =
      match (plan_str, faults) with
      | Some s, _ -> (
          match Plan.of_string s with
          | Ok p -> p
          | Error e ->
              Printf.eprintf "dlinksim: bad --plan: %s\n" e;
              exit 2)
      | None, 0 -> Plan.empty 0
      | None, f ->
          Plan.generate ~coherence:true ~churn:true ~seed ~budget:ops ~faults:f
            ()
    in
    (* A soak run is inherently sequential (one shared bus, RNG drawn in
       lock-step with the crosscheck), so parallelism comes from running
       independent seeds — one domain each — rather than from inside a
       run. *)
    let run_one seed =
      let plan = plan_for seed in
      let scen = Dlink_workloads.Churn.scenario ~seed () in
      let params =
        {
          Soak.default_params with
          Soak.cores;
          quantum;
          policy;
          link_mode;
          rate;
          ops;
          min_instructions = events;
          seed;
        }
      in
      (seed, plan, scen, params, Soak.run ~plan params scen)
    in
    let jobs = Option.value jobs ~default:1 in
    let results =
      Dlink_util.Dpool.map ~jobs run_one (List.init seeds (fun i -> seed + i))
    in
    let json_docs = ref [] in
    let any_failed = ref false in
    let report (seed, plan, scen, params, r) =
    Printf.printf
      "soak cores=%d quantum=%d policy=%s mode=%s rate=%d seed=%d\n" cores
      quantum (Policy.to_string policy) (Mode.to_string link_mode) rate seed;
    Printf.printf
      "  ops=%d churn=%d migrations=%d instructions=%d crashes=%d\n" r.Soak.ops
      r.Soak.churn_events r.Soak.migrations r.Soak.counters.C.instructions
      r.Soak.crashes;
    Printf.printf
      "  invariants: checks=%d violations=%d (unmapped=%d stale-skip=%d \
       stale-msg=%d) aba-recovered=%d\n"
      r.Soak.checks r.Soak.violations r.Soak.fetch_unmapped r.Soak.stale_skips
      r.Soak.stale_messages r.Soak.aba_discards;
    Printf.printf
      "  bus: published=%d acked=%d dropped=%d retries=%d reorders=%d \
       timeouts=%d stale-discards=%d\n"
      r.Soak.bus.Soak.published r.Soak.bus.Soak.acked r.Soak.bus.Soak.dropped
      r.Soak.bus.Soak.retries r.Soak.bus.Soak.reorders r.Soak.bus.Soak.timeouts
      r.Soak.bus.Soak.stale_discards;
    Printf.printf
      "  dynload: opens=%d closes=%d rebinds=%d grace-unmaps=%d \
       forced-unmaps=%d\n"
      r.Soak.opens r.Soak.closes r.Soak.rebinds r.Soak.grace_unmaps
      r.Soak.forced_unmaps;
    List.iter
      (fun v ->
        Printf.printf "  violation: %s\n"
          (Dlink_fault.Invariant.violation_to_string v))
      r.Soak.recorded;
    print_counters r.Soak.counters;
    (match json_path with
    | None -> ()
    | Some _ ->
        let module J = Dlink_util.Json in
        let doc =
          J.Obj
            [
              ("cores", J.Int cores);
              ("quantum", J.Int quantum);
              ("policy", J.String (Policy.to_string policy));
              ("link_mode", J.String (Mode.to_string link_mode));
              ("rate", J.Int rate);
              ("seed", J.Int seed);
              ("plan", J.String (Plan.to_string plan));
              ("ops", J.Int r.Soak.ops);
              ("churn_events", J.Int r.Soak.churn_events);
              ("migrations", J.Int r.Soak.migrations);
              ("crashes", J.Int r.Soak.crashes);
              ("checks", J.Int r.Soak.checks);
              ("violations", J.Int r.Soak.violations);
              ("fetch_unmapped", J.Int r.Soak.fetch_unmapped);
              ("stale_skips", J.Int r.Soak.stale_skips);
              ("stale_messages", J.Int r.Soak.stale_messages);
              ("aba_discards", J.Int r.Soak.aba_discards);
              ("bus_published", J.Int r.Soak.bus.Soak.published);
              ("bus_acked", J.Int r.Soak.bus.Soak.acked);
              ("bus_dropped", J.Int r.Soak.bus.Soak.dropped);
              ("bus_retries", J.Int r.Soak.bus.Soak.retries);
              ("bus_reorders", J.Int r.Soak.bus.Soak.reorders);
              ("bus_timeouts", J.Int r.Soak.bus.Soak.timeouts);
              ("bus_stale_discards", J.Int r.Soak.bus.Soak.stale_discards);
              ("grace_unmaps", J.Int r.Soak.grace_unmaps);
              ("forced_unmaps", J.Int r.Soak.forced_unmaps);
              ("counters", counters_json r.Soak.counters);
            ]
        in
        json_docs := (Printf.sprintf "seed_%d" seed, doc) :: !json_docs);
    if check then begin
      let failures = Soak.check ~plan r in
      let cross_ok =
        match Soak.crosscheck params scen with
        | Ok () ->
            print_endline "ok: cores=1 soak bit-identical to churn cell";
            true
        | Error e ->
            prerr_endline ("dlinksim: " ^ e);
            false
      in
      (* Any violating run — caught fault class or genuine property
         breakage — yields a minimal replayable plan; the exit code only
         reflects the properties, since caught violations under a seeded
         plan are the checker doing its job. *)
      if Soak.failed ~plan r then begin
        let small, rs = Soak.shrink params ~plan scen in
        let repro = Plan.to_string small in
        Printf.printf "shrunk reproducer (%d violations): %s\n"
          rs.Soak.violations repro;
        match repro_path with
        | Some path ->
            let oc = open_out path in
            output_string oc (repro ^ "\n");
            close_out oc
        | None -> ()
      end;
      if failures <> [] || not cross_ok then begin
        List.iter
          (fun f -> Printf.eprintf "dlinksim: soak property failed: %s\n" f)
          failures;
        any_failed := true
      end
      else print_endline "ok: all soak properties hold"
    end
    in
    List.iter report results;
    (match json_path with
    | None -> ()
    | Some path ->
        let module J = Dlink_util.Json in
        let doc =
          (* Single seed keeps the flat report shape; a seed sweep nests
             one report per seed. *)
          match List.rev !json_docs with
          | [ (_, d) ] when seeds = 1 -> d
          | docs -> J.Obj docs
        in
        if path = "-" then print_endline (J.to_string doc)
        else J.write_file path doc);
    if !any_failed then exit 1
  in
  let cores_arg =
    Arg.(
      value & opt int 4
      & info [ "cores" ] ~docv:"N" ~doc:"Pipeline kernels to migrate over.")
  in
  let quantum_arg =
    Arg.(
      value & opt int 64
      & info [ "quantum" ] ~docv:"OPS" ~doc:"Ops per scheduling quantum.")
  in
  let policy_arg =
    Arg.(
      value
      & opt string "asid-shared-guard"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Context-switch policy: flush, asid or asid-shared-guard.")
  in
  let mode_arg =
    Arg.(
      value & opt string "lazy"
      & info [ "mode" ] ~docv:"MODE" ~doc:"Link mode: lazy, eager or stable.")
  in
  let rate_arg =
    Arg.(
      value & opt int 300
      & info [ "rate" ] ~docv:"R" ~doc:"Churn events per 1000 ops.")
  in
  let ops_arg =
    Arg.(
      value & opt int 10_000
      & info [ "ops" ] ~docv:"N" ~doc:"Minimum plugin calls to soak.")
  in
  let events_arg =
    Arg.(
      value & opt int 0
      & info [ "events" ] ~docv:"N"
          ~doc:
            "Keep soaking until at least N instructions have retired \
             system-wide (0: stop at --ops).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Scenario, rotation and plan seed.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Soak N consecutive seeds (starting at --seed), one \
             independent run each.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Run the seed sweep across N domains (default 1).")
  in
  let faults_arg =
    Arg.(
      value & opt int 0
      & info [ "faults" ] ~docv:"N"
          ~doc:
            "Generate a fault plan with N random events (coherence and \
             churn classes included); ignored when --plan is given.")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:"Replay a serialized fault plan (e.g. a shrunk reproducer).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Verify soak safety properties and the cores=1 bit-identity \
             crosscheck; on failure, shrink the plan to a minimal \
             reproducer and exit 1.")
  in
  let json_arg =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the report as JSON to FILE ($(b,-) or bare flag: stdout).")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "reproducer" ] ~docv:"FILE"
          ~doc:"With --check: write the shrunk reproducer plan to FILE.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Multi-core churn soak: invariant checking under coherence faults")
    Term.(
      const action $ cores_arg $ quantum_arg $ policy_arg $ mode_arg $ rate_arg
      $ ops_arg $ events_arg $ seed_arg $ seeds_arg $ jobs_arg $ faults_arg
      $ plan_arg $ check_arg $ json_arg $ repro_arg)

let serve_cmd =
  let module Serve = Dlink_core.Serve in
  let module Arrival = Dlink_util.Arrival in
  let module J = Dlink_util.Json in
  (* Largest single cell served through the packed-trace replay path;
     beyond it the streaming generate driver runs the cell without ever
     recording a trace. *)
  let trace_cell_cap = 20_000 in
  (* Every axis value is validated up front with the full list of valid
     spellings — a typo'd load or arrival exits 2, never a stack trace. *)
  let parse_load s =
    match float_of_string_opt (String.trim s) with
    | Some l when Float.is_finite l && l > 0.0 -> l
    | _ ->
        Printf.eprintf
          "dlinksim: bad load %s (want a positive real fraction of base \
           capacity, e.g. 0.9)\n"
          (String.trim s);
        exit 2
  in
  let parse_arrival s =
    match Arrival.of_string s with
    | Some a -> a
    | None ->
        Printf.eprintf "dlinksim: unknown arrival process %s (valid: %s)\n" s
          (String.concat ", " Arrival.names);
        exit 2
  in
  let parse_flush s =
    match Serve.flush_of_string (String.trim s) with
    | Some f -> f
    | None ->
        Printf.eprintf "dlinksim: unknown flush policy %s (valid: %s)\n"
          (String.trim s)
          (String.concat ", " Serve.flush_names);
        exit 2
  in
  let action name mode_str load loads_str arrival_str queue_cap requests
      flush_str flush_every seed sweep modes_str flushes_str jobs segment hist
      json_path =
    if queue_cap <= 0 then begin
      prerr_endline "dlinksim: --queue-cap must be positive";
      exit 2
    end;
    if flush_every <= 0 then begin
      prerr_endline "dlinksim: --flush-every must be positive";
      exit 2
    end;
    (match requests with
    | Some n when n < 0 ->
        prerr_endline "dlinksim: --requests must be non-negative";
        exit 2
    | _ -> ());
    (match jobs with
    | Some j when j <= 0 ->
        prerr_endline "dlinksim: --jobs must be positive";
        exit 2
    | _ -> ());
    (match segment with
    | Some k when k <= 0 ->
        prerr_endline "dlinksim: --segment must be positive";
        exit 2
    | _ -> ());
    let arrival = parse_arrival arrival_str in
    let w = get_workload name seed in
    let cell_seed = Option.value seed ~default:Serve.default_config.Serve.seed in
    let requests =
      Option.value requests ~default:Serve.default_config.Serve.requests
    in
    let cfg =
      {
        Serve.default_config with
        Serve.arrival;
        queue_cap;
        requests;
        flush_every;
        seed = cell_seed;
      }
    in
    let cells =
      if sweep then
        let split s = String.split_on_char ',' s in
        let loads = List.map parse_load (split loads_str) in
        let modes = List.map resolve_mode (split modes_str) in
        let flushes = List.map parse_flush (split flushes_str) in
        Dlink_trace.Serve_replay.sweep ?jobs ~cfg ~loads ~modes ~flushes w
      else
        let cfg =
          {
            cfg with
            Serve.mode = resolve_mode mode_str;
            load = parse_load load;
            flush = parse_flush flush_str;
          }
        in
        (* Million-request cells never materialize a packed trace (its
           event stream would dwarf the cell itself): beyond the trace
           cap the streaming generate driver runs the cell with
           snapshot-segmented domain parallelism and O(segments)
           memory. *)
        if requests > trace_cell_cap then
          [ Serve.run_cell_stream ?jobs ?segment ~cfg w ]
        else [ Dlink_trace.Serve_replay.run_cell ?jobs ?segment ~cfg w ]
    in
    let mean_service =
      match cells with
      | c :: _ -> c.Serve.mean_service_cycles
      | [] -> 0
    in
    let segments =
      match cells with
      | [ c ] when not sweep -> Printf.sprintf " segments=%d" c.Serve.segments
      | _ -> ""
    in
    Printf.printf
      "workload=%s requests=%d queue_cap=%d seed=%d mean_service=%d cycles%s\n"
      name requests queue_cap cell_seed mean_service segments;
    let t =
      Table.create
        ~headers:
          [
            "mode"; "arrival"; "flush"; "load"; "served"; "drops";
            "offered r/s"; "goodput r/s"; "util"; "p50 us"; "p99 us";
            "p999 us";
          ]
    in
    List.iter
      (fun (c : Serve.cell) ->
        Table.add_row t
          [
            Sim.mode_to_string c.Serve.cfg.Serve.mode;
            Arrival.to_string c.Serve.cfg.Serve.arrival;
            Serve.flush_to_string c.Serve.cfg.Serve.flush;
            fmt c.Serve.cfg.Serve.load;
            string_of_int c.Serve.served;
            string_of_int c.Serve.dropped;
            fmt ~decimals:0 c.Serve.offered_rps;
            fmt ~decimals:0 c.Serve.goodput_rps;
            fmt ~decimals:3 c.Serve.util;
            fmt ~decimals:1 c.Serve.p50_us;
            fmt ~decimals:1 c.Serve.p99_us;
            fmt ~decimals:1 c.Serve.p999_us;
          ])
      cells;
    Table.print ~title:("Open-loop serving: " ^ name) t;
    (if not sweep then
       match cells with
       | [ c ] ->
           let rt =
             Table.create ~headers:[ "request type"; "served"; "mean us"; "p99 us" ]
           in
           Array.iter
             (fun (s : Serve.rtype_stats) ->
               if s.Serve.rt_served > 0 then
                 Table.add_row rt
                   [
                     s.Serve.rt_name;
                     string_of_int s.Serve.rt_served;
                     fmt ~decimals:1 s.Serve.rt_mean_us;
                     fmt ~decimals:1 s.Serve.rt_p99_us;
                   ])
             c.Serve.by_rtype;
           Table.print ~title:"Per request type" rt
       | _ -> ());
    match json_path with
    | None -> ()
    | Some path ->
        let doc =
          J.Obj
            [
              ("workload", J.String name);
              ("requests", J.Int requests);
              ("queue_cap", J.Int queue_cap);
              ("seed", J.Int cell_seed);
              ("mean_service_cycles", J.Int mean_service);
              ("cells", J.List (List.map (Serve.cell_json ~hist) cells));
            ]
        in
        if path = "-" then print_endline (J.to_string doc)
        else J.write_file path doc
  in
  let load_arg =
    Arg.(
      value & opt string "0.8"
      & info [ "load" ] ~docv:"L"
          ~doc:"Offered load as a fraction of base-mode capacity (single cell).")
  in
  let loads_arg =
    Arg.(
      value
      & opt string "0.5,0.7,0.85,0.95,1.05"
      & info [ "loads" ] ~docv:"L1,L2,.."
          ~doc:"Offered loads to sweep (with $(b,--sweep)).")
  in
  let arrival_arg =
    Arg.(
      value & opt string "poisson"
      & info [ "arrival" ] ~docv:"PROC"
          ~doc:
            "Arrival process: poisson, mmpp (bursty), or closed:C (closed \
             loop with C clients thinking between completions).")
  in
  let queue_cap_arg =
    Arg.(
      value
      & opt int Serve.default_config.Serve.queue_cap
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Admission queue bound; arrivals beyond it are dropped.")
  in
  let flush_arg =
    Arg.(
      value & opt string "none"
      & info [ "flush" ] ~docv:"POLICY"
          ~doc:"Flush policy between requests: none, flush or asid (single cell).")
  in
  let flushes_arg =
    Arg.(
      value & opt string "none"
      & info [ "flushes" ] ~docv:"P1,P2,.."
          ~doc:"Flush policies to sweep (with $(b,--sweep)).")
  in
  let flush_every_arg =
    Arg.(
      value
      & opt int Serve.default_config.Serve.flush_every
      & info [ "flush-every" ] ~docv:"K"
          ~doc:"Apply the flush policy every K requests of the stream.")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Sweep $(b,--modes) x $(b,--flushes) x $(b,--loads) instead of one cell.")
  in
  let modes_arg =
    Arg.(
      value & opt string "base,enhanced"
      & info [ "modes" ] ~docv:"M1,M2,.."
          ~doc:"Link modes to sweep (with $(b,--sweep)).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domains for $(b,--sweep) (cell-level) or for a single cell's \
             snapshot-segmented measured pass; results are bit-identical \
             regardless of N.")
  in
  let segment_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "segment" ] ~docv:"K"
          ~doc:
            "Snapshot the kernel every K requests of a single cell's \
             measured pass (default: spread over 4*jobs segments); the \
             segments replay concurrently on $(b,--jobs) domains.")
  in
  let hist_arg =
    Arg.(
      value & flag
      & info [ "hist" ]
          ~doc:"Include the log-bucket latency histogram in $(b,--json) output.")
  in
  let json_arg =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write cells as JSON to FILE ($(b,-) or bare flag: stdout).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Open-loop serving: offered load vs goodput and tail latency")
    Term.(
      const action $ workload_arg $ mode_arg $ load_arg $ loads_arg
      $ arrival_arg $ queue_cap_arg $ requests_arg $ flush_arg
      $ flush_every_arg $ seed_arg $ sweep_arg $ modes_arg $ flushes_arg
      $ jobs_arg $ segment_arg $ hist_arg $ json_arg)

let list_cmd =
  let action () =
    List.iter print_endline Dlink_workloads.Registry.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads") Term.(const action $ const ())

let version = "0.10.0"

let () =
  let doc = "Simulator for 'Architectural Support for Dynamic Linking' (ASPLOS'15)" in
  let group =
    Cmd.group
      (Cmd.info "dlinksim" ~version ~doc)
      [
        run_cmd;
        compare_cmd;
        sweep_cmd;
        profile_cmd;
        memsave_cmd;
        multi_cmd;
        fuzz_cmd;
        churn_cmd;
        serve_cmd;
        soak_cmd;
        dump_cmd;
        trace_cmd;
        list_cmd;
      ]
  in
  (* No uncaught exceptions reach the user: anything a bad flag combination
     can provoke becomes a one-line message and a non-zero exit. *)
  let code =
    try Cmd.eval ~catch:false group with
    | Invalid_argument msg | Failure msg | Sys_error msg ->
        Printf.eprintf "dlinksim: %s\n" msg;
        2
    | Dlink_mach.Process.Fault msg ->
        Printf.eprintf "dlinksim: machine fault: %s\n" msg;
        2
    | Dlink_pipeline.Skip.Misspeculation msg ->
        Printf.eprintf "dlinksim: misspeculation: %s\n" msg;
        2
  in
  exit code
