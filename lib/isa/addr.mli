(** Virtual addresses and memory-geometry helpers.

    Addresses are plain non-negative OCaml ints (the simulator models a
    48-bit virtual address space, which fits easily in 63-bit ints). *)

type t = int

val none : t
(** [-1]: the "no address" sentinel used by packed (allocation-free)
    interfaces in place of [None].  Never a valid address. *)

val cache_line_bytes : int
(** 64, as on x86-64. *)

val page_bytes : int
(** 4096. *)

val line_of : t -> int
(** Cache-line index of an address. *)

val page_of : t -> int
(** Page index of an address. *)

val align_up : t -> int -> t
(** [align_up a n] rounds [a] up to a multiple of [n] (a power of two). *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering. *)

val to_hex : t -> string
