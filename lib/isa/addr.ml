type t = int

let none = -1
let cache_line_bytes = 64
let page_bytes = 4096
let line_of a = a / cache_line_bytes
let page_of a = a / page_bytes

let align_up a n =
  assert (n > 0 && n land (n - 1) = 0);
  (a + n - 1) land lnot (n - 1)

let to_hex a = Printf.sprintf "0x%x" a
let pp ppf a = Format.pp_print_string ppf (to_hex a)
