type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit b indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int x -> Buffer.add_string b (string_of_int x)
  | Float x -> Buffer.add_string b (float_repr x)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          emit b (indent + 2) item)
        items;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          emit b (indent + 2) item)
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b 0 v;
  Buffer.contents b

(* Atomic: emit to a sibling temp file and rename over the target, so a
   crash mid-write never leaves a truncated JSON document behind. *)
let write_file path v =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string v);
         output_char oc '\n')
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser, the emitter's inverse.  Numbers without '.',
   'e' or 'E' become [Int]; everything else numeric becomes [Float].
   \uXXXX escapes outside the Latin-1 range are rejected (the emitter
   only produces them for control characters). *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "expected %c at offset %d, found %c" c !pos c'
    | None -> error "expected %c at offset %d, found end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then error "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 >= n then error "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> error "bad \\u escape %S" hex
                   in
                   if code > 0xff then
                     error "\\u%s outside the supported Latin-1 range" hex;
                   Buffer.add_char b (Char.chr code);
                   pos := !pos + 4
               | c -> error "bad escape \\%c" c);
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> error "bad number %S" tok
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> error "expected , or ] at offset %d" !pos
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> error "expected , or } at offset %d" !pos
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error "unexpected %c at offset %d" c !pos
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then error "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m
