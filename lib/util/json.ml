type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit b indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int x -> Buffer.add_string b (string_of_int x)
  | Float x -> Buffer.add_string b (float_repr x)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          emit b (indent + 2) item)
        items;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          emit b (indent + 2) item)
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b 0 v;
  Buffer.contents b

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
