(** Deterministic fork-based parallel map for CPU-bound sweeps.

    [map ~jobs f items] computes [List.map f items], splitting the work
    across [jobs] forked worker processes when [jobs > 1].  Results come
    back over pipes via [Marshal] and are merged by item index, so the
    output is identical to the sequential map — workers only buy
    wall-clock time.  Each worker inherits the parent's heap copy-on-write
    (loaded objects, cached traces); mutations made by [f] are invisible
    to the parent and to the other items' computations, so [f] must return
    everything the caller needs, as a marshal-safe value (no closures,
    no custom blocks).

    If any application of [f] raises, or a worker dies, [map] raises
    [Failure] after all workers have been reaped. *)

val default_jobs : unit -> int
(** [DLINK_JOBS] when set to a positive integer, else the runtime's
    recommended domain count (≈ core count), else 1.  An invalid value
    (e.g. [DLINK_JOBS=all]) prints a one-line warning to stderr and
    yields 1 instead of degrading silently. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Sequential [List.map] when [jobs <= 1], on non-Unix platforms, or for
    lists of at most one element. *)

val forked_map : int -> ('a -> 'b) -> 'a list -> 'b list
(** The fork pool itself, without [map]'s sequential short-circuits.
    Kept as the fallback for non-reentrant paths — code that mutates
    process-global state per item and relies on fork's copy-on-write
    isolation — where the shared-heap {!Dpool} would race. *)
