(* Open-loop arrival processes for the serving stack.

   An arrival process turns a seed and a mean inter-arrival gap into a
   non-decreasing array of absolute arrival times, measured on whatever
   clock the caller uses (the serving drivers use simulated cycles).
   Everything flows through [Rng], so a (process, seed, mean_gap, n)
   quadruple always produces the same arrivals — the property the
   generate-vs-replay bit-identity tests rely on.

   [Poisson] is the textbook open-loop client: i.i.d. exponential gaps.
   [Mmpp] is a two-state Markov-modulated Poisson process — a calm and a
   burst state, each holding for a geometrically distributed number of
   arrivals, with exponential gaps whose means differ by [burst].  The
   state means are chosen so the long-run mean gap stays [mean_gap]:
   gap_burst = 2g/(1+b), gap_calm = 2gb/(1+b), so (gap_burst+gap_calm)/2
   = g and gap_calm/gap_burst = b. *)

type process = Poisson | Mmpp of { burst : float; dwell : int }

let default_mmpp = Mmpp { burst = 8.0; dwell = 32 }
let names = [ "poisson"; "mmpp" ]

let to_string = function
  | Poisson -> "poisson"
  | Mmpp _ -> "mmpp"

let of_string = function
  | "poisson" -> Some Poisson
  | "mmpp" -> Some default_mmpp
  | _ -> None

let times ~seed ~mean_gap ~n process =
  if not (Float.is_finite mean_gap) || mean_gap <= 0.0 then
    invalid_arg "Arrival.times: mean_gap must be positive";
  if n < 0 then invalid_arg "Arrival.times: n must be non-negative";
  let rng = Rng.create (Site_hash.mix2 seed 0x5e17) in
  let t = ref 0.0 in
  match process with
  | Poisson ->
      Array.init n (fun _ ->
          t := !t +. Rng.exponential rng ~mean:mean_gap;
          int_of_float !t)
  | Mmpp { burst; dwell } ->
      if not (Float.is_finite burst) || burst < 1.0 then
        invalid_arg "Arrival.times: burst factor must be >= 1";
      if dwell <= 0 then invalid_arg "Arrival.times: dwell must be positive";
      let gap_burst = 2.0 *. mean_gap /. (1.0 +. burst) in
      let gap_calm = gap_burst *. burst in
      let in_burst = ref false in
      let p_switch = 1.0 /. float_of_int dwell in
      Array.init n (fun _ ->
          if Rng.bool rng p_switch then in_burst := not !in_burst;
          let mean = if !in_burst then gap_burst else gap_calm in
          t := !t +. Rng.exponential rng ~mean;
          int_of_float !t)
