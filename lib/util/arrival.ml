(* Arrival processes for the serving stack.

   An open-loop arrival process turns a seed and a mean inter-arrival gap
   into a non-decreasing sequence of absolute arrival times, measured on
   whatever clock the caller uses (the serving drivers use simulated
   cycles).  Everything flows through [Rng], so a (process, seed,
   mean_gap, n) quadruple always produces the same arrivals — the
   property the generate-vs-replay bit-identity tests rely on.

   [Poisson] is the textbook open-loop client: i.i.d. exponential gaps.
   [Mmpp] is a two-state Markov-modulated Poisson process — a calm and a
   burst state, each holding for a geometrically distributed number of
   arrivals, with exponential gaps whose means differ by [burst].  The
   state means are chosen so the long-run mean gap stays [mean_gap]:
   gap_burst = 2g/(1+b), gap_calm = 2gb/(1+b), so (gap_burst+gap_calm)/2
   = g and gap_calm/gap_burst = b.

   [Closed] is the limited-concurrency (closed-loop) client population:
   [clients] users each issue a request, wait for its completion, think
   for an exponentially distributed time, and issue the next.  Arrivals
   are therefore coupled to completions and cannot be precomputed as an
   array — the queue engine weaves them in as it serves ([times] raises).
   The open-loop/closed-loop contrast is the classic saturation
   methodology: open-loop load keeps arriving during a stall (queues
   grow unboundedly past the knee), while a closed population
   self-throttles at [clients] outstanding. *)

type process =
  | Poisson
  | Mmpp of { burst : float; dwell : int }
  | Closed of { clients : int }

let default_mmpp = Mmpp { burst = 8.0; dwell = 32 }
let names = [ "poisson"; "mmpp"; "closed:C" ]

let to_string = function
  | Poisson -> "poisson"
  | Mmpp _ -> "mmpp"
  | Closed { clients } -> Printf.sprintf "closed:%d" clients

let of_string s =
  match s with
  | "poisson" -> Some Poisson
  | "mmpp" -> Some default_mmpp
  | _ ->
      let prefix = "closed:" in
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        match int_of_string_opt (String.sub s pl (String.length s - pl)) with
        | Some c when c > 0 -> Some (Closed { clients = c })
        | _ -> None
      else None

(* Incremental generator producing exactly the sequence [times] returns,
   one arrival per [next] call — the streaming serving path never
   materializes the arrival array for million-request cells. *)
type gen = {
  rng : Rng.t;
  mean_gap : float;
  gap_burst : float; (* 0 when Poisson *)
  gap_calm : float;
  p_switch : float;
  mutable in_burst : bool;
  mutable is_mmpp : bool;
  mutable t : float;
}

let gen ~seed ~mean_gap process =
  if not (Float.is_finite mean_gap) || mean_gap <= 0.0 then
    invalid_arg "Arrival.gen: mean_gap must be positive";
  let rng = Rng.create (Site_hash.mix2 seed 0x5e17) in
  match process with
  | Poisson ->
      {
        rng;
        mean_gap;
        gap_burst = 0.0;
        gap_calm = 0.0;
        p_switch = 0.0;
        in_burst = false;
        is_mmpp = false;
        t = 0.0;
      }
  | Mmpp { burst; dwell } ->
      if not (Float.is_finite burst) || burst < 1.0 then
        invalid_arg "Arrival.gen: burst factor must be >= 1";
      if dwell <= 0 then invalid_arg "Arrival.gen: dwell must be positive";
      let gap_burst = 2.0 *. mean_gap /. (1.0 +. burst) in
      {
        rng;
        mean_gap;
        gap_burst;
        gap_calm = gap_burst *. burst;
        p_switch = 1.0 /. float_of_int dwell;
        in_burst = false;
        is_mmpp = true;
        t = 0.0;
      }
  | Closed _ ->
      invalid_arg
        "Arrival.gen: closed-loop arrivals are coupled to completions; the \
         queue engine generates them"

let next g =
  let mean =
    if not g.is_mmpp then g.mean_gap
    else begin
      if Rng.bool g.rng g.p_switch then g.in_burst <- not g.in_burst;
      if g.in_burst then g.gap_burst else g.gap_calm
    end
  in
  g.t <- g.t +. Rng.exponential g.rng ~mean;
  int_of_float g.t

let times ~seed ~mean_gap ~n process =
  if n < 0 then invalid_arg "Arrival.times: n must be non-negative";
  match process with
  | Closed _ ->
      invalid_arg
        "Arrival.times: closed-loop arrivals are coupled to completions; the \
         queue engine generates them"
  | _ ->
      let g = gen ~seed ~mean_gap process in
      Array.init n (fun _ -> next g)
