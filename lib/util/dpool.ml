(* Shared-memory domain pool.  OCaml 5 domains run OCaml code truly in
   parallel within one process, so — unlike the [Parallel] fork pool —
   workers share the parent's heap directly: no [Marshal], no pipes, no
   copy-on-write divergence, and results may contain closures or custom
   blocks.  Work distribution is stealing over a single atomic cursor:
   each domain repeatedly claims the next unclaimed item index, so a slow
   cell never stalls its stride-mates the way the fork pool's static
   striding can.  Every item writes its result (or error) into its own
   slot of a shared array — one writer per slot, no locks — and the
   calling domain merges by index after [Domain.join], so the output
   order is deterministic and identical to the sequential map. *)

let default_jobs = Parallel.default_jobs

let map ?(jobs = 1) f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let next = Atomic.make 0 in
    let results = Array.make n None in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (f arr.(i)) with e -> Error (Printexc.to_string e)
        in
        results.(i) <- Some r;
        worker ()
      end
    in
    (* The calling domain is worker zero; [jobs - 1] more are spawned.  A
       failed spawn (domain limit) degrades gracefully: the cursor hands
       the unclaimed items to whoever is still running. *)
    let spawned =
      Array.init (jobs - 1) (fun _ ->
          try Some (Domain.spawn worker) with _ -> None)
    in
    worker ();
    Array.iter (function Some d -> Domain.join d | None -> ()) spawned;
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some (Ok v) -> v
           | Some (Error msg) ->
               failwith (Printf.sprintf "Dpool.map: item %d raised: %s" i msg)
           | None -> failwith (Printf.sprintf "Dpool.map: item %d missing" i))
         results)
  end
