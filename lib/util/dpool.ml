(* Shared-memory domain pool.  OCaml 5 domains run OCaml code truly in
   parallel within one process, so — unlike the [Parallel] fork pool —
   workers share the parent's heap directly: no [Marshal], no pipes, no
   copy-on-write divergence, and results may contain closures or custom
   blocks.  Work distribution is stealing over a single atomic cursor:
   each domain repeatedly claims the next unclaimed item index, so a slow
   cell never stalls its stride-mates the way the fork pool's static
   striding can.  Every item writes its result (or error) into its own
   slot of a shared array — one writer per slot, no locks — and the
   calling domain merges by index after [Domain.join], so the output
   order is deterministic and identical to the sequential map. *)

let default_jobs = Parallel.default_jobs

let map ?(jobs = 1) f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let next = Atomic.make 0 in
    let results = Array.make n None in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (f arr.(i)) with e -> Error (Printexc.to_string e)
        in
        results.(i) <- Some r;
        worker ()
      end
    in
    (* The calling domain is worker zero; [jobs - 1] more are spawned.  A
       failed spawn (domain limit) degrades gracefully: the cursor hands
       the unclaimed items to whoever is still running. *)
    let spawned =
      Array.init (jobs - 1) (fun _ ->
          try Some (Domain.spawn worker) with _ -> None)
    in
    worker ();
    Array.iter (function Some d -> Domain.join d | None -> ()) spawned;
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some (Ok v) -> v
           | Some (Error msg) ->
               failwith (Printf.sprintf "Dpool.map: item %d raised: %s" i msg)
           | None -> failwith (Printf.sprintf "Dpool.map: item %d missing" i))
         results)
  end

(* Ordered producer/consumer pipeline.  Workers claim item indices from
   the same atomic stealing cursor as [map] and run [produce] truly in
   parallel; the calling domain consumes results strictly in index order,
   so [consume] sees exactly the sequential-order stream and needs no
   synchronisation of its own.  A bounded window provides backpressure: a
   worker may not start item [i] until fewer than [window] items separate
   it from the consumption frontier, so at most [window] produced-but-
   unconsumed results are ever in flight — memory stays O(window), not
   O(n).  This is the shape of segmented serving: segments replay on
   domains while the main domain streams their per-request services into
   the admission queue in request order. *)

let run_ordered ?(jobs = 1) ?window ~produce ~consume n =
  if n <= 0 then ()
  else if jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      consume i (produce i)
    done
  else begin
    let jobs = min jobs n in
    let window = max (Option.value window ~default:(2 * jobs)) jobs in
    let next = Atomic.make 0 in
    let abort = Atomic.make false in
    let slots = Array.make n None in
    let consumed = ref 0 in
    let m = Mutex.create () in
    let can_produce = Condition.create () in
    let can_consume = Condition.create () in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && not (Atomic.get abort) then begin
        Mutex.lock m;
        while i >= !consumed + window && not (Atomic.get abort) do
          Condition.wait can_produce m
        done;
        Mutex.unlock m;
        if not (Atomic.get abort) then begin
          let r =
            try Ok (produce i) with e -> Error (Printexc.to_string e)
          in
          Mutex.lock m;
          slots.(i) <- Some r;
          Condition.broadcast can_consume;
          Mutex.unlock m
        end;
        worker ()
      end
    in
    (* All [jobs] producers are spawned: the calling domain is the
       consumer.  A failed spawn degrades gracefully as in [map]. *)
    let spawned =
      Array.init jobs (fun _ -> try Some (Domain.spawn worker) with _ -> None)
    in
    let stop () =
      Atomic.set abort true;
      Mutex.lock m;
      Condition.broadcast can_produce;
      Mutex.unlock m;
      Array.iter (function Some d -> Domain.join d | None -> ()) spawned
    in
    let fail i msg =
      stop ();
      failwith (Printf.sprintf "Dpool.run_ordered: item %d raised: %s" i msg)
    in
    (* No spawn succeeded at all: fall back to producing inline. *)
    if Array.for_all (( = ) None) spawned then
      for i = 0 to n - 1 do
        consume i (produce i)
      done
    else begin
      let i = ref 0 in
      while !i < n do
        Mutex.lock m;
        while slots.(!i) = None do
          Condition.wait can_consume m
        done;
        let r = slots.(!i) in
        slots.(!i) <- None;
        consumed := !i + 1;
        Condition.broadcast can_produce;
        Mutex.unlock m;
        (match r with
        | Some (Ok v) -> (
            match consume !i v with
            | () -> ()
            | exception e ->
                stop ();
                raise e)
        | Some (Error msg) -> fail !i msg
        | None -> assert false);
        incr i
      done;
      stop ()
    end
  end
