(** Open-loop arrival processes for the serving stack.

    Deterministic: a (process, seed, mean_gap, n) quadruple always
    produces the same arrival times, so every serving experiment is
    reproducible from its seed and the generate and trace-replay drivers
    see identical arrivals. *)

type process =
  | Poisson  (** i.i.d. exponential inter-arrival gaps *)
  | Mmpp of { burst : float; dwell : int }
      (** two-state Markov-modulated Poisson: calm/burst states whose mean
          gaps differ by [burst], switching with probability [1/dwell] per
          arrival; long-run mean gap stays the requested one *)

val default_mmpp : process
(** The [Mmpp] parameterization the CLI name "mmpp" maps to. *)

val names : string list
(** Valid CLI spellings, for error listings. *)

val to_string : process -> string
val of_string : string -> process option

val times : seed:int -> mean_gap:float -> n:int -> process -> int array
(** [times ~seed ~mean_gap ~n p] is the non-decreasing array of [n]
    absolute arrival times (same unit as [mean_gap]; the serving drivers
    pass simulated cycles).  Raises [Invalid_argument] on a non-positive
    or non-finite [mean_gap], negative [n], or bad MMPP parameters. *)
