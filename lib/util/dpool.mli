(** Deterministic shared-memory parallel map over OCaml 5 domains.

    [map ~jobs f items] computes [List.map f items] with up to [jobs]
    domains (the caller participates, so [jobs - 1] are spawned).  Items
    are claimed by an atomic work-stealing cursor — a slow item never
    stalls the others — and each item's result lands in its own slot of a
    shared array (one writer per slot, lock-free), merged by index after
    the join, so the output is identical to the sequential map; workers
    only buy wall-clock time.

    Unlike {!Parallel.map}, workers share the heap: [f] may return
    closures and custom blocks, and mutations to shared structures are
    visible across items — so [f] must only mutate state it owns (or
    state with its own synchronisation, like the mutex-guarded trace
    cache).  For code that relies on process isolation — mutating
    process-global state per item without locks — keep using the
    {!Parallel} fork pool.

    If any application of [f] raises, [map] raises [Failure] naming the
    first failing item, after all domains have been joined. *)

val default_jobs : unit -> int
(** Alias for {!Parallel.default_jobs}: [DLINK_JOBS] when set to a
    positive integer, else the runtime's recommended domain count. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Sequential [List.map] when [jobs <= 1] or for lists of at most one
    element. *)

val run_ordered :
  ?jobs:int ->
  ?window:int ->
  produce:(int -> 'a) ->
  consume:(int -> 'a -> unit) ->
  int ->
  unit
(** [run_ordered ~jobs ~window ~produce ~consume n] runs [produce i] for
    [i = 0..n-1] on up to [jobs] worker domains (stealing cursor, as in
    {!map}) while the {e calling} domain applies [consume i result]
    strictly in index order — so [consume] observes exactly the
    sequential-order stream and may freely mutate caller-owned state.

    [window] (default [2 * jobs], clamped to at least [jobs]) bounds the
    number of produced-but-unconsumed items in flight: a worker blocks
    before starting an item more than [window] ahead of the consumption
    frontier, keeping memory O(window) regardless of [n].

    [jobs <= 1] (or [n <= 1]) degrades to the pure sequential
    [consume i (produce i)] loop — same observable behaviour, no domains.
    If a [produce] raises, [Failure] names the item after all domains are
    joined; if [consume] raises, the exception propagates likewise after
    the join. *)
