(** Minimal JSON emitter and parser for machine-readable reports.

    Deliberately tiny so the repo needs no external JSON dependency; the
    bench harness uses it for [--json FILE] output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed, 2-space indent, stable field order.  Non-finite floats
    serialize as [null]. *)

val write_file : string -> t -> unit
(** [write_file path v] writes [to_string v] plus a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse the emitter's output back (and any plain JSON without exotic
    escapes): [of_string (to_string v)] is [Ok v] for every value whose
    floats are finite.  Numbers without a fraction or exponent parse as
    [Int]; [\uXXXX] escapes above [0xff] are rejected (the emitter only
    produces them for control characters). *)
