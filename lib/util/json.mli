(** Minimal JSON emitter (no parser) for machine-readable reports.

    Deliberately tiny so the repo needs no external JSON dependency; the
    bench harness uses it for [--json FILE] output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed, 2-space indent, stable field order.  Non-finite floats
    serialize as [null]. *)

val write_file : string -> t -> unit
(** [write_file path v] writes [to_string v] plus a trailing newline. *)
