(* Fork-based worker pool.  OCaml's runtime lock makes threads useless for
   CPU-bound sweeps, and the simulators mutate large heaps, so plain
   [Unix.fork] with copy-on-write sharing of the parent's state (loaded
   objects, cached traces) is the cheapest parallelism available.  Each
   worker computes a strided slice of the item list and streams the
   results back over a pipe with [Marshal]; the parent merges by index, so
   the output order is deterministic regardless of worker scheduling. *)

let default_jobs () =
  match Sys.getenv_opt "DLINK_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf
            "warning: DLINK_JOBS=%s is not a positive integer; running with 1 \
             job\n\
             %!"
            s;
          1)
  | None -> ( try Domain.recommended_domain_count () with _ -> 1)

type 'b reply = (int * ('b, string) result) list

let forked_map jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = min jobs n in
  (* Workers inherit the parent's buffered output; flush now so nothing is
     emitted twice. *)
  flush stdout;
  flush stderr;
  let pipes = Array.init jobs (fun _ -> Unix.pipe ~cloexec:false ()) in
  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let spawn w =
    match Unix.fork () with
    | 0 ->
        (* Child: keep only the write end of our own pipe.  Closing every
           other write end matters — an inherited copy would keep a
           sibling's pipe open and hang the parent's read-to-EOF. *)
        Array.iteri
          (fun i (r, wfd) ->
            close_quietly r;
            if i <> w then close_quietly wfd)
          pipes;
        let _, wfd = pipes.(w) in
        let status =
          try
            let out = ref [] in
            for i = n - 1 downto 0 do
              if i mod jobs = w then
                let r =
                  try Ok (f arr.(i))
                  with e -> Error (Printexc.to_string e)
                in
                out := (i, r) :: !out
            done;
            let oc = Unix.out_channel_of_descr wfd in
            Marshal.to_channel oc (!out : _ reply) [];
            flush oc;
            0
          with _ -> 1
        in
        close_quietly wfd;
        Unix._exit status
    | pid -> pid
  in
  let pids = Array.init jobs spawn in
  Array.iter (fun (_, wfd) -> Unix.close wfd) pipes;
  let replies =
    Array.mapi
      (fun w (rfd, _) ->
        let ic = Unix.in_channel_of_descr rfd in
        let reply =
          try Ok (Marshal.from_channel ic : _ reply)
          with End_of_file | Failure _ ->
            Error (Printf.sprintf "Parallel.map: worker %d died" w)
        in
        close_in ic;
        reply)
      pipes
  in
  let failures = ref [] in
  Array.iter
    (fun pid ->
      match snd (Unix.waitpid [] pid) with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c -> failures := Printf.sprintf "exit %d" c :: !failures
      | Unix.WSIGNALED s -> failures := Printf.sprintf "signal %d" s :: !failures
      | Unix.WSTOPPED s -> failures := Printf.sprintf "stopped %d" s :: !failures)
    pids;
  let out = Array.make n None in
  Array.iter
    (fun reply ->
      match reply with
      | Error msg -> failwith msg
      | Ok l ->
          List.iter
            (fun (i, r) ->
              match r with
              | Ok v -> out.(i) <- Some v
              | Error msg ->
                  failwith (Printf.sprintf "Parallel.map: item %d raised: %s" i msg))
            l)
    replies;
  (match !failures with
  | [] -> ()
  | f :: _ -> failwith ("Parallel.map: worker " ^ f));
  Array.to_list
    (Array.mapi
       (fun i v ->
         match v with
         | Some v -> v
         | None -> failwith (Printf.sprintf "Parallel.map: item %d missing" i))
       out)

let map ?(jobs = 1) f items =
  if jobs <= 1 || (not Sys.unix) || List.length items <= 1 then List.map f items
  else forked_map jobs f items
