(** Branch target buffer: maps a branch instruction's PC to its last
    observed target.  The paper's mechanism works by training the BTB entry
    of a library call site with the *function* address instead of the
    trampoline address. *)

open Dlink_isa

type t

val create : sets:int -> ways:int -> t
val predict : t -> Addr.t -> Addr.t option

val predict_default : t -> Addr.t -> Addr.t
(** Allocation-free {!predict}: {!Addr.none} on a miss. *)

val update : t -> Addr.t -> Addr.t -> unit
val flush : t -> unit
val valid_count : t -> int

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
val fingerprint : t -> int
