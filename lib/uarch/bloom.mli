(** Bloom filter over addresses (paper §3.1–3.2).

    Guards the ABTB: it records the GOT slot addresses backing live ABTB
    entries.  A retired store whose address hits the filter forces a full
    ABTB + filter clear.  No false negatives — a GOT modification can never
    be missed — while false positives only cost a redundant clear. *)

open Dlink_isa

type t

val create : bits:int -> hashes:int -> t
(** [bits] must be a positive power of two; [hashes] in [\[1, 8\]]. *)

val add : t -> asid:int -> Addr.t -> unit
(** The address-space id (0 = untagged) is folded into the hash, so
    co-resident address spaces keep probabilistically disjoint entries and
    [mem] becomes a per-address-space query.  Clearing is always global.
    The label is mandatory because [mem] runs per retired store: an
    optional argument would allocate a [Some] per call. *)

val mem : t -> asid:int -> Addr.t -> bool

val clear : t -> unit
(** O(1): bumps the filter's generation stamp (the field is packed 32 bits
    per word with a per-word stamp, lazily re-zeroed on the next write),
    mirroring the hardware's single-cycle flash reset — clears fire on
    every guarded GOT store, so they must not walk the field. *)

val clear_bit : t -> int -> unit
(** Fault-injection/test API: force one bit of the field to zero,
    deliberately breaking the no-false-negative guarantee (models a bit
    flip in the filter SRAM).  Raises [Invalid_argument] when the index is
    outside [0, size_bits).  Never called by the mechanism itself. *)

val bits_set : t -> int
val size_bits : t -> int

val false_positive_rate : t -> float
(** Theoretical rate for the current occupancy. *)

type snap
(** Frozen copy of the filter: packed bit words, per-word stamps, epoch. *)

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Overwrite [t] with the snapshot's state.  Target must have the same
    size; raises [Invalid_argument] otherwise. *)

val fingerprint : t -> int
(** Deterministic digest of the live bit field (stale words count as
    zero) — equal observable filters digest equal. *)
