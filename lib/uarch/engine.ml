open Dlink_mach

type t = {
  cfg : Config.t;
  ic : Cache.t;
  dc : Cache.t;
  l2c : Cache.t;
  it : Tlb.t;
  dt : Tlb.t;
  btb : Btb.t;
  dir : Direction.t;
  ras : Ras.t;
  c : Counters.t;
  mutable asid : int; (* tag applied to TLB fills/lookups; 0 = untagged *)
}

let create (cfg : Config.t) =
  {
    cfg;
    ic = Cache.create ~name:"L1I" ~size_bytes:cfg.l1i.size_bytes ~ways:cfg.l1i.ways;
    dc = Cache.create ~name:"L1D" ~size_bytes:cfg.l1d.size_bytes ~ways:cfg.l1d.ways;
    l2c = Cache.create ~name:"L2" ~size_bytes:cfg.l2.size_bytes ~ways:cfg.l2.ways;
    it = Tlb.create ~name:"ITLB" ~entries:cfg.itlb.entries ~ways:cfg.itlb.ways;
    dt = Tlb.create ~name:"DTLB" ~entries:cfg.dtlb.entries ~ways:cfg.dtlb.ways;
    btb = Btb.create ~sets:cfg.btb_sets ~ways:cfg.btb_ways;
    dir =
      Direction.create ~table_bits:cfg.gshare_table_bits
        ~history_bits:cfg.gshare_history_bits;
    ras = Ras.create ~depth:cfg.ras_depth;
    c = Counters.create ();
    asid = 0;
  }

let config t = t.cfg
let counters t = t.c
let asid t = t.asid
let set_asid t asid = t.asid <- asid
let icache t = t.ic
let dcache t = t.dc
let l2 t = t.l2c
let itlb t = t.it
let dtlb t = t.dt
let btb_update t pc target = Btb.update t.btb pc target
let btb_predict t pc = Btb.predict t.btb pc

(* An access that misses L1 is charged the L2 hit latency, or the memory
   latency when it misses L2 as well. *)
let miss_cost t addr ~l2_counts =
  if Cache.access t.l2c addr then t.cfg.penalties.l1_miss
  else begin
    if l2_counts then t.c.l2_misses <- t.c.l2_misses + 1;
    t.cfg.penalties.l2_miss
  end

let ifetch t pc =
  let cycles = ref 0 in
  if not (Tlb.access ~asid:t.asid t.it pc) then begin
    t.c.itlb_misses <- t.c.itlb_misses + 1;
    cycles := !cycles + t.cfg.penalties.tlb_miss
  end;
  if not (Cache.access t.ic pc) then begin
    t.c.icache_misses <- t.c.icache_misses + 1;
    cycles := !cycles + miss_cost t pc ~l2_counts:true
  end;
  !cycles

let data_access t addr =
  let cycles = ref 0 in
  if not (Tlb.access ~asid:t.asid t.dt addr) then begin
    t.c.dtlb_misses <- t.c.dtlb_misses + 1;
    cycles := !cycles + t.cfg.penalties.tlb_miss
  end;
  if not (Cache.access t.dc addr) then begin
    t.c.dcache_misses <- t.c.dcache_misses + 1;
    cycles := !cycles + miss_cost t addr ~l2_counts:true
  end;
  !cycles

let direct_target t ~pc ~target =
  (* Decode recomputes direct targets, so a BTB miss is only a fill bubble. *)
  match Btb.predict t.btb pc with
  | Some p when p = target -> 0
  | _ ->
      t.c.btb_misses <- t.c.btb_misses + 1;
      Btb.update t.btb pc target;
      t.cfg.penalties.btb_fill

let indirect_target t ~pc ~target =
  let cost =
    match Btb.predict t.btb pc with
    | Some p when p = target -> 0
    | _ ->
        t.c.branch_mispredictions <- t.c.branch_mispredictions + 1;
        t.cfg.penalties.mispredict
  in
  Btb.update t.btb pc target;
  cost

let branch_cost t (ev : Event.t) branch =
  t.c.branches <- t.c.branches + 1;
  match branch with
  | Event.Cond_branch { target; taken } ->
      let predicted = Direction.predict t.dir ev.pc in
      Direction.update t.dir ev.pc taken;
      let dir_cost =
        if predicted <> taken then begin
          t.c.branch_mispredictions <- t.c.branch_mispredictions + 1;
          t.cfg.penalties.mispredict
        end
        else 0
      in
      let target_cost = if taken then direct_target t ~pc:ev.pc ~target else 0 in
      dir_cost + target_cost
  | Event.Call_direct { target; arch_target } ->
      Ras.push t.ras (ev.pc + ev.size);
      if target = arch_target then direct_target t ~pc:ev.pc ~target
      else
        (* Redirected (trampoline-skipped) call: the BTB is the only source
           of the function address, so a stale entry is a real mispredict
           corrected by the ABTB at resolution. *)
        indirect_target t ~pc:ev.pc ~target
  | Event.Jump_direct { target } -> direct_target t ~pc:ev.pc ~target
  | Event.Call_indirect { target; _ } ->
      Ras.push t.ras (ev.pc + ev.size);
      indirect_target t ~pc:ev.pc ~target
  | Event.Jump_indirect { target; _ } | Event.Jump_resolver { target } ->
      indirect_target t ~pc:ev.pc ~target
  | Event.Return { target } -> (
      match Ras.pop t.ras with
      | Some p when p = target -> 0
      | _ ->
          t.c.branch_mispredictions <- t.c.branch_mispredictions + 1;
          t.cfg.penalties.mispredict)

let retire t (ev : Event.t) =
  t.c.instructions <- t.c.instructions + 1;
  if ev.in_plt then t.c.tramp_instructions <- t.c.tramp_instructions + 1;
  let cycles = ref 1 in
  cycles := !cycles + ifetch t ev.pc;
  (match ev.load with Some a -> cycles := !cycles + data_access t a | None -> ());
  (match ev.load2 with Some a -> cycles := !cycles + data_access t a | None -> ());
  (match ev.store with Some a -> cycles := !cycles + data_access t a | None -> ());
  (match ev.branch with
  | Some b -> cycles := !cycles + branch_cost t ev b
  | None -> ());
  t.c.cycles <- t.c.cycles + !cycles

let context_switch ?(flush_predictors = false) ?(flush_caches = false)
    ?(retain_asid = false) t =
  (* ASID-tagged TLBs survive the switch: stale entries belong to other
     tags and can never hit, so nothing needs flushing. *)
  if not retain_asid then begin
    Tlb.flush t.it;
    Tlb.flush t.dt
  end;
  Ras.flush t.ras;
  if flush_predictors then begin
    Btb.flush t.btb;
    Direction.flush t.dir
  end;
  if flush_caches then begin
    Cache.flush t.ic;
    Cache.flush t.dc;
    Cache.flush t.l2c
  end
