open Dlink_isa
open Dlink_mach

type t = {
  cfg : Config.t;
  ic : Cache.t;
  dc : Cache.t;
  l2c : Cache.t;
  it : Tlb.t;
  dt : Tlb.t;
  btb : Btb.t;
  dir : Direction.t;
  ras : Ras.t;
  c : Counters.t;
  mutable asid : int; (* tag applied to TLB fills/lookups; 0 = untagged *)
}

let create (cfg : Config.t) =
  {
    cfg;
    ic = Cache.create ~name:"L1I" ~size_bytes:cfg.l1i.size_bytes ~ways:cfg.l1i.ways;
    dc = Cache.create ~name:"L1D" ~size_bytes:cfg.l1d.size_bytes ~ways:cfg.l1d.ways;
    l2c = Cache.create ~name:"L2" ~size_bytes:cfg.l2.size_bytes ~ways:cfg.l2.ways;
    it = Tlb.create ~name:"ITLB" ~entries:cfg.itlb.entries ~ways:cfg.itlb.ways;
    dt = Tlb.create ~name:"DTLB" ~entries:cfg.dtlb.entries ~ways:cfg.dtlb.ways;
    btb = Btb.create ~sets:cfg.btb_sets ~ways:cfg.btb_ways;
    dir =
      Direction.create ~table_bits:cfg.gshare_table_bits
        ~history_bits:cfg.gshare_history_bits;
    ras = Ras.create ~depth:cfg.ras_depth;
    c = Counters.create ();
    asid = 0;
  }

let config t = t.cfg
let counters t = t.c
let asid t = t.asid
let set_asid t asid = t.asid <- asid
let icache t = t.ic
let dcache t = t.dc
let l2 t = t.l2c
let itlb t = t.it
let dtlb t = t.dt
let btb_update t pc target = Btb.update t.btb pc target
let btb_predict t pc = Btb.predict t.btb pc
let btb_predict_raw t pc = Btb.predict_default t.btb pc

(* An access that misses L1 is charged the L2 hit latency, or the memory
   latency when it misses L2 as well. *)
let miss_cost t addr ~l2_counts =
  if Cache.access t.l2c addr then t.cfg.penalties.l1_miss
  else begin
    if l2_counts then t.c.l2_misses <- t.c.l2_misses + 1;
    t.cfg.penalties.l2_miss
  end

let ifetch t pc =
  let cycles =
    if Tlb.access ~asid:t.asid t.it pc then 0
    else begin
      t.c.itlb_misses <- t.c.itlb_misses + 1;
      t.cfg.penalties.tlb_miss
    end
  in
  if Cache.access t.ic pc then cycles
  else begin
    t.c.icache_misses <- t.c.icache_misses + 1;
    cycles + miss_cost t pc ~l2_counts:true
  end

let data_access t addr =
  let cycles =
    if Tlb.access ~asid:t.asid t.dt addr then 0
    else begin
      t.c.dtlb_misses <- t.c.dtlb_misses + 1;
      t.cfg.penalties.tlb_miss
    end
  in
  if Cache.access t.dc addr then cycles
  else begin
    t.c.dcache_misses <- t.c.dcache_misses + 1;
    cycles + miss_cost t addr ~l2_counts:true
  end

let direct_target t ~pc ~target =
  (* Decode recomputes direct targets, so a BTB miss is only a fill bubble. *)
  if Btb.predict_default t.btb pc = target then 0
  else begin
    t.c.btb_misses <- t.c.btb_misses + 1;
    Btb.update t.btb pc target;
    t.cfg.penalties.btb_fill
  end

let indirect_target t ~pc ~target =
  let cost =
    if Btb.predict_default t.btb pc = target then 0
    else begin
      t.c.branch_mispredictions <- t.c.branch_mispredictions + 1;
      t.cfg.penalties.mispredict
    end
  in
  Btb.update t.btb pc target;
  cost

(* Branch accounting on packed operands.  [aux] is the architectural target
   of a direct call (equal to [target] when unredirected) or the GOT slot
   of an indirect branch; it is ignored for the other kinds. *)
let branch_cost_packed t ~pc ~size ~kind ~target ~aux ~taken =
  t.c.branches <- t.c.branches + 1;
  if kind = Event.Kind.cond_branch then begin
    let predicted = Direction.predict t.dir pc in
    Direction.update t.dir pc taken;
    let dir_cost =
      if predicted <> taken then begin
        t.c.branch_mispredictions <- t.c.branch_mispredictions + 1;
        t.cfg.penalties.mispredict
      end
      else 0
    in
    let target_cost = if taken then direct_target t ~pc ~target else 0 in
    dir_cost + target_cost
  end
  else if kind = Event.Kind.call_direct then begin
    Ras.push t.ras (pc + size);
    if target = aux then direct_target t ~pc ~target
    else
      (* Redirected (trampoline-skipped) call: the BTB is the only source
         of the function address, so a stale entry is a real mispredict
         corrected by the ABTB at resolution. *)
      indirect_target t ~pc ~target
  end
  else if kind = Event.Kind.jump_direct then direct_target t ~pc ~target
  else if kind = Event.Kind.call_indirect then begin
    Ras.push t.ras (pc + size);
    indirect_target t ~pc ~target
  end
  else if kind = Event.Kind.jump_indirect || kind = Event.Kind.jump_resolver then
    indirect_target t ~pc ~target
  else begin
    (* Return: predicted by the RAS.  Pushed addresses are non-negative, so
       the empty-stack sentinel can never equal [target]. *)
    if Ras.pop_default t.ras = target then 0
    else begin
      t.c.branch_mispredictions <- t.c.branch_mispredictions + 1;
      t.cfg.penalties.mispredict
    end
  end

let retire_packed t ~pc ~size ~in_plt ~load ~load2 ~store ~kind ~target ~aux
    ~taken =
  t.c.instructions <- t.c.instructions + 1;
  if in_plt then t.c.tramp_instructions <- t.c.tramp_instructions + 1;
  let cycles = 1 + ifetch t pc in
  let cycles = if load >= 0 then cycles + data_access t load else cycles in
  let cycles = if load2 >= 0 then cycles + data_access t load2 else cycles in
  let cycles = if store >= 0 then cycles + data_access t store else cycles in
  let cycles =
    if kind <> Event.Kind.none then
      cycles + branch_cost_packed t ~pc ~size ~kind ~target ~aux ~taken
    else cycles
  in
  t.c.cycles <- t.c.cycles + cycles

let retire t (ev : Event.t) =
  let load = match ev.load with Some a -> a | None -> Addr.none in
  let load2 = match ev.load2 with Some a -> a | None -> Addr.none in
  let store = match ev.store with Some a -> a | None -> Addr.none in
  let kind, target, aux, taken = Event.pack_branch ev.branch in
  retire_packed t ~pc:ev.pc ~size:ev.size ~in_plt:ev.in_plt ~load ~load2 ~store
    ~kind ~target ~aux ~taken

(* Whole-engine snapshot: every modeled structure plus the counters and
   the current ASID.  Dominated by the cache tables' bigarray blits (the
   L2 is the big one); no per-entry work.  The counter record is restored
   in place with [Counters.assign] because callers (the kernel) hold it by
   reference. *)

type snap = {
  s_ic : Cache.snap;
  s_dc : Cache.snap;
  s_l2c : Cache.snap;
  s_it : Tlb.snap;
  s_dt : Tlb.snap;
  s_btb : Btb.snap;
  s_dir : Direction.snap;
  s_ras : Ras.snap;
  s_c : Counters.t;
  s_asid : int;
}

let snapshot t =
  {
    s_ic = Cache.snapshot t.ic;
    s_dc = Cache.snapshot t.dc;
    s_l2c = Cache.snapshot t.l2c;
    s_it = Tlb.snapshot t.it;
    s_dt = Tlb.snapshot t.dt;
    s_btb = Btb.snapshot t.btb;
    s_dir = Direction.snapshot t.dir;
    s_ras = Ras.snapshot t.ras;
    s_c = Counters.copy t.c;
    s_asid = t.asid;
  }

let restore t s =
  Cache.restore t.ic s.s_ic;
  Cache.restore t.dc s.s_dc;
  Cache.restore t.l2c s.s_l2c;
  Tlb.restore t.it s.s_it;
  Tlb.restore t.dt s.s_dt;
  Btb.restore t.btb s.s_btb;
  Direction.restore t.dir s.s_dir;
  Ras.restore t.ras s.s_ras;
  Counters.assign ~into:t.c s.s_c;
  t.asid <- s.s_asid

let fingerprint t =
  Hashtbl.hash
    [
      Cache.fingerprint t.ic;
      Cache.fingerprint t.dc;
      Cache.fingerprint t.l2c;
      Tlb.fingerprint t.it;
      Tlb.fingerprint t.dt;
      Btb.fingerprint t.btb;
      Direction.fingerprint t.dir;
      Ras.fingerprint t.ras;
      t.asid;
    ]

let context_switch ?(flush_predictors = false) ?(flush_caches = false)
    ?(retain_asid = false) t =
  (* ASID-tagged TLBs survive the switch: stale entries belong to other
     tags and can never hit, so nothing needs flushing. *)
  if not retain_asid then begin
    Tlb.flush t.it;
    Tlb.flush t.dt
  end;
  Ras.flush t.ras;
  if flush_predictors then begin
    Btb.flush t.btb;
    Direction.flush t.dir
  end;
  if flush_caches then begin
    Cache.flush t.ic;
    Cache.flush t.dc;
    Cache.flush t.l2c
  end
