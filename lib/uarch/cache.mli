(** Set-associative cache model (tag/LRU state only; no data payload). *)

open Dlink_isa

type t

val create : name:string -> size_bytes:int -> ways:int -> t
(** [line_bytes] is the architectural 64.  [size_bytes / (64 * ways)] must
    be a power of two. *)

val name : t -> string
val size_bytes : t -> int
val ways : t -> int

val access : t -> Addr.t -> bool
(** [true] on hit; on miss the line is filled (LRU victim evicted). *)

val present : t -> Addr.t -> bool
(** Non-intrusive line probe. *)

val flush : t -> unit
val lines_valid : t -> int

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
val fingerprint : t -> int
