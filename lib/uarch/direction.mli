(** Gshare conditional-branch direction predictor: a table of 2-bit
    saturating counters indexed by PC xor global history. *)

open Dlink_isa

type t

val create : table_bits:int -> history_bits:int -> t
(** [table_bits] in [\[4, 24\]]; [history_bits] in [\[0, 24\]]. *)

val predict : t -> Addr.t -> bool
(** Predicted taken? (does not update state) *)

val update : t -> Addr.t -> bool -> unit
(** Train with the actual direction and shift it into the history. *)

val flush : t -> unit

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
val fingerprint : t -> int
