open Dlink_isa

type t = {
  slots : Addr.t array;
  mutable top : int; (* next push position *)
  mutable count : int; (* valid entries, <= depth *)
}

let create ~depth =
  if depth <= 0 then invalid_arg "Ras.create: depth must be positive";
  { slots = Array.make depth 0; top = 0; count = 0 }

let depth t = Array.length t.slots
let occupancy t = t.count

let push t a =
  t.slots.(t.top) <- a;
  t.top <- (t.top + 1) mod depth t;
  if t.count < depth t then t.count <- t.count + 1

let pop t =
  if t.count = 0 then None
  else begin
    t.top <- (t.top + depth t - 1) mod depth t;
    t.count <- t.count - 1;
    Some t.slots.(t.top)
  end

let pop_default t =
  if t.count = 0 then Addr.none
  else begin
    t.top <- (t.top + depth t - 1) mod depth t;
    t.count <- t.count - 1;
    t.slots.(t.top)
  end

let flush t =
  t.top <- 0;
  t.count <- 0

type snap = { s_slots : Addr.t array; s_top : int; s_count : int }

let snapshot t = { s_slots = Array.copy t.slots; s_top = t.top; s_count = t.count }

let restore t s =
  if Array.length s.s_slots <> Array.length t.slots then
    invalid_arg "Ras.restore: geometry mismatch";
  Array.blit s.s_slots 0 t.slots 0 (Array.length t.slots);
  t.top <- s.s_top;
  t.count <- s.s_count

let fingerprint t = Hashtbl.hash (t.slots, t.top, t.count)
