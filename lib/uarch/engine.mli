(** Event-driven microarchitecture accounting.

    Consumes the retire stream and charges each instruction its fetch,
    data, and branch costs against the modeled structures.  This mirrors
    the paper's methodology, which observes performance-counter deltas on
    real hardware rather than simulating a cycle-accurate pipeline: the
    first-order quantities (misses, mispredictions, retired instructions)
    and a penalty-weighted cycle count are what the evaluation reports.

    Branch accounting rules:
    - conditional branches consult the gshare predictor (full mispredict
      penalty when wrong) and the BTB for the taken target (fill bubble);
    - direct calls/jumps suffer only a BTB fill bubble on a miss (decode
      recomputes the target) — unless the call was redirected by the
      trampoline-skip mechanism, in which case a stale BTB is a genuine
      mispredict because decode's target is also wrong;
    - indirect branches mispredict whenever the BTB target differs;
    - returns are predicted by the return address stack. *)

open Dlink_isa
open Dlink_mach

type t

val create : Config.t -> t
val config : t -> Config.t
val counters : t -> Counters.t
val retire : t -> Event.t -> unit

val retire_packed :
  t ->
  pc:Addr.t ->
  size:int ->
  in_plt:bool ->
  load:Addr.t ->
  load2:Addr.t ->
  store:Addr.t ->
  kind:int ->
  target:Addr.t ->
  aux:Addr.t ->
  taken:bool ->
  unit
(** Allocation-free {!retire} on packed operands.  Absent operands are
    {!Addr.none}; [kind] is an {!Event.Kind} code ({!Event.Kind.none} for a
    non-branch); [aux] is the architectural target of a direct call (equal
    to [target] when unredirected) or the GOT slot of an indirect branch.
    [retire t ev] is equivalent to packing [ev]'s fields and calling this. *)

val btb_update : t -> Addr.t -> Addr.t -> unit
(** External BTB training: the skip controller uses this to retarget a
    library call's BTB entry at pair-retire time (§3.2 "populating"). *)

val btb_predict : t -> Addr.t -> Addr.t option

val btb_predict_raw : t -> Addr.t -> Addr.t
(** Allocation-free {!btb_predict}: {!Addr.none} on a miss. *)

val asid : t -> int
val set_asid : t -> int -> unit
(** Address-space id tagging TLB fills and lookups (default 0).  Set by the
    multi-process scheduler when it dispatches a different process. *)

val context_switch :
  ?flush_predictors:bool -> ?flush_caches:bool -> ?retain_asid:bool -> t -> unit
(** The RAS always flushes.  TLBs flush unless [retain_asid] (tagged
    entries from other address spaces cannot hit, so retention is safe);
    predictors and caches flush optionally (physically-tagged caches
    survive a switch on real hardware). *)

val icache : t -> Cache.t
val dcache : t -> Cache.t
val l2 : t -> Cache.t
val itlb : t -> Tlb.t
val dtlb : t -> Tlb.t

type snap
(** Frozen copy of every modeled structure, the counters, and the ASID. *)

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Overwrite [t] with the snapshot.  The target must share the
    snapshotted engine's {!Config.t} geometry; the counter record is
    updated in place (callers hold it by reference). *)

val fingerprint : t -> int
(** Deterministic digest of all table/predictor contents and the ASID
    (counters excluded — compare those directly). *)
