(** Return address stack: a small circular predictor for [ret] targets. *)

open Dlink_isa

type t

val create : depth:int -> t
val push : t -> Addr.t -> unit
val pop : t -> Addr.t option
(** [None] when empty (predict structurally unknown). *)

val pop_default : t -> Addr.t
(** Allocation-free {!pop}: {!Addr.none} when empty.  Pushed addresses are
    always non-negative, so the sentinel is unambiguous. *)

val flush : t -> unit
val depth : t -> int
val occupancy : t -> int

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
val fingerprint : t -> int
