open Dlink_isa

type t = { tname : string; table : unit Assoc_table.t }

let create ~name ~entries ~ways =
  if entries <= 0 || entries mod ways <> 0 then
    invalid_arg "Tlb.create: entries/ways mismatch";
  { tname = name; table = Assoc_table.create ~sets:(entries / ways) ~ways }

let name t = t.tname
let entries t = Assoc_table.capacity t.table
let access t ~asid a = Assoc_table.touch t.table ~tag:asid (Addr.page_of a) ()
let present ?(asid = 0) t a =
  Assoc_table.probe t.table ~tag:asid (Addr.page_of a) <> None
let flush ?asid t = Assoc_table.clear ?tag:asid t.table

type snap = unit Assoc_table.snap

let snapshot t = Assoc_table.snapshot t.table
let restore t s = Assoc_table.restore t.table s
let fingerprint t = Assoc_table.fingerprint ~hash_value:(fun () -> 1) t.table
