module Site_hash = Dlink_util.Site_hash

(* Values live in a plain ['v array]: validity is carried entirely by the
   companion [keys] array (-1 = invalid), so [insert]/[find] never allocate
   a [Some] cell on the hot path.  Invalid slots hold [dummy], an unboxed
   placeholder never returned to callers.  This is safe because every
   access to [values] happens at the polymorphic type ['v] inside this
   module (the compiler emits dynamically-checked array primitives), and
   the array is created from an immediate so it is never a flat float
   array. *)

type 'v t = {
  sets : int;
  ways : int;
  keys : int array; (* sets*ways; -1 = invalid *)
  tags : int array; (* address-space id of each entry; 0 when untagged *)
  values : 'v array;
  dummy : 'v; (* placeholder stored in invalid slots *)
  stamps : int array; (* LRU recency; larger = more recent *)
  mutable tick : int;
}

let create ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Assoc_table.create: non-positive size";
  if sets land (sets - 1) <> 0 then
    invalid_arg "Assoc_table.create: sets must be a power of two";
  let n = sets * ways in
  let dummy : 'v = Obj.magic 0 in
  {
    sets;
    ways;
    keys = Array.make n (-1);
    tags = Array.make n 0;
    values = Array.make n dummy;
    dummy;
    stamps = Array.make n 0;
    tick = 0;
  }

let sets t = t.sets
let ways t = t.ways
let capacity t = t.sets * t.ways

(* Real structures index with the key's low bits (sequential lines map to
   sequential sets), which is what conflict behaviour depends on.  The tag
   does not participate in indexing — entries from different address spaces
   compete for the same set, as in a physically shared structure. *)
let set_of t key = key land (t.sets - 1)

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* The scans are top-level functions rather than local closures: a local
   [let rec] capturing its environment is heap-allocated per call, which
   would put ~7 words on every cache/TLB/BTB access of the replay loop. *)
let rec scan_slot keys tags base ways w key tag =
  if w >= ways then -1
  else if keys.(base + w) = key && tags.(base + w) = tag then base + w
  else scan_slot keys tags base ways (w + 1) key tag

let find_slot t key tag =
  scan_slot t.keys t.tags (set_of t key * t.ways) t.ways 0 key tag

let find t ?(tag = 0) key =
  let i = find_slot t key tag in
  if i < 0 then None
  else begin
    t.stamps.(i) <- next_tick t;
    Some t.values.(i)
  end

let find_default t ~tag key ~default =
  let i = find_slot t key tag in
  if i < 0 then default
  else begin
    t.stamps.(i) <- next_tick t;
    t.values.(i)
  end

let probe t ?(tag = 0) key =
  let i = find_slot t key tag in
  if i < 0 then None else Some t.values.(i)

let probe_default t ?(tag = 0) key ~default =
  let i = find_slot t key tag in
  if i < 0 then default else t.values.(i)

let rec first_invalid keys base ways w =
  if w >= ways then -1
  else if keys.(base + w) = -1 then base + w
  else first_invalid keys base ways (w + 1)

let rec lru_slot stamps base ways w best =
  if w >= ways then best
  else
    lru_slot stamps base ways (w + 1)
      (if stamps.(base + w) < stamps.(best) then base + w else best)

(* First invalid way, otherwise the least recently used. *)
let victim_slot t key =
  let base = set_of t key * t.ways in
  let i = first_invalid t.keys base t.ways 0 in
  if i >= 0 then i else lru_slot t.stamps base t.ways 1 base

let insert_slot t tag key v =
  let i = find_slot t key tag in
  let i = if i >= 0 then i else victim_slot t key in
  t.keys.(i) <- key;
  t.tags.(i) <- tag;
  t.values.(i) <- v;
  t.stamps.(i) <- next_tick t

let insert t ~tag key v = insert_slot t tag key v

let touch t ~tag key v =
  let i = find_slot t key tag in
  if i >= 0 then begin
    t.stamps.(i) <- next_tick t;
    true
  end
  else begin
    insert_slot t tag key v;
    false
  end

let invalidate_slot t i =
  t.keys.(i) <- -1;
  t.tags.(i) <- 0;
  t.values.(i) <- t.dummy;
  t.stamps.(i) <- 0

let clear ?tag t =
  match tag with
  | None ->
      Array.fill t.keys 0 (Array.length t.keys) (-1);
      Array.fill t.tags 0 (Array.length t.tags) 0;
      Array.fill t.values 0 (Array.length t.values) t.dummy;
      Array.fill t.stamps 0 (Array.length t.stamps) 0;
      t.tick <- 0
  | Some tag ->
      Array.iteri
        (fun i k -> if k >= 0 && t.tags.(i) = tag then invalidate_slot t i)
        t.keys

let set_of_key t key = set_of t key

let clear_set t s =
  if s < 0 || s >= t.sets then invalid_arg "Assoc_table.clear_set: no such set";
  for w = 0 to t.ways - 1 do
    invalidate_slot t ((s * t.ways) + w)
  done

let valid_count ?tag t =
  let counted i k =
    k >= 0 && match tag with None -> true | Some tag -> t.tags.(i) = tag
  in
  let n = ref 0 in
  Array.iteri (fun i k -> if counted i k then incr n) t.keys;
  !n

let iter f t =
  Array.iteri (fun i k -> if k >= 0 then f k t.values.(i)) t.keys
