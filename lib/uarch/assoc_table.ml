module Site_hash = Dlink_util.Site_hash

type 'v t = {
  sets : int;
  ways : int;
  keys : int array; (* sets*ways; -1 = invalid *)
  tags : int array; (* address-space id of each entry; 0 when untagged *)
  values : 'v option array;
  stamps : int array; (* LRU recency; larger = more recent *)
  mutable tick : int;
}

let create ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Assoc_table.create: non-positive size";
  if sets land (sets - 1) <> 0 then
    invalid_arg "Assoc_table.create: sets must be a power of two";
  let n = sets * ways in
  {
    sets;
    ways;
    keys = Array.make n (-1);
    tags = Array.make n 0;
    values = Array.make n None;
    stamps = Array.make n 0;
    tick = 0;
  }

let sets t = t.sets
let ways t = t.ways
let capacity t = t.sets * t.ways

(* Real structures index with the key's low bits (sequential lines map to
   sequential sets), which is what conflict behaviour depends on.  The tag
   does not participate in indexing — entries from different address spaces
   compete for the same set, as in a physically shared structure. *)
let set_of t key = key land (t.sets - 1)

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let find_slot t key tag =
  let base = set_of t key * t.ways in
  let rec scan w =
    if w >= t.ways then -1
    else if t.keys.(base + w) = key && t.tags.(base + w) = tag then base + w
    else scan (w + 1)
  in
  scan 0

let find t ?(tag = 0) key =
  let i = find_slot t key tag in
  if i < 0 then None
  else begin
    t.stamps.(i) <- next_tick t;
    t.values.(i)
  end

let probe t ?(tag = 0) key =
  let i = find_slot t key tag in
  if i < 0 then None else t.values.(i)

let victim_slot t key =
  let base = set_of t key * t.ways in
  (* First invalid way, otherwise the least recently used. *)
  let rec invalid w =
    if w >= t.ways then None
    else if t.keys.(base + w) = -1 then Some (base + w)
    else invalid (w + 1)
  in
  match invalid 0 with
  | Some i -> i
  | None ->
      let best = ref base in
      for w = 1 to t.ways - 1 do
        if t.stamps.(base + w) < t.stamps.(!best) then best := base + w
      done;
      !best

let insert t ?(tag = 0) key v =
  let i = find_slot t key tag in
  let i = if i >= 0 then i else victim_slot t key in
  t.keys.(i) <- key;
  t.tags.(i) <- tag;
  t.values.(i) <- Some v;
  t.stamps.(i) <- next_tick t

let touch t ?(tag = 0) key v =
  let i = find_slot t key tag in
  if i >= 0 then begin
    t.stamps.(i) <- next_tick t;
    true
  end
  else begin
    insert t ~tag key v;
    false
  end

let invalidate_slot t i =
  t.keys.(i) <- -1;
  t.tags.(i) <- 0;
  t.values.(i) <- None;
  t.stamps.(i) <- 0

let clear ?tag t =
  match tag with
  | None ->
      Array.fill t.keys 0 (Array.length t.keys) (-1);
      Array.fill t.tags 0 (Array.length t.tags) 0;
      Array.fill t.values 0 (Array.length t.values) None;
      Array.fill t.stamps 0 (Array.length t.stamps) 0;
      t.tick <- 0
  | Some tag ->
      Array.iteri
        (fun i k -> if k >= 0 && t.tags.(i) = tag then invalidate_slot t i)
        t.keys

let set_of_key t key = set_of t key

let clear_set t s =
  if s < 0 || s >= t.sets then invalid_arg "Assoc_table.clear_set: no such set";
  for w = 0 to t.ways - 1 do
    invalidate_slot t ((s * t.ways) + w)
  done

let valid_count ?tag t =
  let counted i k =
    k >= 0 && match tag with None -> true | Some tag -> t.tags.(i) = tag
  in
  let n = ref 0 in
  Array.iteri (fun i k -> if counted i k then incr n) t.keys;
  !n

let iter f t =
  Array.iteri
    (fun i k ->
      if k >= 0 then match t.values.(i) with Some v -> f k v | None -> ())
    t.keys
