module Site_hash = Dlink_util.Site_hash

(* All scalar per-slot state — keys, tags, LRU stamps, write epochs, the
   per-set reconciliation stamps and the per-tag clear floors — lives in
   [Bigarray.Array1] int vectors: unboxed, flat, off the OCaml heap (never
   scanned by the GC, safely shareable across domains), and accessed with
   the [.{i}] operators so the [-O3 -unsafe] release profile compiles each
   access to a single unchecked load/store.  Values keep a plain ['v array]:
   the payload is polymorphic (ints for BTB/TLB/cache tags, records for the
   ABTB) and validity is carried by the companion [keys] vector (-1 = never
   written), so [insert]/[find] never allocate a [Some] cell on the hot
   path.  Invalid slots hold [dummy], an unboxed placeholder never returned
   to callers.  This is safe because every access to [values] happens at
   the polymorphic type ['v] inside this module (the compiler emits
   dynamically-checked array primitives), and the array is created from an
   immediate so it is never a flat float array.

   Flash clears are O(1) generation bumps, modelling the single-cycle
   valid-bit reset of the hardware structures this table backs (the ABTB's
   store-triggered clear is the extreme case: one per guarded GOT store).
   [clock] counts clears; every write stamps its slot with the current
   clock, and [clear] bumps the clock and raises the matching validity
   floor ([global_floor], or [tag_floors.{tag}] for a single address
   space).  Reclamation is per-set and lazy: the first operation to touch
   a set after a clear reconciles it — physically invalidating every slot
   whose stamp sits below an applicable floor — and records the clock in
   [seen_clock], so the scan and victim loops afterwards run exactly the
   byte-for-byte logic of an eagerly-cleared table.  The steady-state
   lookup pays one extra load-and-compare ([seen_clock.{set} = clock]);
   the clear itself walks nothing. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_ints n init : ints =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill a init;
  a

type 'v t = {
  sets : int;
  ways : int;
  keys : ints; (* sets*ways; -1 = invalid *)
  tags : ints; (* address-space id of each entry; 0 when untagged *)
  values : 'v array;
  dummy : 'v; (* placeholder stored in invalid slots *)
  stamps : ints; (* LRU recency; larger = more recent *)
  mutable tick : int;
  epochs : ints; (* clear-clock value at each slot's last write *)
  seen_clock : ints; (* per-set clock at last reconciliation *)
  mutable clock : int; (* bumped by every flash clear *)
  mutable global_floor : int; (* minimum live epoch, all tags *)
  mutable tag_floors : ints; (* per-tag minimum live epoch; grown on
                                demand, missing tags have floor 0 *)
}

let create ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Assoc_table.create: non-positive size";
  if sets land (sets - 1) <> 0 then
    invalid_arg "Assoc_table.create: sets must be a power of two";
  let n = sets * ways in
  let dummy : 'v = Obj.magic 0 in
  {
    sets;
    ways;
    keys = make_ints n (-1);
    tags = make_ints n 0;
    values = Array.make n dummy;
    dummy;
    stamps = make_ints n 0;
    tick = 0;
    epochs = make_ints n 0;
    seen_clock = make_ints sets 0;
    clock = 0;
    global_floor = 0;
    tag_floors = make_ints 8 0;
  }

let sets t = t.sets
let ways t = t.ways
let capacity t = t.sets * t.ways

(* Real structures index with the key's low bits (sequential lines map to
   sequential sets), which is what conflict behaviour depends on.  The tag
   does not participate in indexing — entries from different address spaces
   compete for the same set, as in a physically shared structure. *)
let set_of t key = key land (t.sets - 1)

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let tag_floor t tag =
  if tag >= 0 && tag < Bigarray.Array1.dim t.tag_floors then t.tag_floors.{tag}
  else 0

let invalidate_slot t i =
  t.keys.{i} <- -1;
  t.tags.{i} <- 0;
  t.values.(i) <- t.dummy;
  t.stamps.{i} <- 0

(* Bring one set up to date with every flash clear since it was last
   touched: a written slot is stale — and is physically invalidated here —
   when its stamp sits below the global floor or below its own tag's
   floor.  Runs at most once per set per clear, off the steady-state
   path. *)
let reconcile_set t s =
  let base = s * t.ways in
  for w = 0 to t.ways - 1 do
    let i = base + w in
    if t.keys.{i} >= 0 then begin
      let e = t.epochs.{i} in
      if e < t.global_floor || e < tag_floor t t.tags.{i} then
        invalidate_slot t i
    end
  done;
  t.seen_clock.{s} <- t.clock

let reconcile_all t =
  for s = 0 to t.sets - 1 do
    if t.seen_clock.{s} <> t.clock then reconcile_set t s
  done

(* The scans are top-level functions rather than local closures: a local
   [let rec] capturing its environment is heap-allocated per call, which
   would put ~7 words on every cache/TLB/BTB access of the replay loop. *)
let rec scan_slot (keys : ints) (tags : ints) base ways w key tag =
  if w >= ways then -1
  else if keys.{base + w} = key && tags.{base + w} = tag then base + w
  else scan_slot keys tags base ways (w + 1) key tag

let find_slot t key tag =
  let s = set_of t key in
  if t.seen_clock.{s} <> t.clock then reconcile_set t s;
  scan_slot t.keys t.tags (s * t.ways) t.ways 0 key tag

let find t ?(tag = 0) key =
  let i = find_slot t key tag in
  if i < 0 then None
  else begin
    t.stamps.{i} <- next_tick t;
    Some t.values.(i)
  end

let find_default t ~tag key ~default =
  let i = find_slot t key tag in
  if i < 0 then default
  else begin
    t.stamps.{i} <- next_tick t;
    t.values.(i)
  end

let probe t ?(tag = 0) key =
  let i = find_slot t key tag in
  if i < 0 then None else Some t.values.(i)

let probe_default t ?(tag = 0) key ~default =
  let i = find_slot t key tag in
  if i < 0 then default else t.values.(i)

let rec first_invalid t base ways w =
  if w >= ways then -1
  else if t.keys.{base + w} = -1 then base + w
  else first_invalid t base ways (w + 1)

let rec lru_slot (stamps : ints) base ways w best =
  if w >= ways then best
  else
    lru_slot stamps base ways (w + 1)
      (if stamps.{base + w} < stamps.{best} then base + w else best)

(* First invalid way, otherwise the least recently used.  Only called
   after [find_slot] has reconciled the set, so flash-cleared slots show
   up as invalid here in way order — exactly where an eagerly-cleared
   table would have presented an empty way, making the victim choice (and
   therefore every later hit/miss) observationally identical. *)
let victim_slot t key =
  let base = set_of t key * t.ways in
  let i = first_invalid t base t.ways 0 in
  if i >= 0 then i else lru_slot t.stamps base t.ways 1 base

let insert_slot t tag key v =
  let i = find_slot t key tag in
  let i = if i >= 0 then i else victim_slot t key in
  t.keys.{i} <- key;
  t.tags.{i} <- tag;
  t.values.(i) <- v;
  t.stamps.{i} <- next_tick t;
  t.epochs.{i} <- t.clock

let insert t ~tag key v = insert_slot t tag key v

let touch t ~tag key v =
  let i = find_slot t key tag in
  if i >= 0 then begin
    t.stamps.{i} <- next_tick t;
    true
  end
  else begin
    insert_slot t tag key v;
    false
  end

let grow_tag_floors t tag =
  let n = Bigarray.Array1.dim t.tag_floors in
  if tag >= n then begin
    let bigger = make_ints (max (2 * n) (tag + 1)) 0 in
    Bigarray.Array1.blit t.tag_floors (Bigarray.Array1.sub bigger 0 n);
    t.tag_floors <- bigger
  end

let clear ?tag t =
  match tag with
  | None ->
      (* Flash clear: one epoch bump, exactly like the hardware's
         single-cycle valid-bit reset.  Values of stale slots stay
         physically resident until the set's next reconciliation. *)
      t.clock <- t.clock + 1;
      t.global_floor <- t.clock
  | Some tag when tag >= 0 ->
      t.clock <- t.clock + 1;
      grow_tag_floors t tag;
      t.tag_floors.{tag} <- t.clock
  | Some tag ->
      (* Negative tags have no floor slot; fall back to the eager walk
         (never reached by the simulator, which uses ASIDs >= 0). *)
      for i = 0 to Bigarray.Array1.dim t.keys - 1 do
        if t.keys.{i} >= 0 && t.tags.{i} = tag then invalidate_slot t i
      done

let set_of_key t key = set_of t key

let clear_set t s =
  if s < 0 || s >= t.sets then invalid_arg "Assoc_table.clear_set: no such set";
  for w = 0 to t.ways - 1 do
    invalidate_slot t ((s * t.ways) + w)
  done

let valid_count ?tag t =
  reconcile_all t;
  let counted i =
    t.keys.{i} >= 0
    && match tag with None -> true | Some tag -> t.tags.{i} = tag
  in
  let n = ref 0 in
  for i = 0 to Bigarray.Array1.dim t.keys - 1 do
    if counted i then incr n
  done;
  !n

let iter f t =
  reconcile_all t;
  for i = 0 to Bigarray.Array1.dim t.keys - 1 do
    if t.keys.{i} >= 0 then f t.keys.{i} t.values.(i)
  done

(* Snapshot/restore: the per-slot vectors are copied wholesale with
   [Bigarray.Array1.blit] (flat off-heap memcpy, no per-slot work), the
   values array with [Array.blit] (entries are immutable payloads), and the
   scalar clocks by value.  A snapshot is only meaningful for a table of
   the same geometry — the segmented replay driver restores into a table
   built by the same [Uarch.Config], so dims always match; the check is a
   cheap guard against driver bugs.  [tag_floors] is copied on both sides:
   the live table may grow (and therefore replace) its array after the
   snapshot was taken, and a restored table must not alias the snapshot's
   copy, which may be restored into several segment workers. *)

type 'v snap = {
  s_keys : ints;
  s_tags : ints;
  s_values : 'v array;
  s_stamps : ints;
  s_tick : int;
  s_epochs : ints;
  s_seen_clock : ints;
  s_clock : int;
  s_global_floor : int;
  s_tag_floors : ints;
}

let copy_ints (a : ints) : ints =
  let b =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout
      (Bigarray.Array1.dim a)
  in
  Bigarray.Array1.blit a b;
  b

let snapshot t =
  {
    s_keys = copy_ints t.keys;
    s_tags = copy_ints t.tags;
    s_values = Array.copy t.values;
    s_stamps = copy_ints t.stamps;
    s_tick = t.tick;
    s_epochs = copy_ints t.epochs;
    s_seen_clock = copy_ints t.seen_clock;
    s_clock = t.clock;
    s_global_floor = t.global_floor;
    s_tag_floors = copy_ints t.tag_floors;
  }

let restore t s =
  if Bigarray.Array1.dim s.s_keys <> Bigarray.Array1.dim t.keys then
    invalid_arg "Assoc_table.restore: geometry mismatch";
  Bigarray.Array1.blit s.s_keys t.keys;
  Bigarray.Array1.blit s.s_tags t.tags;
  Array.blit s.s_values 0 t.values 0 (Array.length t.values);
  Bigarray.Array1.blit s.s_stamps t.stamps;
  Bigarray.Array1.blit s.s_epochs t.epochs;
  Bigarray.Array1.blit s.s_seen_clock t.seen_clock;
  t.tick <- s.s_tick;
  t.clock <- s.s_clock;
  t.global_floor <- s.s_global_floor;
  t.tag_floors <- copy_ints s.s_tag_floors

(* Order-sensitive digest of the table's observable contents (valid slots:
   key, tag, LRU stamp, value) — used by the snapshot round-trip tests to
   compare whole-table dumps without materializing them.  Reconciles first
   so two tables with the same observable state but different lazy-clear
   debts digest identically. *)
let fingerprint ?(hash_value = Hashtbl.hash) t =
  reconcile_all t;
  let acc = ref (Site_hash.mix2 t.sets t.ways) in
  for i = 0 to Bigarray.Array1.dim t.keys - 1 do
    if t.keys.{i} >= 0 then
      acc :=
        Site_hash.mix2 !acc
          (Site_hash.mix2
             (Site_hash.mix2 t.keys.{i} t.tags.{i})
             (Site_hash.mix2 t.stamps.{i} (hash_value t.values.(i))))
  done;
  !acc
