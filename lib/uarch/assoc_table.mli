(** Generic set-associative table with true-LRU replacement.

    The building block for caches, TLBs, the BTB, and the ABTB.  Keys are
    already-index-reduced integers (line numbers, page numbers, PCs); the
    table hashes them across sets and tracks per-way recency.

    Entries optionally carry an address-space id ([tag], default 0): a
    lookup only hits an entry whose tag matches, and [clear ~tag] drops a
    single address space's entries.  Tags do not participate in set
    indexing — co-scheduled address spaces contend for the same sets, as
    in physically shared hardware.

    Bulk clears are O(1) generation bumps, mirroring the single-cycle
    valid-bit flash reset of the modelled hardware: every write stamps its
    slot with a clear-clock value and [clear] raises the corresponding
    validity floor.  Reclamation is lazy and per-set — the first operation
    to touch a set after a clear physically invalidates its stale slots,
    so the steady-state lookup pays only one extra load-and-compare and
    the victim scan sees flash-cleared slots as empty ways in way order,
    exactly as an eagerly-cleared table would.  Observable behaviour —
    hits, misses, LRU victim choice — is identical to an eager per-slot
    clear; test/test_uarch.ml checks this against a naive reference
    model. *)

type 'v t

val create : sets:int -> ways:int -> 'v t
(** Both must be positive; [sets] must be a power of two. *)

val sets : 'v t -> int
val ways : 'v t -> int
val capacity : 'v t -> int

val find : 'v t -> ?tag:int -> int -> 'v option
(** Lookup; refreshes LRU position on hit.  Only matches entries whose tag
    equals [tag] (default 0). *)

val probe : 'v t -> ?tag:int -> int -> 'v option
(** Lookup without touching LRU state. *)

val find_default : 'v t -> tag:int -> int -> default:'v -> 'v
(** Allocation-free {!find}: returns [default] on a miss instead of
    wrapping the hit in an option.  The hot-path lookup used by the packed
    replay loop.  [tag] is a mandatory label — passing a value to an
    optional argument boxes it in [Some], which would put an allocation on
    every lookup. *)

val probe_default : 'v t -> ?tag:int -> int -> default:'v -> 'v
(** Allocation-free {!probe}. *)

val insert : 'v t -> tag:int -> int -> 'v -> unit
(** Insert or overwrite; evicts the set's LRU victim when full.  [tag] is
    mandatory for the same allocation-freedom reason as {!find_default}
    (the BTB updates on every retired indirect branch). *)

val touch : 'v t -> tag:int -> int -> 'v -> bool
(** Combined lookup-or-insert: returns [true] on hit (LRU refreshed), and
    inserts the given value on miss returning [false].  This is the
    cache/TLB access pattern.  [tag] is mandatory for the same
    allocation-freedom reason as {!find_default}. *)

val clear : ?tag:int -> 'v t -> unit
(** [clear t] invalidates everything; [clear ~tag t] only the entries of
    one address space.  Both are O(1) epoch bumps (for non-negative tags;
    a negative tag falls back to an eager walk).  Values held by stale
    slots stay physically reachable until the set's next access reconciles
    it. *)

val set_of_key : 'v t -> int -> int
(** Set index a key maps to (its low bits). *)

val clear_set : 'v t -> int -> unit
(** Invalidate every way of one set, all tags — the quarantine eviction
    primitive.  Raises [Invalid_argument] for an out-of-range set. *)

val valid_count : ?tag:int -> 'v t -> int
val iter : (int -> 'v -> unit) -> 'v t -> unit

type 'v snap
(** Frozen copy of a table's full state: slot vectors (bigarray blits),
    values, LRU tick and the generation clocks. *)

val snapshot : 'v t -> 'v snap

val restore : 'v t -> 'v snap -> unit
(** Overwrite [t] with the snapshot's state.  The target must have the
    same geometry (sets x ways) as the snapshotted table; raises
    [Invalid_argument] otherwise.  A snapshot may be restored into many
    tables (segment workers) without aliasing. *)

val fingerprint : ?hash_value:('v -> int) -> 'v t -> int
(** Deterministic digest of the observable contents (valid keys, tags,
    LRU stamps, values).  Reconciles pending lazy clears first, so equal
    observable state yields equal fingerprints regardless of clear
    debt. *)
