open Dlink_isa

type t = { cname : string; size_bytes : int; table : unit Assoc_table.t }

let create ~name ~size_bytes ~ways =
  let lines = size_bytes / Addr.cache_line_bytes in
  if lines <= 0 || lines mod ways <> 0 then
    invalid_arg "Cache.create: size/ways mismatch";
  let sets = lines / ways in
  { cname = name; size_bytes; table = Assoc_table.create ~sets ~ways }

let name t = t.cname
let size_bytes t = t.size_bytes
let ways t = Assoc_table.ways t.table
let access t a = Assoc_table.touch t.table ~tag:0 (Addr.line_of a) ()
let present t a = Assoc_table.probe t.table (Addr.line_of a) <> None
let flush t = Assoc_table.clear t.table
let lines_valid t = Assoc_table.valid_count t.table

type snap = unit Assoc_table.snap

let snapshot t = Assoc_table.snapshot t.table
let restore t s = Assoc_table.restore t.table s
let fingerprint t = Assoc_table.fingerprint ~hash_value:(fun () -> 1) t.table
