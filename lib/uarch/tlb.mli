(** Translation lookaside buffer model (4 KiB pages).

    Entries optionally carry an address-space id ([asid], default 0), so a
    context switch can preserve translations instead of flushing them. *)

open Dlink_isa

type t

val create : name:string -> entries:int -> ways:int -> t
(** [entries / ways] must be a power of two. *)

val name : t -> string
val entries : t -> int

val access : t -> asid:int -> Addr.t -> bool
(** [true] on hit; fills on miss.  [asid] is a mandatory label: the engine
    calls this per retired instruction, and passing a value to an optional
    argument would box it in [Some] on every access.  Pass [~asid:0] when
    untagged. *)

val present : ?asid:int -> t -> Addr.t -> bool
val flush : ?asid:int -> t -> unit
(** [flush t] drops everything; [flush ~asid t] one address space only. *)

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
val fingerprint : t -> int
