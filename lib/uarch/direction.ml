open Dlink_isa

type t = {
  counters : Bytes.t; (* 2-bit saturating counters, one byte each *)
  mask : int;
  history_mask : int;
  mutable history : int;
}

let create ~table_bits ~history_bits =
  if table_bits < 4 || table_bits > 24 then
    invalid_arg "Direction.create: table_bits out of range";
  if history_bits < 0 || history_bits > 24 then
    invalid_arg "Direction.create: history_bits out of range";
  let n = 1 lsl table_bits in
  {
    counters = Bytes.make n '\001';
    (* weakly not-taken *)
    mask = n - 1;
    history_mask = (1 lsl history_bits) - 1;
    history = 0;
  }

let index t (pc : Addr.t) = (pc lxor t.history) land t.mask

let predict t pc = Char.code (Bytes.get t.counters (index t pc)) >= 2

let update t pc taken =
  let i = index t pc in
  let c = Char.code (Bytes.get t.counters i) in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.counters i (Char.chr c');
  t.history <- ((t.history lsl 1) lor Bool.to_int taken) land t.history_mask

let flush t =
  Bytes.fill t.counters 0 (Bytes.length t.counters) '\001';
  t.history <- 0

type snap = { s_counters : Bytes.t; s_history : int }

let snapshot t = { s_counters = Bytes.copy t.counters; s_history = t.history }

let restore t s =
  if Bytes.length s.s_counters <> Bytes.length t.counters then
    invalid_arg "Direction.restore: geometry mismatch";
  Bytes.blit s.s_counters 0 t.counters 0 (Bytes.length t.counters);
  t.history <- s.s_history

let fingerprint t = Hashtbl.hash (Bytes.to_string t.counters, t.history)
