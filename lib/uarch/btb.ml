open Dlink_isa

type t = Addr.t Assoc_table.t

let create ~sets ~ways : t = Assoc_table.create ~sets ~ways
let predict t pc = Assoc_table.find t pc
let predict_default t pc = Assoc_table.find_default t ~tag:0 pc ~default:Addr.none
let update t pc target = Assoc_table.insert t ~tag:0 pc target
let flush t = Assoc_table.clear t
let valid_count t = Assoc_table.valid_count t

type snap = Addr.t Assoc_table.snap

let snapshot t = Assoc_table.snapshot t
let restore t s = Assoc_table.restore t s
let fingerprint (t : t) = Assoc_table.fingerprint ~hash_value:(fun a -> a) t
