(** Alternate BTB (the paper's central structure, §3.1).

    Maps a trampoline's address (the architectural target of a library call
    instruction) to the library function address the trampoline branches to,
    together with the GOT slot the target was loaded from.  Populated at
    retire time from the call-followed-by-memory-indirect-branch idiom;
    cleared wholesale whenever a store hits the companion Bloom filter.

    Entries optionally carry an address-space id ([asid], default 0) so the
    table can be preserved across context switches, like an ASID-tagged TLB
    (§3.3): a lookup only hits entries installed by the same address space.

    Each entry costs 12 bytes in hardware (two 48-bit addresses, §5.3). *)

open Dlink_isa

type entry = { func : Addr.t; got_slot : Addr.t }
type t

val create : ?ways:int -> entries:int -> unit -> t
(** Default fully associative (ways = entries), LRU replacement.
    [entries mod ways] must be 0 and [entries/ways] a power of two. *)

val entries : t -> int
val lookup : ?asid:int -> t -> Addr.t -> entry option
(** Keyed by trampoline address (and ASID tag); refreshes LRU. *)

val no_entry : entry
(** Physical miss sentinel returned by {!lookup_default}; test with [==]. *)

val lookup_default : t -> asid:int -> Addr.t -> entry
(** Allocation-free {!lookup}: returns {!no_entry} (physically) on a
    miss. *)

val insert : t -> asid:int -> Addr.t -> entry -> unit
val clear : ?asid:int -> t -> unit
(** [clear t] drops everything; [clear ~asid t] one address space only. *)

val set_index : t -> Addr.t -> int
(** The set a trampoline address maps to (quarantine granularity). *)

val clear_set : t -> int -> unit
(** Invalidate one set across all ASIDs — used by the graceful-degradation
    fallback to evict a set implicated in a detected mis-skip. *)

val n_sets : t -> int
val valid_count : ?asid:int -> t -> int
val storage_bytes : t -> int
(** 12 bytes per entry, as estimated in the paper. *)

val iter : (Addr.t -> entry -> unit) -> t -> unit

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
val fingerprint : t -> int
