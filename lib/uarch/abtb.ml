open Dlink_isa

type entry = { func : Addr.t; got_slot : Addr.t }
type t = { table : entry Assoc_table.t; n_entries : int }

let create ?ways ~entries () =
  if entries <= 0 then invalid_arg "Abtb.create: entries must be positive";
  let ways = Option.value ways ~default:entries in
  if ways <= 0 || entries mod ways <> 0 then
    invalid_arg "Abtb.create: entries/ways mismatch";
  { table = Assoc_table.create ~sets:(entries / ways) ~ways; n_entries = entries }

let entries t = t.n_entries

(* Physical sentinel for allocation-free lookups: compare with [==]. *)
let no_entry = { func = Addr.none; got_slot = Addr.none }

let lookup ?(asid = 0) t tramp = Assoc_table.find t.table ~tag:asid tramp

let lookup_default t ~asid tramp =
  Assoc_table.find_default t.table ~tag:asid tramp ~default:no_entry
let insert t ~asid tramp e = Assoc_table.insert t.table ~tag:asid tramp e
let clear ?asid t = Assoc_table.clear ?tag:asid t.table
let set_index t tramp = Assoc_table.set_of_key t.table tramp
let clear_set t s = Assoc_table.clear_set t.table s
let n_sets t = Assoc_table.sets t.table
let valid_count ?asid t = Assoc_table.valid_count ?tag:asid t.table
let storage_bytes t = 12 * t.n_entries
let iter f t = Assoc_table.iter f t.table

type snap = entry Assoc_table.snap

let snapshot t = Assoc_table.snapshot t.table
let restore t s = Assoc_table.restore t.table s

let fingerprint t =
  Assoc_table.fingerprint
    ~hash_value:(fun e -> Dlink_util.Site_hash.mix2 e.func e.got_slot)
    t.table
