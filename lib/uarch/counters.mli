(** Performance counters, the simulator's analogue of the paper's VTune
    measurements (Table 4) plus mechanism-specific telemetry. *)

type t = {
  mutable instructions : int;
  mutable cycles : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable l2_misses : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable branches : int;
  mutable branch_mispredictions : int;
  mutable btb_misses : int;  (** direct-branch target-buffer fill bubbles *)
  mutable tramp_instructions : int;  (** retired instructions inside a PLT *)
  mutable tramp_calls : int;  (** calls whose architectural target is a PLT entry *)
  mutable tramp_skips : int;  (** trampolines elided by the mechanism *)
  mutable abtb_hits : int;
  mutable abtb_inserts : int;
  mutable abtb_clears : int;
  mutable abtb_false_clears : int;
      (** clears triggered by Bloom false positives (store was not actually
          to a GOT slot backing a live entry) *)
  mutable coherence_invalidations : int;
      (** ABTB clears forced by GOT stores observed on the coherence bus
          from another core (multi-process runs only) *)
  mutable got_stores : int;
  mutable resolver_runs : int;
  mutable mis_skips : int;
      (** correctness violations detected by the oracle: a skip retired a
          stale function target (forbidden by the paper's Bloom-clear
          invariant; nonzero only under fault injection) *)
  mutable lost_skips : int;
      (** benign divergences: a previously-skippable trampoline executed
          architecturally (clear, eviction, quarantine, or injected fault)
          and reached the same function — performance-only *)
  mutable quarantine_entries : int;
      (** ABTB sets quarantined by the graceful-degradation fallback *)
  mutable timeout_degrades : int;
      (** whole-core degradations forced by a timed-out coherence
          invalidation: the skip unit flushed and fell back to the
          architectural path for a window of skip opportunities *)
  mutable fault_injected : int;
      (** fault-plan actions applied by the injection layer *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : after:t -> before:t -> t
(** Per-field subtraction: counters accumulated between two snapshots. *)

val add : into:t -> t -> unit
(** Per-field accumulation, used to attribute per-quantum deltas of a
    shared core counter to the process that ran the quantum. *)

val assign : into:t -> t -> unit
(** Per-field overwrite ([reset] + [add]) — snapshot restore in place,
    preserving the identity of a counter object shared by reference. *)

val pki : t -> int -> float
(** [pki t count] = events per kilo-instruction of [t.instructions]. *)

val ipc_denominator : t -> int
(** Instructions, never zero (clamped to 1). *)

val pp : Format.formatter -> t -> unit
