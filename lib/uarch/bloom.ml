open Dlink_isa

(* The bit field is packed 32 bits per element of a [Bigarray.Array1] int
   vector, with a per-word generation stamp in a companion vector: a word's
   bits only count while its stamp equals the filter's current epoch, so
   [clear] — which the mechanism fires on every guarded GOT store — is a
   single epoch bump, like the hardware's one-cycle flash reset, instead of
   an O(bits) fill.  Stale words are lazily re-zeroed by the first
   [set_bit] that lands in them.  Bigarray storage keeps the field unboxed,
   flat and off the OCaml heap, and the [.{i}] accesses compile to
   unchecked loads under the [-O3 -unsafe] release profile. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_ints n init : ints =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill a init;
  a

type t = {
  words : ints; (* 32 field bits per element *)
  word_epoch : ints; (* stamp under which each word's bits are live *)
  mutable epoch : int;
  mask : int;
  hashes : int;
  mutable set_bits : int;
}

let create ~bits ~hashes =
  if bits <= 0 || bits land (bits - 1) <> 0 then
    invalid_arg "Bloom.create: bits must be a positive power of two";
  if hashes < 1 || hashes > 8 then invalid_arg "Bloom.create: hashes out of range";
  let n_words = (bits + 31) / 32 in
  {
    words = make_ints n_words 0;
    word_epoch = make_ints n_words 0;
    epoch = 0;
    mask = bits - 1;
    hashes;
    set_bits = 0;
  }

(* Native-int xorshift-multiply mixer.  [Site_hash.mix2] goes through
   boxed [Int64] arithmetic, which would allocate on every membership
   test — and [mem] runs once per retired store.  Only self-consistency
   between [add] and [mem] matters here, not any particular bit pattern. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x4be98134a5976fd3 in
  let x = x lxor (x lsr 29) in
  let x = x * 0x3bbf2a98b9367f05 in
  (x lxor (x lsr 32)) land max_int

let mix2 a b = mix (a + (b * 0x1e3779b97f4a7c15))

(* The ASID is folded into the hashed value, so tagged entries from
   different address spaces occupy (probabilistically) disjoint bit sets;
   membership queries are then per-address-space.  Clearing remains global —
   a bit field cannot be selectively erased, which matches the hardware. *)
let bit_pos t ~asid (a : Addr.t) k =
  let v = if asid = 0 then a else mix2 a asid in
  mix2 v (k + 1) land t.mask

(* A stale word reads as all-zeroes without being written back. *)
let word_at t w = if t.word_epoch.{w} = t.epoch then t.words.{w} else 0

let get_bit t i = (word_at t (i lsr 5) lsr (i land 31)) land 1 <> 0

let set_bit t i =
  let w = i lsr 5 in
  let cur = word_at t w in
  let m = 1 lsl (i land 31) in
  if cur land m = 0 then begin
    t.words.{w} <- cur lor m;
    t.word_epoch.{w} <- t.epoch;
    t.set_bits <- t.set_bits + 1
  end

let add t ~asid a =
  for k = 0 to t.hashes - 1 do
    set_bit t (bit_pos t ~asid a k)
  done

(* Top-level recursion, not a local closure: [mem] runs per retired store
   and a captured-environment closure would allocate on each call. *)
let rec mem_from t ~asid a k =
  k >= t.hashes || (get_bit t (bit_pos t ~asid a k) && mem_from t ~asid a (k + 1))

let mem t ~asid a = mem_from t ~asid a 0

let clear t =
  t.epoch <- t.epoch + 1;
  t.set_bits <- 0

let clear_bit t i =
  if i < 0 || i > t.mask then invalid_arg "Bloom.clear_bit: index out of range";
  if get_bit t i then begin
    (* [get_bit] implies the word's stamp is current. *)
    let w = i lsr 5 in
    t.words.{w} <- t.words.{w} land lnot (1 lsl (i land 31));
    t.set_bits <- t.set_bits - 1
  end

let bits_set t = t.set_bits
let size_bits t = t.mask + 1

(* Snapshot/restore: two flat blits plus the scalars.  Geometry (mask,
   hashes) is carried for the restore-target check; a snapshot may be
   restored into many filters without aliasing since bigarray blits copy. *)

type snap = {
  s_words : ints;
  s_word_epoch : ints;
  s_epoch : int;
  s_mask : int;
  s_set_bits : int;
}

let copy_ints (a : ints) : ints =
  let b =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout
      (Bigarray.Array1.dim a)
  in
  Bigarray.Array1.blit a b;
  b

let snapshot t =
  {
    s_words = copy_ints t.words;
    s_word_epoch = copy_ints t.word_epoch;
    s_epoch = t.epoch;
    s_mask = t.mask;
    s_set_bits = t.set_bits;
  }

let restore t s =
  if s.s_mask <> t.mask then invalid_arg "Bloom.restore: geometry mismatch";
  Bigarray.Array1.blit s.s_words t.words;
  Bigarray.Array1.blit s.s_word_epoch t.word_epoch;
  t.epoch <- s.s_epoch;
  t.set_bits <- s.s_set_bits

(* Digest of the live bit field (stale words read as zero), for the
   snapshot round-trip tests. *)
let fingerprint t =
  let acc = ref (mix2 t.set_bits t.hashes) in
  for w = 0 to Bigarray.Array1.dim t.words - 1 do
    let v = word_at t w in
    if v <> 0 then acc := mix2 !acc (mix2 w v)
  done;
  !acc

let false_positive_rate t =
  let frac = float_of_int t.set_bits /. float_of_int (size_bits t) in
  Float.pow frac (float_of_int t.hashes)
