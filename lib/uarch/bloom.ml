open Dlink_isa

type t = {
  field : Bytes.t;
  mask : int;
  hashes : int;
  mutable set_bits : int;
}

let create ~bits ~hashes =
  if bits <= 0 || bits land (bits - 1) <> 0 then
    invalid_arg "Bloom.create: bits must be a positive power of two";
  if hashes < 1 || hashes > 8 then invalid_arg "Bloom.create: hashes out of range";
  { field = Bytes.make ((bits + 7) / 8) '\000'; mask = bits - 1; hashes; set_bits = 0 }

(* Native-int xorshift-multiply mixer.  [Site_hash.mix2] goes through
   boxed [Int64] arithmetic, which would allocate on every membership
   test — and [mem] runs once per retired store.  Only self-consistency
   between [add] and [mem] matters here, not any particular bit pattern. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x4be98134a5976fd3 in
  let x = x lxor (x lsr 29) in
  let x = x * 0x3bbf2a98b9367f05 in
  (x lxor (x lsr 32)) land max_int

let mix2 a b = mix (a + (b * 0x1e3779b97f4a7c15))

(* The ASID is folded into the hashed value, so tagged entries from
   different address spaces occupy (probabilistically) disjoint bit sets;
   membership queries are then per-address-space.  Clearing remains global —
   a bit field cannot be selectively erased, which matches the hardware. *)
let bit_pos t ~asid (a : Addr.t) k =
  let v = if asid = 0 then a else mix2 a asid in
  mix2 v (k + 1) land t.mask

let get_bit t i = Char.code (Bytes.get t.field (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit t i =
  if not (get_bit t i) then begin
    let b = Char.code (Bytes.get t.field (i lsr 3)) in
    Bytes.set t.field (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))));
    t.set_bits <- t.set_bits + 1
  end

let add t ~asid a =
  for k = 0 to t.hashes - 1 do
    set_bit t (bit_pos t ~asid a k)
  done

(* Top-level recursion, not a local closure: [mem] runs per retired store
   and a captured-environment closure would allocate on each call. *)
let rec mem_from t ~asid a k =
  k >= t.hashes || (get_bit t (bit_pos t ~asid a k) && mem_from t ~asid a (k + 1))

let mem t ~asid a = mem_from t ~asid a 0

let clear t =
  Bytes.fill t.field 0 (Bytes.length t.field) '\000';
  t.set_bits <- 0

let clear_bit t i =
  if i < 0 || i > t.mask then invalid_arg "Bloom.clear_bit: index out of range";
  if get_bit t i then begin
    let b = Char.code (Bytes.get t.field (i lsr 3)) in
    Bytes.set t.field (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7))));
    t.set_bits <- t.set_bits - 1
  end

let bits_set t = t.set_bits
let size_bits t = t.mask + 1

let false_positive_rate t =
  let frac = float_of_int t.set_bits /. float_of_int (size_bits t) in
  Float.pow frac (float_of_int t.hashes)
