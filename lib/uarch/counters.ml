type t = {
  mutable instructions : int;
  mutable cycles : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable l2_misses : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable branches : int;
  mutable branch_mispredictions : int;
  mutable btb_misses : int;
  mutable tramp_instructions : int;
  mutable tramp_calls : int;
  mutable tramp_skips : int;
  mutable abtb_hits : int;
  mutable abtb_inserts : int;
  mutable abtb_clears : int;
  mutable abtb_false_clears : int;
  mutable coherence_invalidations : int;
  mutable got_stores : int;
  mutable resolver_runs : int;
  mutable mis_skips : int;
  mutable lost_skips : int;
  mutable quarantine_entries : int;
  mutable timeout_degrades : int;
  mutable fault_injected : int;
}

let create () =
  {
    instructions = 0;
    cycles = 0;
    icache_misses = 0;
    dcache_misses = 0;
    l2_misses = 0;
    itlb_misses = 0;
    dtlb_misses = 0;
    branches = 0;
    branch_mispredictions = 0;
    btb_misses = 0;
    tramp_instructions = 0;
    tramp_calls = 0;
    tramp_skips = 0;
    abtb_hits = 0;
    abtb_inserts = 0;
    abtb_clears = 0;
    abtb_false_clears = 0;
    coherence_invalidations = 0;
    got_stores = 0;
    resolver_runs = 0;
    mis_skips = 0;
    lost_skips = 0;
    quarantine_entries = 0;
    timeout_degrades = 0;
    fault_injected = 0;
  }

let reset t =
  t.instructions <- 0;
  t.cycles <- 0;
  t.icache_misses <- 0;
  t.dcache_misses <- 0;
  t.l2_misses <- 0;
  t.itlb_misses <- 0;
  t.dtlb_misses <- 0;
  t.branches <- 0;
  t.branch_mispredictions <- 0;
  t.btb_misses <- 0;
  t.tramp_instructions <- 0;
  t.tramp_calls <- 0;
  t.tramp_skips <- 0;
  t.abtb_hits <- 0;
  t.abtb_inserts <- 0;
  t.abtb_clears <- 0;
  t.abtb_false_clears <- 0;
  t.coherence_invalidations <- 0;
  t.got_stores <- 0;
  t.resolver_runs <- 0;
  t.mis_skips <- 0;
  t.lost_skips <- 0;
  t.quarantine_entries <- 0;
  t.timeout_degrades <- 0;
  t.fault_injected <- 0

let copy t = { t with instructions = t.instructions }

let diff ~after ~before =
  {
    instructions = after.instructions - before.instructions;
    cycles = after.cycles - before.cycles;
    icache_misses = after.icache_misses - before.icache_misses;
    dcache_misses = after.dcache_misses - before.dcache_misses;
    l2_misses = after.l2_misses - before.l2_misses;
    itlb_misses = after.itlb_misses - before.itlb_misses;
    dtlb_misses = after.dtlb_misses - before.dtlb_misses;
    branches = after.branches - before.branches;
    branch_mispredictions = after.branch_mispredictions - before.branch_mispredictions;
    btb_misses = after.btb_misses - before.btb_misses;
    tramp_instructions = after.tramp_instructions - before.tramp_instructions;
    tramp_calls = after.tramp_calls - before.tramp_calls;
    tramp_skips = after.tramp_skips - before.tramp_skips;
    abtb_hits = after.abtb_hits - before.abtb_hits;
    abtb_inserts = after.abtb_inserts - before.abtb_inserts;
    abtb_clears = after.abtb_clears - before.abtb_clears;
    abtb_false_clears = after.abtb_false_clears - before.abtb_false_clears;
    coherence_invalidations =
      after.coherence_invalidations - before.coherence_invalidations;
    got_stores = after.got_stores - before.got_stores;
    resolver_runs = after.resolver_runs - before.resolver_runs;
    mis_skips = after.mis_skips - before.mis_skips;
    lost_skips = after.lost_skips - before.lost_skips;
    quarantine_entries = after.quarantine_entries - before.quarantine_entries;
    timeout_degrades = after.timeout_degrades - before.timeout_degrades;
    fault_injected = after.fault_injected - before.fault_injected;
  }

let add ~into t =
  into.instructions <- into.instructions + t.instructions;
  into.cycles <- into.cycles + t.cycles;
  into.icache_misses <- into.icache_misses + t.icache_misses;
  into.dcache_misses <- into.dcache_misses + t.dcache_misses;
  into.l2_misses <- into.l2_misses + t.l2_misses;
  into.itlb_misses <- into.itlb_misses + t.itlb_misses;
  into.dtlb_misses <- into.dtlb_misses + t.dtlb_misses;
  into.branches <- into.branches + t.branches;
  into.branch_mispredictions <- into.branch_mispredictions + t.branch_mispredictions;
  into.btb_misses <- into.btb_misses + t.btb_misses;
  into.tramp_instructions <- into.tramp_instructions + t.tramp_instructions;
  into.tramp_calls <- into.tramp_calls + t.tramp_calls;
  into.tramp_skips <- into.tramp_skips + t.tramp_skips;
  into.abtb_hits <- into.abtb_hits + t.abtb_hits;
  into.abtb_inserts <- into.abtb_inserts + t.abtb_inserts;
  into.abtb_clears <- into.abtb_clears + t.abtb_clears;
  into.abtb_false_clears <- into.abtb_false_clears + t.abtb_false_clears;
  into.coherence_invalidations <-
    into.coherence_invalidations + t.coherence_invalidations;
  into.got_stores <- into.got_stores + t.got_stores;
  into.resolver_runs <- into.resolver_runs + t.resolver_runs;
  into.mis_skips <- into.mis_skips + t.mis_skips;
  into.lost_skips <- into.lost_skips + t.lost_skips;
  into.quarantine_entries <- into.quarantine_entries + t.quarantine_entries;
  into.timeout_degrades <- into.timeout_degrades + t.timeout_degrades;
  into.fault_injected <- into.fault_injected + t.fault_injected

let assign ~into t =
  reset into;
  add ~into t

let ipc_denominator t = max 1 t.instructions

let pki t count = 1000.0 *. float_of_int count /. float_of_int (ipc_denominator t)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>instructions        %d@,\
     cycles              %d@,\
     icache misses       %d@,\
     dcache misses       %d@,\
     l2 misses           %d@,\
     itlb misses         %d@,\
     dtlb misses         %d@,\
     branches            %d@,\
     mispredictions      %d@,\
     btb misses          %d@,\
     tramp instructions  %d@,\
     tramp calls         %d@,\
     tramp skips         %d@,\
     abtb hits           %d@,\
     abtb inserts        %d@,\
     abtb clears         %d@,\
     abtb false clears   %d@,\
     coherence invals    %d@,\
     got stores          %d@,\
     resolver runs       %d@,\
     mis skips           %d@,\
     lost skips          %d@,\
     quarantined sets    %d@,\
     timeout degrades    %d@,\
     faults injected     %d@]"
    t.instructions t.cycles t.icache_misses t.dcache_misses t.l2_misses
    t.itlb_misses t.dtlb_misses t.branches t.branch_mispredictions t.btb_misses
    t.tramp_instructions t.tramp_calls t.tramp_skips t.abtb_hits t.abtb_inserts
    t.abtb_clears t.abtb_false_clears t.coherence_invalidations t.got_stores
    t.resolver_runs t.mis_skips t.lost_skips t.quarantine_entries
    t.timeout_degrades t.fault_injected
