(** Synthetic application generator: turns a {!Spec.t} into loadable object
    files plus a deterministic request stream, packaged as a
    {!Dlink_core.Workload.t}. *)

val build : Spec.t -> Dlink_core.Workload.t
(** Raises [Invalid_argument] if the spec fails {!Spec.validate}. *)

val chain_count : Spec.t -> int
(** Number of call chains the generator will create for this spec
    (deterministic; useful for sizing housekeeping coverage in tests). *)

val name : string
(** ["synth"] — a registered mid-size synthetic workload, sized for
    fuzzing loops and CI smoke runs. *)

val spec : ?seed:int -> unit -> Spec.t
val workload : ?seed:int -> unit -> Dlink_core.Workload.t
