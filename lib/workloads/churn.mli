(** The module-churn workload: a plugin-host application.

    The base is an executable plus a service library ([libsvc], exporting
    plain services and a versioned [digest@@v2]/[digest@v1] pair) and an
    interposing shim ([libshim], shadowing two services when given
    LD_PRELOAD rank).  Six plugins import overlapping but distinct slices
    of the services — different import sets, so two plugins mapped at the
    same base disagree about which symbol lives at which PLT slot.

    Two consumption forms:
    - {!scenario}: the dynamic form for {!Dlink_core.Churn.run_cell} and
      the churn fault oracle — plugins rotate through dlopen/dlclose.
    - {!workload}: the registered static form ("churn") for the ordinary
      run/sweep/oracle paths — everything mapped at load time, requests
      invoking plugin entries directly. *)

val name : string

val scenario : ?seed:int -> unit -> Dlink_core.Churn.scenario
val workload : ?seed:int -> unit -> Dlink_core.Workload.t

val n_plugins : int
val plugin_name : int -> string
val plugin_entry : int -> string
