module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
module Rng = Dlink_util.Rng
module Sampler = Dlink_util.Sampler
module Site_hash = Dlink_util.Site_hash
module Workload = Dlink_core.Workload

type chain = {
  entry : string;  (** symbol the application imports *)
  steps : (int * string) list;  (** (library index, symbol) per hop *)
}

let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') name

let sample_range rng (lo, hi) = if hi <= lo then lo else Rng.int_in rng lo hi

(* Chain depths are drawn from the spec's distribution until the depth sum
   reaches exactly [n_trampolines]; the final chain is clamped. *)
let make_depths spec rng =
  let cat = Sampler.Categorical.create spec.Spec.depth_weights in
  let rec go total acc =
    if total >= spec.Spec.n_trampolines then List.rev acc
    else begin
      let d = Sampler.Categorical.sample cat rng in
      let d = min d (spec.Spec.n_trampolines - total) in
      let d = max 1 d in
      go (total + d) (d :: acc)
    end
  in
  go 0 []

let chain_count spec =
  (* Depth sampling must replay the exact RNG draws of [build]. *)
  let rng = Rng.create spec.Spec.seed in
  List.length (make_depths spec rng)

let make_chains spec rng depths =
  let n_libs = List.length spec.Spec.libs in
  List.mapi
    (fun ci d ->
      let rec path k prev acc =
        if k >= d then List.rev acc
        else begin
          let lib =
            if n_libs = 1 then 0
            else begin
              let cand = Rng.int rng n_libs in
              if cand = prev then (cand + 1) mod n_libs else cand
            end
          in
          path (k + 1) lib ((lib, Printf.sprintf "c%d_s%d" ci k) :: acc)
        end
      in
      let steps = path 0 (-1) [] in
      match steps with
      | (_, entry) :: _ -> { entry; steps }
      | [] -> assert false)
    depths

let terminal_body spec rng =
  let c1 = sample_range rng spec.Spec.terminal_compute in
  let loads = sample_range rng (fst spec.Spec.terminal_touch) in
  let stores = sample_range rng (snd spec.Spec.terminal_touch) in
  [
    Body.Compute (max 1 (c1 / 2));
    Body.If
      {
        p = 0.5;
        then_ = [ Body.Compute 6; Body.Touch { loads = 1; stores = 0 } ];
        else_ = [ Body.Compute 4 ];
      };
    Body.Loop
      {
        mean_iters = spec.Spec.terminal_loop_mean;
        body = [ Body.Compute (max 1 (c1 / 2)); Body.Touch { loads; stores } ];
      };
  ]

let wrapper_body spec rng next_sym =
  let w = sample_range rng spec.Spec.wrapper_compute in
  [
    Body.Compute (max 1 (w / 2));
    Body.Call_import next_sym;
    Body.Compute (max 1 (w - (w / 2)));
  ]

(* Group a handler's call slots into segments, each optionally wrapped in a
   geometric loop for per-request latency variance. *)
let segment_ops rng mean slots =
  let rec take n acc = function
    | [] -> (List.rev acc, [])
    | rest when n = 0 -> (List.rev acc, rest)
    | x :: rest -> take (n - 1) (x :: acc) rest
  in
  let rec go slots acc =
    match slots with
    | [] -> List.concat (List.rev acc)
    | _ ->
        let seg_len = Rng.int_in rng 3 8 in
        let seg, rest = take seg_len [] slots in
        let ops = List.concat seg in
        let ops =
          if mean > 1.0 then [ Body.Loop { mean_iters = mean; body = ops } ] else ops
        in
        go rest (ops :: acc)
  in
  go slots []

let handler_body rng zipf chains (rt : Spec.rtype_spec) =
  let chain_arr = Array.of_list chains in
  let n_calls = sample_range rng rt.Spec.calls in
  let slot _ =
    let c = chain_arr.(Sampler.Zipf.sample zipf rng) in
    let inter = sample_range rng rt.Spec.inter_compute in
    [
      Body.Compute (max 1 inter);
      Body.Touch { loads = 1; stores = (if Rng.bool rng 0.3 then 1 else 0) };
      Body.Call_import c.entry;
    ]
  in
  let slots = List.init n_calls slot in
  [ Body.Compute 8; Body.Touch_shared { loads = 1; stores = 1 } ]
  @ segment_ops rng rt.Spec.segment_loop_mean slots

let housekeeping_bodies spec chains =
  let chain_arr = Array.of_list chains in
  let n = Array.length chain_arr in
  let chunk = spec.Spec.housekeeping_chunk in
  let n_hk = (n + chunk - 1) / chunk in
  List.init n_hk (fun j ->
      let ops = ref [ Body.Compute 4 ] in
      for k = (j * chunk) + chunk - 1 downto j * chunk do
        if k < n then ops := Body.Call_import chain_arr.(k).entry :: !ops
      done;
      List.rev !ops)

let extra_imports spec rng ~mod_name ~used =
  let n = int_of_float (spec.Spec.extra_import_factor *. float_of_int used) in
  ignore rng;
  List.init n (fun i -> Printf.sprintf "x_%s_%d" (sanitize mod_name) i)

let build spec =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Synth.build: " ^ e));
  let rng = Rng.create spec.Spec.seed in
  let depths = make_depths spec rng in
  let chains = make_chains spec rng depths in
  let n_chains = List.length chains in
  let zipf = Sampler.Zipf.create ~n:n_chains ~s:spec.Spec.zipf_s in
  (* Library functions: every chain hop lives in its library module.  A
     fraction of terminals are exported as GNU ifuncs (like glibc string
     routines): the default implementation is the calibrated body, with a
     slower fallback the loader selects on low-capability hardware. *)
  let n_libs = List.length spec.Spec.libs in
  let lib_funcs = Array.make n_libs [] in
  let lib_ifuncs = Array.make n_libs [] in
  List.iter
    (fun chain ->
      let rec emit = function
        | [] -> ()
        | [ (lib, sym) ] ->
            let body = terminal_body spec rng in
            if Rng.bool rng spec.Spec.ifunc_fraction then begin
              let fast = sym ^ "__opt" and slow = sym ^ "__generic" in
              let slow_body = Body.Compute 8 :: body in
              lib_funcs.(lib) <-
                { Objfile.fname = slow; exported = false; body = slow_body }
                :: { Objfile.fname = fast; exported = false; body }
                :: lib_funcs.(lib);
              lib_ifuncs.(lib) <-
                { Objfile.iname = sym; candidates = [ fast; slow ] }
                :: lib_ifuncs.(lib)
            end
            else
              lib_funcs.(lib) <-
                { Objfile.fname = sym; exported = true; body } :: lib_funcs.(lib)
        | (lib, sym) :: ((_, next_sym) :: _ as rest) ->
            lib_funcs.(lib) <-
              {
                Objfile.fname = sym;
                exported = true;
                body = wrapper_body spec rng next_sym;
              }
              :: lib_funcs.(lib);
            emit rest
      in
      emit chain.steps)
    chains;
  (* Application handlers. *)
  let handler_name rt v = Printf.sprintf "h_%s_%d" (sanitize rt.Spec.rname) v in
  let handlers =
    List.concat_map
      (fun rt ->
        List.init rt.Spec.variants (fun v ->
            {
              Objfile.fname = handler_name rt v;
              exported = false;
              body = handler_body rng zipf chains rt;
            }))
      spec.Spec.rtypes
  in
  let hk_bodies =
    if spec.Spec.housekeeping_every > 0 then housekeeping_bodies spec chains else []
  in
  let hk_funcs =
    List.mapi
      (fun j body ->
        { Objfile.fname = Printf.sprintf "hk_%d" j; exported = false; body })
      hk_bodies
  in
  let n_hk = List.length hk_funcs in
  (* Object files: the application first, libraries in declared order. *)
  let app_funcs = handlers @ hk_funcs in
  let app_used =
    List.length
      (List.sort_uniq compare
         (List.concat_map (fun (f : Objfile.func) -> Body.imports f.body) app_funcs))
  in
  let app =
    Objfile.create_exn ~name:spec.Spec.name ~data_bytes:spec.Spec.app_data_bytes
      ~extra_imports:(extra_imports spec rng ~mod_name:spec.Spec.name ~used:app_used)
      app_funcs
  in
  let libs =
    List.mapi
      (fun j lname ->
        let funcs = List.rev lib_funcs.(j) in
        let used =
          List.length
            (List.sort_uniq compare
               (List.concat_map (fun (f : Objfile.func) -> Body.imports f.body) funcs))
        in
        (* A library with no chain hop still needs one function to exist. *)
        let funcs =
          if funcs = [] then
            [
              {
                Objfile.fname = Printf.sprintf "%s_init" (sanitize lname);
                exported = true;
                body = [ Body.Compute 4 ];
              };
            ]
          else funcs
        in
        Objfile.create_exn ~name:lname ~data_bytes:spec.Spec.lib_data_bytes
          ~extra_imports:(extra_imports spec rng ~mod_name:lname ~used)
          ~ifuncs:(List.rev lib_ifuncs.(j)) funcs)
      spec.Spec.libs
  in
  (* Deterministic request stream. *)
  let rtype_arr = Array.of_list spec.Spec.rtypes in
  let cat =
    Sampler.Categorical.create
      (List.mapi (fun i rt -> (i, rt.Spec.weight)) spec.Spec.rtypes)
  in
  let n_rtypes = Array.length rtype_arr in
  let request_type_names =
    Array.append
      (Array.map (fun rt -> rt.Spec.rname) rtype_arr)
      (if n_hk > 0 then [| Spec.housekeeping_rtype |] else [||])
  in
  let gen_request i =
    let rng = Rng.create (Site_hash.mix2 spec.Spec.seed (i + 1_000_003)) in
    if i >= 0 && n_hk > 0 && spec.Spec.housekeeping_every > 0
       && i mod spec.Spec.housekeeping_every = 0
    then begin
      let j = i / spec.Spec.housekeeping_every mod n_hk in
      {
        Workload.rtype = n_rtypes;
        mname = spec.Spec.name;
        fname = Printf.sprintf "hk_%d" j;
      }
    end
    else begin
      let ri = Sampler.Categorical.sample cat rng in
      let rt = rtype_arr.(ri) in
      let v = Rng.int rng rt.Spec.variants in
      { Workload.rtype = ri; mname = spec.Spec.name; fname = handler_name rt v }
    end
  in
  {
    Workload.wname = spec.Spec.name;
    objs = app :: libs;
    request_type_names;
    gen_request;
    default_requests = spec.Spec.default_requests;
    warmup_requests = spec.Spec.warmup_requests;
    us_scale = spec.Spec.us_scale;
    ghz = 3.0;
    func_align = spec.Spec.func_align;
  }

(* ------------------------------------------------------------------ *)
(* A registered mid-size synthetic workload: big enough to exercise
   multi-library chains, ifuncs, and housekeeping rebinds; small enough
   for fuzzing loops and CI smoke runs. *)

let name = "synth"

let spec ?(seed = 7) () =
  {
    Spec.name;
    seed;
    libs = [ "liba"; "libb"; "libc"; "libd" ];
    n_trampolines = 96;
    depth_weights = [ (1, 0.45); (2, 0.35); (3, 0.20) ];
    zipf_s = 1.6;
    terminal_compute = (10, 30);
    terminal_loop_mean = 1.5;
    terminal_touch = ((1, 2), (0, 1));
    wrapper_compute = (4, 10);
    rtypes =
      [
        {
          Spec.rname = "alpha";
          weight = 0.5;
          variants = 4;
          calls = (6, 12);
          inter_compute = (3, 8);
          segment_loop_mean = 1.2;
        };
        {
          Spec.rname = "beta";
          weight = 0.3;
          variants = 4;
          calls = (4, 9);
          inter_compute = (3, 8);
          segment_loop_mean = 1.0;
        };
        {
          Spec.rname = "gamma";
          weight = 0.2;
          variants = 2;
          calls = (8, 16);
          inter_compute = (2, 6);
          segment_loop_mean = 1.4;
        };
      ];
    housekeeping_every = 40;
    housekeeping_chunk = 8;
    extra_import_factor = 0.6;
    ifunc_fraction = 0.15;
    app_data_bytes = 32 * 1024;
    lib_data_bytes = 8 * 1024;
    us_scale = 1.0;
    default_requests = 400;
    warmup_requests = 20;
    func_align = 64;
  }

let workload ?seed () = build (spec ?seed ())
