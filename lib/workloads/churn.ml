module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
module Rng = Dlink_util.Rng
module Workload = Dlink_core.Workload
module Core_churn = Dlink_core.Churn

let name = "churn"

(* ------------------------------------------------------------------ *)
(* The service base: one executable, a service library exporting both
   plain and versioned symbols, and an interposer library that shadows a
   few of them when given LD_PRELOAD rank.

   libsvc exports svc_0..svc_N plus a versioned pair: [digest@@v2] (the
   current default) and [digest@v1] (kept for old clients).  Plugins
   reference the whole spectrum — plain, explicitly versioned, and
   interposable — so churn exercises every precedence rule in the link
   map. *)

let n_services = 10

let service_body rng =
  [
    Body.Compute (8 + Rng.int rng 16);
    Body.Touch { loads = 1 + Rng.int rng 2; stores = Rng.int rng 2 };
    Body.Loop
      {
        mean_iters = 1.5;
        body = [ Body.Compute 6; Body.Touch { loads = 1; stores = 0 } ];
      };
  ]

let libsvc seed =
  let rng = Rng.create (seed + 11) in
  let svcs =
    List.init n_services (fun i ->
        {
          Objfile.fname = Printf.sprintf "svc_%d" i;
          exported = true;
          body = service_body rng;
        })
  in
  let versioned =
    [
      {
        Objfile.fname = "digest@@v2";
        exported = true;
        body = [ Body.Compute 20; Body.Touch { loads = 2; stores = 1 } ];
      };
      {
        Objfile.fname = "digest@v1";
        exported = true;
        body = [ Body.Compute 32; Body.Touch { loads = 3; stores = 1 } ];
      };
    ]
  in
  Objfile.create_exn ~name:"libsvc" ~data_bytes:(8 * 1024) (svcs @ versioned)

(* The interposer: same symbol names as a few libsvc services, shorter
   bodies (a caching shim).  Load order puts it after libsvc, so it only
   wins when given LD_PRELOAD rank. *)
let libshim =
  Objfile.create_exn ~name:"libshim" ~data_bytes:(2 * 1024)
    (List.map
       (fun i ->
         {
           Objfile.fname = Printf.sprintf "svc_%d" i;
           exported = true;
           body = [ Body.Compute 4; Body.Touch { loads = 1; stores = 0 } ];
         })
       [ 0; 3 ])

let app =
  Objfile.create_exn ~name:"churn_app" ~data_bytes:(16 * 1024)
    [
      {
        Objfile.fname = "main";
        exported = false;
        body =
          [ Body.Compute 8; Body.Call_import "svc_0"; Body.Call_import "digest" ];
      };
    ]

(* ------------------------------------------------------------------ *)
(* Plugins: each imports a distinct slice of the service spectrum, so two
   plugins mapped at the same base put different symbols at the same PLT
   slot — the layout collision that makes a stale ABTB entry a genuine
   mis-direct hazard rather than a lucky hit. *)

let n_plugins = 6

let plugin_name i = Printf.sprintf "plugin%d" i
let plugin_entry i = Printf.sprintf "p%d_main" i

let plugin seed i =
  let rng = Rng.create (seed + (97 * (i + 1))) in
  (* A rotated window of services plus this plugin's pick of the digest
     version: even plugins track the default, odd ones pin v1. *)
  let width = 4 + (i mod 3) in
  let imports =
    List.init width (fun k -> Printf.sprintf "svc_%d" ((i + (2 * k)) mod n_services))
  in
  let digest_ref = if i mod 2 = 0 then "digest" else "digest@v1" in
  let call sym =
    [ Body.Compute (2 + Rng.int rng 6); Body.Call_import sym ]
  in
  let body =
    [ Body.Compute 6; Body.Touch { loads = 1; stores = 1 } ]
    @ List.concat_map call imports
    @ call digest_ref
    @ [
        Body.Loop
          {
            mean_iters = 1.4;
            body = Body.Compute 4 :: List.concat_map call (List.filteri (fun k _ -> k < 2) imports);
          };
      ]
  in
  Objfile.create_exn ~name:(plugin_name i) ~data_bytes:(4 * 1024)
    [
      { Objfile.fname = plugin_entry i; exported = true; body };
      {
        Objfile.fname = Printf.sprintf "p%d_helper" i;
        exported = false;
        body = [ Body.Compute 8 ];
      };
    ]

let scenario ?(seed = 17) () =
  {
    Core_churn.sname = name;
    base_objs = [ app; libsvc seed; libshim ];
    plugins = Array.init n_plugins (plugin seed);
    n_resident = 4;
    preload = [ "libshim" ];
    entry = plugin_entry;
    func_align = 64;
  }

(* ------------------------------------------------------------------ *)
(* The registered static workload: everything mapped at load time, with
   requests invoking plugin entries directly.  No runtime churn — this is
   the versioning/interposition surface exercised through the ordinary
   [run]/[sweep]/oracle paths (which cannot drive dlopen). *)

let workload ?(seed = 17) () =
  let plugins = List.init n_plugins (plugin seed) in
  let objs = [ app; libsvc seed; libshim ] @ plugins in
  let gen_request i =
    let rng = Rng.create (Dlink_util.Site_hash.mix2 seed (i + 7_001)) in
    let p = Rng.int rng n_plugins in
    { Workload.rtype = 0; mname = plugin_name p; fname = plugin_entry p }
  in
  {
    Workload.wname = name;
    objs;
    request_type_names = [| "plugin" |];
    gen_request;
    default_requests = 300;
    warmup_requests = 20;
    us_scale = 1.0;
    ghz = 3.0;
    func_align = 64;
  }
