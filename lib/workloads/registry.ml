let all =
  [
    (Apache.name, fun ?seed () -> Apache.workload ?seed ());
    (Memcached.name, fun ?seed () -> Memcached.workload ?seed ());
    (Mysql.name, fun ?seed () -> Mysql.workload ?seed ());
    (Firefox.name, fun ?seed () -> Firefox.workload ?seed ());
    (Synth.name, fun ?seed () -> Synth.workload ?seed ());
    (Churn.name, fun ?seed () -> Churn.workload ?seed ());
  ]

let find name = List.assoc_opt name all
let names = List.map fst all
