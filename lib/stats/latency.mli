(** Fixed-bucket log-scale latency recorder for the serving stack.

    Constant memory and no per-sample allocation once the exact window
    fills; quantiles are exact (sorted-samples, {!Cdf} ceil-rank
    convention) while the sample count fits in [small_cap], and
    bucket-quantized (error bounded by the geometric bucket ratio,
    [10^(1/bins_per_decade)]) beyond it. *)

type t

val create :
  ?lo:float -> ?decades:int -> ?bins_per_decade:int -> ?small_cap:int -> unit -> t
(** Buckets span [lo, lo*10^decades) (defaults: 1e-3 over 9 decades, 32
    buckets per decade, 512 exact samples).  Raises [Invalid_argument] on
    non-positive parameters. *)

val record : t -> float -> unit
(** Raises [Invalid_argument] on a negative or non-finite sample. *)

val count : t -> int

val mean : t -> float
(** Exact; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1]; [nan] when empty. *)

val p50 : t -> float
val p99 : t -> float
val p999 : t -> float

val min_value : t -> float
val max_value : t -> float

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending — the latency
    histogram exported by [dlinksim serve --json]. *)

val merge : into:t -> t -> unit
(** Fold [src]'s samples into [into], as if [into] had recorded the
    concatenation of both streams: bucket counts, count and sum add,
    extremes combine, and the exact sample windows concatenate while the
    combined count fits [small_cap] — so quantiles stay {e exact} below
    [small_cap] combined samples and keep the single-recorder one-bucket
    bound ([10^(1/bins_per_decade)]) beyond it.  Both recorders must share
    geometry ([lo], [bins_per_decade], bucket count, [small_cap]); raises
    [Invalid_argument] otherwise.  [src] is not modified. *)
