(* Fixed-bucket log-scale latency recorder.

   The serving drivers feed every request latency here; [quantile] must
   stay cheap and deterministic at millions of samples, so the recorder
   keeps a fixed array of logarithmic buckets (no allocation per sample
   after the exact window fills) and answers quantiles by a cumulative
   walk.  The first [small_cap] samples are also kept verbatim: while the
   sample count fits, quantiles come from the exact sorted-samples path
   ({!Cdf}'s ceil-rank convention), so small cells — and every unit test —
   see exact percentiles, and only saturating sweeps pay bucket-width
   rounding (bounded by the bucket ratio, 10^(1/bins_per_decade)).

   Buckets span [lo, lo*10^decades) with [bins_per_decade] geometric
   buckets per decade; below-range samples land in bucket 0 and
   above-range ones in the last bucket, with the true min/max tracked
   separately so the extremes stay exact. *)

type t = {
  lo : float;
  log_lo : float;
  bins_per_decade : int;
  n_buckets : int;
  counts : int array;
  small : float array;
  small_cap : int;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(lo = 1e-3) ?(decades = 9) ?(bins_per_decade = 32)
    ?(small_cap = 512) () =
  if lo <= 0.0 then invalid_arg "Latency.create: lo must be positive";
  if decades <= 0 || bins_per_decade <= 0 then
    invalid_arg "Latency.create: decades and bins_per_decade must be positive";
  if small_cap < 0 then invalid_arg "Latency.create: small_cap must be >= 0";
  {
    lo;
    log_lo = Float.log10 lo;
    bins_per_decade;
    n_buckets = decades * bins_per_decade;
    counts = Array.make (decades * bins_per_decade) 0;
    small = Array.make small_cap 0.0;
    small_cap;
    count = 0;
    sum = 0.0;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
  }

let bucket_of t x =
  if x <= t.lo then 0
  else
    let b =
      int_of_float
        ((Float.log10 x -. t.log_lo) *. float_of_int t.bins_per_decade)
    in
    if b < 0 then 0 else if b >= t.n_buckets then t.n_buckets - 1 else b

(* Lower edge of bucket [b]; the bucket's representative value for
   quantile answers is its geometric midpoint. *)
let bucket_lo t b =
  t.lo *. Float.pow 10.0 (float_of_int b /. float_of_int t.bins_per_decade)

let bucket_mid t b =
  t.lo
  *. Float.pow 10.0
       ((float_of_int b +. 0.5) /. float_of_int t.bins_per_decade)

let record t x =
  if not (Float.is_finite x) || x < 0.0 then
    invalid_arg "Latency.record: sample must be finite and non-negative";
  if t.count < t.small_cap then t.small.(t.count) <- x;
  t.counts.(bucket_of t x) <- t.counts.(bucket_of t x) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.count
let mean t = if t.count = 0 then Float.nan else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then Float.nan else t.min_v
let max_value t = if t.count = 0 then Float.nan else t.max_v

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Latency.quantile: q out of range";
  if t.count = 0 then Float.nan
  else if t.count <= t.small_cap then
    Cdf.quantile (Cdf.of_samples (Array.sub t.small 0 t.count)) q
  else begin
    (* Ceil-rank over the cumulative bucket counts, mirroring Cdf. *)
    let rank = int_of_float (Float.ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 and b = ref 0 in
    while !acc < rank && !b < t.n_buckets do
      acc := !acc + t.counts.(!b);
      incr b
    done;
    let hit = !b - 1 in
    (* Clamp the bucket representative by the observed extremes so p0 and
       p100 stay exact and an overflow bucket never invents a value. *)
    Float.min t.max_v (Float.max t.min_v (bucket_mid t hit))
  end

let p50 t = quantile t 0.5
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let buckets t =
  let out = ref [] in
  for b = t.n_buckets - 1 downto 0 do
    if t.counts.(b) > 0 then
      out := (bucket_lo t b, bucket_lo t (b + 1), t.counts.(b)) :: !out
  done;
  !out

(* Merge for segmented serving: each replay segment records its own
   service-time distribution, and the driver folds them in segment order.
   Bucket counts, count, and sum add; extremes combine; the exact windows
   concatenate in [into]-then-[src] order while the combined count fits
   [into.small_cap], preserving the exact-quantile path.  Once the
   combined count exceeds the window, quantiles come from the merged
   buckets — identical to what one recorder fed the concatenated stream
   would hold, since bucket assignment depends only on the sample value
   and the (required-equal) geometry.  Quantile error therefore keeps the
   single-recorder bound: one geometric bucket, 10^(1/bins_per_decade). *)
let merge ~into src =
  if
    into.lo <> src.lo
    || into.bins_per_decade <> src.bins_per_decade
    || into.n_buckets <> src.n_buckets
    || into.small_cap <> src.small_cap
  then invalid_arg "Latency.merge: geometry mismatch";
  (* With equal caps, an incomplete exact window can only arise when the
     merged count already exceeds [small_cap] — where quantiles use the
     buckets — so the exact path below [small_cap] combined samples stays
     sound. *)
  (* Samples of [src]'s exact window that still fit [into]'s. *)
  let keep = min src.count src.small_cap in
  let room = into.small_cap - into.count in
  if keep > 0 && room > 0 then
    Array.blit src.small 0 into.small into.count (min keep room);
  for b = 0 to into.n_buckets - 1 do
    into.counts.(b) <- into.counts.(b) + src.counts.(b)
  done;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v
