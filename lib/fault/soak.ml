open Dlink_isa
open Dlink_mach
open Dlink_uarch
open Dlink_linker
module Rng = Dlink_util.Rng
module Skip = Dlink_pipeline.Skip
module Kernel = Dlink_pipeline.Kernel
module Policy = Dlink_pipeline.Policy
module Churn = Dlink_core.Churn
module Objfile = Dlink_obj.Objfile

type params = {
  cores : int;
  quantum : int;
  policy : Policy.t;
  link_mode : Mode.t;
  rate : int;
  ops : int;
  min_instructions : int;
  seed : int;
  epoch_guard : bool;
  degrade_window : int;
  call_fuel : int;
}

let default_params =
  {
    cores = 4;
    quantum = 64;
    policy = Policy.Asid_shared_guard;
    link_mode = Mode.Lazy_binding;
    rate = 100;
    ops = 10_000;
    min_instructions = 0;
    seed = 1;
    epoch_guard = true;
    degrade_window = 64;
    call_fuel = 1_000_000;
  }

type bus_stats = {
  published : int;
  delivered : int;
  acked : int;
  dropped : int;
  retries : int;
  reorders : int;
  timeouts : int;
  stale_discards : int;
  unresolved : int;
}

type report = {
  ops : int;
  churn_events : int;
  migrations : int;
  crashes : int;
  counters : Counters.t;
  per_core : Counters.t array;
  checks : int;
  violations : int;
  fetch_unmapped : int;
  stale_skips : int;
  stale_messages : int;
  aba_discards : int;
  recorded : Invariant.violation list;
  first_violation_op : int option;
  epoch_guard : bool;
  bus : bus_stats;
  opens : int;
  closes : int;
  rebinds : int;
  grace_unmaps : int;
  forced_unmaps : int;
  retiring : int;
  faults_injected : int;
}

(* The soak topology: ONE interpreter process (one address space, one
   architectural thread) migrating round-robin over [cores] pipeline
   kernels, its hooks routed through a mutable current-core index.  Each
   kernel keeps its own skip unit whose state persists while the thread
   runs elsewhere — exactly the state the coherence bus must keep honest
   as the dynamic loader churns modules underneath it.  The invariant
   checker taps every kernel and the bus's validation point; nothing it
   does feeds back into the machine. *)
let run ?ucfg ?skip_cfg ?plan (p : params) (s : Churn.scenario) =
  if p.cores < 1 then invalid_arg "Soak.run: cores must be >= 1";
  if p.quantum < 1 then invalid_arg "Soak.run: quantum must be >= 1";
  let plan = Option.value plan ~default:(Plan.empty 0) in
  let opts =
    {
      Loader.default_options with
      mode = p.link_mode;
      func_align = s.Churn.func_align;
      ld_preload = s.Churn.preload;
    }
  in
  let linked = Loader.load_exn ~opts s.Churn.base_objs in
  let is_plt_entry = Loader.is_plt_entry linked in
  let in_got = Loader.in_any_got linked in
  let kernels =
    Array.init p.cores (fun _ -> Kernel.create ?ucfg ?skip_cfg ~with_skip:true ())
  in
  let skips = Array.map (fun k -> Option.get (Kernel.skip k)) kernels in
  let cur = ref 0 in
  let per_hooks =
    Array.map (fun k -> Kernel.process_hooks k ~is_plt_entry ~in_got) kernels
  in
  let hooks =
    {
      Process.on_fetch_call =
        (fun ~pc ~arch_target ->
          per_hooks.(!cur).Process.on_fetch_call ~pc ~arch_target);
      on_retire = (fun ev -> per_hooks.(!cur).Process.on_retire ev);
    }
  in
  let process = Process.create ~hooks linked in
  let mem = Process.memory process in
  Array.iter
    (fun k -> Kernel.set_read_got k (fun slot -> Memory.read mem slot))
    kernels;

  let bus = Coherence.create () in
  Array.iteri
    (fun i sk ->
      Coherence.subscribe bus ~core:i (fun ~src:_ addr ->
          Skip.on_remote_store sk addr))
    skips;

  (* Every loader GOT write is an architectural store retired on the
     currently dispatched core; the kernel's got-store sink then
     publishes it — stamped with the owning mapping's generation — so
     the other cores' skip units see churn as coherence traffic. *)
  let store a v =
    Memory.write mem a v;
    Kernel.retire_packed kernels.(!cur) ~pc:linked.Loader.resolver_entry ~size:4
      ~in_plt:false ~plt_call:false ~got_store:(in_got a) ~load:Addr.none
      ~load2:Addr.none ~store:a ~kind:Event.Kind.none ~target:Addr.none
      ~aux:Addr.none ~taken:false
  in
  let dynload = Dynload.create ~store ~read:(Memory.read mem) linked in
  Dynload.set_unmap_barrier dynload
    (Some
       (fun ~span_base:_ ~span_end:_ ~complete -> Coherence.fence bus ~complete));
  Array.iteri
    (fun i k ->
      Kernel.set_got_sink k
        (Some
           (fun addr ->
             let stamp =
               match Dynload.generation_at dynload addr with
               | Some g -> g
               | None -> -1
             in
             Coherence.publish ~stamp bus ~src:i addr)))
    kernels;

  let inv =
    Invariant.create
      {
        Invariant.in_mapped =
          (fun pc -> Space.image_at linked.Loader.space pc <> None);
        skip_target_ok =
          (fun ~tramp ~target ->
            match Loader.plt_symbol_at linked tramp with
            | None -> false
            | Some (sym, img_id) -> (
                match Space.image_by_id linked.Loader.space img_id with
                | None -> false
                | Some img -> (
                    match Hashtbl.find_opt img.Image.got_slots sym with
                    | None -> false
                    | Some slot -> Memory.read mem slot = target)));
        message_fresh =
          (fun ~stamp addr ->
            (match Dynload.generation_at dynload addr with
            | Some g -> g
            | None -> -1)
            = stamp);
        epoch_guard = p.epoch_guard;
      }
  in
  Array.iteri
    (fun i k -> Kernel.set_tap k (Some (fun ev -> Invariant.on_retire inv ~core:i ev)))
    kernels;
  Coherence.set_validate bus
    (Some (fun ~src ~stamp addr -> Invariant.on_message inv ~src ~stamp addr));
  (* A timed-out invalidation means that core may hold a stale skip
     entry nobody will ever correct: degrade it — whole-core flush plus
     a suppression window on the architectural path — instead of letting
     it keep skipping on trust. *)
  Coherence.set_on_timeout bus
    (Some
       (fun ~core ~src:_ _addr ->
         Skip.degrade skips.(core) ~window:p.degrade_window));

  (* Got_rewrite strikes the dispatched core's ABTB: rebind the GOT slot
     behind a live entry directly in memory, bypassing retire (and hence
     the Bloom filter and the bus) — the unguarded-store hazard the
     checker must catch as a stale skip. *)
  let rewrite rng =
    let live = ref [] in
    Abtb.iter (fun _tramp e -> live := e :: !live) (Skip.abtb skips.(!cur));
    let live = Array.of_list (List.rev !live) in
    let pool =
      Array.of_list
        (List.filter_map
           (fun sym -> Linkmap.lookup_addr linked.Loader.linkmap sym)
           (Linkmap.symbols linked.Loader.linkmap))
    in
    if Array.length live = 0 || Array.length pool < 2 then false
    else begin
      let e = live.(Rng.int rng (Array.length live)) in
      let cands =
        Array.to_list pool |> List.filter (fun a -> a <> e.Abtb.func)
      in
      match cands with
      | [] -> false
      | _ ->
          Memory.write mem e.Abtb.got_slot
            (List.nth cands (Rng.int rng (List.length cands)));
          true
    end
  in
  let inject =
    Inject.create ~bus ~rewrite ~skip:skips.(0)
      ~counters:(Kernel.counters kernels.(0))
      ~plan ()
  in
  Array.iteri (fun i sk -> if i > 0 then Inject.attach_skip inject sk) skips;
  Inject.set_current inject (Some (fun () -> skips.(!cur)));

  (* Rotation state and request loop mirror {!Dlink_core.Churn.run_cell}
     draw for draw, so a [cores = 1] soak consumes the identical RNG
     stream and retires the identical instruction stream — the
     crosscheck below holds it to bit-identical counters. *)
  let n = Array.length s.Churn.plugins in
  let resident = max 1 (min s.Churn.n_resident n) in
  let rng = Rng.create p.seed in
  let slots = Array.init resident (fun i -> i) in
  let parked = Queue.create () in
  for i = resident to n - 1 do
    Queue.add i parked
  done;
  let handles =
    Array.map (fun i -> Dynload.dlopen dynload s.Churn.plugins.(i)) slots
  in
  let churn_events = ref 0 in
  let close_handle h =
    if Inject.take_stale_unload inject then begin
      Inject.begin_unbounded_suppress inject;
      Dynload.dlclose dynload h;
      Inject.end_unbounded_suppress inject
    end
    else if Inject.take_unload_inflight inject then
      Dynload.dlclose ~defer_invalidate:true dynload h
    else Dynload.dlclose dynload h
  in
  let churn () =
    if n > resident then begin
      let k = Rng.int rng resident in
      close_handle handles.(k);
      Queue.add slots.(k) parked;
      let inc = Queue.take parked in
      slots.(k) <- inc;
      handles.(k) <- Dynload.dlopen dynload s.Churn.plugins.(inc);
      incr churn_events
    end
    else begin
      close_handle handles.(0);
      handles.(0) <- Dynload.dlopen dynload s.Churn.plugins.(slots.(0));
      incr churn_events
    end
  in
  let crashes = ref 0 in
  let call_one () =
    let k = Rng.int rng resident in
    let i = slots.(k) in
    let addr =
      match
        Loader.func_addr linked ~mname:s.Churn.plugins.(i).Objfile.name
          ~fname:(s.Churn.entry i)
      with
      | Some a -> a
      | None ->
          invalid_arg
            (Printf.sprintf "Soak.run: %s.%s not found"
               s.Churn.plugins.(i).Objfile.name (s.Churn.entry i))
    in
    (* Under injected faults the interpreter itself can refuse to
       proceed; classify the crash with the checker's vocabulary (the pc
       recorded is the request's entry — the precise faulting pc died
       with the exception) and keep soaking.  The fuel bound matters: a
       mis-directed call can land in a function that never returns to
       this request's frame, and an unbounded interpreter would spin. *)
    try Process.call process ~fuel:p.call_fuel addr with
    | Process.Fault _ ->
        incr crashes;
        Invariant.record_fetch_fault inv ~core:!cur ~pc:addr
    | Skip.Misspeculation _ ->
        incr crashes;
        Invariant.record_stale_skip inv ~core:!cur ~pc:addr ~tramp:Addr.none
          ~target:Addr.none
  in
  for k = 0 to resident - 1 do
    let i = slots.(k) in
    match
      Loader.func_addr linked ~mname:s.Churn.plugins.(i).Objfile.name
        ~fname:(s.Churn.entry i)
    with
    | Some a -> Process.call process a
    | None -> ()
  done;
  let before = Array.map (fun k -> Counters.copy (Kernel.counters k)) kernels in

  let migrations = ref 0 in
  let first_vop = ref None in
  let dispatch core =
    if core <> !cur then begin
      incr migrations;
      (match p.policy with
      | Policy.Flush -> Kernel.context_switch kernels.(core)
      | Policy.Asid | Policy.Asid_shared_guard ->
          Kernel.context_switch ~retain_asid:true kernels.(core));
      cur := core
    end
  in
  let total_instructions () =
    Array.fold_left
      (fun acc k -> acc + (Kernel.counters k).Counters.instructions)
      0 kernels
  in
  let op = ref 0 in
  while !op < p.ops || total_instructions () < p.min_instructions do
    if !op mod p.quantum = 0 then begin
      dispatch (!op / p.quantum mod p.cores);
      ignore (Coherence.drain bus : int)
    end;
    Inject.on_request inject !op;
    (* Deferred invalidations from an Unload_inflight close land at the
       next op boundary — after the freed range may have been reused. *)
    Dynload.flush_pending dynload;
    if p.rate > 0 && Rng.int rng 1000 < p.rate then churn ();
    call_one ();
    if !first_vop = None && Invariant.violations inv > 0 then
      first_vop := Some !op;
    incr op
  done;

  (* Quiesce: drain until every parked message resolves (retry backoff is
     bounded, so this terminates well inside the budget), then force any
     grace periods still waiting on cores that will never ack. *)
  let rec settle budget =
    if budget > 0 && Coherence.pending bus > 0 then begin
      ignore (Coherence.drain bus : int);
      settle (budget - 1)
    end
  in
  settle 256;
  ignore (Dynload.force_retiring dynload : int);
  settle 256;
  Inject.detach inject;

  let per_core =
    Array.mapi
      (fun i k -> Counters.diff ~after:(Kernel.counters k) ~before:before.(i))
      kernels
  in
  let counters = Counters.create () in
  Array.iter (fun c -> Counters.add ~into:counters c) per_core;
  let d = Dynload.stats dynload in
  {
    ops = !op;
    churn_events = !churn_events;
    migrations = !migrations;
    crashes = !crashes;
    counters;
    per_core;
    checks = Invariant.checks inv;
    violations = Invariant.violations inv;
    fetch_unmapped = Invariant.fetch_unmapped inv;
    stale_skips = Invariant.stale_skips inv;
    stale_messages = Invariant.stale_messages inv;
    aba_discards = Invariant.aba_discards inv;
    recorded = Invariant.recorded inv;
    first_violation_op = !first_vop;
    epoch_guard = p.epoch_guard;
    bus =
      {
        published = Coherence.published bus;
        delivered = Coherence.delivered bus;
        acked = Coherence.acked bus;
        dropped = Coherence.dropped bus;
        retries = Coherence.retries bus;
        reorders = Coherence.reorders bus;
        timeouts = Coherence.timeouts bus;
        stale_discards = Coherence.stale_discards bus;
        unresolved = Coherence.pending bus;
      };
    opens = d.Dynload.opens;
    closes = d.Dynload.closes;
    rebinds = d.Dynload.rebinds;
    grace_unmaps = d.Dynload.grace_unmaps;
    forced_unmaps = d.Dynload.forced_unmaps;
    retiring = Dynload.retiring_count dynload;
    faults_injected = counters.Counters.fault_injected;
  }

let check ?(plan = Plan.empty 0) (r : report) =
  let clean = plan.Plan.events = [] in
  let fail cond msg acc = if cond then msg :: acc else acc in
  []
  |> fail (clean && r.violations > 0) "invariant violation in a fault-free run"
  |> fail (clean && r.crashes > 0) "interpreter fault in a fault-free run"
  |> fail (clean && r.bus.timeouts > 0) "coherence timeout in a fault-free run"
  |> fail
       (clean && r.bus.dropped > 0)
       "dropped delivery attempt in a fault-free run"
  |> fail (r.bus.unresolved > 0) "coherence messages unresolved after quiesce"
  |> fail (r.retiring > 0) "unmap grace periods unresolved after quiesce"
  |> fail
       (r.bus.published
       <> r.bus.acked + r.bus.timeouts + r.bus.stale_discards)
       "bus conservation violated (published <> acked + timeouts + stale)"
  |> fail
       (r.epoch_guard && r.stale_messages > 0)
       "stale message applied despite the epoch guard"
  |> List.rev

let failed ~plan r = r.violations > 0 || check ~plan r <> []

(* ddmin over plan events, as {!Fuzz.shrink}: drop contiguous chunks while
   the sub-plan still produces a violation or a property failure. *)
let shrink ?ucfg ?skip_cfg (p : params) ~plan (s : Churn.scenario) =
  let trial events =
    let sub = { plan with Plan.events } in
    (sub, run ?ucfg ?skip_cfg ~plan:sub p s)
  in
  let r0 = run ?ucfg ?skip_cfg ~plan p s in
  if not (failed ~plan r0) then (plan, r0)
  else begin
    let best = ref (plan, r0) in
    let continue = ref true in
    while !continue do
      continue := false;
      let events = Array.of_list (fst !best).Plan.events in
      let n = Array.length events in
      let chunk = ref (max 1 (n / 2)) in
      let improved = ref false in
      while (not !improved) && !chunk >= 1 do
        let i = ref 0 in
        while (not !improved) && !i < n do
          let keep =
            Array.to_list events
            |> List.filteri (fun j _ -> j < !i || j >= !i + !chunk)
          in
          if List.length keep < n then begin
            let sub, r = trial keep in
            if failed ~plan:sub r then begin
              best := (sub, r);
              improved := true;
              continue := true
            end
          end;
          i := !i + !chunk
        done;
        if not !improved then chunk := !chunk / 2
      done
    done;
    !best
  end

let crosscheck ?ucfg ?skip_cfg (p : params) (s : Churn.scenario) =
  let p1 = { p with cores = 1; min_instructions = 0 } in
  let r = run ?ucfg ?skip_cfg p1 s in
  let cell =
    Churn.run_cell ?ucfg ?skip_cfg ~link_mode:p.link_mode ~rate:p.rate
      ~calls:p.ops ~seed:p.seed s
  in
  if r.counters = cell.Churn.counters then Ok ()
  else
    Error
      (Format.asprintf
         "cores=1 soak diverges from run_cell at seed %d:@.soak:@.%a@.cell:@.%a"
         p.seed Counters.pp r.counters Counters.pp cell.Churn.counters)
