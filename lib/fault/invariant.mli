(** Safety invariant checker for multi-core churn.

    Wired into every core's {!Dlink_pipeline.Kernel} tap point and the
    coherence bus's validation hook, it asserts — on every retired event,
    across all cores — the three invariants that separate "slow but
    correct" from wrong execution under module churn:

    - {b no fetch from an unmapped span}: every retired pc lies inside a
      currently mapped image (the demand-loading literature's "never
      execute unmapped text");
    - {b no stale skip}: a redirected direct call (the trampoline skip)
      must still be justified by the live GOT — the trampoline is a
      mapped PLT entry and its slot holds exactly the skip target;
    - {b no stale coherence message applied}: an invalidation must not be
      applied after its source module's mapping died or its range was
      reused (the first-fit ABA hazard) — with the epoch guard on such
      messages are discarded (recovery, counted in {!aba_discards}); with
      it off they apply and are recorded as violations.

    The checker never mutates the machine it watches; all verdicts come
    from embedder-supplied predicates over live loader/memory state, so
    it stays valid as modules come and go. *)

open Dlink_isa
module Event = Dlink_mach.Event

type violation =
  | Fetch_unmapped of { core : int; pc : Addr.t }
  | Stale_skip of { core : int; pc : Addr.t; tramp : Addr.t; target : Addr.t }
  | Stale_message of { src : int; addr : Addr.t; stamp : int }

type cfg = {
  in_mapped : Addr.t -> bool;  (** pc lies in mapped text *)
  skip_target_ok : tramp:Addr.t -> target:Addr.t -> bool;
      (** the live GOT still justifies skipping [tramp] to [target] *)
  message_fresh : stamp:int -> Addr.t -> bool;
      (** the message's generation stamp still matches [addr]'s mapping *)
  epoch_guard : bool;
      (** discard stale messages (true, the protocol) or apply them and
          record the violation (false, the ablation) *)
}

type t

val create : ?max_recorded:int -> cfg -> t
(** [max_recorded] (default 32) caps the retained violation list; counts
    are never capped. *)

val on_retire : t -> core:int -> Event.t -> unit
(** The per-event asserts; hang on {!Dlink_pipeline.Kernel.set_tap}. *)

val record_fetch_fault : t -> core:int -> pc:Addr.t -> unit
(** Classify a caught [Process.Fault] (the interpreter refused an
    unmapped fetch before anything retired) as a [Fetch_unmapped]. *)

val record_stale_skip :
  t -> core:int -> pc:Addr.t -> tramp:Addr.t -> target:Addr.t -> unit
(** Classify a caught [Skip.Misspeculation] as a [Stale_skip]. *)

val on_message : t -> src:int -> stamp:int -> Addr.t -> bool
(** Bus validation: give to {!Dlink_mach.Coherence.set_validate} (adapted
    to its signature); returns whether the message may be applied. *)

val checks : t -> int
val violations : t -> int
val fetch_unmapped : t -> int
val stale_skips : t -> int
val stale_messages : t -> int

val aba_discards : t -> int
(** Stale messages the epoch guard discarded — ABA hazards recovered. *)

val recorded : t -> violation list
(** Oldest first, capped at [max_recorded]. *)

val first_violation : t -> violation option

val first_violation_at : t -> int option
(** Check index (≈ retired-event ordinal) of the first violation. *)

val violation_to_string : violation -> string
