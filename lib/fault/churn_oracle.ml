open Dlink_isa
open Dlink_mach
open Dlink_uarch
open Dlink_linker
module Rng = Dlink_util.Rng
module Skip = Dlink_pipeline.Skip
module Kernel = Dlink_pipeline.Kernel
module Policy = Dlink_pipeline.Policy
module Churn = Dlink_core.Churn

type report = {
  ops : int;
  churn_events : int;
  mis_skips : int;
  lost_skips : int;
  unclassified : int;
  skips : int;
  resolver_runs : int;
  faults_injected : int;
  stable_hits : int;
  stable_misses : int;
  counters : Counters.t;
  divergences : Oracle.divergence list;
}

let max_recorded_divergences = 32

(* Differential churn run: reference (no skip hardware) and DUT (Enhanced
   pipeline) share one loader and one dynamic loader; every dynload store
   is applied to both memories and retired through the DUT kernel only —
   the reference has no microarchitecture to inform.  The request loop
   interleaves plugin calls with dlopen/dlclose rotation, with the plan's
   churn actions realised around the closes. *)
let run ?(ucfg = Config.xeon_e5450) ?skip_cfg ?plan ~link_mode ~rate ~ops ~seed
    (s : Churn.scenario) =
  let plan = Option.value plan ~default:(Plan.empty 0) in
  let opts =
    {
      Loader.default_options with
      mode = link_mode;
      func_align = s.Churn.func_align;
      ld_preload = s.Churn.preload;
    }
  in
  let linked = Loader.load_exn ~opts s.Churn.base_objs in
  let is_plt_entry = Loader.is_plt_entry linked in
  let ld_so =
    match Space.image_by_name linked.Loader.space Loader.ld_so_name with
    | Some img -> img
    | None -> invalid_arg "Churn_oracle.run: no dynamic-linker image"
  in
  let in_ld_so pc = Image.contains ld_so pc in

  (* Reference machine: pure architectural interpreter. *)
  let ref_col = Oracle.make_collector () in
  let ref_hooks =
    {
      Process.on_fetch_call = (fun ~pc:_ ~arch_target -> arch_target);
      on_retire =
        (fun ev -> Oracle.collector_on_retire ~is_plt_entry ~in_ld_so ref_col ev);
    }
  in
  let ref_p = Process.create ~hooks:ref_hooks linked in

  (* Device under test: the Enhanced pipeline kernel. *)
  let kernel = Kernel.create ~ucfg ?skip_cfg ~with_skip:true () in
  let counters = Kernel.counters kernel in
  let skip = Option.get (Kernel.skip kernel) in
  let dut_col = Oracle.make_collector () in
  Kernel.set_tap kernel
    (Some
       (fun ev -> Oracle.collector_on_retire ~is_plt_entry ~in_ld_so dut_col ev));
  let dut_hooks =
    Kernel.process_hooks kernel ~is_plt_entry ~in_got:(Loader.in_any_got linked)
  in
  let dut_p = Process.create ~hooks:dut_hooks linked in
  Kernel.set_read_got kernel (fun slot ->
      Memory.read (Process.memory dut_p) slot);

  (* One dynamic loader serves both machines: stores land in both
     memories (architecturally shared address space) but retire through
     the DUT kernel only. *)
  let store a v =
    Memory.write (Process.memory ref_p) a v;
    Memory.write (Process.memory dut_p) a v;
    Kernel.retire_packed kernel ~pc:linked.Loader.resolver_entry ~size:4
      ~in_plt:false ~plt_call:false ~got_store:(Loader.in_any_got linked a)
      ~load:Addr.none ~load2:Addr.none ~store:a ~kind:Event.Kind.none
      ~target:Addr.none ~aux:Addr.none ~taken:false
  in
  let dynload =
    Dynload.create ~store ~read:(Memory.read (Process.memory dut_p)) linked
  in

  (* Got_rewrite keeps its meaning from the static oracle: rebind the GOT
     slot behind a live ABTB entry in both memories, bypassing retire. *)
  let rewrite rng =
    let live = ref [] in
    Abtb.iter (fun _tramp e -> live := e :: !live) (Skip.abtb skip);
    let live = Array.of_list (List.rev !live) in
    let pool =
      Array.of_list
        (List.filter_map
           (fun sym -> Linkmap.lookup_addr linked.Loader.linkmap sym)
           (Linkmap.symbols linked.Loader.linkmap))
    in
    if Array.length live = 0 || Array.length pool < 2 then false
    else begin
      let e = live.(Rng.int rng (Array.length live)) in
      let cands =
        Array.to_list pool |> List.filter (fun a -> a <> e.Abtb.func)
      in
      match cands with
      | [] -> false
      | _ ->
          let target = List.nth cands (Rng.int rng (List.length cands)) in
          Memory.write (Process.memory ref_p) e.Abtb.got_slot target;
          Memory.write (Process.memory dut_p) e.Abtb.got_slot target;
          true
    end
  in
  let inject = Inject.create ~rewrite ~skip ~counters ~plan () in

  (* Rotation state, as in {!Dlink_core.Churn.run_cell}. *)
  let n = Array.length s.Churn.plugins in
  let resident = max 1 (min s.Churn.n_resident n) in
  let rng = Rng.create seed in
  let slots = Array.init resident (fun i -> i) in
  let parked = Queue.create () in
  for i = resident to n - 1 do
    Queue.add i parked
  done;
  let handles =
    Array.map (fun i -> Dynload.dlopen dynload s.Churn.plugins.(i)) slots
  in
  let churn_events = ref 0 in
  let close_handle h =
    (* The plan's churn hazards are realised here: a Stale_unload close
       applies its invalidation stores with every resulting ABTB clear
       vetoed; an Unload_inflight close defers them past the unmap. *)
    if Inject.take_stale_unload inject then begin
      Inject.begin_unbounded_suppress inject;
      Dynload.dlclose dynload h;
      Inject.end_unbounded_suppress inject
    end
    else if Inject.take_unload_inflight inject then
      Dynload.dlclose ~defer_invalidate:true dynload h
    else Dynload.dlclose dynload h
  in
  let churn () =
    if n > resident then begin
      let k = Rng.int rng resident in
      close_handle handles.(k);
      Queue.add slots.(k) parked;
      let inc = Queue.take parked in
      slots.(k) <- inc;
      handles.(k) <- Dynload.dlopen dynload s.Churn.plugins.(inc);
      incr churn_events
    end
    else begin
      close_handle handles.(0);
      handles.(0) <- Dynload.dlopen dynload s.Churn.plugins.(slots.(0));
      incr churn_events
    end
  in

  let unclassified = ref 0 in
  let divergences = ref [] in
  let n_div = ref 0 in
  let ever_skipped = Hashtbl.create 64 in
  let record_div d =
    if !n_div < max_recorded_divergences then begin
      divergences := d :: !divergences;
      incr n_div
    end
  in

  let run_op r =
    Inject.on_request inject r;
    (* Deferred invalidations from an Unload_inflight close land at the
       next op boundary — after the freed range may have been reused. *)
    Dynload.flush_pending dynload;
    if rate > 0 && Rng.int rng 1000 < rate then churn ();
    let k = Rng.int rng resident in
    let i = slots.(k) in
    let addr =
      match
        Loader.func_addr linked ~mname:s.Churn.plugins.(i).Dlink_obj.Objfile.name
          ~fname:(s.Churn.entry i)
      with
      | Some a -> a
      | None ->
          invalid_arg
            (Printf.sprintf "Churn_oracle.run: %s not found" (s.Churn.entry i))
    in
    Oracle.collector_reset ref_col;
    Oracle.collector_reset dut_col;
    Process.call ref_p addr;
    let crashed =
      try
        Process.call dut_p addr;
        false
      with Process.Fault _ | Skip.Misspeculation _ -> true
    in
    let tainted =
      Oracle.diff_request ~skip ~counters ~ever_skipped
        ~on_unclassified:(fun () -> incr unclassified)
        ~on_divergence:record_div ~request:r
        (Oracle.collector_records ref_col)
        (Oracle.collector_records dut_col)
    in
    if crashed then incr unclassified;
    if tainted || crashed then Process.resync_arch dut_p ~from_:ref_p
  in

  for r = 0 to ops - 1 do
    run_op r
  done;
  Inject.detach inject;
  let stats = Dynload.stats dynload in
  {
    ops;
    churn_events = !churn_events;
    mis_skips = counters.Counters.mis_skips;
    lost_skips = counters.Counters.lost_skips;
    unclassified = !unclassified;
    skips = counters.Counters.tramp_skips;
    resolver_runs = counters.Counters.resolver_runs;
    faults_injected = counters.Counters.fault_injected;
    stable_hits = stats.Dynload.stable_hits;
    stable_misses = stats.Dynload.stable_misses;
    counters = Counters.copy counters;
    divergences = List.rev !divergences;
  }

type core_class = {
  c_mis_skips : int;
  c_lost_skips : int;
  c_stale_unload : int;
  c_timeout_degrades : int;
}

type multi_report = {
  m_ops : int;
  m_churn_events : int;
  m_migrations : int;
  m_mis_skips : int;
  m_lost_skips : int;
  m_stale_unload : int;
  m_unclassified : int;
  m_bus_timeouts : int;
  m_per_core : core_class array;
  m_counters : Counters.t;  (* system-wide sum *)
  m_divergences : Oracle.divergence list;
}

(* Multi-core differential churn: the soak topology (one thread
   round-robin over [cores] kernels, acked coherence bus, epoch-guarded
   unmaps) run against a pure architectural reference.  Divergences are
   classified per dispatched core, with two extra buckets beyond the
   single-core taxonomy: a divergence inside the hazard window after a
   [Stale_unload]/[Unload_inflight] close is charged to stale-unload,
   and a coherence timeout's forced degradation is tracked per victim
   core. *)
let run_multi ?(ucfg = Config.xeon_e5450) ?skip_cfg ?plan ?(hazard_window = 50)
    ?(call_fuel = 1_000_000) ~cores ~quantum ~policy ~link_mode ~rate ~ops ~seed
    (s : Churn.scenario) =
  if cores < 1 then invalid_arg "Churn_oracle.run_multi: cores must be >= 1";
  if quantum < 1 then invalid_arg "Churn_oracle.run_multi: quantum must be >= 1";
  let plan = Option.value plan ~default:(Plan.empty 0) in
  let opts =
    {
      Loader.default_options with
      mode = link_mode;
      func_align = s.Churn.func_align;
      ld_preload = s.Churn.preload;
    }
  in
  let linked = Loader.load_exn ~opts s.Churn.base_objs in
  let is_plt_entry = Loader.is_plt_entry linked in
  let in_got = Loader.in_any_got linked in
  let ld_so =
    match Space.image_by_name linked.Loader.space Loader.ld_so_name with
    | Some img -> img
    | None -> invalid_arg "Churn_oracle.run_multi: no dynamic-linker image"
  in
  let in_ld_so pc = Image.contains ld_so pc in

  let ref_col = Oracle.make_collector () in
  let ref_hooks =
    {
      Process.on_fetch_call = (fun ~pc:_ ~arch_target -> arch_target);
      on_retire =
        (fun ev -> Oracle.collector_on_retire ~is_plt_entry ~in_ld_so ref_col ev);
    }
  in
  let ref_p = Process.create ~hooks:ref_hooks linked in

  let kernels =
    Array.init cores (fun _ -> Kernel.create ~ucfg ?skip_cfg ~with_skip:true ())
  in
  let skips = Array.map (fun k -> Option.get (Kernel.skip k)) kernels in
  let cur = ref 0 in
  let dut_col = Oracle.make_collector () in
  Array.iter
    (fun k ->
      Kernel.set_tap k
        (Some
           (fun ev ->
             Oracle.collector_on_retire ~is_plt_entry ~in_ld_so dut_col ev)))
    kernels;
  let per_hooks =
    Array.map (fun k -> Kernel.process_hooks k ~is_plt_entry ~in_got) kernels
  in
  let dut_hooks =
    {
      Process.on_fetch_call =
        (fun ~pc ~arch_target ->
          per_hooks.(!cur).Process.on_fetch_call ~pc ~arch_target);
      on_retire = (fun ev -> per_hooks.(!cur).Process.on_retire ev);
    }
  in
  let dut_p = Process.create ~hooks:dut_hooks linked in
  let dut_mem = Process.memory dut_p in
  Array.iter
    (fun k -> Kernel.set_read_got k (fun slot -> Memory.read dut_mem slot))
    kernels;

  let bus = Coherence.create () in
  Array.iteri
    (fun i sk ->
      Coherence.subscribe bus ~core:i (fun ~src:_ addr ->
          Skip.on_remote_store sk addr))
    skips;

  let store a v =
    Memory.write (Process.memory ref_p) a v;
    Memory.write dut_mem a v;
    Kernel.retire_packed kernels.(!cur) ~pc:linked.Loader.resolver_entry ~size:4
      ~in_plt:false ~plt_call:false ~got_store:(in_got a) ~load:Addr.none
      ~load2:Addr.none ~store:a ~kind:Event.Kind.none ~target:Addr.none
      ~aux:Addr.none ~taken:false
  in
  let dynload = Dynload.create ~store ~read:(Memory.read dut_mem) linked in
  Dynload.set_unmap_barrier dynload
    (Some
       (fun ~span_base:_ ~span_end:_ ~complete -> Coherence.fence bus ~complete));
  Array.iteri
    (fun i k ->
      Kernel.set_got_sink k
        (Some
           (fun addr ->
             let stamp =
               match Dynload.generation_at dynload addr with
               | Some g -> g
               | None -> -1
             in
             Coherence.publish ~stamp bus ~src:i addr)))
    kernels;
  Coherence.set_validate bus
    (Some
       (fun ~src:_ ~stamp addr ->
         (match Dynload.generation_at dynload addr with
         | Some g -> g
         | None -> -1)
         = stamp));
  let degrades = Array.make cores 0 in
  Coherence.set_on_timeout bus
    (Some
       (fun ~core ~src:_ _addr ->
         if Skip.degraded_remaining skips.(core) = 0 then
           degrades.(core) <- degrades.(core) + 1;
         Skip.degrade skips.(core) ~window:Skip.default_config.quarantine_window));

  let rewrite rng =
    let live = ref [] in
    Abtb.iter (fun _tramp e -> live := e :: !live) (Skip.abtb skips.(!cur));
    let live = Array.of_list (List.rev !live) in
    let pool =
      Array.of_list
        (List.filter_map
           (fun sym -> Linkmap.lookup_addr linked.Loader.linkmap sym)
           (Linkmap.symbols linked.Loader.linkmap))
    in
    if Array.length live = 0 || Array.length pool < 2 then false
    else begin
      let e = live.(Rng.int rng (Array.length live)) in
      let cands =
        Array.to_list pool |> List.filter (fun a -> a <> e.Abtb.func)
      in
      match cands with
      | [] -> false
      | _ ->
          let target = List.nth cands (Rng.int rng (List.length cands)) in
          Memory.write (Process.memory ref_p) e.Abtb.got_slot target;
          Memory.write dut_mem e.Abtb.got_slot target;
          true
    end
  in
  let inject =
    Inject.create ~bus ~rewrite ~skip:skips.(0)
      ~counters:(Kernel.counters kernels.(0))
      ~plan ()
  in
  Array.iteri (fun i sk -> if i > 0 then Inject.attach_skip inject sk) skips;
  Inject.set_current inject (Some (fun () -> skips.(!cur)));

  let n = Array.length s.Churn.plugins in
  let resident = max 1 (min s.Churn.n_resident n) in
  let rng = Rng.create seed in
  let slots = Array.init resident (fun i -> i) in
  let parked = Queue.create () in
  for i = resident to n - 1 do
    Queue.add i parked
  done;
  let handles =
    Array.map (fun i -> Dynload.dlopen dynload s.Churn.plugins.(i)) slots
  in
  let churn_events = ref 0 in
  let hazard_until = ref (-1) in
  let op = ref 0 in
  let close_handle h =
    if Inject.take_stale_unload inject then begin
      hazard_until := !op + hazard_window;
      Inject.begin_unbounded_suppress inject;
      Dynload.dlclose dynload h;
      Inject.end_unbounded_suppress inject
    end
    else if Inject.take_unload_inflight inject then begin
      hazard_until := !op + hazard_window;
      Dynload.dlclose ~defer_invalidate:true dynload h
    end
    else Dynload.dlclose dynload h
  in
  let churn () =
    if n > resident then begin
      let k = Rng.int rng resident in
      close_handle handles.(k);
      Queue.add slots.(k) parked;
      let inc = Queue.take parked in
      slots.(k) <- inc;
      handles.(k) <- Dynload.dlopen dynload s.Churn.plugins.(inc);
      incr churn_events
    end
    else begin
      close_handle handles.(0);
      handles.(0) <- Dynload.dlopen dynload s.Churn.plugins.(slots.(0));
      incr churn_events
    end
  in

  let unclassified = ref 0 in
  let stale_unload = Array.make cores 0 in
  let divergences = ref [] in
  let n_div = ref 0 in
  let ever_skipped = Hashtbl.create 64 in
  let record_div (d : Oracle.divergence) =
    if d.Oracle.request < !hazard_until then
      stale_unload.(!cur) <- stale_unload.(!cur) + 1;
    if !n_div < max_recorded_divergences then begin
      divergences := d :: !divergences;
      incr n_div
    end
  in
  let migrations = ref 0 in
  let dispatch core =
    if core <> !cur then begin
      incr migrations;
      (match policy with
      | Policy.Flush -> Kernel.context_switch kernels.(core)
      | Policy.Asid | Policy.Asid_shared_guard ->
          Kernel.context_switch ~retain_asid:true kernels.(core));
      cur := core
    end
  in

  let run_op r =
    if r mod quantum = 0 then begin
      dispatch (r / quantum mod cores);
      ignore (Coherence.drain bus : int)
    end;
    Inject.on_request inject r;
    Dynload.flush_pending dynload;
    if rate > 0 && Rng.int rng 1000 < rate then churn ();
    let k = Rng.int rng resident in
    let i = slots.(k) in
    let addr =
      match
        Loader.func_addr linked ~mname:s.Churn.plugins.(i).Dlink_obj.Objfile.name
          ~fname:(s.Churn.entry i)
      with
      | Some a -> a
      | None ->
          invalid_arg
            (Printf.sprintf "Churn_oracle.run_multi: %s not found"
               (s.Churn.entry i))
    in
    Oracle.collector_reset ref_col;
    Oracle.collector_reset dut_col;
    (* An injected GOT rewrite corrupts the shared architectural state,
       so even the reference can land in a function that never returns
       to this frame; a bounded-fuel crash on either machine makes the
       op unclassifiable chaos rather than a hang. *)
    let ref_crashed =
      try
        Process.call ref_p ~fuel:call_fuel addr;
        false
      with Process.Fault _ -> true
    in
    let crashed =
      try
        Process.call dut_p ~fuel:call_fuel addr;
        false
      with Process.Fault _ | Skip.Misspeculation _ -> true
    in
    if ref_crashed || crashed then begin
      incr unclassified;
      Process.resync_arch dut_p ~from_:ref_p
    end
    else begin
      let tainted =
        Oracle.diff_request ~skip:skips.(!cur)
          ~counters:(Kernel.counters kernels.(!cur))
          ~ever_skipped
          ~on_unclassified:(fun () -> incr unclassified)
          ~on_divergence:record_div ~request:r
          (Oracle.collector_records ref_col)
          (Oracle.collector_records dut_col)
      in
      if tainted then Process.resync_arch dut_p ~from_:ref_p
    end
  in

  while !op < ops do
    run_op !op;
    incr op
  done;
  let rec settle budget =
    if budget > 0 && Coherence.pending bus > 0 then begin
      ignore (Coherence.drain bus : int);
      settle (budget - 1)
    end
  in
  settle 256;
  ignore (Dynload.force_retiring dynload : int);
  settle 256;
  Inject.detach inject;

  let per_core =
    Array.init cores (fun i ->
        let c = Kernel.counters kernels.(i) in
        {
          c_mis_skips = c.Counters.mis_skips;
          c_lost_skips = c.Counters.lost_skips;
          c_stale_unload = stale_unload.(i);
          c_timeout_degrades = degrades.(i);
        })
  in
  let sum = Counters.create () in
  Array.iter (fun k -> Counters.add ~into:sum (Kernel.counters k)) kernels;
  {
    m_ops = ops;
    m_churn_events = !churn_events;
    m_migrations = !migrations;
    m_mis_skips = sum.Counters.mis_skips;
    m_lost_skips = sum.Counters.lost_skips;
    m_stale_unload = Array.fold_left ( + ) 0 stale_unload;
    m_unclassified = !unclassified;
    m_bus_timeouts = Coherence.timeouts bus;
    m_per_core = per_core;
    m_counters = sum;
    m_divergences = List.rev !divergences;
  }
