open Dlink_isa
module Event = Dlink_mach.Event

type violation =
  | Fetch_unmapped of { core : int; pc : Addr.t }
  | Stale_skip of { core : int; pc : Addr.t; tramp : Addr.t; target : Addr.t }
  | Stale_message of { src : int; addr : Addr.t; stamp : int }

type cfg = {
  in_mapped : Addr.t -> bool;
  skip_target_ok : tramp:Addr.t -> target:Addr.t -> bool;
  message_fresh : stamp:int -> Addr.t -> bool;
  epoch_guard : bool;
}

type t = {
  cfg : cfg;
  max_recorded : int;
  mutable checks : int;
  mutable n_violations : int;
  mutable n_fetch_unmapped : int;
  mutable n_stale_skips : int;
  mutable n_stale_messages : int;
  mutable aba_discards : int;
  mutable recorded : violation list; (* newest first, capped *)
  mutable first_at : int option; (* checks index of the first violation *)
}

let create ?(max_recorded = 32) cfg =
  {
    cfg;
    max_recorded;
    checks = 0;
    n_violations = 0;
    n_fetch_unmapped = 0;
    n_stale_skips = 0;
    n_stale_messages = 0;
    aba_discards = 0;
    recorded = [];
    first_at = None;
  }

let record t v =
  t.n_violations <- t.n_violations + 1;
  if t.first_at = None then t.first_at <- Some t.checks;
  (match v with
  | Fetch_unmapped _ -> t.n_fetch_unmapped <- t.n_fetch_unmapped + 1
  | Stale_skip _ -> t.n_stale_skips <- t.n_stale_skips + 1
  | Stale_message _ -> t.n_stale_messages <- t.n_stale_messages + 1);
  if List.length t.recorded < t.max_recorded then t.recorded <- v :: t.recorded

(* The per-retired-event asserts.  A redirected direct call — actual
   target differing from the encoded one — is a trampoline skip; it is
   legal only while the trampoline's GOT slot still justifies the target,
   which the embedder's [skip_target_ok] re-derives from live loader and
   memory state.  Everything else reduces to "never execute unmapped
   text". *)
let on_retire t ~core (ev : Event.t) =
  t.checks <- t.checks + 1;
  if not (t.cfg.in_mapped ev.Event.pc) then
    record t (Fetch_unmapped { core; pc = ev.Event.pc });
  match ev.Event.branch with
  | Some (Event.Call_direct { target; arch_target })
    when target <> arch_target ->
      if not (t.cfg.skip_target_ok ~tramp:arch_target ~target) then
        record t (Stale_skip { core; pc = ev.Event.pc; tramp = arch_target; target })
  | _ -> ()

(* The interpreter refuses to fetch unmapped text before any event
   retires; a driver that catches [Process.Fault] reports it here so the
   crash is classified with the same vocabulary. *)
let record_fetch_fault t ~core ~pc =
  t.checks <- t.checks + 1;
  record t (Fetch_unmapped { core; pc })

let record_stale_skip t ~core ~pc ~tramp ~target =
  t.checks <- t.checks + 1;
  record t (Stale_skip { core; pc; tramp; target })

(* Bus validate hook: [true] lets the message apply.  With the epoch
   guard on, a stale message is discarded — recovery, counted but not a
   violation.  With the guard off (ablation: what the protocol would do
   without generation stamps) the stale message goes through and the
   checker records the ABA violation it causes. *)
let on_message t ~src ~stamp addr =
  t.checks <- t.checks + 1;
  if t.cfg.message_fresh ~stamp addr then true
  else if t.cfg.epoch_guard then begin
    t.aba_discards <- t.aba_discards + 1;
    false
  end
  else begin
    record t (Stale_message { src; addr; stamp });
    true
  end

let checks t = t.checks
let violations t = t.n_violations
let fetch_unmapped t = t.n_fetch_unmapped
let stale_skips t = t.n_stale_skips
let stale_messages t = t.n_stale_messages
let aba_discards t = t.aba_discards
let recorded t = List.rev t.recorded
let first_violation t = match List.rev t.recorded with v :: _ -> Some v | [] -> None
let first_violation_at t = t.first_at

let violation_to_string = function
  | Fetch_unmapped { core; pc } ->
      Printf.sprintf "fetch-unmapped core=%d pc=%s" core (Addr.to_hex pc)
  | Stale_skip { core; pc; tramp; target } ->
      Printf.sprintf "stale-skip core=%d pc=%s tramp=%s target=%s" core
        (Addr.to_hex pc) (Addr.to_hex tramp) (Addr.to_hex target)
  | Stale_message { src; addr; stamp } ->
      Printf.sprintf "stale-message src=%d addr=%s stamp=%d" src
        (Addr.to_hex addr) stamp
