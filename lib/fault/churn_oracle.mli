(** Differential correctness oracle for runtime module churn.

    Extends {!Oracle}'s reference-vs-DUT scheme to a workload that
    dlopens and dlcloses plugins while it runs: one
    {!Dlink_linker.Dynload} serves both machines (stores applied to both
    memories, retired through the DUT's kernel only), and the plan's
    churn actions — [Stale_unload], [Unload_inflight] — are realised
    around the dlcloses, where they can leave the ABTB holding entries
    for trampolines whose module is gone and whose address range may
    already belong to a different plugin.

    The classification taxonomy (mis-skip / lost skip / unclassified) and
    the record projection are shared with {!Oracle}. *)

open Dlink_uarch
module Skip = Dlink_pipeline.Skip
module Churn = Dlink_core.Churn

type report = {
  ops : int;
  churn_events : int;
  mis_skips : int;
  lost_skips : int;
  unclassified : int;
  skips : int;  (** DUT trampoline skips *)
  resolver_runs : int;  (** DUT resolver executions *)
  faults_injected : int;
  stable_hits : int;  (** snapshot entries installed on reopen *)
  stable_misses : int;
  counters : Counters.t;  (** full DUT counter set (fresh copy) *)
  divergences : Oracle.divergence list;
}

val run :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  ?plan:Plan.t ->
  link_mode:Dlink_linker.Mode.t ->
  rate:int ->
  ops:int ->
  seed:int ->
  Churn.scenario ->
  report
(** [rate] is churn events per 1000 ops, [ops] the number of plugin
    calls.  With an empty plan the run must be divergence-free in every
    link mode — that invariant is what makes the stable-linking resolver
    comparison trustworthy.  Fully deterministic for equal arguments. *)
