(** Differential correctness oracle for runtime module churn.

    Extends {!Oracle}'s reference-vs-DUT scheme to a workload that
    dlopens and dlcloses plugins while it runs: one
    {!Dlink_linker.Dynload} serves both machines (stores applied to both
    memories, retired through the DUT's kernel only), and the plan's
    churn actions — [Stale_unload], [Unload_inflight] — are realised
    around the dlcloses, where they can leave the ABTB holding entries
    for trampolines whose module is gone and whose address range may
    already belong to a different plugin.

    The classification taxonomy (mis-skip / lost skip / unclassified) and
    the record projection are shared with {!Oracle}. *)

open Dlink_uarch
module Skip = Dlink_pipeline.Skip
module Churn = Dlink_core.Churn

type report = {
  ops : int;
  churn_events : int;
  mis_skips : int;
  lost_skips : int;
  unclassified : int;
  skips : int;  (** DUT trampoline skips *)
  resolver_runs : int;  (** DUT resolver executions *)
  faults_injected : int;
  stable_hits : int;  (** snapshot entries installed on reopen *)
  stable_misses : int;
  counters : Counters.t;  (** full DUT counter set (fresh copy) *)
  divergences : Oracle.divergence list;
}

val run :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  ?plan:Plan.t ->
  link_mode:Dlink_linker.Mode.t ->
  rate:int ->
  ops:int ->
  seed:int ->
  Churn.scenario ->
  report
(** [rate] is churn events per 1000 ops, [ops] the number of plugin
    calls.  With an empty plan the run must be divergence-free in every
    link mode — that invariant is what makes the stable-linking resolver
    comparison trustworthy.  Fully deterministic for equal arguments. *)

(** {2 Multi-core differential mode} *)

type core_class = {
  c_mis_skips : int;
  c_lost_skips : int;
  c_stale_unload : int;
      (** divergences inside the hazard window after a
          [Stale_unload]/[Unload_inflight] close, charged to the core
          that retired them *)
  c_timeout_degrades : int;
      (** degradation windows forced on this core by coherence timeouts *)
}

type multi_report = {
  m_ops : int;
  m_churn_events : int;
  m_migrations : int;
  m_mis_skips : int;
  m_lost_skips : int;
  m_stale_unload : int;
  m_unclassified : int;
  m_bus_timeouts : int;
  m_per_core : core_class array;
  m_counters : Counters.t;  (** system-wide sum over all cores *)
  m_divergences : Oracle.divergence list;
}

val run_multi :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  ?plan:Plan.t ->
  ?hazard_window:int ->
  ?call_fuel:int ->
  cores:int ->
  quantum:int ->
  policy:Dlink_pipeline.Policy.t ->
  link_mode:Dlink_linker.Mode.t ->
  rate:int ->
  ops:int ->
  seed:int ->
  Churn.scenario ->
  multi_report
(** The differential oracle over the soak topology: one architectural
    thread migrating round-robin (quantum ops per slice) across [cores]
    Enhanced kernels wired to an acked coherence bus, versus the pure
    architectural reference.  Each divergence is classified against the
    {e dispatched} core's skip unit and counters; a divergence within
    [hazard_window] (default 50) ops of a hazard-realised close is
    additionally charged to that core's stale-unload bucket.  With an
    empty plan the run must be divergence-free on every core. *)
