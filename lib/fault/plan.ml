module Rng = Dlink_util.Rng

type action =
  | Bloom_flip
  | Suppress_clear of int
  | Spurious_clear
  | Got_rewrite
  | Asid_reuse
  | Drop_msgs of int
  | Delay_msgs of int
  | Reorder_msgs of int
  | Stale_unload of int
  | Unload_inflight

type event = { at : int; action : action }
type t = { seed : int; events : event list }

let empty seed = { seed; events = [] }

let sort_events evs = List.stable_sort (fun a b -> compare a.at b.at) evs

let generate ?(coherence = false) ?(churn = false) ~seed ~budget ~faults () =
  if budget <= 0 then invalid_arg "Plan.generate: budget must be positive";
  if faults < 0 then invalid_arg "Plan.generate: faults must be non-negative";
  let rng = Rng.create seed in
  let kinds = (if coherence then 8 else 5) + if churn then 2 else 0 in
  let events =
    List.init faults (fun _ ->
        let at = Rng.int rng budget in
        let n () = 1 + Rng.int rng 3 in
        let action =
          (* Churn actions take the slots past the enabled static set, so
             non-churn plans are unchanged for a given seed. *)
          let k = Rng.int rng kinds in
          (* Churn actions take the slots past the enabled static set, so
             plans for a given seed are unchanged by the coherence flag's
             vocabulary growing. *)
          let k =
            if churn && not coherence && k >= 5 then k + 3 else k
          in
          match k with
          | 0 -> Bloom_flip
          | 1 -> Suppress_clear (n ())
          | 2 -> Spurious_clear
          | 3 -> Got_rewrite
          | 4 -> Asid_reuse
          | 5 -> Drop_msgs (n ())
          | 6 -> Delay_msgs (n ())
          | 7 -> Reorder_msgs (n ())
          | 8 -> Stale_unload (n ())
          | _ -> Unload_inflight
        in
        { at; action })
  in
  { seed; events = sort_events events }

let actions_at t at =
  List.filter_map (fun e -> if e.at = at then Some e.action else None) t.events

let has_rewrite t = List.exists (fun e -> e.action = Got_rewrite) t.events

let has_unload_hazard t =
  List.exists
    (fun e ->
      match e.action with Stale_unload _ | Unload_inflight -> true | _ -> false)
    t.events

let action_to_string = function
  | Bloom_flip -> "bloom_flip"
  | Suppress_clear n -> Printf.sprintf "suppress_clear*%d" n
  | Spurious_clear -> "spurious_clear"
  | Got_rewrite -> "got_rewrite"
  | Asid_reuse -> "asid_reuse"
  | Drop_msgs n -> Printf.sprintf "drop_msgs*%d" n
  | Delay_msgs n -> Printf.sprintf "delay_msgs*%d" n
  | Reorder_msgs n -> Printf.sprintf "reorder_msgs*%d" n
  | Stale_unload n -> Printf.sprintf "stale_unload*%d" n
  | Unload_inflight -> "unload_inflight"

let to_string t =
  String.concat ";"
    (Printf.sprintf "seed=%d" t.seed
    :: List.map
         (fun e -> Printf.sprintf "%d:%s" e.at (action_to_string e.action))
         t.events)

let action_of_string s =
  let name, count =
    match String.index_opt s '*' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let counted mk =
    match count with
    | Some n when n > 0 -> Ok (mk n)
    | Some _ -> Error (Printf.sprintf "bad repeat count in %S" s)
    | None -> Ok (mk 1)
  in
  let plain a =
    match count with
    | None -> Ok a
    | Some _ -> Error (Printf.sprintf "%S takes no repeat count" s)
  in
  match name with
  | "bloom_flip" -> plain Bloom_flip
  | "suppress_clear" -> counted (fun n -> Suppress_clear n)
  | "spurious_clear" -> plain Spurious_clear
  | "got_rewrite" -> plain Got_rewrite
  | "asid_reuse" -> plain Asid_reuse
  | "drop_msgs" -> counted (fun n -> Drop_msgs n)
  | "delay_msgs" -> counted (fun n -> Delay_msgs n)
  | "reorder_msgs" -> counted (fun n -> Reorder_msgs n)
  | "stale_unload" -> counted (fun n -> Stale_unload n)
  | "unload_inflight" -> plain Unload_inflight
  | _ -> Error (Printf.sprintf "unknown fault action %S" name)

let of_string s =
  let parts = String.split_on_char ';' (String.trim s) in
  match parts with
  | [] -> Error "empty plan"
  | seed_part :: rest -> (
      let seed_result =
        match String.split_on_char '=' seed_part with
        | [ "seed"; v ] -> (
            match int_of_string_opt v with
            | Some seed -> Ok seed
            | None -> Error (Printf.sprintf "bad seed %S" v))
        | _ -> Error (Printf.sprintf "expected seed=N, got %S" seed_part)
      in
      match seed_result with
      | Error _ as e -> e
      | Ok seed ->
          let rec parse acc = function
            | [] -> Ok { seed; events = sort_events (List.rev acc) }
            | "" :: rest -> parse acc rest
            | part :: rest -> (
                match String.index_opt part ':' with
                | None -> Error (Printf.sprintf "expected AT:ACTION, got %S" part)
                | Some i -> (
                    let at_s = String.sub part 0 i in
                    let act_s =
                      String.sub part (i + 1) (String.length part - i - 1)
                    in
                    match int_of_string_opt at_s with
                    | None -> Error (Printf.sprintf "bad request index %S" at_s)
                    | Some at when at < 0 ->
                        Error (Printf.sprintf "negative request index %d" at)
                    | Some at -> (
                        match action_of_string act_s with
                        | Error _ as e -> e
                        | Ok action -> parse ({ at; action } :: acc) rest)))
          in
          parse [] rest)
