open Dlink_uarch
module Rng = Dlink_util.Rng
module Skip = Dlink_pipeline.Skip
module Coherence = Dlink_mach.Coherence

type t = {
  plan : Plan.t;
  skip : Skip.t;
  counters : Counters.t;
  bus : Coherence.t option;
  rewrite : (Rng.t -> bool) option;
  rng : Rng.t;
  mutable suppress : int;
  mutable suppress_all : bool; (* veto every clear while set (dlclose window) *)
  mutable drop : int;
  mutable delay : int;
  mutable stale_unload : int;
  mutable unload_inflight : int;
}

let create ?bus ?rewrite ~skip ~counters ~plan () =
  let t =
    {
      plan;
      skip;
      counters;
      bus;
      rewrite;
      rng = Rng.create plan.Plan.seed;
      suppress = 0;
      suppress_all = false;
      drop = 0;
      delay = 0;
      stale_unload = 0;
      unload_inflight = 0;
    }
  in
  Skip.set_clear_veto skip
    (Some
       (fun () ->
         if t.suppress_all then true
         else if t.suppress > 0 then begin
           t.suppress <- t.suppress - 1;
           true
         end
         else false));
  Option.iter
    (fun bus ->
      Coherence.set_fault bus
        (Some
           (fun ~src:_ _addr ->
             if t.drop > 0 then begin
               t.drop <- t.drop - 1;
               Coherence.Drop
             end
             else if t.delay > 0 then begin
               t.delay <- t.delay - 1;
               Coherence.Delay
             end
             else Coherence.Deliver)))
    bus;
  t

let detach t =
  Skip.set_clear_veto t.skip None;
  Option.iter (fun bus -> Coherence.set_fault bus None) t.bus

(* Flip a set bit of the Bloom field, starting the search at a random
   position; a no-op on an empty filter. *)
let flip_bloom_bit t =
  let bloom = Skip.bloom t.skip in
  let n = Bloom.size_bits bloom in
  if Bloom.bits_set bloom > 0 then begin
    let start = Rng.int t.rng n in
    let rec seek i steps =
      if steps >= n then ()
      else
        let idx = (start + i) land (n - 1) in
        (* size_bits is a power of two *)
        let before = Bloom.bits_set bloom in
        Bloom.clear_bit bloom idx;
        if Bloom.bits_set bloom < before then () else seek (i + 1) (steps + 1)
    in
    seek 0 0
  end

let apply t action =
  t.counters.Counters.fault_injected <- t.counters.Counters.fault_injected + 1;
  match action with
  | Plan.Bloom_flip -> flip_bloom_bit t
  | Plan.Suppress_clear n -> t.suppress <- t.suppress + n
  | Plan.Spurious_clear -> Skip.flush t.skip
  | Plan.Got_rewrite ->
      Option.iter (fun f -> ignore (f t.rng : bool)) t.rewrite
  | Plan.Asid_reuse ->
      Skip.set_asid t.skip (if Skip.asid t.skip = 0 then 1 else 0)
  | Plan.Drop_msgs n -> t.drop <- t.drop + n
  | Plan.Delay_msgs n -> t.delay <- t.delay + n
  | Plan.Stale_unload n -> t.stale_unload <- t.stale_unload + n
  | Plan.Unload_inflight -> t.unload_inflight <- t.unload_inflight + 1

let on_request t at = List.iter (apply t) (Plan.actions_at t.plan at)

(* Churn-driver hooks: the driver owns dlopen/dlclose, so it polls these
   before each close and brackets the close's invalidation stores. *)

let take_stale_unload t =
  if t.stale_unload > 0 then begin
    t.stale_unload <- t.stale_unload - 1;
    true
  end
  else false

let take_unload_inflight t =
  if t.unload_inflight > 0 then begin
    t.unload_inflight <- t.unload_inflight - 1;
    true
  end
  else false

let begin_unbounded_suppress t = t.suppress_all <- true
let end_unbounded_suppress t = t.suppress_all <- false
