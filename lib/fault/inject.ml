open Dlink_uarch
module Rng = Dlink_util.Rng
module Skip = Dlink_pipeline.Skip
module Coherence = Dlink_mach.Coherence

type t = {
  plan : Plan.t;
  skip : Skip.t;
  (* Every skip unit carrying this injector's clear-veto; [skip] plus any
     attached by [attach_skip] (multi-core topologies).  The credit pool
     is shared: a suppressed clear consumes one credit on whichever core
     clears next. *)
  mutable skips : Skip.t list;
  (* Which unit skip-targeted actions (Bloom_flip, Spurious_clear,
     Asid_reuse) hit; defaults to [skip], multi-core drivers point it at
     the currently dispatched core. *)
  mutable current : unit -> Skip.t;
  counters : Counters.t;
  bus : Coherence.t option;
  rewrite : (Rng.t -> bool) option;
  rng : Rng.t;
  mutable suppress : int;
  mutable suppress_all : bool; (* veto every clear while set (dlclose window) *)
  mutable drop : int;
  mutable delay : int;
  mutable reorder : int;
  mutable stale_unload : int;
  mutable unload_inflight : int;
}

let veto t () =
  if t.suppress_all then true
  else if t.suppress > 0 then begin
    t.suppress <- t.suppress - 1;
    true
  end
  else false

let create ?bus ?rewrite ~skip ~counters ~plan () =
  let rec t =
    {
      plan;
      skip;
      skips = [ skip ];
      current = (fun () -> t.skip);
      counters;
      bus;
      rewrite;
      rng = Rng.create plan.Plan.seed;
      suppress = 0;
      suppress_all = false;
      drop = 0;
      delay = 0;
      reorder = 0;
      stale_unload = 0;
      unload_inflight = 0;
    }
  in
  Skip.set_clear_veto skip (Some (veto t));
  Option.iter
    (fun bus ->
      Coherence.set_fault bus
        (Some
           (fun ~src:_ _addr ->
             if t.drop > 0 then begin
               t.drop <- t.drop - 1;
               Coherence.Drop
             end
             else if t.delay > 0 then begin
               t.delay <- t.delay - 1;
               Coherence.Delay
             end
             else if t.reorder > 0 then begin
               t.reorder <- t.reorder - 1;
               Coherence.Reorder
             end
             else Coherence.Deliver)))
    bus;
  t

let attach_skip t skip =
  if not (List.memq skip t.skips) then begin
    t.skips <- t.skips @ [ skip ];
    Skip.set_clear_veto skip (Some (veto t))
  end

let set_current t f =
  t.current <- (match f with None -> fun () -> t.skip | Some f -> f)

let detach t =
  List.iter (fun s -> Skip.set_clear_veto s None) t.skips;
  Option.iter (fun bus -> Coherence.set_fault bus None) t.bus

(* Flip a set bit of the Bloom field, starting the search at a random
   position; a no-op on an empty filter. *)
let flip_bloom_bit t =
  let bloom = Skip.bloom (t.current ()) in
  let n = Bloom.size_bits bloom in
  if Bloom.bits_set bloom > 0 then begin
    let start = Rng.int t.rng n in
    let rec seek i steps =
      if steps >= n then ()
      else
        let idx = (start + i) land (n - 1) in
        (* size_bits is a power of two *)
        let before = Bloom.bits_set bloom in
        Bloom.clear_bit bloom idx;
        if Bloom.bits_set bloom < before then () else seek (i + 1) (steps + 1)
    in
    seek 0 0
  end

let apply t action =
  t.counters.Counters.fault_injected <- t.counters.Counters.fault_injected + 1;
  match action with
  | Plan.Bloom_flip -> flip_bloom_bit t
  | Plan.Suppress_clear n -> t.suppress <- t.suppress + n
  | Plan.Spurious_clear -> Skip.flush (t.current ())
  | Plan.Got_rewrite ->
      Option.iter (fun f -> ignore (f t.rng : bool)) t.rewrite
  | Plan.Asid_reuse ->
      let s = t.current () in
      Skip.set_asid s (if Skip.asid s = 0 then 1 else 0)
  | Plan.Drop_msgs n -> t.drop <- t.drop + n
  | Plan.Delay_msgs n -> t.delay <- t.delay + n
  | Plan.Reorder_msgs n -> t.reorder <- t.reorder + n
  | Plan.Stale_unload n -> t.stale_unload <- t.stale_unload + n
  | Plan.Unload_inflight -> t.unload_inflight <- t.unload_inflight + 1

let on_request t at = List.iter (apply t) (Plan.actions_at t.plan at)

(* Churn-driver hooks: the driver owns dlopen/dlclose, so it polls these
   before each close and brackets the close's invalidation stores. *)

let take_stale_unload t =
  if t.stale_unload > 0 then begin
    t.stale_unload <- t.stale_unload - 1;
    true
  end
  else false

let take_unload_inflight t =
  if t.unload_inflight > 0 then begin
    t.unload_inflight <- t.unload_inflight - 1;
    true
  end
  else false

let begin_unbounded_suppress t = t.suppress_all <- true
let end_unbounded_suppress t = t.suppress_all <- false
