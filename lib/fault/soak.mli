(** Long-horizon multi-core soak/chaos harness.

    One interpreter process — one address space, one architectural
    thread — migrates round-robin over [cores] pipeline kernels while
    the dynamic loader churns plugin modules underneath it.  Each core
    keeps its own skip unit whose cached trampoline targets persist
    while the thread runs elsewhere; the acked coherence bus
    ({!Dlink_mach.Coherence}) is what keeps that state honest, and the
    soak exists to batter exactly that machinery: dropped, delayed and
    reordered invalidations, stale unloads, unguarded GOT rewrites, and
    address reuse racing in-flight messages.

    The {!Invariant} checker taps every kernel's retire stream and the
    bus's delivery point; a clean soak must finish with zero violations,
    and a faulted soak must end every hazard either {e recovered}
    (retry, epoch-guard discard, quarantine/degrade) or {e caught} as a
    classified violation — never a silent wrong-target skip.

    The request loop mirrors {!Dlink_core.Churn.run_cell} draw for draw:
    a [cores = 1] soak retires bit-identical counters to the equivalent
    churn cell ({!crosscheck} enforces this), so multi-core soaks are
    directly comparable to the perf grid's cells. *)

open Dlink_uarch
module Skip = Dlink_pipeline.Skip
module Policy = Dlink_pipeline.Policy
module Churn = Dlink_core.Churn

type params = {
  cores : int;  (** pipeline kernels the thread migrates over (>= 1) *)
  quantum : int;  (** ops per scheduling quantum (>= 1) *)
  policy : Policy.t;  (** applied to the arrival core on each migration *)
  link_mode : Dlink_linker.Mode.t;
  rate : int;  (** churn events per 1000 ops *)
  ops : int;  (** request count (plugin calls) *)
  min_instructions : int;
      (** keep soaking past [ops] until this many instructions retired
          system-wide; [0] disables *)
  seed : int;
  epoch_guard : bool;
      (** validate message generation stamps at delivery (the protocol);
          [false] is the ABA ablation the checker then catches *)
  degrade_window : int;
      (** skip-suppression window forced on a core that times out *)
  call_fuel : int;
      (** per-request interpreter fuel: a mis-directed call under faults
          may never return, and fuel exhaustion becomes a classified
          crash instead of a hang *)
}

val default_params : params
(** 4 cores, quantum 64, [Asid_shared_guard], lazy binding, rate 100,
    10k ops, epoch guard on, degrade window 64, fuel 1M. *)

type bus_stats = {
  published : int;
  delivered : int;
  acked : int;
  dropped : int;
  retries : int;
  reorders : int;
  timeouts : int;
  stale_discards : int;
  unresolved : int;  (** still parked after quiesce — always 0 *)
}

type report = {
  ops : int;
  churn_events : int;
  migrations : int;
  crashes : int;  (** interpreter faults caught and classified *)
  counters : Counters.t;  (** system-wide, measurement window *)
  per_core : Counters.t array;
  checks : int;
  violations : int;
  fetch_unmapped : int;
  stale_skips : int;
  stale_messages : int;
  aba_discards : int;  (** stale messages the epoch guard recovered *)
  recorded : Invariant.violation list;
  first_violation_op : int option;
  epoch_guard : bool;
  bus : bus_stats;
  opens : int;
  closes : int;
  rebinds : int;
  grace_unmaps : int;
  forced_unmaps : int;
  retiring : int;  (** grace periods left after quiesce — always 0 *)
  faults_injected : int;
}

val run :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  ?plan:Plan.t ->
  params ->
  Churn.scenario ->
  report
(** Soak the scenario under [params], optionally applying a fault plan.
    Deterministic: same arguments, same report.  Ends with a quiesce —
    drain until the bus empties, then {!Dlink_linker.Dynload.force_retiring}
    — so no in-flight state leaks out of the run. *)

val check : ?plan:Plan.t -> report -> string list
(** Safety properties of a finished soak, as failure messages (empty =
    pass): no violations/crashes/timeouts/drops unless the plan seeds
    them, bus conservation ([published = acked + timeouts + stale]),
    nothing unresolved after quiesce, and no stale message applied while
    the epoch guard is on. *)

val failed : plan:Plan.t -> report -> bool
(** The shrink predicate: the run produced a violation or failed
    {!check}. *)

val shrink :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  params ->
  plan:Plan.t ->
  Churn.scenario ->
  Plan.t * report
(** ddmin the plan's events to a minimal sub-plan that still {!failed}s,
    re-running the soak per candidate; returns the input plan's run
    unchanged if it doesn't fail.  [Plan.to_string] of the result is the
    replayable reproducer. *)

val crosscheck :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  params ->
  Churn.scenario ->
  (unit, string) result
(** Run a [cores = 1], fault-free soak and the equivalent
    {!Churn.run_cell}; [Ok] iff their measurement-window counters are
    bit-identical. *)
