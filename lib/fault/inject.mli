(** The fault-injection layer: applies a {!Plan.t} against one skip unit
    (and optionally a coherence bus) as a workload advances.

    All randomness inside the injector (which Bloom bit to flip, which
    live ABTB entry's slot to rebind) flows from the plan's seed, so a
    plan replays bit-identically.  Every applied action bumps the
    [fault_injected] counter. *)

open Dlink_uarch
module Skip = Dlink_pipeline.Skip
module Coherence = Dlink_mach.Coherence

type t

val create :
  ?bus:Coherence.t ->
  ?rewrite:(Dlink_util.Rng.t -> bool) ->
  skip:Skip.t ->
  counters:Counters.t ->
  plan:Plan.t ->
  unit ->
  t
(** Arms the skip unit's clear-veto hook and (when [bus] is given) the
    bus's fault hook.  [rewrite] performs a [Got_rewrite] action — it gets
    the injector's RNG and reports whether a slot was actually rebound;
    the differential oracle supplies it because only the oracle holds both
    memories.  Without it, [Got_rewrite] events are no-ops. *)

val on_request : t -> int -> unit
(** Apply every plan action scheduled at this request index.  Call once
    per request, before executing it. *)

val attach_skip : t -> Skip.t -> unit
(** Install this injector's clear-veto on a further skip unit (multi-core
    topologies: every core shares one suppress-credit pool).  Idempotent
    per unit; {!detach} removes the veto from all attached units. *)

val set_current : t -> (unit -> Skip.t) option -> unit
(** Select which unit skip-targeted actions ([Bloom_flip],
    [Spurious_clear], [Asid_reuse]) strike.  Multi-core drivers point
    this at the currently dispatched core; [None] restores the default
    (the [skip] given at {!create}). *)

val detach : t -> unit
(** Remove the veto and bus hooks, restoring fault-free behaviour. *)

(** {2 Churn-driver hooks}

    [Stale_unload]/[Unload_inflight] actions only arm counters here; the
    churn driver (which owns dlopen/dlclose) polls them before each close
    and realises the hazard. *)

val take_stale_unload : t -> bool
(** Consume one pending [Stale_unload] credit, if any. *)

val take_unload_inflight : t -> bool
(** Consume one pending [Unload_inflight] credit, if any. *)

val begin_unbounded_suppress : t -> unit
(** Veto every filter-driven ABTB clear until the matching
    {!end_unbounded_suppress} — brackets a dlclose whose invalidation
    stores must be architecturally applied but microarchitecturally
    lost. *)

val end_unbounded_suppress : t -> unit
