open Dlink_isa
open Dlink_mach
open Dlink_uarch
open Dlink_linker
module Rng = Dlink_util.Rng
module Skip = Dlink_pipeline.Skip
module Kernel = Dlink_pipeline.Kernel
module Workload = Dlink_core.Workload

type divergence = {
  request : int;
  site : Addr.t;
  arch_target : Addr.t;
  ref_dest : Addr.t;
  dut_dest : Addr.t;
  mis_skip : bool;
}

type report = {
  requests : int;
  mis_skips : int;
  lost_skips : int;
  unclassified : int;
  quarantine_entries : int;
  skips : int;
  faults_injected : int;
  cooldown_requests : int;
  cooldown_mis_skips : int;
  cooldown_skips : int;
  counters : Counters.t;
  divergences : divergence list;
}

let max_recorded_divergences = 32

(* One projected control-flow record: a library call (a direct call whose
   architectural target is a PLT entry) and the destination it actually
   reached — for a skipped call the redirect target, otherwise the PC of
   the first instruction retired outside any PLT and outside the dynamic
   linker (i.e. past trampoline and resolver, wherever they went). *)
type record = {
  r_site : Addr.t;
  r_tramp : Addr.t;
  r_dest : Addr.t;
  r_skipped : bool;
}

type collector = {
  mutable records : record list; (* newest first *)
  mutable window : (Addr.t * Addr.t) option; (* (site, tramp) awaiting dest *)
}

let make_collector () = { records = []; window = None }

let collector_reset c =
  c.records <- [];
  c.window <- None

let collector_on_retire ~is_plt_entry ~in_ld_so c (ev : Event.t) =
  (match c.window with
  | Some (site, tramp) when (not ev.Event.in_plt) && not (in_ld_so ev.Event.pc)
    ->
      c.records <-
        { r_site = site; r_tramp = tramp; r_dest = ev.Event.pc; r_skipped = false }
        :: c.records;
      c.window <- None
  | _ -> ());
  match ev.Event.branch with
  | Some (Event.Call_direct { target; arch_target })
    when is_plt_entry arch_target ->
      if target <> arch_target then
        c.records <-
          {
            r_site = ev.Event.pc;
            r_tramp = arch_target;
            r_dest = target;
            r_skipped = true;
          }
          :: c.records
      else c.window <- Some (ev.Event.pc, arch_target)
  | _ -> ()

let collector_records c = List.rev c.records

(* Walk the two projected streams in lockstep and classify each pairwise
   difference; shared by the static oracle below and the churn oracle.
   Returns whether the DUT's architectural state diverged (tainted) and
   must be resynchronised onto the reference. *)
let diff_request ~skip ~(counters : Counters.t) ~ever_skipped ~on_unclassified
    ~on_divergence ~request rrecs drecs =
  let tainted = ref false in
  let rec go rs ds =
    if !tainted then ()
    else
      match (rs, ds) with
      | [], [] -> ()
      | rr :: rs', dr :: ds' ->
          if rr.r_tramp <> dr.r_tramp then begin
            on_unclassified ();
            tainted := true;
            on_divergence
              {
                request;
                site = dr.r_site;
                arch_target = dr.r_tramp;
                ref_dest = rr.r_dest;
                dut_dest = dr.r_dest;
                mis_skip = false;
              }
          end
          else if rr.r_dest = dr.r_dest then begin
            if dr.r_skipped then Hashtbl.replace ever_skipped dr.r_tramp ()
            else if Hashtbl.mem ever_skipped dr.r_tramp then
              counters.Counters.lost_skips <- counters.Counters.lost_skips + 1;
            go rs' ds'
          end
          else begin
            tainted := true;
            if dr.r_skipped then begin
              (* Stale target retired: the correctness violation. *)
              Skip.report_mis_skip skip ~tramp:dr.r_tramp;
              on_divergence
                {
                  request;
                  site = dr.r_site;
                  arch_target = dr.r_tramp;
                  ref_dest = rr.r_dest;
                  dut_dest = dr.r_dest;
                  mis_skip = true;
                }
            end
            else begin
              on_unclassified ();
              on_divergence
                {
                  request;
                  site = dr.r_site;
                  arch_target = dr.r_tramp;
                  ref_dest = rr.r_dest;
                  dut_dest = dr.r_dest;
                  mis_skip = false;
                }
            end
          end
      | _, _ ->
          (* Stream lengths differ with no classified cause. *)
          on_unclassified ();
          tainted := true
  in
  go rrecs drecs;
  !tainted

(* Rebinding targets for Got_rewrite: every linkmap-defined function
   outside the dynamic linker, in a deterministic order. *)
let rewrite_pool linked =
  let space = linked.Loader.space in
  let addrs =
    List.filter_map
      (fun sym ->
        match Linkmap.lookup_addr linked.Loader.linkmap sym with
        | None -> None
        | Some a -> (
            match Space.image_at space a with
            | Some img when img.Image.name <> Loader.ld_so_name -> Some a
            | _ -> None))
      (Linkmap.symbols linked.Loader.linkmap)
  in
  let arr = Array.of_list (List.sort_uniq compare addrs) in
  arr

let run ?(ucfg = Config.xeon_e5450) ?skip_cfg ?plan ?requests ?(cooldown = 0)
    (w : Workload.t) =
  let plan = Option.value plan ~default:(Plan.empty 0) in
  let requests = Option.value requests ~default:w.Workload.default_requests in
  let opts =
    {
      Loader.default_options with
      mode = Dlink_linker.Mode.Lazy_binding;
      func_align = w.Workload.func_align;
    }
  in
  let linked = Loader.load_exn ~opts w.Workload.objs in
  let is_plt_entry = Loader.is_plt_entry linked in
  let ld_so =
    match Space.image_by_name linked.Loader.space Loader.ld_so_name with
    | Some img -> img
    | None -> invalid_arg "Oracle.run: no dynamic-linker image"
  in
  let in_ld_so pc = Image.contains ld_so pc in

  (* Reference machine: pure architectural interpreter, no skip hardware. *)
  let ref_col = make_collector () in
  let ref_hooks =
    {
      Process.on_fetch_call = (fun ~pc:_ ~arch_target -> arch_target);
      on_retire = (fun ev -> collector_on_retire ~is_plt_entry ~in_ld_so ref_col ev);
    }
  in
  let ref_p = Process.create ~hooks:ref_hooks linked in

  (* Device under test: the Enhanced pipeline — the same kernel every
     other execution path drives, with the oracle's projected control-flow
     collector attached as the kernel's boxed-event tap. *)
  let kernel = Kernel.create ~ucfg ?skip_cfg ~with_skip:true () in
  let counters = Kernel.counters kernel in
  let skip = Option.get (Kernel.skip kernel) in
  let dut_col = make_collector () in
  Kernel.set_tap kernel
    (Some (fun ev -> collector_on_retire ~is_plt_entry ~in_ld_so dut_col ev));
  let dut_hooks =
    Kernel.process_hooks kernel ~is_plt_entry ~in_got:(Loader.in_any_got linked)
  in
  let dut_p = Process.create ~hooks:dut_hooks linked in
  Kernel.set_read_got kernel (fun slot ->
      Memory.read (Process.memory dut_p) slot);

  (* Got_rewrite: rebind the GOT slot behind a live ABTB entry in BOTH
     memories, bypassing both retire streams — the unguarded rebinding
     store the mechanism cannot observe. *)
  let pool = rewrite_pool linked in
  let rewrite rng =
    let live = ref [] in
    Abtb.iter (fun _tramp e -> live := e :: !live) (Skip.abtb skip);
    let live = Array.of_list (List.rev !live) in
    if Array.length live = 0 || Array.length pool < 2 then false
    else begin
      let e = live.(Rng.int rng (Array.length live)) in
      let cands = Array.to_list pool |> List.filter (fun a -> a <> e.Abtb.func) in
      match cands with
      | [] -> false
      | _ ->
          let target = List.nth cands (Rng.int rng (List.length cands)) in
          Memory.write (Process.memory ref_p) e.Abtb.got_slot target;
          Memory.write (Process.memory dut_p) e.Abtb.got_slot target;
          true
    end
  in
  let inject = Inject.create ~rewrite ~skip ~counters ~plan () in

  let unclassified = ref 0 in
  let divergences = ref [] in
  let n_div = ref 0 in
  let ever_skipped = Hashtbl.create 64 in
  let record_div d =
    if !n_div < max_recorded_divergences then begin
      divergences := d :: !divergences;
      incr n_div
    end
  in

  let run_request ~with_faults r =
    if with_faults then Inject.on_request inject r;
    let req = w.Workload.gen_request r in
    let addr =
      match
        Loader.func_addr linked ~mname:req.Workload.mname
          ~fname:req.Workload.fname
      with
      | Some a -> a
      | None ->
          invalid_arg
            (Printf.sprintf "Oracle.run: %s.%s not found" req.Workload.mname
               req.Workload.fname)
    in
    collector_reset ref_col;
    collector_reset dut_col;
    Process.call ref_p addr;
    let crashed =
      try
        Process.call dut_p addr;
        false
      with Process.Fault _ | Skip.Misspeculation _ -> true
    in
    let tainted =
      diff_request ~skip ~counters ~ever_skipped
        ~on_unclassified:(fun () -> incr unclassified)
        ~on_divergence:record_div ~request:r (collector_records ref_col)
        (collector_records dut_col)
    in
    if crashed then incr unclassified;
    if tainted || crashed then
      (* The DUT's architectural state genuinely diverged; fold it back
         onto the reference so the streams re-converge next request. *)
      Process.resync_arch dut_p ~from_:ref_p
  in

  for r = 0 to requests - 1 do
    run_request ~with_faults:true r
  done;
  let snap = Counters.copy counters in
  Inject.detach inject;
  for r = requests to requests + cooldown - 1 do
    run_request ~with_faults:false r
  done;
  {
    requests;
    mis_skips = counters.Counters.mis_skips;
    lost_skips = counters.Counters.lost_skips;
    unclassified = !unclassified;
    quarantine_entries = counters.Counters.quarantine_entries;
    skips = counters.Counters.tramp_skips;
    faults_injected = counters.Counters.fault_injected;
    cooldown_requests = cooldown;
    cooldown_mis_skips = counters.Counters.mis_skips - snap.Counters.mis_skips;
    cooldown_skips = counters.Counters.tramp_skips - snap.Counters.tramp_skips;
    counters = Counters.copy counters;
    divergences = List.rev !divergences;
  }
