(** Fault plans: deterministic, serializable schedules of injected faults.

    A plan is a seed plus a list of (request index, action) events.  The
    same plan always produces the same injected behaviour — the textual
    form printed by the fuzzer is a complete reproducer.

    The fault vocabulary covers every way the skip mechanism's state can
    go wrong relative to the architectural GOT:

    - [Bloom_flip]: one bit of the Bloom field is forced to zero — an SRAM
      bit flip that can re-introduce false negatives.
    - [Suppress_clear n]: the next [n] filter-driven ABTB clears (local or
      remote) are silently lost.
    - [Spurious_clear]: the ABTB and filter are cleared for no reason —
      performance-only by construction.
    - [Got_rewrite]: a GOT slot backing a live ABTB entry is rebound
      directly in memory, bypassing the retire stream — the unguarded
      rebinding the paper's filter exists to catch.  The only action that
      can produce true mis-skips.
    - [Asid_reuse]: the skip unit's ASID is toggled without a flush,
      exercising tag reuse/rollover paths.
    - [Drop_msgs n] / [Delay_msgs n]: the next [n] coherence-bus messages
      lose their delivery attempt / are parked until the next drain.
      Under the acked protocol both are recoverable: dropped messages are
      retried with backoff (and time the destination cores out into
      degradation if the drops persist past the retry limit), delayed
      ones arrive late but in publication order.
    - [Reorder_msgs n]: the next [n] messages are parked and replayed
      most-recent-first at the next drain — the explicit out-of-order
      delivery fault (the old implicit drain wart, now opt-in).
    - [Stale_unload n]: the next [n] dlcloses unmap with their
      invalidation stores architecturally applied but every resulting
      filter-driven ABTB clear lost — the ABTB keeps entries for a module
      that is gone (and whose range may be reused).  Churn runs only.
    - [Unload_inflight]: the next dlclose defers its GOT invalidation
      past the unmap — the unload-during-use window where surviving GOTs
      still point into a dead range.  Churn runs only. *)

type action =
  | Bloom_flip
  | Suppress_clear of int
  | Spurious_clear
  | Got_rewrite
  | Asid_reuse
  | Drop_msgs of int
  | Delay_msgs of int
  | Reorder_msgs of int
  | Stale_unload of int
  | Unload_inflight

type event = { at : int; action : action }
(** [at] is the request index the action fires before (0-based). *)

type t = { seed : int; events : event list }
(** [events] sorted by [at] (stable). *)

val empty : int -> t

val generate :
  ?coherence:bool -> ?churn:bool -> seed:int -> budget:int -> faults:int -> unit -> t
(** [faults] random events over requests [\[0, budget)], drawn from the
    seed.  [coherence] (default [false]) admits [Drop_msgs]/[Delay_msgs],
    which only have an effect when a bus is attached; [churn] (default
    [false]) admits [Stale_unload]/[Unload_inflight], which only have an
    effect when a churn driver consumes them. *)

val actions_at : t -> int -> action list
(** Actions scheduled at one request index, in plan order. *)

val has_rewrite : t -> bool
(** Whether any [Got_rewrite] is scheduled — i.e. whether true mis-skips
    are even possible under this plan. *)

val has_unload_hazard : t -> bool
(** Whether any [Stale_unload]/[Unload_inflight] is scheduled — the churn
    actions that can surface stale bindings. *)

val action_to_string : action -> string
val to_string : t -> string
(** ["seed=S;AT:ACTION;AT:ACTION*N;..."] — fully replayable. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. *)
