(** Differential correctness oracle for the trampoline-skip mechanism.

    Runs the identical request stream through two machines sharing one
    loaded image: a {e reference} with no skip hardware (every call takes
    its architectural trampoline path) and a {e device under test} with
    the full Enhanced pipeline (engine + ABTB/Bloom skip unit), optionally
    under an injected {!Plan.t}.

    Because every non-PLT retired instruction is a pure function of
    per-site occurrence counters (see {!Dlink_mach.Process}), the two
    runs' control-flow streams — projected to library calls and the first
    instruction retired outside any PLT and outside the dynamic linker —
    must be identical.  Each divergence is classified:

    - {e mis-skip}: the DUT skipped a trampoline and retired a stale
      target while the reference reached the current binding — a
      correctness violation.  The oracle reports it to the skip unit
      (eviction + quarantine) and resynchronises the DUT's architectural
      state so the streams re-converge.
    - {e lost skip}: the DUT executed a trampoline it had skipped before
      and still reached the same destination — performance-only.
    - anything else is {e unclassified} and counts as a property failure
      (it would mean the projection itself broke). *)

open Dlink_isa
open Dlink_uarch
module Skip = Dlink_pipeline.Skip
module Workload = Dlink_core.Workload

type divergence = {
  request : int;
  site : Addr.t;  (** call-site PC *)
  arch_target : Addr.t;  (** trampoline (PLT entry) address *)
  ref_dest : Addr.t;
  dut_dest : Addr.t;
  mis_skip : bool;  (** [false] = unclassified *)
}

type report = {
  requests : int;
  mis_skips : int;
  lost_skips : int;
  unclassified : int;
  quarantine_entries : int;
  skips : int;  (** DUT trampoline skips *)
  faults_injected : int;
  cooldown_requests : int;
  cooldown_mis_skips : int;
  cooldown_skips : int;
      (** skips retired during the fault-free cooldown phase — nonzero
          demonstrates recovery after quarantine *)
  counters : Counters.t;  (** full DUT counter set (fresh copy) *)
  divergences : divergence list;
      (** mis-skips and unclassified divergences, oldest first, capped *)
}

val run :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  ?plan:Plan.t ->
  ?requests:int ->
  ?cooldown:int ->
  Workload.t ->
  report
(** [requests] defaults to the workload's [default_requests]; [cooldown]
    (default 0) extra requests are executed after the plan's last event
    with injection quiesced.  Fully deterministic: equal arguments give a
    bit-identical report. *)

(** {2 Projection and classification machinery}

    Shared with the churn oracle ({!Churn_oracle}), which drives a
    different execution loop (dlopen/dlclose interleaved with calls) over
    the same record projection and divergence taxonomy. *)

type record = {
  r_site : Addr.t;  (** call-site PC *)
  r_tramp : Addr.t;  (** architectural target: the PLT entry *)
  r_dest : Addr.t;  (** destination actually reached *)
  r_skipped : bool;
}
(** One projected library call: a direct call whose architectural target
    is a PLT entry, paired with the destination it actually reached — for
    a skipped call the redirect target, otherwise the PC of the first
    instruction retired outside any PLT and outside the dynamic linker. *)

type collector

val make_collector : unit -> collector
val collector_reset : collector -> unit

val collector_records : collector -> record list
(** Oldest first. *)

val collector_on_retire :
  is_plt_entry:(Addr.t -> bool) ->
  in_ld_so:(Addr.t -> bool) ->
  collector ->
  Dlink_mach.Event.t ->
  unit

val diff_request :
  skip:Skip.t ->
  counters:Counters.t ->
  ever_skipped:(Addr.t, unit) Hashtbl.t ->
  on_unclassified:(unit -> unit) ->
  on_divergence:(divergence -> unit) ->
  request:int ->
  record list ->
  record list ->
  bool
(** [diff_request ... ref_records dut_records] classifies every pairwise
    difference (mis-skip via {!Skip.report_mis_skip}, lost skip onto
    [counters], otherwise [on_unclassified]) and returns whether the DUT's
    architectural state diverged and must be resynchronised. *)
