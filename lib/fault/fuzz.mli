(** Seeded randomized stress driver over the differential oracle.

    One trial = generate a {!Plan.t} from a seed, run the oracle for
    [budget] faulted requests plus a fault-free cooldown, then check the
    robustness properties:

    - a mis-skip may only occur under a plan containing [Got_rewrite]
      (the one fault that bypasses the retire stream);
    - every detected mis-skip must have entered quarantine;
    - no divergence may be unclassified;
    - the cooldown phase must be mis-skip-free (the quarantine fallback
      recovered) and, when the faulted phase skipped at all, must skip
      again (service resumed).

    A failing trial is shrunk ddmin-style to a minimal event list that
    still fails; {!Plan.to_string} of the shrunk plan is a complete
    reproducer. *)

module Workload = Dlink_core.Workload
module Skip = Dlink_pipeline.Skip

type trial = {
  plan : Plan.t;
  report : Oracle.report;
  failures : string list;  (** empty = all properties hold *)
}

val check : plan:Plan.t -> Oracle.report -> string list
(** The property list above, evaluated on one report. *)

val trial :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  ?cooldown:int ->
  workload:Workload.t ->
  budget:int ->
  Plan.t ->
  trial
(** Run one plan.  [cooldown] defaults to [max 50 (budget / 4)]. *)

val run :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  ?cooldown:int ->
  ?coherence:bool ->
  workload:Workload.t ->
  seed:int ->
  budget:int ->
  faults:int ->
  unit ->
  trial
(** Generate a plan from [seed] and run it. *)

val shrink :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  ?cooldown:int ->
  workload:Workload.t ->
  budget:int ->
  trial ->
  trial
(** Given a failing trial, return a trial with a minimal sub-list of plan
    events that still fails (the input itself if already minimal or
    passing). *)
