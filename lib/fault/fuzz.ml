module Workload = Dlink_core.Workload
module Skip = Dlink_pipeline.Skip

type trial = {
  plan : Plan.t;
  report : Oracle.report;
  failures : string list;
}

let check ~plan (r : Oracle.report) =
  let fail cond msg acc = if cond then msg :: acc else acc in
  []
  |> fail
       ((not (Plan.has_rewrite plan)) && r.Oracle.mis_skips > 0)
       "mis-skip without an unguarded GOT rewrite in the plan"
  |> fail
       (r.Oracle.mis_skips > 0 && r.Oracle.quarantine_entries = 0)
       "mis-skip detected but no ABTB set was quarantined"
  |> fail (r.Oracle.unclassified > 0) "unclassified retire-stream divergence"
  |> fail
       (r.Oracle.cooldown_mis_skips > 0)
       "mis-skip during fault-free cooldown (no recovery)"
  |> fail
       (r.Oracle.cooldown_requests > 0 && r.Oracle.skips > 0
       && r.Oracle.cooldown_skips = 0)
       "skipping never resumed after quarantine"
  |> List.rev

let default_cooldown budget = max 50 (budget / 4)

let trial ?ucfg ?skip_cfg ?cooldown ~workload ~budget plan =
  let cooldown = Option.value cooldown ~default:(default_cooldown budget) in
  let report =
    Oracle.run ?ucfg ?skip_cfg ~plan ~requests:budget ~cooldown workload
  in
  { plan; report; failures = check ~plan report }

let run ?ucfg ?skip_cfg ?cooldown ?(coherence = false) ~workload ~seed ~budget
    ~faults () =
  let plan = Plan.generate ~coherence ~seed ~budget ~faults () in
  trial ?ucfg ?skip_cfg ?cooldown ~workload ~budget plan

(* ddmin-style event minimisation: repeatedly try dropping contiguous
   chunks (halving the chunk size) and keep any sub-plan that still
   fails, until no single event can be removed. *)
let shrink ?ucfg ?skip_cfg ?cooldown ~workload ~budget failing =
  if failing.failures = [] then failing
  else begin
    let retry events =
      let plan = { failing.plan with Plan.events } in
      trial ?ucfg ?skip_cfg ?cooldown ~workload ~budget plan
    in
    let best = ref failing in
    let continue = ref true in
    while !continue do
      continue := false;
      let events = Array.of_list !best.plan.Plan.events in
      let n = Array.length events in
      let chunk = ref (max 1 (n / 2)) in
      let improved = ref false in
      while (not !improved) && !chunk >= 1 do
        let i = ref 0 in
        while (not !improved) && !i < n do
          let keep =
            Array.to_list events
            |> List.filteri (fun j _ -> j < !i || j >= !i + !chunk)
          in
          if List.length keep < n then begin
            let t = retry keep in
            if t.failures <> [] then begin
              best := t;
              improved := true;
              continue := true
            end
          end;
          i := !i + !chunk
        done;
        if not !improved then chunk := !chunk / 2
      done
    done;
    !best
  end
