open Dlink_isa

type branch =
  | Call_direct of { target : Addr.t; arch_target : Addr.t }
  | Call_indirect of { target : Addr.t; slot : Addr.t }
  | Jump_direct of { target : Addr.t }
  | Jump_indirect of { target : Addr.t; slot : Addr.t }
  | Jump_resolver of { target : Addr.t }
  | Cond_branch of { target : Addr.t; taken : bool }
  | Return of { target : Addr.t }

type t = {
  pc : Addr.t;
  size : int;
  in_plt : bool;
  load : Addr.t option;
  load2 : Addr.t option;
  store : Addr.t option;
  branch : branch option;
}

(* Packed branch kinds: the allocation-free mirror of [branch] used by the
   trace subsystem and the engine's packed retire path.  Three bits. *)
module Kind = struct
  let none = 0
  let call_direct = 1
  let call_indirect = 2
  let jump_direct = 3
  let jump_indirect = 4
  let jump_resolver = 5
  let cond_branch = 6
  let return = 7
end

(* [kind, target, aux, taken] quadruple of a branch option.  [aux] carries
   the second address when the variant has one (the architectural target of
   a direct call, the GOT slot of an indirect branch) and [Addr.none]
   otherwise. *)
let pack_branch = function
  | None -> (Kind.none, Addr.none, Addr.none, false)
  | Some (Call_direct { target; arch_target }) ->
      (Kind.call_direct, target, arch_target, false)
  | Some (Call_indirect { target; slot }) -> (Kind.call_indirect, target, slot, false)
  | Some (Jump_direct { target }) -> (Kind.jump_direct, target, Addr.none, false)
  | Some (Jump_indirect { target; slot }) -> (Kind.jump_indirect, target, slot, false)
  | Some (Jump_resolver { target }) -> (Kind.jump_resolver, target, Addr.none, false)
  | Some (Cond_branch { target; taken }) -> (Kind.cond_branch, target, Addr.none, taken)
  | Some (Return { target }) -> (Kind.return, target, Addr.none, false)

let unpack_branch ~kind ~target ~aux ~taken =
  if kind = Kind.none then None
  else if kind = Kind.call_direct then
    Some (Call_direct { target; arch_target = (if aux = Addr.none then target else aux) })
  else if kind = Kind.call_indirect then Some (Call_indirect { target; slot = aux })
  else if kind = Kind.jump_direct then Some (Jump_direct { target })
  else if kind = Kind.jump_indirect then Some (Jump_indirect { target; slot = aux })
  else if kind = Kind.jump_resolver then Some (Jump_resolver { target })
  else if kind = Kind.cond_branch then Some (Cond_branch { target; taken })
  else if kind = Kind.return then Some (Return { target })
  else invalid_arg (Printf.sprintf "Event.unpack_branch: bad kind %d" kind)

let branch_target = function
  | Call_direct { target; _ }
  | Call_indirect { target; _ }
  | Jump_direct { target }
  | Jump_indirect { target; _ }
  | Jump_resolver { target }
  | Cond_branch { target; _ }
  | Return { target } ->
      target

let is_indirect = function
  | Call_indirect _ | Jump_indirect _ | Jump_resolver _ | Return _ -> true
  | Call_direct _ | Jump_direct _ | Cond_branch _ -> false

let pp ppf t =
  Format.fprintf ppf "@[pc=%a size=%d%s%s@]" Addr.pp t.pc t.size
    (if t.in_plt then " [plt]" else "")
    (match t.branch with
    | None -> ""
    | Some b -> Printf.sprintf " -> 0x%x" (branch_target b))
