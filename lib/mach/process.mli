(** The architectural interpreter.

    Executes loaded code instruction by instruction, emitting one
    {!Event.t} per retired instruction.  Two hooks connect the paper's
    hardware model:

    - [on_fetch_call] lets the front-end model redirect a direct call away
      from its architectural target — this is how a trampoline is skipped.
      Redirection must preserve architectural equivalence, which holds for
      PLT trampolines because they compute no architectural state.
    - [on_retire] receives the retire stream (microarchitecture accounting,
      ABTB population, profiling).

    All data-dependent behaviour (conditional branch directions, data access
    addresses and stored values) is a pure function of per-site occurrence
    counters, so the retire stream of non-PLT instructions is bit-identical
    across binding modes and skip configurations. *)

open Dlink_isa

exception Fault of string
(** Raised on invalid fetches, unresolved symbols, or fuel exhaustion. *)

type hooks = {
  on_fetch_call : pc:Addr.t -> arch_target:Addr.t -> Addr.t;
  on_retire : Event.t -> unit;
}

val default_hooks : hooks
(** No redirection, no observers. *)

type t

val create : ?hooks:hooks -> Dlink_linker.Loader.t -> t
(** Fresh process: initial memory from the loader, SP at the stack top. *)

val linked : t -> Dlink_linker.Loader.t
val memory : t -> Memory.t
val pc : t -> Addr.t
val sp : t -> Addr.t
val retired : t -> int
(** Total retired instructions so far. *)

val step : t -> unit
(** Execute one instruction.  Raises {!Fault} on an invalid PC. *)

val call : t -> ?fuel:int -> Addr.t -> unit
(** [call t addr] runs the function at [addr] to completion (a sentinel
    return address marks the end).  [fuel] bounds the instruction count
    (default 50 million); exceeding it raises {!Fault}. *)

val arch_fingerprint : t -> int
(** Hash of memory contents and SP — equal fingerprints after equal call
    sequences demonstrate architectural equivalence between modes. *)

val resync_arch : t -> from_:t -> unit
(** Overwrite this process's architectural state (memory, SP, PC, per-site
    occurrence counters) with [from_]'s.  Both must run the same loaded
    image.  The differential oracle uses this to re-converge a run after a
    detected mis-skip corrupted its architectural state. *)

type snap
(** Frozen copy of the architectural state: memory image, PC, SP, retired
    count, per-site occurrence counters.  The loader is shared by
    reference (immutable during serving — the resolver rebinds only
    through memory writes). *)

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Overwrite [t]'s architectural state with the snapshot.  The target
    must run the same loaded image.  A snapshot may be restored into many
    processes without aliasing. *)
