(** Retire-stream events: one per architecturally executed instruction.

    The microarchitecture model, the trampoline-skip controller, and the
    profiler all consume this stream, mirroring the paper's design where the
    proposed hardware observes instructions at the retire stage. *)

open Dlink_isa

type branch =
  | Call_direct of { target : Addr.t; arch_target : Addr.t }
      (** [target] is where control actually went; [arch_target] is the
          call instruction's encoded destination.  They differ exactly when
          the trampoline-skip mechanism redirected the fetch. *)
  | Call_indirect of { target : Addr.t; slot : Addr.t }
  | Jump_direct of { target : Addr.t }
  | Jump_indirect of { target : Addr.t; slot : Addr.t }
      (** a PLT trampoline retires as this, with [slot] = its GOT entry *)
  | Jump_resolver of { target : Addr.t }
      (** the [Resolve] primitive's final indirect jump *)
  | Cond_branch of { target : Addr.t; taken : bool }
  | Return of { target : Addr.t }

type t = {
  pc : Addr.t;
  size : int;
  in_plt : bool;  (** instruction lies in some module's PLT section *)
  load : Addr.t option;
  load2 : Addr.t option;
  store : Addr.t option;
  branch : branch option;
}

val branch_target : branch -> Addr.t
val is_indirect : branch -> bool

(** Packed branch kinds (three bits), the allocation-free mirror of
    {!branch} shared by the engine's packed retire path and the trace
    subsystem. *)
module Kind : sig
  val none : int
  val call_direct : int
  val call_indirect : int
  val jump_direct : int
  val jump_indirect : int
  val jump_resolver : int
  val cond_branch : int
  val return : int
end

val pack_branch : branch option -> int * Addr.t * Addr.t * bool
(** [(kind, target, aux, taken)].  [aux] is the architectural target of a
    direct call or the GOT slot of an indirect branch, {!Addr.none}
    otherwise. *)

val unpack_branch :
  kind:int -> target:Addr.t -> aux:Addr.t -> taken:bool -> branch option
(** Inverse of {!pack_branch}; [aux = Addr.none] on a direct call means
    "unredirected" ([arch_target = target]).  Raises [Invalid_argument] on
    an out-of-range kind. *)

val pp : Format.formatter -> t -> unit
