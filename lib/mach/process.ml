open Dlink_isa
module Loader = Dlink_linker.Loader
module Space = Dlink_linker.Space
module Image = Dlink_linker.Image
module Linkmap = Dlink_linker.Linkmap
module Site_hash = Dlink_util.Site_hash

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

type hooks = {
  on_fetch_call : pc:Addr.t -> arch_target:Addr.t -> Addr.t;
  on_retire : Event.t -> unit;
}

let default_hooks =
  { on_fetch_call = (fun ~pc:_ ~arch_target -> arch_target); on_retire = ignore }

type t = {
  linked : Loader.t;
  mem : Memory.t;
  mutable pc : Addr.t;
  mutable sp : Addr.t;
  mutable retired : int;
  mutable site_counts : int array;
  hooks : hooks;
}

(* Sentinel return address used by [call]; never a mapped code address. *)
let sentinel = 0x10

let create ?(hooks = default_hooks) linked =
  let mem = Memory.create () in
  List.iter (fun (a, v) -> Memory.write mem a v) linked.Loader.init_mem;
  {
    linked;
    mem;
    pc = sentinel;
    sp = linked.Loader.stack_top;
    retired = 0;
    site_counts = Array.make (max 1 linked.Loader.n_sites) 0;
    hooks;
  }

let linked t = t.linked
let memory t = t.mem
let pc t = t.pc
let sp t = t.sp
let retired t = t.retired

(* Runtime-mapped modules (dlopen) allocate site ids past the load-time
   count, so the per-site counters grow on demand. *)
let ensure_site t site =
  let n = Array.length t.site_counts in
  if site >= n then begin
    let grown = Array.make (max (site + 1) (2 * n)) 0 in
    Array.blit t.site_counts 0 grown 0 n;
    t.site_counts <- grown
  end

let bump_site t site =
  ensure_site t site;
  let c = t.site_counts.(site) in
  t.site_counts.(site) <- c + 1;
  c

(* Data accesses follow an 80/20 locality pattern: most touches land in a
   small hot prefix of the region, the rest are spread uniformly.  Uniform
   addressing would thrash the D-cache far beyond anything real software
   does; hot/cold split reproduces realistic hit rates while still
   exercising the region's full page footprint. *)
let hot_words_cap = 512 (* 4 KiB hot prefix *)
let hot_permille = 800

let ref_addr t = function
  | Insn.Fixed a -> a
  | Insn.Region { site; base; size } ->
      let words = size / 8 in
      let count = bump_site t site in
      let h = Site_hash.mix2 site count in
      let hot = h land 1023 < hot_permille * 1024 / 1000 in
      let bound = if hot then min words hot_words_cap else words in
      base + (8 * (h lsr 10 mod bound))

let stored_value = function
  | Insn.Fixed a -> Site_hash.mix2 a 0
  | Insn.Region { site; base = _; size = _ } -> Site_hash.mix2 site 1

let retire t ev =
  t.retired <- t.retired + 1;
  t.hooks.on_retire ev

let step t =
  let img, insn =
    match Space.fetch t.linked.Loader.space t.pc with
    | Some pair -> pair
    | None -> fault "invalid fetch at %s" (Addr.to_hex t.pc)
  in
  let size = Insn.byte_size insn in
  let in_plt = Image.in_plt img t.pc in
  let pc = t.pc in
  let event ?load ?load2 ?store ?branch () =
    { Event.pc; size; in_plt; load; load2; store; branch }
  in
  match insn with
  | Insn.Alu ->
      t.pc <- pc + size;
      retire t (event ())
  | Insn.Load mref ->
      let a = ref_addr t mref in
      ignore (Memory.read t.mem a);
      t.pc <- pc + size;
      retire t (event ~load:a ())
  | Insn.Store mref ->
      let a = ref_addr t mref in
      Memory.write t.mem a (stored_value mref);
      t.pc <- pc + size;
      retire t (event ~store:a ())
  | Insn.Call target ->
      let actual = t.hooks.on_fetch_call ~pc ~arch_target:target in
      t.sp <- t.sp - 8;
      Memory.write t.mem t.sp (pc + size);
      t.pc <- actual;
      retire t
        (event ~store:t.sp
           ~branch:(Event.Call_direct { target = actual; arch_target = target })
           ())
  | Insn.Call_mem slot ->
      let target = Memory.read t.mem slot in
      if target = 0 then fault "indirect call through null slot %s" (Addr.to_hex slot);
      t.sp <- t.sp - 8;
      Memory.write t.mem t.sp (pc + size);
      t.pc <- target;
      retire t
        (event ~load:slot ~store:t.sp
           ~branch:(Event.Call_indirect { target; slot })
           ())
  | Insn.Jmp target ->
      t.pc <- target;
      retire t (event ~branch:(Event.Jump_direct { target }) ())
  | Insn.Jmp_mem slot ->
      let target = Memory.read t.mem slot in
      if target = 0 then fault "indirect jump through null slot %s" (Addr.to_hex slot);
      t.pc <- target;
      retire t (event ~load:slot ~branch:(Event.Jump_indirect { target; slot }) ())
  | Insn.Cond { target; site; p_taken } ->
      let count = bump_site t site in
      let taken = Site_hash.bernoulli ~site ~count ~p:p_taken in
      t.pc <- (if taken then target else pc + size);
      retire t (event ~branch:(Event.Cond_branch { target; taken }) ())
  | Insn.Push_info i ->
      t.sp <- t.sp - 8;
      Memory.write t.mem t.sp i;
      t.pc <- pc + size;
      retire t (event ~store:t.sp ())
  | Insn.Resolve ->
      (* Stack (top first): module id pushed by PLT0, then the relocation
         index pushed by the PLT entry.  Both are consumed, the symbol is
         bound, the GOT slot written, and control jumps to the target. *)
      let module_id = Memory.read t.mem t.sp in
      let reloc = Memory.read t.mem (t.sp + 8) in
      let caller =
        match Space.image_by_id t.linked.Loader.space module_id with
        | Some img -> img
        | None -> fault "resolver: unknown module id %d" module_id
      in
      if reloc < 0 || reloc >= Array.length caller.Image.reloc_syms then
        fault "resolver: bad relocation index %d in %s" reloc caller.Image.name;
      let sym = caller.Image.reloc_syms.(reloc) in
      let target =
        match Linkmap.lookup_addr t.linked.Loader.linkmap sym with
        | Some a -> a
        | None -> fault "resolver: undefined symbol %s" sym
      in
      let slot =
        match Image.got_slot caller sym with
        | Some s -> s
        | None -> fault "resolver: no GOT slot for %s in %s" sym caller.Image.name
      in
      Memory.write t.mem slot target;
      let old_sp = t.sp in
      t.sp <- t.sp + 16;
      t.pc <- target;
      retire t
        (event ~load:old_sp ~load2:(old_sp + 8) ~store:slot
           ~branch:(Event.Jump_resolver { target })
           ())
  | Insn.Ret ->
      let target = Memory.read t.mem t.sp in
      let old_sp = t.sp in
      t.sp <- t.sp + 8;
      t.pc <- target;
      retire t (event ~load:old_sp ~branch:(Event.Return { target }) ())
  | Insn.Halt ->
      t.pc <- sentinel;
      retire t (event ())

let call t ?(fuel = 50_000_000) addr =
  t.sp <- t.sp - 8;
  Memory.write t.mem t.sp sentinel;
  t.pc <- addr;
  let remaining = ref fuel in
  while t.pc <> sentinel do
    if !remaining <= 0 then fault "fuel exhausted at %s" (Addr.to_hex t.pc);
    decr remaining;
    step t
  done

let arch_fingerprint t = Site_hash.mix2 (Memory.fingerprint t.mem) t.sp

(* Snapshot/restore of the full architectural state — memory image, PC,
   SP, retirement count, per-site occurrence counters.  The loader/space
   is shared by reference: it is immutable during serving (the resolver
   rebinds symbols by writing GOT slots through [Memory], never by
   touching the loader), so a restored process re-executes identically. *)

type snap = {
  s_mem : Memory.t;
  s_pc : Addr.t;
  s_sp : Addr.t;
  s_retired : int;
  s_site_counts : int array;
}

let snapshot t =
  {
    s_mem = Memory.copy t.mem;
    s_pc = t.pc;
    s_sp = t.sp;
    s_retired = t.retired;
    s_site_counts = Array.copy t.site_counts;
  }

let restore t s =
  Memory.blit ~src:s.s_mem ~dst:t.mem;
  t.pc <- s.s_pc;
  t.sp <- s.s_sp;
  t.retired <- s.s_retired;
  let n = Array.length s.s_site_counts in
  ensure_site t (n - 1);
  Array.blit s.s_site_counts 0 t.site_counts 0 n;
  Array.fill t.site_counts n (Array.length t.site_counts - n) 0

let resync_arch t ~from_ =
  Memory.blit ~src:from_.mem ~dst:t.mem;
  t.sp <- from_.sp;
  t.pc <- from_.pc;
  ensure_site t (Array.length from_.site_counts - 1);
  let n = Array.length from_.site_counts in
  Array.blit from_.site_counts 0 t.site_counts 0 n;
  Array.fill t.site_counts n (Array.length t.site_counts - n) 0
