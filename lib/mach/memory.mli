(** Sparse 64-bit word memory.

    The simulator only stores architecturally meaningful data: GOT slots,
    stack words, and store results.  Unwritten locations read as zero.
    All accesses are 8-byte aligned. *)

open Dlink_isa

type t

val create : unit -> t
val read : t -> Addr.t -> int
val write : t -> Addr.t -> int -> unit
val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] in place with a copy of [src]'s contents.  Used to
    resynchronise a diverged run onto its reference twin without breaking
    aliases to [dst]. *)

val fingerprint : t -> int
(** Order-independent hash of the full memory contents (used to compare
    architectural state between base and enhanced runs). *)

val cell_count : t -> int
