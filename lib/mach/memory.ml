module Site_hash = Dlink_util.Site_hash

type t = (int, int) Hashtbl.t

let word_index a =
  assert (a land 7 = 0);
  a lsr 3

let create () : t = Hashtbl.create 4096
let read t a = Option.value ~default:0 (Hashtbl.find_opt t (word_index a))

let write t a v =
  let i = word_index a in
  if v = 0 then Hashtbl.remove t i else Hashtbl.replace t i v

let copy = Hashtbl.copy

let blit ~src ~dst =
  Hashtbl.reset dst;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

let fingerprint t =
  Hashtbl.fold (fun k v acc -> acc lxor Site_hash.mix2 k v) t 0

let cell_count = Hashtbl.length
