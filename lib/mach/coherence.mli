(** Cross-core GOT-store coherence bus with acknowledged delivery.

    The paper's mechanism must observe GOT writes made by {e other} cores
    (§3.2: hardware snoops invalidations of guarded lines).  This module is
    that snoop channel in miniature: when a core retires a store into a GOT
    region, the scheduler publishes the physical address here and every
    other subscribed core's skip unit gets a chance to test it against its
    Bloom filter and clear.

    Delivery is synchronous and in ascending core-id order, keeping
    multi-core runs deterministic.  Unlike the original fire-and-forget
    bus, every message is tracked until it is {e resolved}: delivered to
    (and thereby acknowledged by) every destination core, discarded as
    stale by the epoch guard, or abandoned after a bounded number of
    retries — in which case the destinations are told through the timeout
    callback so they can degrade gracefully instead of running on stale
    state.  [Drop] and [Delay] fault fates are therefore recoverable
    events, not silent divergence. *)

open Dlink_isa

type t

val default_retry_limit : int
(** 3: a message survives up to three consecutive [Drop] fates before
    timing out. *)

val create : ?retry_limit:int -> unit -> t
(** Raises [Invalid_argument] if [retry_limit] is negative.
    [retry_limit = 0] times a message out on its second [Drop]. *)

val subscribe : t -> core:int -> (src:int -> Addr.t -> unit) -> unit
(** Register a core's invalidation handler.  Raises [Invalid_argument] if
    the core id is already subscribed. *)

val publish : ?stamp:int -> t -> src:int -> Addr.t -> unit
(** Broadcast a retired GOT store to every subscriber except [src].
    [stamp] (default 0) carries the generation of the stored-to address's
    owning module mapping; the epoch guard installed with {!set_validate}
    compares it against the live generation at delivery time and discards
    the message if they differ — the ABA protection for first-fit address
    reuse. *)

type fate = Deliver | Drop | Delay | Reorder
(** What the fault hook decides for one published message.  [Deliver] is
    normal operation.  [Drop] loses this delivery attempt: the message is
    parked and retried at subsequent {!drain}s with exponential backoff,
    re-consulting the fault hook each time, until it gets through or
    exceeds the retry limit and times out.  [Delay] parks it until the
    next {!drain} (drains replay in publication order, so a delayed
    message arrives late but in order).  [Reorder] parks it flagged for
    most-recent-first replay — the explicit out-of-order fault, counted
    in {!reorders}. *)

val set_fault : t -> (src:int -> Addr.t -> fate) option -> unit
(** Install / remove a fault hook consulted on every publish and on every
    retry of a parked message.  [None] (the default) means every message
    is delivered.  This exists for the fault-injection harness only. *)

val set_validate : t -> (src:int -> stamp:int -> Addr.t -> bool) option -> unit
(** The epoch guard: consulted at delivery time with the message's source
    core and stamp; returning [false] discards the message (counted in
    {!stale_discards}) instead of applying it.  [None] (the default)
    applies every message. *)

val set_on_timeout : t -> (core:int -> src:int -> Addr.t -> unit) option -> unit
(** Called once per destination core when a message exhausts its retries
    (or a {!fence} is forced): that core never saw the invalidation and
    must degrade — flush and fall back to the architectural path — rather
    than keep trusting possibly-stale state. *)

val drain : t -> int
(** Advance the bus one tick: flush the delivery batch (batched mode),
    then deliver every parked message that is due, in publication order
    ([Reorder]-fated messages after the in-order ones, most-recent-first),
    retrying dropped ones, and return how many parked messages were
    delivered (batched deliveries are not counted — they were never
    parked).  The scheduler calls this at quantum boundaries, bounding
    how long an in-flight invalidation can stay unresolved. *)

val set_batched : t -> bool -> unit
(** Batched mode: [Deliver]-fated publishes queue instead of applying
    their cross-core invalidations inside the publisher's retire loop;
    the queue is applied as one generation-ordered block at the next
    {!drain}, {!fence} registration, or {!flush_batch}.  Observably
    identical under a cooperative schedule — where no other core executes
    between a publish and the boundary drain — which is why the
    multi-core topology enables it and the free-running soak harness does
    not.  Turning batching off flushes anything still queued. *)

val flush_batch : t -> int
(** Apply the batched deliveries now, in publication order, returning how
    many were delivered (excluding stale discards).  No-op outside
    batched mode. *)

val fence : t -> complete:(unit -> unit) -> unit -> unit
(** [fence t ~complete] registers a barrier at the current publication
    point: [complete] fires exactly once, as soon as every message
    published before the fence has been resolved (delivered, discarded or
    timed out) — possibly immediately, from inside the call.  The
    returned closure {e forces} the fence: everything still in flight
    before it is timed out (destinations notified via the timeout
    callback) and [complete] fires now.  Idempotent.  [Dynload] uses this
    as the unmap grace period: the freed range is not reusable until the
    fence completes. *)

val published : t -> int
(** Stores broadcast so far. *)

val delivered : t -> int
(** Per-remote-core deliveries so far. *)

val acked : t -> int
(** Messages fully acknowledged by all destination cores.  Every published
    message ends up exactly one of: acked, timed out, stale-discarded, or
    still pending. *)

val dropped : t -> int
(** Delivery attempts lost to an injected [Drop] fate (counts retries). *)

val retries : t -> int
(** Re-delivery attempts made for parked dropped messages. *)

val reorders : t -> int
(** Messages delivered out of publication order under a [Reorder] fate. *)

val timeouts : t -> int
(** Messages abandoned after exhausting the retry limit or a forced
    fence. *)

val stale_discards : t -> int
(** Messages discarded by the epoch guard — invalidations that outlived
    their module mapping (the ABA hazard, caught). *)

val pending : t -> int
(** Unresolved messages: parked ones awaiting retry or delay release,
    plus batched deliveries not yet flushed. *)
