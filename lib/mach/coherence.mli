(** Cross-core GOT-store coherence bus.

    The paper's mechanism must observe GOT writes made by {e other} cores
    (§3.2: hardware snoops invalidations of guarded lines).  This module is
    that snoop channel in miniature: when a core retires a store into a GOT
    region, the scheduler publishes the physical address here and every
    other subscribed core's skip unit gets a chance to test it against its
    Bloom filter and clear.

    Delivery is synchronous and in ascending core-id order, keeping
    multi-core runs deterministic. *)

open Dlink_isa

type t

val create : unit -> t

val subscribe : t -> core:int -> (src:int -> Addr.t -> unit) -> unit
(** Register a core's invalidation handler.  Raises [Invalid_argument] if
    the core id is already subscribed. *)

val publish : t -> src:int -> Addr.t -> unit
(** Broadcast a retired GOT store to every subscriber except [src]. *)

type fate = Deliver | Drop | Delay
(** What the fault hook decides for one published message.  [Deliver] is
    normal operation; [Drop] loses the message forever; [Delay] parks it
    until the next {!drain} (and drains replay most-recent-first, so two
    delayed messages also arrive reordered). *)

val set_fault : t -> (src:int -> Addr.t -> fate) option -> unit
(** Install / remove a fault hook consulted on every publish.  [None]
    (the default) means every message is delivered.  This exists for the
    fault-injection harness only. *)

val drain : t -> int
(** Deliver every delayed message (most-recent-first) to all subscribers
    except its original source, returning how many were released.  The
    scheduler calls this at quantum boundaries, bounding how long a
    delayed invalidation can stay in flight. *)

val published : t -> int
(** Stores broadcast so far. *)

val delivered : t -> int
(** Per-remote-core deliveries so far. *)

val dropped : t -> int
(** Messages lost to an injected [Drop] fate. *)

val pending : t -> int
(** Delayed messages currently awaiting {!drain}. *)
