open Dlink_isa

type subscriber = { core : int; notify : src:int -> Addr.t -> unit }
type fate = Deliver | Drop | Delay

type t = {
  mutable subscribers : subscriber list; (* ascending core id *)
  mutable published : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable fault : (src:int -> Addr.t -> fate) option;
  (* Messages a fault hook chose to hold back; most-recent-first, so a
     drain replays them out of publication order (the reorder fault). *)
  mutable delayed : (int * Addr.t) list;
}

let create () =
  {
    subscribers = [];
    published = 0;
    delivered = 0;
    dropped = 0;
    fault = None;
    delayed = [];
  }

let subscribe t ~core notify =
  if List.exists (fun s -> s.core = core) t.subscribers then
    invalid_arg (Printf.sprintf "Coherence.subscribe: core %d already present" core);
  t.subscribers <-
    List.sort
      (fun a b -> compare a.core b.core)
      ({ core; notify } :: t.subscribers)

let deliver t ~src addr =
  List.iter
    (fun s ->
      if s.core <> src then begin
        t.delivered <- t.delivered + 1;
        s.notify ~src addr
      end)
    t.subscribers

let publish t ~src addr =
  t.published <- t.published + 1;
  let fate =
    match t.fault with None -> Deliver | Some f -> f ~src addr
  in
  match fate with
  | Deliver -> deliver t ~src addr
  | Drop -> t.dropped <- t.dropped + 1
  | Delay -> t.delayed <- (src, addr) :: t.delayed

let drain t =
  let held = t.delayed in
  t.delayed <- [];
  List.iter (fun (src, addr) -> deliver t ~src addr) held;
  List.length held

let set_fault t f = t.fault <- f
let published t = t.published
let delivered t = t.delivered
let dropped t = t.dropped
let pending t = List.length t.delayed
