open Dlink_isa

type subscriber = { core : int; notify : src:int -> Addr.t -> unit }

type t = {
  mutable subscribers : subscriber list; (* ascending core id *)
  mutable published : int;
  mutable delivered : int;
}

let create () = { subscribers = []; published = 0; delivered = 0 }

let subscribe t ~core notify =
  if List.exists (fun s -> s.core = core) t.subscribers then
    invalid_arg (Printf.sprintf "Coherence.subscribe: core %d already present" core);
  t.subscribers <-
    List.sort
      (fun a b -> compare a.core b.core)
      ({ core; notify } :: t.subscribers)

let publish t ~src addr =
  t.published <- t.published + 1;
  List.iter
    (fun s ->
      if s.core <> src then begin
        t.delivered <- t.delivered + 1;
        s.notify ~src addr
      end)
    t.subscribers

let published t = t.published
let delivered t = t.delivered
