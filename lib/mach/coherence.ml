open Dlink_isa

type subscriber = { core : int; notify : src:int -> Addr.t -> unit }
type fate = Deliver | Drop | Delay | Reorder

(* One in-flight invalidation.  [m_attempts] counts delivery attempts lost
   to a [Drop] fate; a message whose attempt count exceeds the retry limit
   is abandoned and its destinations notified through [on_timeout].
   [m_due] is the drain tick before which the message is not retried — the
   backoff clock. *)
type msg = {
  m_seq : int;
  m_src : int;
  m_stamp : int;
  m_addr : Addr.t;
  m_reorder : bool;
  mutable m_attempts : int;
  mutable m_due : int;
}

type fence = { f_seq : int; f_complete : unit -> unit; f_done : bool ref }

type t = {
  mutable subscribers : subscriber list; (* ascending core id *)
  mutable published : int;
  mutable delivered : int;
  mutable acked : int;
  mutable dropped : int;
  mutable retries : int;
  mutable reorders : int;
  mutable timeouts : int;
  mutable stale_discards : int;
  retry_limit : int;
  mutable fault : (src:int -> Addr.t -> fate) option;
  mutable validate : (src:int -> stamp:int -> Addr.t -> bool) option;
  mutable on_timeout : (core:int -> src:int -> Addr.t -> unit) option;
  (* Held-back messages in publication order; [drain] walks them oldest
     first, so recovery preserves store order unless a [Reorder] fate
     explicitly asked for inversion. *)
  mutable pending : msg list;
  mutable seq : int;
  mutable tick : int;
  mutable fences : fence list;
  (* Batched mode: [Deliver]-fated publishes are queued (newest first)
     instead of applied inside the publisher's retire loop, and flushed in
     generation (sequence) order at the next drain, fence, or explicit
     flush.  Opt-in, because deferral is only observably identical under a
     cooperative schedule where no other core executes — and no epoch
     guard runs — between publish and the boundary drain. *)
  mutable batched : bool;
  mutable batch : msg list;
}

let default_retry_limit = 3

let create ?(retry_limit = default_retry_limit) () =
  if retry_limit < 0 then
    invalid_arg "Coherence.create: retry_limit must be non-negative";
  {
    subscribers = [];
    published = 0;
    delivered = 0;
    acked = 0;
    dropped = 0;
    retries = 0;
    reorders = 0;
    timeouts = 0;
    stale_discards = 0;
    retry_limit;
    fault = None;
    validate = None;
    on_timeout = None;
    pending = [];
    seq = 0;
    tick = 0;
    fences = [];
    batched = false;
    batch = [];
  }

let subscribe t ~core notify =
  if List.exists (fun s -> s.core = core) t.subscribers then
    invalid_arg
      (Printf.sprintf "Coherence.subscribe: core %d already present" core);
  t.subscribers <-
    List.sort
      (fun a b -> compare a.core b.core)
      ({ core; notify } :: t.subscribers)

(* A fence completes once no unresolved message published before it
   remains; resolution is delivery, timeout, or stale discard. *)
let check_fences t =
  match t.fences with
  | [] -> ()
  | _ ->
      let min_pending =
        List.fold_left (fun acc m -> min acc m.m_seq) max_int t.pending
      in
      let fire, keep =
        List.partition (fun f -> f.f_seq < min_pending) t.fences
      in
      t.fences <- keep;
      List.iter
        (fun f ->
          if not !(f.f_done) then begin
            f.f_done := true;
            f.f_complete ()
          end)
        fire

(* Deliver to every subscriber except the source; in this synchronous
   model each delivery is immediately acknowledged, so a delivered message
   is a fully acked message.  The epoch guard runs first: a message whose
   stamp no longer matches the live generation of its address is discarded
   rather than applied — the ABA protection for reused ranges. *)
let deliver_now t ~src ~stamp addr =
  let stale =
    match t.validate with None -> false | Some v -> not (v ~src ~stamp addr)
  in
  if stale then begin
    t.stale_discards <- t.stale_discards + 1;
    false
  end
  else begin
    List.iter
      (fun s ->
        if s.core <> src then begin
          t.delivered <- t.delivered + 1;
          s.notify ~src addr
        end)
      t.subscribers;
    t.acked <- t.acked + 1;
    true
  end

let park t ~fate ~src ~stamp addr =
  if fate = Drop then t.dropped <- t.dropped + 1;
  t.pending <-
    t.pending
    @ [
        {
          m_seq = t.seq;
          m_src = src;
          m_stamp = stamp;
          m_addr = addr;
          m_reorder = fate = Reorder;
          m_attempts = (if fate = Drop then 1 else 0);
          m_due = t.tick + 1;
        };
      ]

let publish ?(stamp = 0) t ~src addr =
  t.seq <- t.seq + 1;
  t.published <- t.published + 1;
  let fate = match t.fault with None -> Deliver | Some f -> f ~src addr in
  match fate with
  | Deliver ->
      if t.batched then
        t.batch <-
          {
            m_seq = t.seq;
            m_src = src;
            m_stamp = stamp;
            m_addr = addr;
            m_reorder = false;
            m_attempts = 0;
            m_due = 0;
          }
          :: t.batch
      else ignore (deliver_now t ~src ~stamp addr : bool)
  | (Drop | Delay | Reorder) as fate -> park t ~fate ~src ~stamp addr

(* Apply every batched delivery in one generation-ordered block.  The
   messages carry ascending [m_seq] stamps and the batch list is newest
   first, so one reversal restores publication order. *)
let flush_batch t =
  match t.batch with
  | [] -> 0
  | b ->
      t.batch <- [];
      let n = ref 0 in
      List.iter
        (fun m ->
          if deliver_now t ~src:m.m_src ~stamp:m.m_stamp m.m_addr then incr n)
        (List.rev b);
      !n

let set_batched t b =
  if (not b) && t.batch <> [] then ignore (flush_batch t : int);
  t.batched <- b

let time_out t m =
  t.timeouts <- t.timeouts + 1;
  match t.on_timeout with
  | None -> ()
  | Some f ->
      List.iter
        (fun s ->
          if s.core <> m.m_src then f ~core:s.core ~src:m.m_src m.m_addr)
        t.subscribers

let drain t =
  (* Batched deliveries land first — they were published before this
     boundary — then the parked messages get their retry tick.  The
     return value counts only released parked messages, as before. *)
  ignore (flush_batch t : int);
  t.tick <- t.tick + 1;
  let ready, waiting = List.partition (fun m -> m.m_due <= t.tick) t.pending in
  t.pending <- waiting;
  (* Publication order for honest messages; reorder-fated ones replay
     most-recent-first after them — the old wart, now opt-in and counted. *)
  let inorder, reordered = List.partition (fun m -> not m.m_reorder) ready in
  let released = ref 0 in
  let attempt m =
    (* Retries re-consult the fault hook, so a burst of [Drop] fates is
       survivable: once the injector's credits run out the message goes
       through.  A message that keeps drawing [Drop] past the retry limit
       is abandoned as timed out. *)
    let fate =
      if m.m_attempts = 0 then Deliver
      else begin
        t.retries <- t.retries + 1;
        match t.fault with None -> Deliver | Some f -> f ~src:m.m_src m.m_addr
      end
    in
    match fate with
    | Deliver | Reorder ->
        if m.m_reorder then t.reorders <- t.reorders + 1;
        if deliver_now t ~src:m.m_src ~stamp:m.m_stamp m.m_addr then
          incr released
    | Delay ->
        m.m_due <- t.tick + 1;
        t.pending <- t.pending @ [ m ]
    | Drop ->
        t.dropped <- t.dropped + 1;
        m.m_attempts <- m.m_attempts + 1;
        if m.m_attempts > t.retry_limit then time_out t m
        else begin
          (* Exponential backoff in drain ticks. *)
          m.m_due <- t.tick + (1 lsl min m.m_attempts 6);
          t.pending <- t.pending @ [ m ]
        end
  in
  List.iter attempt inorder;
  List.iter attempt (List.rev reordered);
  t.pending <- List.sort (fun a b -> compare a.m_seq b.m_seq) t.pending;
  check_fences t;
  !released

let fence t ~complete =
  (* Batched deliveries published before the fence point resolve now, so
     the fence only ever waits on genuinely parked (faulted) messages. *)
  ignore (flush_batch t : int);
  let fseq = t.seq in
  let done_ = ref false in
  let f = { f_seq = fseq; f_complete = complete; f_done = done_ } in
  (if List.exists (fun m -> m.m_seq <= fseq) t.pending then
     t.fences <- t.fences @ [ f ]
   else begin
     done_ := true;
     complete ()
   end);
  fun () ->
    if not !done_ then begin
      let give_up, keep =
        List.partition (fun m -> m.m_seq <= fseq) t.pending
      in
      t.pending <- keep;
      List.iter (fun m -> time_out t m) give_up;
      t.fences <- List.filter (fun g -> g.f_done != done_) t.fences;
      done_ := true;
      complete ()
    end

let set_fault t f = t.fault <- f
let set_validate t v = t.validate <- v
let set_on_timeout t f = t.on_timeout <- f
let published t = t.published
let delivered t = t.delivered
let acked t = t.acked
let dropped t = t.dropped
let retries t = t.retries
let reorders t = t.reorders
let timeouts t = t.timeouts
let stale_discards t = t.stale_discards
let pending t = List.length t.pending + List.length t.batch
