(** Loader and link editor.

    Maps a set of object files into a fresh address space in load order
    (the first object is the executable), synthesizes per-module PLT and GOT
    sections, lowers function bodies to instructions, and produces initial
    memory contents according to the binding mode.

    A synthetic dynamic-linker module ([__ld_so]) is always mapped; its
    resolver entry performs symbol-lookup work (ALU and load instructions
    over the link-map data) and finishes with the [Resolve] primitive. *)

open Dlink_isa

type options = {
  mode : Mode.t;
  aslr_seed : int option;
      (** when set, randomizes inter-module gaps (address-space layout
          randomization); when [None] the layout is a fixed sequential map *)
  base : Addr.t;  (** load address of the first module *)
  module_gap : int;  (** minimum gap between modules, bytes *)
  resolver_work : int * int;
      (** (alu, loads) instructions of symbol-lookup work in the resolver *)
  shared_heap_bytes : int;  (** size of the process-wide heap region *)
  func_align : int;
      (** alignment of function entry points (power of two, >= 16).  Larger
          values model the sparse code layout of real libraries, spreading
          hot functions over more cache lines and pages *)
  hw_level : int;
      (** hardware capability level used to select GNU ifunc
          implementations at load time (§2.4.1); candidates are listed
          best-first and level [n-1] or more selects the best of [n] *)
  ld_preload : string list;
      (** module names whose exports interpose on everyone else's
          (LD_PRELOAD rank in the link map), regardless of load order *)
}

val default_options : options

val ld_so_name : string
(** Name of the always-mapped synthetic dynamic-linker module. *)

type t = {
  opts : options;
  space : Space.t;
  linkmap : Linkmap.t;
  resolver_entry : Addr.t;
  shared_heap : Image.section;
  stack_top : Addr.t;
  stack_base : Addr.t;
  mutable n_sites : int;
      (** number of distinct site ids used by lowered code; grows as
          modules are mapped at runtime *)
  init_mem : (Addr.t * int) list;  (** initial 64-bit memory cells *)
  patch_sites : Addr.t list;
      (** call-site addresses rewritten under [Patched] mode *)
  plt_entry_addrs : (Addr.t, string * int) Hashtbl.t;
      (** PLT entry address -> (symbol, image id), across all modules *)
}

val load : ?opts:options -> Dlink_obj.Objfile.t list -> (t, string) result
(** The first object file is the main executable.  Fails on duplicate module
    names, unresolved non-extra imports, or overlapping layout. *)

val load_exn : ?opts:options -> Dlink_obj.Objfile.t list -> t

val func_addr : t -> mname:string -> fname:string -> Addr.t option
(** Entry address of a function in a given module. *)

val is_plt_entry : t -> Addr.t -> bool
(** Whether an address is the first instruction of some PLT entry. *)

val plt_symbol_at : t -> Addr.t -> (string * int) option
(** Symbol and image id of the PLT entry starting at this address. *)

val in_any_plt : t -> Addr.t -> bool
(** Whether an address lies inside any module's PLT section. *)

val in_any_got : t -> Addr.t -> bool

val module_span : t -> Dlink_obj.Objfile.t -> int
(** Bytes the module would span if mapped (text+PLT+GOT+data, page-aligned
    internally).  Used to carve an address range before mapping. *)

val map_module :
  t ->
  id:int ->
  base:Addr.t ->
  define:(preload:bool -> symbol:string -> addr:Addr.t -> unit) ->
  Dlink_obj.Objfile.t ->
  Image.t * (Addr.t * int) list
(** Lay out, link and generate one module at [base] and add it to the
    address space.  Exports are published through [define] so the caller
    (the dynamic loader) records them for dlclose; the returned initial
    memory cells (GOT, vtables) must be written through the caller's own
    store path so the GOT-watching hardware observes them.  Raises
    {!Load_error} on unresolved imports. *)

val unmap_module : t -> int -> unit
(** Remove a runtime-mapped image: drops its PLT entries from the global
    PLT index and unmaps it.  The caller handles linkmap and GOT fixup. *)

exception Load_error of string

val patched_pages : t -> int
(** Distinct code pages containing at least one patched call site. *)

val total_code_bytes : t -> int
