open Dlink_isa

type entry = { symbol : string; addr : Addr.t; image_id : int }

(* One definition of a base symbol.  [d_default] is true for unversioned
   definitions and for the module's default version ([name@@ver]); only
   those satisfy a plain (unversioned) reference at full precedence. *)
type def = {
  d_version : string option;
  d_default : bool;
  d_addr : Addr.t;
  d_image : int;
  d_preload : bool;
  d_seq : int;
}

type t = {
  defs : (string, def list) Hashtbl.t; (* base name -> definitions, any order *)
  mutable order : string list; (* base names, newest first, may repeat *)
  mutable seq : int;
}

let create () = { defs = Hashtbl.create 256; order = []; seq = 0 }

(* "name@@ver" defines the default version, "name@ver" an old non-default
   one, bare "name" an unversioned symbol (default for plain lookups). *)
let parse_symbol s =
  match String.index_opt s '@' with
  | None -> (s, None, true)
  | Some i ->
      let base = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      if rest <> "" && rest.[0] = '@' then
        (base, Some (String.sub rest 1 (String.length rest - 1)), true)
      else (base, Some rest, false)

let define t ?(preload = false) ~symbol ~addr ~image_id () =
  let base, version, is_default = parse_symbol symbol in
  let d =
    {
      d_version = version;
      d_default = is_default;
      d_addr = addr;
      d_image = image_id;
      d_preload = preload;
      d_seq = t.seq;
    }
  in
  t.seq <- t.seq + 1;
  let prev = Option.value (Hashtbl.find_opt t.defs base) ~default:[] in
  Hashtbl.replace t.defs base (d :: prev);
  t.order <- base :: t.order

(* Precedence: interposers (LD_PRELOAD rank) beat everything, then
   default-version definitions, then non-default ones; load order (seq)
   breaks ties, so the historical first-definition-wins behaviour is
   preserved for plain unversioned scopes. *)
let best score cands =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some b when score b <= score d -> acc
      | _ -> Some d)
    None cands

let resolve t symbol =
  let base, version, _ = parse_symbol symbol in
  match Hashtbl.find_opt t.defs base with
  | None -> None
  | Some cands -> (
      match version with
      | None ->
          best
            (fun d ->
              ( (if d.d_preload then 0 else 1),
                (if d.d_default then 0 else 1),
                d.d_seq ))
            cands
      | Some v ->
          (* An exact version match wins; an unversioned definition
             satisfies any version request as a fallback. *)
          best
            (fun d ->
              ( (if d.d_preload then 0 else 1),
                (if d.d_version = Some v then 0 else 1),
                d.d_seq ))
            (List.filter
               (fun d -> d.d_version = Some v || d.d_version = None)
               cands))

let lookup t symbol =
  Option.map
    (fun d -> { symbol; addr = d.d_addr; image_id = d.d_image })
    (resolve t symbol)

let lookup_addr t symbol = Option.map (fun e -> e.addr) (lookup t symbol)

let symbols t =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun base ->
      if Hashtbl.mem seen base || not (Hashtbl.mem t.defs base) then false
      else begin
        Hashtbl.replace seen base ();
        true
      end)
    (List.rev t.order)

let undefine_image t ~image_id =
  let changed = ref [] in
  Hashtbl.iter
    (fun base cands ->
      if List.exists (fun d -> d.d_image = image_id) cands then
        changed := base :: !changed)
    t.defs;
  List.iter
    (fun base ->
      match
        List.filter
          (fun d -> d.d_image <> image_id)
          (Hashtbl.find t.defs base)
      with
      | [] -> Hashtbl.remove t.defs base
      | rest -> Hashtbl.replace t.defs base rest)
    !changed;
  List.sort compare !changed
