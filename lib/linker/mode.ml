type t = Lazy_binding | Eager_binding | Static_link | Patched | Stable_linking

let to_string = function
  | Lazy_binding -> "lazy"
  | Eager_binding -> "eager"
  | Static_link -> "static"
  | Patched -> "patched"
  | Stable_linking -> "stable"

let of_string = function
  | "lazy" -> Some Lazy_binding
  | "eager" -> Some Eager_binding
  | "static" -> Some Static_link
  | "patched" -> Some Patched
  | "stable" -> Some Stable_linking
  | _ -> None

let all = [ Lazy_binding; Eager_binding; Static_link; Patched; Stable_linking ]
let names = List.map to_string all

let uses_plt = function
  | Lazy_binding | Eager_binding | Stable_linking -> true
  | Static_link | Patched -> false
