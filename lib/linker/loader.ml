open Dlink_isa
module Objfile = Dlink_obj.Objfile
module Rng = Dlink_util.Rng

type options = {
  mode : Mode.t;
  aslr_seed : int option;
  base : Addr.t;
  module_gap : int;
  resolver_work : int * int;
  shared_heap_bytes : int;
  func_align : int;
  hw_level : int;
  ld_preload : string list;
}

let default_options =
  {
    mode = Mode.Lazy_binding;
    aslr_seed = None;
    base = 0x400000;
    module_gap = 0x10000;
    resolver_work = (48, 24);
    shared_heap_bytes = 8 * 1024 * 1024;
    func_align = 16;
    hw_level = 99;
    ld_preload = [];
  }

type t = {
  opts : options;
  space : Space.t;
  linkmap : Linkmap.t;
  resolver_entry : Addr.t;
  shared_heap : Image.section;
  stack_top : Addr.t;
  stack_base : Addr.t;
  mutable n_sites : int;
  init_mem : (Addr.t * int) list;
  patch_sites : Addr.t list;
  plt_entry_addrs : (Addr.t, string * int) Hashtbl.t;
}

exception Load_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Load_error s)) fmt

let ld_so_name = "__ld_so"
let resolver_data_bytes = 32 * 1024
let stack_bytes = 1024 * 1024

(* Per-module layout computed before any code is generated. *)
type layout = {
  obj : Objfile.t option; (* [None] for the synthetic dynamic linker *)
  lname : string;
  id : int;
  text_base : Addr.t;
  text_size : int;
  func_offs : (string * int) list;
  plt_base : Addr.t;
  plt_size : int;
  got_base : Addr.t;
  got_size : int;
  data_base : Addr.t;
  data_size : int;
  vtable_offs : (string * int) list; (* vtable name -> offset from data_base *)
  vtable_bytes : int;
  imports : string array;
}

let has_plt_sections mode =
  match mode with
  | Mode.Lazy_binding | Mode.Eager_binding | Mode.Patched | Mode.Stable_linking
    ->
      true
  | Mode.Static_link -> false

let align16 n = Addr.align_up n 16
let align_page a = Addr.align_up a Addr.page_bytes

let plt_entry_addr l i = l.plt_base + (16 * (i + 1))
let got_slot_addr l i = l.got_base + (8 * (i + 3))

(* PLT entries sit in definition order while programs use a random subset
   (§2), so used entries are sparsely spread through the PLT.  We reproduce
   that by shuffling each module's import order with a deterministic
   per-module seed. *)
let shuffled_imports obj =
  let imports = Array.of_list (Objfile.imports obj) in
  let seed = Hashtbl.hash ("plt-order:" ^ obj.Objfile.name) in
  Rng.shuffle (Rng.create seed) imports;
  imports

let layout_module ~opts ~cursor ~id obj =
  let imports = shuffled_imports obj in
  let n_imports = Array.length imports in
  let text_base = align_page cursor in
  let align_func = max 16 opts.func_align in
  let func_offs, text_end =
    List.fold_left
      (fun (acc, off) (f : Objfile.func) ->
        let off = Addr.align_up off align_func in
        ((f.fname, off) :: acc, off + Codegen.function_size f.body))
      ([], 0) obj.Objfile.funcs
  in
  let text_size = align16 text_end in
  let with_plt = has_plt_sections opts.mode in
  let plt_base = text_base + text_size in
  let plt_size = if with_plt then 16 * (n_imports + 1) else 0 in
  let got_base = align_page (plt_base + plt_size) in
  let got_size = if with_plt then 8 * (n_imports + 3) else 0 in
  (* The data region starts on its own page: GOT pages hold only GOT slots,
     which lets a page-granular store filter watch them precisely.
     Relocated function-pointer tables (vtables) occupy the start of the
     data section; the scratch region used by [Touch] follows them. *)
  let data_base = align_page (got_base + got_size + 1) in
  let vtable_offs, vtable_bytes =
    List.fold_left
      (fun (acc, off) (v : Objfile.vtable) ->
        ((v.Objfile.vname, off) :: acc, off + (8 * List.length v.Objfile.entries)))
      ([], 0) obj.Objfile.vtables
  in
  let data_size = vtable_bytes + obj.Objfile.data_bytes in
  {
    obj = Some obj;
    lname = obj.Objfile.name;
    id;
    text_base;
    text_size;
    func_offs = List.rev func_offs;
    plt_base;
    plt_size;
    got_base;
    got_size;
    data_base;
    data_size;
    vtable_offs = List.rev vtable_offs;
    vtable_bytes;
    imports;
  }

let layout_resolver ~opts ~cursor ~id =
  let alu, loads = opts.resolver_work in
  let text_base = align_page cursor in
  let code_bytes = (4 * alu) + (4 * loads) + Insn.byte_size Insn.Resolve in
  let text_size = align16 code_bytes in
  let data_base = Addr.align_up (text_base + text_size) 64 in
  {
    obj = None;
    lname = ld_so_name;
    id;
    text_base;
    text_size;
    func_offs = [ ("_dl_resolve", 0) ];
    plt_base = text_base + text_size;
    plt_size = 0;
    got_base = text_base + text_size;
    got_size = 0;
    data_base;
    data_size = resolver_data_bytes;
    vtable_offs = [];
    vtable_bytes = 0;
    imports = [||];
  }

let layout_end l = l.data_base + l.data_size

let func_addr_in l fname =
  match List.assoc_opt fname l.func_offs with
  | Some off -> l.text_base + off
  | None -> fail "function %s not laid out in %s" fname l.lname

(* Generate one module's code into its image arrays. *)
let codegen_module ~opts ~linkmap ~resolver_entry ~shared_heap ~fresh_site
    ~plt_entry_addrs ~patch_sites l =
  let code_len = l.text_size + l.plt_size in
  let code = Array.make code_len None in
  let import_index = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace import_index s i) l.imports;
  let resolve_local fname = func_addr_in l fname in
  let resolve_global sym =
    match Linkmap.lookup_addr linkmap sym with
    | Some a -> a
    | None -> fail "unresolved symbol %s (needed by %s)" sym l.lname
  in
  let resolve_import sym =
    match opts.mode with
    | Mode.Lazy_binding | Mode.Eager_binding | Mode.Stable_linking ->
        let i =
          match Hashtbl.find_opt import_index sym with
          | Some i -> i
          | None -> fail "symbol %s not in import table of %s" sym l.lname
        in
        plt_entry_addr l i
    | Mode.Static_link | Mode.Patched -> resolve_global sym
  in
  let write_insns base insns =
    List.iter
      (fun (off, insn) ->
        let idx = base - l.text_base + off in
        assert (idx >= 0 && idx < code_len);
        assert (code.(idx) = None);
        code.(idx) <- Some insn)
      insns
  in
  let vtable_base_of vname =
    match List.assoc_opt vname l.vtable_offs with
    | Some off -> l.data_base + off
    | None -> fail "unknown vtable %s in %s" vname l.lname
  in
  (match l.obj with
  | Some obj ->
      List.iter
        (fun (f : Objfile.func) ->
          let fbase = func_addr_in l f.fname in
          let asm = Asm.create () in
          let ctx =
            {
              Codegen.resolve_import;
              resolve_local;
              local_data = (l.data_base + l.vtable_bytes, l.data_size - l.vtable_bytes);
              shared_data = shared_heap;
              fresh_site;
              resolve_vtable_slot =
                (fun vname slot -> vtable_base_of vname + (8 * slot));
              note_import_call_site =
                (fun ~offset sym ->
                  ignore sym;
                  if opts.mode = Mode.Patched then
                    patch_sites := (fbase + offset) :: !patch_sites);
            }
          in
          Codegen.lower_body asm ctx f.body;
          write_insns fbase (Asm.assemble asm ~base:fbase))
        obj.Objfile.funcs
  | None ->
      (* The dynamic linker's resolver: symbol-lookup work then [Resolve]. *)
      let alu, loads = opts.resolver_work in
      let asm = Asm.create () in
      for _ = 1 to alu do
        Asm.emit asm Asm.P_alu
      done;
      for _ = 1 to loads do
        Asm.emit asm
          (Asm.P_load
             (Insn.Region
                { site = fresh_site (); base = l.data_base; size = l.data_size }))
      done;
      Asm.emit asm Asm.P_resolve;
      write_insns l.text_base (Asm.assemble asm ~base:l.text_base));
  (* Vtable relocation: entries resolve globally at load time. *)
  let vtable_init =
    match l.obj with
    | None -> []
    | Some obj ->
        List.concat_map
          (fun (v : Objfile.vtable) ->
            let base = vtable_base_of v.Objfile.vname in
            List.mapi
              (fun i sym ->
                match Linkmap.lookup_addr linkmap sym with
                | Some a -> (base + (8 * i), a)
                | None -> fail "vtable %s entry %s undefined" v.Objfile.vname sym)
              v.Objfile.entries)
          obj.Objfile.vtables
  in
  (* PLT synthesis. *)
  let plt_entries = Hashtbl.create 16 in
  let got_slots = Hashtbl.create 16 in
  if l.plt_size > 0 then begin
    let put addr insn =
      let idx = addr - l.text_base in
      assert (code.(idx) = None);
      code.(idx) <- Some insn
    in
    (* PLT0: push the module id, jump through got[1] to the resolver. *)
    put l.plt_base (Insn.Push_info l.id);
    put (l.plt_base + 5) (Insn.Jmp_mem (l.got_base + 8));
    Array.iteri
      (fun i sym ->
        let entry = plt_entry_addr l i and slot = got_slot_addr l i in
        put entry (Insn.Jmp_mem slot);
        put (entry + 6) (Insn.Push_info i);
        put (entry + 11) (Insn.Jmp l.plt_base);
        Hashtbl.replace plt_entries sym entry;
        Hashtbl.replace got_slots sym slot;
        Hashtbl.replace plt_entry_addrs entry (sym, l.id))
      l.imports
  end;
  (* Initial GOT contents. *)
  let init =
    if l.got_size = 0 then []
    else begin
      let slots =
        Array.to_list
          (Array.mapi
             (fun i sym ->
               let slot = got_slot_addr l i in
               match opts.mode with
               | Mode.Lazy_binding | Mode.Patched | Mode.Stable_linking ->
                   (* Stable layouts start on the lazy stub too: the
                      pre-resolved snapshot is installed through visible
                      GOT stores by the dynamic loader (see Dynload). *)
                   (slot, plt_entry_addr l i + 6)
               | Mode.Eager_binding -> (
                   match Linkmap.lookup_addr linkmap sym with
                   | Some a -> (slot, a)
                   | None -> (slot, 0))
               | Mode.Static_link -> assert false)
             l.imports)
      in
      (l.got_base, l.id) :: (l.got_base + 8, resolver_entry) :: slots
    end
  in
  let init = vtable_init @ init in
  let funcs = Hashtbl.create 16 in
  List.iter (fun (n, off) -> Hashtbl.replace funcs n (l.text_base + off)) l.func_offs;
  let vtables = Hashtbl.create 4 in
  List.iter
    (fun (vname, off) -> Hashtbl.replace vtables vname (l.data_base + off))
    l.vtable_offs;
  let image =
    {
      Image.name = l.lname;
      id = l.id;
      text = { Image.base = l.text_base; size = l.text_size };
      plt = { Image.base = l.plt_base; size = l.plt_size };
      got = { Image.base = l.got_base; size = l.got_size };
      data = { Image.base = l.data_base; size = l.data_size };
      code;
      funcs;
      plt_entries;
      got_slots;
      reloc_syms = Array.copy l.imports;
      vtables;
    }
  in
  (image, init)

let load ?(opts = default_options) objs =
  try
    if objs = [] then fail "no object files";
    let names = Hashtbl.create 16 in
    List.iter
      (fun (o : Objfile.t) ->
        if o.name = ld_so_name then fail "module name %s is reserved" ld_so_name;
        if Hashtbl.mem names o.name then fail "duplicate module %s" o.name;
        Hashtbl.replace names o.name ())
      objs;
    let aslr = Option.map Rng.create opts.aslr_seed in
    let gap () =
      match aslr with
      | None -> opts.module_gap
      | Some rng -> opts.module_gap + (Addr.page_bytes * Rng.int rng 256)
    in
    (* Phase 1: layout every module, then the dynamic linker. *)
    let cursor = ref opts.base in
    let layouts =
      List.mapi
        (fun id obj ->
          let l = layout_module ~opts ~cursor:!cursor ~id obj in
          cursor := align_page (layout_end l) + gap ();
          l)
        objs
    in
    let ld_layout = layout_resolver ~opts ~cursor:!cursor ~id:(List.length objs) in
    cursor := align_page (layout_end ld_layout) + gap ();
    let resolver_entry = ld_layout.text_base in
    let shared_heap =
      { Image.base = align_page !cursor; size = opts.shared_heap_bytes }
    in
    let stack_base = align_page (shared_heap.base + shared_heap.size) + opts.module_gap in
    let stack_top = stack_base + stack_bytes in
    (* Global symbol scope from exported functions, in load order. *)
    let linkmap = Linkmap.create () in
    List.iter
      (fun l ->
        match l.obj with
        | None -> ()
        | Some obj ->
            let preload = List.mem obj.Objfile.name opts.ld_preload in
            List.iter
              (fun (f : Objfile.func) ->
                if f.exported then
                  Linkmap.define linkmap ~preload ~symbol:f.fname
                    ~addr:(func_addr_in l f.fname) ~image_id:l.id ())
              obj.Objfile.funcs;
            (* GNU ifuncs (§2.4.1): the capability level known at load time
               selects the implementation; candidates are best-first, so a
               level of [n-1] or more picks the best one. *)
            List.iter
              (fun (i : Objfile.ifunc) ->
                let n = List.length i.Objfile.candidates in
                let idx = max 0 (n - 1 - opts.hw_level) in
                let chosen = List.nth i.Objfile.candidates idx in
                Linkmap.define linkmap ~preload ~symbol:i.Objfile.iname
                  ~addr:(func_addr_in l chosen) ~image_id:l.id ())
              obj.Objfile.ifuncs)
      layouts;
    (* Check that every import actually referenced by code resolves. *)
    List.iter
      (fun (o : Objfile.t) ->
        List.iter
          (fun (f : Objfile.func) ->
            List.iter
              (fun sym ->
                if Linkmap.lookup linkmap sym = None then
                  fail "undefined symbol %s referenced by %s.%s" sym o.name
                    f.Objfile.fname)
              (Dlink_obj.Body.imports f.Objfile.body))
          o.funcs)
      objs;
    (* Phase 2: code generation. *)
    let site_counter = ref 1 in
    let fresh_site () =
      let s = !site_counter in
      incr site_counter;
      s
    in
    let plt_entry_addrs = Hashtbl.create 512 in
    let patch_sites = ref [] in
    let pairs =
      List.map
        (codegen_module ~opts ~linkmap ~resolver_entry
           ~shared_heap:(shared_heap.base, shared_heap.size) ~fresh_site
           ~plt_entry_addrs ~patch_sites)
        (layouts @ [ ld_layout ])
    in
    let images = List.map fst pairs in
    let init_mem = List.concat_map snd pairs in
    let space = Space.create images in
    Ok
      {
        opts;
        space;
        linkmap;
        resolver_entry;
        shared_heap;
        stack_top;
        stack_base;
        n_sites = !site_counter;
        init_mem;
        patch_sites = !patch_sites;
        plt_entry_addrs;
      }
  with Load_error msg -> Error msg

let load_exn ?opts objs =
  match load ?opts objs with
  | Ok t -> t
  | Error e -> invalid_arg ("Loader.load: " ^ e)

let func_addr t ~mname ~fname =
  match Space.image_by_name t.space mname with
  | None -> None
  | Some img -> Image.func_addr img fname

let is_plt_entry t addr = Hashtbl.mem t.plt_entry_addrs addr
let plt_symbol_at t addr = Hashtbl.find_opt t.plt_entry_addrs addr

let in_any_plt t addr =
  match Space.image_at t.space addr with
  | None -> false
  | Some img -> Image.in_plt img addr

let in_any_got t addr =
  match Space.image_at t.space addr with
  | None -> false
  | Some img -> Image.in_got img addr

(* --- Runtime module mapping (dlopen support; see Dynload) --------------- *)

(* Bytes a module would span if laid out at base 0 — used by the dynamic
   loader to carve an address range before committing to a layout. *)
let module_span t obj =
  let l = layout_module ~opts:t.opts ~cursor:0 ~id:(-1) obj in
  layout_end l

(* Lay out, link and generate one module at [base], mapping it into the
   live address space.  Exported symbols are published through [define]
   (not written to the linkmap directly) so the caller controls preload
   rank and can record what it added for later dlclose.  Returns the new
   image and the initial memory contents (GOT, vtables) the caller must
   write through its own store path — the stores, not the loader, are
   what the GOT-watching hardware observes. *)
let map_module t ~id ~base ~define (obj : Objfile.t) =
  let opts = t.opts in
  let l = layout_module ~opts ~cursor:base ~id obj in
  let preload = List.mem obj.Objfile.name opts.ld_preload in
  List.iter
    (fun (f : Objfile.func) ->
      if f.exported then
        define ~preload ~symbol:f.fname ~addr:(func_addr_in l f.fname))
    obj.Objfile.funcs;
  List.iter
    (fun (i : Objfile.ifunc) ->
      let n = List.length i.Objfile.candidates in
      let idx = max 0 (n - 1 - opts.hw_level) in
      let chosen = List.nth i.Objfile.candidates idx in
      define ~preload ~symbol:i.Objfile.iname ~addr:(func_addr_in l chosen))
    obj.Objfile.ifuncs;
  let fresh_site () =
    let s = t.n_sites in
    t.n_sites <- s + 1;
    s
  in
  let patch_sites = ref [] in
  let image, init =
    codegen_module ~opts ~linkmap:t.linkmap ~resolver_entry:t.resolver_entry
      ~shared_heap:(t.shared_heap.base, t.shared_heap.size) ~fresh_site
      ~plt_entry_addrs:t.plt_entry_addrs ~patch_sites l
  in
  Space.add t.space image;
  (image, init)

let unmap_module t id =
  (match Space.image_by_id t.space id with
  | None -> invalid_arg (Printf.sprintf "Loader.unmap_module: unknown id %d" id)
  | Some img ->
      Hashtbl.iter
        (fun _sym entry -> Hashtbl.remove t.plt_entry_addrs entry)
        img.Image.plt_entries);
  Space.remove t.space id

let patched_pages t =
  let pages = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace pages (Addr.page_of a) ()) t.patch_sites;
  Hashtbl.length pages

let total_code_bytes t =
  Array.fold_left (fun acc img -> acc + Image.code_bytes img) 0 (Space.images t.space)
