open Dlink_isa
module Objfile = Dlink_obj.Objfile
module Rng = Dlink_util.Rng

type stats = {
  mutable opens : int;
  mutable reopens : int;
  mutable closes : int;
  mutable rebinds : int;
  mutable stable_hits : int;
  mutable stable_misses : int;
  mutable grace_unmaps : int;
  mutable forced_unmaps : int;
}

(* One runtime-mapped module.  The image id is fresh per mapping (never
   reused), the base address may be reused from the free list. *)
type mstate = {
  h_id : int;
  h_name : string;
  h_base : Addr.t;
  h_span : int;
  mutable h_refs : int;
  mutable h_open : bool;
}

type handle = int (* = image id of the mapping *)

type barrier =
  span_base:Addr.t -> span_end:Addr.t -> complete:(unit -> unit) -> unit -> unit

type t = {
  linked : Loader.t;
  store : Addr.t -> int -> unit;
  read : Addr.t -> int;
  rng : Rng.t option;
  mutable cursor : Addr.t;
  mutable next_id : int;
  mutable free : (Addr.t * int) list; (* (base, span), ascending base *)
  by_name : (string, mstate) Hashtbl.t; (* open modules *)
  by_handle : (int, mstate) Hashtbl.t;
  snapshots : (string, (string * Addr.t) list) Hashtbl.t;
  mutable pending : (unit -> unit) list; (* deferred invalidations, FIFO *)
  (* Mapping-generation clock: bumped on every map and final unmap, with
     the value at map time recorded per image id.  A coherence message
     stamped with the generation of its slot's owning mapping can be
     recognised as stale after the mapping dies or its range is reused. *)
  mutable generation : int;
  map_generations : (int, int) Hashtbl.t; (* image id -> gen at map *)
  (* Unmap grace periods in flight: module name -> force closure.  While a
     name is retiring, its image is still mapped and its range is not on
     the free list; a dlopen of the same name forces the barrier first. *)
  retiring : (string, unit -> unit) Hashtbl.t;
  mutable unmap_barrier : barrier option;
  stats : stats;
}

let align_page a = Addr.align_up a Addr.page_bytes

let create ?seed ~store ~read linked =
  let open Loader in
  {
    linked;
    store;
    read;
    rng = Option.map Rng.create seed;
    (* Runtime mappings live above everything the static loader placed. *)
    cursor = align_page (linked.stack_top + linked.opts.module_gap);
    next_id = Array.length (Space.images linked.space);
    free = [];
    by_name = Hashtbl.create 16;
    by_handle = Hashtbl.create 16;
    snapshots = Hashtbl.create 16;
    pending = [];
    generation = 0;
    map_generations = Hashtbl.create 16;
    retiring = Hashtbl.create 4;
    unmap_barrier = None;
    stats =
      {
        opens = 0;
        reopens = 0;
        closes = 0;
        rebinds = 0;
        stable_hits = 0;
        stable_misses = 0;
        grace_unmaps = 0;
        forced_unmaps = 0;
      };
  }

let stats t = t.stats
let linked t = t.linked
let set_unmap_barrier t b = t.unmap_barrier <- b
let generation t = t.generation
let retiring_count t = Hashtbl.length t.retiring

(* Generation of the mapping that owns [addr]: statically loaded images
   predate the clock and are generation 0; an unmapped address has no
   generation at all. *)
let generation_at t addr =
  match Space.image_at t.linked.Loader.space addr with
  | None -> None
  | Some img -> (
      match Hashtbl.find_opt t.map_generations img.Image.id with
      | Some g -> Some g
      | None -> Some 0)

let gap t =
  match t.rng with
  | None -> t.linked.Loader.opts.module_gap
  | Some rng ->
      t.linked.Loader.opts.module_gap + (Addr.page_bytes * Rng.int rng 256)

(* First-fit over freed ranges; a whole entry is consumed even when larger
   than needed, so a module reopened after a plain close lands at exactly
   its previous base — the address reuse that makes a stale ABTB entry
   dangerous rather than merely wasteful. *)
let alloc_range t span =
  let rec fit acc = function
    | (base, free_span) :: rest when free_span >= span ->
        t.free <- List.rev_append acc rest;
        base
    | entry :: rest -> fit (entry :: acc) rest
    | [] ->
        let base = t.cursor in
        t.cursor <- align_page (base + span) + gap t;
        base
  in
  fit [] t.free

let mode t = t.linked.Loader.opts.mode

(* Install the pre-resolved GOT snapshot captured at the previous dlclose
   of this module (stable-linking mode).  Every entry is validated against
   the current link map before being written: a binding that moved since
   the snapshot falls back to the lazy stub, so a stale snapshot can cost
   a resolver run but never a wrong call target. *)
let install_snapshot t (img : Image.t) entries =
  List.iter
    (fun (sym, addr) ->
      match Hashtbl.find_opt img.Image.got_slots sym with
      | None -> t.stats.stable_misses <- t.stats.stable_misses + 1
      | Some slot ->
          if Linkmap.lookup_addr t.linked.Loader.linkmap sym = Some addr then begin
            t.store slot addr;
            t.stats.stable_hits <- t.stats.stable_hits + 1
          end
          else t.stats.stable_misses <- t.stats.stable_misses + 1)
    entries

let dlopen t (obj : Objfile.t) =
  match Hashtbl.find_opt t.by_name obj.Objfile.name with
  | Some m ->
      m.h_refs <- m.h_refs + 1;
      m.h_id
  | None ->
      (* Reuse pressure forces a pending grace period: if this module is
         still retiring (unmap waiting on acks), resolve it now — laggard
         cores are timed out and degraded — so the name and range are
         free for the new mapping. *)
      (match Hashtbl.find_opt t.retiring obj.Objfile.name with
      | Some force ->
          force ();
          t.stats.forced_unmaps <- t.stats.forced_unmaps + 1
      | None -> ());
      let span = align_page (Loader.module_span t.linked obj) in
      let base = alloc_range t span in
      let id = t.next_id in
      t.next_id <- id + 1;
      let define ~preload ~symbol ~addr =
        Linkmap.define t.linked.Loader.linkmap ~preload ~symbol ~addr
          ~image_id:id ()
      in
      let image, init = Loader.map_module t.linked ~id ~base ~define obj in
      (* The mapping's generation must exist before any store it provokes:
         an embedder stamping coherence messages with [generation_at] of
         the stored slot would otherwise stamp the init stores 0 and see
         them discarded as stale on delivery. *)
      t.generation <- t.generation + 1;
      Hashtbl.replace t.map_generations id t.generation;
      (* GOT and vtable initialisation goes through the embedder's store
         path: these are ordinary architectural stores, so the Bloom
         filter and coherence machinery observe the new module's GOT
         exactly as they would a resolver's binding store. *)
      List.iter (fun (a, v) -> t.store a v) init;
      (match
         (mode t, Hashtbl.find_opt t.snapshots obj.Objfile.name)
       with
      | Mode.Stable_linking, Some entries -> install_snapshot t image entries
      | _ -> ());
      let m =
        {
          h_id = id;
          h_name = obj.Objfile.name;
          h_base = base;
          h_span = span;
          h_refs = 1;
          h_open = true;
        }
      in
      Hashtbl.replace t.by_name m.h_name m;
      Hashtbl.replace t.by_handle id m;
      if Hashtbl.mem t.snapshots obj.Objfile.name then
        t.stats.reopens <- t.stats.reopens + 1;
      t.stats.opens <- t.stats.opens + 1;
      id

let find_open t h =
  match Hashtbl.find_opt t.by_handle h with
  | Some m when m.h_open -> m
  | _ -> invalid_arg (Printf.sprintf "Dynload: handle %d is not open" h)

let is_open t h =
  match Hashtbl.find_opt t.by_handle h with
  | Some m -> m.h_open
  | None -> false

let base_of t h = (find_open t h).h_base
let image_of t h = Space.image_by_id t.linked.Loader.space (find_open t h).h_id

(* Fix up every live GOT slot that still points into the closed range:
   rebind to the current link-map binding if one survives, else back to
   the symbol's lazy stub so the next call re-resolves.  Run immediately
   this is the dlclose invalidation storm the GOT-watching hardware must
   see; deferred past the unmap it models the unload-during-use hazard
   windows the fault plans probe. *)
let invalidation_closure t ~closing_id ~span_base ~span_end ~others ~own_slots
    () =
  List.iter
    (fun (img : Image.t) ->
      Hashtbl.iter
        (fun sym slot ->
          let v = t.read slot in
          if v >= span_base && v < span_end then begin
            (match Linkmap.lookup_addr t.linked.Loader.linkmap sym with
            | Some a -> t.store slot a
            | None ->
                t.store slot (Hashtbl.find img.Image.plt_entries sym + 6));
            t.stats.rebinds <- t.stats.rebinds + 1
          end)
        img.Image.got_slots)
    others;
  (* Deferred runs can find the freed range already remapped (same-base
     reuse); those slot addresses now belong to the new tenant, so only
     zero slots still owned by the closing image or by nobody. *)
  List.iter
    (fun slot ->
      match Space.image_at t.linked.Loader.space slot with
      | Some img when img.Image.id <> closing_id -> ()
      | _ -> t.store slot 0)
    own_slots

let snapshot_own_got t (img : Image.t) ~span_base ~span_end =
  Hashtbl.fold
    (fun sym slot acc ->
      let v = t.read slot in
      (* Keep only settled bindings into other modules: zero means never
         bound, an own-range value is the lazy stub (or a self call that
         dies with the mapping anyway). *)
      if v <> 0 && not (v >= span_base && v < span_end) then (sym, v) :: acc
      else acc)
    img.Image.got_slots []

let dlclose ?(defer_invalidate = false) t h =
  let m = find_open t h in
  if m.h_refs > 1 then m.h_refs <- m.h_refs - 1
  else begin
    let img =
      match Space.image_by_id t.linked.Loader.space m.h_id with
      | Some img -> img
      | None -> assert false
    in
    let span_base = m.h_base and span_end = m.h_base + m.h_span in
    if mode t = Mode.Stable_linking then
      Hashtbl.replace t.snapshots m.h_name
        (snapshot_own_got t img ~span_base ~span_end);
    ignore
      (Linkmap.undefine_image t.linked.Loader.linkmap ~image_id:m.h_id
        : string list);
    let others =
      Array.to_list (Space.images t.linked.Loader.space)
      |> List.filter (fun (i : Image.t) -> i.Image.id <> m.h_id)
    in
    let own_slots =
      Hashtbl.fold (fun _sym slot acc -> slot :: acc) img.Image.got_slots []
    in
    let inval =
      invalidation_closure t ~closing_id:m.h_id ~span_base ~span_end ~others
        ~own_slots
    in
    if defer_invalidate then t.pending <- t.pending @ [ inval ] else inval ();
    m.h_open <- false;
    Hashtbl.remove t.by_name m.h_name;
    t.stats.closes <- t.stats.closes + 1;
    (* The unmap itself waits for the embedder's barrier (every core has
       acked the invalidation traffic, or timed out and been degraded);
       until then the image stays mapped and the range stays off the free
       list, so no new tenant can move in under an in-flight
       invalidation — the epoch-guarded grace period. *)
    let finish () =
      Loader.unmap_module t.linked m.h_id;
      t.free <- List.sort compare ((m.h_base, m.h_span) :: t.free);
      t.generation <- t.generation + 1;
      Hashtbl.remove t.map_generations m.h_id;
      Hashtbl.remove t.retiring m.h_name
    in
    match t.unmap_barrier with
    | None -> finish ()
    | Some b ->
        let completed = ref false in
        let complete () =
          if not !completed then begin
            completed := true;
            finish ()
          end
        in
        let force = b ~span_base ~span_end ~complete in
        if not !completed then begin
          t.stats.grace_unmaps <- t.stats.grace_unmaps + 1;
          Hashtbl.replace t.retiring m.h_name force
        end
  end

let flush_pending t =
  let ps = t.pending in
  t.pending <- [];
  List.iter (fun f -> f ()) ps

let pending_invalidations t = List.length t.pending

let force_retiring t =
  let forces = Hashtbl.fold (fun _ f acc -> f :: acc) t.retiring [] in
  let n = List.length forces in
  List.iter (fun f -> f ()) forces;
  t.stats.forced_unmaps <- t.stats.forced_unmaps + n;
  n

let dlsym t sym = Linkmap.lookup_addr t.linked.Loader.linkmap sym
