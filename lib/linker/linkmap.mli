(** Global symbol scope with ELF-style symbol versioning and LD_PRELOAD
    interposition.

    Symbols are defined under their raw name: bare ["f"] (unversioned),
    ["f@@v2"] (version [v2], the default), or ["f@v1"] (version [v1],
    non-default).  Lookups use the same syntax: a plain reference ["f"]
    binds to the best default-version definition, a versioned reference
    ["f@v1"] to the matching version (an unversioned definition satisfies
    any version request as a fallback).

    Precedence, highest first: definitions from interposing (preloaded)
    modules, then default-version definitions, then non-default versions;
    load order breaks ties, so without versions or preloads this reduces
    to the classic first-definition-wins global scope. *)

open Dlink_isa

type entry = { symbol : string; addr : Addr.t; image_id : int }
type t

val create : unit -> t

val define :
  t -> ?preload:bool -> symbol:string -> addr:Addr.t -> image_id:int -> unit -> unit
(** Add one definition.  [preload] marks the defining module as an
    interposer (LD_PRELOAD rank). *)

val lookup : t -> string -> entry option
(** Visible binding of a (possibly versioned) reference. *)

val lookup_addr : t -> string -> Addr.t option

val symbols : t -> string list
(** Distinct base names with at least one live definition, in
    first-definition order. *)

val undefine_image : t -> image_id:int -> string list
(** Remove every definition contributed by one image (dlclose).  Returns
    the sorted base names that lost a definition — the symbols whose
    visible binding may have changed. *)
