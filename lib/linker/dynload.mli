(** Runtime dynamic loading: dlopen/dlclose over a live address space.

    Maps and unmaps modules after the initial {!Loader.load}, publishing
    and retracting their symbols in the shared {!Linkmap} (with versioning
    and LD_PRELOAD interposition rank) and keeping every live GOT
    consistent through ordinary architectural stores — the embedder's
    [store] callback — so the paper's GOT-watching hardware (Bloom filter,
    ABTB flash-clear) observes module churn exactly as it observes lazy
    resolution.

    Freed address ranges are reused first-fit: a module closed and
    reopened lands at its previous base.  That is deliberate — address
    reuse is what turns a stale ABTB entry from a dangling curiosity into
    a mis-direct hazard, which the fault plans probe.

    Under {!Mode.Stable_linking} a dlclose snapshots the module's settled
    GOT bindings; the next dlopen of the same module replays the snapshot
    through [store] after validating each entry against the current link
    map.  Valid entries skip the resolver entirely; invalidated ones fall
    back to the lazy stub, so stable linking can never install a wrong
    target. *)

open Dlink_isa

type t

type handle
(** A reference to one open module.  Refcounted: [dlopen] of an
    already-open module name returns the same handle. *)

type stats = {
  mutable opens : int;  (** successful [dlopen] mappings (not ref bumps) *)
  mutable reopens : int;  (** opens of a module that has a snapshot *)
  mutable closes : int;  (** final closes (mapping actually removed) *)
  mutable rebinds : int;
      (** GOT slots of other modules rewritten at dlclose because they
          pointed into the closed range *)
  mutable stable_hits : int;  (** snapshot entries installed on reopen *)
  mutable stable_misses : int;  (** snapshot entries rejected as stale *)
  mutable grace_unmaps : int;
      (** final closes whose unmap had to wait on the barrier (coherence
          acks still outstanding when [dlclose] returned) *)
  mutable forced_unmaps : int;
      (** grace periods resolved early — by a reopen of the retiring
          module or {!force_retiring} — timing out laggard cores *)
}

val create :
  ?seed:int ->
  store:(Addr.t -> int -> unit) ->
  read:(Addr.t -> int) ->
  Loader.t ->
  t
(** [store]/[read] are the embedder's memory path; every GOT write the
    loader performs goes through [store] so the caller can make it
    architecturally visible (retire it through the pipeline kernel).
    [seed] randomizes inter-module gaps for fresh ranges (ASLR); without
    it the runtime layout is deterministic. *)

val dlopen : t -> Dlink_obj.Objfile.t -> handle
(** Map a module (or bump the refcount of an already-open one): lays out
    text/PLT/GOT/data above the static image, publishes exports, writes
    the initial GOT and vtables through [store], and — under stable
    linking — installs the validated snapshot.  Raises {!Loader.Load_error}
    if an import does not resolve against the current link map. *)

val dlclose : ?defer_invalidate:bool -> t -> handle -> unit
(** Drop one reference; on the last one, unmap: snapshot (stable mode),
    retract the module's symbols, rewrite every surviving GOT slot that
    pointed into the module (to the new binding, or back to its lazy
    stub), zero the module's own GOT, and free the range.
    [defer_invalidate] postpones the rewrite until {!flush_pending} —
    modelling the unload-during-use window where stale bindings outlive
    the mapping.  Raises [Invalid_argument] on a closed handle. *)

val flush_pending : t -> unit
(** Run invalidations deferred by [dlclose ~defer_invalidate:true], FIFO. *)

val pending_invalidations : t -> int

(** {2 Epoch-guarded unmap grace period}

    On a multi-core topology the invalidation stores a [dlclose] issues
    travel to other cores over the coherence bus, and the unmap must not
    complete — in particular, the freed range must not become reusable —
    until every core has acknowledged them.  The embedder expresses that
    window as a barrier: called with the closing span, it arranges for
    [complete] to run once all in-flight invalidations are resolved
    (typically {!Dlink_mach.Coherence.fence}) and returns a closure that
    forces resolution now, timing out laggards.  Without a barrier
    installed (the default, and any single-core embedder) the unmap
    completes inside [dlclose] exactly as before. *)

type barrier =
  span_base:Addr.t -> span_end:Addr.t -> complete:(unit -> unit) -> unit -> unit

val set_unmap_barrier : t -> barrier option -> unit

val generation : t -> int
(** The mapping-generation clock: bumped on every map and completed
    unmap.  Stamp coherence messages with {!generation_at} of their slot
    and validate on delivery to detect messages that outlived their
    mapping (the first-fit ABA hazard). *)

val generation_at : t -> Addr.t -> int option
(** Generation of the mapping owning [addr] ([Some 0] for statically
    loaded images, [None] if unmapped). *)

val retiring_count : t -> int
(** Modules whose unmap is still waiting on the barrier. *)

val force_retiring : t -> int
(** Force every pending grace period to resolve now (laggard cores are
    timed out through the barrier), returning how many were forced.  Used
    at end of run / before tearing down the topology. *)

val dlsym : t -> string -> Addr.t option
(** Current visible binding of a (possibly versioned) symbol reference. *)

val is_open : t -> handle -> bool

val base_of : t -> handle -> Addr.t
(** Raises [Invalid_argument] on a closed handle. *)

val image_of : t -> handle -> Image.t option

val stats : t -> stats
val linked : t -> Loader.t
