(** Binding strategies the loader supports.

    - [Lazy_binding]: ELF default; GOT entries start pointing back into the
      PLT stub so the first call routes through the dynamic resolver.
    - [Eager_binding]: BIND_NOW; GOT entries are resolved at load time, so
      trampolines always jump straight to the target (but still execute).
    - [Static_link]: no PLT/GOT; calls are lowered to direct calls.
    - [Patched]: the paper's software emulation of the proposed hardware
      (§4): sections are laid out as in lazy binding, but every library call
      site is patched at load time into a direct call, and the patched code
      pages are recorded for the §5.5 memory-overhead analysis.
    - [Stable_linking]: lazy layout, but modules that have been resolved
      before reload a pre-resolved GOT snapshot (validated against the
      current link map) instead of re-running the resolver — the
      pre-resolved-GOT cache of "Stable Linking" (arXiv 2501.06716).  The
      snapshot install is performed through ordinary GOT stores, so the
      ABTB Bloom guard observes every rebinding. *)

type t = Lazy_binding | Eager_binding | Static_link | Patched | Stable_linking

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}; [None] for unknown names. *)

val all : t list
val names : string list
(** Mode names in declaration order, for CLI listings. *)

val uses_plt : t -> bool
(** Whether calls are routed through PLT trampolines at run time. *)
