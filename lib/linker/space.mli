(** The process address space: mapped module images and fast PC lookup.
    Mutable: {!add}/{!remove} support runtime loading (dlopen/dlclose). *)

open Dlink_isa

type t

val create : Image.t list -> t
(** Raises [Invalid_argument] if any two images overlap. *)

val add : t -> Image.t -> unit
(** Map one more image.  Raises [Invalid_argument] on an overlap or a
    duplicate id/name. *)

val remove : t -> int -> unit
(** Unmap the image with this id.  Raises [Invalid_argument] if absent. *)

val images : t -> Image.t array
(** In ascending base-address order. *)

val image_at : t -> Addr.t -> Image.t option
(** Image containing the address (binary search with a one-entry memo for
    the common same-module case). *)

val fetch : t -> Addr.t -> (Image.t * Insn.t) option
(** Instruction at a PC together with its defining image. *)

val image_by_id : t -> int -> Image.t option
val image_by_name : t -> string -> Image.t option
