type t = {
  mutable sorted : Image.t array; (* ascending by text.base *)
  by_id : (int, Image.t) Hashtbl.t;
  by_name : (string, Image.t) Hashtbl.t;
  mutable memo : Image.t option; (* last successful lookup *)
}

let check_overlaps sorted =
  for i = 0 to Array.length sorted - 2 do
    if Image.span_end sorted.(i) > sorted.(i + 1).Image.text.base then
      invalid_arg
        (Printf.sprintf "Space: images %s and %s overlap" sorted.(i).Image.name
           sorted.(i + 1).Image.name)
  done

let create images =
  let sorted = Array.of_list images in
  Array.sort (fun (a : Image.t) b -> compare a.text.base b.text.base) sorted;
  check_overlaps sorted;
  let by_id = Hashtbl.create 16 and by_name = Hashtbl.create 16 in
  Array.iter
    (fun (img : Image.t) ->
      Hashtbl.replace by_id img.id img;
      Hashtbl.replace by_name img.name img)
    sorted;
  { sorted; by_id; by_name; memo = None }

let add t (img : Image.t) =
  if Hashtbl.mem t.by_id img.id then
    invalid_arg (Printf.sprintf "Space.add: duplicate image id %d" img.id);
  if Hashtbl.mem t.by_name img.name then
    invalid_arg (Printf.sprintf "Space.add: duplicate module %s" img.name);
  let sorted = Array.append t.sorted [| img |] in
  Array.sort (fun (a : Image.t) b -> compare a.text.base b.text.base) sorted;
  check_overlaps sorted;
  t.sorted <- sorted;
  Hashtbl.replace t.by_id img.id img;
  Hashtbl.replace t.by_name img.name img;
  t.memo <- None

let remove t id =
  match Hashtbl.find_opt t.by_id id with
  | None -> invalid_arg (Printf.sprintf "Space.remove: unknown image id %d" id)
  | Some img ->
      t.sorted <-
        Array.of_list
          (List.filter
             (fun (i : Image.t) -> i.id <> id)
             (Array.to_list t.sorted));
      Hashtbl.remove t.by_id id;
      Hashtbl.remove t.by_name img.Image.name;
      t.memo <- None

let images t = t.sorted

let image_at t a =
  match t.memo with
  | Some img when Image.contains img a -> Some img
  | _ ->
      let n = Array.length t.sorted in
      (* rightmost image whose base <= a *)
      let rec search lo hi =
        if lo >= hi then lo - 1
        else
          let mid = (lo + hi) / 2 in
          if t.sorted.(mid).Image.text.base <= a then search (mid + 1) hi
          else search lo mid
      in
      let i = search 0 n in
      if i < 0 then None
      else
        let img = t.sorted.(i) in
        if Image.contains img a then begin
          t.memo <- Some img;
          Some img
        end
        else None

let fetch t a =
  match image_at t a with
  | None -> None
  | Some img -> (
      match Image.fetch img a with Some i -> Some (img, i) | None -> None)

let image_by_id t id = Hashtbl.find_opt t.by_id id
let image_by_name t name = Hashtbl.find_opt t.by_name name
