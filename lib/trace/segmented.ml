module Sim = Dlink_core.Sim
module Kernel = Dlink_pipeline.Kernel
module Counters = Dlink_uarch.Counters
module Dpool = Dlink_util.Dpool
module Latency = Dlink_stats.Latency

(* Snapshot-segmented trace replay.

   Replay of a packed trace is inherently sequential — the kernel state
   request i leaves behind determines request i+1's cycle accounting —
   so one pass over a million-request trace pins a single core.  The
   segmentation protocol splits the measured region into fixed-length
   segments and makes the boundary states explicit: a sequential
   harvesting pass ([plan]) takes a {!Kernel.snapshot} at each segment
   boundary, and [replay] then re-executes the segments concurrently,
   each worker restoring its boundary snapshot into a fresh replay
   machine and seeking the (immutable, shared) trace to its first
   request.  Because the snapshot captures everything the retire
   pipeline reads or writes, a segment's replay is bit-identical to the
   same span of the sequential pass, at any worker count.

   Merging is a deterministic index fold on the calling domain
   ({!Dpool.run_ordered}): per-segment counter deltas are summed in
   segment order (counters are additive event counts, so the telescoped
   sum equals the sequential measured delta exactly), per-segment
   service-time recorders fold with {!Latency.merge}, and the optional
   [consume] callback sees every per-request service time in strict
   request-index order — which is how the serving driver streams a
   parallel replay straight into its queue engine without ever
   materializing the service vector.

   The plan costs one sequential pass, so segmented replay pays off when
   its snapshots are reused — several load levels over one (mode, trace)
   pair, repeated benchmark iterations — or when the plan falls out of a
   pass that was needed anyway (the serving driver's base-mode
   calibration). *)

type plan = {
  p_mode : Sim.mode;
  p_seg_len : int;
  p_seg_count : int;
  p_requests : int;
  p_warmup : int;
  p_snaps : Kernel.snap array;
}

let seg_len p = p.p_seg_len
let seg_count p = p.p_seg_count
let requests p = p.p_requests

(* At most 256 resident snapshots: a snapshot is dominated by the uarch
   table blits (a few MB at default geometry), so the cap bounds plan
   memory while leaving far more segments than any realistic domain
   count needs. *)
let max_segments = 256

let choose_seg_len ~segment ~jobs n =
  let cap_len = ((n - 1) / max_segments) + 1 in
  match segment with
  | Some k when k <= 0 ->
      invalid_arg "Segmented.plan: segment must be positive"
  | Some k -> max k cap_len
  | None ->
      let target = max 4 (min 32 (4 * max 1 jobs)) in
      max cap_len (((n - 1) / target) + 1)

let plan ?ucfg ?skip_cfg ?(jobs = 1) ?segment ?requests ~mode tr =
  let measured = Trace.measured_requests tr in
  let n = Option.value requests ~default:measured in
  if n <= 0 then invalid_arg "Segmented.plan: no measured requests";
  if n > measured then
    invalid_arg "Segmented.plan: trace holds fewer measured requests";
  let seg_len = choose_seg_len ~segment ~jobs n in
  let seg_count = ((n - 1) / seg_len) + 1 in
  let m = Replay.make_machine ?ucfg ?skip_cfg ~mode () in
  let c = Trace.Cursor.create tr in
  let warmup = Trace.warmup tr in
  for r = 0 to warmup - 1 do
    Kernel.note_boundary m ~rtype:(Trace.request_rtype tr r);
    Kernel.replay_request m c r
  done;
  let snaps = Array.make seg_count None in
  for i = 0 to n - 1 do
    if i mod seg_len = 0 then snaps.(i / seg_len) <- Some (Kernel.snapshot m);
    let r = warmup + i in
    Kernel.note_boundary m ~rtype:(Trace.request_rtype tr r);
    Kernel.replay_request m c r
  done;
  {
    p_mode = mode;
    p_seg_len = seg_len;
    p_seg_count = seg_count;
    p_requests = n;
    p_warmup = warmup;
    p_snaps = Array.map (function Some s -> s | None -> assert false) snaps;
  }

let replay ?ucfg ?skip_cfg ?(jobs = 1) ?consume (p : plan) tr =
  if Trace.warmup tr <> p.p_warmup || Trace.measured_requests tr < p.p_requests
  then invalid_arg "Segmented.replay: trace does not match the plan";
  let total = Counters.create () in
  let recorder = Latency.create () in
  Dpool.run_ordered ~jobs
    ~produce:(fun j ->
      let m = Replay.make_machine ?ucfg ?skip_cfg ~mode:p.p_mode () in
      Kernel.restore m p.p_snaps.(j);
      let c = Trace.Cursor.create tr in
      let counters = Kernel.counters m in
      let before = Counters.copy counters in
      let lo = j * p.p_seg_len in
      let hi = min p.p_requests (lo + p.p_seg_len) in
      let services = Array.make (hi - lo) 0 in
      let seg_rec = Latency.create () in
      for i = lo to hi - 1 do
        let r = p.p_warmup + i in
        Kernel.note_boundary m ~rtype:(Trace.request_rtype tr r);
        let b = counters.Counters.cycles in
        Kernel.replay_request m c r;
        let s = counters.Counters.cycles - b in
        services.(i - lo) <- s;
        Latency.record seg_rec (float_of_int s)
      done;
      (services, Counters.diff ~after:counters ~before, seg_rec))
    ~consume:(fun j (services, dc, seg_rec) ->
      Counters.add ~into:total dc;
      Latency.merge ~into:recorder seg_rec;
      match consume with
      | None -> ()
      | Some f ->
          Array.iteri
            (fun k s -> f ~req:((j * p.p_seg_len) + k) ~service:s)
            services)
    p.p_seg_count;
  (total, recorder)
