module Sim = Dlink_core.Sim
module Serve = Dlink_core.Serve
module Workload = Dlink_core.Workload
module Counters = Dlink_uarch.Counters
module Kernel = Dlink_pipeline.Kernel
module Dpool = Dlink_util.Dpool

(* Replay mirror of Dlink_core.Serve: the same open-loop queue engine fed
   by packed-trace replay instead of live interpretation.  Service times
   come from [Kernel.replay_request] against the cached trace, so a sweep
   records each (workload, mode) stream once and replays it at every load
   level — and because the queueing arithmetic is shared and the kernel is
   bit-identical across event sources, per-request latencies match the
   generate driver bit for bit (asserted by the pipeline equivalence
   matrix). *)

let calibrate ?ucfg ?skip_cfg ?requests ?warmup (w : Workload.t) =
  let n = Option.value requests ~default:w.Workload.default_requests in
  let tr = Cache.get ?warmup ~requests:n ~mode:Sim.Base w in
  let c = Replay.replay_counters ?ucfg ?skip_cfg ~mode:Sim.Base ~requests:n tr in
  max 1 (c.Counters.cycles / max 1 n)

(* One cell over a (pre-recorded) trace.  Falls back to the generate
   driver for configurations the replay invariants exclude, like
   [Replay.run].

   Three replay shapes share the measured loop:
   - default: materialized service vector + [Serve.run_queue], unchanged
     from the classic path (small cells, open loop);
   - streaming: the same sequential loop pushed through
     [Serve.stream_queue] — required for closed-loop arrivals (coupled to
     completions) and for cells too large to materialize;
   - segmented ([jobs > 1] or an explicit [segment], [No_flush] only —
     flush policy is keyed to the serve stream and would cross segment
     boundaries): [Segmented.plan] harvests boundary snapshots in one
     sequential pass, then [Segmented.replay] re-executes segments on
     worker domains, streaming service times into the queue engine in
     index order.  Bit-identical to the sequential paths at any [jobs]
     (pinned by test_serve). *)
let run_cell ?ucfg ?skip_cfg ?mean_service ?tr ?(jobs = 1) ?segment ~cfg
    (w : Workload.t) =
  Serve.check_config cfg;
  let closed =
    match cfg.Serve.arrival with
    | Dlink_util.Arrival.Closed _ -> true
    | _ -> false
  in
  if not (Replay.compatible ?skip_cfg ~mode:cfg.Serve.mode ()) then
    if closed || cfg.Serve.requests > Serve.lat_keep_cap then
      Serve.run_cell_stream ?ucfg ?skip_cfg ?mean_service ~jobs ?segment ~cfg w
    else Serve.run_cell_generate ?ucfg ?skip_cfg ?mean_service ~cfg w
  else begin
    let mean_service =
      match mean_service with
      | Some m -> m
      | None -> calibrate ?ucfg ?skip_cfg ~requests:cfg.Serve.requests w
    in
    let tr =
      match tr with
      | Some tr -> tr
      | None -> Cache.get ~requests:cfg.Serve.requests ~mode:cfg.Serve.mode w
    in
    let segmented =
      (jobs > 1 || segment <> None)
      && cfg.Serve.flush = Serve.No_flush
      && cfg.Serve.requests > 0
    in
    if segmented then begin
      let p =
        Segmented.plan ?ucfg ?skip_cfg ~jobs ?segment
          ~requests:cfg.Serve.requests ~mode:cfg.Serve.mode tr
      in
      let a = Serve.stream_accum w ~requests:cfg.Serve.requests in
      let sq = Serve.stream_queue ~cfg ~mean_service ~sink:(Serve.accum_sink a) in
      let counters, _service_rec =
        Segmented.replay ?ucfg ?skip_cfg ~jobs
          ~consume:(fun ~req ~service -> Serve.stream_push sq ~req ~service)
          p tr
      in
      Serve.finish_stream_cell ~cfg ~mean_service
        ~segments:(Segmented.seg_count p) ~sq ~a ~counters
    end
    else begin
      let m = Replay.make_machine ?ucfg ?skip_cfg ~mode:cfg.Serve.mode () in
      let c = Trace.Cursor.create tr in
      let warmup = Trace.warmup tr in
      for r = 0 to warmup - 1 do
        Kernel.note_boundary m ~rtype:(Trace.request_rtype tr r);
        Kernel.replay_request m c r
      done;
      let counters = Kernel.counters m in
      let snapshot = Counters.copy counters in
      let streaming = closed || cfg.Serve.requests > Serve.lat_keep_cap in
      let services =
        if streaming then [||] else Array.make cfg.Serve.requests 0
      in
      let a =
        if streaming then Some (Serve.stream_accum w ~requests:cfg.Serve.requests)
        else None
      in
      let sq =
        match a with
        | Some a -> Some (Serve.stream_queue ~cfg ~mean_service ~sink:(Serve.accum_sink a))
        | None -> None
      in
      for i = 0 to cfg.Serve.requests - 1 do
        (match cfg.Serve.flush with
        | Serve.No_flush -> ()
        | Serve.Flush when i > 0 && i mod cfg.Serve.flush_every = 0 ->
            Kernel.context_switch m
        | Serve.Asid when i > 0 && i mod cfg.Serve.flush_every = 0 ->
            Kernel.context_switch ~retain_asid:true m
        | Serve.Flush | Serve.Asid -> ());
        let r = warmup + i in
        Kernel.note_boundary m ~rtype:(Trace.request_rtype tr r);
        let before = counters.Counters.cycles in
        Kernel.replay_request m c r;
        let s = counters.Counters.cycles - before in
        match sq with
        | Some sq -> Serve.stream_push sq ~req:i ~service:s
        | None -> services.(i) <- s
      done;
      let measured = Counters.diff ~after:counters ~before:snapshot in
      match (sq, a) with
      | Some sq, Some a ->
          Serve.finish_stream_cell ~cfg ~mean_service ~segments:1 ~sq ~a
            ~counters:measured
      | _ ->
          let qs = Serve.run_queue ~cfg ~mean_service ~services in
          Serve.finish_cell ~cfg ~w ~mean_service ~segments:1 ~qs
            ~counters:measured
    end
  end

(* Load x mode x flush sweep on the shared-memory domain pool.  Traces
   and the calibration are computed once, sequentially, before the pool
   spins up — cells then only read immutable trace values, so the merge
   is deterministic regardless of [jobs]. *)
let sweep ?ucfg ?skip_cfg ?jobs ?(cfg = Serve.default_config) ~loads ~modes
    ~flushes (w : Workload.t) =
  if loads = [] then invalid_arg "Serve_replay.sweep: no loads";
  if modes = [] then invalid_arg "Serve_replay.sweep: no modes";
  if flushes = [] then invalid_arg "Serve_replay.sweep: no flushes";
  List.iter
    (fun load -> Serve.check_config { cfg with Serve.load })
    loads;
  let mean_service =
    calibrate ?ucfg ?skip_cfg ~requests:cfg.Serve.requests w
  in
  let traces =
    List.map
      (fun mode ->
        let tr =
          if Replay.compatible ?skip_cfg ~mode () then
            Some (Cache.get ~requests:cfg.Serve.requests ~mode w)
          else None
        in
        (mode, tr))
      (List.sort_uniq compare modes)
  in
  let combos =
    List.concat_map
      (fun mode ->
        List.concat_map
          (fun flush ->
            List.map (fun load -> (mode, flush, load)) loads)
          flushes)
      modes
  in
  Dpool.map ?jobs
    (fun (mode, flush, load) ->
      let cfg = { cfg with Serve.mode; flush; load } in
      let tr = Option.join (List.assoc_opt mode traces) in
      run_cell ?ucfg ?skip_cfg ~mean_service ?tr ~cfg w)
    combos
