module Sim = Dlink_core.Sim
module Skip = Dlink_core.Skip
module Workload = Dlink_core.Workload
module Engine = Dlink_uarch.Engine
module Counters = Dlink_uarch.Counters
module Config = Dlink_uarch.Config
module Coherence = Dlink_mach.Coherence
module Policy = Dlink_sched.Policy
module Quantum_sweep = Dlink_sched.Quantum_sweep
module Parallel = Dlink_util.Parallel

(* Replay mirror of Dlink_sched.Scheduler: per-process cursors into
   single-process traces, per-core replay machines, and the same
   dispatch/quantum/rotation/coherence logic.  Each process's
   architectural stream is independent of scheduling (processes share no
   memory), so the interleaving is purely a replay-order decision — which
   is why one recording per workload serves every (quantum, policy)
   combination of a sweep. *)

type rproc = {
  pid : int;
  asid : int;
  pname : string;
  workload : Workload.t;
  cursor : Trace.Cursor.t;
  core_id : int;
  counters : Counters.t;
  mutable next_request : int;
  mutable remaining : int;
  mutable lat_us_rev : float list;
}

type rcore = {
  core_id : int;
  machine : Replay.machine;
  mutable runq : rproc list;
  mutable running : int; (* pid, -1 = none *)
  mutable switches : int;
}

type t = {
  policy : Policy.t;
  quantum : int;
  cores : rcore array;
  procs : rproc array;
  bus : Coherence.t;
}

type result = {
  system : Counters.t;
  switches : int;
  per_proc : (string * Counters.t * float array) list;
}

let create ?(ucfg = Config.xeon_e5450) ?skip_cfg ?(mode = Sim.Enhanced)
    ?requests ~policy ~quantum ~cores (pairs : (Workload.t * Trace.t) list) =
  if quantum <= 0 then
    invalid_arg "Sched_replay.create: quantum must be positive";
  if cores <= 0 then invalid_arg "Sched_replay.create: cores must be positive";
  if pairs = [] then invalid_arg "Sched_replay.create: no workloads";
  if not (Replay.compatible ?skip_cfg ~mode ()) then
    invalid_arg "Sched_replay.create: configuration is not replay-compatible";
  let bus = Coherence.create () in
  let n_cores = min cores (List.length pairs) in
  let cores_arr =
    Array.init n_cores (fun core_id ->
        let machine = Replay.make_machine ~ucfg ?skip_cfg ~mode () in
        (match machine.Replay.skip with
        | Some s ->
            Coherence.subscribe bus ~core:core_id (fun ~src:_ addr ->
                Skip.on_remote_store s addr)
        | None -> ());
        { core_id; machine; runq = []; running = -1; switches = 0 })
  in
  let procs =
    Array.of_list
      (List.mapi
         (fun pid ((w : Workload.t), tr) ->
           if Trace.warmup tr <> 0 then
             invalid_arg "Sched_replay.create: scheduler traces use warmup 0";
           let remaining =
             Option.value requests ~default:w.Workload.default_requests
           in
           if remaining > Trace.measured_requests tr then
             invalid_arg "Sched_replay.create: trace shorter than run";
           {
             pid;
             asid = pid + 1;
             pname = w.Workload.wname;
             workload = w;
             cursor = Trace.Cursor.create tr;
             core_id = pid mod n_cores;
             counters = Counters.create ();
             next_request = 0;
             remaining;
             lat_us_rev = [];
           })
         pairs)
  in
  Array.iter
    (fun (p : rproc) ->
      let c = cores_arr.(p.core_id) in
      c.runq <- c.runq @ [ p ])
    procs;
  { policy; quantum; cores = cores_arr; procs; bus }

let dispatch t c p =
  if c.running <> p.pid then begin
    if c.running >= 0 then begin
      c.switches <- c.switches + 1;
      match t.policy with
      | Policy.Flush -> Replay.context_switch c.machine
      | Policy.Asid | Policy.Asid_shared_guard ->
          Replay.context_switch ~retain_asid:true c.machine
    end;
    Engine.set_asid c.machine.Replay.engine p.asid;
    Option.iter (fun s -> Skip.set_asid s p.asid) c.machine.Replay.skip;
    c.running <- p.pid
  end

let run_quantum t c p =
  dispatch t c p;
  let counters = c.machine.Replay.counters in
  let before = Counters.copy counters in
  let publish =
    if t.policy = Policy.Asid_shared_guard then
      Some (fun addr -> Coherence.publish t.bus ~src:c.core_id addr)
    else None
  in
  let n = min t.quantum p.remaining in
  for _ = 1 to n do
    let cycles_before = counters.Counters.cycles in
    Replay.replay_request c.machine ?on_got_store:publish p.cursor
      p.next_request;
    p.next_request <- p.next_request + 1;
    let cycles = counters.Counters.cycles - cycles_before in
    p.lat_us_rev <- Workload.cycles_to_us p.workload cycles :: p.lat_us_rev;
    p.remaining <- p.remaining - 1
  done;
  ignore (Coherence.drain t.bus);
  Counters.add ~into:p.counters (Counters.diff ~after:counters ~before)

let next_runnable c =
  let n = List.length c.runq in
  let rec go i =
    if i >= n then None
    else
      match c.runq with
      | [] -> None
      | p :: rest ->
          c.runq <- rest @ [ p ];
          if p.remaining > 0 then Some p else go (i + 1)
  in
  go 0

let step t =
  let progressed = ref false in
  Array.iter
    (fun c ->
      match next_runnable c with
      | Some p ->
          progressed := true;
          run_quantum t c p
      | None -> ())
    t.cores;
  !progressed

let run_to_completion t =
  while step t do
    ()
  done;
  let system = Counters.create () in
  Array.iter
    (fun c -> Counters.add ~into:system c.machine.Replay.counters)
    t.cores;
  {
    system;
    switches =
      Array.fold_left (fun acc (c : rcore) -> acc + c.switches) 0 t.cores;
    per_proc =
      Array.to_list
        (Array.map
           (fun p ->
             (p.pname, p.counters, Array.of_list (List.rev p.lat_us_rev)))
           t.procs);
  }

let run ?ucfg ?skip_cfg ?mode ?requests ~policy ~quantum ~cores pairs =
  run_to_completion
    (create ?ucfg ?skip_cfg ?mode ?requests ~policy ~quantum ~cores pairs)

let point_of_result ~quantum ~policy (r : result) =
  let c = r.system in
  {
    Quantum_sweep.quantum;
    policy;
    skip_pct =
      100.0
      *. float_of_int c.Counters.tramp_skips
      /. float_of_int (max 1 c.Counters.tramp_calls);
    cpi =
      float_of_int c.Counters.cycles /. float_of_int (max 1 c.Counters.instructions);
    cycles = c.Counters.cycles;
    instructions = c.Counters.instructions;
    abtb_clears = c.Counters.abtb_clears;
    coherence_invalidations = c.Counters.coherence_invalidations;
    switches = r.switches;
  }

let sweep ?ucfg ?skip_cfg ?(mode = Sim.Enhanced) ?requests ?(cores = 1) ?jobs
    ?(policies = [ Policy.Flush; Policy.Asid ])
    ?(quanta = Quantum_sweep.default_quanta) workloads =
  (* One recording per workload serves the whole grid; forked sweep
     workers inherit the warm cache copy-on-write. *)
  let pairs =
    List.map
      (fun (w : Workload.t) ->
        (w, Cache.get ~warmup:0 ?requests ~mode w))
      workloads
  in
  let combos =
    List.concat_map
      (fun quantum -> List.map (fun policy -> (quantum, policy)) policies)
      quanta
  in
  Parallel.map ?jobs
    (fun (quantum, policy) ->
      point_of_result ~quantum ~policy
        (run ?ucfg ?skip_cfg ~mode ?requests ~policy ~quantum ~cores pairs))
    combos
