module Sim = Dlink_core.Sim
module Skip = Dlink_pipeline.Skip
module Workload = Dlink_core.Workload
module Counters = Dlink_uarch.Counters
module Kernel = Dlink_pipeline.Kernel
module Multi = Dlink_pipeline.Multi
module Policy = Dlink_sched.Policy
module Quantum_sweep = Dlink_sched.Quantum_sweep
module Dpool = Dlink_util.Dpool

(* Replay mirror of Dlink_sched.Scheduler: per-process cursors into
   single-process traces driving the same multi-core kernel topology
   ([Dlink_pipeline.Multi]) the live scheduler uses — dispatch, ASID
   switching, quantum accounting, and coherence are literally the same
   code.  Each process's architectural stream is independent of scheduling
   (processes share no memory), so the interleaving is purely a
   replay-order decision — which is why one recording per workload serves
   every (quantum, policy) combination of a sweep. *)

type t = { m : Multi.t; names : string array }

type result = {
  system : Counters.t;
  switches : int;
  per_proc : (string * Counters.t * float array) list;
}

let create ?ucfg ?skip_cfg ?(mode = Sim.Enhanced) ?requests ~policy ~quantum
    ~cores (pairs : (Workload.t * Trace.t) list) =
  if quantum <= 0 then
    invalid_arg "Sched_replay.create: quantum must be positive";
  if cores <= 0 then invalid_arg "Sched_replay.create: cores must be positive";
  if pairs = [] then invalid_arg "Sched_replay.create: no workloads";
  if not (Replay.compatible ?skip_cfg ~mode ()) then
    invalid_arg "Sched_replay.create: configuration is not replay-compatible";
  let specs =
    List.mapi
      (fun pid ((w : Workload.t), tr) ->
        if Trace.warmup tr <> 0 then
          invalid_arg "Sched_replay.create: scheduler traces use warmup 0";
        let requests =
          Option.value requests ~default:w.Workload.default_requests
        in
        if requests > Trace.measured_requests tr then
          invalid_arg "Sched_replay.create: trace shorter than run";
        {
          Multi.asid = pid + 1;
          requests;
          cycles_to_us = Workload.cycles_to_us w;
        })
      pairs
  in
  let m =
    Multi.create ?ucfg ?skip_cfg
      ~with_skip:(mode = Sim.Enhanced)
      ~policy ~quantum ~cores specs
  in
  let cursors =
    Array.of_list (List.map (fun (_, tr) -> Trace.Cursor.create tr) pairs)
  in
  let traces = Array.of_list (List.map snd pairs) in
  Multi.set_exec m (fun c ~pid ~req ->
      Kernel.note_boundary (Multi.kernel c)
        ~rtype:(Trace.request_rtype traces.(pid) req);
      Kernel.replay_request (Multi.kernel c) cursors.(pid) req);
  {
    m;
    names =
      Array.of_list (List.map (fun ((w : Workload.t), _) -> w.Workload.wname) pairs);
  }

let run_to_completion t =
  Multi.run t.m;
  {
    system = Multi.system_counters t.m;
    switches = Multi.switches t.m;
    per_proc =
      Array.to_list
        (Array.mapi
           (fun pid name ->
             (name, Multi.proc_counters t.m pid, Multi.latencies_us t.m pid))
           t.names);
  }

let run ?ucfg ?skip_cfg ?mode ?requests ~policy ~quantum ~cores pairs =
  run_to_completion
    (create ?ucfg ?skip_cfg ?mode ?requests ~policy ~quantum ~cores pairs)

let point_of_result ~quantum ~policy (r : result) =
  let c = r.system in
  {
    Quantum_sweep.quantum;
    policy;
    skip_pct =
      100.0
      *. float_of_int c.Counters.tramp_skips
      /. float_of_int (max 1 c.Counters.tramp_calls);
    cpi =
      float_of_int c.Counters.cycles /. float_of_int (max 1 c.Counters.instructions);
    cycles = c.Counters.cycles;
    instructions = c.Counters.instructions;
    abtb_clears = c.Counters.abtb_clears;
    coherence_invalidations = c.Counters.coherence_invalidations;
    switches = r.switches;
  }

let sweep ?ucfg ?skip_cfg ?(mode = Sim.Enhanced) ?requests ?(cores = 1) ?jobs
    ?(policies = [ Policy.Flush; Policy.Asid ])
    ?(quanta = Quantum_sweep.default_quanta) workloads =
  (* One recording per workload serves the whole grid; sweep cells run
     on the shared-memory domain pool and read the same trace values
     (immutable once recorded — each cell builds its own kernels). *)
  let pairs =
    List.map
      (fun (w : Workload.t) ->
        (w, Cache.get ~warmup:0 ?requests ~mode w))
      workloads
  in
  let combos =
    List.concat_map
      (fun quantum -> List.map (fun policy -> (quantum, policy)) policies)
      quanta
  in
  Dpool.map ?jobs
    (fun (quantum, policy) ->
      point_of_result ~quantum ~policy
        (run ?ucfg ?skip_cfg ~mode ?requests ~policy ~quantum ~cores pairs))
    combos
