(* Compatibility alias: the packed trace format moved into the pipeline
   kernel library ([Dlink_pipeline.Trace]) so the kernel's replay event
   source can consume cursors directly; [include] keeps [Dlink_trace.Trace]
   type-equal for existing users. *)
include Dlink_pipeline.Trace
