(** Snapshot-segmented trace replay: split a packed trace's measured
    region into fixed-length segments, capture the kernel state at each
    boundary during one sequential harvesting pass, then replay the
    segments concurrently on worker domains — bit-identical to the
    sequential pass at any worker count, with a deterministic
    segment-order merge of counters and latency recorders on the calling
    domain.

    The plan costs one sequential pass, so segmentation pays off when the
    snapshots are reused (several load levels over one (mode, trace)
    pair, repeated bench iterations) or when the harvesting pass was
    needed anyway (the serving driver's base-mode calibration). *)

module Sim = Dlink_core.Sim
module Kernel = Dlink_pipeline.Kernel
module Counters = Dlink_uarch.Counters
module Latency = Dlink_stats.Latency

type plan
(** Segment geometry plus the boundary {!Kernel.snap}s of one sequential
    replay of a specific (mode, trace) pair. *)

val seg_len : plan -> int
val seg_count : plan -> int

val requests : plan -> int
(** Measured requests the plan covers (segments tile [0 .. requests-1]). *)

val max_segments : int
(** Resident-snapshot cap; [segment] is clamped up so a plan never holds
    more than this many snapshots. *)

val plan :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?jobs:int ->
  ?segment:int ->
  ?requests:int ->
  mode:Sim.mode ->
  Trace.t ->
  plan
(** Sequential harvesting pass: replay warmup plus [requests] (default:
    all) measured requests on a fresh machine, snapshotting the kernel
    every [segment] requests (default: requests spread over [4 * jobs]
    segments, clamped to [4, 32]).  Raises [Invalid_argument] on a
    non-positive [segment], an empty measured region, or a trace holding
    fewer than [requests] measured requests. *)

val replay :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?jobs:int ->
  ?consume:(req:int -> service:int -> unit) ->
  plan ->
  Trace.t ->
  Counters.t * Latency.t
(** Parallel ordered re-execution of the plan's segments over the same
    trace, on up to [jobs] domains ({!Dlink_util.Dpool.run_ordered}).
    Returns the measurement-window counter deltas (per-segment deltas
    summed in segment order; bit-identical to a sequential replay) and
    the merged per-segment service-time recorder (cycles;
    {!Latency.merge} in segment order).  [consume] observes every
    per-request service time in strict request-index order on the
    calling domain — the hook the serving driver streams into its queue
    engine.  Raises [Invalid_argument] if the trace's warmup or measured
    length does not match the plan. *)
