(** Replay mirror of {!Dlink_core.Serve}: open-loop serving cells whose
    service times come from packed-trace replay.  Shares the queue engine
    with the generate driver, so per-request latencies are bit-identical
    between the two for replay-compatible configurations. *)

module Sim = Dlink_core.Sim
module Serve = Dlink_core.Serve
module Workload = Dlink_core.Workload

val calibrate :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?requests:int ->
  ?warmup:int ->
  Workload.t ->
  int
(** Mean base-mode service cycles per request via counters-only replay;
    bit-identical to {!Serve.calibrate_generate}. *)

val run_cell :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?mean_service:int ->
  ?tr:Trace.t ->
  ?jobs:int ->
  ?segment:int ->
  cfg:Serve.config ->
  Workload.t ->
  Serve.cell
(** One cell over the cached (or given) trace; falls back to the
    streaming generate driver for configurations the replay invariants
    exclude.  Closed-loop arrivals and cells beyond
    {!Serve.lat_keep_cap} stream through {!Serve.stream_queue} instead
    of materializing the service vector.  With [jobs > 1] (or an
    explicit [segment]) and no flush policy, the measured replay runs
    snapshot-segmented on worker domains ({!Segmented}) — bit-identical
    to the sequential cell at any [jobs]. *)

val sweep :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?jobs:int ->
  ?cfg:Serve.config ->
  loads:float list ->
  modes:Sim.mode list ->
  flushes:Serve.flush list ->
  Workload.t ->
  Serve.cell list
(** Mode x flush x load grid (in that nesting order) on the shared-memory
    domain pool; traces and the calibration are computed before the pool
    starts, so results are deterministic and independent of [jobs].
    Raises [Invalid_argument] on an empty axis or a bad load. *)
