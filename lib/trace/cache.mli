(** Process-wide trace cache.

    Keyed by everything the architectural stream depends on — workload
    name, workload seed, ASLR seed, link mode, function alignment, warmup
    count.  Measured requests are generated from index 0 upwards, so a
    cached trace serves any request count up to its own (prefix property);
    asking for more re-records at the larger count and replaces the entry.

    [seed] is a cache-key component only: callers constructing a workload
    from a non-default seed must pass the same seed here, or traces of
    differently-seeded workloads sharing a name would collide. *)

val get :
  ?seed:int ->
  ?aslr_seed:int ->
  ?warmup:int ->
  ?requests:int ->
  mode:Dlink_core.Sim.mode ->
  Dlink_core.Workload.t ->
  Trace.t
(** Return a trace with at least [requests] measured requests (defaults:
    the workload's own counts), recording one on a miss.  Base and
    Enhanced share an entry. *)

val hits : unit -> int
val misses : unit -> int
val clear : unit -> unit
val footprint_bytes : unit -> int
