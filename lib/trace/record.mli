(** Trace compiler: run a workload's generator once through the
    architectural interpreter and pack the retire stream.

    The recording executes under an identity fetch hook and no
    microarchitecture — the architectural stream is a pure function of
    (objects, link mode, aslr seed, function alignment, request sequence),
    which is exactly the cache key {!Cache} uses. *)

val record_mode : Dlink_core.Sim.mode -> Dlink_core.Sim.mode
(** The mode actually recorded: [Enhanced] collapses to [Base] (same
    architectural stream — redirects are a replay-time decision); the
    other modes record as themselves. *)

val record :
  ?aslr_seed:int ->
  ?warmup:int ->
  ?requests:int ->
  mode:Dlink_core.Sim.mode ->
  Dlink_core.Workload.t ->
  Trace.t
(** Record [warmup] warmup requests (generator indices [-1, -2, ...]) and
    [requests] measured requests (indices [0, 1, ...]), defaulting to the
    workload's own counts.  Raises [Invalid_argument] on link errors or
    unknown request functions. *)
