module Sim = Dlink_core.Sim
module Workload = Dlink_core.Workload
module Loader = Dlink_linker.Loader
module Process = Dlink_mach.Process
module Event = Dlink_mach.Event

(* Base and Enhanced share one architectural stream: Enhanced's redirects
   are applied (and trampoline events dropped) at replay time, so both
   replay the lazy-binding recording. *)
let record_mode = function Sim.Enhanced -> Sim.Base | m -> m

let record ?aslr_seed ?warmup ?requests ~mode (w : Workload.t) =
  let mode = record_mode mode in
  let opts =
    {
      Loader.default_options with
      mode = Sim.link_mode mode;
      aslr_seed;
      func_align = w.Workload.func_align;
    }
  in
  let linked = Loader.load_exn ~opts w.Workload.objs in
  let is_plt_entry = Loader.is_plt_entry linked in
  let writer = Trace.Writer.create () in
  let on_retire (ev : Event.t) =
    let plt_call =
      match ev.Event.branch with
      | Some (Event.Call_direct { arch_target; _ }) -> is_plt_entry arch_target
      | Some (Event.Call_indirect { target; _ }) -> is_plt_entry target
      | _ -> false
    in
    let got_store =
      match ev.Event.store with
      | Some a -> Loader.in_any_got linked a
      | None -> false
    in
    Trace.Writer.add writer ~plt_call ~got_store ev
  in
  let hooks =
    { Process.on_fetch_call = (fun ~pc:_ ~arch_target -> arch_target); on_retire }
  in
  let process = Process.create ~hooks linked in
  let run_request i =
    let req = w.Workload.gen_request i in
    Trace.Writer.start_request writer ~rtype:req.Workload.rtype;
    match
      Loader.func_addr linked ~mname:req.Workload.mname ~fname:req.Workload.fname
    with
    | Some a -> Process.call process a
    | None ->
        invalid_arg
          (Printf.sprintf "Record.record: %s.%s not found" req.Workload.mname
             req.Workload.fname)
  in
  let warmup = Option.value warmup ~default:w.Workload.warmup_requests in
  let n = Option.value requests ~default:w.Workload.default_requests in
  for i = 0 to warmup - 1 do
    run_request (-1 - i)
  done;
  for i = 0 to n - 1 do
    run_request i
  done;
  Trace.Writer.finish writer ~warmup
