module Sim = Dlink_core.Sim
module Workload = Dlink_core.Workload
module Loader = Dlink_linker.Loader
module Process = Dlink_mach.Process
module Event = Dlink_mach.Event
module Kernel = Dlink_pipeline.Kernel

(* Base and Enhanced share one architectural stream: Enhanced's redirects
   are applied (and trampoline events dropped) at replay time, so both
   replay the lazy-binding recording. *)
let record_mode = function Sim.Enhanced -> Sim.Base | m -> m

let record ?aslr_seed ?warmup ?requests ~mode (w : Workload.t) =
  let mode = record_mode mode in
  let opts =
    {
      Loader.default_options with
      mode = Sim.link_mode mode;
      aslr_seed;
      func_align = w.Workload.func_align;
    }
  in
  let linked = Loader.load_exn ~opts w.Workload.objs in
  let is_plt_entry = Loader.is_plt_entry linked in
  let writer = Trace.Writer.create () in
  (* Classify with the kernel's own predicates, so the flag bits a replay
     consumes are by construction the bits the unified retire path would
     compute live. *)
  let in_got = Loader.in_any_got linked in
  let on_retire (ev : Event.t) =
    Trace.Writer.add writer
      ~plt_call:(Kernel.plt_call_of ~is_plt_entry ev)
      ~got_store:(Kernel.got_store_of ~in_got ev)
      ev
  in
  let hooks =
    { Process.on_fetch_call = (fun ~pc:_ ~arch_target -> arch_target); on_retire }
  in
  let process = Process.create ~hooks linked in
  let run_request i =
    let req = w.Workload.gen_request i in
    Trace.Writer.start_request writer ~rtype:req.Workload.rtype;
    match
      Loader.func_addr linked ~mname:req.Workload.mname ~fname:req.Workload.fname
    with
    | Some a -> Process.call process a
    | None ->
        invalid_arg
          (Printf.sprintf "Record.record: %s.%s not found" req.Workload.mname
             req.Workload.fname)
  in
  let warmup = Option.value warmup ~default:w.Workload.warmup_requests in
  let n = Option.value requests ~default:w.Workload.default_requests in
  for i = 0 to warmup - 1 do
    run_request (-1 - i)
  done;
  for i = 0 to n - 1 do
    run_request i
  done;
  Trace.Writer.finish writer ~warmup
