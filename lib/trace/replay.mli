(** Replay-mode execution: drive the microarchitecture (and, for Enhanced
    mode, the skip controller) from a packed trace instead of the
    architectural interpreter.

    Equivalence contract: for replay-compatible configurations (see
    {!compatible}) the counters, latencies, and profile of a replayed run
    are bit-identical to the event-path run, because every decision the
    retire chain makes is a function of data the trace carries.  The
    enhanced replay re-makes the skip decision per call — redirects are
    NOT baked into the trace — so BTB/ABTB/Bloom state evolves exactly as
    in generate mode. *)

open Dlink_isa
module Sim = Dlink_core.Sim
module Skip = Dlink_core.Skip
module Profile = Dlink_core.Profile
module Experiment = Dlink_core.Experiment
module Counters = Dlink_uarch.Counters

val compatible : ?skip_cfg:Skip.config -> mode:Sim.mode -> unit -> bool
(** Whether (mode, skip_cfg) can be replayed: everything except Enhanced
    with [filter_fallthrough = false] (resolver-transient ABTB entries
    would redirect into a continuation the trace doesn't hold) or with
    [verify_targets] (replay has no GOT to verify against). *)

type machine = {
  engine : Dlink_uarch.Engine.t;
  counters : Counters.t;
  skip : Skip.t option;
}
(** One core's replay state: engine + counters + (Enhanced) skip unit,
    wired exactly as [Sim.create] wires them.  Exposed so the scheduler
    replay can run several machines against interleaved cursors. *)

val make_machine :
  ?ucfg:Dlink_uarch.Config.t -> ?skip_cfg:Skip.config -> mode:Sim.mode ->
  unit -> machine

val context_switch : ?retain_asid:bool -> machine -> unit
(** Mirror of [Sim.context_switch]. *)

val replay_events :
  machine ->
  ?on_got_store:(Addr.t -> unit) ->
  ?profile:Profile.t ->
  Trace.Cursor.t ->
  stop:int ->
  unit
(** Retire events until the cursor reaches event index [stop], applying
    the full retire chain per event.  [on_got_store] fires after the skip
    controller sees a GOT store (the scheduler's cross-core publication
    point).  Allocation-free when [profile] is absent. *)

val replay_request :
  machine ->
  ?on_got_store:(Addr.t -> unit) ->
  ?profile:Profile.t ->
  Trace.Cursor.t ->
  int ->
  unit
(** Seek to the given request index and replay it to its boundary. *)

val replay_counters :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  mode:Sim.mode ->
  requests:int ->
  Trace.t ->
  Counters.t
(** Counters-only replay of warmup plus [requests] measured requests: the
    allocation-free fast path (no profile, no latencies), returning the
    measurement-window counter deltas. *)

val replay :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  ?record_stream:bool ->
  ?context_switch_every:int ->
  ?retain_asid:bool ->
  mode:Sim.mode ->
  requests:int ->
  Dlink_core.Workload.t ->
  Trace.t ->
  Experiment.run
(** Full replay of a specific trace, producing the same [Experiment.run]
    (counters, per-type latencies, profile, throughput) a generate-mode
    run would.  Raises [Invalid_argument] if the trace holds fewer than
    [requests] measured requests. *)

val run :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  ?requests:int ->
  ?warmup:int ->
  ?record_stream:bool ->
  ?context_switch_every:int ->
  ?retain_asid:bool ->
  ?seed:int ->
  ?aslr_seed:int ->
  mode:Sim.mode ->
  Dlink_core.Workload.t ->
  Experiment.run
(** Drop-in replacement for [Experiment.run]: replays the cached trace
    (recording it on first use), falling back to generate-mode execution
    for incompatible configurations.  [seed] is the workload's seed, used
    only as a cache-key component; [aslr_seed] is forwarded to the
    recorder and must be [None] when falling back. *)
