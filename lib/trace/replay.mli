(** Replay-mode execution: drive the pipeline kernel from a packed trace
    instead of the architectural interpreter.

    Equivalence contract: for replay-compatible configurations (see
    {!compatible}) the counters, latencies, and profile of a replayed run
    are bit-identical to the event-path run, because both paths retire
    through the same {!Dlink_pipeline.Kernel} and every decision the
    retire chain makes is a function of data the trace carries.  The
    enhanced replay re-makes the skip decision per call — redirects are
    NOT baked into the trace — so BTB/ABTB/Bloom state evolves exactly as
    in generate mode. *)

module Sim = Dlink_core.Sim
module Skip = Dlink_pipeline.Skip
module Kernel = Dlink_pipeline.Kernel
module Experiment = Dlink_core.Experiment
module Counters = Dlink_uarch.Counters

val compatible : ?skip_cfg:Skip.config -> mode:Sim.mode -> unit -> bool
(** Whether (mode, skip_cfg) can be replayed: everything except Enhanced
    with [filter_fallthrough = false] (resolver-transient ABTB entries
    would redirect into a continuation the trace doesn't hold) or with
    [verify_targets] (replay has no GOT to verify against). *)

type machine = Kernel.t
(** One core's replay state is simply a pipeline kernel driven by the
    cursor event source ({!Kernel.replay_request}); GOT reads resolve
    to 0. *)

val make_machine :
  ?ucfg:Dlink_uarch.Config.t -> ?skip_cfg:Skip.config -> mode:Sim.mode ->
  unit -> machine
(** [Kernel.create] specialized to the replay convention: the skip
    controller is present exactly in Enhanced mode. *)

val replay_counters :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  mode:Sim.mode ->
  requests:int ->
  Trace.t ->
  Counters.t
(** Counters-only replay of warmup plus [requests] measured requests: the
    allocation-free fast path (no profile, no latencies), returning the
    measurement-window counter deltas. *)

val replay :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  ?record_stream:bool ->
  ?context_switch_every:int ->
  ?retain_asid:bool ->
  mode:Sim.mode ->
  requests:int ->
  Dlink_core.Workload.t ->
  Trace.t ->
  Experiment.run
(** Full replay of a specific trace, producing the same [Experiment.run]
    (counters, per-type latencies, profile, throughput) a generate-mode
    run would.  Raises [Invalid_argument] if the trace holds fewer than
    [requests] measured requests. *)

val run :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  ?requests:int ->
  ?warmup:int ->
  ?record_stream:bool ->
  ?context_switch_every:int ->
  ?retain_asid:bool ->
  ?seed:int ->
  ?aslr_seed:int ->
  mode:Sim.mode ->
  Dlink_core.Workload.t ->
  Experiment.run
(** Drop-in replacement for [Experiment.run]: replays the cached trace
    (recording it on first use), falling back to generate-mode execution
    for incompatible configurations.  [seed] is the workload's seed, used
    only as a cache-key component; [aslr_seed] is forwarded to the
    recorder and must be [None] when falling back. *)
