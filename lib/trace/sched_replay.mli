(** Replay mirror of the multi-process scheduler.

    A process's architectural stream is independent of scheduling (no
    shared memory), so one single-process recording per workload —
    warmup 0, requests from index 0, matching [Scheduler.create]'s loader
    options — replays under any (quantum, policy, cores) combination.
    Per-core replay machines reproduce the microarchitectural
    interactions: context-switch flushes or ASID retention, cross-core
    GOT-store publication over the coherence bus, and ABTB invalidations.
    Counters, switches, and per-process latencies are bit-identical to a
    [Scheduler] run of the same configuration. *)

module Sim = Dlink_core.Sim
module Skip = Dlink_pipeline.Skip
module Workload = Dlink_core.Workload
module Counters = Dlink_uarch.Counters
module Policy = Dlink_sched.Policy
module Quantum_sweep = Dlink_sched.Quantum_sweep

type result = {
  system : Counters.t;  (** summed core counters *)
  switches : int;
  per_proc : (string * Counters.t * float array) list;
      (** per process: name, counter share, request latencies (µs) *)
}

val run :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  ?mode:Sim.mode ->
  ?requests:int ->
  policy:Policy.t ->
  quantum:int ->
  cores:int ->
  (Workload.t * Trace.t) list ->
  result
(** Replay one scheduler configuration to completion.  Traces must have
    warmup 0 and at least [requests] measured requests each; the
    configuration must be replay-compatible ([Invalid_argument]
    otherwise). *)

val point_of_result :
  quantum:int -> policy:Policy.t -> result -> Quantum_sweep.point

val sweep :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Skip.config ->
  ?mode:Sim.mode ->
  ?requests:int ->
  ?cores:int ->
  ?jobs:int ->
  ?policies:Policy.t list ->
  ?quanta:int list ->
  Workload.t list ->
  Quantum_sweep.point list
(** Drop-in replacement for [Quantum_sweep.sweep]: records (or fetches
    from the cache) one trace per workload, then replays every
    (quantum, policy) combination — in [jobs] forked workers when given,
    which inherit the warm trace cache copy-on-write.  Point order matches
    [Quantum_sweep.sweep]. *)
