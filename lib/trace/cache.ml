module Sim = Dlink_core.Sim
module Workload = Dlink_core.Workload

(* The architectural stream is fully determined by these fields plus the
   request indices, and measured requests are generated from index 0
   upwards in every run — so a cached trace serves any run wanting the
   same key and at most as many measured requests (prefix property).
   Warmup must match exactly: warmup requests use negative generator
   indices derived from the warmup count. *)
type key = {
  wname : string;
  seed : int option;
  aslr_seed : int option;
  lmode : Dlink_linker.Mode.t;
  func_align : int;
  warmup : int;
}

let table : (key, Trace.t) Hashtbl.t = Hashtbl.create 16
let hit_count = ref 0
let miss_count = ref 0

(* The cache is process-global and the domain pool shares the heap, so
   every table access is guarded.  The lock is never held across a
   recording: two domains missing on the same key both record (recording
   is deterministic — identical traces) and the second [replace] wins. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let hits () = locked (fun () -> !hit_count)
let misses () = locked (fun () -> !miss_count)
let clear () = locked (fun () -> Hashtbl.reset table)

let get ?seed ?aslr_seed ?warmup ?requests ~mode (w : Workload.t) =
  let warmup = Option.value warmup ~default:w.Workload.warmup_requests in
  let n = Option.value requests ~default:w.Workload.default_requests in
  let key =
    {
      wname = w.Workload.wname;
      seed;
      aslr_seed;
      lmode = Sim.link_mode (Record.record_mode mode);
      func_align = w.Workload.func_align;
      warmup;
    }
  in
  match locked (fun () -> Hashtbl.find_opt table key) with
  | Some tr when Trace.measured_requests tr >= n ->
      locked (fun () -> incr hit_count);
      tr
  | cached ->
      (* Miss, or a cached trace too short for this run: re-record with
         the larger request count and replace. *)
      let n =
        match cached with
        | Some tr -> max n (Trace.measured_requests tr)
        | None -> n
      in
      locked (fun () -> incr miss_count);
      let tr = Record.record ?aslr_seed ~warmup ~requests:n ~mode w in
      locked (fun () -> Hashtbl.replace table key tr);
      tr

let footprint_bytes () =
  locked (fun () ->
      Hashtbl.fold (fun _ tr acc -> acc + Trace.storage_bytes tr) table 0)
