module Sim = Dlink_core.Sim
module Skip = Dlink_pipeline.Skip
module Profile = Dlink_pipeline.Profile
module Kernel = Dlink_pipeline.Kernel
module Workload = Dlink_core.Workload
module Experiment = Dlink_core.Experiment
module Config = Dlink_uarch.Config
module Counters = Dlink_uarch.Counters

(* Replay-compatibility: the packed trace records the lazy-binding
   architectural stream, and the enhanced replay relies on two invariants —
   an ABTB entry implies its GOT slot is bound (so the traced continuation
   after a redirected call is exactly one in_plt indirect jump), and skips
   are never verified against live GOT contents (replay has none).
   [filter_fallthrough = false] breaks the first (the resolver's first
   execution inserts an entry mapping the trampoline to its own unbound
   fall-through), [verify_targets] the second.  Non-enhanced modes replay
   unconditionally. *)
let compatible ?skip_cfg ~mode () =
  match mode with
  | Sim.Enhanced ->
      let cfg = Option.value skip_cfg ~default:Skip.default_config in
      cfg.Skip.filter_fallthrough && not cfg.Skip.verify_targets
  | Sim.Base | Sim.Eager | Sim.Static | Sim.Patched | Sim.Stable -> true

(* One core's replay state is simply a pipeline kernel driven by the
   cursor event source; GOT reads resolve to 0 (the replay convention —
   see [compatible]). *)
type machine = Kernel.t

let make_machine ?ucfg ?skip_cfg ~mode () =
  Kernel.create ?ucfg ?skip_cfg ~with_skip:(mode = Sim.Enhanced) ()

let check_requests tr n =
  if n > Trace.measured_requests tr then
    invalid_arg
      (Printf.sprintf "Replay: trace has %d measured requests, %d wanted"
         (Trace.measured_requests tr) n)

(* Counters-only replay: no profile, no latency buckets — the
   allocation-free inner loop used by the throughput microbenchmark and
   the GC spot-check. *)
let replay_counters ?ucfg ?skip_cfg ~mode ~requests:n tr =
  check_requests tr n;
  let m = make_machine ?ucfg ?skip_cfg ~mode () in
  let c = Trace.Cursor.create tr in
  let warmup = Trace.warmup tr in
  for r = 0 to warmup - 1 do
    Kernel.replay_request m c r
  done;
  let snapshot = Counters.copy (Kernel.counters m) in
  for i = 0 to n - 1 do
    Kernel.replay_request m c (warmup + i)
  done;
  Counters.diff ~after:(Kernel.counters m) ~before:snapshot

(* Full replay producing the same Experiment.run a generate-mode run
   would.  The profile attaches to the kernel only after warmup, matching
   [Sim.mark_measurement_start]'s reset. *)
let replay ?ucfg ?skip_cfg ?(record_stream = false) ?context_switch_every
    ?(retain_asid = false) ~mode ~requests:n (w : Workload.t) tr =
  check_requests tr n;
  let m = make_machine ?ucfg ?skip_cfg ~mode () in
  let profile =
    Profile.create ~record_stream ~is_plt_entry:(fun _ -> false) ()
  in
  let c = Trace.Cursor.create tr in
  let warmup = Trace.warmup tr in
  for r = 0 to warmup - 1 do
    Kernel.note_boundary m ~rtype:(Trace.request_rtype tr r);
    Kernel.replay_request m c r
  done;
  Kernel.set_profile m (Some profile);
  let counters = Kernel.counters m in
  let snapshot = Counters.copy counters in
  let t0 = Unix.gettimeofday () in
  let buckets = Array.map (fun _ -> ref []) w.Workload.request_type_names in
  for i = 0 to n - 1 do
    (match context_switch_every with
    | Some k when k > 0 && i > 0 && i mod k = 0 ->
        Kernel.context_switch ~retain_asid m
    | _ -> ());
    let before = counters.Counters.cycles in
    let r = warmup + i in
    Kernel.note_boundary m ~rtype:(Trace.request_rtype tr r);
    Kernel.replay_request m c r;
    let us = Workload.cycles_to_us w (counters.Counters.cycles - before) in
    let b = buckets.(Trace.request_rtype tr r) in
    b := us :: !b
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let counters = Counters.diff ~after:counters ~before:snapshot in
  {
    Experiment.mode;
    workload_name = w.Workload.wname;
    counters;
    latencies_us =
      Array.mapi
        (fun i name -> (name, Array.of_list (List.rev !(buckets.(i)))))
        w.Workload.request_type_names;
    tramp_calls = Profile.tramp_calls profile;
    distinct_trampolines = Profile.distinct_trampolines profile;
    rank_frequency = Profile.rank_frequency profile;
    tramp_stream = Profile.stream profile;
    requests = n;
    wall_s;
    sim_mips =
      Experiment.mips ~instructions:counters.Counters.instructions ~wall_s;
  }

(* Drop-in Experiment.run replacement: fetch (or record) the cached trace
   and replay it; fall back to generate-mode execution for configurations
   the replay invariants exclude. *)
let run ?ucfg ?skip_cfg ?requests ?warmup ?(record_stream = false)
    ?context_switch_every ?(retain_asid = false) ?seed ?aslr_seed ~mode
    (w : Workload.t) =
  if not (compatible ?skip_cfg ~mode ()) then begin
    if aslr_seed <> None then
      invalid_arg "Replay.run: aslr_seed requires a replay-compatible config";
    Experiment.run ?ucfg ?skip_cfg ?requests ?warmup ~record_stream
      ?context_switch_every ~retain_asid ~mode w
  end
  else begin
    let n = Option.value requests ~default:w.Workload.default_requests in
    let tr = Cache.get ?seed ?aslr_seed ?warmup ~requests:n ~mode w in
    replay ?ucfg ?skip_cfg ~record_stream ?context_switch_every ~retain_asid
      ~mode ~requests:n w tr
  end
