module Sim = Dlink_core.Sim
module Skip = Dlink_core.Skip
module Profile = Dlink_core.Profile
module Workload = Dlink_core.Workload
module Experiment = Dlink_core.Experiment
module Engine = Dlink_uarch.Engine
module Config = Dlink_uarch.Config
module Counters = Dlink_uarch.Counters
module Kind = Dlink_mach.Event.Kind

(* Replay-compatibility: the packed trace records the lazy-binding
   architectural stream, and the enhanced replay relies on two invariants —
   an ABTB entry implies its GOT slot is bound (so the traced continuation
   after a redirected call is exactly one in_plt indirect jump), and skips
   are never verified against live GOT contents (replay has none).
   [filter_fallthrough = false] breaks the first (the resolver's first
   execution inserts an entry mapping the trampoline to its own unbound
   fall-through), [verify_targets] the second.  Non-enhanced modes replay
   unconditionally. *)
let compatible ?skip_cfg ~mode () =
  match mode with
  | Sim.Enhanced ->
      let cfg = Option.value skip_cfg ~default:Skip.default_config in
      cfg.Skip.filter_fallthrough && not cfg.Skip.verify_targets
  | Sim.Base | Sim.Eager | Sim.Static | Sim.Patched -> true

type machine = {
  engine : Engine.t;
  counters : Counters.t;
  skip : Skip.t option;
}

let make_machine ?(ucfg = Config.xeon_e5450) ?skip_cfg ~mode () =
  let engine = Engine.create ucfg in
  let counters = Engine.counters engine in
  let on_stale_prediction () =
    counters.Counters.branch_mispredictions <-
      counters.Counters.branch_mispredictions + 1;
    counters.Counters.cycles <-
      counters.Counters.cycles + ucfg.Config.penalties.mispredict
  in
  let skip =
    match mode with
    | Sim.Enhanced ->
        Some
          (Skip.create ?config:skip_cfg ~counters
             ~btb_update:(Engine.btb_update engine)
             ~btb_predict:(Engine.btb_predict_raw engine)
             ~on_stale_prediction
             ~read_got:(fun _ -> 0)
             ())
    | Sim.Base | Sim.Eager | Sim.Static | Sim.Patched -> None
  in
  { engine; counters; skip }

let context_switch ?(retain_asid = false) m =
  Engine.context_switch ~retain_asid m.engine;
  if not retain_asid then Option.iter Skip.flush m.skip

(* One retired event, mirroring the retire chain Sim.create wires up:
   opportunity counters, engine accounting, skip-controller population,
   cross-core publication, profiling.  [target]/[aux] are passed explicitly
   because an enhanced redirect retires the call with the function address
   while the cursor still holds the recorded (architectural) operands. *)
let retire_event m on_got_store profile (c : Trace.Cursor.t) ~target ~aux =
  if c.Trace.Cursor.plt_call && c.Trace.Cursor.kind = Kind.call_direct then
    m.counters.Counters.tramp_calls <- m.counters.Counters.tramp_calls + 1;
  if c.Trace.Cursor.kind = Kind.jump_resolver then
    m.counters.Counters.resolver_runs <- m.counters.Counters.resolver_runs + 1;
  if c.Trace.Cursor.got_store then
    m.counters.Counters.got_stores <- m.counters.Counters.got_stores + 1;
  Engine.retire_packed m.engine ~pc:c.Trace.Cursor.pc ~size:c.Trace.Cursor.size
    ~in_plt:c.Trace.Cursor.in_plt ~load:c.Trace.Cursor.load
    ~load2:c.Trace.Cursor.load2 ~store:c.Trace.Cursor.store
    ~kind:c.Trace.Cursor.kind ~target ~aux ~taken:c.Trace.Cursor.taken;
  (match m.skip with
  | Some s ->
      Skip.on_retire_packed s ~pc:c.Trace.Cursor.pc ~size:c.Trace.Cursor.size
        ~store:c.Trace.Cursor.store ~kind:c.Trace.Cursor.kind ~target ~aux
  | None -> ());
  (match on_got_store with
  | Some f when c.Trace.Cursor.got_store -> f c.Trace.Cursor.store
  | _ -> ());
  match profile with
  | Some p when c.Trace.Cursor.plt_call ->
      Profile.note p ~site:c.Trace.Cursor.pc
        (if c.Trace.Cursor.kind = Kind.call_direct then aux else target)
  | _ -> ()

(* Replay events until [stop] (an event index, normally the next request
   boundary).  Enhanced machines consult the skip controller on every
   direct call, exactly as the interpreter's fetch hook does; a redirect
   retires the call at the function address and drops the trampoline's
   in_plt continuation without retiring it. *)
let replay_events m ?on_got_store ?profile (c : Trace.Cursor.t) ~stop =
  while c.Trace.Cursor.i < stop do
    Trace.Cursor.advance c;
    match m.skip with
    | Some s when c.Trace.Cursor.kind = Kind.call_direct ->
        let arch = c.Trace.Cursor.aux in
        let actual = Skip.on_fetch_call s ~pc:c.Trace.Cursor.pc ~arch_target:arch in
        if actual <> arch then begin
          retire_event m on_got_store profile c ~target:actual ~aux:arch;
          while c.Trace.Cursor.i < stop && Trace.Cursor.peek_in_plt c do
            Trace.Cursor.advance c
          done
        end
        else
          retire_event m on_got_store profile c ~target:c.Trace.Cursor.target
            ~aux:c.Trace.Cursor.aux
    | _ ->
        retire_event m on_got_store profile c ~target:c.Trace.Cursor.target
          ~aux:c.Trace.Cursor.aux
  done

let replay_request m ?on_got_store ?profile c r =
  Trace.Cursor.seek_request c r;
  replay_events m ?on_got_store ?profile c
    ~stop:c.Trace.Cursor.trace.Trace.req_start.(r + 1)

let check_requests tr n =
  if n > Trace.measured_requests tr then
    invalid_arg
      (Printf.sprintf "Replay: trace has %d measured requests, %d wanted"
         (Trace.measured_requests tr) n)

(* Counters-only replay: no profile, no latency buckets — the
   allocation-free inner loop used by the throughput microbenchmark and
   the GC spot-check. *)
let replay_counters ?ucfg ?skip_cfg ~mode ~requests:n tr =
  check_requests tr n;
  let m = make_machine ?ucfg ?skip_cfg ~mode () in
  let c = Trace.Cursor.create tr in
  let warmup = Trace.warmup tr in
  for r = 0 to warmup - 1 do
    replay_request m c r
  done;
  let snapshot = Counters.copy m.counters in
  for i = 0 to n - 1 do
    replay_request m c (warmup + i)
  done;
  Counters.diff ~after:m.counters ~before:snapshot

(* Full replay producing the same Experiment.run a generate-mode run
   would. *)
let replay ?ucfg ?skip_cfg ?(record_stream = false) ?context_switch_every
    ?(retain_asid = false) ~mode ~requests:n (w : Workload.t) tr =
  check_requests tr n;
  let m = make_machine ?ucfg ?skip_cfg ~mode () in
  let profile =
    Profile.create ~record_stream ~is_plt_entry:(fun _ -> false) ()
  in
  let c = Trace.Cursor.create tr in
  let warmup = Trace.warmup tr in
  for r = 0 to warmup - 1 do
    replay_request m c r
  done;
  let snapshot = Counters.copy m.counters in
  let t0 = Unix.gettimeofday () in
  let buckets = Array.map (fun _ -> ref []) w.Workload.request_type_names in
  for i = 0 to n - 1 do
    (match context_switch_every with
    | Some k when k > 0 && i > 0 && i mod k = 0 -> context_switch ~retain_asid m
    | _ -> ());
    let before = m.counters.Counters.cycles in
    let r = warmup + i in
    replay_request m ~profile c r;
    let us = Workload.cycles_to_us w (m.counters.Counters.cycles - before) in
    let b = buckets.(Trace.request_rtype tr r) in
    b := us :: !b
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let counters = Counters.diff ~after:m.counters ~before:snapshot in
  {
    Experiment.mode;
    workload_name = w.Workload.wname;
    counters;
    latencies_us =
      Array.mapi
        (fun i name -> (name, Array.of_list (List.rev !(buckets.(i)))))
        w.Workload.request_type_names;
    tramp_calls = Profile.tramp_calls profile;
    distinct_trampolines = Profile.distinct_trampolines profile;
    rank_frequency = Profile.rank_frequency profile;
    tramp_stream = Profile.stream profile;
    requests = n;
    wall_s;
    sim_mips =
      Experiment.mips ~instructions:counters.Counters.instructions ~wall_s;
  }

(* Drop-in Experiment.run replacement: fetch (or record) the cached trace
   and replay it; fall back to generate-mode execution for configurations
   the replay invariants exclude. *)
let run ?ucfg ?skip_cfg ?requests ?warmup ?(record_stream = false)
    ?context_switch_every ?(retain_asid = false) ?seed ?aslr_seed ~mode
    (w : Workload.t) =
  if not (compatible ?skip_cfg ~mode ()) then begin
    if aslr_seed <> None then
      invalid_arg "Replay.run: aslr_seed requires a replay-compatible config";
    Experiment.run ?ucfg ?skip_cfg ?requests ?warmup ~record_stream
      ?context_switch_every ~retain_asid ~mode w
  end
  else begin
    let n = Option.value requests ~default:w.Workload.default_requests in
    let tr = Cache.get ?seed ?aslr_seed ?warmup ~requests:n ~mode w in
    replay ?ucfg ?skip_cfg ~record_stream ?context_switch_every ~retain_asid
      ~mode ~requests:n w tr
  end
