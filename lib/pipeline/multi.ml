open Dlink_isa
open Dlink_mach
open Dlink_uarch

(* Multi-core topology over the kernel: one kernel per core, ASID-tagged
   processes time-sliced in quanta, and a coherence bus snooped by every
   core's skip controller.  The scheduler proper (workload generation,
   linking, process interpretation) and its replay mirror are thin drivers:
   they describe each process with a [spec] and an [exec] callback that
   runs exactly one request on a core's kernel — everything else
   (dispatch, ASID switching, quantum accounting, latency attribution,
   rotation, coherence draining) lives here, once. *)

type spec = {
  asid : int;
  requests : int;
  (* Latency attribution for this process's requests; a closure over the
     workload so this library needs no workload dependency. *)
  cycles_to_us : int -> float;
}

type core = {
  core_id : int;
  kernel : Kernel.t;
  mutable runq : int list; (* pids assigned here, scheduling order *)
  mutable running : int; (* pid, -1 = none *)
  mutable switches : int;
  (* Idle cycles on this core's clock: an open-loop server with an empty
     admission queue waits for the next arrival instead of executing, so
     the core's virtual time is [counters.cycles + idle]. *)
  mutable idle : int;
}

type t = {
  policy : Policy.t;
  quantum : int;
  cores : core array;
  bus : Coherence.t;
  asids : int array;
  core_of : int array;
  next_request : int array;
  remaining : int array;
  requests_done : int array;
  quanta : int array;
  pcounters : Counters.t array;
  lat_us_rev : float list array;
  cycles_to_us : (int -> float) array;
  mutable exec : core -> pid:int -> req:int -> unit;
  (* Open-loop serving state, all indexed by pid.  [arrivals] are absolute
     arrival times relative to the core clock at the pid's first open-loop
     quantum ([ol_base]); requests wait in a bounded FIFO admission queue
     and arrivals that find it full are dropped. *)
  arrivals : int array option array;
  queue_cap : int array;
  queue : int Queue.t array;
  admit_next : int array;
  ol_base : int array;
  dropped : int array;
  lat_cycles_rev : int list array;
}

let no_exec _ ~pid:_ ~req:_ =
  invalid_arg "Multi: no exec callback installed (call Multi.set_exec)"

let create ?ucfg ?skip_cfg ~with_skip ~policy ~quantum ~cores specs =
  if quantum <= 0 then invalid_arg "Multi.create: quantum must be positive";
  if cores <= 0 then invalid_arg "Multi.create: cores must be positive";
  if specs = [] then invalid_arg "Multi.create: no processes";
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let bus = Coherence.create () in
  (* Cores are cooperatively time-sliced — between a mid-quantum GOT
     store and the quantum-boundary drain no other core retires a single
     event — so deferring cross-core invalidations into one
     generation-ordered batch applied at the drain is bit-identical to
     delivering them inside the retire loop, and keeps the subscriber
     walk out of the hot path. *)
  Coherence.set_batched bus true;
  let n_cores = min cores n in
  let cores_arr =
    Array.init n_cores (fun core_id ->
        let kernel = Kernel.create ?ucfg ?skip_cfg ~with_skip () in
        (match Kernel.skip kernel with
        | Some s ->
            Coherence.subscribe bus ~core:core_id (fun ~src:_ addr ->
                Skip.on_remote_store s addr)
        | None -> ());
        (* Cross-core visibility: a GOT store retired here is snooped by
           every other core's skip unit.  Wired independently of the skip
           controller so bus traffic is identical across modes. *)
        if policy = Policy.Asid_shared_guard then
          Kernel.set_got_sink kernel
            (Some (fun addr -> Coherence.publish bus ~src:core_id addr));
        { core_id; kernel; runq = []; running = -1; switches = 0; idle = 0 })
  in
  let t =
    {
      policy;
      quantum;
      cores = cores_arr;
      bus;
      asids = Array.map (fun s -> s.asid) specs;
      core_of = Array.init n (fun pid -> pid mod n_cores);
      next_request = Array.make n 0;
      remaining = Array.map (fun s -> s.requests) specs;
      requests_done = Array.make n 0;
      quanta = Array.make n 0;
      pcounters = Array.init n (fun _ -> Counters.create ());
      lat_us_rev = Array.make n [];
      cycles_to_us = Array.map (fun (s : spec) -> s.cycles_to_us) specs;
      exec = no_exec;
      arrivals = Array.make n None;
      queue_cap = Array.make n 0;
      queue = Array.init n (fun _ -> Queue.create ());
      admit_next = Array.make n 0;
      ol_base = Array.make n (-1);
      dropped = Array.make n 0;
      lat_cycles_rev = Array.make n [];
    }
  in
  for pid = 0 to n - 1 do
    let c = cores_arr.(t.core_of.(pid)) in
    c.runq <- c.runq @ [ pid ]
  done;
  t

let set_exec t f = t.exec <- f
let policy t = t.policy
let quantum t = t.quantum
let bus t = t.bus
let n_cores t = Array.length t.cores
let n_procs t = Array.length t.asids

let core t i =
  if i < 0 || i >= Array.length t.cores then
    invalid_arg (Printf.sprintf "Multi.core: no core %d" i);
  t.cores.(i)

let kernel c = c.kernel
let core_id c = c.core_id
let running c = c.running
let core_switches c = c.switches

let check_pid t fn pid =
  if pid < 0 || pid >= Array.length t.asids then
    invalid_arg (Printf.sprintf "Multi.%s: no pid %d" fn pid)

let core_of t pid =
  check_pid t "core_of" pid;
  t.cores.(t.core_of.(pid))

let proc_counters t pid =
  check_pid t "proc_counters" pid;
  t.pcounters.(pid)

let requests_done t pid =
  check_pid t "requests_done" pid;
  t.requests_done.(pid)

let quanta t pid =
  check_pid t "quanta" pid;
  t.quanta.(pid)

let latencies_us t pid =
  check_pid t "latencies_us" pid;
  Array.of_list (List.rev t.lat_us_rev.(pid))

let set_open_loop t ~pid ~arrivals ~queue_cap =
  check_pid t "set_open_loop" pid;
  if queue_cap <= 0 then
    invalid_arg "Multi.set_open_loop: queue_cap must be positive";
  if Array.length arrivals <> t.remaining.(pid) then
    invalid_arg
      (Printf.sprintf
         "Multi.set_open_loop: %d arrivals for %d remaining requests"
         (Array.length arrivals) t.remaining.(pid));
  Array.iteri
    (fun i a ->
      if a < 0 || (i > 0 && a < arrivals.(i - 1)) then
        invalid_arg "Multi.set_open_loop: arrivals must be sorted and >= 0")
    arrivals;
  t.arrivals.(pid) <- Some (Array.copy arrivals);
  t.queue_cap.(pid) <- queue_cap

let drops t pid =
  check_pid t "drops" pid;
  t.dropped.(pid)

let latencies_cycles t pid =
  check_pid t "latencies_cycles" pid;
  Array.of_list (List.rev t.lat_cycles_rev.(pid))

let core_idle c = c.idle

let switches t = Array.fold_left (fun acc c -> acc + c.switches) 0 t.cores

let system_counters t =
  let sum = Counters.create () in
  Array.iter (fun c -> Counters.add ~into:sum (Kernel.counters c.kernel)) t.cores;
  sum

(* ------------------------------------------------------------------ *)

let dispatch t c pid =
  if c.running <> pid then begin
    if c.running >= 0 then begin
      c.switches <- c.switches + 1;
      match t.policy with
      | Policy.Flush -> Kernel.context_switch c.kernel
      | Policy.Asid | Policy.Asid_shared_guard ->
          Kernel.context_switch ~retain_asid:true c.kernel
    end;
    Kernel.set_asid c.kernel t.asids.(pid);
    c.running <- pid
  end

(* Closed-loop quantum body: back-to-back requests, latency = service. *)
let quantum_closed t c pid =
  let counters = Kernel.counters c.kernel in
  let n = min t.quantum t.remaining.(pid) in
  for _ = 1 to n do
    let cycles_before = counters.Counters.cycles in
    t.exec c ~pid ~req:t.next_request.(pid);
    t.next_request.(pid) <- t.next_request.(pid) + 1;
    let cycles = counters.Counters.cycles - cycles_before in
    t.lat_us_rev.(pid) <- t.cycles_to_us.(pid) cycles :: t.lat_us_rev.(pid);
    t.remaining.(pid) <- t.remaining.(pid) - 1;
    t.requests_done.(pid) <- t.requests_done.(pid) + 1
  done

(* Open-loop quantum body: a bounded single-server admission queue fed by
   the pid's arrival times.  Admission is lazy — arrivals up to the
   current virtual time are admitted (or dropped when the queue is full)
   just before each service starts; since the queue only drains at those
   same points, the occupancy each arrival observes is exactly what a
   real-time interleaving would have seen.  An empty queue idles the core
   forward to the next arrival, and latency = queue wait + service. *)
let quantum_open t c pid arr =
  let counters = Kernel.counters c.kernel in
  if t.ol_base.(pid) < 0 then
    t.ol_base.(pid) <- counters.Counters.cycles + c.idle;
  let n_arr = Array.length arr in
  let cap = t.queue_cap.(pid) in
  let q = t.queue.(pid) in
  let now () = counters.Counters.cycles + c.idle - t.ol_base.(pid) in
  let admit () =
    let t_now = now () in
    while t.admit_next.(pid) < n_arr && arr.(t.admit_next.(pid)) <= t_now do
      let j = t.admit_next.(pid) in
      if Queue.length q < cap then Queue.add j q
      else begin
        t.dropped.(pid) <- t.dropped.(pid) + 1;
        t.remaining.(pid) <- t.remaining.(pid) - 1
      end;
      t.admit_next.(pid) <- j + 1
    done
  in
  let served = ref 0 in
  while !served < t.quantum && t.remaining.(pid) > 0 do
    admit ();
    if Queue.is_empty q then begin
      (* remaining > 0 and nothing queued means un-admitted arrivals
         exist; idle the core forward to the earliest one. *)
      let next = arr.(t.admit_next.(pid)) in
      let t_now = now () in
      if next > t_now then c.idle <- c.idle + (next - t_now);
      admit ()
    end;
    let r = Queue.pop q in
    t.exec c ~pid ~req:r;
    let lat = now () - arr.(r) in
    t.lat_cycles_rev.(pid) <- lat :: t.lat_cycles_rev.(pid);
    t.lat_us_rev.(pid) <- t.cycles_to_us.(pid) lat :: t.lat_us_rev.(pid);
    t.remaining.(pid) <- t.remaining.(pid) - 1;
    t.requests_done.(pid) <- t.requests_done.(pid) + 1;
    incr served
  done

let run_quantum t c pid =
  dispatch t c pid;
  let counters = Kernel.counters c.kernel in
  let before = Counters.copy counters in
  (match t.arrivals.(pid) with
  | None -> quantum_closed t c pid
  | Some arr -> quantum_open t c pid arr);
  t.quanta.(pid) <- t.quanta.(pid) + 1;
  (* Invalidations an injected fault held back are released at the quantum
     boundary — a delayed message can never outlive the quantum. *)
  ignore (Coherence.drain t.bus);
  Counters.add ~into:t.pcounters.(pid)
    (Counters.diff ~after:counters ~before)

(* Rotate to the next runnable process on the core, if any.  The selected
   process moves to the back of the queue, so siblings run between its
   quanta — exactly the destructive-interference pattern under study. *)
let next_runnable t c =
  let n = List.length c.runq in
  let rec go i =
    if i >= n then -1
    else
      match c.runq with
      | [] -> -1
      | pid :: rest ->
          c.runq <- rest @ [ pid ];
          if t.remaining.(pid) > 0 then pid else go (i + 1)
  in
  go 0

let step t =
  let progressed = ref false in
  Array.iter
    (fun c ->
      match next_runnable t c with
      | -1 -> ()
      | pid ->
          progressed := true;
          run_quantum t c pid)
    t.cores;
  !progressed

let run t =
  while step t do
    ()
  done

let finished t = Array.for_all (fun r -> r = 0) t.remaining

(* ------------------------------------------------------------------ *)

(* Inject a bare GOT-store retirement on [pid]'s core — the rebinding
   probe used by examples and the fault harness.  The synthetic event is
   exactly what the interpreter would retire for an unadorned store. *)
let retire_got_store t ~pid addr =
  check_pid t "retire_got_store" pid;
  let c = t.cores.(t.core_of.(pid)) in
  dispatch t c pid;
  (match Kernel.skip c.kernel with
  | Some s ->
      Skip.on_retire_packed s ~pc:0 ~size:4 ~store:addr ~kind:Event.Kind.none
        ~target:Addr.none ~aux:Addr.none
  | None -> ());
  if t.policy = Policy.Asid_shared_guard then begin
    Coherence.publish t.bus ~src:c.core_id addr;
    (* Probes arrive outside any quantum, so there is no boundary drain
       coming: apply the invalidation now, as the unbatched bus would. *)
    ignore (Coherence.flush_batch t.bus : int)
  end
