(** The one retire pipeline.

    Every execution path in the repo drives this kernel: generate mode
    ({!Dlink_core.Sim} / {!Dlink_core.Experiment}), packed-trace replay
    ({!Dlink_trace.Replay}), the multi-process scheduler
    ({!Dlink_sched.Scheduler}) and its replay mirror
    ({!Dlink_trace.Sched_replay}), and the fault oracle's device under test
    ({!Dlink_fault.Oracle}).  The kernel is parameterized over two axes:

    - {b event source} — an interpreter ({!process_hooks} feeding a
      [Process.t]) or a packed-trace cursor ({!replay_request}).  Both
      funnel into the same monomorphic, allocation-free
      {!retire_packed}.
    - {b topology} — one kernel for a single process, or one per core
      behind {!Multi} for the ASID-tagged scheduler with a coherence bus.

    Instrumentation (profile, GOT-store sink, boxed-event tap, the fault
    hooks on the embedded {!Skip.t}) attaches to kernel-level points, so
    fuzzing, replay, and multi-process runs exercise literally the same
    code. *)

open Dlink_isa
open Dlink_mach
open Dlink_uarch

type t

(** [create ?ucfg ?skip_cfg ~with_skip ()] builds an engine, its counters,
    and — when [with_skip] — a skip controller wired to the engine's BTB
    and mispredict accounting.  GOT reads made by the skip controller
    resolve through {!set_read_got} (default: every slot reads 0, the
    replay convention). *)
val create : ?ucfg:Config.t -> ?skip_cfg:Skip.config -> with_skip:bool -> unit -> t

val ucfg : t -> Config.t
val engine : t -> Engine.t
val counters : t -> Counters.t
val skip : t -> Skip.t option
val profile : t -> Profile.t option

(** Late-bind GOT reads to the currently-running process's memory. *)
val set_read_got : t -> (Addr.t -> int) -> unit

(** Attach/detach the trampoline-call profile consulted at retire. *)
val set_profile : t -> Profile.t option -> unit

(** Attach the sink consulted on every retired GOT store — the multi-core
    topology points this at the coherence bus under the shared-guard
    policy. *)
val set_got_sink : t -> (Addr.t -> unit) option -> unit

(** Attach a boxed-event tap (generate sources only); the fault oracle's
    projected control-flow collector hangs here. *)
val set_tap : t -> (Event.t -> unit) option -> unit

(** Attach a request-boundary tap.  Every driver — generate, packed-trace
    replay, and the multi-process topology — announces the start of each
    request through {!note_boundary} with the workload's request-type id,
    so request-level instrumentation (the serving stack's latency
    attribution, invariant checkers) sees the same boundaries on every
    execution path.  A tap, not a retire-path branch: the packed retire
    loop never consults it. *)
val set_boundary_tap : t -> (rtype:int -> unit) option -> unit

(** Announce a request boundary to the attached tap (no-op without one). *)
val note_boundary : t -> rtype:int -> unit

(** Flush microarchitectural state on a context switch; unless
    [retain_asid], the skip controller's tables flush too. *)
val context_switch : ?retain_asid:bool -> t -> unit

(** Switch the engine's and skip controller's address-space tag. *)
val set_asid : t -> int -> unit

(** The retire pipeline: opportunity counters, engine accounting, skip
    controller, GOT-store sink, profile — in that order, on every path.
    [plt_call]/[got_store] are precomputed by the event source.
    Allocation-free. *)
val retire_packed :
  t ->
  pc:Addr.t ->
  size:int ->
  in_plt:bool ->
  plt_call:bool ->
  got_store:bool ->
  load:Addr.t ->
  load2:Addr.t ->
  store:Addr.t ->
  kind:int ->
  target:Addr.t ->
  aux:Addr.t ->
  taken:bool ->
  unit

(** Classify a boxed event the way the recorder and interpreter hooks do:
    a direct call is profile-eligible when its {e architectural} target is
    a PLT entry, an indirect call when its actual target is. *)
val plt_call_of : is_plt_entry:(Addr.t -> bool) -> Event.t -> bool

val got_store_of : in_got:(Addr.t -> bool) -> Event.t -> bool

(** Boxed-event retire: unpacks onto {!retire_packed}, then feeds the
    tap. *)
val retire_event : t -> plt_call:bool -> got_store:bool -> Event.t -> unit

(** Front-end consultation on a fetched direct call: the skip controller's
    redirect decision, or the architectural target when no controller is
    attached. *)
val fetch_call : t -> pc:Addr.t -> arch_target:Addr.t -> Addr.t

(** Interpreter event source: hooks feeding a [Process.t]'s fetch and
    retire streams through this kernel, classifying against the given
    loader predicates. *)
val process_hooks :
  t ->
  is_plt_entry:(Addr.t -> bool) ->
  in_got:(Addr.t -> bool) ->
  Process.hooks

(** Packed-trace event source: retire the cursor's current event with an
    explicit [target]/[aux] (an enhanced redirect retires the call at the
    function address while the cursor holds the recorded operands). *)
val retire_cursor : t -> Trace.Cursor.t -> target:Addr.t -> aux:Addr.t -> unit

(** Replay events until [stop] (an event index, normally the next request
    boundary), consulting the skip controller on every direct call and
    dropping a skipped trampoline's in_plt continuation. *)
val replay_events : t -> Trace.Cursor.t -> stop:int -> unit

(** Seek to request [r] and replay it to its boundary. *)
val replay_request : t -> Trace.Cursor.t -> int -> unit

type snap
(** Frozen copy of everything the retire pipeline reads or writes: engine
    tables/predictors/counters/ASID plus the skip controller's full state.
    Driver attachments (profile, taps, sinks, GOT reader) are wiring, not
    state, and are not captured.  Dominated by flat bigarray blits — cheap
    enough to take every K requests. *)

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Overwrite [t] with the snapshot.  The target must have been built with
    the same {!Dlink_mach.Config.t} geometry and the same [with_skip] as
    the snapshotted kernel ([Invalid_argument] otherwise).  Counters are
    restored in place, preserving the identity of the record returned by
    {!counters}.  A snapshot may be restored into many kernels (one per
    replay segment) without aliasing. *)

val fingerprint : t -> int
(** Deterministic digest of the kernel's microarchitectural state (tables,
    predictors, skip shadows; counters excluded — compare those
    directly). *)
