(** Packed retire-stream traces.

    A trace is the complete retire stream of one workload run — every
    request's events, warmup included — packed into a 2-byte info word per
    event plus a shared operand stream, with request boundaries on the
    side.  Decoding is allocation-free: a {!Cursor} is a single mutable
    record whose fields are overwritten by {!Cursor.advance}, so the replay
    engines walk millions of events without touching the heap.

    Event pcs are derived (fallthrough or branch target of the previous
    event) and stored explicitly only at control-flow discontinuities;
    every request's first event carries its pc, so requests can be replayed
    from any {!Cursor.seek_request} position. *)

open Dlink_mach

type t = private {
  info : Bytes.t;  (** 16-bit LE info word per event *)
  ops : int array;  (** operand stream, indexed via the info-word flags *)
  n_events : int;
  n_ops : int;
  req_start : int array;  (** event index per request, length requests+1 *)
  req_op_start : int array;  (** operand index per request, same length *)
  req_rtype : int array;  (** request type per request *)
  warmup : int;  (** the first [warmup] requests precede the window *)
}

val n_events : t -> int
val n_requests : t -> int
val warmup : t -> int

val measured_requests : t -> int
(** [n_requests t - warmup t]: how many in-window requests this trace can
    replay. *)

val request_rtype : t -> int -> int
val request_events : t -> int -> int
val storage_bytes : t -> int
(** Approximate heap footprint (info bytes + boxed operand words). *)

module Writer : sig
  type trace = t
  type t

  val create : unit -> t

  val start_request : t -> rtype:int -> unit
  (** Open the next request; must precede the first {!add}. *)

  val add : t -> ?plt_call:bool -> ?got_store:bool -> Event.t -> unit
  (** Append one retired event.  [plt_call] marks a profile-eligible
      library call (direct call whose architectural target, or indirect
      call whose target, is a PLT entry); [got_store] marks a store into a
      GOT.  Both are precomputed at record time so replay needs no loader.
      Raises [Invalid_argument] outside a request or for sizes above 15. *)

  val finish : t -> warmup:int -> trace
  (** Freeze into a compact trace whose first [warmup] requests are
      warmup.  The writer must not be reused afterwards. *)
end

module Cursor : sig
  type trace = t

  type t = {
    trace : trace;
    mutable i : int;  (** index of the next event to decode *)
    mutable op : int;
    mutable next_pc : int;
    mutable pc : int;
    mutable size : int;
    mutable kind : int;  (** an {!Dlink_mach.Event.Kind} code *)
    mutable in_plt : bool;
    mutable plt_call : bool;
    mutable got_store : bool;
    mutable taken : bool;
    mutable load : int;  (** {!Dlink_isa.Addr.none} when absent *)
    mutable load2 : int;
    mutable store : int;
    mutable target : int;
    mutable aux : int;
        (** architectural target of a direct call (= [target] when
            unredirected), GOT slot of an indirect branch *)
  }

  val create : trace -> t
  val seek_request : t -> int -> unit

  val advance : t -> unit
  (** Decode the event at [i] into the mutable fields and step past it.
      Allocation-free.  The caller bounds [i] against [req_start]. *)

  val peek_in_plt : t -> bool
  (** The [in_plt] flag of the next (undecoded) event — used by the
      enhanced replay to drop a skipped trampoline without retiring it. *)

  val event : t -> Event.t
  (** The last decoded event, re-materialised (tests/debugging only). *)
end

val to_events : t -> Event.t list
(** Reference decoder: the full stream as events, in retire order. *)
