(** Trampoline profiler — the simulator's stand-in for the paper's Intel
    Pin tool (§4.3).

    Observes the retire stream and records, per PLT entry, how many calls
    targeted it; optionally records the full trampoline-call stream for
    ABTB-size replay (Figure 5). *)

open Dlink_isa
open Dlink_mach

type t

val create : ?record_stream:bool -> is_plt_entry:(Addr.t -> bool) -> unit -> t
val on_retire : t -> Event.t -> unit

val note : t -> site:Addr.t -> Addr.t -> unit
(** Record one trampoline call of target [t] from call site [site], exactly
    as {!on_retire} would when it observes a qualifying call event.  Used
    by the packed-trace replay path, which never materialises events. *)

val reset : t -> unit
(** Drop all recorded data (used to exclude a warmup phase from
    measurement). *)

val tramp_calls : t -> int
(** Total calls whose architectural target was a PLT entry. *)

val distinct_trampolines : t -> int
(** Paper Table 3. *)

val counts : t -> (Addr.t * int) list
(** Per-trampoline call counts, descending — the rank/frequency data of
    Figure 4. *)

val rank_frequency : t -> (float * float) list
(** [(rank starting at 1, count)] series for log-log plotting. *)

val stream : t -> int array
(** Recorded trampoline-call target sequence (empty unless
    [record_stream]). *)

val site_first_touch : t -> (Addr.t * int) list
(** Call sites of library calls in the order they first executed, paired
    with the trampoline-call index at which each was first seen.  This is
    the page-dirtying schedule a lazy software call-site patcher would
    follow (§2.3/§5.5). *)
