open Dlink_isa
open Dlink_mach
open Dlink_uarch

(* The one retire pipeline.  Every execution path in the repo — generate
   mode (Sim/Experiment), packed-trace replay, the multi-process scheduler,
   its replay mirror, and the fault oracle's device under test — is a thin
   driver over this kernel.  The kernel owns the engine, the optional skip
   controller, and the instrumentation points (profile, GOT-store sink,
   boxed-event tap); drivers choose an event source (interpreter hooks or a
   packed-trace cursor) and a topology (one kernel, or one per core behind
   [Multi]).

   The packed retire path is allocation-free: every instrumentation point
   is a pre-installed field consulted with a pointer compare, never an
   optional argument built per call. *)

type t = {
  ucfg : Config.t;
  engine : Engine.t;
  counters : Counters.t;
  skip : Skip.t option;
  (* GOT reads resolve through whichever process the driver currently has
     running; late-bound because processes are built after the kernel. *)
  read_got : (Addr.t -> int) ref;
  mutable profile : Profile.t option;
  (* Consulted on every retired GOT store; the multi-core topology points
     this at the coherence bus under the shared-guard policy. *)
  mutable got_sink : (Addr.t -> unit) option;
  (* Boxed-event tap, generate sources only: the fault oracle's projected
     control-flow collector hangs here. *)
  mutable tap : (Event.t -> unit) option;
  (* Request-boundary tap: every driver (generate, replay, multi-process)
     announces the start of each request here with its request-type id.
     A tap, not a retire-path branch — the packed retire loop never
     consults it. *)
  mutable boundary_tap : (rtype:int -> unit) option;
}

let no_read_got (_ : Addr.t) = 0

let create ?(ucfg = Config.xeon_e5450) ?skip_cfg ~with_skip () =
  let engine = Engine.create ucfg in
  let counters = Engine.counters engine in
  let on_stale_prediction () =
    counters.Counters.branch_mispredictions <-
      counters.Counters.branch_mispredictions + 1;
    counters.Counters.cycles <-
      counters.Counters.cycles + ucfg.Config.penalties.mispredict
  in
  let read_got = ref no_read_got in
  let skip =
    if with_skip then
      Some
        (Skip.create ?config:skip_cfg ~counters
           ~btb_update:(Engine.btb_update engine)
           ~btb_predict:(Engine.btb_predict_raw engine)
           ~on_stale_prediction
           ~read_got:(fun slot -> !read_got slot)
           ())
    else None
  in
  { ucfg; engine; counters; skip; read_got; profile = None; got_sink = None;
    tap = None; boundary_tap = None }

let ucfg t = t.ucfg
let engine t = t.engine
let counters t = t.counters
let skip t = t.skip
let profile t = t.profile
let set_read_got t f = t.read_got := f
let set_profile t p = t.profile <- p
let set_got_sink t f = t.got_sink <- f
let set_tap t f = t.tap <- f
let set_boundary_tap t f = t.boundary_tap <- f

let note_boundary t ~rtype =
  match t.boundary_tap with Some f -> f ~rtype | None -> ()

let context_switch ?(retain_asid = false) t =
  Engine.context_switch ~retain_asid t.engine;
  if not retain_asid then Option.iter Skip.flush t.skip

let set_asid t asid =
  Engine.set_asid t.engine asid;
  Option.iter (fun s -> Skip.set_asid s asid) t.skip

(* ------------------------------------------------------------------ *)
(* The retire pipeline: opportunity counters, engine accounting, skip
   controller, cross-core publication, profiling — in that order, on every
   path.  [plt_call] and [got_store] are precomputed by the event source
   (the interpreter hooks classify against the loader; the packed trace
   carries them as info-word bits). *)

let retire_packed t ~pc ~size ~in_plt ~plt_call ~got_store ~load ~load2 ~store
    ~kind ~target ~aux ~taken =
  if plt_call && kind = Event.Kind.call_direct then
    t.counters.Counters.tramp_calls <- t.counters.Counters.tramp_calls + 1;
  if kind = Event.Kind.jump_resolver then
    t.counters.Counters.resolver_runs <- t.counters.Counters.resolver_runs + 1;
  if got_store then
    t.counters.Counters.got_stores <- t.counters.Counters.got_stores + 1;
  Engine.retire_packed t.engine ~pc ~size ~in_plt ~load ~load2 ~store ~kind
    ~target ~aux ~taken;
  (match t.skip with
  | Some s -> Skip.on_retire_packed s ~pc ~size ~store ~kind ~target ~aux
  | None -> ());
  (match t.got_sink with Some f when got_store -> f store | _ -> ());
  match t.profile with
  | Some p when plt_call ->
      Profile.note p ~site:pc
        (if kind = Event.Kind.call_direct then aux else target)
  | _ -> ()

(* Trampoline-call classification shared by the interpreter hooks and the
   trace recorder: a direct call is profile-eligible when its architectural
   target is a PLT entry (a skipped call still "calls" its trampoline as
   far as opportunity accounting is concerned); an indirect call when its
   actual target is. *)
let plt_call_of ~is_plt_entry (ev : Event.t) =
  match ev.Event.branch with
  | Some (Event.Call_direct { arch_target; _ }) -> is_plt_entry arch_target
  | Some (Event.Call_indirect { target; _ }) -> is_plt_entry target
  | _ -> false

let got_store_of ~in_got (ev : Event.t) =
  match ev.Event.store with Some a -> in_got a | None -> false

let retire_event t ~plt_call ~got_store (ev : Event.t) =
  let load = match ev.Event.load with Some a -> a | None -> Addr.none in
  let load2 = match ev.Event.load2 with Some a -> a | None -> Addr.none in
  let store = match ev.Event.store with Some a -> a | None -> Addr.none in
  let kind, target, aux, taken = Event.pack_branch ev.Event.branch in
  retire_packed t ~pc:ev.Event.pc ~size:ev.Event.size ~in_plt:ev.Event.in_plt
    ~plt_call ~got_store ~load ~load2 ~store ~kind ~target ~aux ~taken;
  match t.tap with Some f -> f ev | None -> ()

let fetch_call t ~pc ~arch_target =
  match t.skip with
  | Some s -> Skip.on_fetch_call s ~pc ~arch_target
  | None -> arch_target

(* Interpreter event source: hooks that feed a [Process.t]'s fetch and
   retire streams through the kernel. *)
let process_hooks t ~is_plt_entry ~in_got =
  let on_retire ev =
    retire_event t ~plt_call:(plt_call_of ~is_plt_entry ev)
      ~got_store:(got_store_of ~in_got ev) ev
  in
  let on_fetch_call ~pc ~arch_target = fetch_call t ~pc ~arch_target in
  { Process.on_fetch_call; on_retire }

(* ------------------------------------------------------------------ *)
(* Packed-trace event source.  [target]/[aux] are passed explicitly
   because an enhanced redirect retires the call with the function address
   while the cursor still holds the recorded (architectural) operands. *)

let retire_cursor t (c : Trace.Cursor.t) ~target ~aux =
  retire_packed t ~pc:c.Trace.Cursor.pc ~size:c.Trace.Cursor.size
    ~in_plt:c.Trace.Cursor.in_plt ~plt_call:c.Trace.Cursor.plt_call
    ~got_store:c.Trace.Cursor.got_store ~load:c.Trace.Cursor.load
    ~load2:c.Trace.Cursor.load2 ~store:c.Trace.Cursor.store
    ~kind:c.Trace.Cursor.kind ~target ~aux ~taken:c.Trace.Cursor.taken

(* Replay events until [stop] (an event index, normally the next request
   boundary), drained in fixed-size blocks with the skip-controller
   dispatch hoisted out of the per-event path: the [t.skip] option is
   matched once per [replay_events] call, and each block runs a
   monomorphic inner loop whose bounds stay in registers.  Both loops are
   top-level functions taking only immediates, preserving the
   zero-allocation guarantee. *)
let block_events = 256

(* Skipless retire: a straight drain with no per-event dispatch at all. *)
let replay_block_plain t (c : Trace.Cursor.t) ~stop =
  while c.Trace.Cursor.i < stop do
    Trace.Cursor.advance c;
    retire_cursor t c ~target:c.Trace.Cursor.target ~aux:c.Trace.Cursor.aux
  done

(* Enhanced retire: the skip controller is consulted on every direct
   call, exactly as the interpreter's fetch hook does; a redirect retires
   the call at the function address and drops the trampoline's in_plt
   continuation without retiring it.  The drop loop runs against the true
   [stop], not the block boundary — a skipped trampoline body may
   straddle two blocks. *)
let replay_block_skip t s (c : Trace.Cursor.t) ~block_stop ~stop =
  while c.Trace.Cursor.i < block_stop do
    Trace.Cursor.advance c;
    if c.Trace.Cursor.kind = Event.Kind.call_direct then begin
      let arch = c.Trace.Cursor.aux in
      let actual =
        Skip.on_fetch_call s ~pc:c.Trace.Cursor.pc ~arch_target:arch
      in
      if actual <> arch then begin
        retire_cursor t c ~target:actual ~aux:arch;
        while c.Trace.Cursor.i < stop && Trace.Cursor.peek_in_plt c do
          Trace.Cursor.advance c
        done
      end
      else
        retire_cursor t c ~target:c.Trace.Cursor.target ~aux:c.Trace.Cursor.aux
    end
    else retire_cursor t c ~target:c.Trace.Cursor.target ~aux:c.Trace.Cursor.aux
  done

let replay_events t (c : Trace.Cursor.t) ~stop =
  match t.skip with
  | None ->
      while c.Trace.Cursor.i < stop do
        let b = c.Trace.Cursor.i + block_events in
        replay_block_plain t c ~stop:(if b < stop then b else stop)
      done
  | Some s ->
      while c.Trace.Cursor.i < stop do
        let b = c.Trace.Cursor.i + block_events in
        replay_block_skip t s c
          ~block_stop:(if b < stop then b else stop)
          ~stop
      done

let replay_request t (c : Trace.Cursor.t) r =
  Trace.Cursor.seek_request c r;
  replay_events t c ~stop:c.Trace.Cursor.trace.Trace.req_start.(r + 1)

(* ------------------------------------------------------------------ *)
(* Snapshot/restore — the capability behind segmented replay (DESIGN
   §4.14).  A snapshot freezes everything the retire pipeline reads or
   writes: the engine (tables, predictors, counters, ASID) and the skip
   controller (ABTB, filter, shadows, idiom window, quarantine).  The
   driver-owned attachments — [read_got], [profile], [got_sink], [tap],
   [boundary_tap] — are deliberately NOT captured: they are wiring, not
   state, and each restore target keeps its own.  Counters are restored in
   place (the kernel and engine share one record, and drivers hold it by
   reference via [counters t]).

   Cost: dominated by the cache tables' bigarray blits — a few MiB,
   flat memcpy, no per-entry work — cheap enough to take every K requests
   during a calibration pass. *)

type snap = { k_engine : Engine.snap; k_skip : Skip.snap option }

let snapshot t =
  { k_engine = Engine.snapshot t.engine; k_skip = Option.map Skip.snapshot t.skip }

let restore t s =
  Engine.restore t.engine s.k_engine;
  match (t.skip, s.k_skip) with
  | Some sk, Some ss -> Skip.restore sk ss
  | None, None -> ()
  | _ -> invalid_arg "Kernel.restore: skip-controller presence mismatch"

let fingerprint t =
  Hashtbl.hash
    ( Engine.fingerprint t.engine,
      match t.skip with Some s -> Skip.fingerprint s | None -> 0 )
