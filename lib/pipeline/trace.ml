open Dlink_isa
open Dlink_mach

(* Packed retire-stream format.

   One 16-bit little-endian info word per event:
     bits 0-2   branch kind (Event.Kind; 0 = not a branch)
     bit  3     in_plt
     bit  4     plt_call   (profile-eligible library call, precomputed)
     bit  5     got_store  (the store address lies in a GOT, precomputed)
     bit  6     taken      (conditional branches)
     bit  7     has_load
     bit  8     has_load2
     bit  9     has_store
     bit  10    has_aux    (aux operand present in the stream)
     bit  11    has_pc     (pc operand present in the stream)
     bits 12-15 instruction size in bytes
   Operands live in a separate int stream, per event in this order:
     [pc?] [load?] [load2?] [store?] [target if kind<>0] [aux?]
   The pc is stored only when it differs from the previous event's derived
   next-pc (fallthrough for non-branches and untaken conditionals, target
   otherwise), i.e. almost never — the stream is self-describing and a
   request's first event always carries its pc.  The aux operand (the
   architectural target of a direct call, the GOT slot of an indirect
   branch) is stored for indirect branches always and for direct calls only
   when it differs from the target; a direct call without the bit decodes
   aux := target. *)

type t = {
  info : Bytes.t;
  ops : int array;
  n_events : int;
  n_ops : int;
  req_start : int array; (* event index per request; length n_requests + 1 *)
  req_op_start : int array; (* operand index per request; same length *)
  req_rtype : int array; (* length n_requests *)
  warmup : int; (* the first [warmup] requests precede the window *)
}

let n_events t = t.n_events
let n_requests t = Array.length t.req_rtype
let warmup t = t.warmup
let measured_requests t = n_requests t - t.warmup
let request_rtype t r = t.req_rtype.(r)
let request_events t r = t.req_start.(r + 1) - t.req_start.(r)

let storage_bytes t =
  (2 * t.n_events) + (8 * t.n_ops) + (8 * 2 * (n_requests t + 1))

(* info-word bit masks *)
let m_in_plt = 8
let m_plt_call = 16
let m_got_store = 32
let m_taken = 64
let m_load = 128
let m_load2 = 256
let m_store = 512
let m_aux = 1024
let m_pc = 2048

(* A pc no real event can have, forcing the next added event to carry its
   pc explicitly. *)
let no_pc = min_int

let next_pc_of ~kind ~pc ~size ~target ~taken =
  if kind = Event.Kind.none then pc + size
  else if kind = Event.Kind.cond_branch then if taken then target else pc + size
  else target

module Writer = struct
  type trace = t

  type t = {
    mutable info : Bytes.t;
    mutable ops : int array;
    mutable n_events : int;
    mutable n_ops : int;
    mutable starts_rev : (int * int * int) list; (* (event, op, rtype) *)
    mutable n_requests : int;
    mutable expect_pc : int;
  }

  let create () =
    {
      info = Bytes.create 8192;
      ops = Array.make 4096 0;
      n_events = 0;
      n_ops = 0;
      starts_rev = [];
      n_requests = 0;
      expect_pc = no_pc;
    }

  let ensure_event w =
    if 2 * (w.n_events + 1) > Bytes.length w.info then begin
      let bigger = Bytes.create (2 * Bytes.length w.info) in
      Bytes.blit w.info 0 bigger 0 (2 * w.n_events);
      w.info <- bigger
    end

  let ensure_ops w need =
    if w.n_ops + need > Array.length w.ops then begin
      let bigger =
        Array.make (max (2 * Array.length w.ops) (w.n_ops + need)) 0
      in
      Array.blit w.ops 0 bigger 0 w.n_ops;
      w.ops <- bigger
    end

  let push_op w v =
    w.ops.(w.n_ops) <- v;
    w.n_ops <- w.n_ops + 1

  let start_request w ~rtype =
    w.starts_rev <- (w.n_events, w.n_ops, rtype) :: w.starts_rev;
    w.n_requests <- w.n_requests + 1;
    (* A request entry is always a control-flow discontinuity; pin it. *)
    w.expect_pc <- no_pc

  let add w ?(plt_call = false) ?(got_store = false) (ev : Event.t) =
    if w.n_requests = 0 then
      invalid_arg "Trace.Writer.add: no request started";
    if ev.size < 0 || ev.size > 15 then
      invalid_arg "Trace.Writer.add: size out of range";
    let kind, target, aux, taken = Event.pack_branch ev.branch in
    let has_pc = ev.pc <> w.expect_pc in
    let has_aux =
      kind = Event.Kind.call_indirect
      || kind = Event.Kind.jump_indirect
      || (kind = Event.Kind.call_direct && aux <> target)
    in
    let info =
      kind
      lor (if ev.in_plt then m_in_plt else 0)
      lor (if plt_call then m_plt_call else 0)
      lor (if got_store then m_got_store else 0)
      lor (if taken then m_taken else 0)
      lor (if ev.load <> None then m_load else 0)
      lor (if ev.load2 <> None then m_load2 else 0)
      lor (if ev.store <> None then m_store else 0)
      lor (if has_aux then m_aux else 0)
      lor (if has_pc then m_pc else 0)
      lor (ev.size lsl 12)
    in
    ensure_event w;
    Bytes.set_uint16_le w.info (2 * w.n_events) info;
    w.n_events <- w.n_events + 1;
    ensure_ops w 6;
    if has_pc then push_op w ev.pc;
    (match ev.load with Some a -> push_op w a | None -> ());
    (match ev.load2 with Some a -> push_op w a | None -> ());
    (match ev.store with Some a -> push_op w a | None -> ());
    if kind <> Event.Kind.none then push_op w target;
    if has_aux then push_op w aux;
    w.expect_pc <- next_pc_of ~kind ~pc:ev.pc ~size:ev.size ~target ~taken

  let finish w ~warmup : trace =
    if warmup < 0 || warmup > w.n_requests then
      invalid_arg "Trace.Writer.finish: warmup out of range";
    let starts = Array.of_list (List.rev w.starts_rev) in
    let n_req = Array.length starts in
    let req_start = Array.make (n_req + 1) w.n_events in
    let req_op_start = Array.make (n_req + 1) w.n_ops in
    let req_rtype = Array.make n_req 0 in
    Array.iteri
      (fun r (e, o, rt) ->
        req_start.(r) <- e;
        req_op_start.(r) <- o;
        req_rtype.(r) <- rt)
      starts;
    {
      info = Bytes.sub w.info 0 (2 * w.n_events);
      ops = Array.sub w.ops 0 w.n_ops;
      n_events = w.n_events;
      n_ops = w.n_ops;
      req_start;
      req_op_start;
      req_rtype;
      warmup;
    }
end

module Cursor = struct
  type trace = t

  type t = {
    trace : trace;
    mutable i : int; (* next event to decode *)
    mutable op : int;
    mutable next_pc : int;
    (* fields of the last decoded event *)
    mutable pc : int;
    mutable size : int;
    mutable kind : int;
    mutable in_plt : bool;
    mutable plt_call : bool;
    mutable got_store : bool;
    mutable taken : bool;
    mutable load : int;
    mutable load2 : int;
    mutable store : int;
    mutable target : int;
    mutable aux : int;
  }

  let create trace =
    {
      trace;
      i = 0;
      op = 0;
      next_pc = no_pc;
      pc = 0;
      size = 0;
      kind = 0;
      in_plt = false;
      plt_call = false;
      got_store = false;
      taken = false;
      load = Addr.none;
      load2 = Addr.none;
      store = Addr.none;
      target = Addr.none;
      aux = Addr.none;
    }

  let seek_request c r =
    c.i <- c.trace.req_start.(r);
    c.op <- c.trace.req_op_start.(r);
    c.next_pc <- no_pc

  let read_op c =
    let v = c.trace.ops.(c.op) in
    c.op <- c.op + 1;
    v

  let advance c =
    let info = Bytes.get_uint16_le c.trace.info (2 * c.i) in
    let kind = info land 7 in
    c.kind <- kind;
    c.in_plt <- info land m_in_plt <> 0;
    c.plt_call <- info land m_plt_call <> 0;
    c.got_store <- info land m_got_store <> 0;
    c.taken <- info land m_taken <> 0;
    c.size <- info lsr 12;
    c.pc <- (if info land m_pc <> 0 then read_op c else c.next_pc);
    c.load <- (if info land m_load <> 0 then read_op c else Addr.none);
    c.load2 <- (if info land m_load2 <> 0 then read_op c else Addr.none);
    c.store <- (if info land m_store <> 0 then read_op c else Addr.none);
    c.target <- (if kind <> Event.Kind.none then read_op c else Addr.none);
    c.aux <-
      (if info land m_aux <> 0 then read_op c
       else if kind = Event.Kind.call_direct then c.target
       else Addr.none);
    c.next_pc <-
      next_pc_of ~kind ~pc:c.pc ~size:c.size ~target:c.target ~taken:c.taken;
    c.i <- c.i + 1

  let peek_in_plt c =
    Bytes.get_uint16_le c.trace.info (2 * c.i) land m_in_plt <> 0

  let event c : Event.t =
    {
      Event.pc = c.pc;
      size = c.size;
      in_plt = c.in_plt;
      load = (if c.load = Addr.none then None else Some c.load);
      load2 = (if c.load2 = Addr.none then None else Some c.load2);
      store = (if c.store = Addr.none then None else Some c.store);
      branch =
        Event.unpack_branch ~kind:c.kind ~target:c.target ~aux:c.aux
          ~taken:c.taken;
    }
end

(* Reference decoder for tests and debugging: the whole stream back as
   heap-allocated events, in retire order. *)
let to_events t =
  let c = Cursor.create t in
  let rec go acc =
    if c.Cursor.i >= t.n_events then List.rev acc
    else begin
      Cursor.advance c;
      go (Cursor.event c :: acc)
    end
  in
  go []
