(** The trampoline-skip controller: ABTB + Bloom filter + retire-time
    population logic (paper §3).

    Front end: {!on_fetch_call} is consulted on every direct call.  If the
    call's architectural target has a live ABTB entry, fetch is redirected
    straight to the library function and the trampoline never executes.

    Back end: {!on_retire} watches the retire stream for
    - stores that hit the Bloom filter → clear the ABTB and filter;
    - the call-followed-by-memory-indirect-branch idiom → insert an ABTB
      entry mapping trampoline → function, add the GOT slot to the filter,
      and retrain the call site's BTB entry with the function address.

    The [filter_fallthrough] refinement suppresses population when the
    indirect branch lands on its own fall-through address, which is exactly
    the lazy-resolution first execution (the GOT still points at the PLT
    stub's push).  Without it the mechanism still behaves correctly — the
    resolver's GOT store hits the filter and clears the table, the paper's
    "happens only once per library call" startup transient — at the cost of
    one extra whole-table clear per first call.  Both variants are
    measured by the ablation bench. *)

open Dlink_isa
open Dlink_mach
open Dlink_uarch

(** What the Bloom filter hashes.  The paper stores "the addresses of the
    GOT entries" (slot granularity) but never sizes the filter; at slot
    granularity every architectural store is a membership test, and with
    realistic store rates even sub-percent false-positive rates cause
    constant whole-ABTB clears.  Page granularity exploits the fact that
    GOT slots live on dedicated pages: the filter holds a handful of page
    numbers, so a few hundred bits suffice.  The ablation bench quantifies
    both. *)
type granularity = Slot | Page

(** How ABTB coherence is maintained (§3.2 vs §3.4).

    [Bloom_guard] is the paper's primary design: retired stores are tested
    against a Bloom filter of guarded GOT locations and a hit clears the
    table — fully transparent to software.

    [Explicit_invalidate] is the paper's alternate implementation: no
    filter hardware at all; software (the dynamic loader) must execute an
    explicit ABTB-invalidate operation ({!flush}) whenever it rewrites a
    GOT entry, analogous to instruction-cache flushes on non-coherent
    architectures.  With [verify_targets] set, forgetting the flush after
    a rebinding raises {!Misspeculation} — demonstrating exactly why the
    transparent design needs the filter. *)
type coherence = Bloom_guard | Explicit_invalidate

type config = {
  abtb_entries : int;
  abtb_ways : int option;  (** [None] = fully associative *)
  bloom_bits : int;
  bloom_hashes : int;
  bloom_granularity : granularity;
  coherence : coherence;
  filter_fallthrough : bool;
  verify_targets : bool;
      (** paranoia mode for tests: on every skip, check the redirect target
          against the live GOT contents and raise on mismatch *)
  quarantine_window : int;
      (** graceful degradation: after a detected mis-skip the offending
          ABTB set is evicted and skips from it suppressed for this many
          subsequent opportunities (0 disables quarantine) *)
  quarantine_on_verify : bool;
      (** when [verify_targets] catches a stale skip, quarantine and fall
          back to the trampoline instead of raising {!Misspeculation} *)
}

val default_config : config
(** [quarantine_window = 64], [quarantine_on_verify = false]; see the
    field docs for the rest.  {!create} validates the configuration
    ([bloom_bits] a positive power of two, [bloom_hashes] in [1, 8],
    positive table geometry, non-negative window) and raises
    [Invalid_argument] otherwise. *)

type t

val create :
  ?config:config ->
  counters:Counters.t ->
  btb_update:(Addr.t -> Addr.t -> unit) ->
  btb_predict:(Addr.t -> Addr.t) ->
  on_stale_prediction:(unit -> unit) ->
  read_got:(Addr.t -> int) ->
  unit ->
  t
(** [btb_predict] is the front end's only redirection source: a trampoline
    is skipped when the call site's BTB entry holds the function address
    (trained at pair-retire) {e and} the ABTB confirms it at resolution.
    It returns {!Dlink_isa.Addr.none} on a BTB miss (sentinel rather than
    an option, keeping the per-call fetch path allocation-free).
    [on_stale_prediction] is invoked when the BTB still holds a function
    address but the ABTB entry is gone (cleared/evicted) — in hardware the
    front end fetched the stale target and resolution must squash, a
    mispredict the base machine does not have.  Rare in steady state. *)

val on_fetch_call : t -> pc:Addr.t -> arch_target:Addr.t -> Addr.t
(** Front-end consultation on every direct call: returns the fetch target
    (the library function when skipping, the architectural target
    otherwise). *)

val on_retire : t -> Event.t -> unit

val on_retire_packed :
  t ->
  pc:Addr.t ->
  size:int ->
  store:Addr.t ->
  kind:int ->
  target:Addr.t ->
  aux:Addr.t ->
  unit
(** Allocation-free {!on_retire} on packed operands: [store] is
    {!Dlink_isa.Addr.none} when the instruction stores nothing, [kind] is
    an {!Dlink_mach.Event.Kind} code, and [aux] is the architectural target
    of a direct call or the GOT slot of an indirect branch (as produced by
    {!Dlink_mach.Event.pack_branch}). *)

val on_remote_store : t -> Addr.t -> unit
(** A GOT store retired by {e another} core, delivered over the
    {!Dlink_mach.Coherence} bus: the filter is probed under every address
    space with live entries, and a hit clears the table exactly like a
    local store would, additionally counting a coherence invalidation. *)

val flush : t -> unit
(** Context switch / explicit software invalidation (§3.4). *)

val asid : t -> int
val set_asid : t -> int -> unit
(** The address-space id tagging subsequent ABTB/Bloom traffic (default 0).
    Setting it also abandons any half-observed call/jump idiom — the pair
    window never spans a context switch. *)

val abtb : t -> Abtb.t
val bloom : t -> Bloom.t

val report_mis_skip : t -> tramp:Addr.t -> unit
(** Told by an external oracle that a skip of [tramp] retired a stale
    target: evict the ABTB set [tramp] maps to, place it under quarantine
    for [quarantine_window] skip opportunities (architectural fallback),
    and bump the [mis_skips] / [quarantine_entries] counters. *)

val quarantined_sets : t -> int
(** Sets currently serving a quarantine sentence. *)

val degrade : t -> window:int -> unit
(** Whole-core graceful degradation, the response to a timed-out
    coherence invalidation ({!Dlink_mach.Coherence.set_on_timeout}): this
    core never saw an invalidation it was owed, so {!flush} everything
    and suppress the next [window] skip opportunities — the trampoline /
    resolver path is always architecturally correct.  Extends (never
    shortens) an existing window; bumps [timeout_degrades] when arming a
    fresh one.  Raises [Invalid_argument] if [window <= 0]. *)

val degraded_remaining : t -> int
(** Skip opportunities still to be suppressed by {!degrade} (0 = healthy). *)

val set_clear_veto : t -> (unit -> bool) option -> unit
(** Fault-injection hook: when the callback returns [true], a
    filter-driven clear (local or remote) is suppressed — the fault model
    for a lost clear pulse.  [None] (the default) restores normal
    behaviour.  Not used by the mechanism itself. *)

exception Misspeculation of string
(** Raised only under [verify_targets] if a skip would diverge from the
    architectural GOT state — this never fires when the Bloom-clear
    invariant holds. *)

type snap
(** Frozen copy of the controller: ABTB, filter, shadow tables, idiom
    window, quarantine and degradation state.  The fault-injection
    [clear_veto] hook is excluded (never set on the serving path). *)

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Overwrite [t] with the snapshot.  The hashtable shadows are restored
    as structure-preserving copies, so iteration order (which
    {!on_remote_store} depends on) matches the snapshotted controller
    exactly.  A snapshot may be restored into many controllers. *)

val fingerprint : t -> int
(** Deterministic digest of the controller's observable state (counters
    excluded). *)
