(** Context-switch policy for the trampoline-skip hardware (§3.3).

    - [Flush]: the ABTB and its Bloom filter flush with the TLBs on every
      switch — the paper's baseline assumption, and the only correct option
      for untagged hardware.
    - [Asid]: ABTB, Bloom, and TLB entries are tagged with an address-space
      id and survive switches; a process resumes with its working set warm.
    - [Asid_shared_guard]: [Asid], plus GOT stores retired on one core are
      broadcast over the {!Dlink_mach.Coherence} bus so every other core's
      skip unit can test its filter and clear — the coherence story the
      paper requires when another core rewrites a guarded GOT entry. *)

type t = Flush | Asid | Asid_shared_guard

val all : t list
val to_string : t -> string
val of_string : string -> t option
