open Dlink_isa
open Dlink_mach

type t = {
  is_plt_entry : Addr.t -> bool;
  counts : (Addr.t, int ref) Hashtbl.t;
  sites : (Addr.t, unit) Hashtbl.t;
  mutable site_order : (Addr.t * int) list; (* reversed *)
  mutable total : int;
  record_stream : bool;
  mutable stream : int array;
  mutable stream_len : int;
}

let create ?(record_stream = false) ~is_plt_entry () =
  {
    is_plt_entry;
    counts = Hashtbl.create 512;
    sites = Hashtbl.create 512;
    site_order = [];
    total = 0;
    record_stream;
    stream = (if record_stream then Array.make 4096 0 else [||]);
    stream_len = 0;
  }

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.sites;
  t.site_order <- [];
  t.total <- 0;
  t.stream_len <- 0

let push_stream t target =
  if t.record_stream then begin
    if t.stream_len = Array.length t.stream then begin
      let bigger = Array.make (2 * t.stream_len) 0 in
      Array.blit t.stream 0 bigger 0 t.stream_len;
      t.stream <- bigger
    end;
    t.stream.(t.stream_len) <- target;
    t.stream_len <- t.stream_len + 1
  end

let note t ~site target =
  t.total <- t.total + 1;
  (match Hashtbl.find_opt t.counts target with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counts target (ref 1));
  if not (Hashtbl.mem t.sites site) then begin
    Hashtbl.replace t.sites site ();
    t.site_order <- (site, t.total) :: t.site_order
  end;
  push_stream t target

let on_retire t (ev : Event.t) =
  match ev.branch with
  (* Use the architectural target: a skipped call still "calls" its
     trampoline as far as opportunity accounting is concerned. *)
  | Some (Event.Call_direct { arch_target; _ }) when t.is_plt_entry arch_target ->
      note t ~site:ev.pc arch_target
  | Some (Event.Call_indirect { target; _ }) when t.is_plt_entry target ->
      note t ~site:ev.pc target
  | _ -> ()

let tramp_calls t = t.total
let distinct_trampolines t = Hashtbl.length t.counts

let counts t =
  Hashtbl.fold (fun a r acc -> (a, !r) :: acc) t.counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let rank_frequency t =
  List.mapi (fun i (_, c) -> (float_of_int (i + 1), float_of_int c)) (counts t)

let stream t = Array.sub t.stream 0 t.stream_len
let site_first_touch t = List.rev t.site_order
