(** Multi-core topology over {!Kernel}: one kernel per core, ASID-tagged
    processes time-sliced in quanta, and a coherence bus snooped by every
    core's skip controller.

    Drivers ({!Dlink_sched.Scheduler} for generate mode,
    {!Dlink_trace.Sched_replay} for packed-trace replay) describe each
    process with a {!spec} and install an {!set_exec} callback that runs
    exactly one request on a core's kernel; dispatch, ASID switching,
    quantum accounting, latency attribution, run-queue rotation, and
    coherence draining live here, once. *)

open Dlink_isa
open Dlink_mach
open Dlink_uarch

type spec = {
  asid : int;  (** address-space tag, conventionally [pid + 1] *)
  requests : int;  (** requests this process must complete *)
  cycles_to_us : int -> float;
      (** latency attribution (a closure over the workload) *)
}

type core

type t

(** [create ?ucfg ?skip_cfg ~with_skip ~policy ~quantum ~cores specs]
    builds [min cores (List.length specs)] kernels, subscribes each skip
    controller to the bus, wires GOT-store publication under
    [Asid_shared_guard], and round-robins pids onto cores ([pid mod
    n_cores]).  The exec callback starts unset; install it with
    {!set_exec} before running. *)
val create :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  with_skip:bool ->
  policy:Policy.t ->
  quantum:int ->
  cores:int ->
  spec list ->
  t

(** Install the one-request execution callback: run request [req] of
    process [pid] on [core]'s kernel. *)
val set_exec : t -> (core -> pid:int -> req:int -> unit) -> unit

val policy : t -> Policy.t
val quantum : t -> int
val bus : t -> Coherence.t
val n_cores : t -> int
val n_procs : t -> int
val core : t -> int -> core
val kernel : core -> Kernel.t
val core_id : core -> int

(** Pid currently dispatched on this core, or [-1]. *)
val running : core -> int

val core_switches : core -> int

(** The core process [pid] is pinned to. *)
val core_of : t -> int -> core

(** Counters attributed to [pid] across its quanta. *)
val proc_counters : t -> int -> Counters.t

val requests_done : t -> int -> int
val quanta : t -> int -> int
val latencies_us : t -> int -> float array
val switches : t -> int
val system_counters : t -> Counters.t

(** Put [pid] in open-loop serving mode: its requests arrive at the given
    absolute times (simulated cycles, relative to the core clock at the
    pid's first quantum; sorted, non-negative) into a FIFO admission
    queue bounded at [queue_cap].  An arrival that finds the queue full
    is dropped; an empty queue idles the core forward to the next
    arrival; a served request's recorded latency is queue wait + service.
    [arrivals] must have exactly one entry per remaining request.  Call
    before running.  Raises [Invalid_argument] on a non-positive
    [queue_cap], unsorted or negative arrivals, or a length mismatch. *)
val set_open_loop : t -> pid:int -> arrivals:int array -> queue_cap:int -> unit

(** Arrivals dropped so far because [pid]'s admission queue was full. *)
val drops : t -> int -> int

(** Served-request latencies (queue wait + service) in simulated cycles,
    serve order; empty for closed-loop pids. *)
val latencies_cycles : t -> int -> int array

(** Cycles this core has spent idle waiting for open-loop arrivals. *)
val core_idle : core -> int

(** Make [pid] current on its core: charges a context switch (policy
    flush or ASID retention) when another process was running, then tags
    the kernel with [pid]'s ASID. *)
val dispatch : t -> core -> int -> unit

(** One quantum of [pid] on core [c]: dispatch, up to [quantum] requests
    through the exec callback with per-request latency attribution, then
    drain the bus and attribute the counter delta to [pid]. *)
val run_quantum : t -> core -> int -> unit

(** One scheduling step across all cores; [false] when no core made
    progress. *)
val step : t -> bool

(** Step until every process has exhausted its requests. *)
val run : t -> unit

val finished : t -> bool

(** Inject a bare GOT-store retirement on [pid]'s core (the rebinding
    probe used by examples and the fault harness), publishing on the bus
    under [Asid_shared_guard]. *)
val retire_got_store : t -> pid:int -> Addr.t -> unit
