type t = Flush | Asid | Asid_shared_guard

let all = [ Flush; Asid; Asid_shared_guard ]

let to_string = function
  | Flush -> "flush"
  | Asid -> "asid"
  | Asid_shared_guard -> "asid-shared-guard"

let of_string = function
  | "flush" -> Some Flush
  | "asid" -> Some Asid
  | "asid-shared-guard" | "asid_shared_guard" | "shared-guard" ->
      Some Asid_shared_guard
  | _ -> None
