open Dlink_isa
open Dlink_mach
open Dlink_uarch

type granularity = Slot | Page
type coherence = Bloom_guard | Explicit_invalidate

type config = {
  abtb_entries : int;
  abtb_ways : int option;
  bloom_bits : int;
  bloom_hashes : int;
  bloom_granularity : granularity;
  coherence : coherence;
  filter_fallthrough : bool;
  verify_targets : bool;
  quarantine_window : int;
  quarantine_on_verify : bool;
}

let default_config =
  {
    abtb_entries = 256;
    abtb_ways = None;
    bloom_bits = 4096;
    bloom_hashes = 2;
    bloom_granularity = Page;
    coherence = Bloom_guard;
    filter_fallthrough = true;
    verify_targets = false;
    quarantine_window = 64;
    quarantine_on_verify = false;
  }

(* Abtb.create and Bloom.create validate their own geometry; the remaining
   fields are checked here so a bad config fails at construction, not
   mid-run. *)
let validate_config cfg =
  if cfg.abtb_entries <= 0 then
    invalid_arg "Skip.create: abtb_entries must be positive";
  (match cfg.abtb_ways with
  | Some w when w <= 0 -> invalid_arg "Skip.create: abtb_ways must be positive"
  | _ -> ());
  if cfg.bloom_bits <= 0 || cfg.bloom_bits land (cfg.bloom_bits - 1) <> 0 then
    invalid_arg "Skip.create: bloom_bits must be a positive power of two";
  if cfg.bloom_hashes < 1 || cfg.bloom_hashes > 8 then
    invalid_arg "Skip.create: bloom_hashes must be in [1, 8]";
  if cfg.quarantine_window < 0 then
    invalid_arg "Skip.create: quarantine_window must be non-negative"

let bloom_key cfg a =
  match cfg.bloom_granularity with Slot -> a | Page -> Addr.page_of a

exception Misspeculation of string

type t = {
  cfg : config;
  abtb : Abtb.t;
  bloom : Bloom.t;
  counters : Counters.t;
  btb_update : Addr.t -> Addr.t -> unit;
  btb_predict : Addr.t -> Addr.t;
  on_stale_prediction : unit -> unit;
  read_got : Addr.t -> int;
  (* Exact shadow of GOT slots backing live-or-evicted entries since the
     last clear, keyed by (asid, slot); used only to classify Bloom hits as
     true or false.  Mutable (like [live_asids] and [quarantined]) so
     snapshot restore can swap in a structure-preserving [Hashtbl.copy] —
     fold order over a copy matches the original, which matters for
     [on_remote_store]'s probe order. *)
  mutable exact_slots : (int * Addr.t, unit) Hashtbl.t;
  (* Address spaces with live filter entries since the last clear; a remote
     invalidation must probe the filter under each of them. *)
  mutable live_asids : (int, unit) Hashtbl.t;
  mutable asid : int;
  (* Half-observed call/jump idiom: pc and target of the last retired
     eligible call, or [Addr.none] when none is pending.  Two plain ints
     instead of an option pair keep the retire path allocation-free. *)
  mutable pending_pc : Addr.t;
  mutable pending_target : Addr.t;
  (* Graceful degradation: ABTB sets implicated in a detected mis-skip,
     mapped to the number of further skip opportunities to suppress.  Keyed
     by physical set index, so the window survives whole-table clears and
     context switches like the hardware state it models. *)
  mutable quarantined : (int, int) Hashtbl.t;
  (* Fault-injection hook: when set, consulted before every filter-driven
     clear; returning [true] suppresses the clear (models a lost clear
     pulse).  Never set outside the fault harness. *)
  mutable clear_veto : (unit -> bool) option;
  (* Whole-core degradation after a timed-out coherence invalidation: the
     unit was flushed and skips stay suppressed for this many further
     opportunities (entry present and otherwise skippable), so the core
     runs architecturally until the window drains. *)
  mutable degraded : int;
}

let create ?(config = default_config) ~counters ~btb_update ~btb_predict
    ~on_stale_prediction ~read_got () =
  validate_config config;
  {
    cfg = config;
    abtb = Abtb.create ?ways:config.abtb_ways ~entries:config.abtb_entries ();
    bloom = Bloom.create ~bits:config.bloom_bits ~hashes:config.bloom_hashes;
    counters;
    btb_update;
    btb_predict;
    on_stale_prediction;
    read_got;
    exact_slots = Hashtbl.create 64;
    live_asids = Hashtbl.create 8;
    asid = 0;
    pending_pc = Addr.none;
    pending_target = Addr.none;
    quarantined = Hashtbl.create 8;
    clear_veto = None;
    degraded = 0;
  }

let abtb t = t.abtb
let bloom t = t.bloom
let asid t = t.asid
let set_clear_veto t f = t.clear_veto <- f
let quarantined_sets t = Hashtbl.length t.quarantined

let veto_clears t =
  match t.clear_veto with None -> false | Some f -> f ()

let report_mis_skip t ~tramp =
  let s = Abtb.set_index t.abtb tramp in
  Abtb.clear_set t.abtb s;
  if t.cfg.quarantine_window > 0 && not (Hashtbl.mem t.quarantined s) then begin
    Hashtbl.replace t.quarantined s t.cfg.quarantine_window;
    t.counters.Counters.quarantine_entries <-
      t.counters.Counters.quarantine_entries + 1
  end;
  t.counters.Counters.mis_skips <- t.counters.Counters.mis_skips + 1

(* A quarantined set falls back to architectural (trampoline) execution;
   each suppressed skip opportunity shortens the sentence.  Inserts into the
   set remain allowed, so service resumes with warm entries on release. *)
let quarantine_blocks t tramp =
  Hashtbl.length t.quarantined > 0
  &&
  let s = Abtb.set_index t.abtb tramp in
  match Hashtbl.find_opt t.quarantined s with
  | None -> false
  | Some n ->
      if n <= 1 then Hashtbl.remove t.quarantined s
      else Hashtbl.replace t.quarantined s (n - 1);
      true

let set_asid t asid =
  t.asid <- asid;
  (* The idiom window never spans a context switch. *)
  t.pending_pc <- Addr.none

let degraded_remaining t = t.degraded

let flush t =
  Abtb.clear t.abtb;
  Bloom.clear t.bloom;
  (* [Hashtbl.clear], not [reset]: clears happen on every guarded GOT
     store, and [reset] would reallocate the bucket array each time. *)
  Hashtbl.clear t.exact_slots;
  Hashtbl.clear t.live_asids;
  t.pending_pc <- Addr.none

(* Graceful degradation after a timed-out coherence invalidation: this
   core never saw the message, so nothing it cached about guarded GOT
   state can be trusted.  Flush everything and suppress skips for a
   window of opportunities — the resolver path is always correct. *)
let degrade t ~window =
  if window <= 0 then invalid_arg "Skip.degrade: window must be positive";
  flush t;
  if t.degraded = 0 then
    t.counters.Counters.timeout_degrades <-
      t.counters.Counters.timeout_degrades + 1;
  t.degraded <- max t.degraded window

let record_clear t ~addr ~asid =
  t.counters.Counters.abtb_clears <- t.counters.Counters.abtb_clears + 1;
  if not (Hashtbl.mem t.exact_slots (asid, addr)) then
    t.counters.Counters.abtb_false_clears <-
      t.counters.Counters.abtb_false_clears + 1;
  flush t

let clear_on_store t addr =
  if
    t.cfg.coherence = Bloom_guard
    && Bloom.mem ~asid:t.asid t.bloom (bloom_key t.cfg addr)
    && not (veto_clears t)
  then record_clear t ~addr ~asid:t.asid

let on_remote_store t addr =
  (* A store retired by another core: the local filter is probed under every
     address space with live entries — the slot may guard any of them. *)
  let key = bloom_key t.cfg addr in
  let hit_asid =
    Hashtbl.fold
      (fun a () acc ->
        match acc with
        | Some _ -> acc
        | None -> if Bloom.mem ~asid:a t.bloom key then Some a else None)
      t.live_asids None
  in
  match hit_asid with
  | None -> ()
  | Some a ->
      if not (veto_clears t) then begin
        t.counters.Counters.coherence_invalidations <-
          t.counters.Counters.coherence_invalidations + 1;
        record_clear t ~addr ~asid:a
      end

(* The front end redirects through the BTB only (the hardware is an
   unmodified fetch pipeline); the ABTB confirms or corrects at resolution:
   - BTB holds the function address and the ABTB agrees: clean skip.
   - BTB holds something else while the ABTB knows the function: resolution
     corrects to the function address; the trampoline is still skipped but
     at mispredict cost (charged by the engine, which sees a redirected
     call whose BTB entry mismatches).
   - BTB miss: decode supplies the architectural target; the trampoline
     executes and pair-retire retrains the entry.  No extra mispredict.
   - BTB stale (function address) with no ABTB entry: the fetch went to the
     stale target and must be squashed — an enhanced-only mispredict,
     reported through [on_stale_prediction]. *)
let on_fetch_call t ~pc ~arch_target =
  let predicted = t.btb_predict pc in
  let entry = Abtb.lookup_default ~asid:t.asid t.abtb arch_target in
  if entry == Abtb.no_entry then begin
    if predicted <> Addr.none && predicted <> arch_target then
      t.on_stale_prediction ();
    arch_target
  end
  else if t.degraded > 0 then begin
    (* Whole-core degradation after a coherence timeout: the entry (warm
       again after the flush) is ignored and the trampoline executes
       architecturally until the window drains.  Each suppressed skip
       opportunity shortens the sentence. *)
    t.degraded <- t.degraded - 1;
    if predicted <> Addr.none && predicted <> arch_target then
      t.on_stale_prediction ();
    arch_target
  end
  else if quarantine_blocks t arch_target then begin
    (* Set under quarantine after a detected mis-skip: ignore the entry
       and take the architectural path.  The front end may still have
       redirected on the stale BTB entry, so charge the squash. *)
    if predicted <> Addr.none && predicted <> arch_target then
      t.on_stale_prediction ();
    arch_target
  end
  else if predicted = Addr.none then
    arch_target (* no redirection source: architectural path *)
  else begin
    let { Abtb.func; got_slot } = entry in
    let stale = t.cfg.verify_targets && t.read_got got_slot <> func in
    if stale then
      if t.cfg.quarantine_on_verify then begin
        (* Degrade instead of dying: treat the detected staleness as a
           mis-skip caught at resolution — squash, quarantine the set, and
           execute the trampoline architecturally. *)
        report_mis_skip t ~tramp:arch_target;
        t.on_stale_prediction ();
        arch_target
      end
      else
        raise
          (Misspeculation
             (Printf.sprintf "ABTB maps %s to %s but GOT slot %s holds %s"
                (Addr.to_hex arch_target) (Addr.to_hex func)
                (Addr.to_hex got_slot)
                (Addr.to_hex (t.read_got got_slot))))
    else begin
      t.counters.Counters.abtb_hits <- t.counters.Counters.abtb_hits + 1;
      t.counters.Counters.tramp_skips <- t.counters.Counters.tramp_skips + 1;
      func
    end
  end

let on_retire_packed t ~pc ~size ~store ~kind ~target ~aux =
  (* Coherence watch: any retired store that hits the filter clears all. *)
  if store >= 0 then clear_on_store t store;
  (* Idiom detection: call retired, next retired instruction is a
     memory-indirect jump ([aux] carries its GOT slot). *)
  if t.pending_pc <> Addr.none && kind = Event.Kind.jump_indirect then begin
    let fallthrough = pc + size in
    if not (t.cfg.filter_fallthrough && target = fallthrough) then begin
      Abtb.insert t.abtb ~asid:t.asid t.pending_target
        { Abtb.func = target; got_slot = aux };
      Bloom.add ~asid:t.asid t.bloom (bloom_key t.cfg aux);
      Hashtbl.replace t.exact_slots (t.asid, aux) ();
      Hashtbl.replace t.live_asids t.asid ();
      t.counters.Counters.abtb_inserts <- t.counters.Counters.abtb_inserts + 1;
      (* Retrain the call site so the very next fetch goes straight to
         the function (§3.2, front-end update rule). *)
      t.btb_update t.pending_pc target
    end
  end;
  (* Only unredirected direct calls (target = architectural target) can be
     followed by a trampoline; indirect calls always qualify. *)
  if
    (kind = Event.Kind.call_direct && target = aux)
    || kind = Event.Kind.call_indirect
  then begin
    t.pending_pc <- pc;
    t.pending_target <- target
  end
  else t.pending_pc <- Addr.none

let on_retire t (ev : Event.t) =
  let store = match ev.store with Some a -> a | None -> Addr.none in
  let kind, target, aux, _taken = Event.pack_branch ev.branch in
  on_retire_packed t ~pc:ev.pc ~size:ev.size ~store ~kind ~target ~aux

(* Snapshot/restore for segmented replay.  The hashtable shadows are
   captured with [Hashtbl.copy], which preserves bucket structure and
   therefore fold order — [on_remote_store] probes [live_asids] in fold
   order, so a restored controller must fold identically.  [clear_veto] is
   deliberately excluded: it is a fault-harness hook, never set on the
   serving path, and a closure cannot be meaningfully copied. *)

type snap = {
  s_abtb : Abtb.snap;
  s_bloom : Bloom.snap;
  s_exact_slots : (int * Addr.t, unit) Hashtbl.t;
  s_live_asids : (int, unit) Hashtbl.t;
  s_asid : int;
  s_pending_pc : Addr.t;
  s_pending_target : Addr.t;
  s_quarantined : (int, int) Hashtbl.t;
  s_degraded : int;
}

let snapshot t =
  {
    s_abtb = Abtb.snapshot t.abtb;
    s_bloom = Bloom.snapshot t.bloom;
    s_exact_slots = Hashtbl.copy t.exact_slots;
    s_live_asids = Hashtbl.copy t.live_asids;
    s_asid = t.asid;
    s_pending_pc = t.pending_pc;
    s_pending_target = t.pending_target;
    s_quarantined = Hashtbl.copy t.quarantined;
    s_degraded = t.degraded;
  }

let restore t s =
  Abtb.restore t.abtb s.s_abtb;
  Bloom.restore t.bloom s.s_bloom;
  t.exact_slots <- Hashtbl.copy s.s_exact_slots;
  t.live_asids <- Hashtbl.copy s.s_live_asids;
  t.asid <- s.s_asid;
  t.pending_pc <- s.s_pending_pc;
  t.pending_target <- s.s_pending_target;
  t.quarantined <- Hashtbl.copy s.s_quarantined;
  t.degraded <- s.s_degraded

let fingerprint t =
  let htbl_fp h =
    (* Order-insensitive: XOR of per-binding hashes. *)
    Hashtbl.fold (fun k v acc -> acc lxor Hashtbl.hash (k, v)) h 0
  in
  Hashtbl.hash
    [
      Abtb.fingerprint t.abtb;
      Bloom.fingerprint t.bloom;
      htbl_fp t.exact_slots;
      htbl_fp t.live_asids;
      t.asid;
      t.pending_pc;
      t.pending_target;
      htbl_fp t.quarantined;
      t.degraded;
    ]
