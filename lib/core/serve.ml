open Dlink_uarch
module Arrival = Dlink_util.Arrival
module Dpool = Dlink_util.Dpool
module Json = Dlink_util.Json
module Rng = Dlink_util.Rng
module Site_hash = Dlink_util.Site_hash
module Latency = Dlink_stats.Latency
module Kernel = Dlink_pipeline.Kernel

(* Open-loop serving cells: the driver that turns "skip mechanism saves X
   PKI" into "skip mechanism buys Y% more requests/sec at the same p99".

   A cell fixes a workload, a link mode, an offered load, an arrival
   process, and a flush policy, then plays an open-loop client against a
   single-server bounded admission queue whose service times come from
   actually executing each request on the pipeline kernel — so service
   depends on the link mode and on the microarchitectural state carried
   across requests, exactly like the closed-loop experiments.  Request
   latency = queue wait + service, in simulated cycles; the host clock
   never enters, so every cell is bit-reproducible from its seed.

   The cell is a trace-driven queueing simulation: the execution stream
   is always the full closed-loop request sequence (flush policy keyed by
   stream index), yielding a per-request service-time vector, and the
   bounded queue is pure arithmetic over that vector plus the arrival
   times.  Admission drops therefore affect queueing only, never machine
   state — which is what makes the generate driver here
   ([run_cell_generate], over {!Sim}) and the packed-trace replay driver
   ({!Dlink_trace.Serve_replay}) bit-identical: the service vector
   reduces to the kernel equivalence the pipeline matrix already proves,
   and the queueing arithmetic is shared. *)

(* ------------------------------------------------------------------ *)
(* Flush policy: what happens to the server's microarchitectural state
   every [flush_every] served requests — nothing, a full flush (untagged
   hardware), or an ASID-retaining switch (tagged hardware).  Models a
   co-scheduled tenant touching the core between bursts of our requests. *)

type flush = No_flush | Flush | Asid

let flush_names = [ "none"; "flush"; "asid" ]

let flush_to_string = function
  | No_flush -> "none"
  | Flush -> "flush"
  | Asid -> "asid"

let flush_of_string = function
  | "none" -> Some No_flush
  | "flush" -> Some Flush
  | "asid" -> Some Asid
  | _ -> None

type config = {
  mode : Sim.mode;
  load : float;  (** offered load as a fraction of base-mode capacity *)
  arrival : Arrival.process;
  queue_cap : int;
  requests : int;
  flush : flush;
  flush_every : int;
  seed : int;
}

let default_config =
  {
    mode = Sim.Base;
    load = 0.8;
    arrival = Arrival.Poisson;
    queue_cap = 64;
    requests = 400;
    flush = No_flush;
    flush_every = 32;
    seed = 42;
  }

let check_config cfg =
  if not (Float.is_finite cfg.load) || cfg.load <= 0.0 then
    invalid_arg "Serve: load must be a positive real";
  if cfg.queue_cap <= 0 then invalid_arg "Serve: queue_cap must be positive";
  if cfg.requests < 0 then invalid_arg "Serve: requests must be non-negative";
  if cfg.flush_every <= 0 then invalid_arg "Serve: flush_every must be positive"

(* ------------------------------------------------------------------ *)
(* The queue engine.  Admission is lazy, as in [Multi.quantum_open]: all
   arrivals up to the current virtual time are admitted (or dropped at a
   full queue) immediately before each service starts, which reproduces
   exactly the occupancy a real-time interleaving would have seen because
   the queue only drains at those same instants. *)

type queue_stats = {
  q_served : int;
  q_dropped : int;
  q_reqs : int array;  (** request index per served request, serve order *)
  q_lat_cycles : int array;  (** queue wait + service, serve order *)
  q_wait_cycles : int array;
  q_busy : int;
  q_span : int;  (** completion time of the last served request *)
}

let simulate_queue ~arrivals ~queue_cap ~service =
  if queue_cap <= 0 then
    invalid_arg "Serve.simulate_queue: queue_cap must be positive";
  let n = Array.length arrivals in
  let q = Queue.create () in
  let reqs = ref [] and lats = ref [] and waits = ref [] in
  let now = ref 0 and busy = ref 0 in
  let served = ref 0 and dropped = ref 0 and next = ref 0 in
  let admit () =
    while !next < n && arrivals.(!next) <= !now do
      if Queue.length q < queue_cap then Queue.add !next q else incr dropped;
      incr next
    done
  in
  while !served + !dropped < n do
    admit ();
    if Queue.is_empty q then begin
      (* Idle until the earliest un-admitted arrival. *)
      if arrivals.(!next) > !now then now := arrivals.(!next);
      admit ()
    end;
    let r = Queue.pop q in
    let start = !now in
    let s = service ~nth:!served ~req:r in
    if s < 0 then invalid_arg "Serve.simulate_queue: negative service time";
    busy := !busy + s;
    now := !now + s;
    reqs := r :: !reqs;
    lats := (!now - arrivals.(r)) :: !lats;
    waits := (start - arrivals.(r)) :: !waits;
    incr served
  done;
  {
    q_served = !served;
    q_dropped = !dropped;
    q_reqs = Array.of_list (List.rev !reqs);
    q_lat_cycles = Array.of_list (List.rev !lats);
    q_wait_cycles = Array.of_list (List.rev !waits);
    q_busy = !busy;
    q_span = !now;
  }

(* ------------------------------------------------------------------ *)

type rtype_stats = {
  rt_name : string;
  rt_served : int;
  rt_mean_us : float;
  rt_p99_us : float;
}

type cell = {
  cfg : config;
  workload_name : string;
  mean_service_cycles : int;  (** base-mode calibration behind [load] *)
  served : int;
  dropped : int;
  lat_cycles : int array;  (** per served request, serve order *)
  recorder : Latency.t;  (** the same latencies in scaled microseconds *)
  offered_rps : float;
  goodput_rps : float;
  util : float;
  span_us : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  mean_wait_us : float;
  by_rtype : rtype_stats array;
  lat_fingerprint : int;
      (** order-sensitive digest of (req, lat, wait) in serve order *)
  segments : int;  (** replay segments the measured pass ran as (1 = whole) *)
  counters : Counters.t;
}

(* Order-sensitive digest of the served-request stream: folding (request
   index, latency, wait) in serve order means two drivers agree iff every
   per-request outcome matches exactly — the O(1)-memory bit-identity
   witness the segmented-replay tests pin, usable even when the
   per-request latency vector itself is not materialized. *)
let fp_fold acc ~req ~lat ~wait =
  Site_hash.mix2 acc (Site_hash.mix2 (Site_hash.mix2 req lat) wait)

let rtype_stats_of (w : Workload.t) buckets =
  Array.mapi
    (fun rt name ->
      {
        rt_name = name;
        rt_served = Latency.count buckets.(rt);
        rt_mean_us = Latency.mean buckets.(rt);
        rt_p99_us = Latency.p99 buckets.(rt);
      })
    w.Workload.request_type_names

(* Shared cell assembly: everything below the raw per-request accounting
   is identical between the array-based ([finish_cell]) and streaming
   ([finish_stream_cell]) drivers. *)
let assemble_cell ~cfg ~(w : Workload.t) ~mean_service ~served ~dropped
    ~lat_cycles ~recorder ~by_rtype ~wait_cycles ~busy ~span ~lat_fingerprint
    ~segments ~counters =
  let span_us = Workload.cycles_to_us w span in
  let span_s = span_us *. 1e-6 in
  let mean_gap = float_of_int mean_service /. cfg.load in
  let gap_s = Workload.cycles_to_us w (int_of_float mean_gap) *. 1e-6 in
  let mean_wait_us =
    if served = 0 then Float.nan
    else Workload.cycles_to_us w wait_cycles /. float_of_int served
  in
  {
    cfg;
    workload_name = w.Workload.wname;
    mean_service_cycles = mean_service;
    served;
    dropped;
    lat_cycles;
    recorder;
    offered_rps = (if gap_s > 0.0 then 1.0 /. gap_s else Float.nan);
    goodput_rps = (if span_s > 0.0 then float_of_int served /. span_s else 0.0);
    util = (if span > 0 then float_of_int busy /. float_of_int span else 0.0);
    span_us;
    mean_us = Latency.mean recorder;
    p50_us = Latency.p50 recorder;
    p99_us = Latency.p99 recorder;
    p999_us = Latency.p999 recorder;
    mean_wait_us;
    by_rtype;
    lat_fingerprint;
    segments;
    counters;
  }

let finish_cell ~cfg ~(w : Workload.t) ~mean_service ~segments
    ~(qs : queue_stats) ~counters =
  let recorder = Latency.create () in
  Array.iter
    (fun lc -> Latency.record recorder (Workload.cycles_to_us w lc))
    qs.q_lat_cycles;
  let by_rtype =
    let n_rt = Array.length w.Workload.request_type_names in
    let buckets = Array.init n_rt (fun _ -> Latency.create ()) in
    Array.iteri
      (fun i r ->
        let rt = (w.Workload.gen_request r).Workload.rtype in
        Latency.record buckets.(rt) (Workload.cycles_to_us w qs.q_lat_cycles.(i)))
      qs.q_reqs;
    rtype_stats_of w buckets
  in
  let fp = ref 0 in
  for i = 0 to qs.q_served - 1 do
    fp :=
      fp_fold !fp ~req:qs.q_reqs.(i) ~lat:qs.q_lat_cycles.(i)
        ~wait:qs.q_wait_cycles.(i)
  done;
  assemble_cell ~cfg ~w ~mean_service ~served:qs.q_served ~dropped:qs.q_dropped
    ~lat_cycles:qs.q_lat_cycles ~recorder ~by_rtype
    ~wait_cycles:(Array.fold_left ( + ) 0 qs.q_wait_cycles)
    ~busy:qs.q_busy ~span:qs.q_span ~lat_fingerprint:!fp ~segments ~counters

(* ------------------------------------------------------------------ *)
(* Base-mode capacity calibration: the mean service time (cycles per
   request, closed loop) every load level is expressed against.  Always
   measured in [Base] so "load 1.0" means the same client behavior for
   every mode under comparison — the enhanced modes then run the same
   arrival sequence with shorter service times, which is precisely the
   capacity head-room being measured. *)

let calibrate_generate ?ucfg ?skip_cfg ?requests ?warmup (w : Workload.t) =
  let n = Option.value requests ~default:w.Workload.default_requests in
  let r = Experiment.run ?ucfg ?skip_cfg ~requests:n ?warmup ~mode:Sim.Base w in
  max 1 (r.Experiment.counters.Counters.cycles / max 1 n)

(* The shared serving loop body: arrivals from the seed, service times
   from the driver's precomputed vector.  Keeping the queue a pure
   function of (arrivals, services) is what decouples admission drops
   from machine state — see the header comment. *)
let run_queue ~cfg ~mean_service ~services =
  if Array.length services <> cfg.requests then
    invalid_arg "Serve.run_queue: services length <> requests";
  let arrivals =
    Arrival.times ~seed:cfg.seed
      ~mean_gap:(float_of_int mean_service /. cfg.load)
      ~n:cfg.requests cfg.arrival
  in
  simulate_queue ~arrivals ~queue_cap:cfg.queue_cap
    ~service:(fun ~nth:_ ~req -> services.(req))

(* Generate-mode cell driver: live interpreter over [Sim].  The replay
   mirror lives in {!Dlink_trace.Serve_replay}; both must produce
   bit-identical [lat_cycles] for replay-compatible configurations. *)
let run_cell_generate ?ucfg ?skip_cfg ?mean_service ~cfg (w : Workload.t) =
  check_config cfg;
  let mean_service =
    match mean_service with
    | Some m -> m
    | None -> calibrate_generate ?ucfg ?skip_cfg ~requests:cfg.requests w
  in
  let sim =
    Sim.create ?ucfg ?skip_cfg ~func_align:w.Workload.func_align ~mode:cfg.mode
      w.Workload.objs
  in
  let kernel = Sim.kernel sim in
  let call (rq : Workload.request) =
    Kernel.note_boundary kernel ~rtype:rq.Workload.rtype;
    Sim.call sim ~mname:rq.Workload.mname ~fname:rq.Workload.fname
  in
  for i = 0 to w.Workload.warmup_requests - 1 do
    call (w.Workload.gen_request (-1 - i))
  done;
  Sim.mark_measurement_start sim;
  let counters = Sim.counters sim in
  let services = Array.make cfg.requests 0 in
  for i = 0 to cfg.requests - 1 do
    (match cfg.flush with
    | No_flush -> ()
    | Flush when i > 0 && i mod cfg.flush_every = 0 -> Sim.context_switch sim
    | Asid when i > 0 && i mod cfg.flush_every = 0 ->
        Sim.context_switch ~retain_asid:true sim
    | Flush | Asid -> ());
    let before = counters.Counters.cycles in
    call (w.Workload.gen_request i);
    services.(i) <- counters.Counters.cycles - before
  done;
  let qs = run_queue ~cfg ~mean_service ~services in
  finish_cell ~cfg ~w ~mean_service ~segments:1 ~qs
    ~counters:(Sim.measured_counters sim)

(* ------------------------------------------------------------------ *)
(* Streaming queue engine: the same bounded-FIFO semantics as
   [simulate_queue], re-expressed as a push API — the driver feeds service
   times one request at a time, in request-index order, and the engine
   folds each served request into a caller-provided sink instead of
   materializing per-request arrays, so million-request cells run in
   O(1) queue memory.

   Why pushing index [k] can resolve [k]'s fate immediately: arrivals are
   sorted and the queue is FIFO, so among admitted requests serve order
   equals index order.  At [stream_push k], every index < k has been
   served or dropped, hence [k] is either at the head of the queue
   (serve), not yet arrived with an idle server (jump to its arrival and
   admit, exactly [simulate_queue]'s idle rule), or was dropped at a full
   queue by an earlier admission scan.  Admission scans happen at the
   same virtual times with the same queue occupancy as in
   [simulate_queue], so (now, queue, drops) evolve identically —
   [test_serve] pins the equivalence over random cells.

   The engine also hosts the closed-loop client population
   ([Arrival.Closed]): [clients] users each wait for their request's
   completion, think for an exponentially distributed time, and
   re-arrive.  Arrivals are coupled to completions and cannot be
   precomputed ([Arrival.times] raises) — the engine pops the earliest
   client ready time as request [k]'s arrival (a client's next ready
   time is >= its request's completion >= every pending ready time, so
   arrivals stay sorted and FIFO order is again index order), serves at
   [max now arrival], and pushes the client back at completion + think.
   The population bound makes admission self-throttling: at most
   [clients] requests are ever outstanding, so nothing is dropped and
   [queue_cap] never binds.  The think-time mean follows the interactive
   response-time law, Z = S * (clients / load - 1), so that a closed
   cell at [load] offers the same arrival rate (load / S) as an open
   cell at the same load while the server keeps up — past the knee the
   population throttles instead of queueing without bound. *)

type stream_sink = req:int -> lat:int -> wait:int -> unit

type stream_open = {
  so_gen : Arrival.gen;
  so_q : (int * int) Queue.t;  (* (index, arrival) admitted, FIFO *)
  mutable so_next : int;  (* next index not yet pulled from the generator *)
  mutable so_next_arr : int;  (* its arrival time; valid while so_next < n *)
}

(* Binary min-heap of client ready times (closed loop).  Clients are
   statistically indistinguishable — each draws its next think time at
   completion — so bare ready times suffice. *)
type stream_heap = { mutable h_n : int; h_ts : int array }

let heap_push h x =
  let ts = h.h_ts in
  let i = ref h.h_n in
  h.h_n <- h.h_n + 1;
  ts.(!i) <- x;
  while !i > 0 && ts.((!i - 1) / 2) > ts.(!i) do
    let p = (!i - 1) / 2 in
    let tmp = ts.(p) in
    ts.(p) <- ts.(!i);
    ts.(!i) <- tmp;
    i := p
  done

let heap_pop h =
  let ts = h.h_ts in
  let top = ts.(0) in
  h.h_n <- h.h_n - 1;
  ts.(0) <- ts.(h.h_n);
  let i = ref 0 and sifting = ref true in
  while !sifting do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < h.h_n && ts.(l) < ts.(!m) then m := l;
    if r < h.h_n && ts.(r) < ts.(!m) then m := r;
    if !m = !i then sifting := false
    else begin
      let tmp = ts.(!m) in
      ts.(!m) <- ts.(!i);
      ts.(!i) <- tmp;
      i := !m
    end
  done;
  top

type stream_closed = {
  sc_ready : stream_heap;
  sc_rng : Rng.t;
  sc_think_mean : float;
}

type stream_source = Src_open of stream_open | Src_closed of stream_closed

type stream_queue = {
  sq_cap : int;
  sq_n : int;
  sq_sink : stream_sink;
  sq_src : stream_source;
  mutable sq_now : int;
  mutable sq_busy : int;
  mutable sq_served : int;
  mutable sq_dropped : int;
}

let stream_queue ~cfg ~mean_service ~sink =
  check_config cfg;
  if mean_service <= 0 then
    invalid_arg "Serve.stream_queue: mean_service must be positive";
  let src =
    match cfg.arrival with
    | Arrival.Closed { clients } ->
        if clients <= 0 then
          invalid_arg "Serve.stream_queue: clients must be positive";
        let think_mean =
          Float.max 0.0
            (float_of_int mean_service
            *. ((float_of_int clients /. cfg.load) -. 1.0))
        in
        let rng = Rng.create (Site_hash.mix2 cfg.seed 0xc1d) in
        let ready = { h_n = 0; h_ts = Array.make clients 0 } in
        (* Initial think draws stagger the population's first arrivals. *)
        for _ = 1 to clients do
          let t =
            if think_mean > 0.0 then Rng.exponential rng ~mean:think_mean
            else 0.0
          in
          heap_push ready (int_of_float t)
        done;
        Src_closed { sc_ready = ready; sc_rng = rng; sc_think_mean = think_mean }
    | p ->
        let gen =
          Arrival.gen ~seed:cfg.seed
            ~mean_gap:(float_of_int mean_service /. cfg.load)
            p
        in
        let o =
          { so_gen = gen; so_q = Queue.create (); so_next = 0; so_next_arr = 0 }
        in
        if cfg.requests > 0 then o.so_next_arr <- Arrival.next gen;
        Src_open o
  in
  {
    sq_cap = cfg.queue_cap;
    sq_n = cfg.requests;
    sq_sink = sink;
    sq_src = src;
    sq_now = 0;
    sq_busy = 0;
    sq_served = 0;
    sq_dropped = 0;
  }

let stream_push t ~req:k ~service:s =
  if s < 0 then invalid_arg "Serve.stream_push: negative service time";
  match t.sq_src with
  | Src_open o ->
      let admit () =
        while o.so_next < t.sq_n && o.so_next_arr <= t.sq_now do
          if Queue.length o.so_q < t.sq_cap then
            Queue.add (o.so_next, o.so_next_arr) o.so_q
          else t.sq_dropped <- t.sq_dropped + 1;
          o.so_next <- o.so_next + 1;
          if o.so_next < t.sq_n then o.so_next_arr <- Arrival.next o.so_gen
        done
      in
      admit ();
      if Queue.is_empty o.so_q && o.so_next = k then begin
        (* Server idle and k not yet arrived: idle until its arrival. *)
        if o.so_next_arr > t.sq_now then t.sq_now <- o.so_next_arr;
        admit ()
      end;
      (match Queue.peek_opt o.so_q with
      | Some (r, arr) when r = k ->
          ignore (Queue.pop o.so_q);
          let start = t.sq_now in
          t.sq_busy <- t.sq_busy + s;
          t.sq_now <- t.sq_now + s;
          t.sq_served <- t.sq_served + 1;
          t.sq_sink ~req:k ~lat:(t.sq_now - arr) ~wait:(start - arr)
      | _ -> (* k was dropped by an earlier admission scan *) ())
  | Src_closed c ->
      let arr = heap_pop c.sc_ready in
      let start = if arr > t.sq_now then arr else t.sq_now in
      t.sq_busy <- t.sq_busy + s;
      t.sq_now <- start + s;
      t.sq_served <- t.sq_served + 1;
      t.sq_sink ~req:k ~lat:(t.sq_now - arr) ~wait:(start - arr);
      let think =
        if c.sc_think_mean > 0.0 then
          int_of_float (Rng.exponential c.sc_rng ~mean:c.sc_think_mean)
        else 0
      in
      heap_push c.sc_ready (t.sq_now + think)

let stream_served t = t.sq_served
let stream_dropped t = t.sq_dropped
let stream_busy_cycles t = t.sq_busy
let stream_span_cycles t = t.sq_now

(* ------------------------------------------------------------------ *)
(* Streaming cell accounting: constant-memory per-request accumulation
   (log-bucket recorder, per-rtype buckets, wait sum, order-sensitive
   fingerprint).  The raw latency vector is kept only for cells small
   enough that keeping it is free — large cells report through the
   recorder and fingerprint alone. *)

let lat_keep_cap = 100_000

type stream_accum = {
  sa_w : Workload.t;
  sa_recorder : Latency.t;
  sa_rt : Latency.t array;
  sa_keep : int array;  (* [||] above [lat_keep_cap] *)
  mutable sa_kept : int;
  mutable sa_wait_cycles : int;
  mutable sa_fp : int;
}

let stream_accum (w : Workload.t) ~requests =
  {
    sa_w = w;
    sa_recorder = Latency.create ();
    sa_rt = Array.map (fun _ -> Latency.create ()) w.Workload.request_type_names;
    sa_keep = (if requests <= lat_keep_cap then Array.make requests 0 else [||]);
    sa_kept = 0;
    sa_wait_cycles = 0;
    sa_fp = 0;
  }

let accum_sink a ~req ~lat ~wait =
  let us = Workload.cycles_to_us a.sa_w lat in
  Latency.record a.sa_recorder us;
  Latency.record a.sa_rt.((a.sa_w.Workload.gen_request req).Workload.rtype) us;
  a.sa_wait_cycles <- a.sa_wait_cycles + wait;
  a.sa_fp <- fp_fold a.sa_fp ~req ~lat ~wait;
  if Array.length a.sa_keep > 0 then begin
    a.sa_keep.(a.sa_kept) <- lat;
    a.sa_kept <- a.sa_kept + 1
  end

let finish_stream_cell ~cfg ~mean_service ~segments ~(sq : stream_queue)
    ~(a : stream_accum) ~counters =
  assemble_cell ~cfg ~w:a.sa_w ~mean_service ~served:sq.sq_served
    ~dropped:sq.sq_dropped
    ~lat_cycles:
      (if Array.length a.sa_keep > 0 then Array.sub a.sa_keep 0 a.sa_kept
       else [||])
    ~recorder:a.sa_recorder
    ~by_rtype:(rtype_stats_of a.sa_w a.sa_rt)
    ~wait_cycles:a.sa_wait_cycles ~busy:sq.sq_busy ~span:sq.sq_now
    ~lat_fingerprint:a.sa_fp ~segments ~counters

(* ------------------------------------------------------------------ *)
(* Snapshot-segmented generate driver.

   The measured pass of a serving cell is inherently sequential — request
   i+1's service time depends on the microarchitectural state request i
   left behind — and the arrival times need the base-mode mean service
   time, which only a full calibration pass yields.  But for the
   calibration configuration itself (Base mode, no flushes) the measured
   stream IS the calibration stream: the calibration pass can harvest a
   {!Sim.snapshot} at every segment boundary, and the measured pass
   becomes a re-execution that replays the segments concurrently, each
   worker restoring its boundary snapshot into a fresh simulator.
   Per-request service times are bit-identical to the sequential pass by
   construction (the snapshot captures everything that determines future
   execution), and the queueing arithmetic consumes them strictly in
   index order on the calling domain, so the whole cell is bit-identical
   at any [jobs] — workers only buy wall-clock time.

   For other modes and flush policies the mode pass is distinct from the
   Base calibration pass, and parallelizing it would require a third,
   mode-specific snapshot pass — strictly more work than streaming the
   measured pass directly.  Those cells take the direct streaming path
   below: same O(segments) memory, sequential wall-clock. *)

let run_cell_stream ?ucfg ?skip_cfg ?mean_service ?(jobs = 1) ?segment ~cfg
    (w : Workload.t) =
  check_config cfg;
  (match segment with
  | Some k when k <= 0 ->
      invalid_arg "Serve.run_cell_stream: segment must be positive"
  | _ -> ());
  let n = cfg.requests in
  let make_sim () =
    Sim.create ?ucfg ?skip_cfg ~func_align:w.Workload.func_align ~mode:cfg.mode
      w.Workload.objs
  in
  let call sim kernel (rq : Workload.request) =
    Kernel.note_boundary kernel ~rtype:rq.Workload.rtype;
    Sim.call sim ~mname:rq.Workload.mname ~fname:rq.Workload.fname
  in
  let warmup sim kernel =
    for i = 0 to w.Workload.warmup_requests - 1 do
      call sim kernel (w.Workload.gen_request (-1 - i))
    done;
    Sim.mark_measurement_start sim
  in
  let segmented =
    cfg.mode = Sim.Base && cfg.flush = No_flush && mean_service = None && n > 0
  in
  if segmented then begin
    (* Pass A: the calibration pass, replicating [Experiment.run]'s exact
       request sequence so the mean equals [calibrate_generate]'s,
       harvesting a snapshot at each segment boundary.  Base / No_flush
       means this is also the measured stream, so the measured counters
       come from here and the snapshots are re-entry points into this
       very execution. *)
    let seg_len =
      let cap_len = ((n - 1) / 256) + 1 in
      (* at most 256 resident snapshots *)
      match segment with
      | Some k -> max k cap_len
      | None ->
          let target = max 4 (min 32 (4 * max 1 jobs)) in
          max cap_len (((n - 1) / target) + 1)
    in
    let seg_count = ((n - 1) / seg_len) + 1 in
    let sim = make_sim () in
    let kernel = Sim.kernel sim in
    warmup sim kernel;
    let snaps = Array.make seg_count None in
    for i = 0 to n - 1 do
      if i mod seg_len = 0 then snaps.(i / seg_len) <- Some (Sim.snapshot sim);
      call sim kernel (w.Workload.gen_request i)
    done;
    let counters = Sim.measured_counters sim in
    let mean_service = max 1 (counters.Counters.cycles / max 1 n) in
    let a = stream_accum w ~requests:n in
    let sq = stream_queue ~cfg ~mean_service ~sink:(accum_sink a) in
    (* Pass B: segmented re-execution.  Workers replay disjoint segments
       from their boundary snapshots; the calling domain feeds the
       service times into the queue engine strictly in index order. *)
    Dpool.run_ordered ~jobs
      ~produce:(fun j ->
        let sim_j = make_sim () in
        (match snaps.(j) with
        | Some s -> Sim.restore sim_j s
        | None -> assert false);
        let kernel_j = Sim.kernel sim_j in
        let cj = Sim.counters sim_j in
        let lo = j * seg_len in
        let hi = min n (lo + seg_len) in
        let out = Array.make (hi - lo) 0 in
        for i = lo to hi - 1 do
          let before = cj.Counters.cycles in
          call sim_j kernel_j (w.Workload.gen_request i);
          out.(i - lo) <- cj.Counters.cycles - before
        done;
        out)
      ~consume:(fun j out ->
        let lo = j * seg_len in
        Array.iteri (fun k s -> stream_push sq ~req:(lo + k) ~service:s) out)
      seg_count;
    finish_stream_cell ~cfg ~mean_service ~segments:seg_count ~sq ~a ~counters
  end
  else begin
    let mean_service =
      match mean_service with
      | Some m -> m
      | None -> calibrate_generate ?ucfg ?skip_cfg ~requests:n w
    in
    let sim = make_sim () in
    let kernel = Sim.kernel sim in
    warmup sim kernel;
    let counters = Sim.counters sim in
    let a = stream_accum w ~requests:n in
    let sq = stream_queue ~cfg ~mean_service ~sink:(accum_sink a) in
    for i = 0 to n - 1 do
      (match cfg.flush with
      | No_flush -> ()
      | Flush when i > 0 && i mod cfg.flush_every = 0 -> Sim.context_switch sim
      | Asid when i > 0 && i mod cfg.flush_every = 0 ->
          Sim.context_switch ~retain_asid:true sim
      | Flush | Asid -> ());
      let before = counters.Counters.cycles in
      call sim kernel (w.Workload.gen_request i);
      stream_push sq ~req:i ~service:(counters.Counters.cycles - before)
    done;
    finish_stream_cell ~cfg ~mean_service ~segments:1 ~sq ~a
      ~counters:(Sim.measured_counters sim)
  end

(* ------------------------------------------------------------------ *)

let cell_json ?(hist = false) (c : cell) =
  let f v = Json.Float v in
  let fields =
    [
      ("workload", Json.String c.workload_name);
      ("mode", Json.String (Sim.mode_to_string c.cfg.mode));
      ("arrival", Json.String (Arrival.to_string c.cfg.arrival));
      ("flush", Json.String (flush_to_string c.cfg.flush));
      ("load", f c.cfg.load);
      ("queue_cap", Json.Int c.cfg.queue_cap);
      ("requests", Json.Int c.cfg.requests);
      ("seed", Json.Int c.cfg.seed);
      ("segments", Json.Int c.segments);
      ("mean_service_cycles", Json.Int c.mean_service_cycles);
      ("served", Json.Int c.served);
      ("dropped", Json.Int c.dropped);
      ("offered_rps", f c.offered_rps);
      ("goodput_rps", f c.goodput_rps);
      ("util", f c.util);
      ("span_us", f c.span_us);
      ("mean_us", f c.mean_us);
      ("mean_wait_us", f c.mean_wait_us);
      ("p50_us", f c.p50_us);
      ("p99_us", f c.p99_us);
      ("p999_us", f c.p999_us);
      ( "by_rtype",
        Json.List
          (Array.to_list
             (Array.map
                (fun rt ->
                  Json.Obj
                    [
                      ("rtype", Json.String rt.rt_name);
                      ("served", Json.Int rt.rt_served);
                      ("mean_us", f rt.rt_mean_us);
                      ("p99_us", f rt.rt_p99_us);
                    ])
                c.by_rtype)) );
    ]
  in
  let fields =
    if hist then
      fields
      @ [
          ( "hist_us",
            Json.List
              (List.map
                 (fun (lo, hi, n) ->
                   Json.List [ f lo; f hi; Json.Int n ])
                 (Latency.buckets c.recorder)) );
        ]
    else fields
  in
  Json.Obj fields

(* Stable cell label for sweep output and bench leaf naming:
   "<mode>/<arrival>/<flush>@<load>". *)
let cell_label (c : cell) =
  Printf.sprintf "%s_%s_%s_load%g"
    (Sim.mode_to_string c.cfg.mode)
    (Arrival.to_string c.cfg.arrival)
    (flush_to_string c.cfg.flush)
    c.cfg.load
