open Dlink_uarch
module Arrival = Dlink_util.Arrival
module Json = Dlink_util.Json
module Latency = Dlink_stats.Latency
module Kernel = Dlink_pipeline.Kernel

(* Open-loop serving cells: the driver that turns "skip mechanism saves X
   PKI" into "skip mechanism buys Y% more requests/sec at the same p99".

   A cell fixes a workload, a link mode, an offered load, an arrival
   process, and a flush policy, then plays an open-loop client against a
   single-server bounded admission queue whose service times come from
   actually executing each request on the pipeline kernel — so service
   depends on the link mode and on the microarchitectural state carried
   across requests, exactly like the closed-loop experiments.  Request
   latency = queue wait + service, in simulated cycles; the host clock
   never enters, so every cell is bit-reproducible from its seed.

   The cell is a trace-driven queueing simulation: the execution stream
   is always the full closed-loop request sequence (flush policy keyed by
   stream index), yielding a per-request service-time vector, and the
   bounded queue is pure arithmetic over that vector plus the arrival
   times.  Admission drops therefore affect queueing only, never machine
   state — which is what makes the generate driver here
   ([run_cell_generate], over {!Sim}) and the packed-trace replay driver
   ({!Dlink_trace.Serve_replay}) bit-identical: the service vector
   reduces to the kernel equivalence the pipeline matrix already proves,
   and the queueing arithmetic is shared. *)

(* ------------------------------------------------------------------ *)
(* Flush policy: what happens to the server's microarchitectural state
   every [flush_every] served requests — nothing, a full flush (untagged
   hardware), or an ASID-retaining switch (tagged hardware).  Models a
   co-scheduled tenant touching the core between bursts of our requests. *)

type flush = No_flush | Flush | Asid

let flush_names = [ "none"; "flush"; "asid" ]

let flush_to_string = function
  | No_flush -> "none"
  | Flush -> "flush"
  | Asid -> "asid"

let flush_of_string = function
  | "none" -> Some No_flush
  | "flush" -> Some Flush
  | "asid" -> Some Asid
  | _ -> None

type config = {
  mode : Sim.mode;
  load : float;  (** offered load as a fraction of base-mode capacity *)
  arrival : Arrival.process;
  queue_cap : int;
  requests : int;
  flush : flush;
  flush_every : int;
  seed : int;
}

let default_config =
  {
    mode = Sim.Base;
    load = 0.8;
    arrival = Arrival.Poisson;
    queue_cap = 64;
    requests = 400;
    flush = No_flush;
    flush_every = 32;
    seed = 42;
  }

let check_config cfg =
  if not (Float.is_finite cfg.load) || cfg.load <= 0.0 then
    invalid_arg "Serve: load must be a positive real";
  if cfg.queue_cap <= 0 then invalid_arg "Serve: queue_cap must be positive";
  if cfg.requests < 0 then invalid_arg "Serve: requests must be non-negative";
  if cfg.flush_every <= 0 then invalid_arg "Serve: flush_every must be positive"

(* ------------------------------------------------------------------ *)
(* The queue engine.  Admission is lazy, as in [Multi.quantum_open]: all
   arrivals up to the current virtual time are admitted (or dropped at a
   full queue) immediately before each service starts, which reproduces
   exactly the occupancy a real-time interleaving would have seen because
   the queue only drains at those same instants. *)

type queue_stats = {
  q_served : int;
  q_dropped : int;
  q_reqs : int array;  (** request index per served request, serve order *)
  q_lat_cycles : int array;  (** queue wait + service, serve order *)
  q_wait_cycles : int array;
  q_busy : int;
  q_span : int;  (** completion time of the last served request *)
}

let simulate_queue ~arrivals ~queue_cap ~service =
  if queue_cap <= 0 then
    invalid_arg "Serve.simulate_queue: queue_cap must be positive";
  let n = Array.length arrivals in
  let q = Queue.create () in
  let reqs = ref [] and lats = ref [] and waits = ref [] in
  let now = ref 0 and busy = ref 0 in
  let served = ref 0 and dropped = ref 0 and next = ref 0 in
  let admit () =
    while !next < n && arrivals.(!next) <= !now do
      if Queue.length q < queue_cap then Queue.add !next q else incr dropped;
      incr next
    done
  in
  while !served + !dropped < n do
    admit ();
    if Queue.is_empty q then begin
      (* Idle until the earliest un-admitted arrival. *)
      if arrivals.(!next) > !now then now := arrivals.(!next);
      admit ()
    end;
    let r = Queue.pop q in
    let start = !now in
    let s = service ~nth:!served ~req:r in
    if s < 0 then invalid_arg "Serve.simulate_queue: negative service time";
    busy := !busy + s;
    now := !now + s;
    reqs := r :: !reqs;
    lats := (!now - arrivals.(r)) :: !lats;
    waits := (start - arrivals.(r)) :: !waits;
    incr served
  done;
  {
    q_served = !served;
    q_dropped = !dropped;
    q_reqs = Array.of_list (List.rev !reqs);
    q_lat_cycles = Array.of_list (List.rev !lats);
    q_wait_cycles = Array.of_list (List.rev !waits);
    q_busy = !busy;
    q_span = !now;
  }

(* ------------------------------------------------------------------ *)

type rtype_stats = {
  rt_name : string;
  rt_served : int;
  rt_mean_us : float;
  rt_p99_us : float;
}

type cell = {
  cfg : config;
  workload_name : string;
  mean_service_cycles : int;  (** base-mode calibration behind [load] *)
  served : int;
  dropped : int;
  lat_cycles : int array;  (** per served request, serve order *)
  recorder : Latency.t;  (** the same latencies in scaled microseconds *)
  offered_rps : float;
  goodput_rps : float;
  util : float;
  span_us : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  mean_wait_us : float;
  by_rtype : rtype_stats array;
  counters : Counters.t;
}

let finish_cell ~cfg ~(w : Workload.t) ~mean_service ~(qs : queue_stats)
    ~counters =
  let recorder = Latency.create () in
  Array.iter
    (fun lc -> Latency.record recorder (Workload.cycles_to_us w lc))
    qs.q_lat_cycles;
  let span_us = Workload.cycles_to_us w qs.q_span in
  let span_s = span_us *. 1e-6 in
  let mean_gap = float_of_int mean_service /. cfg.load in
  let gap_s = Workload.cycles_to_us w (int_of_float mean_gap) *. 1e-6 in
  let mean_wait_us =
    if qs.q_served = 0 then Float.nan
    else
      Workload.cycles_to_us w (Array.fold_left ( + ) 0 qs.q_wait_cycles)
      /. float_of_int qs.q_served
  in
  let by_rtype =
    let n_rt = Array.length w.Workload.request_type_names in
    let buckets = Array.init n_rt (fun _ -> Latency.create ()) in
    Array.iteri
      (fun i r ->
        let rt = (w.Workload.gen_request r).Workload.rtype in
        Latency.record buckets.(rt) (Workload.cycles_to_us w qs.q_lat_cycles.(i)))
      qs.q_reqs;
    Array.mapi
      (fun rt name ->
        {
          rt_name = name;
          rt_served = Latency.count buckets.(rt);
          rt_mean_us = Latency.mean buckets.(rt);
          rt_p99_us = Latency.p99 buckets.(rt);
        })
      w.Workload.request_type_names
  in
  {
    cfg;
    workload_name = w.Workload.wname;
    mean_service_cycles = mean_service;
    served = qs.q_served;
    dropped = qs.q_dropped;
    lat_cycles = qs.q_lat_cycles;
    recorder;
    offered_rps = (if gap_s > 0.0 then 1.0 /. gap_s else Float.nan);
    goodput_rps =
      (if span_s > 0.0 then float_of_int qs.q_served /. span_s else 0.0);
    util =
      (if qs.q_span > 0 then
         float_of_int qs.q_busy /. float_of_int qs.q_span
       else 0.0);
    span_us;
    mean_us = Latency.mean recorder;
    p50_us = Latency.p50 recorder;
    p99_us = Latency.p99 recorder;
    p999_us = Latency.p999 recorder;
    mean_wait_us;
    by_rtype;
    counters;
  }

(* ------------------------------------------------------------------ *)
(* Base-mode capacity calibration: the mean service time (cycles per
   request, closed loop) every load level is expressed against.  Always
   measured in [Base] so "load 1.0" means the same client behavior for
   every mode under comparison — the enhanced modes then run the same
   arrival sequence with shorter service times, which is precisely the
   capacity head-room being measured. *)

let calibrate_generate ?ucfg ?skip_cfg ?requests ?warmup (w : Workload.t) =
  let n = Option.value requests ~default:w.Workload.default_requests in
  let r = Experiment.run ?ucfg ?skip_cfg ~requests:n ?warmup ~mode:Sim.Base w in
  max 1 (r.Experiment.counters.Counters.cycles / max 1 n)

(* The shared serving loop body: arrivals from the seed, service times
   from the driver's precomputed vector.  Keeping the queue a pure
   function of (arrivals, services) is what decouples admission drops
   from machine state — see the header comment. *)
let run_queue ~cfg ~mean_service ~services =
  if Array.length services <> cfg.requests then
    invalid_arg "Serve.run_queue: services length <> requests";
  let arrivals =
    Arrival.times ~seed:cfg.seed
      ~mean_gap:(float_of_int mean_service /. cfg.load)
      ~n:cfg.requests cfg.arrival
  in
  simulate_queue ~arrivals ~queue_cap:cfg.queue_cap
    ~service:(fun ~nth:_ ~req -> services.(req))

(* Generate-mode cell driver: live interpreter over [Sim].  The replay
   mirror lives in {!Dlink_trace.Serve_replay}; both must produce
   bit-identical [lat_cycles] for replay-compatible configurations. *)
let run_cell_generate ?ucfg ?skip_cfg ?mean_service ~cfg (w : Workload.t) =
  check_config cfg;
  let mean_service =
    match mean_service with
    | Some m -> m
    | None -> calibrate_generate ?ucfg ?skip_cfg ~requests:cfg.requests w
  in
  let sim =
    Sim.create ?ucfg ?skip_cfg ~func_align:w.Workload.func_align ~mode:cfg.mode
      w.Workload.objs
  in
  let kernel = Sim.kernel sim in
  let call (rq : Workload.request) =
    Kernel.note_boundary kernel ~rtype:rq.Workload.rtype;
    Sim.call sim ~mname:rq.Workload.mname ~fname:rq.Workload.fname
  in
  for i = 0 to w.Workload.warmup_requests - 1 do
    call (w.Workload.gen_request (-1 - i))
  done;
  Sim.mark_measurement_start sim;
  let counters = Sim.counters sim in
  let services = Array.make cfg.requests 0 in
  for i = 0 to cfg.requests - 1 do
    (match cfg.flush with
    | No_flush -> ()
    | Flush when i > 0 && i mod cfg.flush_every = 0 -> Sim.context_switch sim
    | Asid when i > 0 && i mod cfg.flush_every = 0 ->
        Sim.context_switch ~retain_asid:true sim
    | Flush | Asid -> ());
    let before = counters.Counters.cycles in
    call (w.Workload.gen_request i);
    services.(i) <- counters.Counters.cycles - before
  done;
  let qs = run_queue ~cfg ~mean_service ~services in
  finish_cell ~cfg ~w ~mean_service ~qs ~counters:(Sim.measured_counters sim)

(* ------------------------------------------------------------------ *)

let cell_json ?(hist = false) (c : cell) =
  let f v = Json.Float v in
  let fields =
    [
      ("workload", Json.String c.workload_name);
      ("mode", Json.String (Sim.mode_to_string c.cfg.mode));
      ("arrival", Json.String (Arrival.to_string c.cfg.arrival));
      ("flush", Json.String (flush_to_string c.cfg.flush));
      ("load", f c.cfg.load);
      ("queue_cap", Json.Int c.cfg.queue_cap);
      ("requests", Json.Int c.cfg.requests);
      ("seed", Json.Int c.cfg.seed);
      ("mean_service_cycles", Json.Int c.mean_service_cycles);
      ("served", Json.Int c.served);
      ("dropped", Json.Int c.dropped);
      ("offered_rps", f c.offered_rps);
      ("goodput_rps", f c.goodput_rps);
      ("util", f c.util);
      ("span_us", f c.span_us);
      ("mean_us", f c.mean_us);
      ("mean_wait_us", f c.mean_wait_us);
      ("p50_us", f c.p50_us);
      ("p99_us", f c.p99_us);
      ("p999_us", f c.p999_us);
      ( "by_rtype",
        Json.List
          (Array.to_list
             (Array.map
                (fun rt ->
                  Json.Obj
                    [
                      ("rtype", Json.String rt.rt_name);
                      ("served", Json.Int rt.rt_served);
                      ("mean_us", f rt.rt_mean_us);
                      ("p99_us", f rt.rt_p99_us);
                    ])
                c.by_rtype)) );
    ]
  in
  let fields =
    if hist then
      fields
      @ [
          ( "hist_us",
            Json.List
              (List.map
                 (fun (lo, hi, n) ->
                   Json.List [ f lo; f hi; Json.Int n ])
                 (Latency.buckets c.recorder)) );
        ]
    else fields
  in
  Json.Obj fields

(* Stable cell label for sweep output and bench leaf naming:
   "<mode>/<arrival>/<flush>@<load>". *)
let cell_label (c : cell) =
  Printf.sprintf "%s_%s_%s_load%g"
    (Sim.mode_to_string c.cfg.mode)
    (Arrival.to_string c.cfg.arrival)
    (flush_to_string c.cfg.flush)
    c.cfg.load
