open Dlink_uarch
module Skip = Dlink_pipeline.Skip
module Profile = Dlink_pipeline.Profile

type run = {
  mode : Sim.mode;
  workload_name : string;
  counters : Counters.t;
  latencies_us : (string * float array) array;
  tramp_calls : int;
  distinct_trampolines : int;
  rank_frequency : (float * float) list;
  tramp_stream : int array;
  requests : int;
  wall_s : float;
  sim_mips : float;
}

let mips ~instructions ~wall_s =
  if wall_s > 0.0 then float_of_int instructions /. wall_s /. 1e6 else 0.0

let run ?ucfg ?skip_cfg ?requests ?warmup ?(record_stream = false)
    ?context_switch_every ?(retain_asid = false) ~mode (w : Workload.t) =
  let sim =
    Sim.create ?ucfg ?skip_cfg ~record_stream ~func_align:w.Workload.func_align
      ~mode w.Workload.objs
  in
  let n = Option.value requests ~default:w.Workload.default_requests in
  let run_one i =
    let req = w.Workload.gen_request i in
    Dlink_pipeline.Kernel.note_boundary (Sim.kernel sim)
      ~rtype:req.Workload.rtype;
    let before = (Sim.counters sim).Counters.cycles in
    Sim.call sim ~mname:req.Workload.mname ~fname:req.Workload.fname;
    (req.Workload.rtype, Workload.cycles_to_us w ((Sim.counters sim).Counters.cycles - before))
  in
  let warmup = Option.value warmup ~default:w.Workload.warmup_requests in
  for i = 0 to warmup - 1 do
    ignore (run_one (-1 - i))
  done;
  Sim.mark_measurement_start sim;
  let t0 = Unix.gettimeofday () in
  let buckets = Array.map (fun _ -> ref []) w.Workload.request_type_names in
  for i = 0 to n - 1 do
    (match context_switch_every with
    | Some k when k > 0 && i > 0 && i mod k = 0 -> Sim.context_switch ~retain_asid sim
    | _ -> ());
    let rtype, us = run_one i in
    buckets.(rtype) := us :: !(buckets.(rtype))
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let counters = Sim.measured_counters sim in
  let profile = Sim.profile sim in
  {
    mode;
    workload_name = w.Workload.wname;
    counters;
    latencies_us =
      Array.mapi
        (fun i name -> (name, Array.of_list (List.rev !(buckets.(i)))))
        w.Workload.request_type_names;
    tramp_calls = Profile.tramp_calls profile;
    distinct_trampolines = Profile.distinct_trampolines profile;
    rank_frequency = Profile.rank_frequency profile;
    tramp_stream = Profile.stream profile;
    requests = n;
    wall_s;
    sim_mips = mips ~instructions:counters.Counters.instructions ~wall_s;
  }

let tramp_pki r = Counters.pki r.counters r.counters.Counters.tramp_instructions

let mean_latency_us r name =
  let _, samples =
    match Array.find_opt (fun (n, _) -> n = name) r.latencies_us with
    | Some pair -> pair
    | None -> raise Not_found
  in
  if Array.length samples = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)

let compare_modes ?ucfg ?skip_cfg ?requests w =
  let base = run ?ucfg ?skip_cfg ?requests ~mode:Sim.Base w in
  let enhanced = run ?ucfg ?skip_cfg ?requests ~mode:Sim.Enhanced w in
  (base, enhanced)
