(** Open-loop serving cells: offered load x link mode x flush policy,
    reporting goodput and tail latency per cell.

    A cell plays a deterministic open-loop client (Poisson or MMPP
    arrivals from {!Dlink_util.Arrival}) against a single-server bounded
    admission queue whose service times come from executing each request
    on the pipeline kernel.  Latency = queue wait + service, in simulated
    cycles; no host clock anywhere, so cells are bit-reproducible from
    their seeds.  The generate driver lives here; the packed-trace replay
    mirror is {!Dlink_trace.Serve_replay}, and both share the queue
    engine below over the same service-time vector, so their per-request
    latencies are bit-identical. *)

open Dlink_uarch

(** What happens to the server's microarchitectural state every
    [flush_every] served requests — nothing, a full flush, or an
    ASID-retaining switch. *)
type flush = No_flush | Flush | Asid

val flush_names : string list
val flush_to_string : flush -> string
val flush_of_string : string -> flush option

type config = {
  mode : Sim.mode;
  load : float;  (** offered load as a fraction of base-mode capacity *)
  arrival : Dlink_util.Arrival.process;
  queue_cap : int;
  requests : int;
  flush : flush;
  flush_every : int;
  seed : int;
}

val default_config : config

val check_config : config -> unit
(** Raises [Invalid_argument] on a non-positive/non-finite load or
    non-positive queue_cap/flush_every. *)

(** {2 Queue engine} *)

type queue_stats = {
  q_served : int;
  q_dropped : int;
  q_reqs : int array;  (** request index per served request, serve order *)
  q_lat_cycles : int array;  (** queue wait + service, serve order *)
  q_wait_cycles : int array;
  q_busy : int;
  q_span : int;  (** completion time of the last served request *)
}

val simulate_queue :
  arrivals:int array ->
  queue_cap:int ->
  service:(nth:int -> req:int -> int) ->
  queue_stats
(** Single-server bounded FIFO queue over sorted absolute [arrivals].
    [service ~nth ~req] executes request [req] (its arrival index) as the
    [nth] request served and returns its service time; an arrival finding
    the queue full is dropped; an empty queue idles to the next
    arrival. *)

(** {2 Cells} *)

type rtype_stats = {
  rt_name : string;
  rt_served : int;
  rt_mean_us : float;
  rt_p99_us : float;
}

type cell = {
  cfg : config;
  workload_name : string;
  mean_service_cycles : int;  (** base-mode calibration behind [load] *)
  served : int;
  dropped : int;
  lat_cycles : int array;  (** per served request, serve order *)
  recorder : Dlink_stats.Latency.t;
  offered_rps : float;
  goodput_rps : float;
  util : float;
  span_us : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  mean_wait_us : float;
  by_rtype : rtype_stats array;
  counters : Counters.t;
}

val calibrate_generate :
  ?ucfg:Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?requests:int ->
  ?warmup:int ->
  Workload.t ->
  int
(** Mean base-mode service cycles per request (closed loop) — the
    capacity every [load] value is expressed against, measured in [Base]
    for every mode so all modes see the same arrival sequence. *)

val run_queue :
  cfg:config -> mean_service:int -> services:int array -> queue_stats
(** Arrival generation + {!simulate_queue} for one cell over a
    precomputed per-request service-time vector; shared by the generate
    and replay drivers.  Cells are trace-driven queueing simulations: the
    execution stream is always the full closed-loop sequence (flush
    policy keyed by stream index), so drops affect queueing only, never
    machine state — the property that makes generate and replay cells
    bit-identical. *)

val finish_cell :
  cfg:config ->
  w:Workload.t ->
  mean_service:int ->
  qs:queue_stats ->
  counters:Counters.t ->
  cell

val run_cell_generate :
  ?ucfg:Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?mean_service:int ->
  cfg:config ->
  Workload.t ->
  cell
(** One cell via live interpretation ({!Sim}); calibrates with
    {!calibrate_generate} unless [mean_service] is given.  Raises
    [Invalid_argument] on a bad config. *)

val cell_json : ?hist:bool -> cell -> Dlink_util.Json.t
(** Cell report; with [hist], includes the log-bucket latency histogram
    as [(lo_us, hi_us, count)] triples. *)

val cell_label : cell -> string
(** Stable "<mode>_<arrival>_<flush>_load<l>" key for sweeps and bench
    leaves. *)
