(** Open-loop serving cells: offered load x link mode x flush policy,
    reporting goodput and tail latency per cell.

    A cell plays a deterministic open-loop client (Poisson or MMPP
    arrivals from {!Dlink_util.Arrival}) against a single-server bounded
    admission queue whose service times come from executing each request
    on the pipeline kernel.  Latency = queue wait + service, in simulated
    cycles; no host clock anywhere, so cells are bit-reproducible from
    their seeds.  The generate driver lives here; the packed-trace replay
    mirror is {!Dlink_trace.Serve_replay}, and both share the queue
    engine below over the same service-time vector, so their per-request
    latencies are bit-identical. *)

open Dlink_uarch

(** What happens to the server's microarchitectural state every
    [flush_every] served requests — nothing, a full flush, or an
    ASID-retaining switch. *)
type flush = No_flush | Flush | Asid

val flush_names : string list
val flush_to_string : flush -> string
val flush_of_string : string -> flush option

type config = {
  mode : Sim.mode;
  load : float;  (** offered load as a fraction of base-mode capacity *)
  arrival : Dlink_util.Arrival.process;
  queue_cap : int;
  requests : int;
  flush : flush;
  flush_every : int;
  seed : int;
}

val default_config : config

val check_config : config -> unit
(** Raises [Invalid_argument] on a non-positive/non-finite load or
    non-positive queue_cap/flush_every. *)

(** {2 Queue engine} *)

type queue_stats = {
  q_served : int;
  q_dropped : int;
  q_reqs : int array;  (** request index per served request, serve order *)
  q_lat_cycles : int array;  (** queue wait + service, serve order *)
  q_wait_cycles : int array;
  q_busy : int;
  q_span : int;  (** completion time of the last served request *)
}

val simulate_queue :
  arrivals:int array ->
  queue_cap:int ->
  service:(nth:int -> req:int -> int) ->
  queue_stats
(** Single-server bounded FIFO queue over sorted absolute [arrivals].
    [service ~nth ~req] executes request [req] (its arrival index) as the
    [nth] request served and returns its service time; an arrival finding
    the queue full is dropped; an empty queue idles to the next
    arrival. *)

(** {2 Cells} *)

type rtype_stats = {
  rt_name : string;
  rt_served : int;
  rt_mean_us : float;
  rt_p99_us : float;
}

type cell = {
  cfg : config;
  workload_name : string;
  mean_service_cycles : int;  (** base-mode calibration behind [load] *)
  served : int;
  dropped : int;
  lat_cycles : int array;  (** per served request, serve order *)
  recorder : Dlink_stats.Latency.t;
  offered_rps : float;
  goodput_rps : float;
  util : float;
  span_us : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  mean_wait_us : float;
  by_rtype : rtype_stats array;
  lat_fingerprint : int;
      (** Order-sensitive digest of (request index, latency, wait) folded
          in serve order — two drivers produce the same fingerprint iff
          every per-request outcome matches, even when [lat_cycles] is
          not materialized. *)
  segments : int;
      (** Replay segments the measured pass ran as (1 = whole pass). *)
  counters : Counters.t;
}

val calibrate_generate :
  ?ucfg:Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?requests:int ->
  ?warmup:int ->
  Workload.t ->
  int
(** Mean base-mode service cycles per request (closed loop) — the
    capacity every [load] value is expressed against, measured in [Base]
    for every mode so all modes see the same arrival sequence. *)

val run_queue :
  cfg:config -> mean_service:int -> services:int array -> queue_stats
(** Arrival generation + {!simulate_queue} for one cell over a
    precomputed per-request service-time vector; shared by the generate
    and replay drivers.  Cells are trace-driven queueing simulations: the
    execution stream is always the full closed-loop sequence (flush
    policy keyed by stream index), so drops affect queueing only, never
    machine state — the property that makes generate and replay cells
    bit-identical. *)

val finish_cell :
  cfg:config ->
  w:Workload.t ->
  mean_service:int ->
  segments:int ->
  qs:queue_stats ->
  counters:Counters.t ->
  cell

val run_cell_generate :
  ?ucfg:Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?mean_service:int ->
  cfg:config ->
  Workload.t ->
  cell
(** One cell via live interpretation ({!Sim}); calibrates with
    {!calibrate_generate} unless [mean_service] is given.  Raises
    [Invalid_argument] on a bad config. *)

(** {2 Streaming queue engine}

    The push-based mirror of {!simulate_queue}: service times are fed one
    request at a time, in request-index order, and each served request is
    folded into a caller-provided sink instead of per-request arrays —
    O(1) queue memory at any cell size, bit-identical outcomes (pinned by
    the equivalence tests).  This engine is also the only driver for
    {!Dlink_util.Arrival.Closed} cells, whose arrivals are coupled to
    completions: a fixed client population thinks (exponential, mean set
    by the interactive response-time law [S * (clients/load - 1)])
    between a completion and its next request, so at most [clients]
    requests are outstanding and nothing is ever dropped. *)

type stream_sink = req:int -> lat:int -> wait:int -> unit
(** Called once per served request, in serve order, with cycles. *)

type stream_queue

val stream_queue :
  cfg:config -> mean_service:int -> sink:stream_sink -> stream_queue
(** Fresh engine for one cell; arrivals are generated internally
    (incrementally for open-loop processes, from completions for closed
    loop).  Raises [Invalid_argument] on a bad config or non-positive
    [mean_service]. *)

val stream_push : stream_queue -> req:int -> service:int -> unit
(** [stream_push t ~req ~service] resolves request [req]'s fate — serve
    (sink called) or drop.  Must be called exactly once for each
    [req = 0 .. requests-1], in increasing order.  Raises
    [Invalid_argument] on a negative service time. *)

val stream_served : stream_queue -> int
val stream_dropped : stream_queue -> int
val stream_busy_cycles : stream_queue -> int

val stream_span_cycles : stream_queue -> int
(** Completion time of the last served request so far. *)

val lat_keep_cap : int
(** Largest request count for which streaming cells still materialize
    [lat_cycles]; above it the raw vector is [[||]] and reporting flows
    through the recorder and {!cell.lat_fingerprint}. *)

type stream_accum
(** Constant-memory per-request accounting for a streaming cell:
    log-bucket recorder, per-rtype buckets, wait sum, order-sensitive
    fingerprint, and (for cells within {!lat_keep_cap}) the raw latency
    vector. *)

val stream_accum : Workload.t -> requests:int -> stream_accum

val accum_sink : stream_accum -> stream_sink
(** The sink that folds served requests into the accumulator; pass to
    {!stream_queue}. *)

val finish_stream_cell :
  cfg:config ->
  mean_service:int ->
  segments:int ->
  sq:stream_queue ->
  a:stream_accum ->
  counters:Counters.t ->
  cell
(** Assemble a {!cell} from a fully-pushed engine and its accumulator —
    the streaming mirror of {!finish_cell}. *)

val run_cell_stream :
  ?ucfg:Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?mean_service:int ->
  ?jobs:int ->
  ?segment:int ->
  cfg:config ->
  Workload.t ->
  cell
(** One cell via the streaming engine, bit-identical to
    {!run_cell_generate} (same [lat_fingerprint], recorder, counters) but
    with memory O(segments) instead of O(requests) — the driver for
    million-request cells.

    For the calibration configuration itself ([Base] mode, [No_flush],
    no [mean_service] override) the measured stream equals the
    calibration stream, so the calibration pass harvests a
    {!Sim.snapshot} every [segment] requests (default: requests spread
    over [4 * jobs] segments, clamped to [4, 32]) and the measured pass
    re-executes the segments concurrently on up to [jobs] domains via
    {!Dlink_util.Dpool.run_ordered}, each worker restoring its boundary
    snapshot into a fresh simulator — bit-identical at any [jobs], since
    the queueing arithmetic consumes service times strictly in index
    order on the calling domain.  Other modes and flush policies run the
    measured pass sequentially (parallelizing them would need a third,
    mode-specific snapshot pass), still streaming.  [segment] is clamped
    up so at most 256 snapshots are resident.

    Raises [Invalid_argument] on a bad config or non-positive
    [segment]. *)

val cell_json : ?hist:bool -> cell -> Dlink_util.Json.t
(** Cell report; with [hist], includes the log-bucket latency histogram
    as [(lo_us, hi_us, count)] triples. *)

val cell_label : cell -> string
(** Stable "<mode>_<arrival>_<flush>_load<l>" key for sweeps and bench
    leaves. *)
