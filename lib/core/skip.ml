open Dlink_isa
open Dlink_mach
open Dlink_uarch

type granularity = Slot | Page
type coherence = Bloom_guard | Explicit_invalidate

type config = {
  abtb_entries : int;
  abtb_ways : int option;
  bloom_bits : int;
  bloom_hashes : int;
  bloom_granularity : granularity;
  coherence : coherence;
  filter_fallthrough : bool;
  verify_targets : bool;
  quarantine_window : int;
  quarantine_on_verify : bool;
}

let default_config =
  {
    abtb_entries = 256;
    abtb_ways = None;
    bloom_bits = 4096;
    bloom_hashes = 2;
    bloom_granularity = Page;
    coherence = Bloom_guard;
    filter_fallthrough = true;
    verify_targets = false;
    quarantine_window = 64;
    quarantine_on_verify = false;
  }

(* Abtb.create and Bloom.create validate their own geometry; the remaining
   fields are checked here so a bad config fails at construction, not
   mid-run. *)
let validate_config cfg =
  if cfg.abtb_entries <= 0 then
    invalid_arg "Skip.create: abtb_entries must be positive";
  (match cfg.abtb_ways with
  | Some w when w <= 0 -> invalid_arg "Skip.create: abtb_ways must be positive"
  | _ -> ());
  if cfg.bloom_bits <= 0 || cfg.bloom_bits land (cfg.bloom_bits - 1) <> 0 then
    invalid_arg "Skip.create: bloom_bits must be a positive power of two";
  if cfg.bloom_hashes < 1 || cfg.bloom_hashes > 8 then
    invalid_arg "Skip.create: bloom_hashes must be in [1, 8]";
  if cfg.quarantine_window < 0 then
    invalid_arg "Skip.create: quarantine_window must be non-negative"

let bloom_key cfg a =
  match cfg.bloom_granularity with Slot -> a | Page -> Addr.page_of a

exception Misspeculation of string

type t = {
  cfg : config;
  abtb : Abtb.t;
  bloom : Bloom.t;
  counters : Counters.t;
  btb_update : Addr.t -> Addr.t -> unit;
  btb_predict : Addr.t -> Addr.t option;
  on_stale_prediction : unit -> unit;
  read_got : Addr.t -> int;
  (* Exact shadow of GOT slots backing live-or-evicted entries since the
     last clear, keyed by (asid, slot); used only to classify Bloom hits as
     true or false. *)
  exact_slots : (int * Addr.t, unit) Hashtbl.t;
  (* Address spaces with live filter entries since the last clear; a remote
     invalidation must probe the filter under each of them. *)
  live_asids : (int, unit) Hashtbl.t;
  mutable asid : int;
  mutable pending_call : (Addr.t * Addr.t) option; (* (call pc, call target) *)
  (* Graceful degradation: ABTB sets implicated in a detected mis-skip,
     mapped to the number of further skip opportunities to suppress.  Keyed
     by physical set index, so the window survives whole-table clears and
     context switches like the hardware state it models. *)
  quarantined : (int, int) Hashtbl.t;
  (* Fault-injection hook: when set, consulted before every filter-driven
     clear; returning [true] suppresses the clear (models a lost clear
     pulse).  Never set outside the fault harness. *)
  mutable clear_veto : (unit -> bool) option;
}

let create ?(config = default_config) ~counters ~btb_update ~btb_predict
    ~on_stale_prediction ~read_got () =
  validate_config config;
  {
    cfg = config;
    abtb = Abtb.create ?ways:config.abtb_ways ~entries:config.abtb_entries ();
    bloom = Bloom.create ~bits:config.bloom_bits ~hashes:config.bloom_hashes;
    counters;
    btb_update;
    btb_predict;
    on_stale_prediction;
    read_got;
    exact_slots = Hashtbl.create 64;
    live_asids = Hashtbl.create 8;
    asid = 0;
    pending_call = None;
    quarantined = Hashtbl.create 8;
    clear_veto = None;
  }

let abtb t = t.abtb
let bloom t = t.bloom
let asid t = t.asid
let set_clear_veto t f = t.clear_veto <- f
let quarantined_sets t = Hashtbl.length t.quarantined

let veto_clears t =
  match t.clear_veto with None -> false | Some f -> f ()

let report_mis_skip t ~tramp =
  let s = Abtb.set_index t.abtb tramp in
  Abtb.clear_set t.abtb s;
  if t.cfg.quarantine_window > 0 && not (Hashtbl.mem t.quarantined s) then begin
    Hashtbl.replace t.quarantined s t.cfg.quarantine_window;
    t.counters.Counters.quarantine_entries <-
      t.counters.Counters.quarantine_entries + 1
  end;
  t.counters.Counters.mis_skips <- t.counters.Counters.mis_skips + 1

(* A quarantined set falls back to architectural (trampoline) execution;
   each suppressed skip opportunity shortens the sentence.  Inserts into the
   set remain allowed, so service resumes with warm entries on release. *)
let quarantine_blocks t tramp =
  let s = Abtb.set_index t.abtb tramp in
  match Hashtbl.find_opt t.quarantined s with
  | None -> false
  | Some n ->
      if n <= 1 then Hashtbl.remove t.quarantined s
      else Hashtbl.replace t.quarantined s (n - 1);
      true

let set_asid t asid =
  t.asid <- asid;
  (* The idiom window never spans a context switch. *)
  t.pending_call <- None

let flush t =
  Abtb.clear t.abtb;
  Bloom.clear t.bloom;
  Hashtbl.reset t.exact_slots;
  Hashtbl.reset t.live_asids;
  t.pending_call <- None

let record_clear t ~addr ~asid =
  t.counters.Counters.abtb_clears <- t.counters.Counters.abtb_clears + 1;
  if not (Hashtbl.mem t.exact_slots (asid, addr)) then
    t.counters.Counters.abtb_false_clears <-
      t.counters.Counters.abtb_false_clears + 1;
  flush t

let clear_on_store t addr =
  if
    t.cfg.coherence = Bloom_guard
    && Bloom.mem ~asid:t.asid t.bloom (bloom_key t.cfg addr)
    && not (veto_clears t)
  then record_clear t ~addr ~asid:t.asid

let on_remote_store t addr =
  (* A store retired by another core: the local filter is probed under every
     address space with live entries — the slot may guard any of them. *)
  let key = bloom_key t.cfg addr in
  let hit_asid =
    Hashtbl.fold
      (fun a () acc ->
        match acc with
        | Some _ -> acc
        | None -> if Bloom.mem ~asid:a t.bloom key then Some a else None)
      t.live_asids None
  in
  match hit_asid with
  | None -> ()
  | Some a ->
      if not (veto_clears t) then begin
        t.counters.Counters.coherence_invalidations <-
          t.counters.Counters.coherence_invalidations + 1;
        record_clear t ~addr ~asid:a
      end

(* The front end redirects through the BTB only (the hardware is an
   unmodified fetch pipeline); the ABTB confirms or corrects at resolution:
   - BTB holds the function address and the ABTB agrees: clean skip.
   - BTB holds something else while the ABTB knows the function: resolution
     corrects to the function address; the trampoline is still skipped but
     at mispredict cost (charged by the engine, which sees a redirected
     call whose BTB entry mismatches).
   - BTB miss: decode supplies the architectural target; the trampoline
     executes and pair-retire retrains the entry.  No extra mispredict.
   - BTB stale (function address) with no ABTB entry: the fetch went to the
     stale target and must be squashed — an enhanced-only mispredict,
     reported through [on_stale_prediction]. *)
let on_fetch_call t ~pc ~arch_target =
  let predicted = t.btb_predict pc in
  match Abtb.lookup ~asid:t.asid t.abtb arch_target with
  | None ->
      (match predicted with
      | Some p when p <> arch_target -> t.on_stale_prediction ()
      | Some _ | None -> ());
      arch_target
  | Some _ when quarantine_blocks t arch_target ->
      (* Set under quarantine after a detected mis-skip: ignore the entry
         and take the architectural path.  The front end may still have
         redirected on the stale BTB entry, so charge the squash. *)
      (match predicted with
      | Some p when p <> arch_target -> t.on_stale_prediction ()
      | Some _ | None -> ());
      arch_target
  | Some { Abtb.func; got_slot } -> (
      match predicted with
      | None -> arch_target (* no redirection source: architectural path *)
      | Some _ -> (
          let stale =
            t.cfg.verify_targets && t.read_got got_slot <> func
          in
          match stale with
          | true when t.cfg.quarantine_on_verify ->
              (* Degrade instead of dying: treat the detected staleness as
                 a mis-skip caught at resolution — squash, quarantine the
                 set, and execute the trampoline architecturally. *)
              report_mis_skip t ~tramp:arch_target;
              t.on_stale_prediction ();
              arch_target
          | true ->
              raise
                (Misspeculation
                   (Printf.sprintf "ABTB maps %s to %s but GOT slot %s holds %s"
                      (Addr.to_hex arch_target) (Addr.to_hex func)
                      (Addr.to_hex got_slot)
                      (Addr.to_hex (t.read_got got_slot))))
          | false ->
              t.counters.Counters.abtb_hits <-
                t.counters.Counters.abtb_hits + 1;
              t.counters.Counters.tramp_skips <-
                t.counters.Counters.tramp_skips + 1;
              func))

let on_retire t (ev : Event.t) =
  (* Coherence watch: any retired store that hits the filter clears all. *)
  (match ev.store with Some a -> clear_on_store t a | None -> ());
  (* Idiom detection: call retired, next retired instruction is a
     memory-indirect jump. *)
  (match (t.pending_call, ev.branch) with
  | Some (call_pc, call_target), Some (Event.Jump_indirect { target; slot }) ->
      let fallthrough = ev.pc + ev.size in
      if not (t.cfg.filter_fallthrough && target = fallthrough) then begin
        Abtb.insert ~asid:t.asid t.abtb call_target
          { Abtb.func = target; got_slot = slot };
        Bloom.add ~asid:t.asid t.bloom (bloom_key t.cfg slot);
        Hashtbl.replace t.exact_slots (t.asid, slot) ();
        Hashtbl.replace t.live_asids t.asid ();
        t.counters.Counters.abtb_inserts <- t.counters.Counters.abtb_inserts + 1;
        (* Retrain the call site so the very next fetch goes straight to
           the function (§3.2, front-end update rule). *)
        t.btb_update call_pc target
      end
  | _ -> ());
  t.pending_call <-
    (match ev.branch with
    | Some (Event.Call_direct { target; arch_target }) when target = arch_target ->
        (* Only unredirected calls can be followed by a trampoline. *)
        Some (ev.pc, target)
    | Some (Event.Call_indirect { target; _ }) -> Some (ev.pc, target)
    | _ -> None)
