(** Runtime module-churn driver: dlopen/dlclose rotation under the full
    pipeline.

    Builds a machine whose dynamic loader ({!Dlink_linker.Dynload}) routes
    every GOT write through the kernel's retire path, then measures one
    (churn rate x link mode) cell: plugin calls interleaved with
    close/open rotations of the resident plugin set.  The interesting
    comparison is {!Dlink_linker.Mode.Lazy_binding} (every reopen pays
    resolver runs) against {!Dlink_linker.Mode.Stable_linking} (reopens
    replay a validated GOT snapshot), with ABTB clear rate and trampoline
    skip rate tracking how much churn the skip hardware absorbs. *)

open Dlink_mach
open Dlink_uarch
open Dlink_linker
module Kernel = Dlink_pipeline.Kernel

type scenario = {
  sname : string;
  base_objs : Dlink_obj.Objfile.t list;  (** first object is the executable *)
  plugins : Dlink_obj.Objfile.t array;  (** rotated through dlopen/dlclose *)
  n_resident : int;  (** plugins kept open at any moment *)
  preload : string list;  (** module names with LD_PRELOAD rank *)
  entry : int -> string;  (** plugin index -> exported entry function *)
  func_align : int;
}

type machine = {
  linked : Loader.t;
  kernel : Kernel.t;
  process : Process.t;
  dynload : Dynload.t;
}

val make_machine :
  ?ucfg:Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?with_skip:bool ->
  link_mode:Mode.t ->
  ?aslr_seed:int ->
  scenario ->
  machine
(** Load the static base and wire a dynamic loader whose stores retire
    through the kernel ([with_skip] defaults to [true] — the Enhanced
    pipeline).  No plugins are open yet. *)

type cell = {
  link_mode : Mode.t;
  rate : int;  (** churn events per 1000 calls *)
  calls : int;
  churn_events : int;
  counters : Counters.t;  (** measurement window only *)
  opens : int;
  closes : int;
  rebinds : int;
  stable_hits : int;
  stable_misses : int;
  wall_s : float;
  sim_mips : float;
}

val clear_rate : cell -> float
(** ABTB flash-clears per 1000 plugin calls. *)

val skip_rate : cell -> float
(** Trampoline skips per eligible trampoline call. *)

val run_cell :
  ?ucfg:Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?with_skip:bool ->
  ?aslr_seed:int ->
  link_mode:Mode.t ->
  rate:int ->
  calls:int ->
  seed:int ->
  scenario ->
  cell
(** Deterministic for equal arguments (wall-clock fields aside): the
    rotation and call sequence are drawn from [seed]. *)
