open Dlink_mach
open Dlink_uarch
open Dlink_linker
module Rng = Dlink_util.Rng
module Kernel = Dlink_pipeline.Kernel
module Objfile = Dlink_obj.Objfile
module Addr = Dlink_isa.Addr

(* A churn scenario: a statically loaded base (app + service libraries,
   optionally with preload-rank interposers) plus a pool of plugin
   modules the driver rotates through dlopen/dlclose.  Lives here rather
   than in [dlink_workloads] for the same reason {!Workload.t} does: the
   drivers (bench, CLI, fault oracle) depend on this library, and the
   concrete scenario builder depends on them both. *)
type scenario = {
  sname : string;
  base_objs : Objfile.t list;  (** first object is the executable *)
  plugins : Objfile.t array;  (** rotated through dlopen/dlclose *)
  n_resident : int;  (** plugins kept open at any moment *)
  preload : string list;  (** module names with LD_PRELOAD rank *)
  entry : int -> string;  (** plugin index -> exported entry function *)
  func_align : int;
}

(* The full machine for one churn run: the static base image, the
   Enhanced pipeline kernel, one interpreter process, and a dynamic
   loader whose every GOT write retires through the kernel as an
   ordinary store — so the Bloom filter and ABTB flash-clear logic see
   module churn exactly as they see lazy resolution. *)
type machine = {
  linked : Loader.t;
  kernel : Kernel.t;
  process : Process.t;
  dynload : Dynload.t;
}

let make_machine ?ucfg ?skip_cfg ?(with_skip = true) ~link_mode ?aslr_seed
    (s : scenario) =
  let opts =
    {
      Loader.default_options with
      mode = link_mode;
      aslr_seed;
      func_align = s.func_align;
      ld_preload = s.preload;
    }
  in
  let linked = Loader.load_exn ~opts s.base_objs in
  let kernel = Kernel.create ?ucfg ?skip_cfg ~with_skip () in
  (* Both predicates consult live loader state, so runtime-mapped PLT and
     GOT sections are classified as soon as they appear. *)
  let is_plt_entry = Loader.is_plt_entry linked in
  let hooks =
    Kernel.process_hooks kernel ~is_plt_entry ~in_got:(Loader.in_any_got linked)
  in
  let process = Process.create ~hooks linked in
  let mem = Process.memory process in
  Kernel.set_read_got kernel (fun slot -> Memory.read mem slot);
  let store a v =
    Memory.write mem a v;
    Kernel.retire_packed kernel ~pc:linked.Loader.resolver_entry ~size:4
      ~in_plt:false ~plt_call:false ~got_store:(Loader.in_any_got linked a)
      ~load:Addr.none ~load2:Addr.none ~store:a ~kind:Event.Kind.none
      ~target:Addr.none ~aux:Addr.none ~taken:false
  in
  let dynload = Dynload.create ~store ~read:(Memory.read mem) linked in
  { linked; kernel; process; dynload }

(* One measured (churn rate x link mode) cell. *)
type cell = {
  link_mode : Mode.t;
  rate : int;  (** churn events per 1000 calls *)
  calls : int;
  churn_events : int;
  counters : Counters.t;  (** measurement window only *)
  opens : int;
  closes : int;
  rebinds : int;
  stable_hits : int;
  stable_misses : int;
  wall_s : float;
  sim_mips : float;
}

let clear_rate c =
  1000.0 *. float_of_int c.counters.Counters.abtb_clears
  /. float_of_int (max 1 c.calls)

let skip_rate c =
  float_of_int c.counters.Counters.tramp_skips
  /. float_of_int (max 1 c.counters.Counters.tramp_calls)

(* Drive [calls] plugin invocations, rotating the resident plugin set at
   the requested rate: a churn event closes one resident plugin and opens
   one parked plugin in its place, so freed ranges get reused by modules
   with different import orders — the layout instability that makes
   runtime churn interesting to the skip hardware. *)
let run_cell ?ucfg ?skip_cfg ?(with_skip = true) ?aslr_seed ~link_mode ~rate
    ~calls ~seed (s : scenario) =
  let n = Array.length s.plugins in
  let resident = max 1 (min s.n_resident n) in
  let m = make_machine ?ucfg ?skip_cfg ~with_skip ~link_mode ?aslr_seed s in
  let rng = Rng.create seed in
  (* Rotation order: [slots] holds the resident plugin indices, [parked]
     the rest, oldest-closed first. *)
  let slots = Array.init resident (fun i -> i) in
  let parked = Queue.create () in
  for i = resident to n - 1 do
    Queue.add i parked
  done;
  let handles =
    Array.map (fun i -> Dynload.dlopen m.dynload s.plugins.(i)) slots
  in
  let churn_events = ref 0 in
  let churn () =
    if n > resident then begin
      let k = Rng.int rng resident in
      Dynload.dlclose m.dynload handles.(k);
      Queue.add slots.(k) parked;
      let inc = Queue.take parked in
      slots.(k) <- inc;
      handles.(k) <- Dynload.dlopen m.dynload s.plugins.(inc);
      incr churn_events
    end
    else begin
      (* Single-plugin pools still churn: close and immediately reopen. *)
      Dynload.dlclose m.dynload handles.(0);
      handles.(0) <- Dynload.dlopen m.dynload s.plugins.(slots.(0));
      incr churn_events
    end
  in
  let call_one () =
    let k = Rng.int rng resident in
    let i = slots.(k) in
    let addr =
      match
        Loader.func_addr m.linked ~mname:s.plugins.(i).Objfile.name
          ~fname:(s.entry i)
      with
      | Some a -> a
      | None ->
          invalid_arg
            (Printf.sprintf "Churn.run_cell: %s.%s not found"
               s.plugins.(i).Objfile.name (s.entry i))
    in
    Process.call m.process addr
  in
  (* Short warmup touches every resident plugin once so cold-start
     resolution doesn't dominate small cells. *)
  for k = 0 to resident - 1 do
    let i = slots.(k) in
    match
      Loader.func_addr m.linked ~mname:s.plugins.(i).Objfile.name
        ~fname:(s.entry i)
    with
    | Some a -> Process.call m.process a
    | None -> ()
  done;
  let before = Counters.copy (Kernel.counters m.kernel) in
  let stats0 = Dynload.stats m.dynload in
  let opens0 = stats0.Dynload.opens and closes0 = stats0.Dynload.closes in
  let rebinds0 = stats0.Dynload.rebinds in
  let hits0 = stats0.Dynload.stable_hits in
  let misses0 = stats0.Dynload.stable_misses in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to calls do
    if rate > 0 && Rng.int rng 1000 < rate then churn ();
    call_one ()
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let counters =
    Counters.diff ~after:(Kernel.counters m.kernel) ~before
  in
  let stats = Dynload.stats m.dynload in
  {
    link_mode;
    rate;
    calls;
    churn_events = !churn_events;
    counters;
    opens = stats.Dynload.opens - opens0;
    closes = stats.Dynload.closes - closes0;
    rebinds = stats.Dynload.rebinds - rebinds0;
    stable_hits = stats.Dynload.stable_hits - hits0;
    stable_misses = stats.Dynload.stable_misses - misses0;
    wall_s;
    sim_mips =
      (if wall_s > 0.0 then
         float_of_int counters.Counters.instructions /. wall_s /. 1e6
       else 0.0);
  }
