(** Experiment runner: executes a workload under a given mode and collects
    everything the paper's tables and figures need. *)

open Dlink_uarch
module Skip = Dlink_pipeline.Skip

type run = {
  mode : Sim.mode;
  workload_name : string;
  counters : Counters.t;  (** measurement-window deltas *)
  latencies_us : (string * float array) array;
      (** per request type, in request order *)
  tramp_calls : int;
  distinct_trampolines : int;
  rank_frequency : (float * float) list;
  tramp_stream : int array;  (** only when [record_stream] *)
  requests : int;
  wall_s : float;  (** host wall-clock seconds inside the measurement window *)
  sim_mips : float;
      (** simulator throughput: measured (simulated) instructions retired
          per host wall-clock second, in millions *)
}

val mips : instructions:int -> wall_s:float -> float
(** [instructions /. wall_s /. 1e6], 0 when [wall_s] is not positive. *)

val run :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  ?requests:int ->
  ?warmup:int ->
  ?record_stream:bool ->
  ?context_switch_every:int ->
  ?retain_asid:bool ->
  mode:Sim.mode ->
  Workload.t ->
  run
(** Executes [warmup] requests (default: the workload's
    [warmup_requests]) outside the measurement window, then [requests]
    (default: the workload's default) inside it.
    [context_switch_every] injects an OS context switch every N requests. *)

val tramp_pki : run -> float
(** Table 2: trampoline instructions per kilo-instruction. *)

val mean_latency_us : run -> string -> float
(** Mean latency of a request type.  Raises [Not_found] for unknown types. *)

val compare_modes :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  ?requests:int ->
  Workload.t ->
  run * run
(** Convenience: the (base, enhanced) pair used throughout §5. *)
