(** Full-system simulator: loader + interpreter + microarchitecture +
    (optionally) the proposed trampoline-skip hardware.

    The six modes map to the paper's points of comparison:
    - [Base]: conventional lazy dynamic linking, unmodified hardware.
    - [Enhanced]: lazy dynamic linking plus the ABTB/Bloom mechanism.
    - [Eager]: BIND_NOW dynamic linking, unmodified hardware (trampolines
      still execute, resolver never runs).
    - [Static]: static linking — the paper's performance upper bound.
    - [Patched]: the paper's software emulation (§4): call sites rewritten
      at load time to direct calls; PLT/GOT present but bypassed.
    - [Stable]: stable linking — lazy layout whose GOT is pre-seeded from a
      snapshot of a previous run of the same module set ({!Dynload}), so
      the resolver only runs for bindings the snapshot missed. *)

open Dlink_isa
open Dlink_mach
open Dlink_uarch
open Dlink_linker
module Kernel = Dlink_pipeline.Kernel
module Skip = Dlink_pipeline.Skip
module Profile = Dlink_pipeline.Profile

type mode = Base | Enhanced | Eager | Static | Patched | Stable

val mode_to_string : mode -> string

val mode_of_string : string -> mode option
(** Inverse of {!mode_to_string}; [None] for unknown names. *)

val all_modes : mode list

val mode_names : string list
(** Mode names in declaration order, for CLI listings. *)

val link_mode : mode -> Mode.t

type t

val create :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  ?aslr_seed:int ->
  ?record_stream:bool ->
  ?func_align:int ->
  mode:mode ->
  Dlink_obj.Objfile.t list ->
  t
(** Loads the objects (first = executable), builds the machine, and wires
    the retire stream into the engine, the skip controller (Enhanced only),
    and the profiler.  Raises [Invalid_argument] on link errors. *)

val mode : t -> mode
val linked : t -> Loader.t
val process : t -> Process.t

val kernel : t -> Kernel.t
(** The underlying retire-pipeline kernel this simulator drives. *)

val engine : t -> Engine.t
val counters : t -> Counters.t
val profile : t -> Profile.t
val skip : t -> Skip.t option

val call : t -> mname:string -> fname:string -> unit
(** Run one entry-point invocation to completion.  Raises
    [Invalid_argument] for unknown functions and {!Process.Fault} on
    machine faults. *)

val call_addr : t -> Addr.t -> unit

val func_addr : t -> mname:string -> fname:string -> Addr.t
(** Raises [Invalid_argument] if not found. *)

val context_switch : ?retain_asid:bool -> t -> unit
(** Simulate an OS context switch away and back: the RAS flushes, and —
    unless [retain_asid] — the TLBs and ABTB flush with it (§3.3, "Missing
    ABTB entry after context switch").  With [retain_asid] the tagged
    TLB/ABTB entries survive, as on hardware with address-space ids. *)

val mark_measurement_start : t -> unit
(** Reset the profiler and record a counter snapshot; subsequent
    {!measured_counters} are relative to this point. *)

val measured_counters : t -> Counters.t

type snap
(** Frozen copy of everything that determines future execution and cycle
    accounting: kernel (tables, predictors, skip controller, counters),
    process (memory, PC, SP, site counters), and the measurement baseline.
    The profile is reporting-side instrumentation and is not captured. *)

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Overwrite [t] with the snapshot.  The target must be a simulator of
    the same mode, objects, uarch config, and (absent) ASLR seed — i.e.
    built by the same [create] call — so the shared loader state matches;
    segment workers build a fresh simulator each and restore into it. *)

val state_fingerprint : t -> int
(** Deterministic digest of microarchitectural + architectural state
    (counters and profile excluded). *)
