open Dlink_mach
open Dlink_uarch
open Dlink_linker
module Kernel = Dlink_pipeline.Kernel
module Skip = Dlink_pipeline.Skip
module Profile = Dlink_pipeline.Profile

type mode = Base | Enhanced | Eager | Static | Patched | Stable

let mode_to_string = function
  | Base -> "base"
  | Enhanced -> "enhanced"
  | Eager -> "eager"
  | Static -> "static"
  | Patched -> "patched"
  | Stable -> "stable"

let all_modes = [ Base; Enhanced; Eager; Static; Patched; Stable ]
let mode_names = List.map mode_to_string all_modes

let mode_of_string s =
  List.find_opt (fun m -> mode_to_string m = s) all_modes

let link_mode = function
  | Base | Enhanced -> Mode.Lazy_binding
  | Eager -> Mode.Eager_binding
  | Static -> Mode.Static_link
  | Patched -> Mode.Patched
  | Stable -> Mode.Stable_linking

type t = {
  smode : mode;
  linked : Loader.t;
  process : Process.t;
  kernel : Kernel.t;
  profile : Profile.t;
  mutable snapshot : Counters.t;
}

let create ?ucfg ?skip_cfg ?aslr_seed ?(record_stream = false)
    ?(func_align = 16) ~mode objs =
  let opts =
    { Loader.default_options with mode = link_mode mode; aslr_seed; func_align }
  in
  let linked = Loader.load_exn ~opts objs in
  let kernel = Kernel.create ?ucfg ?skip_cfg ~with_skip:(mode = Enhanced) () in
  let is_plt_entry = Loader.is_plt_entry linked in
  let profile = Profile.create ~record_stream ~is_plt_entry () in
  Kernel.set_profile kernel (Some profile);
  let hooks =
    Kernel.process_hooks kernel ~is_plt_entry ~in_got:(Loader.in_any_got linked)
  in
  let process = Process.create ~hooks linked in
  Kernel.set_read_got kernel (fun slot ->
      Memory.read (Process.memory process) slot);
  { smode = mode; linked; process; kernel; profile; snapshot = Counters.create () }

let mode t = t.smode
let linked t = t.linked
let process t = t.process
let kernel t = t.kernel
let engine t = Kernel.engine t.kernel
let counters t = Kernel.counters t.kernel
let profile t = t.profile
let skip t = Kernel.skip t.kernel

let func_addr t ~mname ~fname =
  match Loader.func_addr t.linked ~mname ~fname with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Sim.func_addr: %s.%s not found" mname fname)

let call_addr t addr = Process.call t.process addr

let call t ~mname ~fname = call_addr t (func_addr t ~mname ~fname)

let context_switch ?(retain_asid = false) t =
  Kernel.context_switch ~retain_asid t.kernel

let mark_measurement_start t =
  Profile.reset t.profile;
  t.snapshot <- Counters.copy (counters t)

let measured_counters t = Counters.diff ~after:(counters t) ~before:t.snapshot

(* Whole-simulator snapshot for segmented serving: kernel (uarch tables,
   skip controller, counters) + process (memory, PC, SP, site counters) +
   the measurement baseline.  The profile is NOT captured: it is
   reporting-side instrumentation, and the segmented driver only needs the
   state that determines future execution and cycle accounting.  The
   loader/space is immutable during serving (the resolver rebinds through
   memory writes only), so restoring into a fresh [create]-d simulator of
   the same mode/objects/seed reproduces execution exactly. *)

type snap = {
  sn_kernel : Kernel.snap;
  sn_process : Process.snap;
  sn_baseline : Counters.t;
}

let snapshot t =
  {
    sn_kernel = Kernel.snapshot t.kernel;
    sn_process = Process.snapshot t.process;
    sn_baseline = Counters.copy t.snapshot;
  }

let restore t s =
  Kernel.restore t.kernel s.sn_kernel;
  Process.restore t.process s.sn_process;
  t.snapshot <- Counters.copy s.sn_baseline

let state_fingerprint t =
  Dlink_util.Site_hash.mix2
    (Kernel.fingerprint t.kernel)
    (Process.arch_fingerprint t.process)
