open Dlink_mach
open Dlink_uarch
open Dlink_linker

type mode = Base | Enhanced | Eager | Static | Patched

let mode_to_string = function
  | Base -> "base"
  | Enhanced -> "enhanced"
  | Eager -> "eager"
  | Static -> "static"
  | Patched -> "patched"

let link_mode = function
  | Base | Enhanced -> Mode.Lazy_binding
  | Eager -> Mode.Eager_binding
  | Static -> Mode.Static_link
  | Patched -> Mode.Patched

type t = {
  smode : mode;
  linked : Loader.t;
  process : Process.t;
  engine : Engine.t;
  skip : Skip.t option;
  profile : Profile.t;
  mutable snapshot : Counters.t;
}

let create ?(ucfg = Config.xeon_e5450) ?skip_cfg ?aslr_seed ?(record_stream = false)
    ?(func_align = 16) ~mode objs =
  let opts =
    { Loader.default_options with mode = link_mode mode; aslr_seed; func_align }
  in
  let linked = Loader.load_exn ~opts objs in
  let engine = Engine.create ucfg in
  let counters = Engine.counters engine in
  let profile =
    Profile.create ~record_stream ~is_plt_entry:(Loader.is_plt_entry linked) ()
  in
  (* The process is created after the hook closures, so route through a
     mutable cell. *)
  let process_cell = ref None in
  let read_got slot =
    match !process_cell with
    | Some p -> Memory.read (Process.memory p) slot
    | None -> 0
  in
  let on_stale_prediction () =
    counters.Counters.branch_mispredictions <-
      counters.Counters.branch_mispredictions + 1;
    counters.Counters.cycles <-
      counters.Counters.cycles + ucfg.Config.penalties.mispredict
  in
  let skip =
    match mode with
    | Enhanced ->
        Some
          (Skip.create ?config:skip_cfg ~counters
             ~btb_update:(Engine.btb_update engine)
             ~btb_predict:(Engine.btb_predict_raw engine)
             ~on_stale_prediction ~read_got ())
    | Base | Eager | Static | Patched -> None
  in
  let is_plt_entry = Loader.is_plt_entry linked in
  let on_retire ev =
    (match ev.Event.branch with
    | Some (Event.Call_direct { arch_target; _ }) when is_plt_entry arch_target ->
        counters.Counters.tramp_calls <- counters.Counters.tramp_calls + 1
    | _ -> ());
    (match ev.Event.branch with
    | Some (Event.Jump_resolver _) ->
        counters.Counters.resolver_runs <- counters.Counters.resolver_runs + 1
    | _ -> ());
    (match ev.Event.store with
    | Some a when Loader.in_any_got linked a ->
        counters.Counters.got_stores <- counters.Counters.got_stores + 1
    | _ -> ());
    Engine.retire engine ev;
    (match skip with Some s -> Skip.on_retire s ev | None -> ());
    Profile.on_retire profile ev
  in
  let on_fetch_call ~pc ~arch_target =
    match skip with
    | Some s -> Skip.on_fetch_call s ~pc ~arch_target
    | None -> arch_target
  in
  let hooks = { Process.on_fetch_call; on_retire } in
  let process = Process.create ~hooks linked in
  process_cell := Some process;
  {
    smode = mode;
    linked;
    process;
    engine;
    skip;
    profile;
    snapshot = Counters.create ();
  }

let mode t = t.smode
let linked t = t.linked
let process t = t.process
let engine t = t.engine
let counters t = Engine.counters t.engine
let profile t = t.profile
let skip t = t.skip

let func_addr t ~mname ~fname =
  match Loader.func_addr t.linked ~mname ~fname with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Sim.func_addr: %s.%s not found" mname fname)

let call_addr t addr = Process.call t.process addr

let call t ~mname ~fname = call_addr t (func_addr t ~mname ~fname)

let context_switch ?(retain_asid = false) t =
  Engine.context_switch ~retain_asid t.engine;
  if not retain_asid then Option.iter Skip.flush t.skip

let mark_measurement_start t =
  Profile.reset t.profile;
  t.snapshot <- Counters.copy (counters t)

let measured_counters t = Counters.diff ~after:(counters t) ~before:t.snapshot
