open Dlink_uarch

type point = { entries : int; skipped_pct : float }

let default_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let replay ~entries ?ways stream =
  let abtb = Abtb.create ?ways ~entries () in
  let hits = ref 0 in
  Array.iter
    (fun tramp ->
      match Abtb.lookup abtb tramp with
      | Some _ -> incr hits
      | None -> Abtb.insert abtb ~asid:0 tramp { Abtb.func = tramp; got_slot = tramp })
    stream;
  if Array.length stream = 0 then 0.0
  else 100.0 *. float_of_int !hits /. float_of_int (Array.length stream)

let sweep ?(sizes = default_sizes) ?ways stream =
  List.map (fun entries -> { entries; skipped_pct = replay ~entries ?ways stream }) sizes
