module C = Dlink_uarch.Counters
module Sim = Dlink_core.Sim
module Workload = Dlink_core.Workload
module Table = Dlink_util.Table
module Plot = Dlink_util.Ascii_plot

type point = {
  quantum : int;
  policy : Policy.t;
  skip_pct : float;
  cpi : float;
  cycles : int;
  instructions : int;
  abtb_clears : int;
  coherence_invalidations : int;
  switches : int;
}

let default_quanta = [ 1; 2; 5; 10; 25; 50 ]

let point_of_run sched =
  let c = Scheduler.system_counters sched in
  {
    quantum = Scheduler.quantum sched;
    policy = Scheduler.policy sched;
    skip_pct =
      100.0 *. float_of_int c.C.tramp_skips /. float_of_int (max 1 c.C.tramp_calls);
    cpi = float_of_int c.C.cycles /. float_of_int (max 1 c.C.instructions);
    cycles = c.C.cycles;
    instructions = c.C.instructions;
    abtb_clears = c.C.abtb_clears;
    coherence_invalidations = c.C.coherence_invalidations;
    switches = Scheduler.switches sched;
  }

let sweep ?ucfg ?skip_cfg ?mode ?requests ?(cores = 1) ?jobs
    ?(policies = [ Policy.Flush; Policy.Asid ]) ?(quanta = default_quanta)
    workloads =
  let combos =
    List.concat_map
      (fun quantum -> List.map (fun policy -> (quantum, policy)) policies)
      quanta
  in
  Dlink_util.Dpool.map ?jobs
    (fun (quantum, policy) ->
      let sched =
        Scheduler.create ?ucfg ?skip_cfg ?mode ?requests ~policy ~quantum
          ~cores workloads
      in
      Scheduler.run sched;
      point_of_run sched)
    combos

let table points =
  let t =
    Table.create
      ~headers:
        [
          "quantum";
          "policy";
          "skip %";
          "CPI";
          "abtb clears";
          "coh invals";
          "switches";
        ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.quantum;
          Policy.to_string p.policy;
          Table.fmt_float p.skip_pct;
          Table.fmt_float ~decimals:3 p.cpi;
          string_of_int p.abtb_clears;
          string_of_int p.coherence_invalidations;
          string_of_int p.switches;
        ])
    points;
  t

let plot points =
  let policies =
    List.sort_uniq compare (List.map (fun p -> p.policy) points)
  in
  let series =
    List.map
      (fun policy ->
        {
          Plot.label = Policy.to_string policy;
          points =
            List.filter_map
              (fun p ->
                if p.policy = policy then
                  Some (float_of_int p.quantum, p.skip_pct)
                else None)
              points;
        })
      policies
  in
  Plot.line_chart ~log_x:true ~x_label:"quantum (requests)" ~y_label:"skip %"
    ~title:"trampoline skip rate vs scheduling quantum" series
