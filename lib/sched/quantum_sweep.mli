(** Flush-vs-ASID quantum sweep: the subsystem's headline experiment.

    For each (quantum, policy) combination a fresh {!Scheduler.t} runs the
    same workload mix to completion, and the system-wide counters are
    condensed into one {!point}.  Short quanta under [Flush] destroy the
    ABTB working set faster than it can be rebuilt; ASID tagging recovers
    the skip rate because entries survive the switch. *)

type point = {
  quantum : int;
  policy : Policy.t;
  skip_pct : float;  (** trampoline skips / trampoline calls, percent *)
  cpi : float;
  cycles : int;
  instructions : int;
  abtb_clears : int;
  coherence_invalidations : int;
  switches : int;
}

val default_quanta : int list

val sweep :
  ?ucfg:Dlink_uarch.Config.t ->
  ?skip_cfg:Dlink_pipeline.Skip.config ->
  ?mode:Dlink_core.Sim.mode ->
  ?requests:int ->
  ?cores:int ->
  ?jobs:int ->
  ?policies:Policy.t list ->
  ?quanta:int list ->
  Dlink_core.Workload.t list ->
  point list
(** Cartesian product of [quanta] x [policies] (defaults: {!default_quanta}
    x [[Flush; Asid]]), each combination simulated independently with one
    core unless [cores] is given.  Points are ordered by quantum, then
    policy — deterministically, even with [jobs > 1], which runs that many
    shared-memory domains via {!Dlink_util.Dpool.map}. *)

val table : point list -> Dlink_util.Table.t
val plot : point list -> string
(** Skip rate vs quantum, one glyph per policy, log-scaled x axis. *)
