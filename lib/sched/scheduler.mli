(** Deterministic multi-process round-robin scheduler.

    Time-slices N simulated processes (each its own loaded address space
    and architectural machine) over M cores.  Every core owns one set of
    microarchitectural structures — caches, TLBs, BTB, and (in Enhanced
    mode) one ABTB/Bloom skip unit — shared by all processes assigned to
    it, exactly as co-scheduled processes share a physical core.

    Processes are assigned to cores round-robin by pid and scheduled in
    fixed quanta of [quantum] requests.  Everything is a deterministic
    function of the workload seeds: the same configuration always produces
    bit-identical counters.

    What happens to the skip hardware at a quantum boundary is the
    {!Policy.t} axis under study:
    - [Flush]: the ABTB flushes with the TLBs (today's untagged hardware);
    - [Asid]: tagged entries survive and the process resumes warm;
    - [Asid_shared_guard]: additionally, GOT stores are broadcast on the
      {!Dlink_mach.Coherence} bus and clear remote cores' tables when they
      hit a remote Bloom filter.

    Accounting: each core's counters are snapshotted at quantum boundaries
    and the delta attributed to the process that ran, so both per-process
    and system-wide counters are available. *)

open Dlink_isa
open Dlink_mach
open Dlink_uarch
module Sim = Dlink_core.Sim
module Skip = Dlink_pipeline.Skip
module Workload = Dlink_core.Workload

type t
type proc
type core

val create :
  ?ucfg:Config.t ->
  ?skip_cfg:Skip.config ->
  ?mode:Sim.mode ->
  ?requests:int ->
  policy:Policy.t ->
  quantum:int ->
  cores:int ->
  Workload.t list ->
  t
(** One process per workload (pid = list position, ASID = pid + 1), each
    loaded into its own address space with the workload's [func_align].
    [requests] overrides every workload's default request count; [quantum]
    is in requests; [cores] is clamped to the process count.  [mode]
    defaults to [Enhanced] (the skip hardware present on every core).
    Raises [Invalid_argument] on an empty mix or non-positive sizes. *)

val set_open_loop : t -> pid:int -> arrivals:int array -> queue_cap:int -> unit
(** Put process [pid] in open-loop serving mode before running: requests
    arrive at the given simulated-cycle times into a FIFO admission queue
    bounded at [queue_cap] (overflow arrivals are dropped, an empty queue
    idles the core to the next arrival), and recorded latency becomes
    queue wait + service.  See {!Dlink_pipeline.Multi.set_open_loop}. *)

val run : t -> unit
(** Run every process to completion, interleaving quanta across cores. *)

val step : t -> bool
(** Run one quantum on each core that still has runnable processes.
    Returns [false] once nothing is left to schedule. *)

val finished : t -> bool

val retire_got_store : t -> pid:int -> Addr.t -> unit
(** Model a dynamic-loader rebinding store retired by process [pid]: the
    owning core context-switches to [pid], observes the store through its
    skip unit, and — under [Asid_shared_guard] — broadcasts it on the
    coherence bus so sibling cores' tables are invalidated.  The caller is
    responsible for the architectural write (see {!proc_process}). *)

(** {2 Inspection} *)

val policy : t -> Policy.t
val quantum : t -> int
val mode : t -> Sim.mode
val n_cores : t -> int
val bus : t -> Coherence.t
val switches : t -> int
(** Total context switches across all cores. *)

val system_counters : t -> Counters.t
(** Sum of all core counters (fresh record). *)

val procs : t -> proc list
val proc : t -> int -> proc
(** By pid; raises [Invalid_argument] for unknown pids. *)

val pid : proc -> int
val name : proc -> string
val proc_counters : proc -> Counters.t
(** Deltas accumulated over this process's quanta only. *)

val requests_done : proc -> int
val quanta : proc -> int
val latencies_us : proc -> float array
(** Per-request latencies in execution order (queue wait + service for
    open-loop processes, service only otherwise). *)

val latencies_cycles : proc -> int array
(** Open-loop latencies in simulated cycles; empty for closed-loop
    processes. *)

val drops : proc -> int
(** Arrivals dropped at this process's full admission queue. *)

val proc_linked : proc -> Dlink_linker.Loader.t
val proc_process : proc -> Process.t

val core : t -> int -> core
val core_counters : core -> Counters.t
val core_skip : core -> Skip.t option
val core_switches : core -> int
