open Dlink_mach
open Dlink_uarch
module Loader = Dlink_linker.Loader
module Sim = Dlink_core.Sim
module Skip = Dlink_core.Skip
module Workload = Dlink_core.Workload

type proc = {
  pid : int;
  asid : int;
  pname : string;
  workload : Workload.t;
  linked : Loader.t;
  process : Process.t;
  core_id : int;
  counters : Counters.t;
  mutable next_request : int;
  mutable remaining : int;
  mutable requests_done : int;
  mutable quanta : int;
  mutable lat_us_rev : float list;
}

type core = {
  core_id : int;
  engine : Engine.t;
  cskip : Skip.t option;
  mutable runq : proc list; (* pids assigned here, scheduling order *)
  mutable running : proc option;
  mutable switches : int;
}

type t = {
  policy : Policy.t;
  quantum : int;
  smode : Sim.mode;
  cores : core array;
  procs : proc array;
  bus : Coherence.t;
}

let policy t = t.policy
let quantum t = t.quantum
let mode t = t.smode
let bus t = t.bus
let n_cores t = Array.length t.cores
let procs t = Array.to_list t.procs

let proc t pid =
  if pid < 0 || pid >= Array.length t.procs then
    invalid_arg (Printf.sprintf "Scheduler.proc: no pid %d" pid);
  t.procs.(pid)

let pid p = p.pid
let name p = p.pname
let proc_counters p = p.counters
let requests_done p = p.requests_done
let quanta p = p.quanta
let proc_linked p = p.linked
let proc_process p = p.process
let latencies_us p = Array.of_list (List.rev p.lat_us_rev)

let core t i =
  if i < 0 || i >= Array.length t.cores then
    invalid_arg (Printf.sprintf "Scheduler.core: no core %d" i);
  t.cores.(i)

let core_counters c = Engine.counters c.engine
let core_skip c = c.cskip
let core_switches c = c.switches

let switches t = Array.fold_left (fun acc c -> acc + c.switches) 0 t.cores

let system_counters t =
  let sum = Counters.create () in
  Array.iter (fun c -> Counters.add ~into:sum (Engine.counters c.engine)) t.cores;
  sum

(* ------------------------------------------------------------------ *)

let dispatch t c p =
  match c.running with
  | Some q when q.pid = p.pid -> ()
  | prev ->
      if prev <> None then begin
        c.switches <- c.switches + 1;
        match t.policy with
        | Policy.Flush ->
            Engine.context_switch c.engine;
            Option.iter Skip.flush c.cskip
        | Policy.Asid | Policy.Asid_shared_guard ->
            Engine.context_switch ~retain_asid:true c.engine
      end;
      Engine.set_asid c.engine p.asid;
      Option.iter (fun s -> Skip.set_asid s p.asid) c.cskip;
      c.running <- Some p

let func_addr_exn linked ~mname ~fname =
  match Loader.func_addr linked ~mname ~fname with
  | Some a -> a
  | None ->
      invalid_arg (Printf.sprintf "Scheduler: %s.%s not found" mname fname)

let run_one_request c p =
  let req = p.workload.Workload.gen_request p.next_request in
  p.next_request <- p.next_request + 1;
  let addr =
    func_addr_exn p.linked ~mname:req.Workload.mname ~fname:req.Workload.fname
  in
  let cycles_before = (Engine.counters c.engine).Counters.cycles in
  Process.call p.process addr;
  let cycles = (Engine.counters c.engine).Counters.cycles - cycles_before in
  p.lat_us_rev <- Workload.cycles_to_us p.workload cycles :: p.lat_us_rev;
  p.remaining <- p.remaining - 1;
  p.requests_done <- p.requests_done + 1

let run_quantum t c p =
  dispatch t c p;
  let before = Counters.copy (Engine.counters c.engine) in
  let n = min t.quantum p.remaining in
  for _ = 1 to n do
    run_one_request c p
  done;
  p.quanta <- p.quanta + 1;
  (* Invalidations an injected fault held back are released at the quantum
     boundary — a delayed message can never outlive the quantum. *)
  ignore (Coherence.drain t.bus);
  Counters.add ~into:p.counters
    (Counters.diff ~after:(Engine.counters c.engine) ~before)

(* Rotate to the next runnable process on the core, if any.  The selected
   process moves to the back of the queue, so siblings run between its
   quanta — exactly the destructive-interference pattern under study. *)
let next_runnable c =
  let n = List.length c.runq in
  let rec go i =
    if i >= n then None
    else
      match c.runq with
      | [] -> None
      | p :: rest ->
          c.runq <- rest @ [ p ];
          if p.remaining > 0 then Some p else go (i + 1)
  in
  go 0

let step t =
  let progressed = ref false in
  Array.iter
    (fun c ->
      match next_runnable c with
      | Some p ->
          progressed := true;
          run_quantum t c p
      | None -> ())
    t.cores;
  !progressed

let run t =
  while step t do
    ()
  done

let finished t = Array.for_all (fun p -> p.remaining = 0) t.procs

(* ------------------------------------------------------------------ *)

let retire_got_store t ~pid addr =
  let p = proc t pid in
  let c = t.cores.(p.core_id) in
  dispatch t c p;
  Option.iter
    (fun s ->
      Skip.on_retire s
        {
          Event.pc = 0;
          size = 4;
          in_plt = false;
          load = None;
          load2 = None;
          store = Some addr;
          branch = None;
        })
    c.cskip;
  if t.policy = Policy.Asid_shared_guard then
    Coherence.publish t.bus ~src:c.core_id addr

(* ------------------------------------------------------------------ *)

let create ?(ucfg = Config.xeon_e5450) ?skip_cfg ?(mode = Sim.Enhanced)
    ?requests ~policy ~quantum ~cores workloads =
  if quantum <= 0 then invalid_arg "Scheduler.create: quantum must be positive";
  if cores <= 0 then invalid_arg "Scheduler.create: cores must be positive";
  if workloads = [] then invalid_arg "Scheduler.create: no workloads";
  let bus = Coherence.create () in
  let n_cores = min cores (List.length workloads) in
  let cores_arr =
    Array.init n_cores (fun core_id ->
        let engine = Engine.create ucfg in
        let counters = Engine.counters engine in
        (* The skip unit is shared by every process on the core, so its GOT
           reads must go through whichever process is currently running. *)
        let core_cell = ref None in
        let read_got slot =
          match !core_cell with
          | Some { running = Some p; _ } -> Memory.read (Process.memory p.process) slot
          | _ -> 0
        in
        let on_stale_prediction () =
          counters.Counters.branch_mispredictions <-
            counters.Counters.branch_mispredictions + 1;
          counters.Counters.cycles <-
            counters.Counters.cycles + ucfg.Config.penalties.mispredict
        in
        let cskip =
          match mode with
          | Sim.Enhanced ->
              Some
                (Skip.create ?config:skip_cfg ~counters
                   ~btb_update:(Engine.btb_update engine)
                   ~btb_predict:(Engine.btb_predict_raw engine)
                   ~on_stale_prediction ~read_got ())
          | Sim.Base | Sim.Eager | Sim.Static | Sim.Patched -> None
        in
        let c =
          { core_id; engine; cskip; runq = []; running = None; switches = 0 }
        in
        core_cell := Some c;
        (match cskip with
        | Some s ->
            Coherence.subscribe bus ~core:core_id (fun ~src:_ addr ->
                Skip.on_remote_store s addr)
        | None -> ());
        c)
  in
  let shared_policy = policy in
  let procs =
    Array.of_list
      (List.mapi
         (fun pid (w : Workload.t) ->
           let opts =
             {
               Loader.default_options with
               mode = Sim.link_mode mode;
               func_align = w.Workload.func_align;
             }
           in
           let linked = Loader.load_exn ~opts w.Workload.objs in
           let core_id = pid mod n_cores in
           let c = cores_arr.(core_id) in
           let counters = Engine.counters c.engine in
           let is_plt_entry = Loader.is_plt_entry linked in
           let on_retire ev =
             (match ev.Event.branch with
             | Some (Event.Call_direct { arch_target; _ })
               when is_plt_entry arch_target ->
                 counters.Counters.tramp_calls <- counters.Counters.tramp_calls + 1
             | _ -> ());
             (match ev.Event.branch with
             | Some (Event.Jump_resolver _) ->
                 counters.Counters.resolver_runs <-
                   counters.Counters.resolver_runs + 1
             | _ -> ());
             (match ev.Event.store with
             | Some a when Loader.in_any_got linked a ->
                 counters.Counters.got_stores <- counters.Counters.got_stores + 1
             | _ -> ());
             Engine.retire c.engine ev;
             (match c.cskip with Some s -> Skip.on_retire s ev | None -> ());
             (* Cross-core visibility: a GOT store retired here is snooped
                by every other core's skip unit. *)
             match ev.Event.store with
             | Some a
               when shared_policy = Policy.Asid_shared_guard
                    && Loader.in_any_got linked a ->
                 Coherence.publish bus ~src:core_id a
             | _ -> ()
           in
           let on_fetch_call ~pc ~arch_target =
             match c.cskip with
             | Some s -> Skip.on_fetch_call s ~pc ~arch_target
             | None -> arch_target
           in
           let process =
             Process.create ~hooks:{ Process.on_fetch_call; on_retire } linked
           in
           {
             pid;
             asid = pid + 1;
             pname = w.Workload.wname;
             workload = w;
             linked;
             process;
             core_id;
             counters = Counters.create ();
             next_request = 0;
             remaining = Option.value requests ~default:w.Workload.default_requests;
             requests_done = 0;
             quanta = 0;
             lat_us_rev = [];
           })
         workloads)
  in
  Array.iter
    (fun (p : proc) ->
      let c = cores_arr.(p.core_id) in
      c.runq <- c.runq @ [ p ])
    procs;
  { policy; quantum; smode = mode; cores = cores_arr; procs; bus }
