open Dlink_mach
module Loader = Dlink_linker.Loader
module Sim = Dlink_core.Sim
module Skip = Dlink_pipeline.Skip
module Workload = Dlink_core.Workload
module Kernel = Dlink_pipeline.Kernel
module Multi = Dlink_pipeline.Multi

(* Thin generate-mode driver over the pipeline kernel's multi-core
   topology: this module owns what is specific to live workloads — loaded
   address spaces, interpreter processes, request generation — while
   dispatch, ASID switching, quantum accounting, and coherence live in
   [Dlink_pipeline.Multi]. *)

type proc = {
  pid : int;
  pname : string;
  workload : Workload.t;
  linked : Loader.t;
  process : Process.t;
  m : Multi.t;
}

type core = Multi.core

type t = { m : Multi.t; smode : Sim.mode; procs : proc array }

let policy t = Multi.policy t.m
let quantum t = Multi.quantum t.m
let mode t = t.smode
let bus t = Multi.bus t.m
let n_cores t = Multi.n_cores t.m
let procs t = Array.to_list t.procs

let proc t pid =
  if pid < 0 || pid >= Array.length t.procs then
    invalid_arg (Printf.sprintf "Scheduler.proc: no pid %d" pid);
  t.procs.(pid)

let pid (p : proc) = p.pid
let name (p : proc) = p.pname
let proc_counters (p : proc) = Multi.proc_counters p.m p.pid
let requests_done (p : proc) = Multi.requests_done p.m p.pid
let quanta (p : proc) = Multi.quanta p.m p.pid
let proc_linked (p : proc) = p.linked
let proc_process (p : proc) = p.process
let latencies_us (p : proc) = Multi.latencies_us p.m p.pid
let latencies_cycles (p : proc) = Multi.latencies_cycles p.m p.pid
let drops (p : proc) = Multi.drops p.m p.pid

(* Open-loop serving: delegate to the topology, which owns the admission
   queue, idle clock, and drop accounting. *)
let set_open_loop t ~pid ~arrivals ~queue_cap =
  ignore (proc t pid);
  Multi.set_open_loop t.m ~pid ~arrivals ~queue_cap

let core t i =
  if i < 0 || i >= Multi.n_cores t.m then
    invalid_arg (Printf.sprintf "Scheduler.core: no core %d" i);
  Multi.core t.m i

let core_counters c = Kernel.counters (Multi.kernel c)
let core_skip c = Kernel.skip (Multi.kernel c)
let core_switches c = Multi.core_switches c
let switches t = Multi.switches t.m
let system_counters t = Multi.system_counters t.m

(* ------------------------------------------------------------------ *)

let func_addr_exn linked ~mname ~fname =
  match Loader.func_addr linked ~mname ~fname with
  | Some a -> a
  | None ->
      invalid_arg (Printf.sprintf "Scheduler: %s.%s not found" mname fname)

let step t = Multi.step t.m

let run t =
  while step t do
    ()
  done

let finished t = Multi.finished t.m

let retire_got_store t ~pid addr =
  ignore (proc t pid);
  Multi.retire_got_store t.m ~pid addr

(* ------------------------------------------------------------------ *)

let create ?ucfg ?skip_cfg ?(mode = Sim.Enhanced) ?requests ~policy ~quantum
    ~cores workloads =
  if quantum <= 0 then invalid_arg "Scheduler.create: quantum must be positive";
  if cores <= 0 then invalid_arg "Scheduler.create: cores must be positive";
  if workloads = [] then invalid_arg "Scheduler.create: no workloads";
  let specs =
    List.mapi
      (fun pid (w : Workload.t) ->
        {
          Multi.asid = pid + 1;
          requests = Option.value requests ~default:w.Workload.default_requests;
          cycles_to_us = Workload.cycles_to_us w;
        })
      workloads
  in
  let m =
    Multi.create ?ucfg ?skip_cfg
      ~with_skip:(mode = Sim.Enhanced)
      ~policy ~quantum ~cores specs
  in
  let procs =
    Array.of_list
      (List.mapi
         (fun pid (w : Workload.t) ->
           let opts =
             {
               Loader.default_options with
               mode = Sim.link_mode mode;
               func_align = w.Workload.func_align;
             }
           in
           let linked = Loader.load_exn ~opts w.Workload.objs in
           let kernel = Multi.kernel (Multi.core_of m pid) in
           let hooks =
             Kernel.process_hooks kernel
               ~is_plt_entry:(Loader.is_plt_entry linked)
               ~in_got:(Loader.in_any_got linked)
           in
           let process = Process.create ~hooks linked in
           { pid; pname = w.Workload.wname; workload = w; linked; process; m })
         workloads)
  in
  (* The skip unit is shared by every process on the core, so its GOT
     reads must go through whichever process is currently running. *)
  for i = 0 to Multi.n_cores m - 1 do
    let c = Multi.core m i in
    Kernel.set_read_got (Multi.kernel c) (fun slot ->
        match Multi.running c with
        | -1 -> 0
        | rpid -> Memory.read (Process.memory procs.(rpid).process) slot)
  done;
  Multi.set_exec m (fun c ~pid ~req ->
      let p = procs.(pid) in
      let rq = p.workload.Workload.gen_request req in
      Kernel.note_boundary (Multi.kernel c) ~rtype:rq.Workload.rtype;
      let addr =
        func_addr_exn p.linked ~mname:rq.Workload.mname ~fname:rq.Workload.fname
      in
      Process.call p.process addr);
  { m; smode = mode; procs }
