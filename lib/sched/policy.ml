(* Compatibility alias: the policy axis moved into the pipeline kernel
   library ([Dlink_pipeline.Policy]) so the topology layer can consume it;
   [include] keeps [Dlink_sched.Policy] type-equal for existing users. *)
include Dlink_pipeline.Policy
