(* Bench trajectory dashboard.

   Usage: bench_page [-o PAGE.md] [BENCH_pr5.json BENCH_pr6.json ...]

   Renders every committed per-PR bench dump side by side as one markdown
   table — rows are the gated metric leaves (replay_mips / sim_mips) plus
   the tramp_pki opportunity leaves, columns are PRs in ascending order —
   so a regression that stayed inside a single gate's tolerance is still
   visible as a trend across PRs.  With no file arguments the current
   directory is scanned for BENCH_pr<N>.json.  A leaf absent from some
   PR's dump (sections grow over time) renders as an em dash, not an
   error: old baselines stay comparable without recommitting them.
   Likewise a missing or unparseable file — PR numbers can have gaps, and
   an explicit CI file list may outlive a renamed dump — costs only its
   column (with a warning on stderr), not the whole page. *)

module Json = Dlink_util.Json

let row_keys =
  [ "replay_mips"; "sim_mips"; "tramp_pki"; "goodput_rps"; "p99_us"; "p999_us" ]

(* [None] for a missing or malformed dump: the page renders from whatever
   columns remain. *)
let read_json path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Json.of_string s
  with
  | Ok v -> Some v
  | Error e ->
      Printf.eprintf "bench_page: skipping %s: parse error: %s\n" path e;
      None
  | exception Sys_error e ->
      Printf.eprintf "bench_page: skipping %s: %s\n" path e;
      None

let rec leaves prefix = function
  | Json.Obj fields ->
      List.concat_map
        (fun (k, v) ->
          let p = if prefix = "" then k else prefix ^ "." ^ k in
          leaves p v)
        fields
  | Json.Float f -> [ (prefix, f) ]
  | Json.Int i -> [ (prefix, float_of_int i) ]
  | _ -> []

let is_row k =
  match String.rindex_opt k '.' with
  | Some i ->
      String.length k > i + 1
      && List.mem (String.sub k (i + 1) (String.length k - i - 1)) row_keys
  | None -> List.mem k row_keys

(* "BENCH_pr12.json" -> (12, "pr12"); unparseable names sort last in
   lexical order so hand-named dumps still get a column. *)
let pr_label path =
  let base = Filename.remove_extension (Filename.basename path) in
  let label =
    if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
      String.sub base 6 (String.length base - 6)
    else base
  in
  let num =
    if String.length label > 2 && String.sub label 0 2 = "pr" then
      int_of_string_opt (String.sub label 2 (String.length label - 2))
    else None
  in
  (match num with Some n -> (0, n) | None -> (1, 0)), label

let discover () =
  Sys.readdir "."
  |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 8
         && String.sub f 0 8 = "BENCH_pr"
         && Filename.check_suffix f ".json")

let () =
  let out = ref None in
  let files = ref [] in
  let rec scan = function
    | "-o" :: path :: rest ->
        out := Some path;
        scan rest
    | "-o" :: [] ->
        prerr_endline "bench_page: -o needs a path";
        exit 2
    | f :: rest ->
        files := f :: !files;
        scan rest
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv));
  let files = if !files = [] then discover () else List.rev !files in
  if files = [] then begin
    prerr_endline "bench_page: no BENCH_pr*.json files given or found";
    exit 2
  end;
  let cols =
    List.map (fun f -> (pr_label f, f)) files
    |> List.sort compare
    |> List.filter_map (fun ((_, label), f) ->
           match read_json f with
           | Some v ->
               Some (label, List.filter (fun (k, _) -> is_row k) (leaves "" v))
           | None -> None)
  in
  if cols = [] then begin
    prerr_endline "bench_page: no readable BENCH dumps";
    exit 2
  end;
  (* Row order: first appearance across PRs in ascending order, so new
     sections append below the long-lived ones. *)
  let rows = ref [] in
  List.iter
    (fun (_, ls) ->
      List.iter
        (fun (k, _) -> if not (List.mem k !rows) then rows := k :: !rows)
        ls)
    cols;
  let rows = List.rev !rows in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# Bench trajectory\n\n";
  Buffer.add_string buf
    "Gated throughput (`replay_mips`, `sim_mips`), trampoline\n\
     opportunity (`tramp_pki`) and serving (`goodput_rps`, `p99_us`,\n\
     `p999_us`) leaves from every committed per-PR bench dump — the\n\
     serving rows now include the million-request streaming cell\n\
     (`servesweep_1m.*`).  Units: Mi/s for throughput, events per\n\
     kilo-instruction for PKI, requests/s and scaled microseconds for\n\
     serving.  An em dash means the section did not exist in that PR.\n\n";
  Buffer.add_string buf "| metric |";
  List.iter (fun (label, _) -> Buffer.add_string buf (" " ^ label ^ " |")) cols;
  Buffer.add_string buf "\n|---|";
  List.iter (fun _ -> Buffer.add_string buf "---:|") cols;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (Printf.sprintf "| `%s` |" row);
      List.iter
        (fun (_, ls) ->
          match List.assoc_opt row ls with
          | Some v -> Buffer.add_string buf (Printf.sprintf " %.2f |" v)
          | None -> Buffer.add_string buf " — |")
        cols;
      Buffer.add_char buf '\n')
    rows;
  match !out with
  | None -> print_string (Buffer.contents buf)
  | Some path ->
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "bench_page: wrote %s (%d metrics x %d PRs)\n" path
        (List.length rows) (List.length cols)
