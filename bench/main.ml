(* Benchmark harness: regenerates every table and figure of
   "Architectural Support for Dynamic Linking" (ASPLOS 2015), prints
   paper-reported values next to simulated ones, runs the ablation studies
   called out in DESIGN.md, and finishes with Bechamel microbenchmarks of
   the core structures.

   Modes reported:
   - base      : conventional lazy dynamic linking;
   - enhanced  : the proposed ABTB/Bloom hardware, simulated faithfully
                 (BTB-gated skips, stale-prediction squashes);
   - patched   : the paper's own evaluation methodology (§4): call sites
                 rewritten to direct calls at load time.  The paper's
                 "Enhanced" measurements correspond to this mode. *)

module C = Dlink_uarch.Counters
module Cfg = Dlink_uarch.Config
module E = Dlink_core.Experiment
module Sim = Dlink_core.Sim
module Skip = Dlink_pipeline.Skip
module Sweep = Dlink_core.Abtb_sweep
module Memsave = Dlink_core.Memory_savings
module Profile = Dlink_pipeline.Profile
module Cow = Dlink_core.Cow
module Sched = Dlink_sched.Scheduler
module Policy = Dlink_sched.Policy
module Qs = Dlink_sched.Quantum_sweep
module Replay = Dlink_trace.Replay
module Tcache = Dlink_trace.Cache
module Sreplay = Dlink_trace.Sched_replay
module Parallel = Dlink_util.Parallel
module Dpool = Dlink_util.Dpool
module W = Dlink_workloads
module Table = Dlink_util.Table
module Plot = Dlink_util.Ascii_plot
module Json = Dlink_util.Json
module Stats = Dlink_stats

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let fmt = Table.fmt_float

(* --json FILE: machine-readable dump of the headline metrics, appended to
   as sections run and written on exit. *)
let json_path =
  let rec scan = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* Fail fast on an unwritable path rather than at the end of a long run. *)
let () =
  match json_path with
  | None -> ()
  | Some path -> (
      try close_out (open_out path)
      with Sys_error e ->
        Printf.eprintf "cannot write --json file: %s\n" e;
        exit 2)

(* --jobs N: shared-memory domain workers for the per-workload
   simulations and the sweeps (0 = auto-detect from DLINK_JOBS / core
   count). *)
let jobs =
  let rec scan = function
    | "--jobs" :: n :: _ -> (
        match int_of_string_opt n with
        | Some 0 -> Parallel.default_jobs ()
        | Some n when n > 0 -> n
        | _ ->
            Printf.eprintf "bad --jobs value: %s\n" n;
            exit 2)
    | _ :: rest -> scan rest
    | [] -> 1
  in
  scan (Array.to_list Sys.argv)

(* --only SEC[,SEC..]: run a subset of sections (CI smoke).  The names
   here must match the driver's section list at the bottom of this file
   (the driver asserts they do); validating at parse time means a typo
   fails fast, before any benchmarking starts. *)
let known_sections =
  [
    "tables";
    "latency";
    "memsave";
    "ablations";
    "multiprocess";
    "fault";
    "throughput";
    "flushsweep";
    "churnsweep";
    "servesweep";
    "servesweep_1m";
    "micro";
  ]

(* --repeat N: the throughput section reports median-of-N sim_mips, so
   the committed baseline and the CI regression gate see numbers stable
   enough to compare across runs. *)
let repeat =
  let rec scan = function
    | "--repeat" :: n :: _ -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> n
        | _ ->
            Printf.eprintf "bad --repeat value: %s\n" n;
            exit 2)
    | _ :: rest -> scan rest
    | [] -> 1
  in
  scan (Array.to_list Sys.argv)

let only =
  let rec scan = function
    | [ "--only" ] ->
        Printf.eprintf "--only requires a section name (try: %s)\n"
          (String.concat ", " known_sections);
        exit 2
    | "--only" :: names :: _ ->
        let names = String.split_on_char ',' names |> List.map String.trim in
        List.iter
          (fun name ->
            if not (List.mem name known_sections) then begin
              Printf.eprintf "unknown --only section %s (try: %s)\n" name
                (String.concat ", " known_sections);
              exit 2
            end)
          names;
        Some names
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let json_acc : (string * Json.t) list ref = ref []
let json_add key v = if json_path <> None then json_acc := (key, v) :: !json_acc

let json_counters (c : C.t) =
  Json.Obj
    [
      ("instructions", Json.Int c.C.instructions);
      ("cycles", Json.Int c.C.cycles);
      ("tramp_calls", Json.Int c.C.tramp_calls);
      ("tramp_skips", Json.Int c.C.tramp_skips);
      ("tramp_instructions", Json.Int c.C.tramp_instructions);
      ("abtb_clears", Json.Int c.C.abtb_clears);
      ("got_stores", Json.Int c.C.got_stores);
      ("resolver_runs", Json.Int c.C.resolver_runs);
      ("coherence_invalidations", Json.Int c.C.coherence_invalidations);
      ("icache_misses", Json.Int c.C.icache_misses);
      ("dcache_misses", Json.Int c.C.dcache_misses);
      ("itlb_misses", Json.Int c.C.itlb_misses);
      ("dtlb_misses", Json.Int c.C.dtlb_misses);
      ("branch_mispredictions", Json.Int c.C.branch_mispredictions);
      ("mis_skips", Json.Int c.C.mis_skips);
      ("lost_skips", Json.Int c.C.lost_skips);
      ("quarantine_entries", Json.Int c.C.quarantine_entries);
      ("fault_injected", Json.Int c.C.fault_injected);
    ]

let json_flush () =
  match json_path with
  | None -> ()
  | Some path ->
      Json.write_file path (Json.Obj (List.rev !json_acc));
      Printf.printf "\nwrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Shared simulation runs: one (base, enhanced, patched) triple per
   workload; every table and figure below is derived from these.         *)

type triple = {
  wl : Dlink_core.Workload.t;
  base : E.run;
  enhanced : E.run;
  patched : E.run;
}

let workload_names = [ "apache"; "firefox"; "memcached"; "mysql" ]

(* Runs go through the trace cache: Base records the packed trace,
   Enhanced replays the very same trace (the skip decision is re-made at
   replay time), Patched records its own (different link image).  Counters
   are bit-identical to generate-mode runs (see test/test_trace.ml). *)
let make_triple ?(verbose = true) name =
  let gen = Option.get (W.Registry.find name) in
  let wl = gen ?seed:None () in
  if verbose then Printf.printf "  running %-10s base ...%!" name;
  let base = Replay.run ~record_stream:true ~mode:Sim.Base wl in
  if verbose then Printf.printf " enhanced ...%!";
  let enhanced = Replay.run ~mode:Sim.Enhanced wl in
  if verbose then Printf.printf " patched ...%!";
  let patched = Replay.run ~mode:Sim.Patched wl in
  if verbose then Printf.printf " done\n%!";
  { wl; base; enhanced; patched }

(* Domain workers share the heap, so triples — workload closures
   included — come back directly, and every trace a worker records lands
   in the shared mutex-guarded cache where the later sections replay it
   instead of re-recording (the fork pool lost the children's
   recordings to copy-on-write). *)
let make_triples () =
  if jobs <= 1 then List.map (fun n -> (n, make_triple n)) workload_names
  else begin
    Printf.printf "  running %d workloads across %d domains ...%!"
      (List.length workload_names) jobs;
    let triples =
      Dpool.map ~jobs (fun n -> (n, make_triple ~verbose:false n)) workload_names
    in
    Printf.printf " done\n%!";
    triples
  end

(* ------------------------------------------------------------------ *)
(* Table 2: trampoline instructions per kilo-instruction.               *)

let paper_table2 =
  [ ("apache", 12.23); ("firefox", 0.72); ("memcached", 1.75); ("mysql", 5.56) ]

let table2 triples =
  section "Table 2: Instructions in trampoline per kilo instruction";
  let t = Table.create ~headers:[ "Workload"; "Paper (PKI)"; "Simulated (PKI)" ] in
  List.iter
    (fun (name, tr) ->
      Table.add_row t
        [ name; fmt (List.assoc name paper_table2); fmt (E.tramp_pki tr.base) ])
    triples;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table 3: distinct trampolines used.                                  *)

let paper_table3 =
  [ ("apache", 501); ("firefox", 2457); ("memcached", 33); ("mysql", 1611) ]

let table3 triples =
  section "Table 3: Number of trampolines used by program execution";
  let t = Table.create ~headers:[ "Workload"; "Paper"; "Simulated" ] in
  List.iter
    (fun (name, tr) ->
      Table.add_row t
        [
          name;
          string_of_int (List.assoc name paper_table3);
          string_of_int tr.base.E.distinct_trampolines;
        ])
    triples;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 4: rank-frequency of trampolines (log-log).                   *)

let figure4 triples =
  section "Figure 4: Frequency of trampolines (rank vs call count, log-log)";
  let series =
    List.map
      (fun (name, tr) -> { Plot.label = name; points = tr.base.E.rank_frequency })
      triples
  in
  print_string
    (Plot.line_chart ~log_x:true ~log_y:true ~x_label:"rank" ~y_label:"calls"
       ~title:"trampoline rank vs frequency" series);
  (* Decile samples of each curve for numeric comparison. *)
  let t = Table.create ~headers:[ "Workload"; "rank1"; "rank10"; "rank100"; "last" ] in
  List.iter
    (fun (name, tr) ->
      let rf = Array.of_list tr.base.E.rank_frequency in
      let at i = if i < Array.length rf then fmt ~decimals:0 (snd rf.(i)) else "-" in
      Table.add_row t [ name; at 0; at 9; at 99; at (Array.length rf - 1) ])
    triples;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table 4: performance counters PKI, base vs enhanced.                 *)

type t4_row = { label : string; paper : float * float; value : C.t -> float }

let paper_table4 =
  [
    ("apache", [ (109.31, 104.22); (1.78, 1.18); (7.96, 7.56); (4.03, 4.62); (13.46, 12.32) ]);
    ("firefox", [ (10.70, 10.38); (0.87, 0.79); (2.66, 2.67); (1.54, 1.75); (4.84, 4.77) ]);
    ("memcached", [ (51.99, 51.42); (0.03, 0.0); (12.25, 12.16); (4.74, 4.73); (5.48, 5.30) ]);
    ("mysql", [ (25.21, 24.93); (2.41, 2.36); (8.48, 8.46); (2.86, 2.77); (14.44, 14.40) ]);
  ]

let table4 triples =
  section "Table 4: Performance counters (per kilo-instruction)";
  print_endline
    "  'patched' reproduces the paper's software emulation of the hardware\n\
    \  (its published Enhanced column); 'enhanced' is the full hardware model.";
  List.iter
    (fun (name, tr) ->
      let paper = List.assoc name paper_table4 in
      let rows =
        List.map2
          (fun (label, value) paper -> { label; paper; value })
          [
            ("I-$ Misses", fun (c : C.t) -> C.pki c c.C.icache_misses);
            ("I-TLB Misses", fun c -> C.pki c c.C.itlb_misses);
            ("D-$ Misses", fun c -> C.pki c c.C.dcache_misses);
            ("D-TLB Misses", fun c -> C.pki c c.C.dtlb_misses);
            ("Branch Mispred.", fun c -> C.pki c c.C.branch_mispredictions);
          ]
          paper
      in
      let t =
        Table.create
          ~headers:
            [ "Counter"; "paper base"; "paper enh"; "sim base"; "sim patched"; "sim enhanced" ]
      in
      List.iter
        (fun r ->
          let pb, pe = r.paper in
          Table.add_row t
            [
              r.label;
              fmt pb;
              fmt pe;
              fmt (r.value tr.base.E.counters);
              fmt (r.value tr.patched.E.counters);
              fmt (r.value tr.enhanced.E.counters);
            ])
        rows;
      Table.print ~title:("Table 4 — " ^ name) t)
    triples

(* ------------------------------------------------------------------ *)
(* Figure 5: % trampolines skipped vs ABTB size.                        *)

let figure5 triples =
  section "Figure 5: % of trampolines skipped for different ABTB sizes";
  let t =
    Table.create
      ~headers:
        ("Entries" :: List.map (fun (n, _) -> n) triples)
  in
  let sweeps =
    List.map (fun (_, tr) -> Sweep.sweep tr.base.E.tramp_stream) triples
  in
  List.iteri
    (fun i entries ->
      Table.add_row t
        (string_of_int entries
        :: List.map
             (fun sweep -> fmt (List.nth sweep i).Sweep.skipped_pct)
             sweeps))
    Sweep.default_sizes;
  Table.print t;
  let series =
    List.map2
      (fun (name, _) sweep ->
        {
          Plot.label = name;
          points =
            List.map
              (fun p -> (float_of_int p.Sweep.entries, p.Sweep.skipped_pct))
              sweep;
        })
      triples sweeps
  in
  print_string
    (Plot.line_chart ~log_x:true ~x_label:"ABTB entries" ~y_label:"% skipped"
       ~title:"trampoline skip rate vs ABTB capacity" series);
  print_endline
    "  (paper: >75% skipped with 16 entries; ~all active trampolines at 256)"

(* ------------------------------------------------------------------ *)
(* Figure 6: Apache response-time CDFs per request type.                *)

let latency_cdf run rtype =
  match Array.find_opt (fun (n, _) -> n = rtype) run.E.latencies_us with
  | Some (_, samples) when Array.length samples > 0 -> Some (Stats.Cdf.of_samples samples)
  | _ -> None

let cdf_quantile_table ~unit name base enhanced rtypes =
  let t =
    Table.create
      ~headers:
        [ "Request type"; "pct"; "base " ^ unit; "enhanced " ^ unit; "delta" ]
  in
  List.iter
    (fun rtype ->
      match (latency_cdf base rtype, latency_cdf enhanced rtype) with
      | Some cb, Some ce ->
          List.iter
            (fun q ->
              let b = Stats.Cdf.quantile cb q and e = Stats.Cdf.quantile ce q in
              Table.add_row t
                [
                  rtype;
                  Printf.sprintf "%.0f%%" (100.0 *. q);
                  fmt ~decimals:1 b;
                  fmt ~decimals:1 e;
                  Table.fmt_pct ((e -. b) /. b);
                ])
            [ 0.5; 0.9; 0.99 ]
      | _ -> Table.add_row t [ rtype; "-"; "-"; "-"; "-" ])
    rtypes;
  Table.print ~title:name t

let figure6 tr =
  section "Figure 6: CDF of Apache requests served vs response time";
  cdf_quantile_table ~unit:"us" "Apache SPECweb response-time quantiles"
    tr.base tr.patched W.Apache.request_types;
  (match (latency_cdf tr.base "Search", latency_cdf tr.patched "Search") with
  | Some cb, Some ce ->
      let to_series label c =
        {
          Plot.label;
          points = List.map (fun (x, y) -> (x, 100.0 *. y)) (Stats.Cdf.points c);
        }
      in
      print_string
        (Plot.line_chart ~x_label:"response time (us)" ~y_label:"% served"
           ~title:"Apache 'Search' requests: base (*) vs enhanced-emulation (+)"
           [ to_series "base" cb; to_series "enhanced" ce ])
  | _ -> ());
  let t =
    Table.create ~headers:[ "Request type"; "mean base us"; "mean enh us"; "improvement" ]
  in
  List.iter
    (fun rtype ->
      let b = E.mean_latency_us tr.base rtype
      and e = E.mean_latency_us tr.patched rtype in
      Table.add_row t
        [ rtype; fmt ~decimals:1 b; fmt ~decimals:1 e; Table.fmt_pct ((e -. b) /. b) ])
    W.Apache.request_types;
  Table.print ~title:"Apache mean response times (paper: up to 4% improvement)" t

(* ------------------------------------------------------------------ *)
(* Table 5: Firefox Peacekeeper scores.                                 *)

let table5 tr =
  section "Table 5: Firefox Peacekeeper scores (higher is better)";
  let base_scores = W.Firefox.scores tr.base in
  let enh_scores = W.Firefox.scores ~anchor:tr.base tr.patched in
  let paper =
    [
      ("Rendering", (49.31, 50.64));
      ("HTML5 Canvas", (37.47, 37.94));
      ("Data", (22499.0, 22727.0));
      ("DOM operations", (16547.0, 16850.0));
      ("Text parsing", (214897.0, 216625.0));
    ]
  in
  let t =
    Table.create
      ~headers:
        [ "Workload"; "unit"; "paper base"; "paper enh"; "sim base"; "sim enh"; "delta" ]
  in
  List.iter2
    (fun (name, unit, b) (_, _, e) ->
      let pb, pe = List.assoc name paper in
      Table.add_row t
        [
          name;
          unit;
          fmt ~decimals:(if pb < 100.0 then 2 else 0) pb;
          fmt ~decimals:(if pe < 100.0 then 2 else 0) pe;
          fmt ~decimals:(if b < 100.0 then 2 else 0) b;
          fmt ~decimals:(if e < 100.0 then 2 else 0) e;
          Table.fmt_pct ((e -. b) /. b);
        ])
    base_scores enh_scores;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 7: Memcached processing-time histograms (TSC kilocycles).     *)

let figure7 tr =
  section "Figure 7: Histogram of Memcached request processing times";
  List.iter
    (fun rtype ->
      match
        ( Array.find_opt (fun (n, _) -> n = rtype) tr.base.E.latencies_us,
          Array.find_opt (fun (n, _) -> n = rtype) tr.patched.E.latencies_us )
      with
      | Some (_, bs), Some (_, es) when Array.length bs > 0 ->
          (* Convert microseconds to TSC kilocycle units as in the paper. *)
          let tsc samples = Array.map (fun us -> us *. 3.0) samples in
          let bs = tsc bs and es = tsc es in
          let all = Stats.Summary.of_array (Array.append bs es) in
          let lo = Stats.Summary.percentile all 2.0
          and hi = Stats.Summary.percentile all 90.0 in
          let hb = Stats.Histogram.of_samples ~lo ~hi ~bins:24 bs
          and he = Stats.Histogram.of_samples ~lo ~hi ~bins:24 es in
          Printf.printf "\n%s requests (processing time, TSC units x1000):\n" rtype;
          List.iter2
            (fun (center, fb) (_, fe) ->
              Printf.printf "  %8.2f  base %-28s| enh %-28s\n" center
                (String.make (int_of_float (fb *. 280.0)) '#')
                (String.make (int_of_float (fe *. 280.0)) '*'))
            (Stats.Histogram.fractions hb) (Stats.Histogram.fractions he);
          let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
          Printf.printf
            "  peak bin: base=%.2f enhanced=%.2f; mean: base=%.2f enhanced=%.2f (%+.2f%%)\n"
            (Stats.Histogram.peak_center hb) (Stats.Histogram.peak_center he)
            (mean bs) (mean es)
            (100.0 *. (mean es -. mean bs) /. mean bs)
      | _ -> ())
    W.Memcached.request_types

(* ------------------------------------------------------------------ *)
(* Figure 8 + Table 6: MySQL latency CDFs and percentiles.              *)

let figure8_table6 tr =
  section "Figure 8 / Table 6: MySQL TPC-C response times";
  let t =
    Table.create
      ~headers:
        [ "Request"; "pct"; "paper base ms"; "paper enh ms"; "sim base ms"; "sim enh ms" ]
  in
  let paper =
    [
      ("New Order", [ (43.5, 43.0); (57.3, 56.9); (72.8, 72.3); (87.1, 86.8) ]);
      ("Payment", [ (17.9, 17.7); (27.9, 27.2); (37.2, 35.9); (44.4, 43.0) ]);
    ]
  in
  List.iter
    (fun rtype ->
      match (latency_cdf tr.base rtype, latency_cdf tr.patched rtype) with
      | Some cb, Some ce ->
          List.iter2
            (fun pct (pb, pe) ->
              let b = Stats.Cdf.quantile cb (pct /. 100.0) /. 1000.0
              and e = Stats.Cdf.quantile ce (pct /. 100.0) /. 1000.0 in
              Table.add_row t
                [
                  rtype;
                  Printf.sprintf "%.0f%%" pct;
                  fmt ~decimals:1 pb;
                  fmt ~decimals:1 pe;
                  fmt ~decimals:1 b;
                  fmt ~decimals:1 e;
                ])
            W.Mysql.table6_percentiles (List.assoc rtype paper)
      | _ -> ())
    W.Mysql.request_types;
  Table.print t;
  match (latency_cdf tr.base "Payment", latency_cdf tr.patched "Payment") with
  | Some cb, Some ce ->
      let to_series label c =
        {
          Plot.label;
          points =
            List.map (fun (x, y) -> (x /. 1000.0, 100.0 *. y)) (Stats.Cdf.points c);
        }
      in
      print_string
        (Plot.line_chart ~x_label:"response time (ms)" ~y_label:"% served"
           ~title:"MySQL 'Payment' CDF: base (*) vs enhanced-emulation (+)"
           [ to_series "base" cb; to_series "enhanced" ce ])
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Section 5.5: memory savings.                                         *)

let memsave () =
  section "Section 5.5: Memory overhead of software call-site patching";
  let wl = W.Apache.workload () in
  let sim = Sim.create ~mode:Sim.Patched wl.Dlink_core.Workload.objs in
  let pages = Dlink_linker.Loader.patched_pages (Sim.linked sim) in
  let sites = List.length (Sim.linked sim).Dlink_linker.Loader.patch_sites in
  Printf.printf "  apache module set: %d patched call sites on %d code pages\n"
    sites pages;
  Printf.printf "  (paper: ~280 code pages copied, ~1.1 MB per process)\n";
  let t =
    Table.create
      ~headers:[ "Strategy"; "processes"; "pages/process"; "copied pages"; "wasted MB" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Memsave.strategy_to_string r.Memsave.strategy;
          string_of_int r.Memsave.processes;
          string_of_int r.Memsave.patched_pages_per_process;
          string_of_int r.Memsave.copied_pages_total;
          fmt (float_of_int r.Memsave.wasted_bytes /. 1048576.0);
        ])
    (Memsave.analyze_all ~patched_pages:pages ~processes:450);
  Table.print t

let memsave_dynamic triples =
  section "Section 5.5 (dynamic): COW growth under lazy per-process patching";
  let tr = List.assoc "apache" triples in
  (* Re-run a short window to collect the first-touch schedule. *)
  let sim = Sim.create ~mode:Sim.Base tr.wl.Dlink_core.Workload.objs in
  for i = 0 to 199 do
    let req = tr.wl.Dlink_core.Workload.gen_request i in
    Sim.call sim ~mname:req.Dlink_core.Workload.mname ~fname:req.Dlink_core.Workload.fname
  done;
  let p = Sim.profile sim in
  let site_order = Profile.site_first_touch p in
  let total_calls = Profile.tramp_calls p in
  let t =
    Table.create
      ~headers:[ "run elapsed"; "pages copied / process"; "wasted MB (450 procs)" ]
  in
  List.iter
    (fun g ->
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (100.0 *. g.Cow.calls_fraction);
          string_of_int g.Cow.pages_per_process;
          fmt g.Cow.wasted_mb;
        ])
    (Cow.lazy_patching_growth ~site_order ~total_calls ~processes:450 ~samples:8);
  Table.print t;
  print_endline
    "  Lazy patching dirties code pages as call sites are first executed:\n\
    \  most of the waste appears within the first fraction of the run, and\n\
    \  every worker pays it separately (the paper's 2.3 objection)."

(* ------------------------------------------------------------------ *)
(* Ablations.                                                           *)

let ablation_abtb_organization triples =
  section "Ablation: ABTB organization (256 entries, replayed call stream)";
  let t =
    Table.create ~headers:("Ways" :: List.map (fun (n, _) -> n ^ " skip%") triples)
  in
  List.iter
    (fun ways ->
      Table.add_row t
        (string_of_int ways
        :: List.map
             (fun (_, tr) ->
               fmt (Sweep.replay ~entries:256 ~ways tr.base.E.tramp_stream))
             triples))
    [ 256; 8; 4; 2; 1 ];
  Table.print t;
  print_endline "  (256 ways = fully associative; 1 way = direct mapped)"

(* Replays the cached trace when the skip config allows it; configs the
   replay contract excludes (filter_fallthrough off, verify_targets on)
   fall back to generate-mode execution inside [Replay.run]. *)
let short_enh ?skip_cfg ?warmup ?context_switch_every ?retain_asid wl requests =
  Replay.run ?skip_cfg ?warmup ?context_switch_every ?retain_asid ~requests
    ~mode:Sim.Enhanced wl

let ablation_bloom () =
  section "Ablation: Bloom filter granularity and size (apache, 400 requests)";
  let wl = W.Apache.workload () in
  let t =
    Table.create
      ~headers:[ "Granularity"; "bits"; "hashes"; "clears"; "false clears"; "skip %" ]
  in
  let cases =
    [
      (Skip.Page, 512, 2);
      (Skip.Page, 4096, 2);
      (Skip.Slot, 1024, 2);
      (Skip.Slot, 16384, 4);
      (Skip.Slot, 262144, 6);
    ]
  in
  List.iter
    (fun (granularity, bits, hashes) ->
      let cfg =
        {
          Skip.default_config with
          bloom_granularity = granularity;
          bloom_bits = bits;
          bloom_hashes = hashes;
        }
      in
      let run = short_enh ~skip_cfg:cfg wl 400 in
      let c = run.E.counters in
      Table.add_row t
        [
          (match granularity with Skip.Page -> "page" | Skip.Slot -> "slot");
          string_of_int bits;
          string_of_int hashes;
          string_of_int c.C.abtb_clears;
          string_of_int c.C.abtb_false_clears;
          fmt (100.0 *. float_of_int c.C.tramp_skips /. float_of_int (max 1 c.C.tramp_calls));
        ])
    cases;
  Table.print t;
  print_endline
    "  The paper stores exact GOT-slot addresses but never sizes the filter;\n\
    \  slot granularity needs a large filter before false-positive clears stop\n\
    \  destroying the ABTB, while page granularity is tiny and precise."

let ablation_fallthrough () =
  section "Ablation: fall-through pair filter (memcached, 600 requests)";
  let wl = W.Memcached.workload () in
  let t =
    Table.create
      ~headers:[ "filter_fallthrough"; "ABTB clears"; "inserts"; "skip %"; "mispred PKI" ]
  in
  List.iter
    (fun filter ->
      let cfg = { Skip.default_config with filter_fallthrough = filter } in
      let run = short_enh ~skip_cfg:cfg ~warmup:0 wl 600 in
      let c = run.E.counters in
      Table.add_row t
        [
          string_of_bool filter;
          string_of_int c.C.abtb_clears;
          string_of_int c.C.abtb_inserts;
          fmt (100.0 *. float_of_int c.C.tramp_skips /. float_of_int (max 1 c.C.tramp_calls));
          fmt (C.pki c c.C.branch_mispredictions);
        ])
    [ true; false ];
  Table.print t;
  print_endline
    "  Without the filter, the lazy first execution installs a junk pair and\n\
    \  the resolver's GOT store clears the whole ABTB once per library call —\n\
    \  the startup transient the paper describes in section 3.2."

let ablation_context_switch () =
  section "Ablation: context switches (memcached, 600 requests)";
  let wl = W.Memcached.workload () in
  let t =
    Table.create
      ~headers:[ "switch every"; "retain ASID"; "skip %"; "cycles / instr" ]
  in
  let case every retain =
    let run = short_enh ?context_switch_every:every ~retain_asid:retain wl 600 in
    let c = run.E.counters in
    Table.add_row t
      [
        (match every with None -> "never" | Some k -> string_of_int k ^ " requests");
        string_of_bool retain;
        fmt (100.0 *. float_of_int c.C.tramp_skips /. float_of_int (max 1 c.C.tramp_calls));
        fmt ~decimals:3 (float_of_int c.C.cycles /. float_of_int (max 1 c.C.instructions));
      ]
  in
  case None false;
  case (Some 50) false;
  case (Some 5) false;
  case (Some 5) true;
  Table.print t;
  print_endline
    "  The ABTB flushes with the TLBs on a switch unless address-space IDs\n\
    \  retain it (section 3.3, 'Missing ABTB entry after context switch')."

let ablation_link_modes () =
  section "Ablation: binding strategies (memcached, 600 requests)";
  let wl = W.Memcached.workload () in
  let t =
    Table.create
      ~headers:[ "Mode"; "instructions"; "cycles"; "tramp PKI"; "resolver runs" ]
  in
  List.iter
    (fun mode ->
      let run = Replay.run ~requests:600 ~mode wl in
      let c = run.E.counters in
      Table.add_row t
        [
          Sim.mode_to_string mode;
          string_of_int c.C.instructions;
          string_of_int c.C.cycles;
          fmt (C.pki c c.C.tramp_instructions);
          string_of_int c.C.resolver_runs;
        ])
    [ Sim.Base; Sim.Eager; Sim.Enhanced; Sim.Patched; Sim.Static ];
  Table.print t

let ablation_dispatch_mechanisms () =
  section "Ablation: lookup-table dispatch mechanisms (paper Section 2.4)";
  (* A loop making one PLT call (to an ifunc-resolved symbol) and one
     C++-style virtual call per iteration: the hardware accelerates the
     former and leaves the latter alone. *)
  let module Body = Dlink_obj.Body in
  let module Objfile = Dlink_obj.Objfile in
  let lib =
    Objfile.create_exn ~name:"lib"
      ~ifuncs:
        [ { Objfile.iname = "kernel"; candidates = [ "kernel_fast"; "kernel_slow" ] } ]
      [
        { Objfile.fname = "kernel_fast"; exported = true; body = [ Body.Compute 4 ] };
        { Objfile.fname = "kernel_slow"; exported = true; body = [ Body.Compute 9 ] };
        { Objfile.fname = "method"; exported = true; body = [ Body.Compute 4 ] };
      ]
  in
  let app =
    Objfile.create_exn ~name:"app"
      ~vtables:[ { Objfile.vname = "vt"; entries = [ "method" ] } ]
      [
        {
          Objfile.fname = "main";
          exported = false;
          body =
            [
              Body.Loop
                {
                  mean_iters = 500.0;
                  body =
                    [
                      Body.Call_import "kernel";
                      Body.Call_virtual { vtable = "vt"; slot = 0 };
                      Body.Compute 6;
                    ];
                };
            ];
        };
      ]
  in
  let t =
    Table.create
      ~headers:[ "Mode"; "instructions"; "cycles"; "PLT calls"; "skipped" ]
  in
  List.iter
    (fun mode ->
      let sim = Sim.create ~mode [ app; lib ] in
      for _ = 1 to 20 do
        Sim.call sim ~mname:"app" ~fname:"main"
      done;
      let c = Sim.counters sim in
      Table.add_row t
        [
          Sim.mode_to_string mode;
          string_of_int c.C.instructions;
          string_of_int c.C.cycles;
          string_of_int c.C.tramp_calls;
          string_of_int c.C.tramp_skips;
        ])
    [ Sim.Base; Sim.Enhanced ];
  Table.print t;
  print_endline
    "  The ifunc is called through the PLT and gets skipped like any library\n\
    \  call; the virtual calls dispatch through a data-segment vtable with a\n\
    \  memory-indirect call and never engage the mechanism (Section 2.4.2)."

let ablation_explicit_invalidate () =
  section "Ablation: Bloom guard vs explicit invalidation (paper Section 3.4)";
  let wl = W.Memcached.workload () in
  let t =
    Table.create
      ~headers:[ "Coherence"; "bloom bits"; "skip %"; "clears"; "hardware cost" ]
  in
  List.iter
    (fun (label, coherence, bits, cost) ->
      let cfg =
        { Skip.default_config with coherence; bloom_bits = bits }
      in
      let run = short_enh ~skip_cfg:cfg wl 600 in
      let c = run.E.counters in
      Table.add_row t
        [
          label;
          string_of_int bits;
          fmt (100.0 *. float_of_int c.C.tramp_skips /. float_of_int (max 1 c.C.tramp_calls));
          string_of_int c.C.abtb_clears;
          cost;
        ])
    [
      ("bloom guard (transparent)", Skip.Bloom_guard, 4096, "512 B filter");
      ("explicit invalidate (software)", Skip.Explicit_invalidate, 4096, "none");
    ];
  Table.print t;
  print_endline
    "  Explicit invalidation removes the filter entirely but makes the\n\
    \  dynamic loader responsible for ABTB flushes on every GOT rewrite —\n\
    \  an architecturally visible contract, like non-coherent I-caches."

(* ------------------------------------------------------------------ *)
(* Multi-process scheduling: the dlink_sched subsystem.                  *)

let multiprocess_scheduling () =
  section "Multi-process scheduling: flush vs ASID-tagged ABTB";
  let mix = [ "apache"; "memcached"; "mysql" ] in
  let workloads =
    List.map (fun n -> (Option.get (W.Registry.find n)) ?seed:None ()) mix
  in
  Printf.printf "  mix: %s, 200 requests each, single core, %d job(s)\n%!"
    (String.concat "+" mix) jobs;
  let points = Sreplay.sweep ~requests:200 ~jobs ~policies:Policy.all workloads in
  Table.print (Qs.table points);
  print_string (Qs.plot points);
  print_endline
    "  Short quanta under 'flush' destroy the ABTB working set before it\n\
    \  pays off; ASID tags let a process resume warm (section 3.3).";
  json_add "quantum_sweep"
    (Json.List
       (List.map
          (fun (p : Qs.point) ->
            Json.Obj
              [
                ("quantum", Json.Int p.Qs.quantum);
                ("policy", Json.String (Policy.to_string p.Qs.policy));
                ("skip_pct", Json.Float p.Qs.skip_pct);
                ("cpi", Json.Float p.Qs.cpi);
                ("abtb_clears", Json.Int p.Qs.abtb_clears);
                ("coherence_invalidations", Json.Int p.Qs.coherence_invalidations);
                ("switches", Json.Int p.Qs.switches);
              ])
          points));
  (* Cross-core GOT coherence: a rebinding store retired by one core's
     process clears the sibling core's guarded entries over the bus. *)
  let sched =
    Sched.create ~policy:Policy.Asid_shared_guard ~quantum:10 ~cores:2
      ~requests:150
      (List.map (fun n -> (Option.get (W.Registry.find n)) ?seed:None ())
         [ "memcached"; "memcached" ])
  in
  Sched.run sched;
  let before = (Sched.system_counters sched).C.coherence_invalidations in
  let p1 = Sched.proc sched 1 in
  let got_slot =
    let linked = Sched.proc_linked p1 in
    let lowest =
      Array.fold_left
        (fun acc (img : Dlink_linker.Image.t) ->
          Hashtbl.fold
            (fun _ a acc ->
              match acc with None -> Some a | Some b -> Some (min a b))
            img.Dlink_linker.Image.got_slots acc)
        None
        (Dlink_linker.Space.images linked.Dlink_linker.Loader.space)
    in
    Option.get lowest
  in
  Sched.retire_got_store sched ~pid:1 got_slot;
  let after = (Sched.system_counters sched).C.coherence_invalidations in
  Printf.printf
    "  cross-core rebinding: GOT store on core 1 -> %d coherence invalidation(s)\n\
    \  on the sibling core (bus published=%d delivered=%d)\n"
    (after - before)
    (Dlink_mach.Coherence.published (Sched.bus sched))
    (Dlink_mach.Coherence.delivered (Sched.bus sched));
  json_add "cross_core_guard"
    (Json.Obj
       [
         ("invalidations", Json.Int (after - before));
         ("bus_published", Json.Int (Dlink_mach.Coherence.published (Sched.bus sched)));
         ("bus_delivered", Json.Int (Dlink_mach.Coherence.delivered (Sched.bus sched)));
       ])

(* ------------------------------------------------------------------ *)
(* Simulator throughput: generate-mode execution vs packed-trace replay. *)

(* Median over [repeat] samples: sim_mips varies run to run with host
   noise, and a median is what the CI regression gate can gate on. *)
let median_of samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else if n land 1 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let median_mips run_once =
  let rec go k acc = if k = 0 then acc else go (k - 1) (run_once () :: acc) in
  median_of (go repeat [])

(* Flush-policy multi-process sweeps, shared by the full throughput
   section and the lean [flushsweep] section (the latter exists so the CI
   regression gate — and A/B comparisons across builds — can re-measure
   the clear-dominated paths without paying for the 8-workload
   generate-vs-replay table).  Forced at most once per process. *)
let flush_sweeps =
  lazy
    ((* Short quanta under the Flush policy wipe the ABTB, Bloom filter
        and TLBs on every context switch — the workload the O(1)
        generation-stamped clears are for. *)
     let mix = [ "apache"; "memcached"; "mysql" ] in
     let workloads =
       List.map (fun n -> (Option.get (W.Registry.find n)) ?seed:None ()) mix
     in
     let quanta = [ 1; 2; 5 ] and requests = 150 in
     (* Record the per-workload traces once, outside the timed region. *)
     List.iter
       (fun w -> ignore (Tcache.get ~warmup:0 ~requests ~mode:Sim.Enhanced w))
       workloads;
     let instructions = ref 0 in
     let sweep_mips () =
       let t0 = Unix.gettimeofday () in
       let points =
         Sreplay.sweep ~requests ~jobs:1 ~policies:[ Policy.Flush ] ~quanta
           workloads
       in
       let wall = Unix.gettimeofday () -. t0 in
       instructions :=
         List.fold_left (fun a (p : Qs.point) -> a + p.Qs.instructions) 0 points;
       E.mips ~instructions:!instructions ~wall_s:wall
     in
     let flush_mips = median_mips sweep_mips in
     Printf.printf
       "  multi-process flush-policy sweep (%s; quanta %s; %d requests):\n\
       \  %.2f Mi/s over %d simulated instructions\n"
       (String.concat "+" mix)
       (String.concat "," (List.map string_of_int quanta))
       requests flush_mips !instructions;
     (* The request-granularity sweep above switches every ~50k
        instructions, so even O(capacity) clears are a sub-0.1% cost
        there.  The clear-dominated regime the O(1) flash clear targets is
        fine-grain timeslicing: round-robin the same packed traces on one
        kernel with an event-granularity quantum, paying the Flush-policy
        context switch (TLB + RAS + ABTB + Bloom wipe) at every slice
        boundary.  At the shortest quantum the eager clears used to cost
        as much as the retire work itself. *)
     let module Kernel = Dlink_pipeline.Kernel in
     let module Ptrace = Dlink_pipeline.Trace in
     let traces =
       List.map
         (fun w -> Tcache.get ~warmup:0 ~requests ~mode:Sim.Enhanced w)
         workloads
     in
     let finegrain ~quantum instructions =
       let m = Replay.make_machine ~mode:Sim.Enhanced () in
       let counters = Kernel.counters m in
       let cursors = Array.of_list (List.map Ptrace.Cursor.create traces) in
       let stops =
         Array.map
           (fun (c : Ptrace.Cursor.t) ->
             c.Ptrace.Cursor.trace.Ptrace.req_start.(requests))
           cursors
       in
       Array.iter (fun c -> Ptrace.Cursor.seek_request c 0) cursors;
       let running = ref (-1) in
       let live = ref 1 in
       let t0 = Unix.gettimeofday () in
       while !live > 0 do
         live := 0;
         Array.iteri
           (fun pid (c : Ptrace.Cursor.t) ->
             if c.Ptrace.Cursor.i < stops.(pid) then begin
               incr live;
               if !running <> pid then begin
                 if !running >= 0 then Kernel.context_switch m;
                 Kernel.set_asid m (pid + 1);
                 running := pid
               end;
               let b = c.Ptrace.Cursor.i + quantum in
               Kernel.replay_events m c
                 ~stop:(if b < stops.(pid) then b else stops.(pid))
             end)
           cursors
       done;
       let wall = Unix.gettimeofday () -. t0 in
       instructions := counters.C.instructions;
       E.mips ~instructions:!instructions ~wall_s:wall
     in
     let fg_quanta = [ 50; 500; 5000 ] in
     let fg_entries =
       List.map
         (fun q ->
           let instructions = ref 0 in
           let mips =
             median_mips (fun () -> finegrain ~quantum:q instructions)
           in
           Printf.printf
             "  fine-grain flush sweep, quantum %d events: %.2f Mi/s over %d \
              simulated instructions\n"
             q mips !instructions;
           ( Printf.sprintf "quantum_%d" q,
             Json.Obj
               [
                 ("sim_mips", Json.Float mips);
                 ("instructions", Json.Int !instructions);
               ] ))
         fg_quanta
     in
     [
       ( "multiprocess_flush_sweep",
         Json.Obj
           [
             ("sim_mips", Json.Float flush_mips);
             ("instructions", Json.Int !instructions);
             ("repeat", Json.Int repeat);
           ] );
       ("finegrain_flush_sweep", Json.Obj fg_entries);
     ])

let flushsweep () =
  section "Flush-policy multi-process sweeps";
  json_add "flushsweep" (Json.Obj (Lazy.force flush_sweeps))

(* Runtime module churn: dlopen/dlclose rotation per (rate x link mode)
   cell.  The paper's mechanism is evaluated against a static module set;
   this section measures how the ABTB/Bloom hardware behaves when the set
   itself churns — unmap invalidations flash-clear the ABTB at a rate set
   by the churn rate, while stable linking (pre-resolved GOT snapshots
   replayed on reopen) removes the resolver runs lazy binding pays on
   every reload without losing the Bloom guard over its GOT stores. *)
let churnsweep () =
  section "Module churn sweep: ABTB clears vs skips vs stable linking";
  let module Ch = Dlink_core.Churn in
  let module Mode = Dlink_linker.Mode in
  let scen = W.Churn.scenario () in
  let calls = 2000 and seed = 42 in
  let rates = [ 0; 100; 300 ] in
  let modes = [ Mode.Lazy_binding; Mode.Eager_binding; Mode.Stable_linking ] in
  let t =
    Table.create
      ~headers:
        [
          "mode"; "rate"; "churn"; "resolver runs"; "stable hit/miss";
          "clears/1k"; "skip rate"; "sim MIPS";
        ]
  in
  let resolver_at_top = Hashtbl.create 4 in
  let entries =
    List.concat_map
      (fun mode ->
        List.map
          (fun rate ->
            let c = Ch.run_cell ~link_mode:mode ~rate ~calls ~seed scen in
            let mips =
              if repeat = 1 then c.Ch.sim_mips
              else
                median_mips (fun () ->
                    (Ch.run_cell ~link_mode:mode ~rate ~calls ~seed scen)
                      .Ch.sim_mips)
            in
            if rate = List.fold_left max 0 rates then
              Hashtbl.replace resolver_at_top mode
                c.Ch.counters.C.resolver_runs;
            Table.add_row t
              [
                Mode.to_string mode;
                string_of_int rate;
                string_of_int c.Ch.churn_events;
                string_of_int c.Ch.counters.C.resolver_runs;
                Printf.sprintf "%d/%d" c.Ch.stable_hits c.Ch.stable_misses;
                fmt (Ch.clear_rate c);
                fmt ~decimals:3 (Ch.skip_rate c);
                fmt mips;
              ];
            ( Printf.sprintf "%s_r%d" (Mode.to_string mode) rate,
              Json.Obj
                [
                  ("churn_events", Json.Int c.Ch.churn_events);
                  ("rebinds", Json.Int c.Ch.rebinds);
                  ("resolver_runs", Json.Int c.Ch.counters.C.resolver_runs);
                  ("stable_hits", Json.Int c.Ch.stable_hits);
                  ("stable_misses", Json.Int c.Ch.stable_misses);
                  ("abtb_clears", Json.Int c.Ch.counters.C.abtb_clears);
                  ("clear_rate", Json.Float (Ch.clear_rate c));
                  ("skip_rate", Json.Float (Ch.skip_rate c));
                  ("sim_mips", Json.Float mips);
                ] ))
          rates)
      modes
  in
  Table.print t;
  (match
     ( Hashtbl.find_opt resolver_at_top Mode.Lazy_binding,
       Hashtbl.find_opt resolver_at_top Mode.Stable_linking )
   with
  | Some lazy_r, Some stable_r ->
      Printf.printf
        "  resolver runs at the top churn rate: lazy %d vs stable %d (%.1fx \
         fewer)\n"
        lazy_r stable_r
        (float_of_int lazy_r /. Float.max 1.0 (float_of_int stable_r))
  | _ -> ());
  print_endline
    "  Stable linking reopens modules from a validated GOT snapshot, so\n\
    \  churn costs flash clears (absorbed by generation stamps) but not\n\
    \  resolver re-runs; every snapshot store still passes the Bloom guard.";
  json_add "churnsweep" (Json.Obj entries)

(* Open-loop serving sweep: the request-first tail-latency view of the
   mechanism.  Each cell plays a deterministic Poisson (or bursty MMPP)
   client against one server at a fraction of base-mode capacity; the
   enhanced mode's shorter service times turn into queueing head-room, so
   the knee of the load-vs-p99 curve moves right.  Every leaf is a pure
   simulated-cycle quantity — bit-reproducible across runs and hosts —
   so the CI gate on goodput_rps (floor) and p99_us (ceiling) only trips
   on behavioral change, never on runner noise. *)
let servesweep () =
  section "Open-loop serving sweep: offered load vs goodput and tail latency";
  let module Serve = Dlink_core.Serve in
  let module Svreplay = Dlink_trace.Serve_replay in
  let module Arrival = Dlink_util.Arrival in
  let name = "memcached" in
  let wl = (Option.get (W.Registry.find name)) ?seed:None () in
  let cfg = { Serve.default_config with Serve.requests = 600 } in
  let loads = [ 0.7; 0.9; 1.0; 1.1 ] in
  let modes = [ Sim.Base; Sim.Enhanced ] in
  let cells =
    Svreplay.sweep ~jobs ~cfg ~loads ~modes
      ~flushes:[ Serve.No_flush; Serve.Flush ] wl
    @ Svreplay.sweep ~jobs
        ~cfg:{ cfg with Serve.arrival = Arrival.default_mmpp }
        ~loads:[ 0.9 ] ~modes ~flushes:[ Serve.No_flush ] wl
  in
  Printf.printf "  %s, %d requests per cell, queue cap %d, seed %d\n" name
    cfg.Serve.requests cfg.Serve.queue_cap cfg.Serve.seed;
  let t =
    Table.create
      ~headers:
        [
          "mode"; "arrival"; "flush"; "load"; "served"; "drops";
          "goodput r/s"; "util"; "p50 us"; "p99 us"; "p999 us";
        ]
  in
  List.iter
    (fun (c : Serve.cell) ->
      Table.add_row t
        [
          Sim.mode_to_string c.Serve.cfg.Serve.mode;
          Arrival.to_string c.Serve.cfg.Serve.arrival;
          Serve.flush_to_string c.Serve.cfg.Serve.flush;
          fmt c.Serve.cfg.Serve.load;
          string_of_int c.Serve.served;
          string_of_int c.Serve.dropped;
          fmt ~decimals:0 c.Serve.goodput_rps;
          fmt ~decimals:3 c.Serve.util;
          fmt ~decimals:1 c.Serve.p50_us;
          fmt ~decimals:1 c.Serve.p99_us;
          fmt ~decimals:1 c.Serve.p999_us;
        ])
    cells;
  Table.print t;
  (* The headline: p99 at each load, base vs enhanced, no flush. *)
  let p99 mode load =
    List.find_opt
      (fun (c : Serve.cell) ->
        c.Serve.cfg.Serve.mode = mode
        && c.Serve.cfg.Serve.load = load
        && c.Serve.cfg.Serve.flush = Serve.No_flush
        && c.Serve.cfg.Serve.arrival = Arrival.Poisson)
      cells
    |> Option.map (fun (c : Serve.cell) -> c.Serve.p99_us)
  in
  List.iter
    (fun load ->
      match (p99 Sim.Base load, p99 Sim.Enhanced load) with
      | Some b, Some e ->
          Printf.printf
            "  load %.2f: p99 base %.1f us vs enhanced %.1f us (%+.1f%%)\n"
            load b e
            (100.0 *. (e -. b) /. b)
      | _ -> ())
    loads;
  print_endline
    "  The same offered stream (arrivals fixed by the base-mode\n\
    \  calibration) queues behind shorter enhanced-mode services; past the\n\
    \  base knee the tail collapses while goodput keeps scaling.";
  json_add "servesweep"
    (Json.Obj
       (("workload", Json.String name)
       :: ("requests", Json.Int cfg.Serve.requests)
       :: ("mean_service_cycles",
           Json.Int
             (match cells with
             | c :: _ -> c.Serve.mean_service_cycles
             | [] -> 0))
       :: List.map
            (fun (c : Serve.cell) ->
              ( Serve.cell_label c,
                Json.Obj
                  [
                    ("served", Json.Int c.Serve.served);
                    ("dropped", Json.Int c.Serve.dropped);
                    ("goodput_rps", Json.Float c.Serve.goodput_rps);
                    ("util", Json.Float c.Serve.util);
                    ("p50_us", Json.Float c.Serve.p50_us);
                    ("p99_us", Json.Float c.Serve.p99_us);
                    ("p999_us", Json.Float c.Serve.p999_us);
                  ] ))
            cells))

(* Million-request serving cell: the memory-bounded streaming driver at
   bench scale.  One Base-mode synth cell at the knee (load 1.0) runs a
   million requests through [Serve.run_cell_stream]'s snapshot-segmented
   measured pass: the calibration pass harvests kernel snapshots at
   segment boundaries, worker domains re-execute the segments, and the
   queue arithmetic consumes service times in index order — O(segments)
   resident latency state (log-bucket recorder + order-sensitive
   fingerprint; the raw vector is never materialized past lat_keep_cap).
   The serving leaves are pure simulated-cycle quantities, bit-stable
   across hosts and --jobs; sim_mips is the whole-cell wall-clock rate,
   run once per bench invocation — at a million requests one run is long
   enough to average runner noise without median-of-N. *)
let servesweep_1m () =
  section "Million-request serving cell: streaming, snapshot-segmented replay";
  let module Serve = Dlink_core.Serve in
  let name = "synth" in
  let wl = (Option.get (W.Registry.find name)) ?seed:None () in
  let n = 1_000_000 in
  let cfg =
    {
      Serve.default_config with
      Serve.mode = Sim.Base;
      load = 1.0;
      requests = n;
      queue_cap = 64;
    }
  in
  let t0 = Unix.gettimeofday () in
  let c = Serve.run_cell_stream ~jobs ~cfg wl in
  let wall = Unix.gettimeofday () -. t0 in
  let mips = E.mips ~instructions:c.Serve.counters.C.instructions ~wall_s:wall in
  Printf.printf
    "  %s, %d requests, load %s, %d segments, %d jobs: %.1f s wall\n" name n
    (fmt cfg.Serve.load) c.Serve.segments jobs wall;
  Printf.printf
    "  served %d  dropped %d  goodput %.0f r/s  util %.3f  sim %.1f Mi/s\n"
    c.Serve.served c.Serve.dropped c.Serve.goodput_rps c.Serve.util mips;
  Printf.printf "  p50 %.1f us  p99 %.1f us  p999 %.1f us\n" c.Serve.p50_us
    c.Serve.p99_us c.Serve.p999_us;
  print_endline
    "  The latency vector is never materialized: tail quantiles come from\n\
    \  the log-bucket recorder, and per-request outcomes are pinned by the\n\
    \  order-sensitive fingerprint — bit-identical at any --jobs.";
  json_add "servesweep_1m"
    (Json.Obj
       [
         ("workload", Json.String name);
         ("requests", Json.Int n);
         ("segments", Json.Int c.Serve.segments);
         ("jobs", Json.Int jobs);
         ("served", Json.Int c.Serve.served);
         ("dropped", Json.Int c.Serve.dropped);
         ("goodput_rps", Json.Float c.Serve.goodput_rps);
         ("util", Json.Float c.Serve.util);
         ("p50_us", Json.Float c.Serve.p50_us);
         ("p99_us", Json.Float c.Serve.p99_us);
         ("p999_us", Json.Float c.Serve.p999_us);
         ("sim_mips", Json.Float mips);
       ])

let throughput () =
  section "Simulator throughput: generate vs packed-trace replay";
  if repeat > 1 then
    Printf.printf
      "  (replay and sweep columns: median of %d runs; generate-mode runs\n\
      \  are too slow to repeat and are not gated)\n"
      repeat;
  let t =
    Table.create
      ~headers:
        [ "workload"; "mode"; "generate Mi/s"; "replay Mi/s"; "speedup"; "equal" ]
  in
  let seq_counters = ref [] in
  let entries =
    List.concat_map
      (fun name ->
        let wl = (Option.get (W.Registry.find name)) ?seed:None () in
        List.map
          (fun mode ->
            (* Prime the cache so the replay timing below excludes the
               one-off recording cost (Base and Enhanced share a trace). *)
            ignore (Tcache.get ~mode wl);
            let gen = E.run ~mode wl in
            let rep = Replay.run ~mode wl in
            let equal = gen.E.counters = rep.E.counters in
            seq_counters := ((name, mode), rep.E.counters) :: !seq_counters;
            let gen_mips = gen.E.sim_mips in
            let rep_mips =
              median_mips (fun () ->
                  if repeat = 1 then rep.E.sim_mips
                  else (Replay.run ~mode wl).E.sim_mips)
            in
            let speedup = rep_mips /. Float.max 1e-9 gen_mips in
            Table.add_row t
              [
                name;
                Sim.mode_to_string mode;
                fmt gen_mips;
                fmt rep_mips;
                fmt speedup ^ "x";
                (if equal then "yes" else "NO");
              ];
            ( name ^ "_" ^ Sim.mode_to_string mode,
              Json.Obj
                [
                  ("generate_mips", Json.Float gen_mips);
                  ("replay_mips", Json.Float rep_mips);
                  ("speedup", Json.Float speedup);
                  ("tramp_pki", Json.Float (E.tramp_pki rep));
                  ("counters_equal", Json.Bool equal);
                ] ))
          [ Sim.Base; Sim.Enhanced ])
      workload_names
  in
  Table.print t;
  (* Aggregate replay throughput: every (workload, mode) cell replayed
     concurrently on the domain pool, total retired instructions over the
     batch's wall clock.  This is the sweep-scale number the roadmap's
     10x target is stated against; counters must stay bit-equal to the
     sequential replays above or the parallelism is buying wrong
     answers. *)
  let aggregate_entry =
    let cells =
      List.concat_map
        (fun name ->
          List.map (fun mode -> (name, mode)) [ Sim.Base; Sim.Enhanced ])
        workload_names
    in
    let batch () =
      let t0 = Unix.gettimeofday () in
      let runs =
        Dpool.map ~jobs
          (fun (name, mode) ->
            let wl = (Option.get (W.Registry.find name)) ?seed:None () in
            Replay.run ~mode wl)
          cells
      in
      (runs, Unix.gettimeofday () -. t0)
    in
    let runs, wall = batch () in
    let instructions =
      List.fold_left (fun a (r : E.run) -> a + r.E.counters.C.instructions) 0 runs
    in
    let equal =
      List.for_all2
        (fun cell (r : E.run) ->
          r.E.counters = List.assoc cell !seq_counters)
        cells runs
    in
    let mips =
      median_mips (fun () ->
          if repeat = 1 then E.mips ~instructions ~wall_s:wall
          else
            let _, w = batch () in
            E.mips ~instructions ~wall_s:w)
    in
    Printf.printf
      "  aggregate replay: %.2f Mi/s over %d cells at --jobs %d (%d \
       instructions, counters bit-equal: %s)\n"
      mips (List.length cells) jobs instructions
      (if equal then "yes" else "NO");
    ( "aggregate",
      Json.Obj
        [
          ("sim_mips", Json.Float mips);
          ("instructions", Json.Int instructions);
          ("jobs", Json.Int jobs);
          ("cells", Json.Int (List.length cells));
          ("counters_equal", Json.Bool equal);
        ] )
  in
  Printf.printf "  trace cache: %d hit(s), %d miss(es), %.2f MB packed\n"
    (Tcache.hits ()) (Tcache.misses ())
    (float_of_int (Tcache.footprint_bytes ()) /. 1048576.0);
  print_endline
    "  Replay drives the identical retire chain from the packed trace —\n\
    \  counters are bit-equal — but skips request generation, linking and\n\
    \  the architectural interpreter, and allocates nothing per event.";
  json_add "throughput"
    (Json.Obj ((entries @ [ aggregate_entry ]) @ Lazy.force flush_sweeps))

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core structures.                     *)

(* Differential-oracle validation: every workload runs skip-on vs skip-off
   with zero injected faults (the mechanism must produce zero mis-skips on
   its own), then a seeded faulted run on synth demonstrates detection,
   quarantine, and recovery. *)
let fault_oracle () =
  let module Fault = Dlink_fault.Fuzz in
  let module Plan = Dlink_fault.Plan in
  let module Oracle = Dlink_fault.Oracle in
  section "Fault-injection oracle";
  let budget = 150 and seed = 42 in
  let t =
    Table.create
      ~headers:
        [ "workload"; "faults"; "skips"; "mis"; "lost"; "quarantined"; "verdict" ]
  in
  let entries =
    List.map
      (fun name ->
        let w = (Option.get (W.Registry.find name)) ~seed () in
        let clean =
          Fault.trial ~workload:w ~budget (Plan.empty seed)
        in
        let r = clean.Fault.report in
        Table.add_row t
          [
            name;
            "0";
            string_of_int r.Oracle.skips;
            string_of_int r.Oracle.mis_skips;
            string_of_int r.Oracle.lost_skips;
            string_of_int r.Oracle.quarantine_entries;
            (if clean.Fault.failures = [] then "ok" else "FAIL");
          ];
        (name, clean))
      workload_names
  in
  let w = W.Synth.workload ~seed () in
  let faulted = Fault.run ~workload:w ~seed ~budget:200 ~faults:8 () in
  let fr = faulted.Fault.report in
  Table.add_row t
    [
      "synth+faults";
      string_of_int fr.Oracle.faults_injected;
      string_of_int fr.Oracle.skips;
      string_of_int fr.Oracle.mis_skips;
      string_of_int fr.Oracle.lost_skips;
      string_of_int fr.Oracle.quarantine_entries;
      (if faulted.Fault.failures = [] then "ok" else "FAIL");
    ];
  Table.print t;
  Printf.printf
    "faulted plan: %s\ncooldown: %d requests, %d skips, %d mis-skips\n"
    (Plan.to_string faulted.Fault.plan)
    fr.Oracle.cooldown_requests fr.Oracle.cooldown_skips
    fr.Oracle.cooldown_mis_skips;
  json_add "fault_oracle"
    (Json.Obj
       (List.map
          (fun (name, clean) ->
            let r = clean.Fault.report in
            ( name,
              Json.Obj
                [
                  ("mis_skips", Json.Int r.Oracle.mis_skips);
                  ("lost_skips", Json.Int r.Oracle.lost_skips);
                  ("unclassified", Json.Int r.Oracle.unclassified);
                  ("ok", Json.Bool (clean.Fault.failures = []));
                ] ))
          entries
       @ [
           ( "synth_faulted",
             Json.Obj
               [
                 ("plan", Json.String (Plan.to_string faulted.Fault.plan));
                 ("faults_injected", Json.Int fr.Oracle.faults_injected);
                 ("mis_skips", Json.Int fr.Oracle.mis_skips);
                 ("quarantine_entries", Json.Int fr.Oracle.quarantine_entries);
                 ("cooldown_mis_skips", Json.Int fr.Oracle.cooldown_mis_skips);
                 ("cooldown_skips", Json.Int fr.Oracle.cooldown_skips);
                 ("ok", Json.Bool (faulted.Fault.failures = []));
               ] );
         ]))

let microbenchmarks () =
  section "Microbenchmarks (Bechamel, ns/op)";
  let open Bechamel in
  let open Toolkit in
  let cache = Dlink_uarch.Cache.create ~name:"L1" ~size_bytes:32768 ~ways:8 in
  let tlb = Dlink_uarch.Tlb.create ~name:"T" ~entries:128 ~ways:4 in
  let btb = Dlink_uarch.Btb.create ~sets:2048 ~ways:4 in
  let bloom = Dlink_uarch.Bloom.create ~bits:4096 ~hashes:2 in
  let abtb = Dlink_uarch.Abtb.create ~entries:256 () in
  let dir = Dlink_uarch.Direction.create ~table_bits:14 ~history_bits:10 in
  let zipf = Dlink_util.Sampler.Zipf.create ~n:1000 ~s:1.2 in
  let rng = Dlink_util.Rng.create 7 in
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter * 64
  in
  let quick_sim =
    let app =
      Dlink_obj.Objfile.create_exn ~name:"bench_app"
        [
          {
            Dlink_obj.Objfile.fname = "main";
            exported = false;
            body =
              [
                Dlink_obj.Body.Loop
                  {
                    mean_iters = 20.0;
                    body = [ Dlink_obj.Body.Compute 4; Dlink_obj.Body.Call_import "f" ];
                  };
              ];
          };
        ]
    and lib =
      Dlink_obj.Objfile.create_exn ~name:"bench_lib"
        [
          {
            Dlink_obj.Objfile.fname = "f";
            exported = true;
            body = [ Dlink_obj.Body.Compute 8 ];
          };
        ]
    in
    Sim.create ~mode:Sim.Enhanced [ app; lib ]
  in
  let tests =
    [
      Test.make ~name:"cache.access" (Staged.stage (fun () -> Dlink_uarch.Cache.access cache (next ())));
      Test.make ~name:"tlb.access" (Staged.stage (fun () -> Dlink_uarch.Tlb.access tlb ~asid:0 (next () * 61)));
      Test.make ~name:"btb.predict+update"
        (Staged.stage (fun () ->
             let pc = next () land 0xFFFF in
             ignore (Dlink_uarch.Btb.predict btb pc);
             Dlink_uarch.Btb.update btb pc (pc + 5)));
      Test.make ~name:"bloom.add+mem"
        (Staged.stage (fun () ->
             let a = next () land 0xFFFFF in
             Dlink_uarch.Bloom.add bloom ~asid:0 a;
             ignore (Dlink_uarch.Bloom.mem bloom ~asid:0 a)));
      Test.make ~name:"abtb.lookup"
        (Staged.stage (fun () -> ignore (Dlink_uarch.Abtb.lookup abtb (next () land 0xFFF))));
      Test.make ~name:"gshare.predict+update"
        (Staged.stage (fun () ->
             let pc = next () land 0xFFFF in
             let p = Dlink_uarch.Direction.predict dir pc in
             Dlink_uarch.Direction.update dir pc (not p)));
      Test.make ~name:"zipf.sample"
        (Staged.stage (fun () -> ignore (Dlink_util.Sampler.Zipf.sample zipf rng)));
      Test.make ~name:"sim.call (enhanced, ~100 insns)"
        (Staged.stage (fun () -> Sim.call quick_sim ~mname:"bench_app" ~fname:"main"));
    ]
  in
  let cfg_b = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let t = Table.create ~headers:[ "operation"; "ns/op" ] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg_b [ Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
          in
          Table.add_row t [ Test.Elt.name elt; fmt ~decimals:1 ns ])
        (Test.elements test))
    tests;
  Table.print t

(* ------------------------------------------------------------------ *)

let () =
  print_endline
    "Reproduction harness: Architectural Support for Dynamic Linking (ASPLOS'15)";
  (* The shared triples are forced on first use, so a --only section that
     does not need them (throughput, multiprocess, fault, micro) skips the
     full simulation pass entirely. *)
  let triples =
    lazy
      (section "Simulations";
       let triples = make_triples () in
       json_add "workloads"
         (Json.Obj
            (List.map
               (fun (name, tr) ->
                 ( name,
                   Json.Obj
                     [
                       ("base", json_counters tr.base.E.counters);
                       ("enhanced", json_counters tr.enhanced.E.counters);
                       ("patched", json_counters tr.patched.E.counters);
                       ( "sim_mips",
                         Json.Obj
                           [
                             ("base", Json.Float tr.base.E.sim_mips);
                             ("enhanced", Json.Float tr.enhanced.E.sim_mips);
                             ("patched", Json.Float tr.patched.E.sim_mips);
                           ] );
                     ] ))
               triples));
       triples)
  in
  let tr () = Lazy.force triples in
  let sections =
    [
      ( "tables",
        fun () ->
          let t = tr () in
          table2 t;
          table3 t;
          figure4 t;
          table4 t;
          figure5 t );
      ( "latency",
        fun () ->
          let t = tr () in
          figure6 (List.assoc "apache" t);
          table5 (List.assoc "firefox" t);
          figure7 (List.assoc "memcached" t);
          figure8_table6 (List.assoc "mysql" t) );
      ( "memsave",
        fun () ->
          memsave ();
          memsave_dynamic (tr ()) );
      ( "ablations",
        fun () ->
          ablation_abtb_organization (tr ());
          ablation_bloom ();
          ablation_fallthrough ();
          ablation_context_switch ();
          ablation_link_modes ();
          ablation_dispatch_mechanisms ();
          ablation_explicit_invalidate () );
      ("multiprocess", multiprocess_scheduling);
      ("fault", fault_oracle);
      ("throughput", throughput);
      ("flushsweep", flushsweep);
      ("churnsweep", churnsweep);
      ("servesweep", servesweep);
      ("servesweep_1m", servesweep_1m);
      ("micro", microbenchmarks);
    ]
  in
  assert (List.map fst sections = known_sections);
  (match only with
  | None -> List.iter (fun (_, f) -> f ()) sections
  | Some names -> List.iter (fun name -> (List.assoc name sections) ()) names);
  json_flush ();
  section "Done";
  print_endline "All tables and figures regenerated; see EXPERIMENTS.md for analysis."
