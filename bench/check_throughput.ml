(* CI regression gate for simulator throughput.

   Usage: check_throughput BASELINE.json CURRENT.json [--tolerance 0.15]

   Both files are bench `--json` dumps.  Every numeric leaf in the
   baseline whose key is [replay_mips], [sim_mips] or [goodput_rps]
   (higher is better: gated against a floor) or [p99_us] (lower is
   better: gated against a ceiling) must be present in the current dump
   and must not cross its bound by more than the tolerance fraction of
   the committed value.  The tolerance (15% by default) absorbs runner
   noise on the wall-clock leaves while still catching real regressions —
   a bulk clear going back to O(capacity), a bounds check reappearing in
   the replay loop — not just order-of-magnitude cliffs; the serving
   leaves are pure simulated-cycle quantities, so for them any trip is a
   behavioral change.
   Both dumps' [jobs] leaves are echoed before the comparison so a
   baseline recorded at a different domain count is visible at a glance
   rather than silently skewing every ratio.

   The comparison is bidirectional: a gated leaf in the current dump
   with no counterpart in the baseline means the baseline is stale (a
   bench section was added without re-committing baseline.json) and the
   gate exits 2 — distinct from exit 1, a genuine regression — so CI
   surfaces "recommit the baseline" instead of silently not gating the
   new section. *)

module Json = Dlink_util.Json

let floor_keys = [ "replay_mips"; "sim_mips"; "goodput_rps" ]
let ceiling_keys = [ "p99_us" ]
let gated_keys = floor_keys @ ceiling_keys

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok v -> v
  | Error e ->
      Printf.eprintf "%s: parse error: %s\n" path e;
      exit 2

(* Flatten to ("throughput.apache_base.replay_mips", float) pairs.  The
   top-level component is the bench section name; it is dropped when
   matching baseline to current so a `--only flushsweep` dump gates
   against the sweep leaves of a full `--only throughput` baseline. *)
let rec leaves prefix = function
  | Json.Obj fields ->
      List.concat_map
        (fun (k, v) ->
          let p = if prefix = "" then k else prefix ^ "." ^ k in
          leaves p v)
        fields
  | Json.Float f -> [ (prefix, f) ]
  | Json.Int i -> [ (prefix, float_of_int i) ]
  | _ -> []

let drop_section key =
  match String.index_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let section key =
  match String.index_opt key '.' with
  | Some i -> String.sub key 0 i
  | None -> key

let leaf_name k =
  match String.rindex_opt k '.' with
  | Some i when String.length k > i + 1 ->
      String.sub k (i + 1) (String.length k - i - 1)
  | _ -> k

let is_gated k = List.mem (leaf_name k) gated_keys

let gated path v =
  List.filter (fun (k, _) -> is_gated k) (leaves "" v)
  |> function
  | [] ->
      Printf.eprintf "%s: no %s leaves found\n" path
        (String.concat "/" gated_keys);
      exit 2
  | l -> l

(* Echo every [jobs] leaf (the domain count each aggregate was measured
   at) so mismatched baselines are visible in the gate's own output. *)
let print_jobs path v =
  List.iter
    (fun (k, jobs) ->
      match String.rindex_opt k '.' with
      | Some i when String.sub k (i + 1) (String.length k - i - 1) = "jobs" ->
          Printf.printf "%s: %s measured at %.0f jobs\n" path k jobs
      | _ -> ())
    (leaves "" v)

let () =
  let tolerance = ref 0.15 in
  let files = ref [] in
  let rec scan = function
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 && f < 1.0 ->
            tolerance := f;
            scan rest
        | _ ->
            Printf.eprintf "bad --tolerance value: %s\n" v;
            exit 2)
    | a :: rest ->
        files := a :: !files;
        scan rest
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline_path; current_path ] ->
      let baseline_json = read_json baseline_path in
      let current_json = read_json current_path in
      print_jobs baseline_path baseline_json;
      print_jobs current_path current_json;
      let baseline = gated baseline_path baseline_json in
      let current_all = leaves "" current_json in
      let current =
        List.map (fun (k, v) -> (drop_section k, v)) current_all
      in
      let failures = ref 0 in
      (* section name -> (sum of fractional deltas, matched leaf count) *)
      let sections : (string, float ref * int ref) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun (key, committed) ->
          match List.assoc_opt (drop_section key) current with
          | None ->
              incr failures;
              Printf.printf "FAIL %-55s missing from %s\n" key current_path
          | Some now ->
              (* Floor leaves (throughput, goodput) fail when they fall
                 below committed * (1 - tol); ceiling leaves (tail
                 latency) fail when they rise above committed * (1 + tol). *)
              let is_ceiling = List.mem (leaf_name key) ceiling_keys in
              let bound =
                if is_ceiling then committed *. (1.0 +. !tolerance)
                else committed *. (1.0 -. !tolerance)
              in
              let delta =
                if committed = 0.0 then 0.0
                else (now -. committed) /. committed
              in
              let sum, count =
                match Hashtbl.find_opt sections (section key) with
                | Some cell -> cell
                | None ->
                    let cell = (ref 0.0, ref 0) in
                    Hashtbl.add sections (section key) cell;
                    cell
              in
              sum := !sum +. delta;
              incr count;
              let failed = if is_ceiling then now > bound else now < bound in
              let verdict = if failed then "FAIL" else "ok" in
              if failed then incr failures;
              Printf.printf
                "%-4s %-55s baseline %8.2f  now %8.2f  %s %8.2f  %+6.1f%%\n"
                verdict key committed now
                (if is_ceiling then "ceil " else "floor")
                bound (100.0 *. delta))
        baseline;
      (* Leaves gated in the current run with no baseline counterpart:
         the baseline is stale and the new section is not being gated. *)
      let baseline_short =
        List.map (fun (k, _) -> drop_section k) baseline
      in
      let unbaselined =
        List.filter
          (fun (k, _) ->
            is_gated k && not (List.mem (drop_section k) baseline_short))
          current_all
      in
      if unbaselined <> [] then begin
        List.iter
          (fun (k, v) ->
            Printf.printf
              "STALE %-54s present in current run (%8.2f) but missing from \
               %s\n"
              k v baseline_path)
          unbaselined;
        Printf.printf
          "%d gated leaf/leaves have no baseline entry: recommit %s\n"
          (List.length unbaselined) baseline_path;
        exit 2
      end;
      Printf.printf "per-section mean delta vs baseline:\n";
      Hashtbl.fold (fun name cell acc -> (name, cell) :: acc) sections []
      |> List.sort compare
      |> List.iter (fun (name, (sum, count)) ->
             if !count > 0 then
               Printf.printf "  %-20s %+6.1f%%  (%d leaves)\n" name
                 (100.0 *. !sum /. float_of_int !count)
                 !count);
      if !failures > 0 then begin
        Printf.printf "%d throughput metric(s) regressed more than %.0f%%\n"
          !failures (100.0 *. !tolerance);
        exit 1
      end;
      Printf.printf "all %d gated throughput metrics within %.0f%% of baseline\n"
        (List.length baseline)
        (100.0 *. !tolerance)
  | _ ->
      Printf.eprintf
        "usage: check_throughput BASELINE.json CURRENT.json [--tolerance F]\n";
      exit 2
