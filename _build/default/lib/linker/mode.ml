type t = Lazy_binding | Eager_binding | Static_link | Patched

let to_string = function
  | Lazy_binding -> "lazy"
  | Eager_binding -> "eager"
  | Static_link -> "static"
  | Patched -> "patched"

let uses_plt = function
  | Lazy_binding | Eager_binding -> true
  | Static_link | Patched -> false
