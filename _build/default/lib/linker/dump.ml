open Dlink_isa

let layout (t : Loader.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %3s  %-22s %-22s %-22s %-22s\n" "module" "id" ".text"
       ".plt" ".got" ".data");
  let range (s : Image.section) =
    if s.size = 0 then "-"
    else Printf.sprintf "%s..%s" (Addr.to_hex s.base) (Addr.to_hex (s.base + s.size))
  in
  Array.iter
    (fun (img : Image.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %3d  %-22s %-22s %-22s %-22s\n" img.name img.id
           (range img.text) (range img.plt) (range img.got) (range img.data)))
    (Space.images t.Loader.space);
  Buffer.add_string buf
    (Printf.sprintf "%-12s      %s..%s\n" "heap"
       (Addr.to_hex t.Loader.shared_heap.base)
       (Addr.to_hex (t.Loader.shared_heap.base + t.Loader.shared_heap.size)));
  Buffer.add_string buf
    (Printf.sprintf "%-12s      %s..%s\n" "stack"
       (Addr.to_hex t.Loader.stack_base)
       (Addr.to_hex t.Loader.stack_top));
  Buffer.contents buf

(* Function labels by address, for annotating listings. *)
let labels_of (img : Image.t) =
  let labels = Hashtbl.create 32 in
  Hashtbl.iter (fun name addr -> Hashtbl.replace labels addr name) img.funcs;
  Hashtbl.iter
    (fun sym addr -> Hashtbl.replace labels addr (sym ^ "@plt"))
    img.plt_entries;
  if img.plt.size > 0 then Hashtbl.replace labels img.plt.base "PLT0";
  labels

let disassemble_range (img : Image.t) ~labels ~from ~upto ~max_insns buf =
  let count = ref 0 in
  let addr = ref from in
  while !addr < upto && !count < max_insns do
    (match Image.fetch img !addr with
    | Some insn ->
        (match Hashtbl.find_opt labels !addr with
        | Some l -> Buffer.add_string buf (Printf.sprintf "%s:\n" l)
        | None -> ());
        Buffer.add_string buf
          (Printf.sprintf "  %s:%s %s\n" (Addr.to_hex !addr)
             (if Image.in_plt img !addr then " [plt]" else "")
             (Insn.to_string insn));
        incr count;
        addr := !addr + Insn.byte_size insn
    | None -> incr addr)
  done;
  !count

let disassemble_image ?(max_insns = 200) (img : Image.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "module %s (id %d):\n" img.name img.id);
  let labels = labels_of img in
  let n =
    disassemble_range img ~labels ~from:img.text.base
      ~upto:(img.plt.base + img.plt.size) ~max_insns buf
  in
  if n >= max_insns then Buffer.add_string buf "  ... (truncated)\n";
  Buffer.contents buf

let disassemble_function (t : Loader.t) ~mname ~fname =
  match Space.image_by_name t.Loader.space mname with
  | None -> None
  | Some img -> (
      match Image.func_addr img fname with
      | None -> None
      | Some from ->
          (* Stop at the next function entry, or the end of text. *)
          let upto =
            Hashtbl.fold
              (fun _ a acc -> if a > from && a < acc then a else acc)
              img.funcs
              (img.text.base + img.text.size)
          in
          let buf = Buffer.create 512 in
          let labels = labels_of img in
          ignore (disassemble_range img ~labels ~from ~upto ~max_insns:10_000 buf);
          Some (Buffer.contents buf))

let got_contents (t : Loader.t) (img : Image.t) =
  let buf = Buffer.create 512 in
  let init = Hashtbl.create 64 in
  List.iter (fun (a, v) -> Hashtbl.replace init a v) t.Loader.init_mem;
  let classify v =
    if v = t.Loader.resolver_entry then "-> resolver"
    else
      match Space.image_at t.Loader.space v with
      | Some owner when Image.in_plt owner v -> "-> plt stub (lazy)"
      | Some owner -> Printf.sprintf "-> code in %s" owner.Image.name
      | None -> ""
  in
  let slot_owner = Hashtbl.create 64 in
  Hashtbl.iter (fun sym a -> Hashtbl.replace slot_owner a sym) img.got_slots;
  let rec go a =
    if a < img.got.base + img.got.size then begin
      let v = Option.value ~default:0 (Hashtbl.find_opt init a) in
      let sym = Option.value ~default:"(reserved)" (Hashtbl.find_opt slot_owner a) in
      Buffer.add_string buf
        (Printf.sprintf "  %s  %-24s %s %s\n" (Addr.to_hex a) sym (Addr.to_hex v)
           (classify v));
      go (a + 8)
    end
  in
  Buffer.add_string buf (Printf.sprintf "GOT of %s:\n" img.name);
  go img.got.base;
  Buffer.contents buf
