open Dlink_isa

type entry = { symbol : string; addr : Addr.t; image_id : int }
type t = { table : (string, entry) Hashtbl.t; mutable order : string list }

let create () = { table = Hashtbl.create 256; order = [] }

let define t ~symbol ~addr ~image_id =
  if not (Hashtbl.mem t.table symbol) then begin
    Hashtbl.replace t.table symbol { symbol; addr; image_id };
    t.order <- symbol :: t.order
  end

let lookup t symbol = Hashtbl.find_opt t.table symbol
let lookup_addr t symbol = Option.map (fun e -> e.addr) (lookup t symbol)
let symbols t = List.rev t.order
