(** Global symbol scope, in ELF global-lookup style: the first module in
    load order that exports a symbol defines it. *)

open Dlink_isa

type entry = { symbol : string; addr : Addr.t; image_id : int }
type t

val create : unit -> t

val define : t -> symbol:string -> addr:Addr.t -> image_id:int -> unit
(** First definition wins; later ones are ignored (interposition order). *)

val lookup : t -> string -> entry option
val lookup_addr : t -> string -> Addr.t option
val symbols : t -> string list
