(** Binding strategies the loader supports.

    - [Lazy_binding]: ELF default; GOT entries start pointing back into the
      PLT stub so the first call routes through the dynamic resolver.
    - [Eager_binding]: BIND_NOW; GOT entries are resolved at load time, so
      trampolines always jump straight to the target (but still execute).
    - [Static_link]: no PLT/GOT; calls are lowered to direct calls.
    - [Patched]: the paper's software emulation of the proposed hardware
      (§4): sections are laid out as in lazy binding, but every library call
      site is patched at load time into a direct call, and the patched code
      pages are recorded for the §5.5 memory-overhead analysis. *)

type t = Lazy_binding | Eager_binding | Static_link | Patched

val to_string : t -> string
val uses_plt : t -> bool
(** Whether calls are routed through PLT trampolines at run time. *)
