(** The process address space: mapped module images and fast PC lookup. *)

open Dlink_isa

type t

val create : Image.t list -> t
(** Raises [Invalid_argument] if any two images overlap. *)

val images : t -> Image.t array
(** In ascending base-address order. *)

val image_at : t -> Addr.t -> Image.t option
(** Image containing the address (binary search with a one-entry memo for
    the common same-module case). *)

val fetch : t -> Addr.t -> (Image.t * Insn.t) option
(** Instruction at a PC together with its defining image. *)

val image_by_id : t -> int -> Image.t option
val image_by_name : t -> string -> Image.t option
