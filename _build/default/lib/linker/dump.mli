(** Human-readable dumps of loaded images: memory-map summaries and
    disassembly listings, in the style of [objdump]. *)

val layout : Loader.t -> string
(** One line per module: name, id, and section ranges. *)

val disassemble_image : ?max_insns:int -> Image.t -> string
(** Code listing with addresses, section annotations ([.text] / [.plt]),
    and function labels.  [max_insns] truncates long listings (default
    200). *)

val disassemble_function : Loader.t -> mname:string -> fname:string -> string option
(** Listing of a single function (up to its final [ret]/[halt] or the next
    function boundary). *)

val got_contents : Loader.t -> Image.t -> string
(** The module's GOT: slot addresses, owning symbols, and initial values
    with a classification (resolver, stub, function). *)
