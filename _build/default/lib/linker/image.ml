open Dlink_isa

type section = { base : Addr.t; size : int }

type t = {
  name : string;
  id : int;
  text : section;
  plt : section;
  got : section;
  data : section;
  code : Insn.t option array;
  funcs : (string, Addr.t) Hashtbl.t;
  plt_entries : (string, Addr.t) Hashtbl.t;
  got_slots : (string, Addr.t) Hashtbl.t;
  reloc_syms : string array;
  vtables : (string, Addr.t) Hashtbl.t;
}

let in_section s a = a >= s.base && a < s.base + s.size

let span_end t = t.data.base + t.data.size
let contains t a = a >= t.text.base && a < span_end t

let fetch t a =
  let off = a - t.text.base in
  if off < 0 || off >= Array.length t.code then None else t.code.(off)

let in_code t a = a >= t.text.base && a < t.plt.base + t.plt.size
let in_plt t a = in_section t.plt a
let in_got t a = in_section t.got a

let func_addr t name = Hashtbl.find_opt t.funcs name
let plt_entry t name = Hashtbl.find_opt t.plt_entries name
let got_slot t name = Hashtbl.find_opt t.got_slots name
let vtable_base t name = Hashtbl.find_opt t.vtables name
let code_bytes t = t.text.size + t.plt.size
