(** Lowering of {!Dlink_obj.Body} IR to proto-instructions.

    Used twice by the loader: a sizing pass with dummy targets (encoded
    sizes do not depend on target values) and a final pass with concrete
    addresses. *)

open Dlink_isa

type ctx = {
  resolve_import : string -> Addr.t;
      (** call target for an imported symbol: PLT entry (dynamic modes) or
          final function address (static / patched) *)
  resolve_local : string -> Addr.t;
  local_data : Addr.t * int;  (** module data region (base, size) *)
  shared_data : Addr.t * int;  (** process-wide heap region *)
  fresh_site : unit -> int;
  resolve_vtable_slot : string -> int -> Addr.t;
      (** address of slot [i] of a module vtable *)
  note_import_call_site : offset:int -> string -> unit;
      (** invoked at each lowered import call with its code offset *)
}

val sizing_ctx : ctx
(** Dummy context for the sizing pass. *)

val lower_body : Asm.t -> ctx -> Dlink_obj.Body.op list -> unit
(** Emits the body followed by a [Ret]. *)

val function_size : Dlink_obj.Body.op list -> int
(** Encoded byte size of a lowered body (including the trailing [Ret]). *)
