lib/linker/codegen.mli: Addr Asm Dlink_isa Dlink_obj
