lib/linker/mode.mli:
