lib/linker/linkmap.ml: Addr Dlink_isa Hashtbl List Option
