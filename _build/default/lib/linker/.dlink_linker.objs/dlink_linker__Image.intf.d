lib/linker/image.mli: Addr Dlink_isa Hashtbl Insn
