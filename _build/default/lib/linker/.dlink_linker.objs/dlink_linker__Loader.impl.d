lib/linker/loader.ml: Addr Array Asm Codegen Dlink_isa Dlink_obj Dlink_util Hashtbl Image Insn Linkmap List Mode Option Printf Space
