lib/linker/codegen.ml: Addr Asm Dlink_isa Dlink_obj Insn List
