lib/linker/loader.mli: Addr Dlink_isa Dlink_obj Hashtbl Image Linkmap Mode Space
