lib/linker/dump.mli: Image Loader
