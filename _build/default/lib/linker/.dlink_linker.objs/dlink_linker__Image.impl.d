lib/linker/image.ml: Addr Array Dlink_isa Hashtbl Insn
