lib/linker/dump.ml: Addr Array Buffer Dlink_isa Hashtbl Image Insn List Loader Option Printf Space
