lib/linker/space.ml: Array Hashtbl Image Printf
