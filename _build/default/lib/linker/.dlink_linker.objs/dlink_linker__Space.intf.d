lib/linker/space.mli: Addr Dlink_isa Image Insn
