lib/linker/mode.ml:
