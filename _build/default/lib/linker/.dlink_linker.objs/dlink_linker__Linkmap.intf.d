lib/linker/linkmap.mli: Addr Dlink_isa
