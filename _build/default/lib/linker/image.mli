(** A module mapped into the simulated address space.

    Mirrors an ELF shared object's runtime layout: a code segment holding
    [.text] followed by [.plt] (16-byte entries), then — on a separate page,
    as [.got.plt] lives in the data segment — the GOT and the module's data
    region. *)

open Dlink_isa

type section = { base : Addr.t; size : int }

type t = {
  name : string;
  id : int;  (** load order index; also pushed by PLT0 for the resolver *)
  text : section;
  plt : section;  (** zero-sized under static linking *)
  got : section;
  data : section;
  code : Insn.t option array;  (** indexed by byte offset from [text.base] *)
  funcs : (string, Addr.t) Hashtbl.t;
  plt_entries : (string, Addr.t) Hashtbl.t;  (** import symbol -> PLT entry *)
  got_slots : (string, Addr.t) Hashtbl.t;  (** import symbol -> GOT slot *)
  reloc_syms : string array;  (** relocation index -> import symbol *)
  vtables : (string, Addr.t) Hashtbl.t;
      (** vtable name -> base address of its slots in the data segment *)
}

val span_end : t -> Addr.t
(** One past the last mapped byte of the module. *)

val contains : t -> Addr.t -> bool
(** Whether the address falls anywhere inside the module's mapping. *)

val fetch : t -> Addr.t -> Insn.t option
(** Instruction starting at the given address, if any. *)

val in_code : t -> Addr.t -> bool
val in_plt : t -> Addr.t -> bool
val in_got : t -> Addr.t -> bool

val func_addr : t -> string -> Addr.t option
val plt_entry : t -> string -> Addr.t option
val got_slot : t -> string -> Addr.t option

val vtable_base : t -> string -> Addr.t option
(** Base address of a relocated function-pointer table. *)

val code_bytes : t -> int
(** Size of the executable segment (text + plt). *)
